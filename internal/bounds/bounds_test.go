package bounds

import (
	"math"
	"testing"
)

// calibration is the measurement table the constants were frozen against:
// batched-kernel mean consensus interactions on uniform starts, 5 trials
// per cell, seed 1 (normalized column T·x₁/(n²·ln n) = T/(k·n·ln n)).
var calibration = []struct {
	n     int64
	k     int
	meanT float64
}{
	{10_000, 2, 2.763e5},
	{1_000_000, 2, 3.942e7},
	{100_000_000, 2, 5.158e9},
	{1_000_000_000, 2, 5.632e10},
	{10_000, 32, 8.075e5},
	{1_000_000, 32, 1.937e8},
	{100_000_000, 32, 3.463e10},
	{1_000_000_000, 32, 4.146e11},
	{10_000, 512, 1.205e6},
	{1_000_000, 512, 5.887e8},
	{100_000_000, 512, 1.937e11},
	{1_000_000_000, 512, 2.947e12},
}

// TestEnvelopeCoversCalibration pins the frozen constants to the data they
// were calibrated on: every measured mean lies strictly inside the envelope
// with at least 25% margin on both sides, at every (n, k) cell. If either
// constant is retuned, this fails before any experiment does.
func TestEnvelopeCoversCalibration(t *testing.T) {
	const margin = 1.25
	for _, c := range calibration {
		lo, hi, ok := Bracket(c.n, c.k, c.meanT)
		if !ok {
			t.Errorf("n=%d k=%d: mean %g outside [%g, %g]", c.n, c.k, c.meanT, lo, hi)
			continue
		}
		if c.meanT < lo*margin || c.meanT > hi/margin {
			t.Errorf("n=%d k=%d: mean %g within 25%% of envelope edge [%g, %g]",
				c.n, c.k, c.meanT, lo, hi)
		}
	}
}

func TestCurveShapes(t *testing.T) {
	// Upper curve reduces to UpperConst·k·n·ln n on the uniform start.
	n, k := int64(1_000_000), 32
	nf := float64(n)
	want := UpperConst * float64(k) * nf * math.Log(nf)
	if got := Theorem2Upper(n, k); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("Theorem2Upper = %g, want %g", got, want)
	}
	// The envelope gap is exactly (UpperConst/LowerConst)·ln ln n.
	wantGap := UpperConst / LowerConst * math.Log(math.Log(nf))
	if got := Gap(n, k); math.Abs(got-wantGap)/wantGap > 1e-12 {
		t.Fatalf("Gap = %g, want %g", got, wantGap)
	}
	// Both curves are increasing in n and in k.
	for _, kk := range []int{2, 32, 512} {
		prevUp, prevLo := 0.0, 0.0
		for _, nn := range []int64{10_000, 1_000_000, 1_000_000_000, 3_000_000_000} {
			up, lo := Theorem2Upper(nn, kk), LowerBound(nn, kk)
			if !(up > prevUp) || !(lo > prevLo) {
				t.Fatalf("curves not increasing in n at n=%d k=%d", nn, kk)
			}
			if !(lo < up) {
				t.Fatalf("lower %g not below upper %g at n=%d k=%d", lo, up, nn, kk)
			}
			prevUp, prevLo = up, lo
		}
	}
	if !(Theorem2Upper(n, 64) > Theorem2Upper(n, 32)) {
		t.Fatal("upper curve not increasing in k")
	}
}

func TestLowerBoundRegime(t *testing.T) {
	// The regime the raised conf.MaxN unlocked: n ∈ (2·10⁹, 3·10⁹]. The
	// curves must be finite, ordered, and well inside int64-expressible
	// interaction counts (the clock caps at n² ≈ 9.2·10¹⁸).
	for _, n := range []int64{2_200_000_000, 2_600_000_000, 3_000_000_000} {
		for _, k := range []int{2, 32, 512} {
			lo, hi := LowerBound(n, k), Theorem2Upper(n, k)
			if math.IsNaN(lo) || math.IsNaN(hi) || lo <= 0 || hi <= lo {
				t.Fatalf("degenerate envelope [%g, %g] at n=%d k=%d", lo, hi, n, k)
			}
			if hi > float64(n)*float64(n) {
				t.Fatalf("upper curve %g exceeds the n² clock at n=%d k=%d", hi, n, k)
			}
		}
	}
}

func TestInvalidArguments(t *testing.T) {
	cases := []struct {
		n int64
		k int
	}{
		{15, 2},   // below the ln ln n domain
		{1000, 0}, // no opinions
		{100, 101},
		{-5, 2},
	}
	for _, c := range cases {
		if !math.IsNaN(Theorem2Upper(c.n, c.k)) || !math.IsNaN(LowerBound(c.n, c.k)) {
			t.Fatalf("n=%d k=%d: expected NaN curves", c.n, c.k)
		}
		if _, _, ok := Bracket(c.n, c.k, 1); ok {
			t.Fatalf("n=%d k=%d: Bracket ok on invalid domain", c.n, c.k)
		}
	}
}
