// Package bounds evaluates the theoretical consensus-time envelope that the
// K4 lower-bound-regime experiment brackets measurements against: the upper
// bound of the source paper's Theorem 2 and the almost-tight lower bound of
// the follow-up work of El-Hayek, Elsässer et al. (arXiv:2505.02765).
//
// Both results are asymptotic (Θ-statements that hold with high probability)
// and therefore fix only the *shape* of their curves; the leading constants
// below were calibrated once against batched-kernel measurements on uniform
// starts (k ∈ {2, 32, 512}, n from 10⁴ to 10⁹, see the calibration table in
// bounds_test.go) and then frozen, chosen so every measured mean sits
// strictly inside the envelope with at least ~30% margin on both sides.
// The curves are in units of interactions (divide by n for parallel time)
// and are evaluated for the uniform unbiased start, whose initial plurality
// support is x₁ ≈ n/k — the regime where the two bounds pinch to within a
// log-log factor of each other.
package bounds

import "math"

// Calibrated leading constants (see the package comment). Exported so
// reports can show the evaluated curve as constant × shape.
const (
	// UpperConst scales the Theorem 2 shape n²·ln n/x₁. Measured
	// normalized means T·x₁/(n²·ln n) peak at ≈1.7 (k = 2, small n) and
	// decrease toward ≈1.36 at n = 10⁹, so 2.5 clears every observation.
	UpperConst = 2.5
	// LowerConst scales the almost-tight lower-bound shape
	// n²·ln n/(x₁·ln ln n). The smallest observed normalized mean is
	// ≈0.021·(n²·ln n/x₁) at (n = 10⁴, k = 512), i.e. ≈0.047 in units of
	// the lower shape; 0.02 sits a factor ≈2.3 below it.
	LowerConst = 0.02
)

// minN is the smallest population the curves are defined for: ln ln n must
// be positive and the asymptotic shapes are meaningless for toy populations.
const minN = 16

// x1 is the initial plurality support of the uniform unbiased start.
func x1(n int64, k int) float64 {
	return float64(n) / float64(k)
}

// Theorem2Upper returns the Theorem 2 upper-bound curve for the no-bias
// (uniform) start: UpperConst · n²·ln n / x₁ = UpperConst · k·n·ln n
// interactions. Theorem 2 states that from any configuration the k-opinion
// USD reaches consensus within O(n²·log n / x₁) interactions w.h.p.; on the
// uniform start x₁ = n/k, giving the headline quasi-linear k·n·log n.
// It returns NaN for n < 16 or k < 1 or k > n.
func Theorem2Upper(n int64, k int) float64 {
	if n < minN || k < 1 || int64(k) > n {
		return math.NaN()
	}
	return UpperConst * float64(n) * float64(n) * math.Log(float64(n)) / x1(n, k)
}

// LowerBound returns the almost-tight lower-bound curve of El-Hayek,
// Elsässer et al. (arXiv:2505.02765) for the uniform start:
// LowerConst · n²·ln n / (x₁·ln ln n) interactions. The bound matches the
// Theorem 2 upper bound up to the sub-logarithmic ln ln n gap — the sense in
// which it is "almost tight" — so in the regime n ∈ (2·10⁹, 3·10⁹] the two
// curves pinch the true consensus time into a narrow band that the K4
// experiment resolves empirically. It returns NaN for n < 16 or k < 1 or
// k > n.
func LowerBound(n int64, k int) float64 {
	if n < minN || k < 1 || int64(k) > n {
		return math.NaN()
	}
	nf := float64(n)
	return LowerConst * nf * nf * math.Log(nf) / (x1(n, k) * math.Log(math.Log(nf)))
}

// Gap returns the multiplicative width Theorem2Upper/LowerBound of the
// envelope: (UpperConst/LowerConst)·ln ln n, the factor the experiment's
// measured constant is localized within.
func Gap(n int64, k int) float64 {
	return Theorem2Upper(n, k) / LowerBound(n, k)
}

// Bracket evaluates both curves at (n, k) and reports whether the measured
// consensus time t lies inside the envelope.
func Bracket(n int64, k int, t float64) (lo, hi float64, ok bool) {
	lo = LowerBound(n, k)
	hi = Theorem2Upper(n, k)
	ok = !math.IsNaN(lo) && !math.IsNaN(hi) && lo <= t && t <= hi
	return lo, hi, ok
}
