package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestNormalQuantile(t *testing.T) {
	// Reference values from the standard normal table (15 digits via erfc
	// inversion in an independent system).
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.95, 1.6448536269514722},
		{0.999, 3.090232306167813},
		{0.025, -1.959963984540054},
		{1e-9, -5.997807015007773},
	}
	for _, c := range cases {
		approx(t, "NormalQuantile", NormalQuantile(c.p), c.want, 1e-9)
	}
	// Round trip through the CDF.
	for _, p := range []float64{0.001, 0.1, 0.3, 0.7, 0.9, 0.999} {
		x := NormalQuantile(p)
		cdf := 0.5 * math.Erfc(-x/math.Sqrt2)
		approx(t, "Φ(Φ⁻¹(p))", cdf, p, 1e-12)
	}
	// Subnormal tail: erfc underflows there, so the quantile comes from the
	// Mills-ratio inversion. Reference 38.2691253 solves the tail series
	// Φ(−t) = φ(t)/t·(1 − 1/t² + 3/t⁴ − …) = 1e-320 to full precision.
	approx(t, "NormalQuantile(1e-320)", NormalQuantile(1e-320), -38.2691253, 1e-4)
	for _, p := range []float64{0, 1, -0.5, math.NaN()} {
		p := p
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NormalQuantile(%v) did not panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestTQuantile(t *testing.T) {
	// Classic t-table values (two-sided 95% → p = 0.975, etc.).
	cases := []struct {
		p, nu, want float64
	}{
		{0.975, 1, 12.706204736174698},
		{0.975, 2, 4.302652729911275},
		{0.975, 5, 2.5705818366147395},
		{0.975, 30, 2.0422724563012373},
		{0.95, 10, 1.8124611228107335},
		{0.995, 8, 3.3553873313333957},
	}
	for _, c := range cases {
		approx(t, "TQuantile", TQuantile(c.p, c.nu), c.want, 1e-6)
	}
	if got := TQuantile(0.5, 7); got != 0 {
		t.Fatalf("median t quantile = %v", got)
	}
	approx(t, "symmetry", TQuantile(0.025, 5), -TQuantile(0.975, 5), 1e-12)
	// Large ν converges to the normal quantile.
	approx(t, "ν→∞", TQuantile(0.975, 2e6), NormalQuantile(0.975), 1e-9)
	approx(t, "ν=1e5 vs normal", TQuantile(0.975, 1e5), NormalQuantile(0.975), 1e-3)
}

func TestBetaIncReg(t *testing.T) {
	// I_x(1,1) = x and I_x(2,2) = 3x² − 2x³ are exact closed forms.
	for _, x := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
		approx(t, "I_x(1,1)", BetaIncReg(1, 1, x), x, 1e-12)
		approx(t, "I_x(2,2)", BetaIncReg(2, 2, x), 3*x*x-2*x*x*x, 1e-12)
	}
	// Symmetry I_x(a,b) = 1 − I_{1−x}(b,a).
	for _, x := range []float64{0.2, 0.5, 0.8} {
		approx(t, "symmetry", BetaIncReg(3, 7, x), 1-BetaIncReg(7, 3, 1-x), 1e-12)
	}
}

func TestChiSquareCritical(t *testing.T) {
	// Wilson–Hilferty against exact table values; 1% relative tolerance.
	cases := []struct {
		dof   int
		alpha float64
		want  float64
	}{
		{10, 0.05, 18.307},
		{7, 0.01, 18.475},
		{63, 0.001, 103.442},
	}
	for _, c := range cases {
		got := ChiSquareCritical(c.dof, c.alpha)
		if math.Abs(got-c.want)/c.want > 0.01 {
			t.Fatalf("ChiSquareCritical(%d, %v) = %v, want ≈ %v", c.dof, c.alpha, got, c.want)
		}
	}
	if !math.IsNaN(ChiSquareCritical(0, 0.05)) || !math.IsNaN(ChiSquareCritical(5, 0)) {
		t.Fatal("invalid arguments must return NaN")
	}
}

func TestStudentTCIKnownSample(t *testing.T) {
	// Hand-checked sample: {1,2,3,4,5}, mean 3, s = √2.5, n = 5,
	// t_{0.975,4} = 2.7764451052, half = 2.7764451052·√(2.5/5) = 1.9633509...
	var o Online
	for _, x := range []float64{1, 2, 3, 4, 5} {
		o.Add(x)
	}
	ci := StudentTCI(&o, 0.95)
	approx(t, "mean", ci.Mean, 3, 1e-12)
	approx(t, "half", ci.Half, 2.7764451051977987*math.Sqrt(2.5/5), 1e-9)
	approx(t, "rel", ci.Rel(), ci.Half/3, 1e-12)
	approx(t, "lo", ci.Lo(), 3-ci.Half, 1e-12)
	approx(t, "hi", ci.Hi(), 3+ci.Half, 1e-12)
}

func TestCIDegenerate(t *testing.T) {
	var o Online
	if ci := StudentTCI(&o, 0.95); !math.IsInf(ci.Half, 1) || !math.IsInf(ci.Rel(), 1) {
		t.Fatalf("empty CI = %+v", ci)
	}
	o.Add(7)
	if ci := StudentTCI(&o, 0.95); !math.IsInf(ci.Half, 1) {
		t.Fatalf("n=1 CI = %+v", ci)
	}
	if ci := BernsteinCI(&o, 0.95, 0); !math.IsInf(ci.Half, 1) {
		t.Fatalf("n=1 Bernstein CI = %+v", ci)
	}
	// Zero mean → Rel is +Inf, so width targets are never met vacuously.
	var z Online
	z.Add(-1)
	z.Add(1)
	if got := StudentTCI(&z, 0.95).Rel(); !math.IsInf(got, 1) {
		t.Fatalf("zero-mean Rel = %v", got)
	}
}

// TestStudentTCICoverage simulates many fixed-seed Gaussian samples and
// checks the empirical coverage of the 95% interval is near nominal — the
// end-to-end sanity check on quantile, CDF, and interval plumbing together.
func TestStudentTCICoverage(t *testing.T) {
	src := rng.New(42)
	const (
		experiments = 2000
		n           = 12
		mu          = 10.0
	)
	coveredT, coveredB := 0, 0
	for e := 0; e < experiments; e++ {
		var o Online
		for i := 0; i < n; i++ {
			o.Add(mu + 3*src.Normal())
		}
		if ci := StudentTCI(&o, 0.95); ci.Lo() <= mu && mu <= ci.Hi() {
			coveredT++
		}
		// Bernstein with a generous a-priori range bound must cover at
		// least as often (it is conservative by construction).
		if ci := BernsteinCI(&o, 0.95, 40); ci.Lo() <= mu && mu <= ci.Hi() {
			coveredB++
		}
	}
	if cov := float64(coveredT) / experiments; cov < 0.93 || cov > 0.97 {
		t.Fatalf("Student-t 95%% interval covered %.3f of the time", cov)
	}
	if cov := float64(coveredB) / experiments; cov < 0.95 {
		t.Fatalf("Bernstein interval covered only %.3f of the time", cov)
	}
}

func TestBernsteinCIShrinks(t *testing.T) {
	src := rng.New(7)
	var o Online
	var prev float64 = math.Inf(1)
	for n := 0; n < 4096; n++ {
		o.Add(src.Float64())
		if n+1 == 16 || n+1 == 256 || n+1 == 4096 {
			half := BernsteinCI(&o, 0.95, 1).Half
			if half >= prev {
				t.Fatalf("n=%d: Bernstein half-width %v did not shrink from %v", n+1, half, prev)
			}
			prev = half
		}
	}
	// At n = 4096 on a unit-range stream the interval should be tight.
	if prev > 0.05 {
		t.Fatalf("Bernstein half-width %v still loose at n=4096", prev)
	}
}

func TestStoppingRules(t *testing.T) {
	var o Online
	for _, x := range []float64{100, 101, 99, 100.5, 99.5, 100.2, 99.8, 100.1} {
		o.Add(x)
	}
	tight := RelWidth(0.05, 0.95) // ±5% of a ~100 mean: satisfied here
	loose := RelWidth(1e-6, 0.95) // one-in-a-million width: not satisfied
	if !tight.Stop(&o) {
		t.Fatalf("5%% rule should stop: rel = %v", StudentTCI(&o, 0.95).Rel())
	}
	if loose.Stop(&o) {
		t.Fatal("1e-6 rule should not stop")
	}
	if AfterN(8).Stop(&o) != true || AfterN(9).Stop(&o) != false {
		t.Fatal("AfterN miscounts")
	}
	if All(tight, AfterN(9)).Stop(&o) {
		t.Fatal("All must wait for the minimum-sample guard")
	}
	if !All(tight, AfterN(8)).Stop(&o) {
		t.Fatal("All with satisfied parts must stop")
	}
	if !Any(loose, AfterN(8)).Stop(&o) {
		t.Fatal("Any with one satisfied part must stop")
	}
	if Any(loose, AfterN(9)).Stop(&o) {
		t.Fatal("Any with no satisfied part must not stop")
	}
	if !All().Stop(&o) || Any().Stop(&o) {
		t.Fatal("empty combinator identities broken")
	}
	// Width rules never fire below two samples.
	var fresh Online
	fresh.Add(5)
	if RelWidth(10, 0.95).Stop(&fresh) || RelWidthBernstein(10, 0.95, 1).Stop(&fresh) {
		t.Fatal("width rule fired on a single sample")
	}
}

func TestRelWidthBernstein(t *testing.T) {
	src := rng.New(11)
	var o Online
	rule := RelWidthBernstein(0.05, 0.95, 1)
	stopped := int64(0)
	for i := 0; i < 20000; i++ {
		o.Add(0.5 + 0.1*(src.Float64()-0.5))
		if stopped == 0 && rule.Stop(&o) {
			stopped = o.N()
		}
	}
	if stopped == 0 {
		t.Fatalf("Bernstein width rule never fired; rel = %v", BernsteinCI(&o, 0.95, 1).Rel())
	}
	// Once stopped, the Student-t rule at the same target must agree (it is
	// never looser than Bernstein on the same stream).
	if !RelWidth(0.05, 0.95).Stop(&o) {
		t.Fatal("Student-t rule looser than Bernstein at full sample")
	}
}
