package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestOnlineMatchesSummarize(t *testing.T) {
	src := rng.New(41)
	xs := make([]float64, 4001)
	var o Online
	for i := range xs {
		xs[i] = src.Normal()*3 + 7
		o.Add(xs[i])
	}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if o.N() != int64(s.N) {
		t.Fatalf("N = %d, want %d", o.N(), s.N)
	}
	if math.Abs(o.Mean()-s.Mean) > 1e-9 {
		t.Fatalf("mean %v vs %v", o.Mean(), s.Mean)
	}
	if math.Abs(o.Std()-s.Std) > 1e-9 {
		t.Fatalf("std %v vs %v", o.Std(), s.Std)
	}
	if o.Min() != s.Min || o.Max() != s.Max {
		t.Fatalf("extrema (%v, %v) vs (%v, %v)", o.Min(), o.Max(), s.Min, s.Max)
	}
}

func TestOnlineEmptyAndSingle(t *testing.T) {
	var o Online
	if o.N() != 0 || o.Mean() != 0 || o.Std() != 0 || o.Min() != 0 || o.Max() != 0 {
		t.Fatalf("empty accumulator not zero: %+v", o)
	}
	o.Add(3.5)
	if o.Mean() != 3.5 || o.Var() != 0 || o.Min() != 3.5 || o.Max() != 3.5 {
		t.Fatalf("single sample: %+v", o)
	}
}

func TestP2SmallStreamsExact(t *testing.T) {
	p := NewP2(0.5)
	if !math.IsNaN(p.Value()) {
		t.Fatal("empty P2 must return NaN")
	}
	for _, x := range []float64{5, 1, 3} {
		p.Add(x)
	}
	if got := p.Value(); got != 3 {
		t.Fatalf("median of {5,1,3} = %v, want 3", got)
	}
	q, err := Quantile([]float64{5, 1, 3}, 0.5)
	if err != nil || p.Value() != q {
		t.Fatalf("small-stream P2 %v != exact %v", p.Value(), q)
	}
}

func TestP2AgainstExactQuantiles(t *testing.T) {
	for _, tc := range []struct {
		name string
		q    float64
		gen  func(src *rng.Source) float64
	}{
		{"uniform-median", 0.5, func(s *rng.Source) float64 { return s.Float64() }},
		{"uniform-p90", 0.9, func(s *rng.Source) float64 { return s.Float64() }},
		{"normal-median", 0.5, func(s *rng.Source) float64 { return s.Normal() }},
		{"exp-p10", 0.1, func(s *rng.Source) float64 { return s.Exponential(2) }},
		{"heavy-tail-median", 0.5, func(s *rng.Source) float64 {
			x := s.Float64()
			return 1 / (1 - x) // Pareto-like
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			src := rng.New(99)
			p := NewP2(tc.q)
			xs := make([]float64, 20000)
			for i := range xs {
				xs[i] = tc.gen(src)
				p.Add(xs[i])
			}
			exact, err := Quantile(xs, tc.q)
			if err != nil {
				t.Fatal(err)
			}
			// P² carries a few-percent error on 2·10⁴ samples; compare on
			// the scale of the sample spread.
			s, _ := Summarize(xs)
			scale := s.P90 - s.P10
			if scale == 0 {
				scale = 1
			}
			if gap := math.Abs(p.Value() - exact); gap > 0.05*scale {
				t.Fatalf("P2(%v) = %v, exact %v (gap %v, scale %v)", tc.q, p.Value(), exact, gap, scale)
			}
		})
	}
}

func TestP2ExtremeQuantiles(t *testing.T) {
	src := rng.New(7)
	lo, hi := NewP2(0), NewP2(1)
	var o Online
	for i := 0; i < 5000; i++ {
		x := src.Normal()
		lo.Add(x)
		hi.Add(x)
		o.Add(x)
	}
	if lo.Value() != o.Min() || hi.Value() != o.Max() {
		t.Fatalf("q=0 %v want %v; q=1 %v want %v", lo.Value(), o.Min(), hi.Value(), o.Max())
	}
}

func TestP2PanicsOnBadQuantile(t *testing.T) {
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewP2(%v) did not panic", q)
				}
			}()
			NewP2(q)
		}()
	}
}
