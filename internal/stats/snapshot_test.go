package stats

import (
	"encoding/json"
	"math"
	"testing"
)

// fillStream folds a deterministic pseudo-random stream of length n into
// fresh aggregators, returning them. The values exercise negative numbers,
// huge magnitudes, and near-duplicates, so Welford rounding matters.
func fillStream(n int) []float64 {
	xs := make([]float64, n)
	s := uint64(0x9e3779b97f4a7c15)
	for i := range xs {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		xs[i] = float64(int64(s%2_000_003)-1_000_000) * 1.5e7
	}
	return xs
}

// TestOnlineSnapshotResumeBitExact interrupts a fold at every prefix length
// of a mixed stream and checks the resumed accumulator finishes bit-
// identical to an uninterrupted one — the property the distributed
// checkpoint relies on.
func TestOnlineSnapshotResumeBitExact(t *testing.T) {
	xs := fillStream(257)
	var full Online
	for _, x := range xs {
		full.Add(x)
	}
	for cut := 0; cut <= len(xs); cut += 16 {
		var head Online
		for _, x := range xs[:cut] {
			head.Add(x)
		}
		data, err := json.Marshal(head)
		if err != nil {
			t.Fatalf("cut %d: marshal: %v", cut, err)
		}
		var resumed Online
		if err := json.Unmarshal(data, &resumed); err != nil {
			t.Fatalf("cut %d: unmarshal: %v", cut, err)
		}
		for _, x := range xs[cut:] {
			resumed.Add(x)
		}
		if resumed != full {
			t.Fatalf("cut %d: resumed accumulator diverged: %+v vs %+v", cut, resumed, full)
		}
	}
}

// TestP2SnapshotResumeBitExact is the same interruption sweep for the P²
// sketch, including cuts inside the exact-first-five startup region.
func TestP2SnapshotResumeBitExact(t *testing.T) {
	xs := fillStream(211)
	full := NewP2(0.5)
	for _, x := range xs {
		full.Add(x)
	}
	for cut := 0; cut <= len(xs); cut++ {
		head := NewP2(0.5)
		for _, x := range xs[:cut] {
			head.Add(x)
		}
		data, err := json.Marshal(head)
		if err != nil {
			t.Fatalf("cut %d: marshal: %v", cut, err)
		}
		resumed := new(P2)
		if err := json.Unmarshal(data, resumed); err != nil {
			t.Fatalf("cut %d: unmarshal: %v", cut, err)
		}
		for _, x := range xs[cut:] {
			resumed.Add(x)
		}
		if *resumed != *full {
			t.Fatalf("cut %d: resumed sketch diverged: %+v vs %+v", cut, *resumed, *full)
		}
	}
}

// TestF64BitsSpecialValues pins the bit-pattern encoding on the values
// plain JSON cannot carry: NaN, the infinities, and -0.
func TestF64BitsSpecialValues(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 0, 1.5, -math.MaxFloat64, math.SmallestNonzeroFloat64} {
		data, err := json.Marshal(F64Bits(v))
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back F64Bits
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %v: %v", v, err)
		}
		if math.Float64bits(float64(back)) != math.Float64bits(v) {
			t.Fatalf("round trip changed bits: %v -> %s -> %v", v, data, float64(back))
		}
	}
	var f F64Bits
	if err := json.Unmarshal([]byte(`"nope"`), &f); err == nil {
		t.Fatal("expected error for non-numeric bit pattern")
	}
}
