package stats

import (
	"math"
	"sort"
)

// Online accumulates mean, variance, and extrema of a stream one value at a
// time (Welford's algorithm), so million-trial sweeps can be summarized
// without holding the samples. The zero value is an empty accumulator.
//
// Welford's update is sequential and order-sensitive in its floating-point
// rounding; the trial engine therefore feeds aggregators in trial-index
// order regardless of parallelism, keeping streamed summaries byte-stable.
type Online struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add folds one sample into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		o.min = math.Min(o.min, x)
		o.max = math.Max(o.max, x)
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of samples seen.
func (o *Online) N() int64 { return o.n }

// Mean returns the running mean (0 for an empty accumulator).
func (o *Online) Mean() float64 { return o.mean }

// Var returns the sample variance (n−1 denominator; 0 for n < 2).
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Std returns the sample standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Var()) }

// Min returns the smallest sample (0 for an empty accumulator).
func (o *Online) Min() float64 {
	if o.n == 0 {
		return 0
	}
	return o.min
}

// Max returns the largest sample (0 for an empty accumulator).
func (o *Online) Max() float64 {
	if o.n == 0 {
		return 0
	}
	return o.max
}

// P2 estimates a single quantile of a stream in O(1) memory with the P²
// algorithm of Jain & Chlamtac (CACM 1985): five markers track the minimum,
// the maximum, the target quantile, and the two midpoints, and each
// observation nudges the interior markers toward their desired positions
// with a piecewise-parabolic height update. The first five samples are
// stored exactly, so small streams return exact quantiles. Construct with
// NewP2.
type P2 struct {
	q    float64
	h    [5]float64 // marker heights
	pos  [5]float64 // actual marker positions, 1-based
	want [5]float64 // desired marker positions
	inc  [5]float64 // desired-position increments per observation
	n    int64
}

// NewP2 returns a P² estimator of the q-quantile, 0 <= q <= 1.
func NewP2(q float64) *P2 {
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic("stats: NewP2 called with quantile outside [0, 1]")
	}
	return &P2{
		q:   q,
		inc: [5]float64{0, q / 2, q, (1 + q) / 2, 1},
	}
}

// Quantile returns the quantile the estimator tracks.
func (p *P2) Quantile() float64 { return p.q }

// N returns the number of samples seen.
func (p *P2) N() int64 { return p.n }

// Add folds one sample into the estimator.
func (p *P2) Add(x float64) {
	if p.n < 5 {
		// Insertion-sort the first five samples into the marker heights.
		i := int(p.n)
		for i > 0 && p.h[i-1] > x {
			p.h[i] = p.h[i-1]
			i--
		}
		p.h[i] = x
		p.n++
		if p.n == 5 {
			p.pos = [5]float64{1, 2, 3, 4, 5}
			p.want = [5]float64{1, 1 + 2*p.q, 1 + 4*p.q, 3 + 2*p.q, 5}
		}
		return
	}
	p.n++

	// Locate the marker cell containing x, extending the extremes.
	var k int
	switch {
	case x < p.h[0]:
		p.h[0] = x
		k = 0
	case x >= p.h[4]:
		p.h[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < p.h[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := 0; i < 5; i++ {
		p.want[i] += p.inc[i]
	}

	// Nudge interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := p.parabolic(i, sign)
			if p.h[i-1] < h && h < p.h[i+1] {
				p.h[i] = h
			} else {
				p.h[i] = p.linear(i, sign)
			}
			p.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i one position in direction d (±1).
func (p *P2) parabolic(i int, d float64) float64 {
	return p.h[i] + d/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+d)*(p.h[i+1]-p.h[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-d)*(p.h[i]-p.h[i-1])/(p.pos[i]-p.pos[i-1]))
}

// linear is the fallback height prediction when the parabolic one would
// break marker monotonicity.
func (p *P2) linear(i int, d float64) float64 {
	j := i + int(d)
	return p.h[i] + d*(p.h[j]-p.h[i])/(p.pos[j]-p.pos[i])
}

// Value returns the current quantile estimate. With fewer than five samples
// it is the exact quantile of what has been seen; an empty estimator
// returns NaN.
func (p *P2) Value() float64 {
	if p.n == 0 {
		return math.NaN()
	}
	if p.n < 5 {
		sorted := append([]float64(nil), p.h[:p.n]...)
		sort.Float64s(sorted)
		return quantileSorted(sorted, p.q)
	}
	switch p.q {
	case 0:
		return p.h[0] // the minimum marker is tracked exactly
	case 1:
		return p.h[4] // as is the maximum
	default:
		return p.h[2]
	}
}
