package stats

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownValues(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary: %+v", s)
	}
	wantStd := math.Sqrt(2.5) // var = (4+1+0+1+4)/4
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Fatalf("std = %v, want %v", s.Std, wantStd)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Std != 0 || s.Mean != 7 || s.Median != 7 || s.P10 != 7 || s.P90 != 7 {
		t.Fatalf("single-sample summary: %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty sample accepted")
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Summarize(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize mutated its input")
	}
}

func TestSummaryBoundsProperty(t *testing.T) {
	check := func(raw []float64) bool {
		clean := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				// Keep magnitudes bounded so sums cannot overflow.
				clean = append(clean, math.Mod(x, 1e9))
			}
		}
		if len(clean) == 0 {
			return true
		}
		s, err := Summarize(clean)
		if err != nil {
			return false
		}
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max &&
			s.P10 <= s.Median && s.Median <= s.P90 && s.Std >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20},
	}
	for _, tc := range cases {
		got, err := Quantile(xs, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("q > 1 accepted")
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty accepted")
	}
}

func TestMeanCI(t *testing.T) {
	xs := []float64{2, 4, 6, 8}
	mean, hw, err := MeanCI(xs, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if mean != 5 {
		t.Fatalf("mean = %v", mean)
	}
	wantStd := math.Sqrt((9 + 1 + 1 + 9) / 3.0)
	if math.Abs(hw-1.96*wantStd/2) > 1e-12 {
		t.Fatalf("half-width = %v", hw)
	}
	_, hw, err = MeanCI([]float64{1}, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(hw, 1) {
		t.Fatal("single-sample CI must be infinite")
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi, err := WilsonInterval(50, 100, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo < 0.5 && 0.5 < hi) {
		t.Fatalf("Wilson(50/100) = [%v, %v] does not bracket 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Fatalf("Wilson(50/100) too wide: [%v, %v]", lo, hi)
	}
	// Extreme proportions stay in [0, 1].
	lo, hi, err = WilsonInterval(0, 10, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 || hi <= 0 || hi >= 1 {
		t.Fatalf("Wilson(0/10) = [%v, %v]", lo, hi)
	}
	lo, hi, err = WilsonInterval(10, 10, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if hi != 1 || lo >= 1 || lo <= 0 {
		t.Fatalf("Wilson(10/10) = [%v, %v]", lo, hi)
	}
	if _, _, err := WilsonInterval(5, 0, 1.96); err == nil {
		t.Fatal("zero trials accepted")
	}
	if _, _, err := WilsonInterval(11, 10, 1.96); err == nil {
		t.Fatal("successes > trials accepted")
	}
}

func TestWilsonCoverage(t *testing.T) {
	// Wilson intervals get narrower with more trials at fixed proportion.
	_, hi1, err := WilsonInterval(50, 100, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	lo1, _, _ := WilsonInterval(50, 100, 1.96)
	lo2, hi2, err := WilsonInterval(500, 1000, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if hi2-lo2 >= hi1-lo1 {
		t.Fatal("interval did not narrow with more trials")
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	slope, intercept, r2, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-3) > 1e-12 || math.Abs(r2-1) > 1e-12 {
		t.Fatalf("fit = (%v, %v, %v)", slope, intercept, r2)
	}
}

func TestLinearFitNoise(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{2.1, 3.9, 6.2, 7.8, 10.1, 11.9} // ~2x
	slope, _, r2, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2) > 0.1 {
		t.Fatalf("slope = %v", slope)
	}
	if r2 < 0.99 {
		t.Fatalf("r2 = %v", r2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, _, err := LinearFit([]float64{1}, []float64{1}); !errors.Is(err, ErrEmpty) {
		t.Fatal("single point accepted")
	}
	if _, _, _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, _, _, err := LinearFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Fatal("constant x accepted")
	}
}

func TestPowerFit(t *testing.T) {
	// y = 3 x^1.5
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 1.5)
	}
	a, b, r2, err := PowerFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-3) > 1e-9 || math.Abs(b-1.5) > 1e-9 || r2 < 1-1e-9 {
		t.Fatalf("power fit = (%v, %v, %v)", a, b, r2)
	}
	if _, _, _, err := PowerFit([]float64{0, 1}, []float64{1, 1}); err == nil {
		t.Fatal("non-positive x accepted")
	}
}

func TestChiSquare(t *testing.T) {
	// Perfect match gives ~0.
	obs := []int64{25, 25, 25, 25}
	stat, dof, err := ChiSquareUniform(obs)
	if err != nil {
		t.Fatal(err)
	}
	if stat != 0 || dof != 3 {
		t.Fatalf("chi2 = (%v, %d)", stat, dof)
	}
	// Known value: obs [10, 30] vs uniform: exp 20 each, chi2 = 100/20*2 = 10.
	stat, _, err = ChiSquareUniform([]int64{10, 30})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stat-10) > 1e-12 {
		t.Fatalf("chi2 = %v, want 10", stat)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, _, err := ChiSquare([]int64{1}, []float64{1}); !errors.Is(err, ErrEmpty) {
		t.Fatal("single category accepted")
	}
	if _, _, err := ChiSquare([]int64{1, 1}, []float64{0.5}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, _, err := ChiSquare([]int64{1, 1}, []float64{0.7, 0.7}); err == nil {
		t.Fatal("probabilities not summing to 1 accepted")
	}
	if _, _, err := ChiSquare([]int64{0, 0}, []float64{0.5, 0.5}); !errors.Is(err, ErrEmpty) {
		t.Fatal("zero total accepted")
	}
	if _, _, err := ChiSquare([]int64{-1, 2}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("negative count accepted")
	}
	// Zero expected probability with nonzero observed count -> +Inf.
	stat, _, err := ChiSquare([]int64{1, 1}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(stat, 1) {
		t.Fatalf("chi2 = %v, want +Inf", stat)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1.9, 2, 5.5, 9.9, -3, 42} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	want := []int64{3, 1, 1, 0, 2} // -3 clamps to bin 0, 42 clamps to bin 4
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("counts = %v, want %v", h.Counts, want)
		}
	}
	if s := h.String(); !strings.Contains(s, "#") {
		t.Fatalf("histogram rendering missing bars:\n%s", s)
	}
}

func TestNewHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("lo == hi accepted")
	}
}

func TestSummaryString(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if str := s.String(); !strings.Contains(str, "mean=2") {
		t.Fatalf("String = %q", str)
	}
}

func TestKSTwoSampleIdentical(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	d, err := KSTwoSample(xs, xs)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("KS of a sample against itself = %v, want 0", d)
	}
}

func TestKSTwoSampleDisjoint(t *testing.T) {
	d, err := KSTwoSample([]float64{1, 2, 3}, []float64{10, 11, 12})
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Fatalf("KS of disjoint samples = %v, want 1", d)
	}
}

func TestKSTwoSampleKnownValue(t *testing.T) {
	// F_xs jumps at 1,2,3,4 (steps of 1/4); F_ys jumps at 2.5,3.5,4.5,5.5.
	// Just before 2.5 the gap is |2/4 - 0| = 0.5, the supremum.
	d, err := KSTwoSample([]float64{1, 2, 3, 4}, []float64{2.5, 3.5, 4.5, 5.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("KS = %v, want 0.5", d)
	}
}

func TestKSTwoSampleUnsortedInput(t *testing.T) {
	a := []float64{3, 1, 2}
	b := []float64{2, 3, 1}
	d, err := KSTwoSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("KS of permuted identical samples = %v, want 0", d)
	}
}

func TestKSTwoSampleEmpty(t *testing.T) {
	if _, err := KSTwoSample(nil, []float64{1}); err == nil {
		t.Fatal("expected error for empty first sample")
	}
	if _, err := KSTwoSample([]float64{1}, nil); err == nil {
		t.Fatal("expected error for empty second sample")
	}
}

func TestKSCriticalValue(t *testing.T) {
	// c(0.05) = sqrt(-ln(0.025)/2) ~ 1.358; with n = m = 100 the critical
	// value is 1.358*sqrt(2/100) ~ 0.192.
	got := KSCriticalValue(100, 100, 0.05)
	if math.Abs(got-0.19206) > 1e-3 {
		t.Fatalf("KSCriticalValue(100,100,0.05) = %v, want ~0.192", got)
	}
	if !math.IsNaN(KSCriticalValue(0, 10, 0.05)) {
		t.Fatal("expected NaN for invalid sample size")
	}
}
