// Package stats provides the summary statistics, confidence intervals,
// goodness-of-fit measures, and least-squares fits used to post-process
// experiment trials. Everything is implemented from first principles on the
// standard library.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// ErrEmpty is returned when a computation needs at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Summary holds the basic statistics of a sample.
type Summary struct {
	// N is the sample size.
	N int
	// Mean is the arithmetic mean.
	Mean float64
	// Std is the sample standard deviation (n−1 denominator; 0 for n < 2).
	Std float64
	// Min and Max are the extreme values.
	Min, Max float64
	// Median is the 0.5 quantile.
	Median float64
	// P10 and P90 are the 0.1 and 0.9 quantiles.
	P10, P90 float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	mean := sum / float64(len(sorted))
	var ss float64
	for _, x := range sorted {
		d := x - mean
		ss += d * d
	}
	std := 0.0
	if len(sorted) > 1 {
		std = math.Sqrt(ss / float64(len(sorted)-1))
	}
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		Std:    std,
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Median: quantileSorted(sorted, 0.5),
		P10:    quantileSorted(sorted, 0.1),
		P90:    quantileSorted(sorted, 0.9),
	}, nil
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g med=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.Max)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MeanCI returns the mean of xs and the half-width of a z-score confidence
// interval (z = 1.96 for ~95%).
func MeanCI(xs []float64, z float64) (mean, halfWidth float64, err error) {
	s, err := Summarize(xs)
	if err != nil {
		return 0, 0, err
	}
	if s.N < 2 {
		return s.Mean, math.Inf(1), nil
	}
	return s.Mean, z * s.Std / math.Sqrt(float64(s.N)), nil
}

// WilsonInterval returns the Wilson score interval for a binomial
// proportion with the given success count, trial count, and z-score.
func WilsonInterval(successes, trials int, z float64) (lo, hi float64, err error) {
	if trials <= 0 || successes < 0 || successes > trials {
		return 0, 0, fmt.Errorf("stats: invalid proportion %d/%d", successes, trials)
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi, nil
}

// LinearFit returns the least-squares line y = slope·x + intercept through
// the points, together with the coefficient of determination R².
func LinearFit(xs, ys []float64) (slope, intercept, r2 float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, fmt.Errorf("stats: mismatched lengths %d and %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, 0, 0, ErrEmpty
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, 0, 0, errors.New("stats: degenerate fit (constant x)")
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		return slope, intercept, 1, nil
	}
	r2 = sxy * sxy / (sxx * syy)
	return slope, intercept, r2, nil
}

// PowerFit fits y = a·x^b by least squares in log-log space and returns
// (a, b, r2). All inputs must be positive.
func PowerFit(xs, ys []float64) (a, b, r2 float64, err error) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	if len(xs) != len(ys) {
		return 0, 0, 0, fmt.Errorf("stats: mismatched lengths %d and %d", len(xs), len(ys))
	}
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, 0, 0, fmt.Errorf("stats: PowerFit needs positive data, got (%v, %v)", xs[i], ys[i])
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	slope, intercept, r2, err := LinearFit(lx, ly)
	if err != nil {
		return 0, 0, 0, err
	}
	return math.Exp(intercept), slope, r2, nil
}

// KSTwoSample returns the two-sample Kolmogorov-Smirnov statistic
// D = sup_t |F_xs(t) − F_ys(t)|, the largest vertical distance between the
// empirical CDFs of the two samples. Both samples must be non-empty.
func KSTwoSample(xs, ys []float64) (float64, error) {
	if len(xs) == 0 || len(ys) == 0 {
		return 0, ErrEmpty
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	var d float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		// Advance past every copy of the smaller value in both samples so
		// the CDF gap is measured between jump points, never mid-tie.
		v := math.Min(a[i], b[j])
		for i < len(a) && a[i] <= v {
			i++
		}
		for j < len(b) && b[j] <= v {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(a)) - float64(j)/float64(len(b)))
		if diff > d {
			d = diff
		}
	}
	return d, nil
}

// KSCriticalValue returns the large-sample critical value of the two-sample
// KS statistic at significance level alpha (0 < alpha < 1) for sample sizes
// n and m: c(α)·√((n+m)/(n·m)) with c(α) = √(−ln(α/2)/2). A statistic above
// this value rejects "same distribution" at level alpha.
func KSCriticalValue(n, m int, alpha float64) float64 {
	if n <= 0 || m <= 0 || alpha <= 0 || alpha >= 1 {
		return math.NaN()
	}
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	return c * math.Sqrt(float64(n+m)/(float64(n)*float64(m)))
}

// ChiSquare returns the chi-square statistic of observed counts against
// expected probabilities (which must sum to ~1) and the degrees of freedom.
func ChiSquare(observed []int64, expectedProb []float64) (stat float64, dof int, err error) {
	if len(observed) != len(expectedProb) {
		return 0, 0, fmt.Errorf("stats: mismatched lengths %d and %d", len(observed), len(expectedProb))
	}
	if len(observed) < 2 {
		return 0, 0, ErrEmpty
	}
	var total int64
	var psum float64
	for i, o := range observed {
		if o < 0 || expectedProb[i] < 0 {
			return 0, 0, errors.New("stats: negative count or probability")
		}
		total += o
		psum += expectedProb[i]
	}
	if math.Abs(psum-1) > 1e-9 {
		return 0, 0, fmt.Errorf("stats: expected probabilities sum to %v, want 1", psum)
	}
	if total == 0 {
		return 0, 0, ErrEmpty
	}
	for i, o := range observed {
		exp := expectedProb[i] * float64(total)
		if exp == 0 {
			if o != 0 {
				return math.Inf(1), len(observed) - 1, nil
			}
			continue
		}
		d := float64(o) - exp
		stat += d * d / exp
	}
	return stat, len(observed) - 1, nil
}

// ChiSquareUniform is ChiSquare against the uniform distribution.
func ChiSquareUniform(observed []int64) (stat float64, dof int, err error) {
	p := make([]float64, len(observed))
	for i := range p {
		p[i] = 1 / float64(len(observed))
	}
	return ChiSquare(observed, p)
}

// Histogram is a fixed-bin histogram over [Lo, Hi).
type Histogram struct {
	// Lo and Hi delimit the covered range.
	Lo, Hi float64
	// Counts holds one counter per bin; out-of-range samples land in the
	// first or last bin.
	Counts []int64
	total  int64
}

// NewHistogram returns a histogram with the given number of bins. bins must
// be positive and lo < hi.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 || !(lo < hi) {
		return nil, fmt.Errorf("stats: invalid histogram [%v, %v) with %d bins", lo, hi, bins)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}, nil
}

// Add records a sample.
func (h *Histogram) Add(x float64) {
	bin := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if bin < 0 {
		bin = 0
	}
	if bin >= len(h.Counts) {
		bin = len(h.Counts) - 1
	}
	h.Counts[bin]++
	h.total++
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() int64 { return h.total }

// String renders the histogram as ASCII bars.
func (h *Histogram) String() string {
	var b strings.Builder
	var maxCount int64 = 1
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	width := float64(h.Hi-h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := strings.Repeat("#", int(40*float64(c)/float64(maxCount)))
		fmt.Fprintf(&b, "[%10.3g, %10.3g) %8d %s\n", h.Lo+float64(i)*width, h.Lo+float64(i+1)*width, c, bar)
	}
	return b.String()
}
