package stats

import (
	"encoding/json"
	"fmt"
	"math"
)

// This file makes the streaming aggregators checkpointable: Online and P2
// expose bit-exact serializable snapshots of their internal state, so the
// distributed coordinator (internal/dist) can freeze a half-finished fold,
// write it to disk, and resume it later with results byte-identical to an
// uninterrupted run. Welford's update is order-sensitive in its floating-
// point rounding, so "close enough" round-tripping is not enough — every
// float travels as its IEEE-754 bit pattern, which also keeps NaN and the
// infinities representable (encoding/json rejects them as bare numbers).

// F64Bits is a float64 that marshals to JSON as the decimal form of its
// IEEE-754 bit pattern (a uint64), making the round trip bit-exact for
// every value, including -0, NaN, and the infinities. Snapshot types use it
// for all floating-point state.
type F64Bits float64

// MarshalJSON encodes the value's IEEE-754 bit pattern as a JSON number.
func (f F64Bits) MarshalJSON() ([]byte, error) {
	return json.Marshal(math.Float64bits(float64(f)))
}

// UnmarshalJSON decodes a JSON number holding an IEEE-754 bit pattern.
func (f *F64Bits) UnmarshalJSON(b []byte) error {
	var bits uint64
	if err := json.Unmarshal(b, &bits); err != nil {
		return fmt.Errorf("stats: F64Bits wants a uint64 bit pattern: %w", err)
	}
	*f = F64Bits(math.Float64frombits(bits))
	return nil
}

// OnlineSnapshot is the complete serializable state of an Online
// accumulator. Restoring it reproduces the accumulator bit-for-bit, so a
// fold interrupted after trial t and resumed from a snapshot converges to
// exactly the bytes an uninterrupted fold would have produced.
type OnlineSnapshot struct {
	// N is the number of samples folded so far.
	N int64 `json:"n"`
	// Mean is the running mean.
	Mean F64Bits `json:"mean"`
	// M2 is the running sum of squared deviations.
	M2 F64Bits `json:"m2"`
	// Min is the smallest sample seen.
	Min F64Bits `json:"min"`
	// Max is the largest sample seen.
	Max F64Bits `json:"max"`
}

// Snapshot returns the accumulator's complete state.
func (o *Online) Snapshot() OnlineSnapshot {
	return OnlineSnapshot{
		N:    o.n,
		Mean: F64Bits(o.mean),
		M2:   F64Bits(o.m2),
		Min:  F64Bits(o.min),
		Max:  F64Bits(o.max),
	}
}

// Restore overwrites the accumulator with the snapshot's state.
func (o *Online) Restore(s OnlineSnapshot) {
	o.n = s.N
	o.mean = float64(s.Mean)
	o.m2 = float64(s.M2)
	o.min = float64(s.Min)
	o.max = float64(s.Max)
}

// MarshalJSON serializes the accumulator as its snapshot, so structs that
// embed an Online by value checkpoint transparently.
func (o Online) MarshalJSON() ([]byte, error) {
	return json.Marshal(o.Snapshot())
}

// UnmarshalJSON restores the accumulator from a marshaled snapshot.
func (o *Online) UnmarshalJSON(b []byte) error {
	var s OnlineSnapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	o.Restore(s)
	return nil
}

// P2Snapshot is the complete serializable state of a P2 quantile estimator:
// the tracked quantile, the five marker heights and positions, and the
// sample count. As with OnlineSnapshot, restoring reproduces the estimator
// bit-for-bit.
type P2Snapshot struct {
	// Q is the tracked quantile.
	Q F64Bits `json:"q"`
	// H holds the five marker heights.
	H [5]F64Bits `json:"h"`
	// Pos holds the actual marker positions (1-based).
	Pos [5]F64Bits `json:"pos"`
	// Want holds the desired marker positions.
	Want [5]F64Bits `json:"want"`
	// N is the number of samples folded so far.
	N int64 `json:"n"`
}

// Snapshot returns the estimator's complete state.
func (p *P2) Snapshot() P2Snapshot {
	s := P2Snapshot{Q: F64Bits(p.q), N: p.n}
	for i := 0; i < 5; i++ {
		s.H[i] = F64Bits(p.h[i])
		s.Pos[i] = F64Bits(p.pos[i])
		s.Want[i] = F64Bits(p.want[i])
	}
	return s
}

// Restore overwrites the estimator with the snapshot's state. The
// desired-position increments are recomputed from the quantile, exactly as
// NewP2 sets them.
func (p *P2) Restore(s P2Snapshot) {
	p.q = float64(s.Q)
	p.n = s.N
	for i := 0; i < 5; i++ {
		p.h[i] = float64(s.H[i])
		p.pos[i] = float64(s.Pos[i])
		p.want[i] = float64(s.Want[i])
	}
	p.inc = [5]float64{0, p.q / 2, p.q, (1 + p.q) / 2, 1}
}

// MarshalJSON serializes the estimator as its snapshot.
func (p *P2) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.Snapshot())
}

// UnmarshalJSON restores the estimator from a marshaled snapshot.
func (p *P2) UnmarshalJSON(b []byte) error {
	var s P2Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	p.Restore(s)
	return nil
}
