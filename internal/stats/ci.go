package stats

import "math"

// This file provides the confidence-interval machinery behind adaptive
// (sequential-stopping) trial counts: closed-form intervals computed from an
// Online aggregator, the quantile functions they need, and a small
// StoppingRule combinator language so experiments can say "at least 5 trials,
// then stop once the 95% CI half-width is below 2% of the mean" and hand the
// composed rule to the trial engine.

// CI is a two-sided confidence interval for a mean: Mean ± Half at the given
// confidence level. A degenerate interval (too few samples to estimate a
// width) has Half = +Inf, which correctly never satisfies a width target.
type CI struct {
	// Level is the two-sided confidence level, e.g. 0.95.
	Level float64
	// Mean is the interval center, the sample mean.
	Mean float64
	// Half is the interval half-width.
	Half float64
}

// Lo returns the lower endpoint Mean − Half.
func (c CI) Lo() float64 { return c.Mean - c.Half }

// Hi returns the upper endpoint Mean + Half.
func (c CI) Hi() float64 { return c.Mean + c.Half }

// Rel returns the relative half-width |Half / Mean|, the quantity sequential
// stopping targets. It is +Inf when the mean is zero or the width undefined,
// so width targets are never met vacuously.
func (c CI) Rel() float64 {
	if c.Mean == 0 || math.IsInf(c.Half, 1) || math.IsNaN(c.Half) {
		return math.Inf(1)
	}
	return math.Abs(c.Half / c.Mean)
}

// StudentTCI returns the Student-t confidence interval for the mean of the
// samples folded into o: mean ± t_{1−α/2, n−1}·s/√n. With fewer than two
// samples the half-width is +Inf. level must be in (0, 1).
func StudentTCI(o *Online, level float64) CI {
	checkLevel(level)
	ci := CI{Level: level, Mean: o.Mean(), Half: math.Inf(1)}
	n := o.N()
	if n < 2 {
		return ci
	}
	t := TQuantile((1+level)/2, float64(n-1))
	ci.Half = t * o.Std() / math.Sqrt(float64(n))
	return ci
}

// BernsteinCI returns the empirical-Bernstein confidence interval for the
// mean of the samples folded into o (Audibert, Munos & Szepesvári 2009;
// Maurer & Pontil 2009):
//
//	mean ± ( √(2·V·ln(3/α)/n) + 3·R·ln(3/α)/n ),   α = 1 − level,
//
// where V is the sample variance and R bounds the support range. Unlike the
// Student-t interval it is non-asymptotic — valid at every n for bounded
// samples — and its variance term makes it far tighter than Hoeffding on
// low-variance streams. rang is the a-priori range bound R; pass rang <= 0
// to fall back on the observed max − min, a heuristic that voids the formal
// coverage guarantee but tracks it closely for concentrated distributions
// (documented trade-off: consensus times have no hard upper bound, so the
// observed range is the only range available). With fewer than two samples
// the half-width is +Inf.
func BernsteinCI(o *Online, level, rang float64) CI {
	checkLevel(level)
	ci := CI{Level: level, Mean: o.Mean(), Half: math.Inf(1)}
	n := o.N()
	if n < 2 {
		return ci
	}
	if rang <= 0 {
		rang = o.Max() - o.Min()
	}
	logTerm := math.Log(3 / (1 - level))
	nf := float64(n)
	ci.Half = math.Sqrt(2*o.Var()*logTerm/nf) + 3*rang*logTerm/nf
	return ci
}

func checkLevel(level float64) {
	if !(level > 0 && level < 1) {
		panic("stats: confidence level outside (0, 1)")
	}
}

// NormalQuantile returns the standard normal quantile Φ⁻¹(p) for p in (0, 1)
// using Acklam's rational approximation refined by one Halley step on the
// complementary error function. It is accurate to ~1e-15 wherever erfc is
// representable (|Φ⁻¹(p)| < 37, i.e. p down to ~1e-300); the deeper
// subnormal tail — where erfc underflows and the rational approximation
// leaves its designed domain — is instead inverted through the asymptotic
// tail law Φ(−t) ≈ φ(t)/t (Mills' ratio), accurate to ~1e-6 relative down
// to the smallest subnormal p.
func NormalQuantile(p float64) float64 {
	if !(p > 0 && p < 1) {
		panic("stats: NormalQuantile argument outside (0, 1)")
	}
	// Acklam's coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// Past x = −37, erfc underflows so Halley cannot run (and this is
	// reachable only on the lower side: the upper branch caps at
	// 1 − p >= ulp, i.e. x ≲ 8.2). Invert the Mills-ratio tail law
	// Φ(−t) ≈ exp(−t²/2)/(t·√(2π)) = p instead: the fixed-point iteration
	// t ← √(2·(−ln p − ln(t·√(2π)))) converges in a handful of steps from
	// the rational estimate and lands within ~1e-6 relative of the true
	// quantile even for the smallest subnormal p.
	if x <= -37 {
		// math.Log collapses the exponent of subnormal arguments (observed
		// on this toolchain: Log(1e-320) = Log-of-smallest-normal); scaling
		// by 2¹⁰²² first is exact and keeps the argument normal, since p
		// here is at most ~1e-300.
		l := 1022*math.Ln2 - math.Log(p*0x1p1022)
		t := -x
		for i := 0; i < 4; i++ {
			t = math.Sqrt(2 * (l - math.Log(t*math.Sqrt(2*math.Pi))))
		}
		return -t
	}
	// One Halley refinement: e = Φ(x) − p, u = e·√(2π)·exp(x²/2).
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}

// TQuantile returns the Student-t quantile t_{p, ν} for p in (0, 1) and
// ν > 0 degrees of freedom, by bisection on the exact CDF (regularized
// incomplete beta function), deterministic to ~1e-12. Large ν (> 1e6) uses
// the normal quantile directly, where the distributions are
// indistinguishable at double precision.
func TQuantile(p, nu float64) float64 {
	if !(p > 0 && p < 1) {
		panic("stats: TQuantile argument outside (0, 1)")
	}
	if !(nu > 0) {
		panic("stats: TQuantile needs positive degrees of freedom")
	}
	if nu > 1e6 {
		return NormalQuantile(p)
	}
	if p == 0.5 {
		return 0
	}
	if p < 0.5 {
		return -TQuantile(1-p, nu)
	}
	// Bracket the root: the normal quantile is a lower bound for p > 0.5,
	// and doubling from there finds an upper bound quickly even at ν = 1.
	lo := 0.0
	hi := math.Max(1, 2*NormalQuantile(p))
	for tCDF(hi, nu) < p {
		hi *= 2
		if math.IsInf(hi, 1) {
			return hi
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if mid == lo || mid == hi {
			break
		}
		if tCDF(mid, nu) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// tCDF returns P(T <= t) for Student's t with ν degrees of freedom, via
// F(t) = 1 − ½·I_{ν/(ν+t²)}(ν/2, ½) for t >= 0 and symmetry below 0.
func tCDF(t, nu float64) float64 {
	if t < 0 {
		return 1 - tCDF(-t, nu)
	}
	x := nu / (nu + t*t)
	return 1 - 0.5*BetaIncReg(nu/2, 0.5, x)
}

// BetaIncReg returns the regularized incomplete beta function I_x(a, b) for
// a, b > 0 and x in [0, 1], evaluated with the standard continued fraction
// (modified Lentz algorithm), using the symmetry I_x(a,b) = 1 − I_{1−x}(b,a)
// to stay in the rapidly-converging regime.
func BetaIncReg(a, b, x float64) float64 {
	switch {
	case !(a > 0) || !(b > 0):
		panic("stats: BetaIncReg needs positive parameters")
	case math.IsNaN(x) || x < 0 || x > 1:
		panic("stats: BetaIncReg argument outside [0, 1]")
	case x == 0:
		return 0
	case x == 1:
		return 1
	}
	// Prefactor x^a·(1−x)^b / (a·B(a,b)), in log space for stability.
	lbeta := lgamma(a) + lgamma(b) - lgamma(a+b)
	front := math.Exp(a*math.Log(x)+b*math.Log1p(-x)-lbeta) / a
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x)
	}
	lbetaSym := lbeta // B(a,b) is symmetric
	frontSym := math.Exp(b*math.Log1p(-x)+a*math.Log(x)-lbetaSym) / b
	return 1 - frontSym*betaCF(b, a, 1-x)
}

// betaCF evaluates the continued fraction of the incomplete beta function
// with the modified Lentz algorithm (Numerical Recipes §6.4 structure,
// re-derived; converges in O(√(a+b)) iterations for x below the switchover).
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 500
		tiny    = 1e-300
		eps     = 1e-15
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		mf := float64(m)
		m2 := 2 * mf
		// Even step.
		aa := mf * (b - mf) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + mf) * (qab + mf) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// lgamma is math.Lgamma without the sign return (all call sites here have
// positive arguments).
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// ChiSquareCritical returns the upper-tail critical value of the chi-square
// distribution with dof degrees of freedom at significance level alpha: the
// value c with P(X > c) = alpha, via the Wilson–Hilferty cube approximation
// (relative error below ~1% for dof >= 3, conservative enough for
// goodness-of-fit gates with generous alpha).
func ChiSquareCritical(dof int, alpha float64) float64 {
	if dof <= 0 || !(alpha > 0 && alpha < 1) {
		return math.NaN()
	}
	k := float64(dof)
	z := NormalQuantile(1 - alpha)
	t := 1 - 2/(9*k) + z*math.Sqrt(2/(9*k))
	return k * t * t * t
}

// StoppingRule decides, from the aggregate state of one metric, whether
// sampling that metric can stop. Rules are pure functions of the aggregate,
// so a rule sequence evaluated in trial-index order is independent of
// parallelism — the property that keeps adaptive runs byte-identical to
// fixed-count runs of the same length.
type StoppingRule interface {
	// Stop reports whether the metric aggregated in o needs no more samples.
	Stop(o *Online) bool
}

// StopFunc adapts a function to the StoppingRule interface.
type StopFunc func(o *Online) bool

// Stop implements StoppingRule.
func (f StopFunc) Stop(o *Online) bool { return f(o) }

// RelWidth returns a rule that stops once the Student-t confidence interval
// at the given level has relative half-width at most rel. It never stops on
// fewer than two samples (the width is undefined there); compose with AfterN
// to guard against lucky early agreement among a handful of trials.
func RelWidth(rel, level float64) StoppingRule {
	checkLevel(level)
	return StopFunc(func(o *Online) bool {
		return StudentTCI(o, level).Rel() <= rel
	})
}

// RelWidthBernstein is RelWidth with the empirical-Bernstein interval (range
// bound rang; <= 0 uses the observed range, see BernsteinCI).
func RelWidthBernstein(rel, level, rang float64) StoppingRule {
	checkLevel(level)
	return StopFunc(func(o *Online) bool {
		return BernsteinCI(o, level, rang).Rel() <= rel
	})
}

// AfterN returns a rule that stops only once at least n samples were seen.
// Alone it reproduces a fixed trial count; composed under All it acts as a
// minimum-sample guard for width-based rules.
func AfterN(n int64) StoppingRule {
	return StopFunc(func(o *Online) bool { return o.N() >= n })
}

// All composes rules conjunctively: stop only when every rule stops. With no
// rules it stops immediately.
func All(rules ...StoppingRule) StoppingRule {
	return StopFunc(func(o *Online) bool {
		for _, r := range rules {
			if !r.Stop(o) {
				return false
			}
		}
		return true
	})
}

// Any composes rules disjunctively: stop as soon as one rule stops. With no
// rules it never stops.
func Any(rules ...StoppingRule) StoppingRule {
	return StopFunc(func(o *Online) bool {
		for _, r := range rules {
			if r.Stop(o) {
				return true
			}
		}
		return false
	})
}
