package stats

import (
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
)

// Accuracy tests for the P² quantile sketch on skewed distributions (ISSUE
// 3): unlike the symmetric cases in online_test.go, log-normal and
// geometric streams concentrate mass far from the median, the regime where
// the piecewise-parabolic marker update is known to drift if mis-implemented.

// TestP2SkewedAccuracy compares the sketch against the exact sorted-sample
// quantile on heavily skewed continuous (log-normal, σ = 1.5) and discrete
// (geometric, p = 0.05) streams, at the tail quantiles experiments actually
// report. Tolerances are relative to the exact quantile value and were
// chosen with ≈3× headroom over the observed error at these fixed seeds, so
// the test is deterministic yet still catches an estimator regression.
func TestP2SkewedAccuracy(t *testing.T) {
	const samples = 50000
	cases := []struct {
		name string
		q    float64
		gen  func(*rng.Source) float64
		tol  float64 // relative error bound
	}{
		{"lognormal-p10", 0.1, logNormal, 0.05},
		{"lognormal-median", 0.5, logNormal, 0.05},
		{"lognormal-p90", 0.9, logNormal, 0.10},
		{"geometric-median", 0.5, geometric, 0.08},
		{"geometric-p90", 0.9, geometric, 0.08},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := rng.New(401)
			sketch := NewP2(tc.q)
			xs := make([]float64, samples)
			for i := range xs {
				xs[i] = tc.gen(src)
				sketch.Add(xs[i])
			}
			exact, err := Quantile(xs, tc.q)
			if err != nil {
				t.Fatal(err)
			}
			if exact == 0 {
				t.Fatalf("degenerate exact quantile %v", exact)
			}
			relErr := math.Abs(sketch.Value()-exact) / math.Abs(exact)
			if relErr > tc.tol {
				t.Fatalf("P2(%v) = %v, exact %v (rel err %.4f > %.4f)",
					tc.q, sketch.Value(), exact, relErr, tc.tol)
			}
		})
	}
}

func logNormal(s *rng.Source) float64 { return math.Exp(1.5 * s.Normal()) }

func geometric(s *rng.Source) float64 { return float64(s.Geometric(0.05)) }

// TestP2SmallNExactAllQuantiles is the exhaustive small-n (< 5 markers)
// edge-case sweep for P2.Value: at every prefix length 1..4 of an unsorted
// stream with duplicates, and at every quantile including the endpoints,
// the sketch must return exactly the linear-interpolated sorted-sample
// quantile (it stores the samples verbatim there).
func TestP2SmallNExactAllQuantiles(t *testing.T) {
	stream := []float64{4, -1, 4, 0.5}
	quantiles := []float64{0, 0.25, 0.5, 0.75, 1}
	for _, q := range quantiles {
		sketch := NewP2(q)
		for n := 1; n <= len(stream); n++ {
			sketch.Add(stream[n-1])
			prefix := append([]float64(nil), stream[:n]...)
			sort.Float64s(prefix)
			want := quantileSorted(prefix, q)
			if got := sketch.Value(); got != want {
				t.Fatalf("q=%v n=%d: P2 = %v, exact = %v", q, n, got, want)
			}
			if sketch.N() != int64(n) {
				t.Fatalf("q=%v n=%d: N() = %d", q, n, sketch.N())
			}
		}
	}
}

// TestP2FifthSampleTransition pins the switch from stored samples to marker
// tracking: with exactly five samples the markers are the five sorted
// values, so the median estimate is still the exact middle order statistic.
func TestP2FifthSampleTransition(t *testing.T) {
	sketch := NewP2(0.5)
	for _, x := range []float64{9, 2, 7, 2, 5} {
		sketch.Add(x)
	}
	if got := sketch.Value(); got != 5 {
		t.Fatalf("median of {9,2,7,2,5} at n=5 = %v, want 5", got)
	}
	// The min/max markers stay exact from here on.
	lo, hi := NewP2(0), NewP2(1)
	for _, x := range []float64{9, 2, 7, 2, 5, -3, 11, 4} {
		lo.Add(x)
		hi.Add(x)
	}
	if lo.Value() != -3 || hi.Value() != 11 {
		t.Fatalf("extremes after transition: min %v want -3, max %v want 11", lo.Value(), hi.Value())
	}
}

// TestP2ConstantAndTiedStreams drives the marker update through degenerate
// spacing: constant streams and streams that are mostly one repeated value
// must neither panic (division by zero marker gaps) nor leave the support.
func TestP2ConstantAndTiedStreams(t *testing.T) {
	c := NewP2(0.5)
	for i := 0; i < 1000; i++ {
		c.Add(3)
	}
	if got := c.Value(); got != 3 {
		t.Fatalf("median of constant stream = %v", got)
	}
	src := rng.New(17)
	tied := NewP2(0.9)
	for i := 0; i < 10000; i++ {
		x := 1.0
		if src.Float64() < 0.05 {
			x = 2
		}
		tied.Add(x)
	}
	if v := tied.Value(); v < 1 || v > 2 {
		t.Fatalf("p90 of tied stream = %v outside support [1, 2]", v)
	}
}
