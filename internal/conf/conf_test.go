package conf

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/u128"
)

func TestFromSupport(t *testing.T) {
	c, err := FromSupport([]int64{3, 2, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 10 || c.K() != 3 || c.Undecided != 4 {
		t.Fatalf("unexpected shape: %v", c)
	}
}

func TestFromSupportCopies(t *testing.T) {
	src := []int64{5, 5}
	c, err := FromSupport(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	src[0] = 99
	if c.Support[0] != 5 {
		t.Fatal("FromSupport must copy the slice")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want error
	}{
		{"no opinions", Config{}, ErrNoOpinions},
		{"negative support", Config{Support: []int64{-1}}, ErrNegative},
		{"negative undecided", Config{Support: []int64{1}, Undecided: -2}, ErrNegative},
		{"empty population", Config{Support: []int64{0, 0}}, ErrEmpty},
		{"too large", Config{Support: []int64{MaxN, 1}}, ErrTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.cfg.Validate(); !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestMaxNBoundary(t *testing.T) {
	// MaxN = 10¹¹ is set by the constraints documented on the constant, not
	// by the interaction clock any more (the u128 clock holds n² = 10²²
	// with ~54 bits of headroom). Pin each documented constraint:
	//
	//   - n² must fit u128 without saturating, with room for the
	//     n²·ln n-scale worst-case consensus times;
	//   - 2·MaxN must stay exact in float64 (the probability layer uses
	//     quantities up to 2n) and fit int64 (Validate's running sum).
	nSq := u128.From64(MaxN).Mul(u128.From64(MaxN))
	if want := (u128.U128{Hi: 542, Lo: 1864712049423024128}); nSq != want {
		t.Fatalf("MaxN² = %v, want 10²² = %v", nSq, want)
	}
	if nSq.Len() > 128-50 {
		t.Fatalf("MaxN² uses %d bits; headroom for n²·ln n budgets is gone", nSq.Len())
	}
	if two := 2 * MaxN; two != int64(float64(two)) || two > 1<<53 {
		t.Fatalf("2·MaxN = %d is not exact in float64", two)
	}
	if _, err := Uniform(MaxN, 2, 0); err != nil {
		t.Fatalf("Uniform(MaxN) rejected: %v", err)
	}
	if _, err := Uniform(MaxN+1, 2, 0); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Uniform(MaxN+1) = %v, want ErrTooLarge", err)
	}
}

func TestUniform(t *testing.T) {
	c, err := Uniform(100, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 100 || c.Undecided != 10 {
		t.Fatalf("shape: %v", c)
	}
	if c.Support[0] != 30 || c.Support[1] != 30 || c.Support[2] != 30 {
		t.Fatalf("support: %v", c.Support)
	}
	c2, err := Uniform(101, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Support[0] != 30 || c2.Support[1] != 30 || c2.Support[2] != 30 {
		t.Fatalf("remainder distribution: %v", c2.Support)
	}
	c3, err := Uniform(10, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c3.Support[0] != 4 || c3.Support[1] != 3 || c3.Support[2] != 3 {
		t.Fatalf("remainder to low indices: %v", c3.Support)
	}
}

func TestUniformErrors(t *testing.T) {
	if _, err := Uniform(0, 3, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := Uniform(10, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Uniform(10, 3, 11); err == nil {
		t.Fatal("u>n accepted")
	}
	if _, err := Uniform(10, 3, -1); err == nil {
		t.Fatal("u<0 accepted")
	}
	if _, err := Uniform(10, 9, 5); err == nil {
		t.Fatal("k exceeding decided agents accepted")
	}
}

func TestWithAdditiveBias(t *testing.T) {
	c, err := WithAdditiveBias(1000, 4, 50, 100)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 1000 {
		t.Fatalf("N = %d", c.N())
	}
	if got := c.AdditiveBias(); got < 50 {
		t.Fatalf("additive bias = %d, want >= 50", got)
	}
	if idx, _ := c.Max(); idx != 0 {
		t.Fatalf("leader index = %d, want 0", idx)
	}
	for i := 2; i < 4; i++ {
		if c.Support[i] != c.Support[1] {
			t.Fatalf("trailing opinions unequal: %v", c.Support)
		}
	}
}

func TestWithAdditiveBiasZero(t *testing.T) {
	c, err := WithAdditiveBias(100, 5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 100 {
		t.Fatalf("N = %d", c.N())
	}
}

func TestWithAdditiveBiasErrors(t *testing.T) {
	if _, err := WithAdditiveBias(10, 3, -1, 0); err == nil {
		t.Fatal("negative bias accepted")
	}
	if _, err := WithAdditiveBias(10, 3, 100, 0); err == nil {
		t.Fatal("infeasible bias accepted")
	}
}

func TestWithMultiplicativeBias(t *testing.T) {
	c, err := WithMultiplicativeBias(1000, 4, 2.0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 1000 {
		t.Fatalf("N = %d", c.N())
	}
	if got := c.MultiplicativeBias(); got < 2.0 {
		t.Fatalf("multiplicative bias = %v, want >= 2", got)
	}
}

func TestWithMultiplicativeBiasErrors(t *testing.T) {
	if _, err := WithMultiplicativeBias(100, 3, 1.0, 0); err == nil {
		t.Fatal("ratio 1 accepted")
	}
	if _, err := WithMultiplicativeBias(100, 3, math.NaN(), 0); err == nil {
		t.Fatal("NaN ratio accepted")
	}
	if _, err := WithMultiplicativeBias(10, 8, 100, 0); err == nil {
		t.Fatal("infeasible ratio accepted")
	}
}

func TestZipf(t *testing.T) {
	c, err := Zipf(10000, 8, 1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 10000 {
		t.Fatalf("N = %d", c.N())
	}
	for i := 1; i < c.K(); i++ {
		if c.Support[i] > c.Support[i-1] {
			t.Fatalf("zipf supports not non-increasing: %v", c.Support)
		}
	}
	// s=0 should match Uniform.
	z, err := Zipf(100, 4, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	u, err := Uniform(100, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range z.Support {
		if z.Support[i] != u.Support[i] {
			t.Fatalf("Zipf(s=0) %v != Uniform %v", z.Support, u.Support)
		}
	}
}

func TestTwoBlock(t *testing.T) {
	c, err := TwoBlock(1000, 5, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Support[0] != 500 {
		t.Fatalf("leader = %d, want 500", c.Support[0])
	}
	var rest int64
	for _, x := range c.Support[1:] {
		rest += x
	}
	if rest != 500 {
		t.Fatalf("trailing total = %d, want 500", rest)
	}
	if _, err := TwoBlock(100, 3, 1.5, 0); err == nil {
		t.Fatal("share > 1 accepted")
	}
}

func TestGeneratorsConserveN(t *testing.T) {
	check := func(nRaw uint16, kRaw, uRaw uint8) bool {
		n := int64(nRaw%5000) + 20
		k := int(kRaw%8) + 1
		u := int64(uRaw) % (n / 2)
		if int64(k) > n-u {
			return true
		}
		gens := []func() (*Config, error){
			func() (*Config, error) { return Uniform(n, k, u) },
			func() (*Config, error) { return WithAdditiveBias(n, k, 5, u) },
			func() (*Config, error) { return Zipf(n, k, 0.8, u) },
		}
		for _, g := range gens {
			c, err := g()
			if err != nil {
				continue // infeasible parameter combination is fine
			}
			if c.N() != n || c.Undecided != u {
				return false
			}
			if err := c.Validate(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAndTopTwo(t *testing.T) {
	c := &Config{Support: []int64{3, 9, 9, 1}, Undecided: 0}
	idx, v := c.Max()
	if idx != 1 || v != 9 {
		t.Fatalf("Max = (%d, %d), want (1, 9)", idx, v)
	}
	first, second := c.TopTwo()
	if first != 9 || second != 9 {
		t.Fatalf("TopTwo = (%d, %d), want (9, 9)", first, second)
	}
	if c.AdditiveBias() != 0 {
		t.Fatalf("AdditiveBias = %d, want 0 (tie)", c.AdditiveBias())
	}
}

func TestTopTwoSingleOpinion(t *testing.T) {
	c := &Config{Support: []int64{7}}
	first, second := c.TopTwo()
	if first != 7 || second != 0 {
		t.Fatalf("TopTwo = (%d, %d)", first, second)
	}
}

func TestMultiplicativeBiasInf(t *testing.T) {
	c := &Config{Support: []int64{5, 0}}
	if !math.IsInf(c.MultiplicativeBias(), 1) {
		t.Fatal("expected +Inf with zero runner-up")
	}
}

func TestSumSquaresAndDecided(t *testing.T) {
	c := &Config{Support: []int64{3, 4}, Undecided: 2}
	if !c.SumSquares().Eq(u128.From64(25)) {
		t.Fatalf("SumSquares = %v", c.SumSquares())
	}
	if c.Decided() != 7 {
		t.Fatalf("Decided = %d", c.Decided())
	}
}

func TestIsConsensus(t *testing.T) {
	yes := &Config{Support: []int64{10, 0}}
	no1 := &Config{Support: []int64{9, 1}}
	no2 := &Config{Support: []int64{9, 0}, Undecided: 1}
	if !yes.IsConsensus() {
		t.Fatal("consensus not detected")
	}
	if no1.IsConsensus() || no2.IsConsensus() {
		t.Fatal("false consensus")
	}
}

func TestRanksDesc(t *testing.T) {
	c := &Config{Support: []int64{5, 9, 5, 12}}
	got := c.RanksDesc()
	want := []int{3, 1, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RanksDesc = %v, want %v", got, want)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	c := &Config{Support: []int64{1, 2}, Undecided: 3}
	d := c.Clone()
	d.Support[0] = 100
	d.Undecided = 0
	if c.Support[0] != 1 || c.Undecided != 3 {
		t.Fatal("Clone aliases the original")
	}
}

func TestStringTruncates(t *testing.T) {
	long := make([]int64, 20)
	for i := range long {
		long[i] = 1
	}
	c := &Config{Support: long}
	s := c.String()
	if !strings.Contains(s, "more") {
		t.Fatalf("String did not truncate: %q", s)
	}
	short := &Config{Support: []int64{1, 2}, Undecided: 3}
	if got := short.String(); got != "n=6 k=2 u=3 x=[1 2]" {
		t.Fatalf("String = %q", got)
	}
}

func TestValidateSumCannotWrap(t *testing.T) {
	// Addends near MaxInt64 used to wrap the running population sum
	// negative before the > MaxN check could fire, accepting a garbage
	// population. Every wrapping combination must now be rejected.
	cases := []Config{
		{Support: []int64{1, math.MaxInt64}},
		{Support: []int64{math.MaxInt64, math.MaxInt64}},
		{Support: []int64{50}, Undecided: math.MaxInt64 - 10},
		{Support: []int64{MaxN, MaxN, MaxN, MaxN}},
	}
	for i, cfg := range cases {
		if err := cfg.Validate(); !errors.Is(err, ErrTooLarge) {
			t.Errorf("case %d: Validate() = %v, want ErrTooLarge", i, err)
		}
	}
}
