package conf

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzValidate decodes an arbitrary byte string into a configuration and
// checks Validate's contract from both sides: it must never panic, and
// whenever it accepts, every derived quantity must actually be well-formed —
// in particular the population sum must be positive and ≤ MaxN with no int64
// wrap hiding inside it (the exact bug class PR 2 fixed for adversarial
// support vectors). The seed corpus pins the boundary cases the unit tests
// already know about; `go test -fuzz=FuzzValidate` explores from there.
func FuzzValidate(f *testing.F) {
	encode := func(undecided int64, support ...int64) []byte {
		data := make([]byte, 8*(len(support)+1))
		binary.LittleEndian.PutUint64(data, uint64(undecided))
		for i, s := range support {
			binary.LittleEndian.PutUint64(data[8*(i+1):], uint64(s))
		}
		return data
	}
	f.Add(encode(0))                    // no opinions
	f.Add(encode(0, 1, 2, 3))           // plain valid
	f.Add(encode(MaxN, 1))              // sum just past MaxN
	f.Add(encode(0, MaxN, MaxN, MaxN))  // would wrap without the running cap
	f.Add(encode(0, math.MaxInt64, 10)) // single count past MaxN
	f.Add(encode(-1, 5))                // negative undecided
	f.Add(encode(0, -3))                // negative support
	f.Add(encode(3, MaxN-3))            // exactly MaxN
	f.Add(encode(0, math.MinInt64, 1))  // most-negative count
	f.Add(encode(math.MaxInt64, 1, 1))  // huge undecided

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			return
		}
		undecided := int64(binary.LittleEndian.Uint64(data))
		rest := data[8:]
		support := make([]int64, 0, len(rest)/8)
		for len(rest) >= 8 && len(support) < 64 {
			support = append(support, int64(binary.LittleEndian.Uint64(rest)))
			rest = rest[8:]
		}
		c := &Config{Support: support, Undecided: undecided}
		if err := c.Validate(); err != nil {
			return
		}
		// Accepted configurations must satisfy every invariant the
		// simulators rely on.
		if len(c.Support) == 0 {
			t.Fatal("Validate accepted a configuration with no opinions")
		}
		if c.Undecided < 0 {
			t.Fatalf("Validate accepted undecided = %d", c.Undecided)
		}
		var sum int64
		for i, x := range c.Support {
			if x < 0 {
				t.Fatalf("Validate accepted support[%d] = %d", i, x)
			}
			sum += x // cannot wrap: each addend and the total are ≤ MaxN
		}
		n := c.N()
		if n != sum+c.Undecided {
			t.Fatalf("N() = %d, want %d", n, sum+c.Undecided)
		}
		if n <= 0 || n > MaxN {
			t.Fatalf("Validate accepted population %d outside (0, MaxN]", n)
		}
		// Derived views must agree with each other on accepted inputs.
		if got := c.Decided() + c.Undecided; got != n {
			t.Fatalf("Decided()+Undecided = %d, want N() = %d", got, n)
		}
		_, xmax := c.Max()
		first, second := c.TopTwo()
		if first != xmax {
			t.Fatalf("Max support %d disagrees with TopTwo first %d", xmax, first)
		}
		if second > first {
			t.Fatalf("TopTwo returned second %d > first %d", second, first)
		}
		if clone := c.Clone(); clone.N() != n || clone.Validate() != nil {
			t.Fatal("Clone of a valid configuration is invalid")
		}
	})
}
