// Package conf defines opinion configurations for the undecided state
// dynamics and generators for the initial workloads used throughout the
// paper's analysis: unbiased (uniform) configurations, configurations with a
// prescribed additive or multiplicative bias, and skewed (Zipf-like)
// support vectors.
//
// A configuration is the aggregate state of a population: the support of
// each of the k opinions plus the number of undecided agents. Opinions are
// indexed 0..k-1 in code; the paper's "Opinion 1" (the initial plurality) is
// index 0 by convention in all generators.
package conf

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/u128"
)

// MaxN is the largest population size the simulators support: 10¹¹.
//
// The old cap was ⌊√MaxInt64⌋ = 3037000499, forced by the n² ordered-pair
// interaction clock fitting int64. With the clock, the productive weight W,
// and the Fenwick square sums all carried as u128.U128 that constraint is
// gone — n² = 10²² ≈ 2⁷⁴ fits 128 bits with ~54 bits of headroom, enough
// that even the n²·ln n-scale worst-case consensus times stay far from
// saturation. The remaining binding constraints are:
//
//   - Per-opinion supports and their pairwise sums must stay exact in the
//     float64 probability layer: the multinomial window split and the
//     Fenwick Add factorization use quantities up to 2n, and 2·10¹¹ ≈ 2³⁸
//     is far below the 2⁵³ float64 integer limit.
//   - conf.Validate's wrap-proof running-sum argument needs 2·MaxN to fit
//     int64; 2·10¹¹ ≪ 2⁶³.
//   - Practicality: consensus at n = 10¹¹ takes Θ(n log n) productive
//     interactions, which the batched kernel compresses to minutes of
//     wall-clock, while n = 10¹² would additionally push per-run memory for
//     k = Θ(n) regimes past commodity RAM. 10¹¹ is the round decade that
//     keeps every layer exact with margin.
const MaxN = int64(100_000_000_000)

// Config is an aggregate opinion configuration. The zero value is invalid;
// use a generator or FromSupport.
type Config struct {
	// Support holds the number of agents per opinion, indexed 0..k-1.
	Support []int64
	// Undecided is the number of agents in the undecided state.
	Undecided int64
	// Stubborn, when non-nil, holds the per-opinion stubborn agent counts
	// of the stubborn-agent USD variant (arXiv:2406.07335): bᵢ of the xᵢ
	// supporters of opinion i never leave it. It must have exactly one
	// entry per opinion with 0 <= Stubborn[i] <= Support[i]; nil means no
	// stubborn agents. Only the stubborn dynamics reads it — the classic
	// and unconstrained dynamics reject configurations that carry it.
	Stubborn []int64
}

// Validation errors returned by Config.Validate and the generators.
var (
	ErrNoOpinions   = errors.New("conf: configuration needs at least one opinion")
	ErrNegative     = errors.New("conf: negative agent count")
	ErrTooLarge     = fmt.Errorf("conf: population exceeds MaxN = %d", MaxN)
	ErrEmpty        = errors.New("conf: population is empty")
	ErrBadBias      = errors.New("conf: bias parameter out of range")
	ErrBadUndecided = errors.New("conf: undecided count out of range")
	ErrBadStubborn  = errors.New("conf: stubborn counts out of range")
)

// FromSupport builds a configuration from a support vector and an undecided
// count. The slice is copied (values at boundaries are owned by the Config).
func FromSupport(support []int64, undecided int64) (*Config, error) {
	c := &Config{
		Support:   append([]int64(nil), support...),
		Undecided: undecided,
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Validate reports whether the configuration is well-formed: at least one
// opinion, no negative counts, a positive population no larger than MaxN.
func (c *Config) Validate() error {
	if len(c.Support) == 0 {
		return ErrNoOpinions
	}
	if c.Undecided < 0 {
		return fmt.Errorf("%w: undecided = %d", ErrNegative, c.Undecided)
	}
	// Reject each addend before accumulating: any single count above MaxN
	// is already invalid, and with every addend and the running sum capped
	// at MaxN the sum never exceeds 2·MaxN, so it cannot wrap int64 and
	// sneak a negative population past the checks.
	var n int64
	for i, x := range c.Support {
		if x < 0 {
			return fmt.Errorf("%w: opinion %d has support %d", ErrNegative, i, x)
		}
		if x > MaxN {
			return ErrTooLarge
		}
		n += x
		if n > MaxN {
			return ErrTooLarge
		}
	}
	if c.Undecided > MaxN {
		return ErrTooLarge
	}
	n += c.Undecided
	if n > MaxN {
		return ErrTooLarge
	}
	if n == 0 {
		return ErrEmpty
	}
	if c.Stubborn != nil {
		if len(c.Stubborn) != len(c.Support) {
			return fmt.Errorf("%w: %d stubborn counts for %d opinions",
				ErrBadStubborn, len(c.Stubborn), len(c.Support))
		}
		for i, b := range c.Stubborn {
			// Support[i] <= MaxN was established above, so the comparison
			// cannot be confused by wrapped values.
			if b < 0 || b > c.Support[i] {
				return fmt.Errorf("%w: opinion %d has stubborn count %d with support %d",
					ErrBadStubborn, i, b, c.Support[i])
			}
		}
	}
	return nil
}

// N returns the total population size, Σ support + undecided.
func (c *Config) N() int64 {
	n := c.Undecided
	for _, x := range c.Support {
		n += x
	}
	return n
}

// K returns the number of opinions (decided states).
func (c *Config) K() int { return len(c.Support) }

// Clone returns a deep copy.
func (c *Config) Clone() *Config {
	cl := &Config{
		Support:   append([]int64(nil), c.Support...),
		Undecided: c.Undecided,
	}
	if c.Stubborn != nil {
		cl.Stubborn = append([]int64(nil), c.Stubborn...)
	}
	return cl
}

// StubbornSum returns the total number of stubborn agents, Σ Stubborn[i]
// (0 when no stubborn counts are set).
func (c *Config) StubbornSum() int64 {
	var s int64
	for _, b := range c.Stubborn {
		s += b
	}
	return s
}

// Max returns the index and support of the largest opinion (the paper's
// xmax). Ties resolve to the smallest index.
func (c *Config) Max() (opinion int, support int64) {
	for i, x := range c.Support {
		if x > support {
			opinion, support = i, x
		}
	}
	return opinion, support
}

// TopTwo returns the supports of the largest and second-largest opinions.
// With k = 1 the second value is 0.
func (c *Config) TopTwo() (first, second int64) {
	for _, x := range c.Support {
		switch {
		case x > first:
			first, second = x, first
		case x > second:
			second = x
		}
	}
	return first, second
}

// AdditiveBias returns x_max − x_secondmax, the margin of the current
// plurality opinion over its closest rival.
func (c *Config) AdditiveBias() int64 {
	first, second := c.TopTwo()
	return first - second
}

// MultiplicativeBias returns x_max / x_secondmax. It returns +Inf when the
// second-largest support is zero.
func (c *Config) MultiplicativeBias() float64 {
	first, second := c.TopTwo()
	if second == 0 {
		return math.Inf(1)
	}
	return float64(first) / float64(second)
}

// SumSquares returns r₂ = Σ xᵢ², the quantity the paper tracks in
// Observations 6-7. At MaxN = 10¹¹ the sum reaches n² ≈ 2⁷⁴, so it is a
// u128.U128; the per-term products are exact 64×64 multiplies.
func (c *Config) SumSquares() u128.U128 {
	var s u128.U128
	for _, x := range c.Support {
		s = s.Add(u128.Mul64(uint64(x), uint64(x)))
	}
	return s
}

// Decided returns the number of decided agents, n − u.
func (c *Config) Decided() int64 {
	var s int64
	for _, x := range c.Support {
		s += x
	}
	return s
}

// IsConsensus reports whether every agent supports a single opinion.
func (c *Config) IsConsensus() bool {
	if c.Undecided != 0 {
		return false
	}
	_, xmax := c.Max()
	return xmax == c.N()
}

// RanksDesc returns opinion indices sorted by decreasing support (stable, so
// ties keep index order). Useful for reporting "which initial rank won".
func (c *Config) RanksDesc() []int {
	idx := make([]int, len(c.Support))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return c.Support[idx[a]] > c.Support[idx[b]]
	})
	return idx
}

// String renders a compact human-readable form, truncating long vectors.
func (c *Config) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d k=%d u=%d x=[", c.N(), c.K(), c.Undecided)
	for i, x := range c.Support {
		if i > 0 {
			b.WriteByte(' ')
		}
		if i >= 8 {
			fmt.Fprintf(&b, "... (%d more)", len(c.Support)-i)
			break
		}
		fmt.Fprintf(&b, "%d", x)
	}
	b.WriteByte(']')
	return b.String()
}

// checkShape validates the common generator arguments.
func checkShape(n int64, k int, undecided int64) error {
	if k <= 0 {
		return ErrNoOpinions
	}
	if n <= 0 {
		return ErrEmpty
	}
	if n > MaxN {
		return ErrTooLarge
	}
	if undecided < 0 || undecided > n {
		return fmt.Errorf("%w: undecided = %d with n = %d", ErrBadUndecided, undecided, n)
	}
	if int64(k) > n-undecided {
		return fmt.Errorf("%w: k = %d opinions but only %d decided agents", ErrBadBias, k, n-undecided)
	}
	return nil
}

// Uniform returns the unbiased configuration: n − undecided decided agents
// split as evenly as possible across k opinions (lower indices receive the
// remainder, so Opinion 0 is a weak plurality when k does not divide).
func Uniform(n int64, k int, undecided int64) (*Config, error) {
	if err := checkShape(n, k, undecided); err != nil {
		return nil, err
	}
	decided := n - undecided
	base := decided / int64(k)
	rem := decided % int64(k)
	support := make([]int64, k)
	for i := range support {
		support[i] = base
		if int64(i) < rem {
			support[i]++
		}
	}
	return &Config{Support: support, Undecided: undecided}, nil
}

// WithAdditiveBias returns a configuration in which Opinion 0 leads every
// other opinion by at least the given additive bias, with the remaining
// decided agents split evenly across opinions 1..k-1.
func WithAdditiveBias(n int64, k int, bias, undecided int64) (*Config, error) {
	if err := checkShape(n, k, undecided); err != nil {
		return nil, err
	}
	if bias < 0 {
		return nil, fmt.Errorf("%w: additive bias = %d", ErrBadBias, bias)
	}
	decided := n - undecided
	if k == 1 {
		return &Config{Support: []int64{decided}, Undecided: undecided}, nil
	}
	// Opinion 0 gets floor((decided - bias)/k) + bias; require enough mass.
	rest := decided - bias
	if rest < int64(k-1) {
		return nil, fmt.Errorf("%w: bias %d leaves %d agents for %d trailing opinions",
			ErrBadBias, bias, rest, k-1)
	}
	// Choose trailing supports as equal as possible; leader takes the rest.
	per := rest / int64(k)
	support := make([]int64, k)
	var used int64
	for i := 1; i < k; i++ {
		support[i] = per
		used += per
	}
	support[0] = decided - used
	if support[0]-support[1] < bias {
		return nil, fmt.Errorf("%w: could not realize additive bias %d", ErrBadBias, bias)
	}
	return &Config{Support: support, Undecided: undecided}, nil
}

// WithMultiplicativeBias returns a configuration in which Opinion 0 has at
// least ratio times the support of every other opinion, with the trailing
// opinions equal. ratio must be > 1.
func WithMultiplicativeBias(n int64, k int, ratio float64, undecided int64) (*Config, error) {
	if err := checkShape(n, k, undecided); err != nil {
		return nil, err
	}
	if ratio <= 1 || math.IsNaN(ratio) || math.IsInf(ratio, 0) {
		return nil, fmt.Errorf("%w: multiplicative ratio = %v", ErrBadBias, ratio)
	}
	decided := n - undecided
	if k == 1 {
		return &Config{Support: []int64{decided}, Undecided: undecided}, nil
	}
	// Solve ratio*t + (k-1)*t <= decided for the trailing support t.
	t := int64(float64(decided) / (ratio + float64(k-1)))
	for t > 0 && float64(decided-int64(float64(t)*float64(k-1))) < ratio*float64(t) {
		t--
	}
	if t < 1 {
		return nil, fmt.Errorf("%w: ratio %v infeasible for n=%d k=%d", ErrBadBias, ratio, n, k)
	}
	support := make([]int64, k)
	var used int64
	for i := 1; i < k; i++ {
		support[i] = t
		used += t
	}
	support[0] = decided - used
	if float64(support[0]) < ratio*float64(t) {
		return nil, fmt.Errorf("%w: could not realize multiplicative bias %v", ErrBadBias, ratio)
	}
	return &Config{Support: support, Undecided: undecided}, nil
}

// Zipf returns a configuration whose supports follow a Zipf law with
// exponent s: support of opinion i proportional to 1/(i+1)^s. Remainder
// agents are assigned to the largest opinions first, so the support vector
// is non-increasing. s must be non-negative (s = 0 reduces to Uniform).
func Zipf(n int64, k int, s float64, undecided int64) (*Config, error) {
	if err := checkShape(n, k, undecided); err != nil {
		return nil, err
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("%w: zipf exponent = %v", ErrBadBias, s)
	}
	decided := n - undecided
	weights := make([]float64, k)
	var wsum float64
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -s)
		wsum += weights[i]
	}
	support := make([]int64, k)
	var assigned int64
	for i := range support {
		support[i] = int64(float64(decided) * weights[i] / wsum)
		assigned += support[i]
	}
	for i := 0; assigned < decided; i = (i + 1) % k {
		support[i]++
		assigned++
	}
	return &Config{Support: support, Undecided: undecided}, nil
}

// TwoBlock returns a configuration in which Opinion 0 holds share of the
// decided agents (0 < share < 1) and the rest are split evenly among the
// other k−1 opinions.
func TwoBlock(n int64, k int, share float64, undecided int64) (*Config, error) {
	if err := checkShape(n, k, undecided); err != nil {
		return nil, err
	}
	if share <= 0 || share >= 1 || math.IsNaN(share) {
		return nil, fmt.Errorf("%w: share = %v", ErrBadBias, share)
	}
	if k == 1 {
		return Uniform(n, k, undecided)
	}
	decided := n - undecided
	leader := int64(share * float64(decided))
	if leader < 1 || decided-leader < int64(k-1) {
		return nil, fmt.Errorf("%w: share %v infeasible for n=%d k=%d", ErrBadBias, share, n, k)
	}
	rest := decided - leader
	per := rest / int64(k-1)
	rem := rest % int64(k-1)
	support := make([]int64, k)
	support[0] = leader
	for i := 1; i < k; i++ {
		support[i] = per
		if int64(i-1) < rem {
			support[i]++
		}
	}
	return &Config{Support: support, Undecided: undecided}, nil
}
