package fluid

import (
	"math"
	"testing"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/u128"
)

func mustState(t *testing.T, a []float64, u float64) State {
	t.Helper()
	s := State{A: a, U: u}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFromConfig(t *testing.T) {
	c, err := conf.FromSupport([]int64{60, 30}, 10)
	if err != nil {
		t.Fatal(err)
	}
	s, err := FromConfig(c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.A[0]-0.6) > 1e-12 || math.Abs(s.A[1]-0.3) > 1e-12 || math.Abs(s.U-0.1) > 1e-12 {
		t.Fatalf("state %+v", s)
	}
	if _, err := FromConfig(&conf.Config{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestValidate(t *testing.T) {
	if err := (State{}).Validate(); err == nil {
		t.Fatal("empty state accepted")
	}
	if err := (State{A: []float64{0.5}, U: 0.6}).Validate(); err == nil {
		t.Fatal("mass > 1 accepted")
	}
	if err := (State{A: []float64{-0.1, 1.1}, U: 0}).Validate(); err == nil {
		t.Fatal("negative density accepted")
	}
	if err := (State{A: []float64{0.4, 0.4}, U: 0.2}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFieldConservesMass(t *testing.T) {
	states := []State{
		mustState(t, []float64{0.5, 0.3}, 0.2),
		mustState(t, []float64{0.25, 0.25, 0.25}, 0.25),
		mustState(t, []float64{1, 0}, 0),
	}
	var d State
	for _, s := range states {
		Field(s, &d)
		var sum float64 = d.U
		for _, v := range d.A {
			sum += v
		}
		if math.Abs(sum) > 1e-14 {
			t.Fatalf("state %+v: field mass derivative %v, want 0", s, sum)
		}
	}
}

func TestConsensusIsFixedPoint(t *testing.T) {
	var d State
	Field(mustState(t, []float64{1, 0, 0}, 0), &d)
	for i, v := range d.A {
		if math.Abs(v) > 1e-14 {
			t.Fatalf("consensus not fixed: dA[%d] = %v", i, v)
		}
	}
	if math.Abs(d.U) > 1e-14 {
		t.Fatalf("consensus not fixed: dU = %v", d.U)
	}
}

func TestEquilibriumIsFixedPoint(t *testing.T) {
	// Symmetric state with υ = (k−1)/(2k−1) must be a fixed point — the
	// fluid counterpart of the paper's u*.
	for _, k := range []int{1, 2, 3, 8, 32} {
		u := Equilibrium(k)
		a := (1 - u) / float64(k)
		aVec := make([]float64, k)
		for i := range aVec {
			aVec[i] = a
		}
		var d State
		Field(State{A: aVec, U: u}, &d)
		for i, v := range d.A {
			if math.Abs(v) > 1e-14 {
				t.Fatalf("k=%d: dA[%d] = %v at equilibrium", k, i, v)
			}
		}
		if math.Abs(d.U) > 1e-14 {
			t.Fatalf("k=%d: dU = %v at equilibrium", k, d.U)
		}
	}
	if Equilibrium(0) != 0 {
		t.Fatal("Equilibrium(0) != 0")
	}
}

func TestSymmetricManifoldAttractsToEquilibrium(t *testing.T) {
	// Within the symmetric manifold (all aᵢ equal), υ flows to the
	// equilibrium from both sides.
	k := 4
	uStar := Equilibrium(k)
	in, err := NewIntegrator(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	for _, u0 := range []float64{0.05, 0.6} {
		a := (1 - u0) / float64(k)
		aVec := make([]float64, k)
		for i := range aVec {
			aVec[i] = a
		}
		final, err := in.Solve(State{A: aVec, U: u0}, 50, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(final.U-uStar) > 1e-6 {
			t.Fatalf("from u0=%v: final υ = %v, want u* = %v", u0, final.U, uStar)
		}
	}
}

func TestBiasedStartFlowsToConsensus(t *testing.T) {
	// Any bias is amplified: the fluid trajectory from a slightly biased
	// state converges to consensus of the leader (the interior fixed
	// point is transversally unstable).
	in, err := NewIntegrator(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	s0 := mustState(t, []float64{0.26, 0.25, 0.25, 0.24}, 0)
	tau, err := in.ConsensusTime(s0, 0.999, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if tau <= 0 {
		t.Fatalf("consensus time %v", tau)
	}
	final, err := in.Solve(s0, tau+1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if idx, m := final.Max(); idx != 0 || m < 0.999 {
		t.Fatalf("leader did not win the fluid flow: %+v", final)
	}
}

func TestMassConservedAlongTrajectory(t *testing.T) {
	in, err := NewIntegrator(1e-2)
	if err != nil {
		t.Fatal(err)
	}
	s0 := mustState(t, []float64{0.4, 0.35, 0.25}, 0)
	worst := 0.0
	if _, err := in.Solve(s0, 30, func(_ float64, s State) {
		if d := math.Abs(s.Mass() - 1); d > worst {
			worst = d
		}
	}); err != nil {
		t.Fatal(err)
	}
	if worst > 1e-9 {
		t.Fatalf("mass drifted by %v", worst)
	}
}

func TestStepSizeRobustness(t *testing.T) {
	// Halving the step must not change the endpoint materially (RK4 is
	// O(dt⁴)-accurate).
	s0 := mustState(t, []float64{0.3, 0.28, 0.22}, 0.2)
	endpoint := func(dt float64) State {
		in, err := NewIntegrator(dt)
		if err != nil {
			t.Fatal(err)
		}
		s, err := in.Solve(s0, 10, nil)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a := endpoint(1e-2)
	b := endpoint(5e-3)
	for i := range a.A {
		if math.Abs(a.A[i]-b.A[i]) > 1e-8 {
			t.Fatalf("step-size sensitivity at opinion %d: %v vs %v", i, a.A[i], b.A[i])
		}
	}
	if math.Abs(a.U-b.U) > 1e-8 {
		t.Fatalf("step-size sensitivity in υ: %v vs %v", a.U, b.U)
	}
}

func TestNewIntegratorValidation(t *testing.T) {
	for _, dt := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewIntegrator(dt); err == nil {
			t.Fatalf("dt = %v accepted", dt)
		}
	}
}

func TestSolveValidation(t *testing.T) {
	in, err := NewIntegrator(1e-2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Solve(State{}, 1, nil); err == nil {
		t.Fatal("invalid state accepted")
	}
	if _, err := in.Solve(mustState(t, []float64{1}, 0), -1, nil); err == nil {
		t.Fatal("negative horizon accepted")
	}
	if _, err := in.ConsensusTime(mustState(t, []float64{0.5, 0.5}, 0), 2, 10); err == nil {
		t.Fatal("threshold > 1 accepted")
	}
	// Perfectly symmetric start never reaches consensus in the fluid
	// limit (the symmetry is exact): ConsensusTime must report failure.
	if _, err := in.ConsensusTime(mustState(t, []float64{0.5, 0.5}, 0), 0.999, 5); err == nil {
		t.Fatal("symmetric fluid start cannot reach consensus")
	}
}

// Kurtz-type validation: the stochastic trajectory at large n must track
// the fluid trajectory, with deviation shrinking as n grows.
func TestStochasticTrajectoryTracksFluid(t *testing.T) {
	if testing.Short() {
		t.Skip("fluid-vs-simulation comparison skipped in -short mode")
	}
	k := 4
	horizon := 10.0
	deviation := func(n int64) float64 {
		cfg, err := conf.WithMultiplicativeBias(n, k, 1.3, 0)
		if err != nil {
			t.Fatal(err)
		}
		s0, err := FromConfig(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Fluid path sampled on a grid.
		in, err := NewIntegrator(1e-3)
		if err != nil {
			t.Fatal(err)
		}
		grid := map[int]float64{} // parallel time (rounded ms) -> υ
		if _, err := in.Solve(s0, horizon, func(tau float64, s State) {
			grid[int(tau*1000+0.5)] = s.U
		}); err != nil {
			t.Fatal(err)
		}
		// Stochastic path.
		sim, err := core.New(cfg, rng.New(777))
		if err != nil {
			t.Fatal(err)
		}
		budget := u128.FromFloat64(horizon * float64(n))
		var worst float64
		sim.RunObserved(budget, func(s *core.Simulator, ev core.Event) {
			tau := ev.Interactions.Float64() / float64(n)
			fluidU, ok := grid[int(tau*1000+0.5)]
			if !ok {
				return
			}
			simU := float64(s.Undecided()) / float64(n)
			if d := math.Abs(simU - fluidU); d > worst {
				worst = d
			}
		})
		return worst
	}
	small := deviation(1 << 10)
	large := deviation(1 << 16)
	if large > 0.05 {
		t.Fatalf("n=2^16 deviates from fluid path by %v", large)
	}
	if large > small {
		t.Fatalf("deviation did not shrink with n: %v (2^10) vs %v (2^16)", small, large)
	}
}
