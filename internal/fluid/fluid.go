// Package fluid implements the mean-field (fluid) limit of the undecided
// state dynamics: the system of ODEs obtained from the expected one-
// interaction drift in the large-n limit, integrated with a classical
// fourth-order Runge-Kutta scheme.
//
// Writing aᵢ = xᵢ/n and υ = u/n for the densities and measuring time in
// parallel units (n interactions per unit), Observation 8 gives
//
//	daᵢ/dτ = aᵢ·(2υ − 1 + aᵢ)
//	dυ/dτ  = (1−υ)² − Σaᵢ² − υ(1−υ)
//
// which conserves Σaᵢ + υ = 1. The unique interior symmetric fixed point
// has υ = (k−1)/(2k−1) — exactly the unstable equilibrium u*/n the paper
// identifies before Lemma 3: it attracts within the symmetric manifold
// (where all aᵢ agree) and repels transversally (any bias grows), which is
// why the stochastic system first fills up with undecided agents (Phase 1)
// and then amplifies its largest opinion (Phases 2-4).
//
// By Kurtz's density-dependence theorem, trajectories of the stochastic
// system started at density s stay within O(1/√n) of the fluid trajectory
// over any fixed horizon; the F7-fluid-limit experiment measures exactly
// this convergence.
package fluid

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/conf"
)

// State holds opinion and undecided densities. The densities must be
// non-negative and sum to 1.
type State struct {
	// A holds the opinion densities a₁..a_k.
	A []float64
	// U is the undecided density.
	U float64
}

// FromConfig converts an aggregate configuration to densities.
func FromConfig(c *conf.Config) (State, error) {
	if err := c.Validate(); err != nil {
		return State{}, fmt.Errorf("fluid: invalid configuration: %w", err)
	}
	n := float64(c.N())
	s := State{A: make([]float64, c.K()), U: float64(c.Undecided) / n}
	for i, x := range c.Support {
		s.A[i] = float64(x) / n
	}
	return s, nil
}

// Clone returns a deep copy.
func (s State) Clone() State {
	return State{A: append([]float64(nil), s.A...), U: s.U}
}

// Mass returns Σaᵢ + υ (1 for a valid state, conserved by the flow).
func (s State) Mass() float64 {
	m := s.U
	for _, a := range s.A {
		m += a
	}
	return m
}

// Max returns the index and value of the largest opinion density.
func (s State) Max() (int, float64) {
	idx, best := 0, 0.0
	for i, a := range s.A {
		if a > best {
			idx, best = i, a
		}
	}
	return idx, best
}

// Validate checks non-negativity and unit mass.
func (s State) Validate() error {
	if len(s.A) == 0 {
		return errors.New("fluid: state needs at least one opinion")
	}
	for i, a := range s.A {
		if a < -1e-12 || math.IsNaN(a) {
			return fmt.Errorf("fluid: density %d = %v", i, a)
		}
	}
	if s.U < -1e-12 || math.IsNaN(s.U) {
		return fmt.Errorf("fluid: undecided density = %v", s.U)
	}
	if m := s.Mass(); math.Abs(m-1) > 1e-9 {
		return fmt.Errorf("fluid: total mass = %v, want 1", m)
	}
	return nil
}

// Field writes the USD vector field at s into deriv (resized as needed)
// and returns it.
func Field(s State, deriv *State) {
	if len(deriv.A) != len(s.A) {
		deriv.A = make([]float64, len(s.A))
	}
	var r2 float64
	for _, a := range s.A {
		r2 += a * a
	}
	d := 1 - s.U
	for i, a := range s.A {
		deriv.A[i] = a * (2*s.U - 1 + a)
	}
	deriv.U = d*d - r2 - s.U*d
}

// Equilibrium returns the symmetric interior fixed point's undecided
// density (k−1)/(2k−1) — the fluid counterpart of the paper's u*.
func Equilibrium(k int) float64 {
	if k <= 0 {
		return 0
	}
	return float64(k-1) / float64(2*k-1)
}

// Integrator advances a fluid state with fixed-step RK4. The zero value is
// not usable; construct with NewIntegrator.
type Integrator struct {
	dt float64
	// scratch stages
	k1, k2, k3, k4, tmp State
}

// NewIntegrator returns an integrator with the given time step in parallel
// time units. dt must be positive; 1e-2 is ample for the USD field.
func NewIntegrator(dt float64) (*Integrator, error) {
	if dt <= 0 || math.IsNaN(dt) || math.IsInf(dt, 0) {
		return nil, fmt.Errorf("fluid: invalid step %v", dt)
	}
	return &Integrator{dt: dt}, nil
}

// Step advances s by one RK4 step in place.
func (in *Integrator) Step(s *State) {
	Field(*s, &in.k1)
	in.axpy(s, &in.k1, in.dt/2)
	Field(in.tmp, &in.k2)
	in.axpy(s, &in.k2, in.dt/2)
	Field(in.tmp, &in.k3)
	in.axpy(s, &in.k3, in.dt)
	Field(in.tmp, &in.k4)
	h := in.dt / 6
	for i := range s.A {
		s.A[i] += h * (in.k1.A[i] + 2*in.k2.A[i] + 2*in.k3.A[i] + in.k4.A[i])
		if s.A[i] < 0 {
			s.A[i] = 0
		}
	}
	s.U += h * (in.k1.U + 2*in.k2.U + 2*in.k3.U + in.k4.U)
	if s.U < 0 {
		s.U = 0
	}
}

// axpy sets tmp = s + c·k.
func (in *Integrator) axpy(s *State, k *State, c float64) {
	if len(in.tmp.A) != len(s.A) {
		in.tmp.A = make([]float64, len(s.A))
	}
	for i := range s.A {
		in.tmp.A[i] = s.A[i] + c*k.A[i]
	}
	in.tmp.U = s.U + c*k.U
}

// Solve integrates from s0 until time horizon, invoking each (if non-nil)
// after every step with the current time and state, and returns the final
// state.
func (in *Integrator) Solve(s0 State, horizon float64, each func(tau float64, s State)) (State, error) {
	if err := s0.Validate(); err != nil {
		return State{}, err
	}
	if horizon < 0 || math.IsNaN(horizon) {
		return State{}, fmt.Errorf("fluid: invalid horizon %v", horizon)
	}
	s := s0.Clone()
	steps := int(math.Ceil(horizon / in.dt))
	for i := 0; i < steps; i++ {
		in.Step(&s)
		if each != nil {
			each(float64(i+1)*in.dt, s)
		}
	}
	return s, nil
}

// ConsensusTime integrates until the largest opinion density exceeds the
// given threshold (e.g. 0.999) and returns the parallel time taken. It
// gives up after maxTime.
func (in *Integrator) ConsensusTime(s0 State, threshold, maxTime float64) (float64, error) {
	if err := s0.Validate(); err != nil {
		return 0, err
	}
	if threshold <= 0 || threshold > 1 {
		return 0, fmt.Errorf("fluid: invalid threshold %v", threshold)
	}
	s := s0.Clone()
	for tau := 0.0; tau < maxTime; tau += in.dt {
		if _, m := s.Max(); m >= threshold {
			return tau, nil
		}
		in.Step(&s)
	}
	return 0, fmt.Errorf("fluid: no ε-consensus within horizon %v", maxTime)
}
