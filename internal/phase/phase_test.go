package phase

import (
	"math"
	"testing"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/u128"
)

// fakeView is a hand-rolled View for unit tests.
type fakeView struct {
	n  int64
	u  int64
	xs []int64
	t  int64
}

func (f *fakeView) N() int64                     { return f.n }
func (f *fakeView) K() int                       { return len(f.xs) }
func (f *fakeView) Undecided() int64             { return f.u }
func (f *fakeView) Supports(dst []int64) []int64 { return append(dst, f.xs...) }
func (f *fakeView) Interactions() u128.U128      { return u128.From64(f.t) }

func TestNewTimes(t *testing.T) {
	tm := NewTimes()
	for p := 1; p <= Count; p++ {
		if tm.Reached(p) {
			t.Fatalf("fresh Times reports phase %d reached", p)
		}
		if _, ok := tm.Duration(p); ok {
			t.Fatalf("fresh Times reports a duration for phase %d", p)
		}
	}
	if tm.LeaderAtT2 != -1 {
		t.Fatal("fresh LeaderAtT2 != -1")
	}
	if tm.Reached(0) || tm.Reached(6) {
		t.Fatal("out-of-range phases must not be reached")
	}
}

func TestPhasesDetectedInOrder(t *testing.T) {
	// n=1000, k=2. Walk a synthetic trajectory through all five phases.
	tr := NewTracker()
	v := &fakeView{n: 1000, xs: []int64{400, 400}, u: 200, t: 0}

	// Phase 1 not yet: 2u = 400 < n - xmax = 600.
	tr.Observe(v)
	if tr.Times().Reached(1) {
		t.Fatal("phase 1 detected too early")
	}

	// End phase 1: u = 300 => 600 >= 1000-400, while the gap 400-350=50
	// stays below the phase-2 threshold sqrt(1000 ln 1000) ~ 83.1.
	v.u, v.xs, v.t = 300, []int64{400, 350}, 10
	tr.Observe(v)
	if !tr.Times().Reached(1) || tr.Times().End[0] != u128.From64(10) {
		t.Fatalf("phase 1 not detected: %+v", tr.Times())
	}
	if tr.Times().Reached(2) {
		t.Fatal("phase 2 detected too early")
	}

	// End phase 2: gap 430-300=130 >= 83.1.
	v.xs, v.t = []int64{430, 300}, 20
	tr.Observe(v)
	if !tr.Times().Reached(2) || tr.Times().End[1] != u128.From64(20) {
		t.Fatalf("phase 2 not detected: %+v", tr.Times())
	}
	if tr.Times().LeaderAtT2 != 0 {
		t.Fatalf("LeaderAtT2 = %d, want 0", tr.Times().LeaderAtT2)
	}

	// End phase 3: 500 >= 2*250.
	v.xs, v.t = []int64{500, 250}, 30
	v.u = 250
	tr.Observe(v)
	if !tr.Times().Reached(3) || tr.Times().End[2] != u128.From64(30) {
		t.Fatalf("phase 3 not detected: %+v", tr.Times())
	}

	// End phase 4: 3*700 >= 2*1000.
	v.xs, v.u, v.t = []int64{700, 100}, 200, 40
	tr.Observe(v)
	if !tr.Times().Reached(4) || tr.Times().End[3] != u128.From64(40) {
		t.Fatalf("phase 4 not detected: %+v", tr.Times())
	}

	// End phase 5: consensus.
	v.xs, v.u, v.t = []int64{1000, 0}, 0, 50
	tr.Observe(v)
	if !tr.Times().Reached(5) || tr.Times().End[4] != u128.From64(50) {
		t.Fatalf("phase 5 not detected: %+v", tr.Times())
	}
	if !tr.Done() {
		t.Fatal("tracker not done after all phases")
	}

	// Durations.
	want := []int64{10, 10, 10, 10, 10}
	for p := 1; p <= Count; p++ {
		if got, ok := tr.Times().Duration(p); !ok || got != u128.From64(want[p-1]) {
			t.Fatalf("duration(%d) = %v (ok=%v), want %d", p, got, ok, want[p-1])
		}
	}
}

func TestMultiplePhasesEndAtOnce(t *testing.T) {
	// A configuration that is already consensus satisfies every condition
	// at once.
	tr := NewTracker()
	v := &fakeView{n: 100, xs: []int64{100, 0}, u: 0, t: 7}
	tr.Observe(v)
	for p := 1; p <= Count; p++ {
		if !tr.Times().Reached(p) || tr.Times().End[p-1] != u128.From64(7) {
			t.Fatalf("phase %d not ended at t=7: %+v", p, tr.Times())
		}
	}
}

func TestPhaseOrderEnforced(t *testing.T) {
	// A huge-bias configuration that satisfies phases 2-4 but NOT phase 1
	// (too few undecided agents) must not record phase 2.
	tr := NewTracker()
	v := &fakeView{n: 1000, xs: []int64{700, 10}, u: 290, t: 3}
	// Phase 1 condition: 2u=580 >= n-xmax=300 -> true. Use fewer undecided.
	v.u = 100
	v.xs = []int64{700, 200}
	// 2u=200 >= 1000-700=300? No.
	tr.Observe(v)
	if tr.Times().Reached(1) || tr.Times().Reached(2) {
		t.Fatalf("phases detected despite phase-1 condition failing: %+v", tr.Times())
	}
}

func TestWithAlpha(t *testing.T) {
	n := int64(1000)
	gap := int64(100) // between alpha=1 (83.1) and alpha=2 (166.2) thresholds
	mk := func(alpha float64) *Tracker {
		return NewTracker(WithAlpha(alpha))
	}
	// Phase 1 holds: 2u = 600 >= 1000 - 450 = 550. Top-two gap is exactly
	// `gap`, between the alpha=1 and alpha=2 thresholds.
	v := &fakeView{n: n, xs: []int64{350 + gap, 350}, u: 300, t: 5}
	thr1 := math.Sqrt(float64(n) * math.Log(float64(n)))
	if float64(gap) <= thr1 {
		t.Fatalf("test setup: gap %d must exceed alpha=1 threshold %.1f", gap, thr1)
	}
	loose := mk(1)
	loose.Observe(v)
	if !loose.Times().Reached(2) {
		t.Fatal("alpha=1 tracker should end phase 2")
	}
	strict := mk(2)
	strict.Observe(v)
	if strict.Times().Reached(2) {
		t.Fatal("alpha=2 tracker should not end phase 2")
	}
}

func TestCheckIntervalSkipsObservations(t *testing.T) {
	tr := NewTracker(WithCheckInterval(10))
	v := &fakeView{n: 100, xs: []int64{50, 20}, u: 30, t: 1}
	// Condition for phase 1 holds (2*30=60 >= 100-50): first observation
	// is always checked.
	tr.Observe(v)
	if !tr.Times().Reached(1) {
		t.Fatal("first observation must be checked")
	}
	// Phase 2 threshold: sqrt(100 ln 100) ~ 21.5; gap is 30 -> would end
	// phase 2 if checked. Preserve state but advance within the interval:
	tr2 := NewTracker(WithCheckInterval(10))
	small := &fakeView{n: 100, xs: []int64{40, 40}, u: 15, t: 1}
	tr2.Observe(small) // checked, nothing ends (2*15=30 < 60)
	big := &fakeView{n: 100, xs: []int64{52, 20}, u: 28, t: 2}
	for i := 0; i < 5; i++ {
		tr2.Observe(big) // within interval: skipped
	}
	if tr2.Times().Reached(1) {
		t.Fatal("observations within the interval must be skipped")
	}
	for i := 0; i < 10; i++ {
		big.t++
		tr2.Observe(big)
	}
	if !tr2.Times().Reached(1) {
		t.Fatal("interval boundary observation must be checked")
	}
}

func TestTrackerAgainstRealRun(t *testing.T) {
	// Integration: on a real USD run the phase times must be
	// non-decreasing, all phases must complete, and T5 must equal the
	// consensus time.
	c, err := conf.Uniform(2000, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.New(c, rng.New(1234))
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker()
	tr.Observe(s)
	res := s.RunObserved(core.NoBudget, func(sim *core.Simulator, _ core.Event) {
		tr.Observe(sim)
	})
	if res.Outcome != core.OutcomeConsensus {
		t.Fatalf("outcome %v", res.Outcome)
	}
	times := tr.Times()
	var prev u128.U128
	for p := 1; p <= Count; p++ {
		if !times.Reached(p) {
			t.Fatalf("phase %d never ended: %+v", p, times)
		}
		if times.End[p-1].Less(prev) {
			t.Fatalf("phase times decreasing: %+v", times)
		}
		prev = times.End[p-1]
	}
	if times.End[4] != res.Interactions {
		t.Fatalf("T5 = %v but consensus at %v", times.End[4], res.Interactions)
	}
	if times.LeaderAtT2 != res.Winner {
		t.Fatalf("leader at T2 = %d but winner = %d (paper: winner fixed after T2)",
			times.LeaderAtT2, res.Winner)
	}
}

func TestObserveAfterDoneIsNoop(t *testing.T) {
	tr := NewTracker()
	v := &fakeView{n: 10, xs: []int64{10, 0}, u: 0, t: 1}
	tr.Observe(v)
	if !tr.Done() {
		t.Fatal("not done after consensus observation")
	}
	before := tr.Times()
	v.t = 99
	tr.Observe(v)
	if tr.Times() != before {
		t.Fatal("Observe after done mutated times")
	}
}

func TestDefaultCheckInterval(t *testing.T) {
	cases := []struct {
		n    int64
		want int
	}{
		{1, 1},
		{63, 1},
		{64, 2},
		{6400, 101},
		{1 << 20, 256}, // capped
		{1 << 40, 256}, // cap holds for huge n
	}
	for _, tc := range cases {
		if got := DefaultCheckInterval(tc.n); got != tc.want {
			t.Errorf("DefaultCheckInterval(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestCheckIntervalFor(t *testing.T) {
	if got := CheckIntervalFor(1<<20, core.KernelBatched(0)); got != 1 {
		t.Fatalf("batched interval = %d, want 1", got)
	}
	if got, want := CheckIntervalFor(1<<20, core.KernelExact), DefaultCheckInterval(1<<20); got != want {
		t.Fatalf("exact interval = %d, want %d", got, want)
	}
}

func TestTrackerReset(t *testing.T) {
	v := &fakeView{n: 100, u: 60, xs: []int64{30, 10}, t: 0}
	tr := NewTracker(WithAlpha(2), WithCheckInterval(3))
	fresh := NewTracker(WithAlpha(2), WithCheckInterval(3))

	// Dirty the tracker: walk it to full consensus so every phase ends.
	tr.ObserveNow(v)
	v.xs = []int64{100, 0}
	v.u = 0
	v.t = 500
	tr.ObserveNow(v)
	if !tr.Done() {
		t.Fatalf("setup: tracker not done: %+v", tr.Times())
	}

	tr.Reset()
	if tr.Done() || tr.Times() != NewTimes() {
		t.Fatalf("Reset left state behind: %+v", tr.Times())
	}
	// A Reset tracker must behave exactly like a fresh one with the same
	// options, including interval skipping driven by the observation count:
	// the phase-1 condition holds from the start, so both must stamp End[0]
	// at the first *checked* observation.
	v2 := &fakeView{n: 100, u: 60, xs: []int64{30, 10}}
	for i := 0; i < 10; i++ {
		v2.t = int64(i + 1)
		tr.Observe(v2)
		fresh.Observe(v2)
		if tr.Times() != fresh.Times() {
			t.Fatalf("observation %d: reset %+v != fresh %+v", i, tr.Times(), fresh.Times())
		}
	}
	if !tr.Times().Reached(1) {
		t.Fatal("phase 1 never detected after Reset")
	}
}
