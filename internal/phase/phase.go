// Package phase detects the end conditions of the paper's five analysis
// phases online, regenerating the §2.1 phase table from simulation runs.
//
// The phases and their end conditions are:
//
//	Phase 1: u(t) ≥ (n − xmax(t))/2                        (Lemma 1)
//	Phase 2: ∃i ∀j≠i: xᵢ(t) − xⱼ(t) ≥ α√(n ln n)           (Lemma 8)
//	Phase 3: ∀j≠max: xmax(t) ≥ 2·xⱼ(t)                     (Lemma 11)
//	Phase 4: xmax(t) ≥ 2n/3                                (Lemma 15)
//	Phase 5: xmax(t) = n                                   (Lemma 16)
//
// Conditions are checked in order: phase p+1 can only end after phase p has
// ended, exactly as the paper's stopping times T₁ ≤ T₂ ≤ … ≤ T₅ are defined.
// Several phases may end at the same observation (for example, an initial
// configuration with a large additive bias satisfies the phase-2 condition
// at time 0).
package phase

import (
	"math"

	"repro/internal/core"
	"repro/internal/u128"
)

// Count is the number of analysis phases.
const Count = 5

// View is the read-only simulator surface the tracker needs. It is
// satisfied by *core.Simulator.
type View interface {
	// N returns the population size.
	N() int64
	// K returns the number of opinions.
	K() int
	// Undecided returns the current undecided count.
	Undecided() int64
	// Supports appends the per-opinion supports to dst.
	Supports(dst []int64) []int64
	// Interactions returns the interaction clock.
	Interactions() u128.U128
}

// Times records when each phase ended, in interactions. The clock is a
// 128-bit saturating counter (n² exceeds int64 once n > ⌊√MaxInt64⌋), so
// "not ended" is carried by the Ended flags rather than a -1 sentinel.
type Times struct {
	// End[p] is the interaction clock at which phase p+1 ended. It is
	// meaningful only when Ended[p] is true.
	End [Count]u128.U128
	// Ended[p] reports whether phase p+1 has ended.
	Ended [Count]bool
	// LeaderAtT2 is the opinion that was the unique significant opinion
	// when phase 2 ended, or -1. The paper shows the eventual winner is
	// fixed from this moment on.
	LeaderAtT2 int
}

// NewTimes returns a Times with no phase ended.
func NewTimes() Times {
	return Times{LeaderAtT2: -1}
}

// Reached reports whether phase p (1-based) has ended.
func (t Times) Reached(p int) bool {
	return p >= 1 && p <= Count && t.Ended[p-1]
}

// Duration returns the length of phase p (1-based) in interactions:
// End[p] − End[p−1], with phase 1 starting at 0. The second result is false
// if the phase has not ended.
func (t Times) Duration(p int) (u128.U128, bool) {
	if !t.Reached(p) {
		return u128.U128{}, false
	}
	start := u128.U128{}
	if p > 1 {
		start = t.End[p-2]
	}
	return t.End[p-1].Sub(start), true
}

// DefaultCheckInterval returns the default number of observations between
// full evaluations of the O(k) phase end conditions for a run over n agents:
// one check per ~n/64 productive events, capped at 256. This keeps tracking
// overhead sublinear in the run length while still resolving phase end times
// to well under 1% of any phase bound.
func DefaultCheckInterval(n int64) int {
	c := int(n/64) + 1
	if c > 256 {
		c = 256
	}
	return c
}

// CheckIntervalFor returns the default tracker check interval for a run
// over n agents under the given kernel: every observation for a batched
// kernel (each observation already covers a whole window of events, so
// skipping any would cost window-level resolution), DefaultCheckInterval(n)
// for the per-event exact kernel.
func CheckIntervalFor(n int64, kern core.Kernel) int {
	if kern.Batched() {
		return 1
	}
	return DefaultCheckInterval(n)
}

// Option configures a Tracker.
type Option func(*Tracker)

// WithAlpha sets the significance constant α in the phase-2 threshold
// α√(n ln n). The default is 1.
func WithAlpha(alpha float64) Option {
	return func(tr *Tracker) { tr.alpha = alpha }
}

// WithCheckInterval makes the tracker evaluate the (O(k)) end conditions
// only every c observations, trading timing resolution for speed on large
// runs. The default is 1 (every observation).
func WithCheckInterval(c int) Option {
	return func(tr *Tracker) {
		if c > 0 {
			tr.every = c
		}
	}
}

// Tracker detects phase ends online. Feed it with Observe after every
// productive event (and once before the run to classify the initial
// configuration). The zero value is not usable; construct with NewTracker.
type Tracker struct {
	alpha float64
	every int
	seen  int
	next  int // 0-based index of the next phase to detect
	times Times
	buf   []int64
}

// NewTracker returns a tracker for a run over n agents and k opinions.
func NewTracker(opts ...Option) *Tracker {
	tr := &Tracker{
		alpha: 1,
		every: 1,
		times: NewTimes(),
	}
	for _, opt := range opts {
		opt(tr)
	}
	return tr
}

// Times returns the phase end times recorded so far.
func (tr *Tracker) Times() Times { return tr.times }

// Reset rewinds the tracker to the freshly constructed state, keeping the
// supports scratch buffer, so trial engines can reuse one tracker across
// many runs without allocating. Options given here are re-applied after the
// rewind; the existing configuration (alpha, check interval) is kept when
// none are given. A Reset tracker is indistinguishable from a new one with
// the same options.
func (tr *Tracker) Reset(opts ...Option) {
	tr.seen = 0
	tr.next = 0
	tr.times = NewTimes()
	for _, opt := range opts {
		opt(tr)
	}
}

// Done reports whether all five phases have ended.
func (tr *Tracker) Done() bool { return tr.next >= Count }

// Observe inspects the current configuration and records any phase ends.
// Calls between check intervals are O(1).
func (tr *Tracker) Observe(v View) {
	if tr.next >= Count {
		return
	}
	tr.seen++
	if tr.every > 1 && tr.seen%tr.every != 1 && tr.seen != 1 {
		return
	}
	tr.check(v)
}

// Watch implements core.Watcher, so a *Tracker can be passed directly to
// core.Simulator.RunWatched: the phase-tracking path then runs without any
// observer closure and allocates nothing after construction. The event is
// ignored — the tracker inspects the simulator state.
func (tr *Tracker) Watch(s *core.Simulator, _ core.Event) { tr.Observe(s) }

// ObserveNow evaluates the end conditions immediately, bypassing the check
// interval. Use it to classify the initial configuration and the final one,
// which interval skipping could otherwise miss.
func (tr *Tracker) ObserveNow(v View) {
	if tr.next >= Count {
		return
	}
	tr.seen++
	tr.check(v)
}

func (tr *Tracker) check(v View) {
	tr.buf = v.Supports(tr.buf[:0])
	n := v.N()
	u := v.Undecided()
	t := v.Interactions()

	maxIdx, first, second := topTwo(tr.buf)
	for tr.next < Count {
		if !tr.condition(tr.next, n, u, first, second) {
			return
		}
		tr.times.End[tr.next] = t
		tr.times.Ended[tr.next] = true
		if tr.next == 1 { // phase 2 just ended: record the unique leader
			tr.times.LeaderAtT2 = maxIdx
		}
		tr.next++
	}
}

// condition evaluates the end condition of 0-based phase p.
func (tr *Tracker) condition(p int, n, u, first, second int64) bool {
	switch p {
	case 0:
		return 2*u >= n-first
	case 1:
		thr := tr.alpha * math.Sqrt(float64(n)*math.Log(float64(n)))
		return float64(first-second) >= thr
	case 2:
		return first >= 2*second
	case 3:
		return 3*first >= 2*n
	case 4:
		return first == n
	default:
		return false
	}
}

// topTwo returns the index of the maximum and the two largest values.
func topTwo(xs []int64) (maxIdx int, first, second int64) {
	for i, x := range xs {
		switch {
		case x > first:
			first, second = x, first
			maxIdx = i
		case x > second:
			second = x
		}
	}
	return maxIdx, first, second
}
