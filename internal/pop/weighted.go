package pop

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/fenwick"
	"repro/internal/rng"
)

// WeightedScheduler draws the responder and initiator independently with
// probability proportional to fixed per-agent activation weights. It models
// heterogeneous interaction rates — a standard robustness question for
// population protocols, whose analyses (including the paper's) assume the
// uniform scheduler. Uniform weights reduce exactly to UniformScheduler.
//
// Construct with NewWeightedScheduler; the zero value is not usable.
type WeightedScheduler struct {
	src  *rng.Source
	tree *fenwick.Tree
	n    int
}

// NewWeightedScheduler builds a scheduler over the given positive integer
// weights (one per agent).
func NewWeightedScheduler(weights []int64, src *rng.Source) (*WeightedScheduler, error) {
	if len(weights) == 0 {
		return nil, errors.New("pop: no weights")
	}
	if src == nil {
		return nil, errors.New("pop: nil source")
	}
	for i, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("pop: weight %d for agent %d must be positive", w, i)
		}
	}
	return &WeightedScheduler{
		src:  src,
		tree: fenwick.FromSlice(weights),
		n:    len(weights),
	}, nil
}

// Pair draws an ordered pair, each endpoint independently ∝ weight.
func (s *WeightedScheduler) Pair(n int) (int, int) {
	if n != s.n {
		panic(fmt.Sprintf("pop: weighted scheduler built for %d agents, asked for %d", s.n, n))
	}
	total := s.tree.Total()
	return s.tree.Find(s.src.Int63n(total)), s.tree.Find(s.src.Int63n(total))
}

// ZipfWeights returns n activation weights following a Zipf law with the
// given exponent: weight of agent i proportional to 1/(i+1)^s, scaled so
// the smallest weight is at least 1. s = 0 gives uniform weights.
func ZipfWeights(n int, s float64) ([]int64, error) {
	if n <= 0 {
		return nil, errors.New("pop: n must be positive")
	}
	if s < 0 {
		return nil, errors.New("pop: exponent must be non-negative")
	}
	// weight_i = round((n/(i+1))^s) >= 1 for all i < n.
	weights := make([]int64, n)
	for i := range weights {
		w := math.Pow(float64(n)/float64(i+1), s)
		weights[i] = int64(w + 0.5)
		if weights[i] < 1 {
			weights[i] = 1
		}
	}
	return weights, nil
}
