// Package pop implements a general agent-level population-protocol engine.
//
// A population protocol is a transition function δ: Q² → Q² applied to an
// ordered pair (responder, initiator) of agents drawn by a scheduler. The
// engine in this package keeps the full n-agent state vector, so it
// simulates any pairwise protocol exactly — including ones whose aggregate
// state is not a small vector — at O(1) cost per interaction.
//
// For the USD specifically, the aggregate simulator in internal/core is
// asymptotically faster; this engine serves as the ground truth it is
// validated against, and as the substrate for scheduler variations
// (forbidding self-interactions, recording and replaying interaction
// sequences) that the aggregate simulator cannot express.
package pop

import (
	"errors"
	"fmt"

	"repro/internal/conf"
	"repro/internal/rng"
)

// State is an agent state: Undecided (0) or an opinion in 1..k.
type State int32

// Undecided is the distinguished undecided state ⊥.
const Undecided State = 0

// Protocol is a pairwise transition function over states {⊥, 1..k}.
type Protocol interface {
	// K returns the number of opinions.
	K() int
	// Delta maps (responder, initiator) to their successor states.
	Delta(responder, initiator State) (State, State)
}

// USD is the undecided state dynamics transition function from the paper:
// only the responder changes state.
type USD struct {
	// Opinions is the number of opinions k.
	Opinions int
}

// K returns the number of opinions.
func (p USD) K() int { return p.Opinions }

// Delta applies the USD rule.
func (p USD) Delta(responder, initiator State) (State, State) {
	switch {
	case responder != Undecided && initiator != Undecided && responder != initiator:
		return Undecided, initiator
	case responder == Undecided && initiator != Undecided:
		return initiator, initiator
	default:
		return responder, initiator
	}
}

// Voter is the pairwise voter baseline: the responder adopts the
// initiator's opinion whenever the initiator is decided.
type Voter struct {
	// Opinions is the number of opinions k.
	Opinions int
}

// K returns the number of opinions.
func (p Voter) K() int { return p.Opinions }

// Delta applies the voter rule.
func (p Voter) Delta(responder, initiator State) (State, State) {
	if initiator != Undecided {
		return initiator, initiator
	}
	return responder, initiator
}

// Scheduler chooses the next ordered interaction pair.
type Scheduler interface {
	// Pair returns (responder, initiator) indices in [0, n).
	Pair(n int) (responder, initiator int)
}

// UniformScheduler draws both indices independently and uniformly,
// allowing self-interactions — the paper's scheduling model.
type UniformScheduler struct {
	// Src is the randomness source; it must be non-nil.
	Src *rng.Source
}

// Pair draws a uniform ordered pair with replacement.
func (u UniformScheduler) Pair(n int) (int, int) {
	return u.Src.Intn(n), u.Src.Intn(n)
}

// NoSelfScheduler draws a uniform ordered pair of two distinct agents.
// This is the common alternative convention; experiment A3 quantifies the
// O(1/n) difference against the paper's model.
type NoSelfScheduler struct {
	// Src is the randomness source; it must be non-nil.
	Src *rng.Source
}

// Pair draws a uniform ordered pair without replacement.
func (s NoSelfScheduler) Pair(n int) (int, int) {
	i := s.Src.Intn(n)
	j := s.Src.Intn(n - 1)
	if j >= i {
		j++
	}
	return i, j
}

// Recorder wraps a scheduler and records every pair it emits, for
// deterministic replay.
type Recorder struct {
	// Inner is the scheduler whose choices are recorded.
	Inner Scheduler
	// Pairs accumulates the emitted (responder, initiator) pairs.
	Pairs [][2]int
}

// Pair delegates to Inner and appends the choice to Pairs.
func (r *Recorder) Pair(n int) (int, int) {
	i, j := r.Inner.Pair(n)
	r.Pairs = append(r.Pairs, [2]int{i, j})
	return i, j
}

// ErrReplayExhausted is returned (via panic recovery in Engine.Step's
// caller contract) when a Replayer runs out of recorded pairs.
var ErrReplayExhausted = errors.New("pop: replay schedule exhausted")

// Replayer replays a recorded pair sequence.
type Replayer struct {
	// Pairs is the recorded schedule.
	Pairs [][2]int
	// next is the cursor.
	next int
}

// Pair returns the next recorded pair. It panics with ErrReplayExhausted
// when the schedule runs out; Engine.Run converts this into an error.
func (r *Replayer) Pair(n int) (int, int) {
	if r.next >= len(r.Pairs) {
		panic(ErrReplayExhausted)
	}
	p := r.Pairs[r.next]
	r.next++
	if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
		panic(fmt.Errorf("pop: replayed pair %v out of range for n=%d", p, n))
	}
	return p[0], p[1]
}

// Engine simulates a population protocol over an explicit agent vector.
// It is not safe for concurrent use. Construct with NewEngine.
type Engine struct {
	agents []State
	counts []int64 // per-opinion counts, index 0..k-1
	u      int64
	proto  Protocol
	sched  Scheduler
	steps  int64
}

// NewEngine builds an engine from an initial aggregate configuration. The
// agent vector lists opinion-0 agents first, then opinion 1, …, then the
// undecided agents; since the scheduler choices are exchangeable, the
// ordering is immaterial.
func NewEngine(c *conf.Config, proto Protocol, sched Scheduler) (*Engine, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("pop: invalid configuration: %w", err)
	}
	if proto == nil || sched == nil {
		return nil, errors.New("pop: nil protocol or scheduler")
	}
	if proto.K() != c.K() {
		return nil, fmt.Errorf("pop: protocol has k=%d but configuration has k=%d", proto.K(), c.K())
	}
	n := c.N()
	if n > 1<<31 {
		return nil, fmt.Errorf("pop: population %d too large for agent-level simulation", n)
	}
	e := &Engine{
		agents: make([]State, 0, n),
		counts: append([]int64(nil), c.Support...),
		u:      c.Undecided,
		proto:  proto,
		sched:  sched,
	}
	for op, x := range c.Support {
		for i := int64(0); i < x; i++ {
			e.agents = append(e.agents, State(op+1))
		}
	}
	for i := int64(0); i < c.Undecided; i++ {
		e.agents = append(e.agents, Undecided)
	}
	return e, nil
}

// N returns the population size.
func (e *Engine) N() int64 { return int64(len(e.agents)) }

// K returns the number of opinions.
func (e *Engine) K() int { return len(e.counts) }

// Undecided returns the current undecided count.
func (e *Engine) Undecided() int64 { return e.u }

// Support returns the current support of opinion i (0-based).
func (e *Engine) Support(i int) int64 { return e.counts[i] }

// Interactions returns the interaction clock.
func (e *Engine) Interactions() int64 { return e.steps }

// Config returns a snapshot of the aggregate configuration.
func (e *Engine) Config() *conf.Config {
	return &conf.Config{
		Support:   append([]int64(nil), e.counts...),
		Undecided: e.u,
	}
}

// Agent returns the state of agent i. Intended for tests and debugging.
func (e *Engine) Agent(i int) State { return e.agents[i] }

// IsConsensus reports whether all agents hold the same opinion.
func (e *Engine) IsConsensus() bool {
	if e.u != 0 {
		return false
	}
	n := e.N()
	for _, c := range e.counts {
		if c == n {
			return true
		}
	}
	return false
}

// Step simulates one interaction.
func (e *Engine) Step() {
	i, j := e.sched.Pair(len(e.agents))
	e.steps++
	ri, rj := e.proto.Delta(e.agents[i], e.agents[j])
	if ri != e.agents[i] {
		e.retag(e.agents[i], ri)
		e.agents[i] = ri
	}
	// A self-interaction (i == j) never changes state under protocols whose
	// Delta is the identity on equal pairs; guard anyway so that a protocol
	// returning a changed initiator for i == j cannot corrupt the counts.
	if i != j && rj != e.agents[j] {
		e.retag(e.agents[j], rj)
		e.agents[j] = rj
	}
}

func (e *Engine) retag(old, nw State) {
	if old == Undecided {
		e.u--
	} else {
		e.counts[old-1]--
	}
	if nw == Undecided {
		e.u++
	} else {
		e.counts[nw-1]++
	}
}

// Result summarizes a Run. Winner is -1 unless consensus was reached.
type Result struct {
	// Consensus reports whether all agents agreed on one opinion.
	Consensus bool
	// Winner is the 0-based consensus opinion, or -1.
	Winner int
	// Interactions is the interaction clock at termination.
	Interactions int64
}

// Run simulates until consensus or until the interaction budget is
// exhausted (budget <= 0 means until consensus). It returns an error if the
// scheduler fails (for example a Replayer running out of schedule).
func (e *Engine) Run(budget int64) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			if recErr, ok := r.(error); ok {
				err = recErr
				res = Result{Winner: -1, Interactions: e.steps}
				return
			}
			panic(r)
		}
	}()
	for !e.IsConsensus() {
		if budget > 0 && e.steps >= budget {
			return Result{Winner: -1, Interactions: e.steps}, nil
		}
		if e.u == e.N() {
			// All-undecided is absorbing; report as non-consensus.
			return Result{Winner: -1, Interactions: e.steps}, nil
		}
		e.Step()
	}
	winner := -1
	for i, c := range e.counts {
		if c == e.N() {
			winner = i
			break
		}
	}
	return Result{Consensus: true, Winner: winner, Interactions: e.steps}, nil
}
