package pop

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/conf"
	"repro/internal/potential"
	"repro/internal/rng"
)

func mustConfig(t *testing.T, support []int64, u int64) *conf.Config {
	t.Helper()
	c, err := conf.FromSupport(support, u)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestUSDDeltaTable(t *testing.T) {
	p := USD{Opinions: 3}
	if p.K() != 3 {
		t.Fatalf("K = %d", p.K())
	}
	cases := []struct {
		name           string
		resp, init     State
		wantR, wantI   State
		wantResponderΔ bool
	}{
		{"different opinions", 1, 2, Undecided, 2, true},
		{"same opinion", 2, 2, 2, 2, false},
		{"undecided adopts", Undecided, 3, 3, 3, true},
		{"initiator undecided", 1, Undecided, 1, Undecided, false},
		{"both undecided", Undecided, Undecided, Undecided, Undecided, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, i := p.Delta(tc.resp, tc.init)
			if r != tc.wantR || i != tc.wantI {
				t.Fatalf("Delta(%d,%d) = (%d,%d), want (%d,%d)",
					tc.resp, tc.init, r, i, tc.wantR, tc.wantI)
			}
			if (r != tc.resp) != tc.wantResponderΔ {
				t.Fatalf("responder change = %v, want %v", r != tc.resp, tc.wantResponderΔ)
			}
		})
	}
}

func TestUSDDeltaInitiatorNeverChanges(t *testing.T) {
	p := USD{Opinions: 4}
	check := func(a, b uint8) bool {
		resp := State(a % 5) // 0..4
		init := State(b % 5)
		_, gotInit := p.Delta(resp, init)
		return gotInit == init
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVoterDelta(t *testing.T) {
	p := Voter{Opinions: 2}
	if r, _ := p.Delta(1, 2); r != 2 {
		t.Fatal("voter responder must adopt initiator opinion")
	}
	if r, _ := p.Delta(1, Undecided); r != 1 {
		t.Fatal("voter responder must keep opinion against undecided initiator")
	}
	if r, _ := p.Delta(Undecided, 2); r != 2 {
		t.Fatal("undecided voter responder must adopt")
	}
}

func TestNewEngineValidation(t *testing.T) {
	c := mustConfig(t, []int64{2, 2}, 0)
	if _, err := NewEngine(c, nil, UniformScheduler{Src: rng.New(1)}); err == nil {
		t.Fatal("nil protocol accepted")
	}
	if _, err := NewEngine(c, USD{Opinions: 2}, nil); err == nil {
		t.Fatal("nil scheduler accepted")
	}
	if _, err := NewEngine(c, USD{Opinions: 3}, UniformScheduler{Src: rng.New(1)}); err == nil {
		t.Fatal("k mismatch accepted")
	}
	if _, err := NewEngine(&conf.Config{}, USD{Opinions: 0}, UniformScheduler{Src: rng.New(1)}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestEngineInitialState(t *testing.T) {
	c := mustConfig(t, []int64{3, 2}, 1)
	e, err := NewEngine(c, USD{Opinions: 2}, UniformScheduler{Src: rng.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	if e.N() != 6 || e.K() != 2 || e.Undecided() != 1 {
		t.Fatalf("shape: n=%d k=%d u=%d", e.N(), e.K(), e.Undecided())
	}
	// Agent vector layout: opinion 0 ×3, opinion 1 ×2, undecided ×1.
	wantAgents := []State{1, 1, 1, 2, 2, Undecided}
	for i, w := range wantAgents {
		if got := e.Agent(i); got != w {
			t.Fatalf("agent %d = %d, want %d", i, got, w)
		}
	}
	snap := e.Config()
	if snap.Support[0] != 3 || snap.Support[1] != 2 || snap.Undecided != 1 {
		t.Fatalf("Config = %v", snap)
	}
}

func TestEngineCountsStayConsistent(t *testing.T) {
	check := func(seed uint16) bool {
		c, err := conf.Uniform(60, 3, 10)
		if err != nil {
			return false
		}
		e, err := NewEngine(c, USD{Opinions: 3}, UniformScheduler{Src: rng.New(uint64(seed))})
		if err != nil {
			return false
		}
		for s := 0; s < 500; s++ {
			e.Step()
			// Recount from the agent vector.
			var u int64
			counts := make([]int64, 3)
			for i := int64(0); i < e.N(); i++ {
				st := e.Agent(int(i))
				if st == Undecided {
					u++
				} else {
					counts[st-1]++
				}
			}
			if u != e.Undecided() {
				return false
			}
			for i := range counts {
				if counts[i] != e.Support(i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineReachesConsensus(t *testing.T) {
	c := mustConfig(t, []int64{80, 20}, 0)
	e, err := NewEngine(c, USD{Opinions: 2}, UniformScheduler{Src: rng.New(5)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consensus {
		t.Fatal("no consensus")
	}
	if res.Winner != 0 && res.Winner != 1 {
		t.Fatalf("winner = %d", res.Winner)
	}
	if !e.IsConsensus() {
		t.Fatal("IsConsensus false after consensus result")
	}
}

func TestEngineBudget(t *testing.T) {
	c, err := conf.Uniform(1000, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(c, USD{Opinions: 4}, UniformScheduler{Src: rng.New(5)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Consensus {
		t.Fatal("cannot reach consensus in 100 interactions from uniform 4-opinion start")
	}
	if res.Interactions != 100 {
		t.Fatalf("interactions = %d, want 100", res.Interactions)
	}
}

func TestEngineAllUndecidedAbsorbing(t *testing.T) {
	c := mustConfig(t, []int64{0, 0}, 10)
	e, err := NewEngine(c, USD{Opinions: 2}, UniformScheduler{Src: rng.New(5)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Consensus || res.Winner != -1 {
		t.Fatalf("all-undecided run: %+v", res)
	}
}

func TestUniformSchedulerLaw(t *testing.T) {
	src := rng.New(21)
	s := UniformScheduler{Src: src}
	const n, trials = 5, 100000
	counts := make([][]int, n)
	for i := range counts {
		counts[i] = make([]int, n)
	}
	selfCount := 0
	for i := 0; i < trials; i++ {
		a, b := s.Pair(n)
		counts[a][b]++
		if a == b {
			selfCount++
		}
	}
	want := float64(trials) / (n * n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.Abs(float64(counts[i][j])-want) > 6*math.Sqrt(want) {
				t.Fatalf("pair (%d,%d) count %d, want ~%.0f", i, j, counts[i][j], want)
			}
		}
	}
	if selfCount == 0 {
		t.Fatal("uniform scheduler never produced a self-interaction")
	}
}

func TestNoSelfSchedulerLaw(t *testing.T) {
	src := rng.New(22)
	s := NoSelfScheduler{Src: src}
	const n, trials = 5, 100000
	counts := make([][]int, n)
	for i := range counts {
		counts[i] = make([]int, n)
	}
	for i := 0; i < trials; i++ {
		a, b := s.Pair(n)
		if a == b {
			t.Fatal("self-interaction from NoSelfScheduler")
		}
		counts[a][b]++
	}
	want := float64(trials) / (n * (n - 1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if math.Abs(float64(counts[i][j])-want) > 6*math.Sqrt(want) {
				t.Fatalf("pair (%d,%d) count %d, want ~%.0f", i, j, counts[i][j], want)
			}
		}
	}
}

func TestRecordReplayIdentical(t *testing.T) {
	c := mustConfig(t, []int64{30, 20, 10}, 5)
	rec := &Recorder{Inner: UniformScheduler{Src: rng.New(33)}}
	e1, err := NewEngine(c, USD{Opinions: 3}, rec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		e1.Step()
	}
	e2, err := NewEngine(c, USD{Opinions: 3}, &Replayer{Pairs: rec.Pairs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		e2.Step()
	}
	for i := int64(0); i < e1.N(); i++ {
		if e1.Agent(int(i)) != e2.Agent(int(i)) {
			t.Fatalf("replay diverged at agent %d", i)
		}
	}
}

func TestReplayExhaustion(t *testing.T) {
	c := mustConfig(t, []int64{5, 5}, 0)
	e, err := NewEngine(c, USD{Opinions: 2}, &Replayer{Pairs: [][2]int{{0, 5}}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Run(10)
	if !errors.Is(err, ErrReplayExhausted) {
		t.Fatalf("err = %v, want ErrReplayExhausted", err)
	}
}

func TestReplayOutOfRangePair(t *testing.T) {
	c := mustConfig(t, []int64{5, 5}, 0)
	e, err := NewEngine(c, USD{Opinions: 2}, &Replayer{Pairs: [][2]int{{0, 99}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(10); err == nil {
		t.Fatal("out-of-range replayed pair not reported")
	}
}

func TestEngineMatchesObservation6(t *testing.T) {
	// The agent-level engine's one-step law must match the aggregate
	// probabilities, confirming the two simulators implement one process.
	c := mustConfig(t, []int64{6, 3, 1}, 10)
	want := potential.UndecidedProbs(c)
	src := rng.New(55)
	const trials = 200000
	var down, up int
	for i := 0; i < trials; i++ {
		e, err := NewEngine(c, USD{Opinions: 3}, UniformScheduler{Src: src})
		if err != nil {
			t.Fatal(err)
		}
		before := e.Undecided()
		e.Step()
		switch e.Undecided() - before {
		case -1:
			down++
		case 1:
			up++
		}
	}
	tol := 4.0 / math.Sqrt(trials)
	if got := float64(down) / trials; math.Abs(got-want.Down) > tol {
		t.Errorf("down rate %.5f, want %.5f", got, want.Down)
	}
	if got := float64(up) / trials; math.Abs(got-want.Up) > tol {
		t.Errorf("up rate %.5f, want %.5f", got, want.Up)
	}
}

func TestVoterReachesConsensus(t *testing.T) {
	c := mustConfig(t, []int64{50, 50}, 0)
	e, err := NewEngine(c, Voter{Opinions: 2}, UniformScheduler{Src: rng.New(9)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consensus {
		t.Fatal("voter did not converge")
	}
}

func BenchmarkEngineStepUSD(b *testing.B) {
	c, err := conf.Uniform(1<<16, 8, 0)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(c, USD{Opinions: 8}, UniformScheduler{Src: rng.New(1)})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
