package pop

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestNewWeightedSchedulerValidation(t *testing.T) {
	src := rng.New(1)
	if _, err := NewWeightedScheduler(nil, src); err == nil {
		t.Fatal("empty weights accepted")
	}
	if _, err := NewWeightedScheduler([]int64{1, 2}, nil); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := NewWeightedScheduler([]int64{1, 0}, src); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := NewWeightedScheduler([]int64{1, -3}, src); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestWeightedSchedulerLaw(t *testing.T) {
	weights := []int64{1, 2, 3, 4}
	s, err := NewWeightedScheduler(weights, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	const trials = 100000
	counts := make([]int64, len(weights))
	for i := 0; i < trials; i++ {
		a, b := s.Pair(len(weights))
		counts[a]++
		counts[b]++
	}
	total := int64(0)
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		want := float64(2*trials) * float64(w) / float64(total)
		got := float64(counts[i])
		if math.Abs(got-want) > 6*math.Sqrt(want) {
			t.Fatalf("agent %d drawn %v times, want ~%v", i, got, want)
		}
	}
}

func TestWeightedSchedulerUniformMatchesUniform(t *testing.T) {
	// With equal weights, the pair law is the uniform law: every ordered
	// pair equally likely, self-interactions included.
	weights := []int64{7, 7, 7}
	s, err := NewWeightedScheduler(weights, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	const trials = 90000
	counts := make([][]int64, 3)
	for i := range counts {
		counts[i] = make([]int64, 3)
	}
	for i := 0; i < trials; i++ {
		a, b := s.Pair(3)
		counts[a][b]++
	}
	want := float64(trials) / 9
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(float64(counts[i][j])-want) > 6*math.Sqrt(want) {
				t.Fatalf("pair (%d,%d): %d, want ~%.0f", i, j, counts[i][j], want)
			}
		}
	}
}

func TestWeightedSchedulerWrongNPanics(t *testing.T) {
	s, err := NewWeightedScheduler([]int64{1, 1}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched n did not panic")
		}
	}()
	s.Pair(3)
}

func TestZipfWeights(t *testing.T) {
	w, err := ZipfWeights(100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 100 {
		t.Fatalf("got %d weights", len(w))
	}
	for i := 1; i < len(w); i++ {
		if w[i] > w[i-1] {
			t.Fatalf("weights not non-increasing at %d: %v > %v", i, w[i], w[i-1])
		}
		if w[i] < 1 {
			t.Fatalf("weight %d below 1", i)
		}
	}
	if w[0] != 100 {
		t.Fatalf("head weight = %d, want n = 100", w[0])
	}
	// s = 0 -> uniform.
	u, err := ZipfWeights(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range u {
		if v != 1 {
			t.Fatalf("uniform weight %d = %d", i, v)
		}
	}
	if _, err := ZipfWeights(0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := ZipfWeights(10, -1); err == nil {
		t.Fatal("negative exponent accepted")
	}
}

func TestUSDConvergesUnderWeightedScheduler(t *testing.T) {
	// The USD should still reach consensus under heterogeneous activation
	// rates; with a bias, the plurality should still usually win.
	c := mustConfig(t, []int64{300, 100, 100}, 0)
	weights, err := ZipfWeights(500, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		sched, err := NewWeightedScheduler(weights, rng.New(rng.Derive(77, uint64(i))))
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(c, USD{Opinions: 3}, sched)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(50_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Consensus {
			t.Fatalf("trial %d did not converge", i)
		}
		if res.Winner == 0 {
			wins++
		}
	}
	if wins < trials/2 {
		t.Fatalf("plurality won only %d/%d under weighted scheduling", wins, trials)
	}
}
