package randomwalk

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
)

func TestGamblersRuinFair(t *testing.T) {
	// Fair walk: win prob = a/b.
	got, err := GamblersRuinWinProb(3, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("fair ruin = %v, want 0.3", got)
	}
}

func TestGamblersRuinBiased(t *testing.T) {
	// p=0.6, a=1, b=2: win = (1-(q/p)^1)/(1-(q/p)^2) = 1/(1+q/p) = 0.6.
	got, err := GamblersRuinWinProb(1, 2, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("biased ruin = %v, want 0.6", got)
	}
}

func TestGamblersRuinExtremeBias(t *testing.T) {
	// Strong upward drift from a deep start: win prob ~ 1.
	got, err := GamblersRuinWinProb(500, 1000, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.999999 {
		t.Fatalf("strong-drift win prob = %v, want ~1", got)
	}
	// Strong downward drift: win prob ~ (p/q)^(b-a)-ish, tiny.
	got, err = GamblersRuinWinProb(5, 1000, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if got > 1e-3 {
		t.Fatalf("downward-drift win prob = %v, want tiny", got)
	}
}

func TestGamblersRuinParamErrors(t *testing.T) {
	cases := []struct{ a, b int64 }{{0, 5}, {5, 5}, {6, 5}, {-1, 5}}
	for _, tc := range cases {
		if _, err := GamblersRuinWinProb(tc.a, tc.b, 0.5); !errors.Is(err, ErrBadParams) {
			t.Fatalf("a=%d b=%d accepted", tc.a, tc.b)
		}
	}
	for _, p := range []float64{0, 1, -0.1, 1.1} {
		if _, err := GamblersRuinWinProb(1, 5, p); !errors.Is(err, ErrBadParams) {
			t.Fatalf("p=%v accepted", p)
		}
	}
}

func TestGamblersRuinSimulationMatchesClosedForm(t *testing.T) {
	src := rng.New(7)
	cases := []struct {
		a, b int64
		p    float64
	}{
		{3, 10, 0.5},
		{5, 15, 0.55},
		{10, 20, 0.45},
	}
	for _, tc := range cases {
		want, err := GamblersRuinWinProb(tc.a, tc.b, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		const trials = 20000
		wins := 0
		for i := 0; i < trials; i++ {
			res, err := SimulateGamblersRuin(src, tc.a, tc.b, tc.p)
			if err != nil {
				t.Fatal(err)
			}
			if res.Won {
				wins++
			}
			if res.Steps < tc.b-tc.a && res.Won {
				t.Fatalf("won in %d steps from a=%d b=%d: impossible", res.Steps, tc.a, tc.b)
			}
		}
		got := float64(wins) / trials
		tol := 5 * math.Sqrt(want*(1-want)/trials)
		if math.Abs(got-want) > tol {
			t.Fatalf("a=%d b=%d p=%v: empirical %v, closed form %v (tol %v)",
				tc.a, tc.b, tc.p, got, want, tol)
		}
	}
}

func TestReflectingTailProb(t *testing.T) {
	// (p/q)^m with p=0.25, q=0.5, m=3 -> (1/2)^3.
	got, err := ReflectingTailProb(0.25, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.125) > 1e-12 {
		t.Fatalf("tail = %v, want 0.125", got)
	}
	if _, err := ReflectingTailProb(0.5, 0.4, 1); !errors.Is(err, ErrBadParams) {
		t.Fatal("q <= p accepted")
	}
	if _, err := ReflectingTailProb(0.6, 0.6, 1); !errors.Is(err, ErrBadParams) {
		t.Fatal("p+q > 1 with q=p accepted")
	}
}

func TestReflectingWalkStaysBelowLemma18Level(t *testing.T) {
	// Lemma 18: within n^c steps, Pr[max >= m] <= n^c (p/q)^m. Pick
	// parameters where the bound is ~1e-4 and verify no excursion in a
	// handful of runs.
	src := rng.New(11)
	p, q := 0.25, 0.5
	steps := int64(20000)
	m := int64(40) // bound: 2e4 * (0.5)^40 ~ 2e-8
	for trial := 0; trial < 20; trial++ {
		maxPos, err := SimulateReflectingMax(src, p, q, steps)
		if err != nil {
			t.Fatal(err)
		}
		if maxPos >= m {
			t.Fatalf("trial %d: reflecting walk reached %d >= %d against 2e-8 bound", trial, maxPos, m)
		}
	}
}

func TestReflectingWalkTailFrequency(t *testing.T) {
	// Empirical check of the stationary tail: run many short walks and
	// compare the hit frequency of level m against the union bound.
	src := rng.New(13)
	p, q := 0.3, 0.6
	m := int64(6)
	steps := int64(300)
	bound, err := BiasedWalkHittingBound(p, q, m, float64(steps))
	if err != nil {
		t.Fatal(err)
	}
	const trials = 4000
	hits := 0
	for i := 0; i < trials; i++ {
		maxPos, err := SimulateReflectingMax(src, p, q, steps)
		if err != nil {
			t.Fatal(err)
		}
		if maxPos >= m {
			hits++
		}
	}
	got := float64(hits) / trials
	if got > bound {
		t.Fatalf("hit frequency %v exceeds Lemma 18 union bound %v", got, bound)
	}
}

func TestExcessProb(t *testing.T) {
	got, err := ExcessProb(0.75, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.0/9) > 1e-12 {
		t.Fatalf("excess = %v, want 1/9", got)
	}
	if _, err := ExcessProb(0.5, 1); !errors.Is(err, ErrBadParams) {
		t.Fatal("p = 0.5 accepted")
	}
}

func TestExcessProbEmpirical(t *testing.T) {
	// Lemma 19: failures never exceed successes by b with prob >= 1-((1-p)/p)^b.
	src := rng.New(17)
	p := 0.7
	b := int64(5)
	bound, err := ExcessProb(p, b)
	if err != nil {
		t.Fatal(err)
	}
	const trials, horizon = 5000, 2000
	violations := 0
	for i := 0; i < trials; i++ {
		excess := int64(0) // failures - successes
		for s := 0; s < horizon; s++ {
			if src.Bernoulli(p) {
				excess--
			} else {
				excess++
			}
			if excess >= b {
				violations++
				break
			}
		}
	}
	got := float64(violations) / trials
	// The bound applies to the infinite horizon, so the finite-horizon
	// frequency must stay below it (plus noise).
	if got > bound+4*math.Sqrt(bound/trials) {
		t.Fatalf("excess frequency %v exceeds Lemma 19 bound %v", got, bound)
	}
}

func TestEscalationWalkAdvanceProbs(t *testing.T) {
	w := EscalationWalk{P0: 0.4, Levels: 4}
	if got := w.AdvanceProb(0); got != 0.4 {
		t.Fatalf("level-0 advance = %v", got)
	}
	// Level 1: 1 - e^{-2}.
	if got := w.AdvanceProb(1); math.Abs(got-(1-math.Exp(-2))) > 1e-12 {
		t.Fatalf("level-1 advance = %v", got)
	}
	// Level 3: 1 - e^{-8}, very close to 1.
	if got := w.AdvanceProb(3); got < 0.999 {
		t.Fatalf("level-3 advance = %v", got)
	}
}

func TestEscalationWalkAbsorbsQuickly(t *testing.T) {
	// Lemma 21: absorption within O(log n) steps w.h.p.; with P0 constant
	// and L = 4 levels, a few hundred steps are overwhelmingly enough.
	src := rng.New(23)
	w := EscalationWalk{P0: 0.5, Levels: 4}
	const trials = 2000
	var totalSteps int64
	for i := 0; i < trials; i++ {
		steps, absorbed, err := w.Simulate(src, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if !absorbed {
			t.Fatalf("trial %d not absorbed within 2000 steps", i)
		}
		totalSteps += steps
	}
	// Mean steps should be modest (each attempt succeeds w.p. >= 0.8*P0,
	// so ~1/(0.8*0.5) attempts of ~O(1) expected length each).
	if mean := float64(totalSteps) / trials; mean > 50 {
		t.Fatalf("mean absorption time %v too large", mean)
	}
}

func TestEscalationAttemptBound(t *testing.T) {
	// Empirical per-attempt success frequency must be at least 0.8·P0
	// (Lemma 21's lower bound).
	src := rng.New(29)
	w := EscalationWalk{P0: 0.3, Levels: 4}
	bound := w.AttemptSuccessLowerBound()
	const trials = 30000
	successes := 0
	for i := 0; i < trials; i++ {
		// One attempt: advance from level 0 until fallback or absorption.
		level := 0
		if !src.Bernoulli(w.P0) {
			continue // attempt over immediately (no first advance)
		}
		level = 1
		for level < w.Levels {
			if src.Bernoulli(w.AdvanceProb(level)) {
				level++
			} else {
				break
			}
		}
		if level >= w.Levels {
			successes++
		}
	}
	got := float64(successes) / trials
	if got < bound-4*math.Sqrt(bound/trials) {
		t.Fatalf("attempt success rate %v below Lemma 21 bound %v", got, bound)
	}
}

func TestEscalationWalkParamErrors(t *testing.T) {
	src := rng.New(1)
	if _, _, err := (EscalationWalk{P0: 0, Levels: 3}).Simulate(src, 10); !errors.Is(err, ErrBadParams) {
		t.Fatal("P0=0 accepted")
	}
	if _, _, err := (EscalationWalk{P0: 0.5, Levels: 0}).Simulate(src, 10); !errors.Is(err, ErrBadParams) {
		t.Fatal("Levels=0 accepted")
	}
	if _, _, err := (EscalationWalk{P0: 0.5, Levels: 3}).Simulate(nil, 10); !errors.Is(err, ErrBadParams) {
		t.Fatal("nil source accepted")
	}
}

func TestSimulateParamErrors(t *testing.T) {
	src := rng.New(1)
	if _, err := SimulateGamblersRuin(nil, 1, 2, 0.5); !errors.Is(err, ErrBadParams) {
		t.Fatal("nil source accepted")
	}
	if _, err := SimulateReflectingMax(src, 0.6, 0.6, 10); !errors.Is(err, ErrBadParams) {
		t.Fatal("p+q > 1 accepted")
	}
	if _, err := SimulateReflectingMax(src, 0.2, 0.3, -1); !errors.Is(err, ErrBadParams) {
		t.Fatal("negative steps accepted")
	}
}

func TestBiasedWalkHittingBoundClamps(t *testing.T) {
	got, err := BiasedWalkHittingBound(0.3, 0.6, 1, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("bound = %v, want clamped to 1", got)
	}
}
