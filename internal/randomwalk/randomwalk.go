// Package randomwalk implements the one-dimensional random-walk toolbox the
// paper's analysis reduces to: the gambler's ruin probabilities (Lemma 20),
// the stationary tail of a reflecting biased walk (Lemma 18), the
// success-excess bound (Lemma 19), and the two-level escalation walk of
// Lemma 21, together with exact simulators used to validate the closed
// forms empirically.
package randomwalk

import (
	"errors"
	"math"

	"repro/internal/rng"
)

// ErrBadParams is returned when walk parameters are out of range.
var ErrBadParams = errors.New("randomwalk: parameters out of range")

// GamblersRuinWinProb returns the probability that a ±1 random walk started
// at a, absorbed at 0 and at b (0 < a < b), reaches b before 0, when each
// step is +1 with probability p and −1 with probability 1−p (Lemma 20).
func GamblersRuinWinProb(a, b int64, p float64) (float64, error) {
	if a <= 0 || b <= a || p <= 0 || p >= 1 {
		return 0, ErrBadParams
	}
	if p == 0.5 {
		return float64(a) / float64(b), nil
	}
	q := 1 - p
	rho := q / p
	// Win prob = (1 - rho^a) / (1 - rho^b); compute in logs when rho^b
	// would overflow or underflow.
	num := -math.Expm1(float64(a) * math.Log(rho))
	den := -math.Expm1(float64(b) * math.Log(rho))
	if den == 0 {
		return float64(a) / float64(b), nil
	}
	return num / den, nil
}

// ReflectingTailProb returns Pr[W ≥ m] = (p/q)^m for the stationary
// distribution of a walk on the non-negative integers with reflecting
// barrier at 0, up-probability p, and down-probability q > p (Lemma 18).
func ReflectingTailProb(p, q float64, m int64) (float64, error) {
	if p <= 0 || q <= p || p+q > 1+1e-12 || m < 0 {
		return 0, ErrBadParams
	}
	return math.Exp(float64(m) * math.Log(p/q)), nil
}

// ExcessProb returns the Lemma 19 bound ((1−p)/p)^b on the probability that
// in an arbitrarily long sequence of independent trials with success
// probability at least p > 1/2, the number of failures ever exceeds the
// number of successes by b.
func ExcessProb(p float64, b int64) (float64, error) {
	if p <= 0.5 || p > 1 || b < 0 {
		return 0, ErrBadParams
	}
	return math.Exp(float64(b) * math.Log((1-p)/p)), nil
}

// RuinResult is the outcome of one simulated gambler's-ruin walk.
type RuinResult struct {
	// Won reports whether the walk hit b before 0.
	Won bool
	// Steps is the number of steps until absorption.
	Steps int64
}

// SimulateGamblersRuin runs one ±1 walk from a with absorbing barriers at 0
// and b and step-up probability p.
func SimulateGamblersRuin(src *rng.Source, a, b int64, p float64) (RuinResult, error) {
	if a <= 0 || b <= a || p <= 0 || p >= 1 || src == nil {
		return RuinResult{}, ErrBadParams
	}
	pos := a
	var steps int64
	for pos > 0 && pos < b {
		if src.Bernoulli(p) {
			pos++
		} else {
			pos--
		}
		steps++
	}
	return RuinResult{Won: pos == b, Steps: steps}, nil
}

// SimulateReflectingMax runs a reflecting walk from 0 for the given number
// of steps (up w.p. p, down w.p. q, lazy otherwise; at 0 the down step is
// suppressed) and returns the maximum level reached.
func SimulateReflectingMax(src *rng.Source, p, q float64, steps int64) (int64, error) {
	if p < 0 || q < 0 || p+q > 1+1e-12 || steps < 0 || src == nil {
		return 0, ErrBadParams
	}
	var pos, maxPos int64
	for i := int64(0); i < steps; i++ {
		u := src.Float64()
		switch {
		case u < p:
			pos++
			if pos > maxPos {
				maxPos = pos
			}
		case u < p+q && pos > 0:
			pos--
		}
	}
	return maxPos, nil
}

// EscalationWalk is the Lemma 21 walk on levels {0, …, L} with reflecting
// level 0 and absorbing level L: from level 0 it advances with probability
// P0; from level ℓ ≥ 1 it advances with probability 1 − e^(−2^ℓ) and falls
// back to 0 otherwise. The paper instantiates L = log log n and shows
// absorption within O(log n) attempts w.h.p.
type EscalationWalk struct {
	// P0 is the advance probability from level 0.
	P0 float64
	// Levels is the absorbing level L.
	Levels int
}

// AdvanceProb returns the advance probability from the given level.
func (w EscalationWalk) AdvanceProb(level int) float64 {
	if level == 0 {
		return w.P0
	}
	return -math.Expm1(-math.Exp2(float64(level)))
}

// Simulate runs the walk until absorption or until maxSteps, returning the
// number of steps taken and whether it absorbed.
func (w EscalationWalk) Simulate(src *rng.Source, maxSteps int64) (steps int64, absorbed bool, err error) {
	if w.P0 <= 0 || w.P0 > 1 || w.Levels < 1 || src == nil {
		return 0, false, ErrBadParams
	}
	level := 0
	for steps = 0; maxSteps <= 0 || steps < maxSteps; {
		if level >= w.Levels {
			return steps, true, nil
		}
		steps++
		if src.Bernoulli(w.AdvanceProb(level)) {
			level++
		} else {
			level = 0
		}
	}
	return steps, false, nil
}

// AttemptSuccessLowerBound returns the Lemma 21 lower bound 0.8·p on the
// probability that a single attempt (a maximal run starting from level 0)
// reaches the absorbing level, independent of L.
func (w EscalationWalk) AttemptSuccessLowerBound() float64 {
	return 0.8 * w.P0
}

// BiasedWalkHittingBound returns the upper bound from Lemma 18 on the
// probability that a reflecting walk with up-probability p < q reaches
// level m within n^c steps: n^c · (p/q)^m.
func BiasedWalkHittingBound(p, q float64, m int64, horizon float64) (float64, error) {
	tail, err := ReflectingTailProb(p, q, m)
	if err != nil {
		return 0, err
	}
	b := horizon * tail
	if b > 1 {
		return 1, nil
	}
	return b, nil
}
