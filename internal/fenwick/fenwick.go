// Package fenwick implements Fenwick (binary indexed) trees specialized for
// the configuration-level USD simulator.
//
// Two variants are provided:
//
//   - Tree: a classic int64 Fenwick tree with O(log n) point updates, prefix
//     sums, and a top-down descent that samples an index with probability
//     proportional to its value.
//   - Dual: a Fenwick tree that simultaneously maintains prefix sums of the
//     values xᵢ and of their squares xᵢ². Its weighted descent samples an
//     index with probability proportional to wᵢ = D·xᵢ − xᵢ², which is
//     exactly the probability that a decided responder of opinion i meets a
//     decided initiator of a different opinion when D = Σxⱼ agents are
//     decided (paper Observation 6.2).
//
// Both descents are exact (no rejection); the caller supplies a uniform
// random threshold in [0, Total).
//
// Dual's square sums are u128.U128: with populations up to conf.MaxN = 10¹¹
// both Σxᵢ² and the weighted total D·Σxᵢ − Σxᵢ² reach n² ≈ 10²² ≈ 2⁷⁴, past
// int64. The value sums Σxᵢ stay int64 — they are bounded by n. All u128
// arithmetic in the tree is exact: node sums are bounded by n² ≪ 2¹²⁸ and
// every subtraction removes a quantity its minuend provably contains.
package fenwick

import "repro/internal/u128"

// Tree is a Fenwick tree over n int64 values, all initially zero.
// The zero value is not usable; construct with New or FromSlice.
type Tree struct {
	n    int
	bit  []int64 // 1-based internal array
	vals []int64 // current values, for O(1) Get
	log  uint    // highest power of two <= n
}

// New returns a tree of n zero values. n must be positive.
func New(n int) *Tree {
	if n <= 0 {
		panic("fenwick: New called with n <= 0")
	}
	return &Tree{
		n:    n,
		bit:  make([]int64, n+1),
		vals: make([]int64, n),
		log:  highBit(n),
	}
}

// FromSlice returns a tree initialized with a copy of xs in O(n).
func FromSlice(xs []int64) *Tree {
	t := New(len(xs))
	copy(t.vals, xs)
	for i, v := range xs {
		t.bit[i+1] += v
		if parent := i + 1 + ((i + 1) & -(i + 1)); parent <= t.n {
			t.bit[parent] += t.bit[i+1]
		}
	}
	return t
}

func highBit(n int) uint {
	var l uint
	for 1<<(l+1) <= n {
		l++
	}
	return l
}

// Len returns the number of slots.
func (t *Tree) Len() int { return t.n }

// Get returns the value at index i.
func (t *Tree) Get(i int) int64 { return t.vals[i] }

// Add adds delta to the value at index i.
func (t *Tree) Add(i int, delta int64) {
	t.vals[i] += delta
	for j := i + 1; j <= t.n; j += j & -j {
		t.bit[j] += delta
	}
}

// Prefix returns the sum of values at indices [0, i]. Prefix(-1) is 0.
func (t *Tree) Prefix(i int) int64 {
	var s int64
	for j := i + 1; j > 0; j -= j & -j {
		s += t.bit[j]
	}
	return s
}

// Total returns the sum of all values.
func (t *Tree) Total() int64 { return t.Prefix(t.n - 1) }

// Find returns the smallest index i such that Prefix(i) > r, assuming all
// values are non-negative. It requires 0 <= r < Total(); sampling r uniformly
// from [0, Total) selects index i with probability vals[i]/Total.
func (t *Tree) Find(r int64) int {
	if r < 0 {
		panic("fenwick: Find called with negative threshold")
	}
	pos := 0 // 1-based position of the last block kept to the left
	for step := 1 << t.log; step > 0; step >>= 1 {
		next := pos + step
		if next <= t.n && t.bit[next] <= r {
			pos = next
			r -= t.bit[next]
		}
	}
	if pos >= t.n {
		panic("fenwick: Find threshold >= Total")
	}
	return pos // pos is 0-based index of the answer
}

// SetAll replaces every value with xs in O(n), the bulk counterpart of n
// point Adds (see Dual.SetAll). xs must have exactly Len() values.
func (t *Tree) SetAll(xs []int64) {
	if len(xs) != t.n {
		panic("fenwick: Tree.SetAll called with wrong length")
	}
	copy(t.vals, xs)
	for i := range t.bit {
		t.bit[i] = 0
	}
	for i, v := range xs {
		t.bit[i+1] += v
		if parent := i + 1 + ((i + 1) & -(i + 1)); parent <= t.n {
			t.bit[parent] += t.bit[i+1]
		}
	}
}

// Dual maintains values xᵢ >= 0 together with prefix sums of xᵢ and xᵢ².
// The zero value is not usable; construct with NewDual or DualFromSlice.
//
// A Dual can optionally carry per-index stubborn floors bᵢ (SetStubborn),
// for the stubborn-agent USD variant: alongside Σxᵢ and Σxᵢ² it then also
// maintains Σbᵢ (static) and Σbᵢxᵢ (updated with every Add/SetAll), which is
// exactly what the variant's weighted descent over
// wᵢ = (xᵢ−bᵢ)·(D−xᵢ) needs (see FindWeightedStubborn).
type Dual struct {
	n    int
	sx   []int64     // Fenwick over xᵢ (bounded by n, int64 suffices)
	sx2  []u128.U128 // Fenwick over xᵢ² (reaches n² ≈ 2⁷⁴ at MaxN)
	vals []int64
	log  uint

	// Stubborn floors, nil unless SetStubborn installed them.
	sb    []int64     // Fenwick over bᵢ (static after SetStubborn)
	sbx   []u128.U128 // Fenwick over bᵢ·xᵢ (reaches n² at MaxN)
	bvals []int64     // current floors, for O(1) access
	bsum  int64       // Σbᵢ
}

// NewDual returns a dual tree of n zero values. n must be positive.
func NewDual(n int) *Dual {
	if n <= 0 {
		panic("fenwick: NewDual called with n <= 0")
	}
	return &Dual{
		n:    n,
		sx:   make([]int64, n+1),
		sx2:  make([]u128.U128, n+1),
		vals: make([]int64, n),
		log:  highBit(n),
	}
}

// DualFromSlice returns a dual tree initialized with a copy of xs in O(n).
// All values must be non-negative.
func DualFromSlice(xs []int64) *Dual {
	d := NewDual(len(xs))
	copy(d.vals, xs)
	for i, v := range xs {
		if v < 0 {
			panic("fenwick: DualFromSlice called with negative value")
		}
		d.sx[i+1] += v
		d.sx2[i+1] = d.sx2[i+1].Add(u128.Mul64(uint64(v), uint64(v)))
		if parent := i + 1 + ((i + 1) & -(i + 1)); parent <= d.n {
			d.sx[parent] += d.sx[i+1]
			d.sx2[parent] = d.sx2[parent].Add(d.sx2[i+1])
		}
	}
	return d
}

// Len returns the number of slots.
func (d *Dual) Len() int { return d.n }

// Get returns the value at index i.
func (d *Dual) Get(i int) int64 { return d.vals[i] }

// Add adds delta to the value at index i, keeping both component trees in
// sync. The resulting value must remain non-negative.
func (d *Dual) Add(i int, delta int64) {
	old := d.vals[i]
	nv := old + delta
	if nv < 0 {
		panic("fenwick: Dual.Add would make value negative")
	}
	d.vals[i] = nv
	// The square delta nv² − old² = delta·(nv+old) factors into a 64×64
	// product (|delta| <= n and nv+old <= 2n both fit uint64 for any
	// admissible population), applied by sign. The subtraction is exact:
	// every node covering index i holds at least old² >= |nv²−old²| when
	// delta is negative.
	if delta >= 0 {
		d2 := u128.Mul64(uint64(delta), uint64(nv+old))
		for j := i + 1; j <= d.n; j += j & -j {
			d.sx[j] += delta
			d.sx2[j] = d.sx2[j].Add(d2)
		}
	} else {
		d2 := u128.Mul64(uint64(-delta), uint64(nv+old))
		for j := i + 1; j <= d.n; j += j & -j {
			d.sx[j] += delta
			d.sx2[j] = d.sx2[j].Sub(d2)
		}
	}
	if d.bvals != nil {
		// Δ(bᵢ·xᵢ) = bᵢ·delta: one more 64×64 product per touched node,
		// exact for |delta| <= n and bᵢ <= n. Subtractions are exact: nodes
		// covering i hold at least bᵢ·old >= bᵢ·|delta| when delta < 0
		// (old >= -delta, or nv would be negative).
		if b := d.bvals[i]; b != 0 {
			if delta >= 0 {
				db := u128.Mul64(uint64(b), uint64(delta))
				for j := i + 1; j <= d.n; j += j & -j {
					d.sbx[j] = d.sbx[j].Add(db)
				}
			} else {
				db := u128.Mul64(uint64(b), uint64(-delta))
				for j := i + 1; j <= d.n; j += j & -j {
					d.sbx[j] = d.sbx[j].Sub(db)
				}
			}
		}
	}
}

// Sum returns Σ xᵢ over all indices.
func (d *Dual) Sum() int64 { return d.prefixX(d.n) }

// SumSquares returns Σ xᵢ² over all indices.
func (d *Dual) SumSquares() u128.U128 { return d.prefixX2(d.n) }

func (d *Dual) prefixX(j int) int64 { // 1-based exclusive bound
	var s int64
	for ; j > 0; j -= j & -j {
		s += d.sx[j]
	}
	return s
}

func (d *Dual) prefixX2(j int) u128.U128 {
	var s u128.U128
	for ; j > 0; j -= j & -j {
		s = s.Add(d.sx2[j])
	}
	return s
}

// TotalWeighted returns Σᵢ (D·xᵢ − xᵢ²) = D·Σxᵢ − Σxᵢ². With D = Σxᵢ this is
// the number of ordered pairs of decided agents holding different opinions.
// The subtraction is exact: Σxᵢ² <= D·Σxᵢ whenever every xᵢ <= D.
func (d *Dual) TotalWeighted(dTotal int64) u128.U128 {
	return u128.Mul64(uint64(dTotal), uint64(d.Sum())).Sub(d.SumSquares())
}

// FindWeighted returns the smallest index i such that the prefix sum of
// weights wⱼ = D·xⱼ − xⱼ² over j <= i exceeds r. It requires every xⱼ <= D
// (so all weights are non-negative) and 0 <= r < TotalWeighted(D). Sampling
// r uniformly selects index i with probability wᵢ/Σw, the exact distribution
// of the responder in a "decided meets differently-decided" interaction.
func (d *Dual) FindWeighted(dTotal int64, r u128.U128) int {
	pos := 0
	for step := 1 << d.log; step > 0; step >>= 1 {
		next := pos + step
		if next <= d.n {
			w := u128.Mul64(uint64(dTotal), uint64(d.sx[next])).Sub(d.sx2[next])
			if w.Leq(r) {
				pos = next
				r = r.Sub(w)
			}
		}
	}
	if pos >= d.n {
		panic("fenwick: FindWeighted threshold >= TotalWeighted")
	}
	return pos
}

// FindSupport returns the smallest index i such that the prefix sum of the
// values xⱼ over j <= i exceeds r. It requires 0 <= r < Sum(); sampling r
// uniformly selects index i with probability xᵢ/Σx — the law of the opinion
// adopted by an undecided responder.
func (d *Dual) FindSupport(r int64) int {
	if r < 0 {
		panic("fenwick: FindSupport called with negative threshold")
	}
	pos := 0
	for step := 1 << d.log; step > 0; step >>= 1 {
		next := pos + step
		if next <= d.n && d.sx[next] <= r {
			pos = next
			r -= d.sx[next]
		}
	}
	if pos >= d.n {
		panic("fenwick: FindSupport threshold >= Sum")
	}
	return pos
}

// SetAll replaces every value with xs in O(n), rebuilding both component
// trees in one pass. It is the bulk counterpart of n point Adds: the batched
// simulation kernel applies a whole window of per-opinion deltas with a
// single rebuild instead of one O(log n) update per event. xs must have
// exactly Len() non-negative values.
func (d *Dual) SetAll(xs []int64) {
	if len(xs) != d.n {
		panic("fenwick: SetAll called with wrong length")
	}
	// Validate before mutating so a contract panic leaves the tree intact.
	for _, v := range xs {
		if v < 0 {
			panic("fenwick: SetAll called with negative value")
		}
	}
	copy(d.vals, xs)
	for i := range d.sx {
		d.sx[i] = 0
		d.sx2[i] = u128.U128{}
	}
	for i, v := range xs {
		d.sx[i+1] += v
		d.sx2[i+1] = d.sx2[i+1].Add(u128.Mul64(uint64(v), uint64(v)))
		if parent := i + 1 + ((i + 1) & -(i + 1)); parent <= d.n {
			d.sx[parent] += d.sx[i+1]
			d.sx2[parent] = d.sx2[parent].Add(d.sx2[i+1])
		}
	}
	if d.bvals != nil {
		d.rebuildStubbornX()
	}
}

// SetStubborn installs per-index stubborn floors bᵢ (a copy of b) and builds
// the Σbᵢ and Σbᵢxᵢ component trees; passing nil clears the floors and drops
// the extra maintenance from Add and SetAll. Floors must be non-negative;
// the stubborn descent's weight contract additionally needs xᵢ >= bᵢ, which
// the caller (the stubborn dynamics, whose transition law never removes a
// stubborn agent) maintains. Buffers are reused across calls when the length
// matches, so arena-style Reset cycles stay allocation-free.
func (d *Dual) SetStubborn(b []int64) {
	if b == nil {
		d.sb, d.sbx, d.bvals, d.bsum = nil, nil, nil, 0
		return
	}
	if len(b) != d.n {
		panic("fenwick: SetStubborn called with wrong length")
	}
	for _, v := range b {
		if v < 0 {
			panic("fenwick: SetStubborn called with negative floor")
		}
	}
	if cap(d.bvals) < d.n {
		d.bvals = make([]int64, d.n)
		d.sb = make([]int64, d.n+1)
		d.sbx = make([]u128.U128, d.n+1)
	}
	d.bvals = d.bvals[:d.n]
	d.sb = d.sb[:d.n+1]
	d.sbx = d.sbx[:d.n+1]
	copy(d.bvals, b)
	d.bsum = 0
	for i := range d.sb {
		d.sb[i] = 0
	}
	for i, v := range b {
		d.bsum += v
		d.sb[i+1] += v
		if parent := i + 1 + ((i + 1) & -(i + 1)); parent <= d.n {
			d.sb[parent] += d.sb[i+1]
		}
	}
	d.rebuildStubbornX()
}

// rebuildStubbornX rebuilds the Σbᵢxᵢ tree from the current values in O(n).
func (d *Dual) rebuildStubbornX() {
	for i := range d.sbx {
		d.sbx[i] = u128.U128{}
	}
	for i, v := range d.vals {
		d.sbx[i+1] = d.sbx[i+1].Add(u128.Mul64(uint64(d.bvals[i]), uint64(v)))
		if parent := i + 1 + ((i + 1) & -(i + 1)); parent <= d.n {
			d.sbx[parent] = d.sbx[parent].Add(d.sbx[i+1])
		}
	}
}

// Stubborn returns the stubborn floor at index i (0 when no floors are
// installed).
func (d *Dual) Stubborn(i int) int64 {
	if d.bvals == nil {
		return 0
	}
	return d.bvals[i]
}

// StubbornSum returns Σbᵢ over all indices (0 when no floors are installed).
func (d *Dual) StubbornSum() int64 { return d.bsum }

// HasStubborn reports whether stubborn floors are installed.
func (d *Dual) HasStubborn() bool { return d.bvals != nil }

// TotalWeightedStubborn returns Σᵢ (xᵢ−bᵢ)·(D−xᵢ) =
// D·(Σxᵢ−Σbᵢ) − Σxᵢ² + Σbᵢxᵢ, the stubborn variant's count of ordered
// "decided responder may undecide" pairs. It requires installed floors with
// every bᵢ <= xᵢ <= D; the subtraction is then exact because the total is a
// sum of non-negative terms.
func (d *Dual) TotalWeightedStubborn(dTotal int64) u128.U128 {
	pos := u128.Mul64(uint64(dTotal), uint64(d.Sum()-d.bsum)).Add(d.prefixBX(d.n))
	return pos.Sub(d.SumSquares())
}

func (d *Dual) prefixBX(j int) u128.U128 {
	var s u128.U128
	for ; j > 0; j -= j & -j {
		s = s.Add(d.sbx[j])
	}
	return s
}

// FindWeightedStubborn returns the smallest index i such that the prefix sum
// of weights wⱼ = (xⱼ−bⱼ)·(D−xⱼ) over j <= i exceeds r. It requires
// installed floors, bⱼ <= xⱼ <= D for every j (all weights non-negative),
// and 0 <= r < TotalWeightedStubborn(D). Each node weight is evaluated as
// (D·sx + sbx) − (sx2 + D·sb); both sides are exact u128 sums and the
// subtraction is exact because every node's weight is a sum of non-negative
// per-index weights.
func (d *Dual) FindWeightedStubborn(dTotal int64, r u128.U128) int {
	pos := 0
	for step := 1 << d.log; step > 0; step >>= 1 {
		next := pos + step
		if next <= d.n {
			pos128 := u128.Mul64(uint64(dTotal), uint64(d.sx[next])).Add(d.sbx[next])
			neg128 := d.sx2[next].Add(u128.Mul64(uint64(dTotal), uint64(d.sb[next])))
			w := pos128.Sub(neg128)
			if w.Leq(r) {
				pos = next
				r = r.Sub(w)
			}
		}
	}
	if pos >= d.n {
		panic("fenwick: FindWeightedStubborn threshold >= TotalWeightedStubborn")
	}
	return pos
}

// Values appends a copy of the current values to dst and returns it.
func (d *Dual) Values(dst []int64) []int64 {
	return append(dst, d.vals...)
}

// View returns the tree's live value slice without copying. The slice is
// the tree's own backing store: it stays valid (and visible through later
// reads) across Add and SetAll, and callers must treat it as read-only —
// writing through it would desynchronize the prefix trees. The batched
// simulation kernels read the pre-window supports through it once per
// window instead of copying k values.
func (d *Dual) View() []int64 {
	return d.vals
}
