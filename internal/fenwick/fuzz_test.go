package fenwick

import (
	"testing"

	"repro/internal/u128"
)

// FuzzDual drives a Dual tree through an arbitrary interleaving of SetAll,
// Add, and query operations decoded from the fuzz input, mirroring every
// step against a plain-slice model. It checks the full query surface —
// Sum, SumSquares, Get, TotalWeighted, FindSupport, and FindWeighted —
// after every mutation, so any stale internal prefix left behind by the
// SetAll bulk rebuild (the batched kernel's hot path) or by a point Add is
// caught at the first query that touches it.
func FuzzDual(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03})
	f.Add([]byte{0x10, 0xFF, 0x00, 0x7F, 0x20, 0x05, 0x80, 0x01})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x00})
	f.Add([]byte{0xFE, 0x01, 0xFD, 0x02, 0xFC, 0x03, 0xFB, 0x04, 0xFA})

	f.Fuzz(func(t *testing.T, data []byte) {
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		n := int(next())%12 + 1
		d := NewDual(n)
		model := make([]int64, n)

		// check compares every query against the naive model. Values are
		// bounded (≤ ~2¹⁰ per slot), so no int64 concern anywhere here.
		check := func() {
			var sum, sum2 int64
			for i, v := range model {
				if got := d.Get(i); got != v {
					t.Fatalf("Get(%d) = %d, model %d (model %v)", i, got, v, model)
				}
				sum += v
				sum2 += v * v
			}
			if got := d.Sum(); got != sum {
				t.Fatalf("Sum = %d, model %d (model %v)", got, sum, model)
			}
			if got := d.SumSquares(); got != u128.From64(sum2) {
				t.Fatalf("SumSquares = %v, model %d (model %v)", got, sum2, model)
			}
			if got, want := d.TotalWeighted(sum), u128.From64(sum*sum-sum2); got != want {
				t.Fatalf("TotalWeighted(%d) = %v, want %v (model %v)", sum, got, want, model)
			}
			if vals := d.Values(nil); len(vals) != n {
				t.Fatalf("Values returned %d slots, want %d", len(vals), n)
			}
			// FindSupport: for a threshold inside each slot's cumulative
			// band the descent must return exactly that slot.
			var cum int64
			for i, v := range model {
				if v > 0 {
					if got := d.FindSupport(cum); got != i {
						t.Fatalf("FindSupport(%d) = %d, want %d (model %v)", cum, got, i, model)
					}
					if got := d.FindSupport(cum + v - 1); got != i {
						t.Fatalf("FindSupport(%d) = %d, want %d (model %v)", cum+v-1, got, i, model)
					}
				}
				cum += v
			}
			// FindWeighted with D = Sum: weights wᵢ = D·xᵢ − xᵢ² are all
			// non-negative because every xᵢ ≤ D.
			var wcum int64
			for i, v := range model {
				w := sum*v - v*v
				if w > 0 {
					if got := d.FindWeighted(sum, u128.From64(wcum)); got != i {
						t.Fatalf("FindWeighted(%d, %d) = %d, want %d (model %v)", sum, wcum, got, i, model)
					}
					if got := d.FindWeighted(sum, u128.From64(wcum+w-1)); got != i {
						t.Fatalf("FindWeighted(%d, %d) = %d, want %d (model %v)", sum, wcum+w-1, got, i, model)
					}
				}
				wcum += w
			}
		}

		check()
		for len(data) > 0 {
			switch next() % 3 {
			case 0: // SetAll from the next n bytes
				xs := make([]int64, n)
				for i := range xs {
					xs[i] = int64(next()) * int64(next()%4)
				}
				d.SetAll(xs)
				copy(model, xs)
			case 1: // point Add, clamped to keep the slot non-negative
				i := int(next()) % n
				delta := int64(next()) - 128
				if model[i]+delta < 0 {
					delta = -model[i]
				}
				d.Add(i, delta)
				model[i] += delta
			case 2: // a second query pass costs nothing and catches drift
			}
			check()
		}
	})
}
