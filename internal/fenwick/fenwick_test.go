package fenwick

import (
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/u128"
)

func naivePrefix(xs []int64, i int) int64 {
	var s int64
	for j := 0; j <= i; j++ {
		s += xs[j]
	}
	return s
}

func naiveFind(xs []int64, r int64) int {
	var s int64
	for i, v := range xs {
		s += v
		if s > r {
			return i
		}
	}
	return -1
}

func TestTreeBasics(t *testing.T) {
	tr := New(5)
	if tr.Len() != 5 {
		t.Fatalf("Len = %d", tr.Len())
	}
	tr.Add(0, 3)
	tr.Add(2, 7)
	tr.Add(4, 1)
	if got := tr.Total(); got != 11 {
		t.Fatalf("Total = %d, want 11", got)
	}
	wantPrefix := []int64{3, 3, 10, 10, 11}
	for i, w := range wantPrefix {
		if got := tr.Prefix(i); got != w {
			t.Fatalf("Prefix(%d) = %d, want %d", i, got, w)
		}
	}
	if got := tr.Prefix(-1); got != 0 {
		t.Fatalf("Prefix(-1) = %d, want 0", got)
	}
	if got := tr.Get(2); got != 7 {
		t.Fatalf("Get(2) = %d, want 7", got)
	}
	tr.Add(2, -7)
	if got := tr.Total(); got != 4 {
		t.Fatalf("Total after removal = %d, want 4", got)
	}
}

func TestFromSliceMatchesIncremental(t *testing.T) {
	xs := []int64{5, 0, 3, 9, 1, 0, 2, 8, 4}
	a := FromSlice(xs)
	b := New(len(xs))
	for i, v := range xs {
		b.Add(i, v)
	}
	for i := range xs {
		if a.Prefix(i) != b.Prefix(i) {
			t.Fatalf("Prefix(%d): FromSlice %d != incremental %d", i, a.Prefix(i), b.Prefix(i))
		}
	}
}

func TestTreePropertyVsNaive(t *testing.T) {
	check := func(raw []uint16, ops []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		xs := make([]int64, len(raw))
		for i, v := range raw {
			xs[i] = int64(v % 100)
		}
		tr := FromSlice(xs)
		// Apply random point updates.
		for _, op := range ops {
			i := int(op) % len(xs)
			delta := int64(op%7) - 3
			if xs[i]+delta < 0 {
				delta = -xs[i]
			}
			xs[i] += delta
			tr.Add(i, delta)
		}
		for i := range xs {
			if tr.Prefix(i) != naivePrefix(xs, i) {
				return false
			}
			if tr.Get(i) != xs[i] {
				return false
			}
		}
		total := tr.Total()
		if total == 0 {
			return true
		}
		// Every threshold maps to the same index as a linear scan.
		for r := int64(0); r < total; r += max64(1, total/17) {
			if tr.Find(r) != naiveFind(xs, r) {
				return false
			}
		}
		return tr.Find(total-1) == naiveFind(xs, total-1)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeFindBoundaries(t *testing.T) {
	tr := FromSlice([]int64{0, 5, 0, 3, 0})
	cases := []struct {
		r    int64
		want int
	}{
		{0, 1}, {4, 1}, {5, 3}, {7, 3},
	}
	for _, tc := range cases {
		if got := tr.Find(tc.r); got != tc.want {
			t.Fatalf("Find(%d) = %d, want %d", tc.r, got, tc.want)
		}
	}
}

func TestTreeFindPanicsOutOfRange(t *testing.T) {
	tr := FromSlice([]int64{1, 2, 3})
	for _, r := range []int64{-1, 6, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Find(%d) did not panic", r)
				}
			}()
			tr.Find(r)
		}()
	}
}

func TestTreeSamplingDistribution(t *testing.T) {
	// Find with a uniform threshold must sample index i w.p. v_i/total.
	xs := []int64{1, 0, 2, 3, 0, 4}
	tr := FromSlice(xs)
	src := rng.New(99)
	const trials = 100000
	counts := make([]int64, len(xs))
	total := tr.Total()
	for i := 0; i < trials; i++ {
		counts[tr.Find(src.Int63n(total))]++
	}
	for i, v := range xs {
		want := float64(trials) * float64(v) / float64(total)
		got := float64(counts[i])
		if v == 0 && counts[i] != 0 {
			t.Fatalf("index %d has zero weight but %d samples", i, counts[i])
		}
		if v > 0 && abs(got-want) > 5*sqrtf(want) {
			t.Fatalf("index %d sampled %v times, want ~%v", i, got, want)
		}
	}
}

func TestDualBasics(t *testing.T) {
	d := NewDual(4)
	d.Add(0, 3) // x = [3,0,0,0]
	d.Add(2, 5) // x = [3,0,5,0]
	if got := d.Sum(); got != 8 {
		t.Fatalf("Sum = %d, want 8", got)
	}
	if got := d.SumSquares(); got != u128.From64(34) {
		t.Fatalf("SumSquares = %v, want 34", got)
	}
	// D = 8: weights are x_i*(8-x_i): [15, 0, 15, 0], total 30.
	if got := d.TotalWeighted(8); got != u128.From64(30) {
		t.Fatalf("TotalWeighted(8) = %v, want 30", got)
	}
	d.Add(2, -5)
	if got := d.SumSquares(); got != u128.From64(9) {
		t.Fatalf("SumSquares after removal = %v, want 9", got)
	}
}

func TestDualFromSliceMatchesIncremental(t *testing.T) {
	xs := []int64{2, 0, 7, 1, 1, 0, 9}
	a := DualFromSlice(xs)
	b := NewDual(len(xs))
	for i, v := range xs {
		b.Add(i, v)
	}
	if a.Sum() != b.Sum() || a.SumSquares() != b.SumSquares() {
		t.Fatalf("FromSlice (%d,%v) != incremental (%d,%v)",
			a.Sum(), a.SumSquares(), b.Sum(), b.SumSquares())
	}
	total := a.TotalWeighted(a.Sum())
	for r := int64(0); u128.From64(r).Less(total); r++ {
		if a.FindWeighted(a.Sum(), u128.From64(r)) != b.FindWeighted(b.Sum(), u128.From64(r)) {
			t.Fatalf("FindWeighted diverges at r=%d", r)
		}
	}
}

func TestDualSetAllMatchesFromSlice(t *testing.T) {
	d := DualFromSlice([]int64{2, 0, 7, 1, 1, 0, 9})
	xs := []int64{5, 3, 0, 0, 11, 2, 4}
	d.SetAll(xs)
	ref := DualFromSlice(xs)
	if d.Sum() != ref.Sum() || d.SumSquares() != ref.SumSquares() {
		t.Fatalf("SetAll (%d,%v) != fresh (%d,%v)",
			d.Sum(), d.SumSquares(), ref.Sum(), ref.SumSquares())
	}
	for i := range xs {
		if d.Get(i) != xs[i] {
			t.Fatalf("Get(%d) = %d, want %d", i, d.Get(i), xs[i])
		}
	}
	for r := int64(0); r < d.Sum(); r++ {
		if d.FindSupport(r) != ref.FindSupport(r) {
			t.Fatalf("FindSupport diverges at r=%d", r)
		}
	}
	dTotal := d.Sum()
	wTotal := d.TotalWeighted(dTotal)
	for r := int64(0); u128.From64(r).Less(wTotal); r++ {
		if d.FindWeighted(dTotal, u128.From64(r)) != ref.FindWeighted(dTotal, u128.From64(r)) {
			t.Fatalf("FindWeighted diverges at r=%d", r)
		}
	}
	// Point updates after a bulk rebuild stay consistent.
	d.Add(2, 6)
	ref.Add(2, 6)
	if d.Sum() != ref.Sum() || d.SumSquares() != ref.SumSquares() {
		t.Fatal("Add after SetAll diverged from reference")
	}
}

func TestDualSetAllPanics(t *testing.T) {
	d := DualFromSlice([]int64{1, 2, 3})
	for name, xs := range map[string][]int64{
		"wrong length": {1, 2},
		"negative":     {1, -2, 3},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SetAll %s did not panic", name)
				}
			}()
			d.SetAll(xs)
		}()
	}
}

func naiveFindWeighted(xs []int64, dTotal, r int64) int {
	var s int64
	for i, v := range xs {
		s += v*dTotal - v*v
		if s > r {
			return i
		}
	}
	return -1
}

func TestDualFindWeightedPropertyVsNaive(t *testing.T) {
	check := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 48 {
			raw = raw[:48]
		}
		xs := make([]int64, len(raw))
		for i, v := range raw {
			xs[i] = int64(v % 50)
		}
		d := DualFromSlice(xs)
		dTotal := d.Sum() // weights x_i(D - x_i) with D = sum: all valid
		wTotal := d.TotalWeighted(dTotal)
		if wTotal.IsZero() {
			return true
		}
		total := int64(wTotal.Lo) // bounded by 48·50·2400 ≪ 2⁶³
		step := max64(1, total/23)
		for r := int64(0); r < total; r += step {
			if d.FindWeighted(dTotal, u128.From64(r)) != naiveFindWeighted(xs, dTotal, r) {
				return false
			}
		}
		return d.FindWeighted(dTotal, u128.From64(total-1)) == naiveFindWeighted(xs, dTotal, total-1)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDualSamplingDistribution(t *testing.T) {
	// FindWeighted with a uniform threshold must sample index i with
	// probability x_i(D-x_i)/sum, the Observation 6.2 responder law.
	xs := []int64{10, 0, 5, 25, 60}
	d := DualFromSlice(xs)
	dTotal := d.Sum()
	total := int64(d.TotalWeighted(dTotal).Lo)
	src := rng.New(123)
	const trials = 200000
	counts := make([]int64, len(xs))
	for i := 0; i < trials; i++ {
		counts[d.FindWeighted(dTotal, u128.From64(src.Int63n(total)))]++
	}
	for i, v := range xs {
		w := v * (dTotal - v)
		want := float64(trials) * float64(w) / float64(total)
		got := float64(counts[i])
		if w == 0 && counts[i] != 0 {
			t.Fatalf("index %d has zero weight but %d samples", i, counts[i])
		}
		if w > 0 && abs(got-want) > 5*sqrtf(want) {
			t.Fatalf("index %d sampled %v times, want ~%v", i, got, want)
		}
	}
}

// TestDualMaxNScale exercises the 128-bit square-sum path with supports at
// the 10¹¹ population scale, where Σxᵢ² and the weighted total overflow
// int64, checking every query and descent against math/big.
func TestDualMaxNScale(t *testing.T) {
	const maxN = int64(100_000_000_000)
	xs := []int64{maxN / 2, 0, maxN / 3, maxN / 7, maxN/2 - maxN/3 - maxN/7}
	d := DualFromSlice(xs)
	dTotal := d.Sum()
	if dTotal != maxN {
		t.Fatalf("Sum = %d, want %d", dTotal, maxN)
	}
	big64 := func(v int64) *big.Int { return big.NewInt(v) }
	u2big := func(x u128.U128) *big.Int {
		b := new(big.Int).SetUint64(x.Hi)
		b.Lsh(b, 64)
		return b.Or(b, new(big.Int).SetUint64(x.Lo))
	}
	wantSq, wantTotal := new(big.Int), new(big.Int)
	weights := make([]*big.Int, len(xs))
	for i, v := range xs {
		sq := new(big.Int).Mul(big64(v), big64(v))
		wantSq.Add(wantSq, sq)
		w := new(big.Int).Mul(big64(dTotal), big64(v))
		w.Sub(w, sq)
		weights[i] = w
		wantTotal.Add(wantTotal, w)
	}
	if got := u2big(d.SumSquares()); got.Cmp(wantSq) != 0 {
		t.Fatalf("SumSquares = %v, want %v", got, wantSq)
	}
	if got := u2big(d.TotalWeighted(dTotal)); got.Cmp(wantTotal) != 0 {
		t.Fatalf("TotalWeighted = %v, want %v", got, wantTotal)
	}
	if wantSq.BitLen() <= 63 {
		t.Fatalf("test is not exercising the >int64 regime (Σx² has %d bits)", wantSq.BitLen())
	}
	// Each slot's cumulative weight band must descend to exactly that slot,
	// at both band edges.
	cum := new(big.Int)
	for i, w := range weights {
		if w.Sign() > 0 {
			lo := new(big.Int).Set(cum)
			hi := new(big.Int).Add(cum, w)
			hi.Sub(hi, big.NewInt(1))
			for _, r := range []*big.Int{lo, hi} {
				rq, rr := new(big.Int).QuoRem(r, new(big.Int).Lsh(big.NewInt(1), 64), new(big.Int))
				ru := u128.U128{Hi: rq.Uint64(), Lo: rr.Uint64()}
				if got := d.FindWeighted(dTotal, ru); got != i {
					t.Fatalf("FindWeighted(r=%v) = %d, want %d", r, got, i)
				}
			}
		}
		cum.Add(cum, w)
	}
	// A point update at this scale keeps the square sums exact.
	d.Add(0, -maxN/4)
	wantSq.Sub(wantSq, new(big.Int).Mul(big64(maxN/2), big64(maxN/2)))
	nv := maxN/2 - maxN/4
	wantSq.Add(wantSq, new(big.Int).Mul(big64(nv), big64(nv)))
	if got := u2big(d.SumSquares()); got.Cmp(wantSq) != 0 {
		t.Fatalf("SumSquares after Add = %v, want %v", got, wantSq)
	}
}

func TestDualAddNegativePanics(t *testing.T) {
	d := NewDual(2)
	d.Add(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Add below zero did not panic")
		}
	}()
	d.Add(0, -2)
}

func TestDualValuesCopies(t *testing.T) {
	d := DualFromSlice([]int64{1, 2, 3})
	vals := d.Values(nil)
	vals[0] = 99
	if d.Get(0) != 1 {
		t.Fatal("Values must return a copy, not an alias")
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0) },
		func() { NewDual(-1) },
		func() { DualFromSlice([]int64{-1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("constructor with invalid input did not panic")
				}
			}()
			fn()
		}()
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func sqrtf(x float64) float64 {
	// Newton iterations suffice for test tolerances.
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 40; i++ {
		g = 0.5 * (g + x/g)
	}
	return g
}

func BenchmarkTreeAddFind(b *testing.B) {
	tr := New(64)
	for i := 0; i < 64; i++ {
		tr.Add(i, int64(i+1))
	}
	src := rng.New(1)
	total := tr.Total()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := tr.Find(src.Int63n(total))
		tr.Add(j, 1)
		tr.Add(j, -1)
	}
}

func BenchmarkDualFindWeighted(b *testing.B) {
	xs := make([]int64, 64)
	for i := range xs {
		xs[i] = int64(i + 1)
	}
	d := DualFromSlice(xs)
	dTotal := d.Sum()
	total := int64(d.TotalWeighted(dTotal).Lo)
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.FindWeighted(dTotal, u128.From64(src.Int63n(total)))
	}
}

func TestDualView(t *testing.T) {
	d := DualFromSlice([]int64{3, 1, 4, 1, 5})
	v := d.View()
	if len(v) != 5 {
		t.Fatalf("View length %d, want 5", len(v))
	}
	for i, want := range []int64{3, 1, 4, 1, 5} {
		if v[i] != want {
			t.Fatalf("View[%d] = %d, want %d", i, v[i], want)
		}
	}
	// The view is live: point updates and bulk rebuilds show through it
	// without re-acquiring.
	d.Add(2, 7)
	if v[2] != 11 {
		t.Fatalf("View[2] after Add = %d, want 11", v[2])
	}
	d.SetAll([]int64{9, 8, 7, 6, 5})
	if v[0] != 9 || v[4] != 5 {
		t.Fatalf("View after SetAll = %v", v)
	}
}
