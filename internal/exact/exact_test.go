package exact

import (
	"errors"
	"math"
	"testing"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/rng"
)

func mustConfig(t *testing.T, support []int64, u int64) *conf.Config {
	t.Helper()
	c, err := conf.FromSupport(support, u)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(10, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := New(10, MaxOpinions+1); err == nil {
		t.Fatal("k too large accepted")
	}
	if _, err := New(0, 2); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := New(4000, 4); !errors.Is(err, ErrTooLarge) {
		t.Fatal("oversized state space accepted")
	}
}

func TestStateEnumeration(t *testing.T) {
	// C(n+k, k) states.
	cases := []struct {
		n    int64
		k    int
		want int
	}{
		{4, 1, 5},   // C(5,1)
		{4, 2, 15},  // C(6,2)
		{10, 2, 66}, // C(12,2)
		{5, 3, 56},  // C(8,3)
	}
	for _, tc := range cases {
		c, err := New(tc.n, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		if c.States() != tc.want {
			t.Fatalf("n=%d k=%d: %d states, want %d", tc.n, tc.k, c.States(), tc.want)
		}
		if c.N() != tc.n || c.K() != tc.k {
			t.Fatalf("chain shape wrong")
		}
	}
}

func TestTransitionProbabilitiesSumToOne(t *testing.T) {
	c, err := New(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf []transition
	for id := range c.states {
		var total float64
		buf, total = c.transitions(id, buf)
		if total < -1e-15 || total > 1+1e-12 {
			t.Fatalf("state %v: productive probability %v out of [0,1]", c.states[id], total)
		}
		var check float64
		for _, tr := range buf {
			if tr.prob <= 0 {
				t.Fatalf("state %v: non-positive edge probability", c.states[id])
			}
			check += tr.prob
		}
		if math.Abs(check-total) > 1e-12 {
			t.Fatalf("state %v: edges sum %v != total %v", c.states[id], check, total)
		}
		if c.isAbsorbing(c.states[id]) && total != 0 {
			t.Fatalf("absorbing state %v has productive probability %v", c.states[id], total)
		}
	}
}

// k=1 closed form: with a single opinion, only "adopt" transitions happen;
// from (x, u) the chain is a pure death process on u with rate
// u·(n−u)/n², so E[T] = Σ_{j=1..u} n²/(j·(n−j)).
func TestExpectedTimeClosedFormK1(t *testing.T) {
	n := int64(20)
	c, err := New(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []int64{1, 5, 10, 19} {
		cfg := mustConfig(t, []int64{n - u}, u)
		got, err := c.ExpectedTimeFrom(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var want float64
		for j := int64(1); j <= u; j++ {
			want += float64(n*n) / float64(j*(n-j))
		}
		if math.Abs(got-want) > 1e-6*want {
			t.Fatalf("u=%d: expected time %v, closed form %v", u, got, want)
		}
	}
}

func TestExpectedTimeAbsorbingIsZero(t *testing.T) {
	c, err := New(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.ExpectedConsensusTimes()
	if err != nil {
		t.Fatal(err)
	}
	for id, s := range c.states {
		if c.isAbsorbing(s) && h[id] != 0 {
			t.Fatalf("absorbing state %v has expected time %v", s, h[id])
		}
		if !c.isAbsorbing(s) && h[id] <= 0 {
			t.Fatalf("transient state %v has expected time %v", s, h[id])
		}
	}
}

func TestWinProbabilitySymmetry(t *testing.T) {
	// From a perfectly symmetric 2-opinion state, each opinion wins with
	// probability 1/2.
	n := int64(16)
	c, err := New(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mustConfig(t, []int64{7, 7}, 2)
	w0, err := c.WinProbabilityFrom(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := c.WinProbabilityFrom(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w0-0.5) > 1e-9 || math.Abs(w1-0.5) > 1e-9 {
		t.Fatalf("symmetric win probs = (%v, %v), want (0.5, 0.5)", w0, w1)
	}
}

func TestWinProbabilitiesSumToOne(t *testing.T) {
	n := int64(12)
	c, err := New(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	var ws [][]float64
	for i := 0; i < 3; i++ {
		w, err := c.WinProbabilities(i)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	for id, s := range c.states {
		if s[3] == int16(n) { // all-undecided: nobody wins
			continue
		}
		sum := ws[0][id] + ws[1][id] + ws[2][id]
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("state %v: win probabilities sum to %v", s, sum)
		}
	}
}

func TestWinProbabilityMonotoneInSupport(t *testing.T) {
	// More initial support cannot hurt: w0 is monotone along
	// (x0, x1) -> (x0+1, x1-1).
	n := int64(14)
	c, err := New(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.WinProbabilities(0)
	if err != nil {
		t.Fatal(err)
	}
	u := int64(2)
	var prev float64 = -1
	for x0 := int64(0); x0 <= n-u; x0++ {
		cfg := mustConfig(t, []int64{x0, n - u - x0}, u)
		id, err := c.StateID(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if w[id] < prev-1e-9 {
			t.Fatalf("win prob not monotone at x0=%d: %v < %v", x0, w[id], prev)
		}
		prev = w[id]
	}
	// Extremes.
	lo, err := c.WinProbabilityFrom(mustConfig(t, []int64{0, n - u}, u), 0)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 {
		t.Fatalf("win prob with zero support = %v", lo)
	}
	hi, err := c.WinProbabilityFrom(mustConfig(t, []int64{n - u, 0}, u), 0)
	if err != nil {
		t.Fatal(err)
	}
	if hi != 1 {
		t.Fatalf("win prob against zero support = %v", hi)
	}
}

func TestStateIDErrors(t *testing.T) {
	c, err := New(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.StateID(mustConfig(t, []int64{5, 5, 0}, 0)); err == nil {
		t.Fatal("k mismatch accepted")
	}
	if _, err := c.StateID(mustConfig(t, []int64{5, 4}, 0)); err == nil {
		t.Fatal("n mismatch accepted")
	}
	if _, err := c.WinProbabilities(5); err == nil {
		t.Fatal("out-of-range opinion accepted")
	}
}

// The exact chain is the ground truth the simulator must match: compare
// the simulated mean consensus time and win frequency against the solved
// values on a small asymmetric instance.
func TestSimulatorMatchesExactChain(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-vs-exact comparison skipped in -short mode")
	}
	n := int64(24)
	cfg := mustConfig(t, []int64{10, 6, 4}, 4)
	chain, err := New(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantTime, err := chain.ExpectedTimeFrom(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantWin, err := chain.WinProbabilityFrom(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}

	const trials = 30000
	var sumT, sumT2 float64
	wins := 0
	src := rng.New(2024)
	for i := 0; i < trials; i++ {
		s, err := core.New(cfg, src)
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run(core.NoBudget)
		if res.Outcome != core.OutcomeConsensus {
			t.Fatalf("trial %d: %v", i, res.Outcome)
		}
		ft := res.Interactions.Float64()
		sumT += ft
		sumT2 += ft * ft
		if res.Winner == 0 {
			wins++
		}
	}
	meanT := sumT / trials
	sdT := math.Sqrt(sumT2/trials - meanT*meanT)
	seT := sdT / math.Sqrt(trials)
	if math.Abs(meanT-wantTime) > 5*seT {
		t.Fatalf("simulated mean time %.3f vs exact %.3f (se %.3f)", meanT, wantTime, seT)
	}
	winRate := float64(wins) / trials
	seW := math.Sqrt(wantWin * (1 - wantWin) / trials)
	if math.Abs(winRate-wantWin) > 5*seW {
		t.Fatalf("simulated win rate %.4f vs exact %.4f (se %.4f)", winRate, wantWin, seW)
	}
}

func TestAllUndecidedAbsorbingState(t *testing.T) {
	n := int64(8)
	c, err := New(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mustConfig(t, []int64{0, 0}, n)
	h, err := c.ExpectedTimeFrom(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h != 0 {
		t.Fatalf("all-undecided expected time %v, want 0 (absorbing)", h)
	}
	w, err := c.WinProbabilityFrom(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w != 0 {
		t.Fatalf("all-undecided win prob %v, want 0", w)
	}
}

func BenchmarkExpectedTimes(b *testing.B) {
	c, err := New(40, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ExpectedConsensusTimes(); err != nil {
			b.Fatal(err)
		}
	}
}
