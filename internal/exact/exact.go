// Package exact computes exact quantities of the USD Markov chain for
// small populations by enumerating the configuration space and solving the
// absorbing-chain linear systems: expected consensus times (in
// interactions) and per-opinion winning probabilities.
//
// The USD on aggregate configurations is a Markov chain on the
// compositions (x₁, …, x_k, u) of n. Each state has at most 2k successors:
// for every opinion i, an "adopt" transition (u−1, xᵢ+1) with probability
// u·xᵢ/n² and an "undecide" transition (u+1, xᵢ−1) with probability
// xᵢ(D−xᵢ)/n², D = n−u; all remaining probability is a self-loop. The k
// consensus states are absorbing, and so is the all-undecided state. The
// expected hitting times h and winning probabilities w solve
//
//	h(s) = 1 + Σ_{s'} P(s,s')·h(s')        h(absorbing) = 0
//	wᵢ(s) = Σ_{s'} P(s,s')·wᵢ(s')          wᵢ(consensus j) = [i = j]
//
// which this package solves by Gauss-Seidel iteration after folding the
// self-loops into the diagonal (both systems are irreducibly diagonally
// dominant after the fold, so the iteration converges). This provides
// ground truth that the simulators are validated against in tests and in
// the X3-exact-validation experiment.
package exact

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/conf"
)

// Limits keeping the state space enumerable: the number of states is
// C(n+k, k).
const (
	// MaxOpinions is the largest k supported.
	MaxOpinions = 4
	// MaxStates bounds the enumerated state count.
	MaxStates = 2_000_000
)

// ErrTooLarge is returned when the configuration space exceeds the limits.
var ErrTooLarge = errors.New("exact: state space too large")

// Chain is the exact USD chain for a fixed (n, k). Construct with New.
type Chain struct {
	n      int64
	k      int
	states [][]int16      // states[id] = (x₁..x_k, u)
	index  map[uint64]int // packed state -> id
}

// New enumerates the configuration space for n agents and k opinions.
func New(n int64, k int) (*Chain, error) {
	if k < 1 || k > MaxOpinions {
		return nil, fmt.Errorf("exact: k = %d out of [1, %d]", k, MaxOpinions)
	}
	if n < 1 || n > 4000 {
		return nil, fmt.Errorf("exact: n = %d out of [1, 4000]", n)
	}
	count := stateCount(n, k)
	if count > MaxStates {
		return nil, fmt.Errorf("%w: %d states for n=%d k=%d", ErrTooLarge, count, n, k)
	}
	c := &Chain{
		n:      n,
		k:      k,
		states: make([][]int16, 0, count),
		index:  make(map[uint64]int, count),
	}
	// Enumerate all compositions of n into k+1 parts.
	parts := make([]int16, k+1)
	c.enumerate(parts, 0, int16(n))
	return c, nil
}

// stateCount returns C(n+k, k).
func stateCount(n int64, k int) int64 {
	count := int64(1)
	for i := 1; i <= k; i++ {
		count = count * (n + int64(i)) / int64(i)
	}
	return count
}

func (c *Chain) enumerate(parts []int16, pos int, remaining int16) {
	if pos == len(parts)-1 {
		parts[pos] = remaining
		s := append([]int16(nil), parts...)
		c.index[pack(s)] = len(c.states)
		c.states = append(c.states, s)
		return
	}
	for v := int16(0); v <= remaining; v++ {
		parts[pos] = v
		c.enumerate(parts, pos+1, remaining-v)
	}
}

// pack encodes a state as a uint64 key (12 bits per part; n <= 4000).
func pack(parts []int16) uint64 {
	var key uint64
	for _, p := range parts {
		key = key<<12 | uint64(p)
	}
	return key
}

// States returns the number of enumerated states.
func (c *Chain) States() int { return len(c.states) }

// N returns the population size.
func (c *Chain) N() int64 { return c.n }

// K returns the number of opinions.
func (c *Chain) K() int { return c.k }

// StateID returns the id of a configuration in the vectors returned by
// ExpectedConsensusTimes and WinProbabilities. The configuration must have
// the chain's exact n and k.
func (c *Chain) StateID(cfg *conf.Config) (int, error) {
	if cfg.K() != c.k || cfg.N() != c.n {
		return 0, fmt.Errorf("exact: configuration (n=%d, k=%d) does not match chain (n=%d, k=%d)",
			cfg.N(), cfg.K(), c.n, c.k)
	}
	parts := make([]int16, c.k+1)
	for i, x := range cfg.Support {
		parts[i] = int16(x)
	}
	parts[c.k] = int16(cfg.Undecided)
	id, ok := c.index[pack(parts)]
	if !ok {
		return 0, fmt.Errorf("exact: configuration %v not found", cfg)
	}
	return id, nil
}

// isAbsorbing reports whether state s has no productive transition:
// consensus (some xᵢ = n) or all-undecided (u = n).
func (c *Chain) isAbsorbing(s []int16) bool {
	if s[c.k] == int16(c.n) {
		return true
	}
	for i := 0; i < c.k; i++ {
		if s[i] == int16(c.n) {
			return true
		}
	}
	return false
}

// transition holds one outgoing edge.
type transition struct {
	to   int
	prob float64
}

// transitions returns the productive outgoing edges of state id and the
// total productive probability (the self-loop is the complement).
func (c *Chain) transitions(id int, buf []transition) ([]transition, float64) {
	s := c.states[id]
	u := int64(s[c.k])
	d := c.n - u
	nn := float64(c.n) * float64(c.n)
	buf = buf[:0]
	var total float64
	next := make([]int16, len(s))
	for i := 0; i < c.k; i++ {
		xi := int64(s[i])
		if xi == 0 {
			continue
		}
		if u > 0 {
			// Adopt opinion i: (xᵢ+1, u−1).
			p := float64(u*xi) / nn
			copy(next, s)
			next[i]++
			next[c.k]--
			buf = append(buf, transition{to: c.index[pack(next)], prob: p})
			total += p
		}
		if other := d - xi; other > 0 {
			// Opinion-i responder becomes undecided: (xᵢ−1, u+1).
			p := float64(xi*other) / nn
			copy(next, s)
			next[i]--
			next[c.k]++
			buf = append(buf, transition{to: c.index[pack(next)], prob: p})
			total += p
		}
	}
	return buf, total
}

// solver configuration.
const (
	maxSweeps = 200000
	tolerance = 1e-12
)

// ExpectedConsensusTimes solves for the expected number of interactions to
// absorption from every state and returns the vector indexed by state id,
// plus the id lookup for a start configuration via StateID. States from
// which absorption is impossible do not exist in this chain (absorption is
// almost sure), so the system has a unique solution.
func (c *Chain) ExpectedConsensusTimes() ([]float64, error) {
	h := make([]float64, len(c.states))
	var buf []transition
	// Gauss-Seidel with alternating sweep direction:
	// h(s) = (1 + Σ p(s,s') h(s')) / pTotal(s), where pTotal is the
	// productive probability (the self-loop folded into the diagonal).
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var maxDelta, scale float64
		for pos := 0; pos < len(c.states); pos++ {
			id := pos
			if sweep%2 == 1 {
				id = len(c.states) - 1 - pos
			}
			if c.isAbsorbing(c.states[id]) {
				continue
			}
			var sum float64
			var total float64
			buf, total = c.transitions(id, buf)
			for _, tr := range buf {
				sum += tr.prob * h[tr.to]
			}
			nv := (1 + sum) / total
			delta := math.Abs(nv - h[id])
			if delta > maxDelta {
				maxDelta = delta
			}
			if nv > scale {
				scale = nv
			}
			h[id] = nv
		}
		if maxDelta <= tolerance*(1+scale) {
			return h, nil
		}
	}
	return nil, errors.New("exact: expected-time solver did not converge")
}

// WinProbabilities solves for the probability that opinion `win` is the
// eventual consensus opinion, from every state.
func (c *Chain) WinProbabilities(win int) ([]float64, error) {
	if win < 0 || win >= c.k {
		return nil, fmt.Errorf("exact: opinion %d out of range", win)
	}
	w := make([]float64, len(c.states))
	for id, s := range c.states {
		if s[win] == int16(c.n) {
			w[id] = 1
		}
	}
	var buf []transition
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var maxDelta float64
		for pos := 0; pos < len(c.states); pos++ {
			id := pos
			if sweep%2 == 1 {
				id = len(c.states) - 1 - pos
			}
			if c.isAbsorbing(c.states[id]) {
				continue
			}
			var sum float64
			var total float64
			buf, total = c.transitions(id, buf)
			for _, tr := range buf {
				sum += tr.prob * w[tr.to]
			}
			nv := sum / total
			if delta := math.Abs(nv - w[id]); delta > maxDelta {
				maxDelta = delta
			}
			w[id] = nv
		}
		if maxDelta <= tolerance {
			return w, nil
		}
	}
	return nil, errors.New("exact: win-probability solver did not converge")
}

// ExpectedTimeFrom returns the expected interactions to absorption from a
// start configuration.
func (c *Chain) ExpectedTimeFrom(cfg *conf.Config) (float64, error) {
	id, err := c.StateID(cfg)
	if err != nil {
		return 0, err
	}
	h, err := c.ExpectedConsensusTimes()
	if err != nil {
		return 0, err
	}
	return h[id], nil
}

// WinProbabilityFrom returns the probability that opinion `win` wins from
// a start configuration.
func (c *Chain) WinProbabilityFrom(cfg *conf.Config, win int) (float64, error) {
	id, err := c.StateID(cfg)
	if err != nil {
		return 0, err
	}
	w, err := c.WinProbabilities(win)
	if err != nil {
		return 0, err
	}
	return w[id], nil
}
