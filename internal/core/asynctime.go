package core

import (
	"math"

	"repro/internal/rng"
	"repro/internal/u128"
)

// ContinuousTime converts an interaction count into elapsed continuous time
// in the asynchronous gossip model of Boyd et al. (Perron et al.'s setting,
// the paper's footnote 1): each of the n agents rings at rate 1, so
// interactions form a Poisson process of rate n and the time of the t-th
// interaction is a Gamma(t, n) variable with mean t/n.
//
// For t above gammaExactLimit the sample is drawn from the normal
// approximation (exact mean t/n, standard deviation √t/n), whose error is
// O(1/√t) and negligible at simulation scales; below it, the Gamma is
// sampled exactly as a sum of exponentials.
func ContinuousTime(src *rng.Source, interactions u128.U128, n int64) float64 {
	if interactions.IsZero() || n <= 0 {
		return 0
	}
	if interactions.Leq(u128.From64(gammaExactLimit)) {
		var sum float64
		for i := uint64(0); i < interactions.Lo; i++ {
			sum += src.Exponential(float64(n))
		}
		return sum
	}
	t := interactions.Float64()
	mean := t / float64(n)
	std := math.Sqrt(t) / float64(n)
	return mean + std*src.Normal()
}

// gammaExactLimit is the largest shape parameter for which ContinuousTime
// sums exponentials exactly.
const gammaExactLimit = 4096
