package core

import (
	"math"
	"testing"

	"repro/internal/conf"
	"repro/internal/rng"
	"repro/internal/u128"
)

func TestKernelString(t *testing.T) {
	if got := KernelExact.String(); got != "exact" {
		t.Fatalf("KernelExact.String() = %q", got)
	}
	if got := KernelBatched(0.1).String(); got != "batched(0.1)" {
		t.Fatalf("KernelBatched(0.1).String() = %q", got)
	}
	if KernelExact.Batched() {
		t.Fatal("KernelExact reports batched")
	}
	if !KernelBatched(0).Batched() {
		t.Fatal("KernelBatched reports exact")
	}
}

func TestKernelBatchedToleranceClamping(t *testing.T) {
	if got := KernelBatched(0).Tolerance(); got != DefaultTolerance {
		t.Fatalf("tol <= 0 gives %v, want DefaultTolerance", got)
	}
	if got := KernelBatched(-1).Tolerance(); got != DefaultTolerance {
		t.Fatalf("negative tol gives %v, want DefaultTolerance", got)
	}
	if got := KernelBatched(5).Tolerance(); got != maxTolerance {
		t.Fatalf("huge tol gives %v, want clamp at %v", got, maxTolerance)
	}
	if got := KernelExact.Tolerance(); got != 0 {
		t.Fatalf("KernelExact.Tolerance() = %v, want 0", got)
	}
}

func TestBatchedReachesConsensus(t *testing.T) {
	// Large enough that windows exceed minBatchWindow mid-run, so the
	// batched path (not its exact fallback) is actually exercised.
	c, err := conf.WithAdditiveBias(1<<16, 8, 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(c, rng.New(11), WithKernel(KernelBatched(0)))
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(NoBudget)
	if res.Outcome != OutcomeConsensus {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if res.Winner != 0 {
		t.Logf("winner %d (bias start: usually 0)", res.Winner)
	}
	if res.Interactions.IsZero() {
		t.Fatalf("interactions = %v", res.Interactions)
	}
	if !s.IsConsensus() {
		t.Fatal("simulator not at consensus after consensus outcome")
	}
}

func TestBatchedInvariantsEveryEvent(t *testing.T) {
	// After every applied event (batched or exact fallback), the aggregate
	// invariants must hold: Σx + u = n, r₂ = Σx², supports non-negative,
	// and the interaction clock must advance by at least Count.
	c, err := conf.Uniform(1<<15, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(c, rng.New(3), WithKernel(KernelBatched(0.1)))
	if err != nil {
		t.Fatal(err)
	}
	var batches, singles int
	var prevClock u128.U128
	var buf []int64
	res := s.RunObserved(NoBudget, func(sim *Simulator, ev Event) {
		switch ev.Kind {
		case EventBatch:
			batches++
			if ev.Count < minBatchWindow {
				t.Fatalf("batch of %d events below minBatchWindow", ev.Count)
			}
			if ev.Opinion != -1 {
				t.Fatalf("batch event has opinion %d", ev.Opinion)
			}
		case EventAdopt, EventUndecide:
			singles++
			if ev.Count != 1 {
				t.Fatalf("single event has Count %d", ev.Count)
			}
		default:
			t.Fatalf("unexpected event kind %v", ev.Kind)
		}
		if ev.Interactions.Less(prevClock.Add64(uint64(ev.Count))) {
			t.Fatalf("clock %v advanced less than Count from %v", ev.Interactions, prevClock)
		}
		prevClock = ev.Interactions
		buf = sim.Supports(buf[:0])
		var sum, sq int64
		for _, x := range buf {
			if x < 0 {
				t.Fatalf("negative support %d", x)
			}
			sum += x
			sq += x * x
		}
		if sum+sim.Undecided() != sim.N() {
			t.Fatalf("population leak: Σx=%d u=%d n=%d", sum, sim.Undecided(), sim.N())
		}
		if !sim.SumSquares().Eq(u128.From64(sq)) {
			t.Fatalf("r₂ drift: tracked %v, actual %d", sim.SumSquares(), sq)
		}
	})
	if res.Outcome != OutcomeConsensus {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if batches == 0 {
		t.Fatal("batched kernel never applied a batch window")
	}
	if singles == 0 {
		t.Fatal("batched kernel never fell back to exact steps (endgame should)")
	}
}

func TestBatchedBudget(t *testing.T) {
	c, err := conf.Uniform(1<<14, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{1, 100, 50000} {
		s, err := New(c, rng.New(9), WithKernel(KernelBatched(0)))
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run(u128.From64(budget))
		if res.Outcome != OutcomeBudget {
			t.Fatalf("budget %d: outcome %v", budget, res.Outcome)
		}
		if u128.From64(budget).Less(res.Interactions) {
			t.Fatalf("budget %d: clock %v overran", budget, res.Interactions)
		}
	}
}

func TestBatchedAllUndecidedStart(t *testing.T) {
	c := &conf.Config{Support: []int64{0, 0, 0}, Undecided: 1 << 12}
	s, err := New(c, rng.New(1), WithKernel(KernelBatched(0)))
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(NoBudget)
	if res.Outcome != OutcomeAllUndecided {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if !res.Interactions.IsZero() {
		t.Fatalf("clock advanced %v in an absorbing start", res.Interactions)
	}
}

func TestBatchedDeterministicGivenSeed(t *testing.T) {
	run := func() Result {
		c, err := conf.Uniform(1<<15, 8, 0)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(c, rng.New(77), WithKernel(KernelBatched(0)))
		if err != nil {
			t.Fatal(err)
		}
		return s.Run(NoBudget)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different results: %+v vs %+v", a, b)
	}
}

func TestBatchedRunUntil(t *testing.T) {
	c, err := conf.Uniform(1<<15, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(c, rng.New(5), WithKernel(KernelBatched(0)))
	if err != nil {
		t.Fatal(err)
	}
	n := s.N()
	res := s.RunUntil(NoBudget, func(sim *Simulator) bool {
		_, xmax := sim.Max()
		return 3*xmax >= 2*n
	})
	if res.Outcome != OutcomeBudget {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if _, xmax := s.Max(); 3*xmax < 2*n {
		t.Fatalf("stop condition not satisfied: xmax=%d n=%d", xmax, n)
	}
}

func TestBatchedAndExactAgreeStatistically(t *testing.T) {
	// The batched kernel is approximate within its drift tolerance; the
	// mean consensus time over independent trials must match the exact
	// kernel's within a few standard errors. The full distributional
	// comparison (winner frequencies, phase-time quantiles, KS) is the
	// K1-kernel-agreement experiment.
	if testing.Short() {
		t.Skip("statistical comparison skipped in -short mode")
	}
	const trials = 40
	n := int64(1 << 14)
	sample := func(kern Kernel, seedBase uint64) (mean, sd float64) {
		var xs []float64
		for i := 0; i < trials; i++ {
			c, err := conf.Uniform(n, 8, 0)
			if err != nil {
				t.Fatal(err)
			}
			s, err := New(c, rng.New(rng.Derive(seedBase, uint64(i))), WithKernel(kern))
			if err != nil {
				t.Fatal(err)
			}
			res := s.Run(NoBudget)
			if res.Outcome != OutcomeConsensus {
				t.Fatalf("outcome %v", res.Outcome)
			}
			xs = append(xs, res.Interactions.Float64())
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean = sum / trials
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		sd = math.Sqrt(ss / (trials - 1))
		return mean, sd
	}
	m1, s1 := sample(KernelExact, 301)
	m2, s2 := sample(KernelBatched(0), 402)
	se := math.Sqrt(s1*s1/trials + s2*s2/trials)
	if math.Abs(m1-m2) > 4*se {
		t.Fatalf("kernel means differ: exact=%.0f batched=%.0f (se %.0f)", m1, m2, se)
	}
}

// forceClock pins the interaction clock near a boundary; the regression
// tests below stand in for a forced-saturation randomness source by placing
// the clock where any realistic jump or span crosses the boundary.
func forceClock(s *Simulator, steps u128.U128) { s.steps = steps }

func TestBatchedBudgetComparisonDoesNotWrap(t *testing.T) {
	// Regression: with the clock a few ticks under a huge budget, the old
	// int64 check `steps+span > budget` wrapped negative whenever the
	// sampled span was large, skipped the budget clamp, and drove the
	// clock negative. The saturating u128 comparison must clamp to the
	// budget instead — here with the budget just under the 128-bit
	// ceiling, where any wrap would be immediate. The configuration keeps
	// the productive probability ~6·10⁻³ so every jump and window span is
	// orders of magnitude larger than the remaining budget.
	cfg := mustConfig(t, []int64{995_000, 1000}, 4000)
	for _, kern := range []Kernel{KernelExact, KernelBatched(0)} {
		s := newSim(t, cfg, 11, WithKernel(kern))
		budget := u128.Max.Sub64(7)
		forceClock(s, budget.Sub64(3))
		res := s.Run(budget)
		if res.Outcome == OutcomeBudget && !res.Interactions.Eq(budget) {
			t.Fatalf("kernel %v: budget stop at %v, want exactly %v", kern, res.Interactions, budget)
		}
		if budget.Less(res.Interactions) {
			t.Fatalf("kernel %v: clock %v overran budget %v", kern, res.Interactions, budget)
		}
	}
}

func TestUnbudgetedClockSaturatesAtMax(t *testing.T) {
	// Regression for the no-budget path: without a budget there is no
	// clamp to hide behind, so a clock near the 128-bit ceiling must
	// saturate at u128.Max — never wrap — while the run still finishes by
	// absorption. (The int64 predecessor of this test saturated at
	// MaxInt64; the ceiling moved with the clock width.)
	cfg := mustConfig(t, []int64{900, 100}, 24)
	for _, kern := range []Kernel{KernelExact, KernelBatched(0)} {
		s := newSim(t, cfg, 5, WithKernel(kern))
		forceClock(s, u128.Max.Sub64(2))
		res := s.Run(NoBudget)
		if res.Outcome != OutcomeConsensus {
			t.Fatalf("kernel %v: outcome %v, want consensus", kern, res.Outcome)
		}
		if !res.Interactions.IsMax() {
			t.Fatalf("kernel %v: clock %v, want saturation at u128.Max", kern, res.Interactions)
		}
	}
}

func TestBatchedClockMonotoneAcrossWindows(t *testing.T) {
	cfg := mustConfig(t, []int64{30000, 20000, 10000}, 5000)
	s := newSim(t, cfg, 17, WithKernel(KernelBatched(0)))
	var last u128.U128
	s.RunWatched(NoBudget, Observer(func(_ *Simulator, ev Event) {
		if ev.Interactions.Less(last) {
			t.Fatalf("clock moved backwards: %v after %v", ev.Interactions, last)
		}
		last = ev.Interactions
	}))
}

func TestResetShrinksBatchScratch(t *testing.T) {
	// Regression: Reset to fewer opinions while the batch scratch capacity
	// still sufficed left the weight slices at the old length, so
	// Multinomial spread window events over stale phantom opinions and
	// agents silently vanished. Population conservation must hold after
	// every window, and the run must match a fresh simulator exactly.
	large := mustConfig(t, []int64{10000, 10000, 10000, 10000, 10000, 10000, 10000, 10000, 10000, 10000}, 0)
	small := mustConfig(t, []int64{25000, 25000, 25000, 25000}, 0)
	s := newSim(t, large, 3, WithKernel(KernelBatched(0)))
	s.Run(NoBudget) // allocate and dirty the k=10 scratch
	if err := s.Reset(small, rng.New(4)); err != nil {
		t.Fatal(err)
	}
	n := small.N()
	conserve := Observer(func(s *Simulator, _ Event) {
		var total int64 = s.Undecided()
		for i := 0; i < s.K(); i++ {
			total += s.Support(i)
		}
		if total != n {
			t.Fatalf("population not conserved: %d agents, want %d", total, n)
		}
	})
	got := s.RunWatched(NoBudget, conserve)
	fresh := newSim(t, small, 4, WithKernel(KernelBatched(0)))
	if want := fresh.Run(NoBudget); got != want {
		t.Fatalf("reset-shrunk run %+v != fresh %+v", got, want)
	}
}
