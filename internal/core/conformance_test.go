package core_test

// The cross-variant conformance suite: every dynamics variant registered in
// core.VariantNames must satisfy the same behavioral contract — population
// conservation on every event, a monotone interaction clock, byte-identical
// replay from equal seeds, kill/resume bit-exactness through the
// distributed coordinator, and (for variants with a derived window law)
// distributional agreement between the windowed kernels and the exact one.
// A new variant ships by adding one row to conformanceCases; the registry
// check fails the build of any variant registered without a row here.

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiment"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/u128"
)

// conformanceCase is one variant's row in the suite: the variant and a
// symmetric configuration under which the winner distribution is uniform
// by exchangeability (the basis of the kernel-agreement GOF below).
type conformanceCase struct {
	name    string
	variant core.Variant
	// n, k, u0 build the symmetric conf.Uniform configuration.
	n, u0 int64
	k     int
}

func conformanceCases() []conformanceCase {
	return []conformanceCase{
		{name: "classic", variant: core.Variant{}, n: 400, k: 4},
		// Equal stubborn counts on every opinion keep the configuration
		// exchangeable; the dominance threshold 400 − (2·20 + 3√(400·ln400))
		// ≈ 213 stays above n/2, so runs end in OutcomeDominance.
		{name: "stubborn", variant: core.Variant{Name: "stubborn", Stubborn: []int64{5, 5, 5, 5}}, n: 400, k: 4},
		{name: "unconstrained", variant: core.Variant{Name: "unconstrained"}, n: 400, k: 4, u0: 100},
	}
}

// config builds the case's configuration with the variant's parameters
// applied.
func (c conformanceCase) config(t *testing.T) *conf.Config {
	t.Helper()
	cfg, err := conf.Uniform(c.n, c.k, c.u0)
	if err != nil {
		t.Fatal(err)
	}
	c.variant.Configure(cfg)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

// dynamics resolves the case's Dynamics after validation.
func (c conformanceCase) dynamics(t *testing.T) core.Dynamics {
	t.Helper()
	if err := c.variant.Validate(); err != nil {
		t.Fatal(err)
	}
	dyn, err := c.variant.Dynamics()
	if err != nil {
		t.Fatal(err)
	}
	return dyn
}

// budget is a safety net far above the expected decision time; exhausting
// it fails the termination checks.
func (c conformanceCase) budget() u128.U128 {
	return u128.Mul64(uint64(c.n), uint64(c.n))
}

// decided reports whether an outcome is a variant-level decision rather
// than budget exhaustion.
func decided(o core.Outcome) bool {
	return o == core.OutcomeConsensus || o == core.OutcomeDominance
}

// TestConformanceRegistryExhaustive pins the suite's coverage to the
// variant registry: a variant registered in core.VariantNames without a
// conformance row (or vice versa) fails here, so new variants cannot ship
// untested.
func TestConformanceRegistryExhaustive(t *testing.T) {
	var covered []string
	for _, c := range conformanceCases() {
		name, _, _ := strings.Cut(c.variant.Spec(), ":")
		covered = append(covered, name)
	}
	registered := append([]string(nil), core.VariantNames()...)
	sort.Strings(covered)
	sort.Strings(registered)
	if !reflect.DeepEqual(covered, registered) {
		t.Fatalf("conformance rows cover %v, registry has %v — add a conformanceCases row for every registered variant", covered, registered)
	}
}

// TestConformanceInvariants runs every variant under the exact kernel with
// a per-event observer: the population must be conserved after every event,
// the interaction clock must be monotone, and the run must end in a
// variant-level decision within the safety budget.
func TestConformanceInvariants(t *testing.T) {
	for _, c := range conformanceCases() {
		t.Run(c.name, func(t *testing.T) {
			cfg := c.config(t)
			s, err := core.New(cfg, rng.New(11), core.WithDynamics(c.dynamics(t)))
			if err != nil {
				t.Fatal(err)
			}
			var prev u128.U128
			events := 0
			res := s.RunObserved(c.budget(), func(sim *core.Simulator, ev core.Event) {
				events++
				var total int64
				for i := 0; i < sim.K(); i++ {
					x := sim.Support(i)
					if x < 0 {
						t.Fatalf("event %d: negative support %d for opinion %d", events, x, i)
					}
					total += x
				}
				if total+sim.Undecided() != c.n {
					t.Fatalf("event %d: population %d + %d undecided, want %d", events, total, sim.Undecided(), c.n)
				}
				if ev.Interactions.Less(prev) {
					t.Fatalf("event %d: clock %v went backward from %v", events, ev.Interactions, prev)
				}
				prev = ev.Interactions
			})
			if events == 0 {
				t.Fatal("observer saw no events")
			}
			if !decided(res.Outcome) {
				t.Fatalf("outcome %v after %v interactions, want a decision within the %v budget", res.Outcome, res.Interactions, c.budget())
			}
			if res.Winner < 0 || res.Winner >= c.k {
				t.Fatalf("winner %d out of range [0, %d)", res.Winner, c.k)
			}
		})
	}
}

// TestConformanceReplayByteIdentical pins determinism: two runs of the same
// variant from the same seed must agree on every Result field, and two runs
// from different seeds must consume randomness (a degenerate variant that
// ignores its source would pass the first check trivially).
func TestConformanceReplayByteIdentical(t *testing.T) {
	for _, c := range conformanceCases() {
		t.Run(c.name, func(t *testing.T) {
			run := func(seed uint64) core.Result {
				cfg := c.config(t)
				s, err := core.New(cfg, rng.New(seed), core.WithDynamics(c.dynamics(t)))
				if err != nil {
					t.Fatal(err)
				}
				return s.Run(c.budget())
			}
			a, b := run(7), run(7)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("equal seeds diverged:\n%+v\n%+v", a, b)
			}
			if other := run(8); reflect.DeepEqual(a, other) {
				t.Logf("seeds 7 and 8 coincided (%+v); suspicious but possible", a)
			}
		})
	}
}

// TestConformanceKernelAgreement checks the window-law contract per
// variant: under an exchangeable configuration the winner is uniform over
// the k opinions, so the winner counts of every kernel must pass a
// chi-square GOF against the uniform law. Exact-only variants (no derived
// window law) are skipped with a log line — ValidateKernel already rejects
// them at every entry point.
func TestConformanceKernelAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("GOF trials are slow")
	}
	const (
		trials = 200
		alpha  = 0.001
	)
	for _, c := range conformanceCases() {
		t.Run(c.name, func(t *testing.T) {
			for _, kern := range []core.Kernel{core.KernelExact, core.KernelBatched(0), core.KernelAuto(0)} {
				if err := c.variant.ValidateKernel(kern); err != nil {
					t.Logf("kernel %s skipped: variant is exact-only (%v)", kern.Name(), err)
					continue
				}
				dyn := c.dynamics(t)
				counts := make([]int64, c.k)
				for i := 0; i < trials; i++ {
					cfg := c.config(t)
					s, err := core.New(cfg, rng.New(rng.Derive(31, uint64(i))), core.WithKernel(kern), core.WithDynamics(dyn))
					if err != nil {
						t.Fatal(err)
					}
					res := s.Run(c.budget())
					if !decided(res.Outcome) {
						t.Fatalf("kernel %s trial %d: outcome %v, want a decision", kern.Name(), i, res.Outcome)
					}
					counts[res.Winner]++
				}
				probs := make([]float64, c.k)
				for i := range probs {
					probs[i] = 1 / float64(c.k)
				}
				stat, dof, err := stats.ChiSquare(counts, probs)
				if err != nil {
					t.Fatal(err)
				}
				if crit := stats.ChiSquareCritical(dof, alpha); stat > crit {
					t.Errorf("kernel %s winner GOF vs uniform: chi2 %.2f > critical %.2f (alpha %g, counts %v)",
						kern.Name(), stat, crit, alpha, counts)
				}
			}
		})
	}
}

// TestConformanceKillResume drives every variant through the distributed
// coordinator's kill/resume loop: a full sharded run, then the same run
// halted after its first wave (MaxWaves=1 with a checkpoint — a
// deterministic stand-in for a mid-run kill) and resumed, must fold the
// exact same per-trial payload bytes in the same order.
func TestConformanceKillResume(t *testing.T) {
	const (
		shards = 2
		trialN = 12
		wave   = 4
		seed   = 19
	)
	for _, c := range conformanceCases() {
		t.Run(c.name, func(t *testing.T) {
			cfg := c.config(t)
			kern := core.KernelExact
			if c.variant.ValidateKernel(core.KernelBatched(0)) == nil {
				// Batchable variants resume under the windowed kernel too;
				// using it here widens the covered surface.
				kern = core.KernelBatched(0)
			}
			spec, err := experiment.NewShardSpec(cfg, c.variant, kern, c.budget(), 0, false).Encode()
			if err != nil {
				t.Fatal(err)
			}
			opts := func() dist.Options {
				return dist.Options{
					Shards: shards, MaxTrials: trialN, Wave: wave, Seed: seed,
					Spec:     spec,
					Launcher: &dist.PipeLauncher{Build: experiment.ShardBuilder(2)},
				}
			}

			run := func(o dist.Options, st *foldState) dist.Result {
				t.Helper()
				res, err := dist.Run(o, st.sink, nil, dist.JSONState{V: st})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}

			var full foldState
			run(opts(), &full)
			if len(full.Folded) != trialN {
				t.Fatalf("full run folded %d trials, want %d", len(full.Folded), trialN)
			}
			for i, f := range full.Folded {
				var r experiment.ShardResult
				if err := json.Unmarshal([]byte(f[strings.Index(f, ":")+1:]), &r); err != nil {
					t.Fatalf("trial %d payload: %v", i, err)
				}
				if !decided(outcomeOf(t, r)) {
					t.Fatalf("trial %d outcome %q, want a decision", i, r.Outcome)
				}
			}

			ckpt := filepath.Join(t.TempDir(), "conf.ckpt")
			halted := opts()
			halted.CheckpointPath = ckpt
			halted.MaxWaves = 1
			var staged foldState
			res := run(halted, &staged)
			if !res.Interrupted || res.Trials != wave {
				t.Fatalf("halted run: %+v, want interrupted after one %d-trial wave", res, wave)
			}

			resumed := opts()
			resumed.CheckpointPath = ckpt
			res = run(resumed, &staged)
			if res.ResumedFrom != wave {
				t.Fatalf("resumed from %d, want %d", res.ResumedFrom, wave)
			}
			if !reflect.DeepEqual(staged.Folded, full.Folded) {
				t.Fatalf("kill/resume fold diverged from the uninterrupted run:\n%v\nwant\n%v", staged.Folded, full.Folded)
			}
		})
	}
}

// foldState accumulates per-trial payloads in fold order and round-trips
// through the checkpoint as the coordinator's State.
type foldState struct {
	// Folded holds "index:payload" strings in fold order.
	Folded []string `json:"folded"`
}

func (f *foldState) sink(i int, data []byte) error {
	f.Folded = append(f.Folded, fmt.Sprintf("%d:%s", i, data))
	return nil
}

// outcomeOf maps a wire outcome string back to the core.Outcome.
func outcomeOf(t *testing.T, r experiment.ShardResult) core.Outcome {
	t.Helper()
	for _, o := range []core.Outcome{core.OutcomeConsensus, core.OutcomeAllUndecided, core.OutcomeBudget, core.OutcomeFrozen, core.OutcomeDominance} {
		if r.Outcome == o.String() {
			return o
		}
	}
	t.Fatalf("unknown outcome %q", r.Outcome)
	return 0
}
