package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/conf"
	"repro/internal/fenwick"
	"repro/internal/u128"
)

// This file is the pluggable dynamics engine: the Dynamics interface a
// protocol variant implements, the serializable Variant selector the CLIs
// and the distributed job specs carry, and the three registered variants —
// classic k-USD (the default), stubborn-agent USD (arXiv:2406.07335), and
// unconstrained USD (arXiv:2103.10366).
//
// A variant provides two layers:
//
//   - The per-interaction transition law: the count W of ordered agent
//     pairs whose interaction changes the configuration (weight), how a
//     uniform threshold in [0, W) maps to one applied event (apply), and
//     when a run is over (terminal for variant-specific convergence,
//     absorbed for the W = 0 classification). The exact kernel and the
//     geometric-skipping clock are shared; only these hooks differ.
//
//   - The per-window law for the batched/auto kernels: the per-opinion
//     undecide weights the frozen multinomial window uses, the support
//     floor a sampled window must respect, and the drift divisor bounding
//     |ΔW| per event (the tau-leaping leap condition's W term). Variants
//     without an honest window-law derivation return Batchable() == false
//     and are restricted to the exact kernel by Variant.ValidateKernel and
//     Simulator.Reset.

// Dynamics is a protocol variant of the population-protocol opinion
// dynamics: the per-interaction transition law plus (optionally) the frozen
// window law the batched kernels need. Implementations are provided by this
// package (Classic, StubbornAgents, Unconstrained) and selected with
// WithDynamics or a parsed Variant; the interface is sealed — its
// unexported hooks operate on the simulator's internals.
type Dynamics interface {
	// Name returns the variant's registry name ("classic", "stubborn",
	// "unconstrained").
	Name() string
	// Batchable reports whether the variant carries a derived window law
	// for the batched/auto kernels. Exact-only variants return false and
	// are rejected for batched kernels by Variant.ValidateKernel and
	// Simulator.Reset.
	Batchable() bool

	// init validates the configuration for this variant and (re)builds any
	// variant-private state on the simulator. It runs at the end of every
	// Reset, after options are applied.
	init(s *Simulator, c *conf.Config) error
	// weight returns W, the number of ordered agent pairs whose
	// interaction is productive under this variant's transition law.
	weight(s *Simulator) u128.U128
	// apply samples and applies one productive event given r uniform in
	// [0, weight()); the interaction clock is advanced by the caller.
	apply(s *Simulator, r u128.U128) Event
	// terminal reports whether the run loop should stop with the given
	// outcome and winner even though the configuration may not be
	// absorbing (e.g. the stubborn variant's free-agent consensus, which
	// still has positive productive weight). It is checked before every
	// step and must not mutate the simulator or consume randomness.
	terminal(s *Simulator) (Outcome, int, bool)
	// absorbed classifies a weight-zero configuration that terminal did
	// not claim: the outcome and winner of a run that can never change
	// again.
	absorbed(s *Simulator) (Outcome, int)

	// driftDivisor is the window law's |ΔW| bound per productive event in
	// units of n: a window of tol·W/(driftDivisor·n) events keeps the
	// relative drift of W below ~tol (see wDriftDivisor for the classic
	// derivation). Batchable variants only.
	driftDivisor() float64
	// fillUndecideWeights writes each opinion's undecide-event weight at
	// the frozen (pre-window) supports vals into dst, as the float64
	// values the chained-binomial window sampler splits on. Batchable
	// variants only.
	fillUndecideWeights(s *Simulator, vals []int64, d int64, dst []float64)
	// undecideWeightU returns opinion j's exact integer undecide weight at
	// frozen support x, for the categorical window sampler's cumulative
	// build. Batchable variants only.
	undecideWeightU(s *Simulator, j int, x, d int64) u128.U128
	// supportFloor returns the smallest admissible support of opinion j; a
	// sampled window whose net deltas would cross it is resampled at half
	// the size. Batchable variants only.
	supportFloor(s *Simulator, j int) int64
}

// Registered dynamics. Each value is stateless and safe to share between
// simulators; per-simulator variant state lives on the Simulator and is
// rebuilt by init at every Reset.
var (
	// Classic is the paper's k-opinion Undecided State Dynamics, the
	// default: undecided responders adopt a decided initiator's opinion,
	// decided responders meeting a differently-decided initiator become
	// undecided.
	Classic Dynamics = classicDynamics{}
	// StubbornAgents is the stubborn-agent USD variant (arXiv:2406.07335):
	// conf.Config.Stubborn[i] of opinion i's supporters never leave it —
	// they are sampled as initiators but never undecide as responders. The
	// variant shares the classic adopt law and restricts the undecide law
	// to free (non-stubborn) agents.
	//
	// With stubborn agents on two or more opinions the chain has no
	// absorbing consensus state: stubborn dissenters perpetually re-seed
	// their opinion, and the process settles into a metastable equilibrium
	// holding ~b undecided agents and ~b dissenting supporters (b = Σbᵢ),
	// so both exact consensus and "no undecided agents" are exponentially
	// rare events a run must not wait for. The variant's convergence event
	// is therefore dominance, the quantity the paper's analysis bounds: a
	// run ends with OutcomeDominance when one opinion holds at least
	// n − (2b + 3√(n·ln n)) agents — all but the metastable dissent mass
	// plus a fluctuation margin — clamped to no less than the strict
	// majority n/2 + 1, so at most one opinion can ever qualify. In the
	// heavy-stubborn regime (2b + 3√(n·ln n) on the order of n/2 or more)
	// even a strict majority may be unreachable from some configurations;
	// give such runs a budget or a RunUntil stop condition rather than
	// waiting on an absorbing configuration (OutcomeConsensus with all
	// stubborn agents on the winner, OutcomeFrozen, OutcomeAllUndecided —
	// all exponentially rare).
	StubbornAgents Dynamics = stubbornDynamics{}
	// Unconstrained is the unconstrained USD variant (arXiv:2103.10366):
	// undecided agents keep communicating their most recent opinion, so an
	// undecided responder can adopt from a decided or an undecided
	// initiator, and an agent undecided from opinion i keeps i as its
	// latent opinion. Initially-undecided agents are blank — they
	// communicate nothing until their first adoption. The variant is
	// exact-only (no derived window law) and capped at
	// UnconstrainedMaxN agents.
	Unconstrained Dynamics = unconstrainedDynamics{}
)

// VariantNames returns the registered dynamics names in parse order. The
// conformance suite iterates it so a newly registered variant cannot ship
// without conformance coverage.
func VariantNames() []string { return []string{"classic", "stubborn", "unconstrained"} }

// Variant selects a registered dynamics by name and carries its
// serializable parameters; it is the form CLI flags, sweep specs, and
// distributed job specs thread end-to-end. The zero value selects the
// classic dynamics.
type Variant struct {
	// Name is the dynamics name; empty means "classic".
	Name string `json:"name,omitempty"`
	// Stubborn holds the per-opinion stubborn counts of a
	// "stubborn:b0,b1,..." spec; Configure installs them on a
	// configuration. Nil for every other variant (and for a bare
	// "stubborn" spec, whose counts must already live on the
	// configuration).
	Stubborn []int64 `json:"stubborn,omitempty"`
}

// canonicalName resolves the empty name to "classic".
func (v Variant) canonicalName() string {
	if v.Name == "" {
		return "classic"
	}
	return v.Name
}

// Classic reports whether the variant is the classic dynamics.
func (v Variant) Classic() bool { return v.canonicalName() == "classic" }

// Dynamics resolves the variant to its registered Dynamics implementation.
func (v Variant) Dynamics() (Dynamics, error) {
	switch v.canonicalName() {
	case "classic":
		return Classic, nil
	case "stubborn":
		return StubbornAgents, nil
	case "unconstrained":
		return Unconstrained, nil
	default:
		return nil, fmt.Errorf("core: unknown dynamics variant %q (want %s)",
			v.Name, strings.Join(VariantNames(), ", "))
	}
}

// Validate reports whether the variant is well-formed: a registered name
// and parameters only where the variant accepts them.
func (v Variant) Validate() error {
	d, err := v.Dynamics()
	if err != nil {
		return err
	}
	if len(v.Stubborn) > 0 && d.Name() != "stubborn" {
		return fmt.Errorf("core: variant %q takes no stubborn counts (only stubborn:b0,b1,... does)", d.Name())
	}
	for i, b := range v.Stubborn {
		if b < 0 {
			return fmt.Errorf("core: stubborn count %d of opinion %d is negative", b, i)
		}
	}
	return nil
}

// ValidateKernel reports whether kern can run this variant: exact-only
// variants reject the batched and auto kernels with an error enumerating
// the admissible kernels. CLIs and the shard-spec decoder call it at parse
// time so a bad (variant, kernel) pair fails before any trial runs.
func (v Variant) ValidateKernel(kern Kernel) error {
	d, err := v.Dynamics()
	if err != nil {
		return err
	}
	if kern.Batched() && !d.Batchable() {
		return fmt.Errorf("core: dynamics %q is exact-only (no derived window law): kernel %q unavailable, want exact",
			d.Name(), kern.Name())
	}
	return nil
}

// Spec renders the variant in the spec grammar ParseVariantSpec accepts,
// e.g. "classic", "stubborn:100,0,0", "unconstrained".
func (v Variant) Spec() string {
	if len(v.Stubborn) == 0 {
		return v.canonicalName()
	}
	var b strings.Builder
	b.WriteString(v.canonicalName())
	for i, c := range v.Stubborn {
		if i == 0 {
			b.WriteByte(':')
		} else {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(c, 10))
	}
	return b.String()
}

// String returns the variant's spec form.
func (v Variant) String() string { return v.Spec() }

// Configure installs the variant's parameters on a configuration: a
// "stubborn:b0,b1,..." variant sets c.Stubborn to a copy of its counts
// (whose per-opinion bounds c.Validate then checks); every other variant
// leaves the configuration untouched.
func (v Variant) Configure(c *conf.Config) {
	if len(v.Stubborn) > 0 {
		c.Stubborn = append([]int64(nil), v.Stubborn...)
	}
}

// ParseVariantSpec parses a dynamics variant spec: a registered variant
// name ("classic", "stubborn", "unconstrained"; empty means classic),
// where the stubborn variant may carry per-opinion counts as
// "stubborn:b0,b1,...". Unknown names and malformed or negative counts are
// rejected with errors enumerating the valid names. CLI -variant flags and
// the shard-spec decoder share this parser.
func ParseVariantSpec(spec string) (Variant, error) {
	name, args, hasArgs := strings.Cut(spec, ":")
	v := Variant{Name: name}
	if _, err := v.Dynamics(); err != nil {
		return Variant{}, err
	}
	if hasArgs {
		if v.canonicalName() != "stubborn" {
			return Variant{}, fmt.Errorf("core: variant %q takes no parameters (only stubborn:b0,b1,... does)", v.canonicalName())
		}
		for _, f := range strings.Split(args, ",") {
			b, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				return Variant{}, fmt.Errorf("core: bad stubborn count %q in variant spec %q", f, spec)
			}
			if b < 0 {
				return Variant{}, fmt.Errorf("core: negative stubborn count %d in variant spec %q", b, spec)
			}
			v.Stubborn = append(v.Stubborn, b)
		}
	}
	return v, nil
}

// WithDynamics selects the protocol variant the simulator runs (default
// Classic). Reset rebuilds the variant's state from the configuration, so
// the option composes with arena-style Reset reuse; Reset rejects the
// combination of a batched kernel with an exact-only variant.
func WithDynamics(d Dynamics) Option {
	return func(s *Simulator) { s.dyn = d }
}

// Dynamics returns the simulator's protocol variant.
func (s *Simulator) Dynamics() Dynamics {
	if s.dyn == nil {
		return Classic
	}
	return s.dyn
}

// classicDynamics is the paper's k-USD transition law; its hooks are the
// pre-refactor simulator code paths verbatim, so classic runs are
// byte-identical to the hard-wired engine at every kernel (pinned by the
// golden-output assertions in K1 and the conformance suite).
type classicDynamics struct{}

// Name implements Dynamics.
func (classicDynamics) Name() string { return "classic" }

// Batchable implements Dynamics: classic k-USD has the full window-law
// derivation of the batched and auto kernels.
func (classicDynamics) Batchable() bool { return true }

func (classicDynamics) init(s *Simulator, c *conf.Config) error {
	if c.Stubborn != nil {
		return fmt.Errorf("core: configuration carries stubborn counts but the dynamics is classic (want the stubborn variant)")
	}
	s.tree.SetStubborn(nil)
	s.dynState = nil
	return nil
}

// weight returns W = u·D + (D²−r₂), the number of ordered agent pairs whose
// interaction is productive, where D = n−u. Both products are exact 64×64
// multiplies and the subtraction is exact (r₂ = Σxᵢ² <= D²), so W is the
// exact pair count even at n = MaxN where it reaches ~2⁷⁴.
func (classicDynamics) weight(s *Simulator) u128.U128 {
	d := uint64(s.n - s.u)
	return u128.Mul64(uint64(s.u), d).Add(u128.Mul64(d, d).Sub(s.r2))
}

func (classicDynamics) apply(s *Simulator, r u128.U128) Event {
	d := s.n - s.u
	wDown := u128.Mul64(uint64(s.u), uint64(d))
	if r.Less(wDown) {
		// Undecided responder adopts opinion j ∝ xⱼ. r is uniform over
		// [0, u·D); r/u is uniform over [0, D), an exact threshold for
		// the support descent. The quotient is below D <= n, so its low
		// word carries the whole value.
		j := s.tree.FindSupport(int64(r.Div64(uint64(s.u)).Lo))
		s.adopt(j)
		return Event{Kind: EventAdopt, Opinion: j, Count: 1}
	}
	// Decided responder i ∝ xᵢ(D−xᵢ) becomes undecided.
	i := s.tree.FindWeighted(d, r.Sub(wDown))
	s.undecide(i)
	return Event{Kind: EventUndecide, Opinion: i, Count: 1}
}

func (classicDynamics) terminal(s *Simulator) (Outcome, int, bool) {
	if s.IsConsensus() {
		winner, _ := s.Max()
		return OutcomeConsensus, winner, true
	}
	return 0, -1, false
}

func (classicDynamics) absorbed(s *Simulator) (Outcome, int) {
	// Classic W = 0 without consensus forces u = n: u·D = 0 with u < n
	// would need D = 0 anyway, and D² = r₂ with D > 0 is consensus.
	return OutcomeAllUndecided, -1
}

func (classicDynamics) driftDivisor() float64 { return wDriftDivisor }

func (classicDynamics) fillUndecideWeights(s *Simulator, vals []int64, d int64, dst []float64) {
	for j, x := range vals {
		dst[j] = float64(x) * float64(d-x)
	}
}

func (classicDynamics) undecideWeightU(s *Simulator, j int, x, d int64) u128.U128 {
	return u128.Mul64(uint64(x), uint64(d-x))
}

func (classicDynamics) supportFloor(s *Simulator, j int) int64 { return 0 }

// stubbornDynamics is the stubborn-agent USD variant. The transition law
// keeps the classic adopt channel (u·xⱼ pairs) and restricts the undecide
// channel to free agents: (xᵢ−bᵢ)·(D−xᵢ) ordered pairs, maintained exactly
// by the Fenwick dual's stubborn extension. The invariant xᵢ >= bᵢ holds by
// construction — stubborn agents are never selected to undecide, and
// adoption only grows supports.
type stubbornDynamics struct{}

// Name implements Dynamics.
func (stubbornDynamics) Name() string { return "stubborn" }

// Batchable implements Dynamics: the stubborn window law is derived below
// (see driftDivisor) and shares the classic adopt split.
func (stubbornDynamics) Batchable() bool { return true }

// stubState is the stubborn variant's per-simulator state: the dominance
// threshold, fixed at Reset.
type stubState struct {
	// threshold is the dominance support level n − (2b + 3√(n·ln n)),
	// clamped to at least the strict majority n/2 + 1 (see StubbornAgents).
	threshold int64
	// thresholdSq is threshold², the r₂ lower bound that gates the O(k)
	// dominance scan: r₂ >= max·Σx implies nothing, but max² <= r₂, so
	// r₂ < threshold² proves no opinion has reached the threshold.
	thresholdSq u128.U128
}

func (stubbornDynamics) init(s *Simulator, c *conf.Config) error {
	if c.Stubborn == nil {
		return fmt.Errorf("core: stubborn dynamics requires per-opinion stubborn counts (conf.Config.Stubborn or a stubborn:b0,b1,... variant spec)")
	}
	// c.Validate (run by Reset) already checked len(Stubborn) == k and
	// 0 <= bᵢ <= Supportᵢ, which is exactly the xᵢ >= bᵢ weight contract
	// of the stubborn descent.
	s.tree.SetStubborn(c.Stubborn)
	st, ok := s.dynState.(*stubState)
	if !ok {
		st = &stubState{}
		s.dynState = st
	}
	slack := 2*s.tree.StubbornSum() + int64(3*math.Sqrt(float64(s.n)*math.Log(float64(s.n))))
	st.threshold = s.n - slack
	// Never require less than a strict majority: for moderate stubborn
	// mass the margin formula can dip below n/2, where two opinions could
	// qualify at once. Heavy-stubborn configurations (slack >= ~n/2) may
	// leave even this majority unreachable — such runs need a budget.
	if st.threshold <= s.n/2 {
		st.threshold = s.n/2 + 1
	}
	st.thresholdSq = u128.Mul64(uint64(st.threshold), uint64(st.threshold))
	return nil
}

// weight returns W = u·D + Σ(xᵢ−bᵢ)(D−xᵢ): the adopt pairs plus the
// undecide pairs restricted to free responders.
func (stubbornDynamics) weight(s *Simulator) u128.U128 {
	d := s.n - s.u
	return u128.Mul64(uint64(s.u), uint64(d)).Add(s.tree.TotalWeightedStubborn(d))
}

func (stubbornDynamics) apply(s *Simulator, r u128.U128) Event {
	d := s.n - s.u
	wDown := u128.Mul64(uint64(s.u), uint64(d))
	if r.Less(wDown) {
		// The adopt channel is the classic one: stubborn agents are
		// ordinary initiators.
		j := s.tree.FindSupport(int64(r.Div64(uint64(s.u)).Lo))
		s.adopt(j)
		return Event{Kind: EventAdopt, Opinion: j, Count: 1}
	}
	// Free decided responder i ∝ (xᵢ−bᵢ)(D−xᵢ) becomes undecided. The
	// descent never selects an opinion at its floor (zero weight), so the
	// xᵢ >= bᵢ invariant is preserved.
	i := s.tree.FindWeightedStubborn(d, r.Sub(wDown))
	s.undecide(i)
	return Event{Kind: EventUndecide, Opinion: i, Count: 1}
}

// terminal stops at the dominance event: some opinion's support has reached
// the threshold n − (2b + 3√(n·ln n)) fixed at Reset (see StubbornAgents
// for the derivation; the metastable equilibrium leaves ~2b agents off the
// winner, so the threshold sits a fluctuation margin outside it and is hit
// on the approach). The check is O(1) on the bulk of the trajectory: max²
// <= r₂, so r₂ < threshold² proves no opinion qualifies, and the O(k) max
// scan runs only once the winner is already past the threshold-squared
// gate. Full consensus — reachable only with every stubborn agent on the
// winner — reports OutcomeConsensus.
func (stubbornDynamics) terminal(s *Simulator) (Outcome, int, bool) {
	st := s.dynState.(*stubState)
	if s.r2.Less(st.thresholdSq) {
		return 0, -1, false
	}
	winner, x := s.Max()
	if x < st.threshold {
		return 0, -1, false
	}
	if s.IsConsensus() {
		return OutcomeConsensus, winner, true
	}
	return OutcomeDominance, winner, true
}

func (stubbornDynamics) absorbed(s *Simulator) (Outcome, int) {
	if s.u == s.n {
		return OutcomeAllUndecided, -1
	}
	if s.IsConsensus() {
		// Reachable only when every stubborn agent backs the winner in a
		// heavy-stubborn configuration whose dominance threshold was never
		// crossed first.
		winner, _ := s.Max()
		return OutcomeConsensus, winner
	}
	// W = 0 with u = 0 short of consensus: every opinion sits at its
	// stubborn floor, so nothing can ever change.
	return OutcomeFrozen, -1
}

// driftDivisor is 3 for the stubborn variant: the per-event change of
// W = uD + Σ(xᵢ−bᵢ)(D−xᵢ) telescopes to n − 2xⱼ − 1 − b + bⱼ for an adopt
// of opinion j and 2xᵢ − n − 1 + b − bᵢ for an undecide of opinion i (with
// b = Σbᵢ), so |ΔW| <= 2n+1 per productive event — one n more than the
// classic bound, because the Σbᵢxᵢ cross-term no longer cancels. A window
// of tol·W/(3n) events keeps the relative drift of W below
// tol·(2n+1)/(3n) < tol.
func (stubbornDynamics) driftDivisor() float64 { return 3 }

func (stubbornDynamics) fillUndecideWeights(s *Simulator, vals []int64, d int64, dst []float64) {
	for j, x := range vals {
		dst[j] = float64(x-s.tree.Stubborn(j)) * float64(d-x)
	}
}

func (stubbornDynamics) undecideWeightU(s *Simulator, j int, x, d int64) u128.U128 {
	return u128.Mul64(uint64(x-s.tree.Stubborn(j)), uint64(d-x))
}

// supportFloor pins each opinion at its stubborn count: a window whose net
// deltas would dip below bⱼ is infeasible (the frozen law's undecide weight
// already vanishes at the floor, so such windows are large-deviation events
// the feasibility resample conditions away, exactly like the classic
// kernel's negative-support windows).
func (stubbornDynamics) supportFloor(s *Simulator, j int) int64 { return s.tree.Stubborn(j) }

// UnconstrainedMaxN is the population ceiling of the unconstrained variant:
// ⌊√MaxInt64⌋, so the per-opinion undecide weights xᵢ·(C−zᵢ) <= n² and
// their Fenwick totals stay exact in int64. The classic and stubborn
// variants keep the global conf.MaxN ceiling.
const UnconstrainedMaxN = int64(3037000499)

// ucState is the unconstrained variant's per-simulator state. Alongside the
// decided supports xᵢ (the simulator's dual tree), the variant tracks which
// opinion each undecided agent still communicates: yᵢ undecided agents have
// latent opinion i, u0 are blank (initially undecided, communicating
// nothing), and zᵢ = xᵢ + yᵢ agents communicate opinion i, C = Σzᵢ = n − u0
// in total.
type ucState struct {
	y       *fenwick.Tree // latent-opinion undecided counts yᵢ
	z       *fenwick.Tree // communicated supports zᵢ = xᵢ + yᵢ
	w       *fenwick.Tree // undecide weights wᵢ = xᵢ·(C−zᵢ)
	u0      int64         // blank undecided agents
	c       int64         // communicating agents, n − u0
	scratch []int64       // O(k) rebuild buffer
}

// updateW re-evaluates wᵢ = xᵢ·(C−zᵢ) after a point change to xᵢ or zᵢ.
func (st *ucState) updateW(s *Simulator, i int) {
	nw := s.tree.Get(i) * (st.c - st.z.Get(i))
	st.w.Add(i, nw-st.w.Get(i))
}

// rebuildW recomputes every undecide weight in O(k); needed only when C
// changes, i.e. when a blank agent adopts — at most u0(0) times per run.
func (st *ucState) rebuildW(s *Simulator) {
	for i, x := range s.tree.View() {
		st.scratch[i] = x * (st.c - st.z.Get(i))
	}
	st.w.SetAll(st.scratch)
}

// unconstrainedDynamics is the unconstrained USD variant. Productive pairs:
// an undecided responder adopts the initiator's communicated opinion
// (u·zⱼ pairs for opinion j — decided and latent initiators alike; blank
// initiators communicate nothing), and a decided responder meeting a
// differently-communicated initiator becomes undecided while keeping its
// opinion latent (xᵢ·(C−zᵢ) pairs). W = u·C + Σxᵢ·(C−zᵢ). The only
// absorbing configurations are consensus and all-blank: an all-undecided
// configuration with latent opinions recovers, which is the mechanism
// behind the variant's fast-consensus guarantee.
type unconstrainedDynamics struct{}

// Name implements Dynamics.
func (unconstrainedDynamics) Name() string { return "unconstrained" }

// Batchable implements Dynamics: the variant is exact-only. Its window law
// would need the joint drift of (u, u0, every yᵢ) — the frozen-law window
// samplers and the leap condition in this package cover only the classic
// (x, u) state, so there is no honest derivation to freeze; Reset and
// Variant.ValidateKernel reject batched kernels instead.
func (unconstrainedDynamics) Batchable() bool { return false }

func (unconstrainedDynamics) init(s *Simulator, c *conf.Config) error {
	if c.Stubborn != nil {
		return fmt.Errorf("core: configuration carries stubborn counts but the dynamics is unconstrained (want the stubborn variant)")
	}
	if s.n > UnconstrainedMaxN {
		return fmt.Errorf("core: unconstrained dynamics supports n <= %d (int64-exact undecide weights), got n = %d",
			UnconstrainedMaxN, s.n)
	}
	s.tree.SetStubborn(nil)
	k := s.tree.Len()
	st, ok := s.dynState.(*ucState)
	if !ok || st.y.Len() != k {
		st = &ucState{
			y:       fenwick.New(k),
			z:       fenwick.New(k),
			w:       fenwick.New(k),
			scratch: make([]int64, k),
		}
		s.dynState = st
	}
	st.u0 = c.Undecided
	st.c = s.n - st.u0
	for i := range st.scratch {
		st.scratch[i] = 0
	}
	st.y.SetAll(st.scratch)
	st.z.SetAll(c.Support)
	st.rebuildW(s)
	return nil
}

func (unconstrainedDynamics) weight(s *Simulator) u128.U128 {
	st := s.dynState.(*ucState)
	return u128.Mul64(uint64(s.u), uint64(st.c)).Add(u128.From64(st.w.Total()))
}

func (unconstrainedDynamics) apply(s *Simulator, r u128.U128) Event {
	st := s.dynState.(*ucState)
	wAdopt := u128.Mul64(uint64(s.u), uint64(st.c))
	if r.Less(wAdopt) {
		// r = q·u + rem with (q, rem) uniform on [0, C) × [0, u) and
		// independent: q selects the communicated opinion ∝ zⱼ, rem
		// selects the responder's undecided bucket (blank, then latent
		// opinions in index order) ∝ counts — one threshold drives both
		// exact descents.
		q := r.Div64(uint64(s.u))
		rem := int64(r.Sub(u128.Mul64(q.Lo, uint64(s.u))).Lo)
		j := st.z.Find(int64(q.Lo))
		if rem < st.u0 {
			// A blank responder adopts j and joins the communicating
			// mass: C grows, so every undecide weight changes.
			st.u0--
			st.c++
			s.adopt(j)
			st.z.Add(j, 1)
			st.rebuildW(s)
			return Event{Kind: EventAdopt, Opinion: j, Count: 1}
		}
		i := st.y.Find(rem - st.u0) // the responder's latent opinion
		st.y.Add(i, -1)
		s.adopt(j)
		if i != j {
			// The responder stops communicating i and starts
			// communicating j; zⱼ and zᵢ move, so both weights do.
			st.z.Add(j, 1)
			st.z.Add(i, -1)
			st.updateW(s, i)
		}
		st.updateW(s, j)
		return Event{Kind: EventAdopt, Opinion: j, Count: 1}
	}
	// Decided responder i ∝ xᵢ·(C−zᵢ) becomes undecided with latent
	// opinion i: zᵢ is unchanged (it still communicates i), only the
	// decided/undecided split moves.
	i := st.w.Find(int64(r.Sub(wAdopt).Lo))
	s.undecide(i)
	st.y.Add(i, 1)
	st.updateW(s, i)
	return Event{Kind: EventUndecide, Opinion: i, Count: 1}
}

func (unconstrainedDynamics) terminal(s *Simulator) (Outcome, int, bool) {
	if s.IsConsensus() {
		winner, _ := s.Max()
		return OutcomeConsensus, winner, true
	}
	return 0, -1, false
}

func (unconstrainedDynamics) absorbed(s *Simulator) (Outcome, int) {
	st := s.dynState.(*ucState)
	if st.u0 == s.n {
		// All agents blank: nobody communicates, nothing can change. Only
		// reachable from an all-undecided start.
		return OutcomeAllUndecided, -1
	}
	// Unreachable: W = 0 with a communicating agent and no consensus is
	// impossible (u > 0 gives u·C > 0; u = 0 gives Σxᵢ(C−zᵢ) = 0 only at
	// consensus). Defensive classification.
	return OutcomeFrozen, -1
}

func (unconstrainedDynamics) driftDivisor() float64 {
	panic("core: unconstrained dynamics has no window law")
}

func (unconstrainedDynamics) fillUndecideWeights(*Simulator, []int64, int64, []float64) {
	panic("core: unconstrained dynamics has no window law")
}

func (unconstrainedDynamics) undecideWeightU(*Simulator, int, int64, int64) u128.U128 {
	panic("core: unconstrained dynamics has no window law")
}

func (unconstrainedDynamics) supportFloor(*Simulator, int) int64 {
	panic("core: unconstrained dynamics has no window law")
}
