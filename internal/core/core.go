// Package core implements the paper's primary contribution: a
// configuration-level simulator for the k-opinion Undecided State Dynamics
// (USD) in the population protocol model.
//
// The population protocol draws an ordered pair (responder, initiator)
// uniformly at random from the n² ordered agent pairs (self-interactions are
// allowed, exactly as in the paper) and applies the USD transition function:
// a decided responder meeting a differently-decided initiator becomes
// undecided; an undecided responder adopts a decided initiator's opinion;
// every other pair is unproductive.
//
// Because pairs are drawn with replacement, the responder and initiator
// states are independent categorical draws from the configuration, so the
// process is a Markov chain on the aggregate configuration
// (x₁, …, x_k, u). One interaction is simulated in O(log k) time with
// Fenwick-tree sampling, using the exact transition law of Observation 6:
//
//	Pr[adopt opinion j]   = u·xⱼ/n²
//	Pr[opinion i → ⊥]     = xᵢ·(n−u−xᵢ)/n²   (marginally; pair law xᵢxⱼ/n²)
//	Pr[unproductive]      = 1 − u(n−u)/n² − ((n−u)²−r₂)/n²,  r₂ = Σxᵢ²
//
// Unproductive interactions do not change the state, so the simulator can
// optionally advance the interaction clock by a geometric jump to the next
// productive interaction ("skipping"); the resulting trajectory has exactly
// the same distribution while being dramatically faster near consensus,
// where almost all interactions are unproductive.
//
// # Stepping kernels
//
// Three stepping kernels are available (see WithKernel):
//
//   - KernelExact (the default) samples every productive interaction
//     individually from the law above, in O(log k) per event. It is used
//     whenever single-event resolution matters and by all correctness
//     baselines.
//
//   - KernelBatched(tol) freezes the transition law at the start of an
//     adaptively-sized window of m productive events, samples the whole
//     window's per-opinion adopt/undecide counts at once (a multinomial
//     over the 2k event categories, drawn by conditional binomial
//     chaining), advances the clock by a NegativeBinomial(m, W/n²) span —
//     the law of m consecutive geometric skips — and applies the window
//     with one O(k) bulk Fenwick update. Amortized cost is O(k/m + 1) per
//     productive event, independent of k for large windows.
//
//   - KernelAuto(tol) follows the batched kernel's window law but chooses
//     the cheapest sampling strategy per window from a deterministic cost
//     model over (m, k): exact stepping for tiny windows, per-event
//     categorical draws against the frozen cumulative weights for windows
//     up to a few multiples of k, and binomial chaining beyond. It closes
//     the small-n regime where windows never grow large enough for the
//     chained sampler's O(k) setup to amortize (see docs/ARCHITECTURE.md,
//     "Performance model").
//
// The batched kernel's accuracy contract is the tau-leaping leap condition
// (Cao–Gillespie–Petzold): the window m is capped at tol·u and at
// tol·W/(5n), which bounds the relative drift of the undecided count, of
// the productive weight W, and of every per-opinion rate with support at
// least 1/tol by ~tol across the window (smaller supports are granted the
// one-unit granularity floor). Windows therefore shrink automatically as u,
// W, or the minority supports shrink; below minBatchWindow the kernel
// degenerates to the exact law, so the endgame — where individual events
// decide the winner — and small-support dynamics are simulated exactly.
// Windows whose sampled net deltas would drive a support negative are
// resampled at half the size, down to the exact law. The K1-kernel-
// agreement experiment validates the contract empirically: winner
// frequencies, consensus-time distributions (two-sample KS), and per-phase
// median end times match the exact kernel at the default tolerance.
package core

import (
	"fmt"

	"repro/internal/conf"
	"repro/internal/fenwick"
	"repro/internal/rng"
	"repro/internal/u128"
)

// EventKind classifies what happened in one simulated step.
type EventKind int

// Event kinds. EventNone is only reported by the non-skipping kernel, which
// simulates unproductive interactions individually.
const (
	// EventAdopt: an undecided responder adopted Event.Opinion.
	EventAdopt EventKind = iota + 1
	// EventUndecide: a responder holding Event.Opinion became undecided.
	EventUndecide
	// EventNone: the interaction was unproductive.
	EventNone
	// EventAbsorbed: the configuration is absorbing (consensus or
	// all-undecided); no interaction can ever change it again.
	EventAbsorbed
	// EventBatch: a batched kernel applied Event.Count productive
	// interactions in one bulk update; Event.Opinion is -1.
	EventBatch
)

// String returns a short name for the event kind.
func (k EventKind) String() string {
	switch k {
	case EventAdopt:
		return "adopt"
	case EventUndecide:
		return "undecide"
	case EventNone:
		return "none"
	case EventAbsorbed:
		return "absorbed"
	case EventBatch:
		return "batch"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event describes one simulated step.
type Event struct {
	// Kind classifies the step.
	Kind EventKind
	// Opinion is the opinion involved for EventAdopt and EventUndecide;
	// it is -1 otherwise.
	Opinion int
	// Interactions is the interaction clock after the step, counting
	// every interaction including skipped unproductive ones. It is a
	// 128-bit count: at MaxN = 10¹¹ a run's clock reaches ~n²·ln n ≈ 2⁷⁹,
	// past int64.
	Interactions u128.U128
	// Count is the number of productive interactions the step applied:
	// 1 for EventAdopt and EventUndecide, the window size for EventBatch,
	// and 0 for EventNone and EventAbsorbed.
	Count int64
}

// Outcome is the terminal state of a Run.
type Outcome int

// Possible outcomes of Run.
const (
	// OutcomeConsensus: all n agents support a single opinion.
	OutcomeConsensus Outcome = iota + 1
	// OutcomeAllUndecided: every agent is undecided; this configuration is
	// absorbing and can only be reached from an all-undecided start.
	OutcomeAllUndecided
	// OutcomeBudget: the interaction budget was exhausted first.
	OutcomeBudget
	// OutcomeFrozen: a variant-specific absorbing configuration short of
	// consensus — for the stubborn dynamics, every decided agent is
	// stubborn with no undecided agents left, so no opinion can ever win.
	// Classic runs never produce it.
	OutcomeFrozen
	// OutcomeDominance: a variant-specific metastable convergence event
	// short of full consensus — for the stubborn dynamics, one opinion
	// holds all but O(b + √(n·ln n)) agents (see StubbornAgents), which is
	// as close to consensus as a chain with stubborn dissenters ever gets.
	// Winner is the dominant opinion. Classic runs never produce it.
	OutcomeDominance
)

// String returns a short name for the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeConsensus:
		return "consensus"
	case OutcomeAllUndecided:
		return "all-undecided"
	case OutcomeBudget:
		return "budget-exhausted"
	case OutcomeFrozen:
		return "frozen"
	case OutcomeDominance:
		return "dominance"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Result summarizes a Run.
type Result struct {
	// Outcome is the terminal condition.
	Outcome Outcome
	// Winner is the consensus opinion for OutcomeConsensus and -1 otherwise.
	Winner int
	// Interactions is the value of the interaction clock at termination.
	Interactions u128.U128
	// ParallelTime is Interactions/n, the standard conversion between
	// population-protocol interactions and parallel rounds.
	ParallelTime float64
}

// Observer receives every applied event during an observed run. The
// simulator passed to the callback must not be mutated.
type Observer func(s *Simulator, ev Event)

// Watch makes an Observer usable as a Watcher.
func (o Observer) Watch(s *Simulator, ev Event) { o(s, ev) }

// Watcher is the interface form of Observer: RunWatched invokes Watch after
// every applied event. Passing a long-lived pointer (for example a
// *phase.Tracker) avoids the closure allocation of a func-valued Observer,
// which keeps hot observed runs allocation-free after construction.
type Watcher interface {
	// Watch is called after every applied event; it must not mutate the
	// simulator.
	Watch(s *Simulator, ev Event)
}

// MultiWatcher broadcasts every applied event to each watcher in order.
type MultiWatcher []Watcher

// Watch implements Watcher.
func (m MultiWatcher) Watch(s *Simulator, ev Event) {
	for _, w := range m {
		w.Watch(s, ev)
	}
}

// Watchers combines watchers into one, so a single observed run can feed
// several observers (for example a phase tracker and a trajectory sampler).
// Nil entries are dropped; with zero or one non-nil watcher no wrapper is
// allocated.
func Watchers(ws ...Watcher) Watcher {
	var m MultiWatcher
	for _, w := range ws {
		if w != nil {
			m = append(m, w)
		}
	}
	switch len(m) {
	case 0:
		return nil
	case 1:
		return m[0]
	default:
		return m
	}
}

// Simulator simulates the USD at configuration level. It is not safe for
// concurrent use. Construct with New.
type Simulator struct {
	tree   *fenwick.Dual // per-opinion support with Σx and Σx² prefix sums
	src    *rng.Source
	n      int64
	nSq    u128.U128 // n² ordered pairs; reaches 10²² ≈ 2⁷⁴ at MaxN
	invNSq float64   // 1/float64(n²), hoisted once per Reset (see below)
	u      int64
	r2     u128.U128 // Σ xᵢ², maintained incrementally
	steps  u128.U128 // interaction clock
	skip   bool
	kernel Kernel

	// dyn is the protocol variant (default Classic); dynState holds its
	// per-simulator state, rebuilt by dyn.init at every Reset and reused
	// across trials when the shape matches.
	dyn      Dynamics
	dynState any

	// Scratch buffers of the batched and auto kernels, allocated on first
	// use: batchCounts holds a window's adopt counts (first k slots) and
	// undecide counts (next k), batchCum the categorical sampler's 2k
	// cumulative weights, batchGuide its draw-acceleration table.
	batchVals    []int64
	batchCounts  []int64
	batchWeights []float64
	batchCum     []u128.U128
	batchGuide   []int32
}

// Option configures a Simulator.
type Option func(*Simulator)

// WithSkipping enables or disables geometric skipping of unproductive
// interactions. The default is enabled; both settings sample from exactly
// the same process law, but with skipping the simulator only spends time on
// productive interactions.
func WithSkipping(enabled bool) Option {
	return func(s *Simulator) { s.skip = enabled }
}

// MaxN is the largest population size the simulator accepts, 10¹¹. The
// interaction clock, the pair count n², and every quantity derived from them
// are 128-bit (see package u128 and conf.MaxN for the ceiling derivation),
// so the bound is no longer the old ⌊√MaxInt64⌋ clock-overflow fence; New
// and Reset still reject larger populations with a clear error because the
// float64 probability layer's exactness audit covers supports only up to
// this bound.
const MaxN = conf.MaxN

// New returns a simulator initialized with a copy of the configuration c,
// drawing randomness from src.
func New(c *conf.Config, src *rng.Source, opts ...Option) (*Simulator, error) {
	s := &Simulator{skip: true}
	if err := s.Reset(c, src, opts...); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset re-initializes the simulator in place to a copy of configuration c,
// drawing randomness from src, and rewinds the interaction clock to zero.
// Options given here are applied after the state reset; previously
// configured options (kernel, skipping) are preserved when none are given.
// All allocated state — the Fenwick tree when the opinion count matches,
// and the batched kernel's scratch buffers — is reused, so Monte-Carlo
// trial engines can run millions of trials on one simulator without
// allocating. A Reset simulator is indistinguishable from a freshly
// constructed one. The MaxN population bound is enforced by c.Validate,
// whose running-sum checks are wrap-proof.
func (s *Simulator) Reset(c *conf.Config, src *rng.Source, opts ...Option) error {
	if err := c.Validate(); err != nil {
		return fmt.Errorf("core: invalid configuration: %w", err)
	}
	if src == nil {
		return fmt.Errorf("core: nil randomness source")
	}
	if s.tree != nil && s.tree.Len() == len(c.Support) {
		s.tree.SetAll(c.Support)
	} else {
		s.tree = fenwick.DualFromSlice(c.Support)
	}
	s.src = src
	s.n = c.N()
	s.nSq = u128.Mul64(uint64(s.n), uint64(s.n))
	// One correctly-rounded reciprocal per Reset: nSq.Float64() is the
	// correctly rounded float64 of n² (exact only up to 2⁵³, audited
	// round-to-odd beyond), and the division is one more correctly rounded
	// operation. Every per-step probability p = w/n² is then computed as
	// w.Float64()·invNSq, so the clock-to-float boundary costs two roundings
	// total instead of re-truncating n² at every step.
	s.invNSq = 1 / s.nSq.Float64()
	s.u = c.Undecided
	s.r2 = c.SumSquares()
	s.steps = u128.U128{}
	for _, opt := range opts {
		opt(s)
	}
	if s.dyn == nil {
		s.dyn = Classic
	}
	if s.kernel.batched && !s.dyn.Batchable() {
		return fmt.Errorf("core: dynamics %q is exact-only (no derived window law): kernel %q unavailable, want exact",
			s.dyn.Name(), s.kernel.Name())
	}
	if err := s.dyn.init(s, c); err != nil {
		return err
	}
	return nil
}

// N returns the population size.
func (s *Simulator) N() int64 { return s.n }

// K returns the number of opinions.
func (s *Simulator) K() int { return s.tree.Len() }

// Undecided returns the current number of undecided agents.
func (s *Simulator) Undecided() int64 { return s.u }

// Decided returns the current number of decided agents, n − u.
func (s *Simulator) Decided() int64 { return s.n - s.u }

// Support returns the current support of opinion i.
func (s *Simulator) Support(i int) int64 { return s.tree.Get(i) }

// Supports appends the current support vector to dst and returns it.
func (s *Simulator) Supports(dst []int64) []int64 { return s.tree.Values(dst) }

// SumSquares returns r₂ = Σ xᵢ².
func (s *Simulator) SumSquares() u128.U128 { return s.r2 }

// Interactions returns the current interaction clock.
func (s *Simulator) Interactions() u128.U128 { return s.steps }

// ParallelTime returns Interactions()/n.
func (s *Simulator) ParallelTime() float64 { return s.steps.Float64() / float64(s.n) }

// Max returns the index and support of the currently largest opinion in
// O(k). Ties resolve to the smallest index.
func (s *Simulator) Max() (opinion int, support int64) {
	opinion = 0
	for i := 0; i < s.tree.Len(); i++ {
		if x := s.tree.Get(i); x > support {
			opinion, support = i, x
		}
	}
	return opinion, support
}

// Config returns a snapshot of the current configuration, including the
// per-opinion stubborn counts when the stubborn dynamics is active.
func (s *Simulator) Config() *conf.Config {
	c := &conf.Config{
		Support:   s.tree.Values(nil),
		Undecided: s.u,
	}
	if s.tree.HasStubborn() {
		c.Stubborn = make([]int64, s.tree.Len())
		for i := range c.Stubborn {
			c.Stubborn[i] = s.tree.Stubborn(i)
		}
	}
	return c
}

// IsConsensus reports whether all agents share one opinion.
func (s *Simulator) IsConsensus() bool {
	return s.u == 0 && s.r2 == s.nSq
}

// IsAbsorbed reports whether no interaction can ever change the
// configuration again: either consensus or all agents undecided.
func (s *Simulator) IsAbsorbed() bool {
	return s.productiveWeight().IsZero()
}

// productiveWeight returns W, the number of ordered agent pairs whose
// interaction is productive under the active dynamics' transition law (for
// the classic dynamics, W = u·D + (D²−r₂) with D = n−u; see
// classicDynamics.weight).
func (s *Simulator) productiveWeight() u128.U128 {
	return s.dyn.weight(s)
}

// ProductiveProbability returns the probability that a single interaction
// changes the configuration.
func (s *Simulator) ProductiveProbability() float64 {
	return s.productiveWeight().Float64() * s.invNSq
}

// adopt applies "undecided responder adopts opinion j".
func (s *Simulator) adopt(j int) {
	x := s.tree.Get(j)
	s.tree.Add(j, 1)
	s.r2 = s.r2.Add64(uint64(2*x + 1))
	s.u--
}

// undecide applies "opinion-i responder becomes undecided". The r₂ update
// subtracts 2x−1 >= 1 exactly: the responder's opinion has support x >= 1,
// so r₂ >= x² >= 2x−1.
func (s *Simulator) undecide(i int) {
	x := s.tree.Get(i)
	s.tree.Add(i, -1)
	s.r2 = s.r2.Sub64(uint64(2*x - 1))
	s.u++
}

// applyProductive samples and applies one productive event given r uniform
// in [0, W) with W = productiveWeight(), and returns the event. The event
// is drawn under the active dynamics' transition law; the interaction clock
// is not advanced here.
func (s *Simulator) applyProductive(r u128.U128) Event {
	return s.dyn.apply(s, r)
}

// Step simulates a single interaction (without skipping) and returns the
// event. If the configuration is absorbing, the clock does not advance and
// EventAbsorbed is returned.
func (s *Simulator) Step() Event {
	w := s.productiveWeight()
	if w.IsZero() {
		return Event{Kind: EventAbsorbed, Opinion: -1, Interactions: s.steps}
	}
	s.steps = satAdd(s.steps, u128.U128{Lo: 1})
	r := s.src.Uint128n(s.nSq)
	if !r.Less(w) {
		return Event{Kind: EventNone, Opinion: -1, Interactions: s.steps}
	}
	ev := s.applyProductive(r)
	ev.Interactions = s.steps
	return ev
}

// StepProductive advances the clock to the next productive interaction via
// a geometric jump and applies it, returning the event. If the
// configuration is absorbing, the clock does not advance and EventAbsorbed
// is returned.
func (s *Simulator) StepProductive() Event {
	w := s.productiveWeight()
	if w.IsZero() {
		return Event{Kind: EventAbsorbed, Opinion: -1, Interactions: s.steps}
	}
	p := w.Float64() * s.invNSq
	s.steps = satAdd(s.steps, s.src.GeometricU128(p))
	ev := s.applyProductive(s.src.Uint128n(w))
	ev.Interactions = s.steps
	return ev
}

// Run simulates until consensus, absorption, or the interaction budget is
// exhausted. A zero budget means "until absorbed" (u128.From64 maps
// non-positive int64 budgets there, preserving the old "budget <= 0 is
// unlimited" convention). With skipping enabled, a geometric jump that lands
// past the budget is truncated at the budget and its productive event is
// discarded, exactly as if simulation had stopped mid-jump.
func (s *Simulator) Run(budget u128.U128) Result {
	return s.runLoop(budget, nil, nil)
}

// RunObserved is Run with an observer invoked after every event (including
// EventNone events when skipping is disabled).
func (s *Simulator) RunObserved(budget u128.U128, obs Observer) Result {
	var w Watcher
	if obs != nil {
		w = obs
	}
	return s.runLoop(budget, w, nil)
}

// RunWatched is RunObserved with an interface-valued observer; see Watcher.
func (s *Simulator) RunWatched(budget u128.U128, w Watcher) Result {
	return s.runLoop(budget, w, nil)
}

// RunUntil simulates until stop returns true (checked after every event),
// until absorption, or until the budget is exhausted. The Outcome is
// OutcomeBudget when stop terminated the run without consensus.
func (s *Simulator) RunUntil(budget u128.U128, stop func(*Simulator) bool) Result {
	return s.runLoop(budget, nil, stop)
}

func (s *Simulator) runLoop(budget u128.U128, obs Watcher, stop func(*Simulator) bool) Result {
	// Exact-only dynamics fall through to the exact loop even if a batched
	// kernel slipped past Reset's validation (e.g. via SetKernel): stepping
	// exactly is always a correct refinement of the window law.
	if s.kernel.batched && s.dyn.Batchable() {
		return s.runLoopBatched(budget, obs, stop)
	}
	for {
		if outcome, winner, done := s.dyn.terminal(s); done {
			return s.result(outcome, winner)
		}
		w := s.productiveWeight()
		if w.IsZero() {
			outcome, winner := s.dyn.absorbed(s)
			return s.result(outcome, winner)
		}
		if !budget.IsZero() && budget.Leq(s.steps) {
			return s.result(OutcomeBudget, -1)
		}
		var ev Event
		if s.skip {
			var ok bool
			// A geometric jump that lands past the budget stops the run
			// at the budget without applying the productive event.
			ev, ok = s.stepSkip(w, budget)
			if !ok {
				return s.result(OutcomeBudget, -1)
			}
		} else {
			ev = s.Step()
		}
		if obs != nil {
			obs.Watch(s, ev)
		}
		if stop != nil && ev.Kind != EventNone && stop(s) {
			if outcome, winner, done := s.dyn.terminal(s); done {
				return s.result(outcome, winner)
			}
			return s.result(OutcomeBudget, -1)
		}
	}
}

// NoBudget is the zero interaction budget: run until an absorbing
// configuration with no interaction cap. It reads better at call sites
// than a literal zero u128.U128.
var NoBudget u128.U128

// satAdd returns a+b clamped to u128.Max. Every advance of the interaction
// clock goes through it (or through the saturating budget comparison
// budget−steps < span), so the clock can saturate but never wrap — the same
// defense-in-depth invariant the old int64 clock's satAdd provided, now at a
// ceiling no admissible simulation can reach (a saturated clock would need
// ~2¹²⁸ interactions; the longest run at MaxN takes ~2⁸⁰).
func satAdd(a, b u128.U128) u128.U128 {
	return a.Add(b)
}

func (s *Simulator) result(o Outcome, winner int) Result {
	return Result{
		Outcome:      o,
		Winner:       winner,
		Interactions: s.steps,
		ParallelTime: s.ParallelTime(),
	}
}
