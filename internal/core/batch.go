package core

import (
	"fmt"
	"math"
)

// Kernel selects the stepping implementation of a Simulator. The zero value
// is KernelExact. Construct batched kernels with KernelBatched.
type Kernel struct {
	batched bool
	tol     float64
}

// KernelExact samples every productive interaction individually from the
// exact transition law in O(log k). It is the default.
var KernelExact = Kernel{}

// DefaultTolerance is the drift tolerance KernelBatched uses when the caller
// passes tol <= 0. At 0.05 the batched and exact kernels are statistically
// indistinguishable in the kernel-agreement experiment while batches still
// reach ~tol·n/2 productive events at the undecided equilibrium.
const DefaultTolerance = 0.05

// maxTolerance caps the drift tolerance; larger values would let a single
// window move rates by a constant factor, voiding the accuracy contract.
const maxTolerance = 0.25

// KernelBatched returns the batched stepping kernel with the given drift
// tolerance (tol <= 0 selects DefaultTolerance; values above 0.25 are
// clamped). The kernel freezes the transition law of Observation 6 at the
// start of an adaptively-sized window of m productive interactions, samples
// the per-opinion adopt/undecide counts of the whole window at once via
// multinomial chaining, and applies them with one O(k) bulk update — an
// amortized O(k/m + 1) cost per productive interaction instead of O(log k).
//
// Accuracy contract: the window m is chosen by the tau-leaping leap
// condition so that every per-opinion event rate (u·xⱼ and xᵢ·(D−xᵢ)) and
// the productive probability W/n² change by at most a ~tol relative factor
// across the window; windows shrink as the undecided count or the
// productive weight shrink and the kernel degenerates to the exact
// single-step law (m = 1) near absorption and for small supports, so the
// endgame — where individual events decide the winner — is simulated
// exactly. Sampled windows that would drive a support negative are
// resampled at half the window size, down to the exact law.
func KernelBatched(tol float64) Kernel {
	if tol <= 0 {
		tol = DefaultTolerance
	}
	if tol > maxTolerance {
		tol = maxTolerance
	}
	return Kernel{batched: true, tol: tol}
}

// ParseKernel returns the kernel named by s: "exact" or "batched", the
// latter with drift tolerance tol (tol <= 0 selects DefaultTolerance). The
// empty string is the exact kernel. CLI -kernel flags share this parser.
func ParseKernel(s string, tol float64) (Kernel, error) {
	switch s {
	case "", "exact":
		return KernelExact, nil
	case "batched":
		return KernelBatched(tol), nil
	default:
		return Kernel{}, fmt.Errorf("core: unknown kernel %q (want exact or batched)", s)
	}
}

// Batched reports whether the kernel is a batched kernel.
func (k Kernel) Batched() bool { return k.batched }

// Tolerance returns the drift tolerance of a batched kernel and 0 for the
// exact kernel.
func (k Kernel) Tolerance() float64 { return k.tol }

// String returns a short name for the kernel.
func (k Kernel) String() string {
	if !k.batched {
		return "exact"
	}
	return fmt.Sprintf("batched(%g)", k.tol)
}

// WithKernel selects the stepping kernel used by Run, RunObserved, and
// RunUntil. The default is KernelExact. The single-step methods Step and
// StepProductive always follow the exact law regardless of the kernel. The
// batched kernel always skips unproductive interactions; WithSkipping only
// affects the exact kernel.
func WithKernel(k Kernel) Option {
	return func(s *Simulator) { s.kernel = k }
}

// minBatchWindow is the smallest window the batched kernel samples as a
// batch; below it the per-window O(k) overhead exceeds the cost of exact
// stepping, so the kernel falls back to the exact law. It also bounds how
// far infeasible windows can halve before the exact law takes over.
const minBatchWindow = 32

// wDriftDivisor bounds the drift of the productive weight W = uD + (D²−r₂)
// across a window: one productive event changes W by at most ~5n (the u·D
// term by at most n, D² by at most 2n+1, r₂ by at most 2n−1), so a window
// of tol·W/(5n) events keeps the relative drift of W below ~tol.
const wDriftDivisor = 5

// batchWindow returns the largest window (in productive events) for which
// the frozen transition law stays within the kernel's drift tolerance,
// following the tau-leaping leap condition: every event changes u by ±1 and
// one support by ±1, so m <= tol·u bounds the relative drift of u, and
// m <= tol·W/(5n) bounds both the relative drift of W and — because
// max(tol·xⱼ, 1)·W/(xⱼ·(u+D−xⱼ)) >= tol·W/n for every opinion — the
// relative drift of each per-opinion rate with support at least 1/tol
// (smaller supports are allowed one whole unit of change, the tau-leaping
// granularity floor).
func (s *Simulator) batchWindow(w int64) int64 {
	tol := s.kernel.tol
	m := math.Min(tol*float64(s.u), tol*float64(w)/(wDriftDivisor*float64(s.n)))
	if m < 1 {
		return 1
	}
	return int64(m)
}

// stepSkip performs one exact productive step with geometric skipping. The
// returned bool is false when the jump to the next productive interaction
// crossed the budget; the clock is then clamped to the budget and no event
// is applied, exactly as if simulation had stopped mid-jump.
func (s *Simulator) stepSkip(w, budget int64) (Event, bool) {
	jump := s.src.Geometric(float64(w) / float64(s.nSq))
	// The comparison is jump > budget−steps, not steps+jump > budget: the
	// run loop guarantees steps < budget here, so the subtraction cannot
	// overflow, whereas steps+jump can wrap negative for a saturated jump
	// and silently skip the budget check. Without a budget the clock
	// saturates at MaxInt64 instead of wrapping.
	if budget > 0 && jump > budget-s.steps {
		s.steps = budget
		return Event{}, false
	}
	s.steps = satAdd(s.steps, jump)
	ev := s.applyProductive(int64(s.src.Uint64n(uint64(w))))
	ev.Interactions = s.steps
	return ev, true
}

// batchStep samples one window of m productive events under the law frozen
// at the current configuration and applies it in O(k). The returned bool is
// false when the window's interaction span crossed the budget; the clock is
// then clamped to the budget and the window is discarded, mirroring the
// exact kernel's mid-jump budget semantics.
//
// The window is sampled hierarchically: the number of adopt events is
// Binomial(m, uD/W), adopts split over opinions j with weights xⱼ, and
// undecide events split with weights xᵢ·(D−xᵢ) — together the exact
// multinomial law of m independent productive events at the frozen
// configuration. A window whose net deltas would drive a support negative
// is discarded and resampled at half the size (falling back to the exact
// law below minBatchWindow), which conditions away a large-deviation event
// of probability o(1) in the window size.
func (s *Simulator) batchStep(w, m, budget int64) (Event, bool) {
	d := s.n - s.u
	k := s.tree.Len()
	if cap(s.batchVals) < k {
		s.batchVals = make([]int64, 0, k)
		s.batchAdopts = make([]int64, k)
		s.batchUndecides = make([]int64, k)
		s.batchWeights = make([]float64, k)
	}
	// Reset can shrink the opinion count below a previous trial's k while
	// the scratch capacity still suffices; the weight slice's *length*
	// drives Multinomial's category count, so reslice all scratch to the
	// live k or stale trailing weights would leak window events onto
	// phantom opinions.
	s.batchAdopts = s.batchAdopts[:k]
	s.batchUndecides = s.batchUndecides[:k]
	s.batchWeights = s.batchWeights[:k]
	pAdopt := float64(s.u*d) / float64(w)
	for {
		s.batchVals = s.tree.Values(s.batchVals[:0])
		adopts := s.src.Binomial(m, pAdopt)
		for j, x := range s.batchVals {
			s.batchWeights[j] = float64(x)
		}
		s.batchAdopts = s.src.Multinomial(adopts, s.batchWeights, s.batchAdopts)
		for j, x := range s.batchVals {
			s.batchWeights[j] = float64(x) * float64(d-x)
		}
		s.batchUndecides = s.src.Multinomial(m-adopts, s.batchWeights, s.batchUndecides)

		feasible := true
		var r2 int64
		for j := range s.batchVals {
			nx := s.batchVals[j] + s.batchAdopts[j] - s.batchUndecides[j]
			if nx < 0 {
				feasible = false
				break
			}
			s.batchVals[j] = nx
			r2 += nx * nx
		}
		if !feasible {
			m /= 2
			if m < minBatchWindow {
				return s.stepSkip(w, budget)
			}
			continue
		}

		// The m productive events of the window are spread over a span of
		// interactions distributed NegativeBinomial(m, W/n²) — the law of
		// m consecutive geometric skips of the exact kernel (sampled via
		// rng.NegativeBinomial, whose large-m normal approximation carries
		// O(1/√m) relative error, well inside the kernel's tolerance).
		span := s.src.NegativeBinomial(m, float64(w)/float64(s.nSq))
		// Saturating comparison, as in stepSkip: rng.NegativeBinomial can
		// return MaxInt64 for extreme parameters, and steps+span would then
		// wrap negative, pass the budget check, and drive the clock
		// backwards. steps < budget holds here, so budget−steps is safe.
		if budget > 0 && span > budget-s.steps {
			s.steps = budget
			return Event{}, false
		}
		s.steps = satAdd(s.steps, span)
		s.tree.SetAll(s.batchVals)
		s.r2 = r2
		s.u += (m - adopts) - adopts
		return Event{Kind: EventBatch, Opinion: -1, Interactions: s.steps, Count: m}, true
	}
}

// runLoopBatched is the batched-kernel run loop: windows of productive
// events are applied in bulk while the leap condition allows, and the loop
// degrades to exact skipping steps near absorption, for small windows, and
// when the remaining budget could not fit two expected windows (so budget
// truncation keeps single-event resolution).
func (s *Simulator) runLoopBatched(budget int64, obs Watcher, stop func(*Simulator) bool) Result {
	for {
		if s.IsConsensus() {
			winner, _ := s.Max()
			return s.result(OutcomeConsensus, winner)
		}
		w := s.productiveWeight()
		if w == 0 {
			return s.result(OutcomeAllUndecided, -1)
		}
		if budget > 0 && s.steps >= budget {
			return s.result(OutcomeBudget, -1)
		}
		m := s.batchWindow(w)
		if budget > 0 {
			// Shrink windows to at most a quarter of the expected number of
			// productive events left in the budget: batching continues all
			// the way to the budget with geometrically smaller windows, the
			// overshoot-discard tail stays negligible, and the final handful
			// of events run exact, preserving single-event truncation
			// resolution.
			remaining := float64(budget-s.steps) * float64(w) / float64(s.nSq)
			if q := int64(remaining / 4); q < m {
				m = q
				if m < 1 {
					m = 1
				}
			}
		}
		var ev Event
		var ok bool
		if m < minBatchWindow {
			ev, ok = s.stepSkip(w, budget)
		} else {
			ev, ok = s.batchStep(w, m, budget)
		}
		if !ok {
			return s.result(OutcomeBudget, -1)
		}
		if obs != nil {
			obs.Watch(s, ev)
		}
		if stop != nil && stop(s) {
			winner := -1
			outcome := OutcomeBudget
			if s.IsConsensus() {
				outcome = OutcomeConsensus
				winner, _ = s.Max()
			}
			return s.result(outcome, winner)
		}
	}
}
