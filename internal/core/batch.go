package core

import (
	"fmt"
	"math"
	"math/bits"
	"strings"

	"repro/internal/u128"
)

// Kernel selects the stepping implementation of a Simulator. The zero value
// is KernelExact. Construct batched kernels with KernelBatched and hybrid
// auto kernels with KernelAuto.
type Kernel struct {
	batched bool
	auto    bool
	tol     float64
}

// KernelExact samples every productive interaction individually from the
// exact transition law in O(log k). It is the default.
var KernelExact = Kernel{}

// DefaultTolerance is the drift tolerance KernelBatched uses when the caller
// passes tol <= 0. At 0.05 the batched and exact kernels are statistically
// indistinguishable in the kernel-agreement experiment while batches still
// reach ~tol·n/2 productive events at the undecided equilibrium.
const DefaultTolerance = 0.05

// maxTolerance caps the drift tolerance; larger values would let a single
// window move rates by a constant factor, voiding the accuracy contract.
const maxTolerance = 0.25

// KernelBatched returns the batched stepping kernel with the given drift
// tolerance (tol <= 0 selects DefaultTolerance; values above 0.25 are
// clamped). The kernel freezes the transition law of Observation 6 at the
// start of an adaptively-sized window of m productive interactions, samples
// the per-opinion adopt/undecide counts of the whole window at once via
// multinomial chaining, and applies them with one O(k) bulk update — an
// amortized O(k/m + 1) cost per productive interaction instead of O(log k).
//
// Accuracy contract: the window m is chosen by the tau-leaping leap
// condition so that every per-opinion event rate (u·xⱼ and xᵢ·(D−xᵢ)) and
// the productive probability W/n² change by at most a ~tol relative factor
// across the window; windows shrink as the undecided count or the
// productive weight shrink and the kernel degenerates to the exact
// single-step law (m = 1) near absorption and for small supports, so the
// endgame — where individual events decide the winner — is simulated
// exactly. Sampled windows that would drive a support negative are
// resampled at half the window size, down to the exact law.
func KernelBatched(tol float64) Kernel {
	if tol <= 0 {
		tol = DefaultTolerance
	}
	if tol > maxTolerance {
		tol = maxTolerance
	}
	return Kernel{batched: true, tol: tol}
}

// KernelAuto returns the hybrid stepping kernel with the given drift
// tolerance (tol <= 0 selects DefaultTolerance; values above 0.25 are
// clamped). It follows exactly the batched kernel's window law — the same
// tau-leaping leap condition, the same frozen multinomial window
// distribution, the same feasibility halving — but picks the cheapest
// sampling strategy per window with a deterministic cost model over the
// window size m and the opinion count k:
//
//   - m < minAutoWindow: exact stepping (the window law degenerates to the
//     single-event law there anyway, and per-window setup would dominate);
//   - m < autoCategoricalFactor·k: per-event categorical draws against the
//     frozen cumulative weights — O(k) setup plus O(log k) per event, with a
//     single negative-binomial span draw for the whole window, which beats
//     both exact stepping (one geometric per event) and binomial chaining
//     (whose 2k inversion setups dominate small windows);
//   - larger m: the chained-binomial batch of KernelBatched, whose O(k)
//     cost is independent of m.
//
// The strategy choice depends only on (m, k), never on wall-clock, so runs
// remain deterministic in the seed. Small-n fleet workloads — where windows
// rarely grow past a few multiples of k and KernelBatched degrades to near
// parity with exact stepping — are the regime this kernel exists for; the
// K1 agreement experiment validates its accuracy contract alongside the
// batched kernel's.
func KernelAuto(tol float64) Kernel {
	k := KernelBatched(tol)
	k.auto = true
	return k
}

// KernelNames returns the registered kernel names in parse order; unknown-
// kernel errors enumerate it.
func KernelNames() []string { return []string{"exact", "batched", "auto"} }

// ParseKernel returns the kernel named by s: "exact", "batched", or "auto",
// the latter two with drift tolerance tol (tol <= 0 selects
// DefaultTolerance). The empty string is the exact kernel. CLI -kernel
// flags share this parser; unknown names are rejected with an error
// enumerating the valid ones.
func ParseKernel(s string, tol float64) (Kernel, error) {
	switch s {
	case "", "exact":
		return KernelExact, nil
	case "batched":
		return KernelBatched(tol), nil
	case "auto":
		return KernelAuto(tol), nil
	default:
		return Kernel{}, fmt.Errorf("core: unknown kernel %q (want %s)", s, strings.Join(KernelNames(), ", "))
	}
}

// Batched reports whether the kernel steps in tau-leaping windows (the
// batched and auto kernels) rather than single events.
func (k Kernel) Batched() bool { return k.batched }

// Auto reports whether the kernel is the hybrid auto kernel.
func (k Kernel) Auto() bool { return k.auto }

// Tolerance returns the drift tolerance of a batched or auto kernel and 0
// for the exact kernel.
func (k Kernel) Tolerance() float64 { return k.tol }

// Name returns the kernel's bare family name — "exact", "batched", or
// "auto" — without the tolerance; it is the identity CLI flags and shard
// job specs use.
func (k Kernel) Name() string {
	switch {
	case !k.batched:
		return "exact"
	case k.auto:
		return "auto"
	default:
		return "batched"
	}
}

// String returns a short name for the kernel.
func (k Kernel) String() string {
	if !k.batched {
		return "exact"
	}
	return fmt.Sprintf("%s(%g)", k.Name(), k.tol)
}

// WithKernel selects the stepping kernel used by Run, RunObserved, and
// RunUntil. The default is KernelExact. The single-step methods Step and
// StepProductive always follow the exact law regardless of the kernel. The
// batched kernel always skips unproductive interactions; WithSkipping only
// affects the exact kernel.
func WithKernel(k Kernel) Option {
	return func(s *Simulator) { s.kernel = k }
}

// SetKernel switches the stepping kernel in place: the equivalent of
// applying WithKernel, without the per-call closure a func-valued option
// costs. Fleet trial bodies that Reset a shared simulator once per trial
// call it right after the reset to stay allocation-free in steady state.
func (s *Simulator) SetKernel(k Kernel) { s.kernel = k }

// minBatchWindow is the smallest window the batched kernel samples as a
// batch; below it the per-window O(k) overhead exceeds the cost of exact
// stepping, so the kernel falls back to the exact law. It also bounds how
// far infeasible windows can halve before the exact law takes over.
const minBatchWindow = 32

// minAutoWindow is the auto kernel's exact-stepping floor. The categorical
// window sampler's per-window setup is a single O(k) cumulative-weight pass
// and one negative-binomial span draw, so batching pays off at much smaller
// windows than the chained-binomial sampler's minBatchWindow; below this
// floor (and whenever feasibility halving drives a window under it) the
// auto kernel steps exactly.
const minAutoWindow = 8

// autoCategoricalFactor is the auto kernel's strategy boundary in units of
// the opinion count: windows of fewer than autoCategoricalFactor·k events
// are sampled by per-event categorical draws, larger ones by binomial
// chaining. The constant is the measured cost ratio of one chained-binomial
// category (two CDF-inversion setups with their transcendentals, ~100ns) to
// one categorical draw (a buffered uniform plus a binary search, ~12ns),
// discounted for the categorical path's O(k) cumulative build. The choice
// is a pure function of (m, k), so trajectories stay deterministic in the
// seed.
const autoCategoricalFactor = 16

// wDriftDivisor bounds the drift of the productive weight W = uD + (D²−r₂)
// across a window. The per-event change of W telescopes: an adopt of
// opinion j changes it by exactly (n − 2xⱼ) − 1 and an undecide of opinion
// i by 2xᵢ − n − 1, so |ΔW| <= n+1 per productive event — the term-wise
// bound of ~5n (u·D by n, D² by 2n+1, r₂ by 2n−1) ignores the cancellation
// between the terms. A window of tol·W/(2n) events therefore keeps the
// relative drift of W below tol·(n+1)/(2n) ~ tol/2, comfortably inside the
// kernel's tolerance, with windows 2.5× the size the term-wise bound
// permitted.
const wDriftDivisor = 2

// batchWindow returns the largest window (in productive events) for which
// the frozen transition law stays within the kernel's drift tolerance,
// following the tau-leaping leap condition: every event changes u by ±1 and
// one support by ±1, so m <= tol·u bounds the relative drift of u, and
// m <= tol·W/(2n) bounds both the relative drift of W (|ΔW| <= n+1 per
// event, see wDriftDivisor) and — because
// max(tol·xⱼ, 1)·W/(xⱼ·(u+D−xⱼ)) >= tol·W/n >= 2·(tol·W/(2n)) for every
// opinion — the relative drift of each per-opinion rate with support at
// least 1/tol (smaller supports are allowed one whole unit of change, the
// tau-leaping granularity floor).
func (s *Simulator) batchWindow(w u128.U128) int64 {
	tol := s.kernel.tol
	m := math.Min(tol*float64(s.u), tol*w.Float64()/(s.dyn.driftDivisor()*float64(s.n)))
	if m < 1 {
		return 1
	}
	return int64(m)
}

// stepSkip performs one exact productive step with geometric skipping. The
// returned bool is false when the jump to the next productive interaction
// crossed the budget; the clock is then clamped to the budget and no event
// is applied, exactly as if simulation had stopped mid-jump.
func (s *Simulator) stepSkip(w, budget u128.U128) (Event, bool) {
	jump := s.src.GeometricU128(w.Float64() * s.invNSq)
	// The comparison is budget−steps < jump, not budget < steps+jump: the
	// run loop guarantees steps < budget here, so the saturating Sub is the
	// exact remaining budget, whereas steps+jump could saturate at u128.Max
	// for a degenerate jump and silently pass a budget check phrased on the
	// sum. Without a budget the clock saturates instead of wrapping.
	if !budget.IsZero() && budget.Sub(s.steps).Less(jump) {
		s.steps = budget
		return Event{}, false
	}
	s.steps = satAdd(s.steps, jump)
	ev := s.applyProductive(s.src.Uint128n(w))
	ev.Interactions = s.steps
	return ev, true
}

// ensureBatchScratch sizes the batched kernels' scratch buffers for k
// opinions. Allocation happens on first use (or growth); afterwards the
// buffers are resliced only. Reset can shrink the opinion count below a
// previous trial's k while the scratch capacity still suffices; the weight
// slice's *length* drives Multinomial's category count, so all scratch is
// resliced to the live k or stale trailing weights would leak window events
// onto phantom opinions.
func (s *Simulator) ensureBatchScratch(k int) {
	// The categorical sampler's cumulative array is padded to a power of
	// two strictly greater than 2k, so at least one trailing slot holds the
	// absorbing u128.Max sentinel: the guide build's forward scan must stop
	// inside the array even for buckets whose smallest threshold is >= W
	// (the threshold-space bucketing reaches such buckets; no draw does).
	// The guide table carries two buckets per cumulative slot, which keeps
	// the expected guide scan under half a step so the scan branch stays
	// predictable.
	cumLen := 1
	for cumLen <= 2*k {
		cumLen <<= 1
	}
	if cap(s.batchVals) < k || cap(s.batchCum) < cumLen {
		s.batchVals = make([]int64, k)
		s.batchCounts = make([]int64, 2*k)
		s.batchWeights = make([]float64, k)
		s.batchCum = make([]u128.U128, cumLen)
		s.batchGuide = make([]int32, 2*cumLen)
	}
	s.batchVals = s.batchVals[:k]
	s.batchCounts = s.batchCounts[:2*k]
	s.batchWeights = s.batchWeights[:k]
	s.batchCum = s.batchCum[:cumLen]
	s.batchGuide = s.batchGuide[:2*cumLen]
}

// sampleWindowChained draws the per-opinion adopt/undecide counts of one
// m-event window from the frozen law by hierarchical binomial chaining: the
// number of adopt events is Binomial(m, uD/W), adopts split over opinions j
// with weights xⱼ, and undecide events split with weights xᵢ·(D−xᵢ) —
// together the exact multinomial law of m independent productive events at
// the frozen configuration. Cost is O(k) binomial draws independent of m.
// It fills batchCounts (adopt counts in the first k slots, undecide counts
// in the next k) from the pre-window supports vals and returns the adopt
// total.
func (s *Simulator) sampleWindowChained(vals []int64, m, d int64, pAdopt float64) int64 {
	k := len(vals)
	adopts := s.src.Binomial(m, pAdopt)
	for j, x := range vals {
		s.batchWeights[j] = float64(x)
	}
	s.src.Multinomial(adopts, s.batchWeights, s.batchCounts[:k:k])
	s.dyn.fillUndecideWeights(s, vals, d, s.batchWeights)
	s.src.Multinomial(m-adopts, s.batchWeights, s.batchCounts[k:])
	return adopts
}

// sampleWindowCategorical draws the same frozen-law window as
// sampleWindowChained by m individual categorical draws against the exact
// integer cumulative weights of the 2k event categories (adopt opinion j
// with weight u·xⱼ, undecide opinion i with weight xᵢ·(D−xᵢ)) — the same
// multinomial distribution, materialized event by event. Cost is one O(k)
// cumulative build plus O(log k) per event, which undercuts the chained
// sampler's 2k inversion setups whenever m is small relative to k. It fills
// batchCounts from the pre-window supports vals and returns the adopt
// total.
func (s *Simulator) sampleWindowCategorical(vals []int64, w u128.U128, m, d int64) int64 {
	k := len(vals)
	cum := s.batchCum
	counts := s.batchCounts
	var c u128.U128
	for j, x := range vals {
		c = c.Add(u128.Mul64(uint64(s.u), uint64(x)))
		cum[j] = c
		counts[j] = 0
	}
	for j, x := range vals {
		c = c.Add(s.dyn.undecideWeightU(s, j, x, d))
		cum[k+j] = c
		counts[k+j] = 0
	}
	// c == W by construction; thresholds are drawn in [0, W). The power-of-
	// two padding is an absorbing sentinel a draw can never reach.
	for j := 2 * k; j < len(cum); j++ {
		cum[j] = u128.Max
	}
	// Guide table (Chen's method), bucketed by a threshold's top bits within
	// the draw space [0, w): with lz = w's leading-zero count, a threshold
	// shifted left by lz normalizes to the top of the 128-bit range, and its
	// top gb bits select the bucket. Bucket g therefore covers thresholds in
	// [g·2^(128−gb−lz), (g+1)·2^(128−gb−lz)), and guide[g] is the first
	// category index a threshold in that bucket can select — correct as a
	// scan start because thresholds grow with the bucket index. A draw then
	// begins its linear scan at its bucket's entry, which leaves O(1)
	// expected scan steps because the bucket count matches the category
	// count. The build is one merge pass: the category pointer only moves
	// forward.
	guide := s.batchGuide
	gb := uint(bits.Len(uint(len(guide)) - 1)) // log₂ of the bucket count
	lz := uint(128 - w.Len())
	idx := 0
	for g := range guide {
		// Smallest threshold of bucket g.
		rg := u128.U128{Hi: uint64(g) << (64 - gb)}.Rsh(lz)
		for cum[idx].Leq(rg) {
			idx++
		}
		guide[g] = int32(idx)
	}
	for e := int64(0); e < m; e++ {
		// For w within 64 bits Uint128n is the same Lemire multiply-shift
		// draw the pre-u128 sampler inlined, consuming identical raw
		// outputs; wider w takes its mask-rejection path. The selected
		// category is a single indexed increment — adopt vs undecide is
		// resolved by the count slot, not a per-draw branch.
		r := s.src.Uint128n(w)
		idx := int(guide[r.Lsh(lz).Hi>>(64-gb)])
		for cum[idx].Leq(r) {
			idx++
		}
		counts[idx]++
	}
	var adopts int64
	for _, c := range counts[:k] {
		adopts += c
	}
	return adopts
}

// batchStep samples one window of m productive events under the law frozen
// at the current configuration and applies it in bulk. categorical selects
// the auto kernel's per-event sampling strategy over binomial chaining; both
// draw from the identical window distribution. The returned bool is false
// when the window's interaction span crossed the budget; the clock is then
// clamped to the budget and the window is discarded, mirroring the exact
// kernel's mid-jump budget semantics.
//
// A window whose net deltas would drive a support negative is discarded and
// resampled at half the size (falling back to the exact law below the
// kernel's exact-stepping floor), which conditions away a large-deviation
// event of probability o(1) in the window size.
func (s *Simulator) batchStep(w u128.U128, m int64, budget u128.U128, categorical bool) (Event, bool) {
	d := s.n - s.u
	k := s.tree.Len()
	s.ensureBatchScratch(k)
	pAdopt := u128.Mul64(uint64(s.u), uint64(d)).Float64() / w.Float64()
	floor := int64(minBatchWindow)
	if s.kernel.auto {
		floor = minAutoWindow
	}
	// The pre-window supports are read through the tree's live view — no
	// per-window copy — and stay untouched until applyWindow, including
	// across feasibility resamples.
	vals := s.tree.View()
	for {
		var adopts int64
		if categorical {
			adopts = s.sampleWindowCategorical(vals, w, m, d)
		} else {
			adopts = s.sampleWindowChained(vals, m, d, pAdopt)
		}

		// Feasibility scan: compute the post-window supports (into scratch,
		// the view stays pristine) and Σx², and count touched opinions so
		// the apply step can pick the cheaper of an incremental Fenwick
		// update and a full rebuild.
		feasible := true
		touched := 0
		var r2 u128.U128
		k2 := len(vals)
		for j, x := range vals {
			delta := s.batchCounts[j] - s.batchCounts[k2+j]
			nx := x + delta
			if nx < s.dyn.supportFloor(s, j) {
				feasible = false
				break
			}
			if delta != 0 {
				touched++
			}
			s.batchVals[j] = nx
			r2 = r2.Add(u128.Mul64(uint64(nx), uint64(nx)))
		}
		if !feasible {
			m /= 2
			if m < floor {
				return s.stepSkip(w, budget)
			}
			continue
		}

		// The m productive events of the window are spread over a span of
		// interactions distributed NegativeBinomial(m, W/n²) — the law of
		// m consecutive geometric skips of the exact kernel (sampled via
		// rng.NegativeBinomialU128, whose large-m normal approximation
		// carries O(1/√m) relative error, well inside the kernel's
		// tolerance).
		span := s.src.NegativeBinomialU128(m, w.Float64()*s.invNSq)
		// Saturating comparison, as in stepSkip: the span can saturate at
		// u128.Max for degenerate parameters, and a budget check phrased on
		// steps+span would then saturate too and silently pass. steps <
		// budget holds here, so budget−steps is the exact remaining budget.
		if !budget.IsZero() && budget.Sub(s.steps).Less(span) {
			s.steps = budget
			return Event{}, false
		}
		s.steps = satAdd(s.steps, span)
		s.applyWindow(touched, k)
		s.r2 = r2
		s.u += (m - adopts) - adopts
		return Event{Kind: EventBatch, Opinion: -1, Interactions: s.steps, Count: m}, true
	}
}

// applyWindow writes the window's post-state supports (already materialized
// in batchVals, with per-opinion deltas recoverable from the adopt and
// undecide halves of batchCounts) into the Fenwick tree. Windows that touch few
// opinions — routine near absorption and in the many-opinions regime, where
// a window's events concentrate on a handful of survivors — apply as
// incremental O(log k) point updates; denser windows take the one-pass O(k)
// rebuild. The crossover compares touched·(log₂k+2) point-update work
// against the k-slot rebuild.
func (s *Simulator) applyWindow(touched, k int) {
	if touched*(bits.Len(uint(k))+2) < k {
		for j := range s.batchVals {
			if delta := s.batchCounts[j] - s.batchCounts[k+j]; delta != 0 {
				s.tree.Add(j, delta)
			}
		}
		return
	}
	s.tree.SetAll(s.batchVals)
}

// runLoopBatched is the run loop of the batched and auto kernels: windows
// of productive events are applied in bulk while the leap condition allows,
// and the loop degrades to exact skipping steps near absorption, for small
// windows, and when the remaining budget could not fit two expected windows
// (so budget truncation keeps single-event resolution). The auto kernel
// additionally picks the per-window sampling strategy — categorical draws
// under roughly autoCategoricalFactor·k events, binomial chaining above —
// and batches down to minAutoWindow instead of minBatchWindow.
func (s *Simulator) runLoopBatched(budget u128.U128, obs Watcher, stop func(*Simulator) bool) Result {
	for {
		if outcome, winner, done := s.dyn.terminal(s); done {
			return s.result(outcome, winner)
		}
		w := s.productiveWeight()
		if w.IsZero() {
			outcome, winner := s.dyn.absorbed(s)
			return s.result(outcome, winner)
		}
		if !budget.IsZero() && budget.Leq(s.steps) {
			return s.result(OutcomeBudget, -1)
		}
		m := s.batchWindow(w)
		if !budget.IsZero() {
			// Shrink windows to at most a quarter of the expected number of
			// productive events left in the budget: batching continues all
			// the way to the budget with geometrically smaller windows, the
			// overshoot-discard tail stays negligible, and the final handful
			// of events run exact, preserving single-event truncation
			// resolution. The arithmetic stays in float64 — the remaining
			// interaction count can exceed int64 but m is bounded by tol·n.
			remaining := budget.Sub(s.steps).Float64() * w.Float64() * s.invNSq
			if q := remaining / 4; q < float64(m) {
				m = int64(q)
				if m < 1 {
					m = 1
				}
			}
		}
		var ev Event
		var ok bool
		switch {
		case s.kernel.auto:
			if m < minAutoWindow {
				ev, ok = s.stepSkip(w, budget)
			} else {
				categorical := m < autoCategoricalFactor*int64(s.tree.Len())
				ev, ok = s.batchStep(w, m, budget, categorical)
			}
		case m < minBatchWindow:
			ev, ok = s.stepSkip(w, budget)
		default:
			ev, ok = s.batchStep(w, m, budget, false)
		}
		if !ok {
			return s.result(OutcomeBudget, -1)
		}
		if obs != nil {
			obs.Watch(s, ev)
		}
		if stop != nil && stop(s) {
			if outcome, winner, done := s.dyn.terminal(s); done {
				return s.result(outcome, winner)
			}
			return s.result(OutcomeBudget, -1)
		}
	}
}
