package core

import (
	"math"
	"testing"

	"repro/internal/conf"
	"repro/internal/rng"
	"repro/internal/u128"
)

func TestKernelAutoIdentity(t *testing.T) {
	k := KernelAuto(0.1)
	if got := k.String(); got != "auto(0.1)" {
		t.Fatalf("KernelAuto(0.1).String() = %q", got)
	}
	if !k.Auto() || !k.Batched() {
		t.Fatalf("KernelAuto: Auto()=%v Batched()=%v, want true/true", k.Auto(), k.Batched())
	}
	if KernelBatched(0.1).Auto() || KernelExact.Auto() {
		t.Fatal("non-auto kernels report Auto()")
	}
	if got := KernelAuto(0).Tolerance(); got != DefaultTolerance {
		t.Fatalf("KernelAuto(0).Tolerance() = %v, want DefaultTolerance", got)
	}
	for _, tc := range []struct {
		kern Kernel
		name string
	}{
		{KernelExact, "exact"},
		{KernelBatched(0), "batched"},
		{KernelAuto(0), "auto"},
	} {
		if got := tc.kern.Name(); got != tc.name {
			t.Fatalf("Name() = %q, want %q", got, tc.name)
		}
	}
}

func TestParseKernelAuto(t *testing.T) {
	k, err := ParseKernel("auto", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if !k.Auto() || k.Tolerance() != 0.03 {
		t.Fatalf("ParseKernel(auto, 0.03) = %v", k)
	}
	if _, err := ParseKernel("warp", 0); err == nil {
		t.Fatal("ParseKernel accepted an unknown kernel")
	}
}

func TestAutoReachesConsensus(t *testing.T) {
	c, err := conf.WithAdditiveBias(1<<16, 8, 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(c, rng.New(11), WithKernel(KernelAuto(0)))
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(NoBudget)
	if res.Outcome != OutcomeConsensus {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if !s.IsConsensus() {
		t.Fatal("simulator not at consensus after consensus outcome")
	}
}

func TestAutoInvariantsEveryEvent(t *testing.T) {
	// After every applied event — categorical window, chained window, or
	// exact fallback — the aggregate invariants must hold: Σx + u = n,
	// r₂ = Σx², supports non-negative, and the clock advances by at least
	// Count. The small n keeps windows under autoCategoricalFactor·k so the
	// categorical sampler is the one exercised.
	c, err := conf.Uniform(1<<14, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(c, rng.New(3), WithKernel(KernelAuto(0.1)))
	if err != nil {
		t.Fatal(err)
	}
	var batches, singles int
	var prevClock u128.U128
	var buf []int64
	res := s.RunObserved(NoBudget, func(sim *Simulator, ev Event) {
		switch ev.Kind {
		case EventBatch:
			batches++
			if ev.Count < minAutoWindow {
				t.Fatalf("batch of %d events below minAutoWindow", ev.Count)
			}
		case EventAdopt, EventUndecide:
			singles++
		default:
			t.Fatalf("unexpected event kind %v", ev.Kind)
		}
		if ev.Interactions.Less(prevClock.Add64(uint64(ev.Count))) {
			t.Fatalf("clock %v advanced less than Count from %v", ev.Interactions, prevClock)
		}
		prevClock = ev.Interactions
		buf = sim.Supports(buf[:0])
		var sum, sq int64
		for _, x := range buf {
			if x < 0 {
				t.Fatalf("negative support %d", x)
			}
			sum += x
			sq += x * x
		}
		if sum+sim.Undecided() != sim.N() {
			t.Fatalf("population leak: Σx=%d u=%d n=%d", sum, sim.Undecided(), sim.N())
		}
		if !sim.SumSquares().Eq(u128.From64(sq)) {
			t.Fatalf("r₂ drift: tracked %v, actual %d", sim.SumSquares(), sq)
		}
	})
	if res.Outcome != OutcomeConsensus {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if batches == 0 {
		t.Fatal("auto kernel never applied a batch window")
	}
	if singles == 0 {
		t.Fatal("auto kernel never fell back to exact steps (endgame should)")
	}
}

func TestAutoDeterministicGivenSeed(t *testing.T) {
	run := func() Result {
		c, err := conf.Uniform(1<<15, 8, 0)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(c, rng.New(77), WithKernel(KernelAuto(0)))
		if err != nil {
			t.Fatal(err)
		}
		return s.Run(NoBudget)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different results: %+v vs %+v", a, b)
	}
}

func TestAutoAndExactAgreeStatistically(t *testing.T) {
	// Mean consensus time under the auto kernel must match the exact
	// kernel's within a few standard errors; the full distributional gates
	// (winner frequencies, KS, phase medians) are the K1 experiment's auto
	// arm.
	if testing.Short() {
		t.Skip("statistical comparison skipped in -short mode")
	}
	const trials = 40
	n := int64(1 << 14)
	sample := func(kern Kernel, seedBase uint64) (mean, sd float64) {
		var xs []float64
		for i := 0; i < trials; i++ {
			c, err := conf.Uniform(n, 8, 0)
			if err != nil {
				t.Fatal(err)
			}
			s, err := New(c, rng.New(rng.Derive(seedBase, uint64(i))), WithKernel(kern))
			if err != nil {
				t.Fatal(err)
			}
			res := s.Run(NoBudget)
			if res.Outcome != OutcomeConsensus {
				t.Fatalf("outcome %v", res.Outcome)
			}
			xs = append(xs, res.Interactions.Float64())
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean = sum / trials
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		sd = math.Sqrt(ss / (trials - 1))
		return mean, sd
	}
	m1, s1 := sample(KernelExact, 301)
	m2, s2 := sample(KernelAuto(0), 402)
	se := math.Sqrt(s1*s1/trials + s2*s2/trials)
	if math.Abs(m1-m2) > 4*se {
		t.Fatalf("kernel means differ: exact=%.0f auto=%.0f (se %.0f)", m1, m2, se)
	}
}

func TestCategoricalMatchesChainedLaw(t *testing.T) {
	// Both window samplers must draw from the identical frozen multinomial
	// law. Pool per-category adopt/undecide totals over many windows from a
	// frozen mid-run configuration and compare each sampler's totals against
	// the law's expectations with a chi-square gate.
	cfg := mustConfig(t, []int64{4000, 3000, 2000, 500, 500}, 2000)
	const m, windows = 64, 3000
	sample := func(categorical bool, seed uint64) (adoptTot, undecideTot []int64) {
		s := newSim(t, cfg, seed, WithKernel(KernelAuto(0)))
		w := s.productiveWeight()
		d := s.n - s.u
		k := s.tree.Len()
		s.ensureBatchScratch(k)
		adoptTot = make([]int64, k)
		undecideTot = make([]int64, k)
		vals := s.tree.View()
		pAdopt := float64(s.u*d) / w.Float64()
		for i := 0; i < windows; i++ {
			if categorical {
				s.sampleWindowCategorical(vals, w, m, d)
			} else {
				s.sampleWindowChained(vals, m, d, pAdopt)
			}
			for j := 0; j < k; j++ {
				adoptTot[j] += s.batchCounts[j]
				undecideTot[j] += s.batchCounts[k+j]
			}
		}
		return adoptTot, undecideTot
	}
	check := func(name string, adoptTot, undecideTot []int64) {
		s := newSim(t, cfg, 1)
		w := s.productiveWeight()
		d := s.n - s.u
		total := float64(m) * windows
		var chi2 float64
		cells := 0
		for j := 0; j < s.K(); j++ {
			x := s.Support(j)
			for _, c := range []struct {
				obs    int64
				weight int64
			}{
				{adoptTot[j], s.Undecided() * x},
				{undecideTot[j], x * (d - x)},
			} {
				exp := total * float64(c.weight) / w.Float64()
				if exp < 5 {
					continue
				}
				diff := float64(c.obs) - exp
				chi2 += diff * diff / exp
				cells++
			}
		}
		// Pooled totals are multinomial over the 2k categories; the pooled
		// chi-square is approximately chi-square with cells−1 dof. Gate at
		// mean + 5·std.
		dof := float64(cells - 1)
		if limit := dof + 5*math.Sqrt(2*dof); chi2 > limit {
			t.Errorf("%s sampler chi-square %.1f exceeds %.1f (dof %.0f)", name, chi2, limit, dof)
		}
	}
	a1, u1 := sample(true, 7)
	a2, u2 := sample(false, 8)
	check("categorical", a1, u1)
	check("chained", a2, u2)
}

func TestAutoWindowLoopAllocFree(t *testing.T) {
	// The whole window loop — scratch, samplers, span draws, Fenwick apply —
	// must run allocation-free in steady state for both windowed kernels, or
	// fleet throughput silently decays with GC pressure.
	cfg := mustConfig(t, []int64{40000, 30000, 20000, 10000}, 0)
	for _, kern := range []Kernel{KernelBatched(0), KernelAuto(0)} {
		src := rng.New(5)
		s := newSim(t, cfg, 5, WithKernel(kern))
		s.Run(u128.From64(200_000)) // warm up scratch
		avg := testing.AllocsPerRun(10, func() {
			src.Reseed(9)
			if err := s.Reset(cfg, src); err != nil {
				t.Fatal(err)
			}
			s.Run(u128.From64(200_000))
		})
		if avg != 0 {
			t.Errorf("kernel %v: %.1f allocs per reset+run, want 0", kern, avg)
		}
	}
}

func TestResetShrinksAutoScratch(t *testing.T) {
	// The auto kernel adds cumulative-weight and guide scratch; Reset to
	// fewer opinions must reslice it with the rest, or stale categories
	// would leak events. Mirrors TestResetShrinksBatchScratch.
	large := mustConfig(t, []int64{10000, 10000, 10000, 10000, 10000, 10000, 10000, 10000, 10000, 10000}, 0)
	small := mustConfig(t, []int64{25000, 25000, 25000, 25000}, 0)
	s := newSim(t, large, 3, WithKernel(KernelAuto(0)))
	s.Run(NoBudget)
	if err := s.Reset(small, rng.New(4)); err != nil {
		t.Fatal(err)
	}
	n := small.N()
	conserve := Observer(func(s *Simulator, _ Event) {
		var total int64 = s.Undecided()
		for i := 0; i < s.K(); i++ {
			total += s.Support(i)
		}
		if total != n {
			t.Fatalf("population not conserved: %d agents, want %d", total, n)
		}
	})
	got := s.RunWatched(NoBudget, conserve)
	fresh := newSim(t, small, 4, WithKernel(KernelAuto(0)))
	if want := fresh.Run(NoBudget); got != want {
		t.Fatalf("reset-shrunk run %+v != fresh %+v", got, want)
	}
}

func TestAutoBudgetTruncation(t *testing.T) {
	// Budget semantics must match the other kernels: the clock never
	// overruns the budget, and a truncated run reports OutcomeBudget.
	c, err := conf.Uniform(1<<14, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 100_000
	s, err := New(c, rng.New(9), WithKernel(KernelAuto(0)))
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(u128.From64(budget))
	if res.Outcome != OutcomeBudget {
		t.Fatalf("outcome %v, want budget-exhausted", res.Outcome)
	}
	if u128.From64(budget).Less(res.Interactions) {
		t.Fatalf("clock %v overran budget %d", res.Interactions, budget)
	}
}
