package core

import (
	"testing"
)

// FuzzVariantSpec drives the variant-spec parser with arbitrary strings:
// it must never panic, anything it accepts must validate and resolve to a
// registered Dynamics, and the accepted value must round-trip through its
// own Spec rendering — the property the shard-spec wire format and the CLI
// -variant flags rely on.
func FuzzVariantSpec(f *testing.F) {
	for _, s := range []string{
		"", "classic", "stubborn", "unconstrained",
		"stubborn:1,2,3", "stubborn:0,0", "stubborn:",
		"stubborn:-1", "stubborn:9223372036854775807,1",
		"stubborn:1,,2", "classic:1", "unconstrained:3",
		"bogus", " classic", "CLASSIC", "stubborn:1, 2",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		v, err := ParseVariantSpec(spec)
		if err != nil {
			return
		}
		if err := v.Validate(); err != nil {
			t.Fatalf("accepted spec %q fails Validate: %v", spec, err)
		}
		d, err := v.Dynamics()
		if err != nil {
			t.Fatalf("accepted spec %q has no dynamics: %v", spec, err)
		}
		if d.Name() == "" {
			t.Fatalf("accepted spec %q resolved to an unnamed dynamics", spec)
		}
		back, err := ParseVariantSpec(v.Spec())
		if err != nil {
			t.Fatalf("spec %q rendered as %q, which does not re-parse: %v", spec, v.Spec(), err)
		}
		if back.Spec() != v.Spec() {
			t.Fatalf("spec %q round-trips to %q then %q", spec, v.Spec(), back.Spec())
		}
	})
}
