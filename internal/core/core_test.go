package core

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/conf"
	"repro/internal/potential"
	"repro/internal/rng"
	"repro/internal/u128"
)

func mustConfig(t *testing.T, support []int64, u int64) *conf.Config {
	t.Helper()
	c, err := conf.FromSupport(support, u)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func newSim(t *testing.T, c *conf.Config, seed uint64, opts ...Option) *Simulator {
	t.Helper()
	s, err := New(c, rng.New(seed), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(&conf.Config{}, rng.New(1)); err == nil {
		t.Fatal("invalid config accepted")
	}
	c := mustConfig(t, []int64{1, 1}, 0)
	if _, err := New(c, nil); err == nil {
		t.Fatal("nil source accepted")
	}
}

func TestNewCopiesConfig(t *testing.T) {
	c := mustConfig(t, []int64{5, 5}, 0)
	s := newSim(t, c, 1)
	c.Support[0] = 0
	if s.Support(0) != 5 {
		t.Fatal("simulator must own a copy of the configuration")
	}
}

func TestAccessors(t *testing.T) {
	c := mustConfig(t, []int64{6, 3}, 1)
	s := newSim(t, c, 1)
	if s.N() != 10 || s.K() != 2 || s.Undecided() != 1 || s.Decided() != 9 {
		t.Fatalf("shape accessors wrong: n=%d k=%d u=%d", s.N(), s.K(), s.Undecided())
	}
	if !s.SumSquares().Eq(u128.From64(45)) {
		t.Fatalf("SumSquares = %v, want 45", s.SumSquares())
	}
	if op, sup := s.Max(); op != 0 || sup != 6 {
		t.Fatalf("Max = (%d,%d)", op, sup)
	}
	got := s.Supports(nil)
	if len(got) != 2 || got[0] != 6 || got[1] != 3 {
		t.Fatalf("Supports = %v", got)
	}
	got[0] = 99
	if s.Support(0) != 6 {
		t.Fatal("Supports must copy")
	}
	snap := s.Config()
	if snap.N() != 10 || snap.Undecided != 1 {
		t.Fatalf("Config snapshot = %v", snap)
	}
}

func TestConsensusDetection(t *testing.T) {
	s := newSim(t, mustConfig(t, []int64{10, 0, 0}, 0), 1)
	if !s.IsConsensus() || !s.IsAbsorbed() {
		t.Fatal("consensus not detected")
	}
	s2 := newSim(t, mustConfig(t, []int64{9, 1}, 0), 1)
	if s2.IsConsensus() || s2.IsAbsorbed() {
		t.Fatal("false consensus")
	}
	s3 := newSim(t, mustConfig(t, []int64{9, 0}, 1), 1)
	if s3.IsConsensus() || s3.IsAbsorbed() {
		t.Fatal("9+1 undecided misdetected as absorbed")
	}
}

func TestAllUndecidedAbsorbing(t *testing.T) {
	s := newSim(t, mustConfig(t, []int64{0, 0}, 10), 1)
	if !s.IsAbsorbed() || s.IsConsensus() {
		t.Fatal("all-undecided must be absorbed, not consensus")
	}
	ev := s.Step()
	if ev.Kind != EventAbsorbed {
		t.Fatalf("Step on absorbed config = %v", ev.Kind)
	}
	if !s.Interactions().IsZero() {
		t.Fatal("clock advanced on absorbed configuration")
	}
	res := s.Run(u128.From64(1000))
	if res.Outcome != OutcomeAllUndecided {
		t.Fatalf("Run outcome = %v, want all-undecided", res.Outcome)
	}
}

func TestStepConservation(t *testing.T) {
	// Property: after any number of steps, Σx + u == n, all counts >= 0,
	// r₂ is consistent, and the clock is non-decreasing.
	check := func(seed uint16, kRaw, uRaw uint8) bool {
		k := int(kRaw%6) + 2
		n := int64(200)
		u := int64(uRaw) % 100
		c, err := conf.Uniform(n, k, u)
		if err != nil {
			return true
		}
		s, err := New(c, rng.New(uint64(seed)), WithSkipping(seed%2 == 0))
		if err != nil {
			return false
		}
		var prevClock u128.U128
		for i := 0; i < 300; i++ {
			var ev Event
			if s.skip {
				ev = s.StepProductive()
			} else {
				ev = s.Step()
			}
			if ev.Kind == EventAbsorbed {
				break
			}
			var sum, r2 int64
			for j := 0; j < s.K(); j++ {
				x := s.Support(j)
				if x < 0 {
					return false
				}
				sum += x
				r2 += x * x
			}
			if sum+s.Undecided() != n || s.Undecided() < 0 {
				return false
			}
			if !s.SumSquares().Eq(u128.From64(r2)) {
				return false
			}
			if s.Interactions().Less(prevClock) {
				return false
			}
			prevClock = s.Interactions()
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleStepLawMatchesObservation6(t *testing.T) {
	// Empirical one-step frequencies from the non-skipping kernel must
	// match the exact Observation 6/8 probabilities.
	c := mustConfig(t, []int64{6, 3, 1}, 10) // n = 20
	want := potential.UndecidedProbs(c)
	src := rng.New(42)
	const trials = 400000
	var down, up, none int
	adoptCounts := make([]int, c.K())
	undecideCounts := make([]int, c.K())
	for i := 0; i < trials; i++ {
		s, err := New(c, src, WithSkipping(false))
		if err != nil {
			t.Fatal(err)
		}
		switch ev := s.Step(); ev.Kind {
		case EventAdopt:
			down++
			adoptCounts[ev.Opinion]++
		case EventUndecide:
			up++
			undecideCounts[ev.Opinion]++
		case EventNone:
			none++
		default:
			t.Fatalf("unexpected event %v", ev.Kind)
		}
	}
	tol := 4.0 / math.Sqrt(trials) // ~4 sigma on a Bernoulli proportion
	if got := float64(down) / trials; math.Abs(got-want.Down) > tol {
		t.Errorf("adopt rate = %.5f, want %.5f", got, want.Down)
	}
	if got := float64(up) / trials; math.Abs(got-want.Up) > tol {
		t.Errorf("undecide rate = %.5f, want %.5f", got, want.Up)
	}
	if got := float64(none) / trials; math.Abs(got-(1-want.Productive())) > tol {
		t.Errorf("noop rate = %.5f, want %.5f", got, 1-want.Productive())
	}
	// Per-opinion laws (Observation 8).
	for i := 0; i < c.K(); i++ {
		adoptP, undecideP := potential.OpinionProbs(c, i)
		if got := float64(adoptCounts[i]) / trials; math.Abs(got-adoptP) > tol {
			t.Errorf("opinion %d adopt rate = %.5f, want %.5f", i, got, adoptP)
		}
		if got := float64(undecideCounts[i]) / trials; math.Abs(got-undecideP) > tol {
			t.Errorf("opinion %d undecide rate = %.5f, want %.5f", i, got, undecideP)
		}
	}
}

func TestSkippingConditionalLawMatches(t *testing.T) {
	// The skipping kernel's productive event must follow the conditional
	// law: Pr[adopt j | productive] = u·xⱼ/W, etc.
	c := mustConfig(t, []int64{6, 3, 1}, 10)
	src := rng.New(43)
	n := c.N()
	d := c.Decided()
	w := c.Undecided*d + (d*d - int64(c.SumSquares().Lo))
	const trials = 300000
	adoptCounts := make([]int, c.K())
	undecideCounts := make([]int, c.K())
	var jumpSum float64
	for i := 0; i < trials; i++ {
		s, err := New(c, src)
		if err != nil {
			t.Fatal(err)
		}
		ev := s.StepProductive()
		jumpSum += ev.Interactions.Float64()
		switch ev.Kind {
		case EventAdopt:
			adoptCounts[ev.Opinion]++
		case EventUndecide:
			undecideCounts[ev.Opinion]++
		default:
			t.Fatalf("unexpected event %v", ev.Kind)
		}
	}
	tol := 4.0 / math.Sqrt(trials)
	for i, xi := range c.Support {
		wantAdopt := float64(c.Undecided*xi) / float64(w)
		wantUndecide := float64(xi*(d-xi)) / float64(w)
		if got := float64(adoptCounts[i]) / trials; math.Abs(got-wantAdopt) > tol {
			t.Errorf("opinion %d conditional adopt = %.5f, want %.5f", i, got, wantAdopt)
		}
		if got := float64(undecideCounts[i]) / trials; math.Abs(got-wantUndecide) > tol {
			t.Errorf("opinion %d conditional undecide = %.5f, want %.5f", i, got, wantUndecide)
		}
	}
	// Mean jump length must be 1/p.
	p := float64(w) / float64(n*n)
	wantJump := 1 / p
	if got := jumpSum / trials; math.Abs(got-wantJump)/wantJump > 0.02 {
		t.Errorf("mean jump = %.3f, want %.3f", got, wantJump)
	}
}

func TestRunReachesConsensusTwoOpinions(t *testing.T) {
	// k=2 with a strong majority: the initial majority should win
	// essentially always (approximate majority, Angluin et al.).
	const trials = 50
	winners0 := 0
	for i := 0; i < trials; i++ {
		c := mustConfig(t, []int64{700, 300}, 0)
		s, err := New(c, rng.New(rng.Derive(7, uint64(i))))
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run(NoBudget)
		if res.Outcome != OutcomeConsensus {
			t.Fatalf("trial %d outcome %v", i, res.Outcome)
		}
		if res.Winner == 0 {
			winners0++
		}
		if res.Interactions.IsZero() {
			t.Fatal("no interactions recorded")
		}
	}
	if winners0 < trials-1 {
		t.Fatalf("initial majority won only %d/%d trials", winners0, trials)
	}
}

func TestRunReachesConsensusManyOpinions(t *testing.T) {
	c, err := conf.Uniform(1000, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := newSim(t, c, 11)
	res := s.Run(NoBudget)
	if res.Outcome != OutcomeConsensus {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if res.Winner < 0 || res.Winner >= 8 {
		t.Fatalf("winner %d out of range", res.Winner)
	}
	if s.Support(res.Winner) != 1000 {
		t.Fatal("winner does not hold the whole population")
	}
	if res.ParallelTime != res.Interactions.Float64()/1000 {
		t.Fatal("parallel time inconsistent")
	}
}

func TestRunBudget(t *testing.T) {
	for _, skip := range []bool{true, false} {
		c, err := conf.Uniform(10000, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		s := newSim(t, c, 3, WithSkipping(skip))
		res := s.Run(u128.From64(500))
		if res.Outcome != OutcomeBudget {
			t.Fatalf("skip=%v: outcome %v, want budget", skip, res.Outcome)
		}
		if !res.Interactions.Eq(u128.From64(500)) {
			t.Fatalf("skip=%v: clock = %v, want exactly 500", skip, res.Interactions)
		}
	}
}

func TestRunUntil(t *testing.T) {
	c, err := conf.Uniform(2000, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := newSim(t, c, 5)
	// Stop when the undecided count first reaches (n - xmax)/2 (end of
	// Phase 1).
	res := s.RunUntil(NoBudget, func(sim *Simulator) bool {
		_, xmax := sim.Max()
		return sim.Undecided() >= (sim.N()-xmax)/2
	})
	if res.Outcome != OutcomeBudget {
		t.Fatalf("outcome %v", res.Outcome)
	}
	_, xmax := s.Max()
	if s.Undecided() < (s.N()-xmax)/2 {
		t.Fatal("stop condition not satisfied at return")
	}
}

func TestObserverSeesEveryProductiveEvent(t *testing.T) {
	c, err := conf.Uniform(500, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := newSim(t, c, 9)
	var events int
	var lastClock u128.U128
	res := s.RunObserved(NoBudget, func(sim *Simulator, ev Event) {
		events++
		if ev.Interactions.Leq(lastClock) {
			t.Fatalf("event clock not strictly increasing: %v then %v", lastClock, ev.Interactions)
		}
		lastClock = ev.Interactions
		if ev.Kind != EventAdopt && ev.Kind != EventUndecide {
			t.Fatalf("unexpected event kind %v with skipping", ev.Kind)
		}
	})
	if res.Outcome != OutcomeConsensus {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if events == 0 {
		t.Fatal("observer saw no events")
	}
	if !lastClock.Eq(res.Interactions) {
		t.Fatalf("last event clock %v != final clock %v", lastClock, res.Interactions)
	}
}

func TestSkipAndExactKernelsAgreeStatistically(t *testing.T) {
	// Two-sample check: consensus times from the two kernels must have
	// compatible means (they sample the same process law).
	if testing.Short() {
		t.Skip("statistical comparison skipped in -short mode")
	}
	const trials = 60
	n := int64(400)
	sample := func(skip bool, seedBase uint64) (mean, sd float64) {
		var xs []float64
		for i := 0; i < trials; i++ {
			c, err := conf.Uniform(n, 4, 0)
			if err != nil {
				t.Fatal(err)
			}
			s, err := New(c, rng.New(rng.Derive(seedBase, uint64(i))), WithSkipping(skip))
			if err != nil {
				t.Fatal(err)
			}
			res := s.Run(NoBudget)
			if res.Outcome != OutcomeConsensus {
				t.Fatalf("outcome %v", res.Outcome)
			}
			xs = append(xs, res.Interactions.Float64())
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean = sum / trials
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		sd = math.Sqrt(ss / (trials - 1))
		return mean, sd
	}
	m1, s1 := sample(true, 101)
	m2, s2 := sample(false, 202)
	// Welch-style tolerance: 4 standard errors of the difference.
	se := math.Sqrt(s1*s1/trials + s2*s2/trials)
	if math.Abs(m1-m2) > 4*se {
		t.Fatalf("kernel means differ: skip=%.0f exact=%.0f (se %.0f)", m1, m2, se)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() Result {
		c, err := conf.Uniform(500, 5, 0)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(c, rng.New(77))
		if err != nil {
			t.Fatal(err)
		}
		return s.Run(NoBudget)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different results: %+v vs %+v", a, b)
	}
}

func TestEventKindString(t *testing.T) {
	cases := map[EventKind]string{
		EventAdopt:    "adopt",
		EventUndecide: "undecide",
		EventNone:     "none",
		EventAbsorbed: "absorbed",
		EventKind(99): "EventKind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Fatalf("String(%d) = %q, want %q", int(k), got, want)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	cases := map[Outcome]string{
		OutcomeConsensus:    "consensus",
		OutcomeAllUndecided: "all-undecided",
		OutcomeBudget:       "budget-exhausted",
		Outcome(42):         "Outcome(42)",
	}
	for o, want := range cases {
		if got := o.String(); got != want {
			t.Fatalf("String(%d) = %q, want %q", int(o), got, want)
		}
	}
}

func TestProductiveProbabilityMatchesPotential(t *testing.T) {
	c := mustConfig(t, []int64{40, 30, 20}, 10)
	s := newSim(t, c, 1)
	want := potential.UndecidedProbs(c).Productive()
	if got := s.ProductiveProbability(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ProductiveProbability = %v, want %v", got, want)
	}
}

func BenchmarkStepProductive(b *testing.B) {
	for _, k := range []int{2, 16, 128} {
		b.Run(benchName("k", k), func(b *testing.B) {
			c, err := conf.Uniform(1<<20, k, 0)
			if err != nil {
				b.Fatal(err)
			}
			s, err := New(c, rng.New(1))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if ev := s.StepProductive(); ev.Kind == EventAbsorbed {
					// Long benchtimes can drive the chain to consensus;
					// restart it outside the timed region.
					b.StopTimer()
					s, err = New(c, rng.New(uint64(i)))
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
			}
		})
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestNewRejectsOverflowingN(t *testing.T) {
	// One agent past MaxN the n² clock wraps int64; New must refuse rather
	// than corrupt every downstream probability. The config is built as a
	// raw literal so the check is exercised even for callers that bypass
	// the conf generators.
	over := &conf.Config{Support: []int64{MaxN, 1}}
	if _, err := New(over, rng.New(1)); err == nil {
		t.Fatal("New accepted n = MaxN+1; nSq would have wrapped negative")
	}
	s := &Simulator{}
	if err := s.Reset(over, rng.New(1)); err == nil {
		t.Fatal("Reset accepted n = MaxN+1")
	}
}

func TestNewAtMaxNIsUsable(t *testing.T) {
	// At exactly MaxN the clock arithmetic is still safe: the simulator
	// must construct and step without negative probabilities or panics.
	c := mustConfig(t, []int64{MaxN - 3, 2}, 1)
	s := newSim(t, c, 9)
	if s.N() != MaxN {
		t.Fatalf("N = %d, want MaxN", s.N())
	}
	if p := s.ProductiveProbability(); p <= 0 || p > 1 || math.IsNaN(p) {
		t.Fatalf("productive probability %v out of range at n = MaxN", p)
	}
	for i := 0; i < 4; i++ {
		ev := s.StepProductive()
		if ev.Interactions.IsZero() {
			t.Fatalf("clock did not advance on a productive step")
		}
	}
}

func TestResetMatchesFreshSimulator(t *testing.T) {
	cfg := mustConfig(t, []int64{400, 300, 200, 100}, 24)
	for _, kern := range []Kernel{KernelExact, KernelBatched(0)} {
		reused, err := New(cfg, rng.New(1), WithKernel(kern))
		if err != nil {
			t.Fatal(err)
		}
		reused.Run(NoBudget) // dirty every piece of reusable state
		for trial := uint64(0); trial < 5; trial++ {
			fresh, err := New(cfg, rng.New(trial), WithKernel(kern))
			if err != nil {
				t.Fatal(err)
			}
			if err := reused.Reset(cfg, rng.New(trial)); err != nil {
				t.Fatal(err)
			}
			if got := reused.Interactions(); !got.IsZero() {
				t.Fatalf("Reset clock = %v", got)
			}
			a, b := fresh.Run(NoBudget), reused.Run(NoBudget)
			if a != b {
				t.Fatalf("kernel %v trial %d: fresh %+v != reset %+v", kern, trial, a, b)
			}
		}
	}
}

func TestResetChangesOpinionCount(t *testing.T) {
	small := mustConfig(t, []int64{60, 40}, 0)
	large := mustConfig(t, []int64{30, 30, 20, 10, 5, 5}, 0)
	s := newSim(t, small, 3)
	s.Run(NoBudget)
	if err := s.Reset(large, rng.New(4)); err != nil {
		t.Fatal(err)
	}
	if s.K() != 6 || s.N() != 100 {
		t.Fatalf("after Reset: k=%d n=%d", s.K(), s.N())
	}
	fresh := newSim(t, large, 4)
	if a, b := fresh.Run(NoBudget), s.Run(NoBudget); a != b {
		t.Fatalf("fresh %+v != reset-across-k %+v", a, b)
	}
}

func TestResetPreservesOptions(t *testing.T) {
	cfg := mustConfig(t, []int64{500, 500}, 0)
	s := newSim(t, cfg, 1, WithKernel(KernelBatched(0.1)), WithSkipping(false))
	if err := s.Reset(cfg, rng.New(2)); err != nil {
		t.Fatal(err)
	}
	if !s.kernel.batched || s.kernel.tol != 0.1 || s.skip {
		t.Fatalf("Reset dropped options: kernel=%v skip=%v", s.kernel, s.skip)
	}
}

func TestWatchersBroadcast(t *testing.T) {
	cfg := mustConfig(t, []int64{50, 30}, 20)
	s := newSim(t, cfg, 2)
	var a, b int
	w := Watchers(nil, Observer(func(*Simulator, Event) { a++ }), nil,
		Observer(func(*Simulator, Event) { b++ }))
	s.RunWatched(NoBudget, w)
	if a == 0 || a != b {
		t.Fatalf("watcher counts diverge: %d vs %d", a, b)
	}
	if Watchers() != nil || Watchers(nil, nil) != nil {
		t.Fatal("empty Watchers must collapse to nil")
	}
	single := Observer(func(*Simulator, Event) {})
	if got := Watchers(nil, single); got == nil {
		t.Fatal("single watcher dropped")
	} else if _, wrapped := got.(MultiWatcher); wrapped {
		t.Fatal("single watcher needlessly wrapped")
	}
}

func TestSatAdd(t *testing.T) {
	from := u128.From64
	cases := []struct{ a, b, want u128.U128 }{
		{from(0), from(0), from(0)},
		{from(1), from(2), from(3)},
		// The old int64 rim is now an ordinary point: no saturation there.
		{from(math.MaxInt64), from(1), from(math.MaxInt64).Add64(1)},
		// Lo-word carry into the hi word.
		{u128.U128{Lo: ^uint64(0)}, from(1), u128.U128{Hi: 1, Lo: 0}},
		{u128.U128{Hi: 1, Lo: ^uint64(0)}, from(1), u128.U128{Hi: 2, Lo: 0}},
		// Hi-word saturation at the 128-bit ceiling.
		{u128.Max, from(0), u128.Max},
		{u128.Max, from(1), u128.Max},
		{u128.Max.Sub64(5), from(10), u128.Max},
		{u128.Max, u128.Max, u128.Max},
		{u128.U128{Hi: ^uint64(0) - 1, Lo: ^uint64(0)}, u128.U128{Hi: 1}, u128.Max},
	}
	for _, tc := range cases {
		if got := satAdd(tc.a, tc.b); got != tc.want {
			t.Fatalf("satAdd(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
	// The budget regime the 128-bit clock exists for: MaxN² = 10²² must be
	// representable and addable headroom-free — far from saturating.
	nSq := u128.From64(MaxN).Mul(u128.From64(MaxN))
	if want := (u128.U128{Hi: 542, Lo: 1864712049423024128}); nSq != want {
		t.Fatalf("MaxN² = %v, want %v", nSq, want)
	}
	if got := satAdd(nSq, nSq); got != nSq.Add(nSq) || got.IsMax() {
		t.Fatalf("satAdd(MaxN², MaxN²) saturated prematurely: %v", got)
	}
}

func TestProductiveProbabilityPrecisionAtMaxN(t *testing.T) {
	// Regression for the float64 precision satellite: nSq = 10²² is far
	// past 2⁵³, so a naive 1/float64-cast-of-nSq path can be off by many
	// ulps. The hoisted invNSq comes from the correctly-rounded
	// u128.Float64, so the productive probability must sit within a few
	// ulps of a 128-bit math/big reference at n = MaxN.
	c := mustConfig(t, []int64{MaxN / 2, MaxN/2 - 7}, 7)
	s := newSim(t, c, 1)
	got := s.ProductiveProbability()

	d := c.Decided()
	w := new(big.Int).Mul(big.NewInt(c.Undecided), big.NewInt(d))
	dd := new(big.Int).Mul(big.NewInt(d), big.NewInt(d))
	for _, x := range c.Support {
		var sq big.Int
		sq.Mul(big.NewInt(x), big.NewInt(x))
		dd.Sub(dd, &sq)
	}
	w.Add(w, dd)
	n := big.NewInt(c.N())
	nsq := new(big.Int).Mul(n, n)
	ref := new(big.Float).SetPrec(256).Quo(
		new(big.Float).SetPrec(256).SetInt(w),
		new(big.Float).SetPrec(256).SetInt(nsq))
	want, _ := ref.Float64()
	ulp := math.Nextafter(want, math.Inf(1)) - want
	if math.Abs(got-want) > 4*ulp {
		t.Fatalf("ProductiveProbability at MaxN = %v, want %v (math/big reference, gap %v)",
			got, want, math.Abs(got-want))
	}
	if got <= 0 || got > 1 || math.IsNaN(got) {
		t.Fatalf("productive probability %v out of range at n = MaxN", got)
	}
}

func TestNewRejectsWrappedPopulationSum(t *testing.T) {
	// Regression: support/undecided sums that wrap int64 produced a
	// negative n that slipped past the n > MaxN guard, and nSq became
	// garbage. Every wrapping combination must be rejected.
	for i, cfg := range []*conf.Config{
		{Support: []int64{50}, Undecided: math.MaxInt64 - 10},
		{Support: []int64{1, math.MaxInt64}},
		{Support: []int64{MaxN, MaxN, MaxN, MaxN}},
	} {
		if _, err := New(cfg, rng.New(1)); err == nil {
			t.Errorf("case %d: New accepted a wrapped population sum", i)
		}
	}
}
