package core

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/u128"
)

func TestContinuousTimeEdgeCases(t *testing.T) {
	src := rng.New(1)
	if got := ContinuousTime(src, u128.U128{}, 100); got != 0 {
		t.Fatalf("t=0 gave %v", got)
	}
	if got := ContinuousTime(src, u128.From64(-5), 100); got != 0 {
		t.Fatalf("negative (clamped-to-zero) interactions gave %v", got)
	}
	if got := ContinuousTime(src, u128.From64(10), 0); got != 0 {
		t.Fatalf("n=0 gave %v", got)
	}
}

func TestContinuousTimeExactRegimeMoments(t *testing.T) {
	// Gamma(t, n): mean t/n, variance t/n².
	src := rng.New(2)
	const interactions, n, trials = 100, 50, 20000
	var sum, sum2 float64
	for i := 0; i < trials; i++ {
		v := ContinuousTime(src, u128.From64(interactions), n)
		if v <= 0 {
			t.Fatalf("non-positive continuous time %v", v)
		}
		sum += v
		sum2 += v * v
	}
	mean := sum / trials
	variance := sum2/trials - mean*mean
	wantMean := float64(interactions) / n
	wantVar := float64(interactions) / (n * n)
	if math.Abs(mean-wantMean)/wantMean > 0.02 {
		t.Fatalf("mean %v, want %v", mean, wantMean)
	}
	if math.Abs(variance-wantVar)/wantVar > 0.1 {
		t.Fatalf("variance %v, want %v", variance, wantVar)
	}
}

func TestContinuousTimeNormalRegimeMoments(t *testing.T) {
	src := rng.New(3)
	const interactions, n, trials = 1 << 20, 1 << 10, 5000
	var sum, sum2 float64
	for i := 0; i < trials; i++ {
		v := ContinuousTime(src, u128.From64(interactions), n)
		sum += v
		sum2 += v * v
	}
	mean := sum / trials
	variance := sum2/trials - mean*mean
	wantMean := float64(interactions) / n
	wantVar := float64(interactions) / float64(int64(n)*int64(n))
	if math.Abs(mean-wantMean)/wantMean > 0.001 {
		t.Fatalf("mean %v, want %v", mean, wantMean)
	}
	if math.Abs(variance-wantVar)/wantVar > 0.15 {
		t.Fatalf("variance %v, want %v", variance, wantVar)
	}
}

func TestContinuousTimeParallelEquivalence(t *testing.T) {
	// Footnote 1 of the paper: the asynchronous gossip model is the
	// continuous-time variant of the population model — continuous time ≈
	// interactions/n. A full USD run's continuous time must match its
	// parallel time closely.
	srcSim := rng.New(4)
	cfg := mustConfig(t, []int64{600, 200, 200}, 0)
	s, err := New(cfg, srcSim)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(NoBudget)
	if res.Outcome != OutcomeConsensus {
		t.Fatalf("outcome %v", res.Outcome)
	}
	ct := ContinuousTime(rng.New(5), res.Interactions, s.N())
	if math.Abs(ct-res.ParallelTime)/res.ParallelTime > 0.05 {
		t.Fatalf("continuous time %v vs parallel time %v", ct, res.ParallelTime)
	}
}

// The standard-normal helper moved to rng.Source.Normal; its moment test
// lives in internal/rng.
