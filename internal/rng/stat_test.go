package rng

import (
	"math"
	"testing"
)

// Statistical test suite for the sampling distributions (ISSUE 3): a
// chi-square goodness-of-fit gate for every Binomial regime and the
// Multinomial chaining built on it, and moment checks for NegativeBinomial
// on both sides of its exact/approximate boundary. All seeds are fixed, and
// acceptance limits sit at mean + 5·std of the reference chi-square
// distribution (≈1e-6 false-failure probability per case), so each case is
// a deterministic pass at its committed seed with room for the statistic's
// natural spread if the stream implementation ever shifts legitimately.

// TestBinomialExactPathsGoodnessOfFit covers the two exact paths that the
// BTRS test does not reach: direct Bernoulli summation (n <= binvDirectLimit)
// and sequential CDF inversion (BINV; larger n with n·p below the BTRS
// threshold), plus each path under the p > 0.5 complement reflection.
func TestBinomialExactPathsGoodnessOfFit(t *testing.T) {
	src := New(131)
	cases := []struct {
		name string
		n    int64
		p    float64
	}{
		{"bernoulli-sum", 12, 0.3},
		{"bernoulli-sum-reflected", 16, 0.85},
		{"binv", 5000, 0.0006}, // n·p = 3 < btrsThreshold
		{"binv-mid-n", 40, 0.2},
		{"binv-reflected", 200, 0.985},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const trials = 100000
			counts := make([]int64, tc.n+1)
			for i := 0; i < trials; i++ {
				v := src.Binomial(tc.n, tc.p)
				if v < 0 || v > tc.n {
					t.Fatalf("Binomial(%d,%v) = %d out of range", tc.n, tc.p, v)
				}
				counts[v]++
			}
			stat, dof := chiSquareGoF(counts, binomialPMF(tc.n, tc.p), trials)
			limit := float64(dof) + 5*math.Sqrt(2*float64(dof))
			if stat > limit {
				t.Errorf("Binomial(%d,%v) chi-square = %.1f exceeds %.1f (dof %d)",
					tc.n, tc.p, stat, limit, dof)
			}
		})
	}
}

// TestMultinomialBTRSRegimeMarginal drives Multinomial through the BTRS
// binomial path (m large enough that every chained draw has n·p >= 10) and
// checks a full goodness-of-fit of one marginal against its exact
// Binomial(m, wᵢ/Σw) law — not just its first two moments.
func TestMultinomialBTRSRegimeMarginal(t *testing.T) {
	src := New(173)
	weights := []float64{1, 2, 3, 4}
	const (
		m      = 4000 // category 0 expects m/10 = 400 >> btrsThreshold
		trials = 40000
	)
	counts := make([]int64, m+1)
	var buf []int64
	for i := 0; i < trials; i++ {
		buf = src.Multinomial(m, weights, buf)
		var rowSum int64
		for _, c := range buf {
			rowSum += c
		}
		if rowSum != m {
			t.Fatalf("counts sum to %d, want %d", rowSum, m)
		}
		counts[buf[0]]++
	}
	stat, dof := chiSquareGoF(counts, binomialPMF(m, 0.1), trials)
	limit := float64(dof) + 5*math.Sqrt(2*float64(dof))
	if stat > limit {
		t.Errorf("Multinomial BTRS-regime marginal chi-square = %.1f exceeds %.1f (dof %d)",
			stat, limit, dof)
	}
}

// TestNegativeBinomialMomentsAcrossLimit pins the exact/approximate
// boundary at nbExactLimit: the exact path at m = nbExactLimit (CDF
// inversion at this p) and the normal-approximation path at nbExactLimit+1
// must both match
// the exact mean m/p and variance m(1−p)/p², so the switchover cannot
// introduce a moment discontinuity.
func TestNegativeBinomialMomentsAcrossLimit(t *testing.T) {
	src := New(211)
	const p = 0.4
	for _, m := range []int64{nbExactLimit, nbExactLimit + 1} {
		const trials = 200000
		var sum, sum2 float64
		for i := 0; i < trials; i++ {
			v := src.NegativeBinomial(m, p)
			if v < m {
				t.Fatalf("NegativeBinomial(%d,%v) = %d < m", m, p, v)
			}
			f := float64(v)
			sum += f
			sum2 += f * f
		}
		mean := sum / trials
		variance := sum2/trials - mean*mean
		wantMean := float64(m) / p
		wantVar := float64(m) * (1 - p) / (p * p)
		// 6σ on the mean; 5% relative on the variance (its own sampling
		// std at 2·10⁵ trials is ≈0.45%, so this is a ≈11σ gate that
		// still fails on any systematic switchover bias).
		if math.Abs(mean-wantMean) > 6*math.Sqrt(wantVar/trials) {
			t.Errorf("NegativeBinomial(%d,%v) mean = %.2f, want %.2f", m, p, mean, wantMean)
		}
		if math.Abs(variance-wantVar)/wantVar > 0.05 {
			t.Errorf("NegativeBinomial(%d,%v) variance = %.1f, want %.1f", m, p, variance, wantVar)
		}
	}
}

// TestNegativeBinomialInversionGoodnessOfFit drives the CDF-inversion path
// (mean failure count at most nbInvLimit) and checks the full failure-count
// distribution against the exact pmf — the path the batched kernel's span
// sampling hits whenever the per-interaction productive probability is high.
func TestNegativeBinomialInversionGoodnessOfFit(t *testing.T) {
	src := New(149)
	cases := []struct {
		name string
		m    int64
		p    float64
	}{
		{"high-p-span", 200, 0.9},  // mean failures 22, the tau-leaping case
		{"boundary", 256, 1.0 / 3}, // mean failures 512 = nbInvLimit exactly
		{"single-success", 1, 0.2}, // geometric law, mean failures 4
		{"heavy-tail", 2, 0.01},    // mean failures 198, σ ~ 140: no cap bias
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const trials = 100000
			// Failure counts beyond the histogram are pooled by chiSquareGoF
			// via the trailing partial cell.
			maxF := int64(float64(tc.m)*(1-tc.p)/tc.p*6 + 50)
			counts := make([]int64, maxF+1)
			for i := 0; i < trials; i++ {
				v := src.NegativeBinomial(tc.m, tc.p) - tc.m
				if v < 0 {
					t.Fatalf("NegativeBinomial(%d,%v) below m", tc.m, tc.p)
				}
				if v > maxF {
					v = maxF
				}
				counts[v]++
			}
			// pmf of the failure count via the ratio recurrence.
			pmf := make([]float64, maxF+1)
			pmf[0] = math.Exp(float64(tc.m) * math.Log(tc.p))
			for f := int64(1); f <= maxF; f++ {
				pmf[f] = pmf[f-1] * (1 - tc.p) * (float64(tc.m) + float64(f) - 1) / float64(f)
			}
			stat, dof := chiSquareGoF(counts, pmf, trials)
			limit := float64(dof) + 5*math.Sqrt(2*float64(dof))
			if stat > limit {
				t.Errorf("NegativeBinomial(%d,%v) inversion chi-square = %.1f exceeds %.1f (dof %d)",
					tc.m, tc.p, stat, limit, dof)
			}
		})
	}
}

// TestBinomialReflectionConsistency checks the p > 0.5 reflection identity
// distributionally: n − Binomial(n, 1−p) must follow the same law as
// Binomial(n, p). The two arms draw independent streams through the
// reflected and direct entry points, and a two-sample homogeneity
// chi-square compares them bin by bin — catching any off-by-one or
// complement-arithmetic slip that the per-arm goodness-of-fit gates could
// cancel out.
func TestBinomialReflectionConsistency(t *testing.T) {
	const (
		n      = 100
		trials = 200000
	)
	src := New(257)
	var a, b []int64
	a = make([]int64, n+1)
	b = make([]int64, n+1)
	for i := 0; i < trials; i++ {
		a[src.Binomial(n, 0.3)]++
		b[n-src.Binomial(n, 0.7)]++ // complement of the reflected sampler
	}
	// Two-sample chi-square on pooled bins: both columns are draws from the
	// same law, so the homogeneity statistic is chi-square distributed.
	var stat float64
	dof := -1
	var pa, pb float64
	for k := 0; k <= n; k++ {
		pa += float64(a[k])
		pb += float64(b[k])
		if pa+pb >= 20 {
			exp := (pa + pb) / 2
			stat += (pa-exp)*(pa-exp)/exp + (pb-exp)*(pb-exp)/exp
			dof++
			pa, pb = 0, 0
		}
	}
	if pa+pb > 0 {
		exp := (pa + pb) / 2
		stat += (pa-exp)*(pa-exp)/exp + (pb-exp)*(pb-exp)/exp
		dof++
	}
	limit := float64(dof) + 5*math.Sqrt(2*float64(dof))
	if stat > limit {
		t.Errorf("reflection-consistency chi-square = %.1f exceeds %.1f (dof %d)", stat, limit, dof)
	}
}
