package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownVector(t *testing.T) {
	// Reference outputs for SplitMix64 seeded with 0 (Vigna's reference
	// implementation).
	state := uint64(0)
	want := []uint64{
		0xE220A8397B1DCDAF,
		0x6E789E6AA1B965F4,
		0x06C45D188009454F,
	}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Fatalf("SplitMix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestXoshiroKnownState(t *testing.T) {
	// xoshiro256** with state {1,2,3,4}: first output is
	// rotl(2*5, 7)*9 = 11520; after the update s[1] becomes 0, so the
	// second output is 0.
	src := NewFromState([4]uint64{1, 2, 3, 4})
	if got := src.Uint64(); got != 11520 {
		t.Fatalf("first output = %d, want 11520", got)
	}
	if got := src.Uint64(); got != 0 {
		t.Fatalf("second output = %d, want 0", got)
	}
}

func TestNewFromStateAllZero(t *testing.T) {
	src := NewFromState([4]uint64{})
	ref := New(0)
	for i := 0; i < 8; i++ {
		if g, w := src.Uint64(), ref.Uint64(); g != w {
			t.Fatalf("output %d: got %d, want %d (seed-0 fallback)", i, g, w)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("streams diverged at step %d: %d != %d", i, x, y)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 outputs collided across distinct seeds", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 1000; i++ {
		s := Derive(7, i)
		if seen[s] {
			t.Fatalf("Derive(7, %d) collided with an earlier index", i)
		}
		seen[s] = true
	}
	if Derive(1, 0) == Derive(2, 0) {
		t.Fatal("Derive should depend on the base seed")
	}
}

func TestSplitDiverges(t *testing.T) {
	a := New(9)
	b := a.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 outputs collided between parent and split child", same)
	}
}

func TestUint64nBounds(t *testing.T) {
	src := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := src.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniformity(t *testing.T) {
	src := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[src.Uint64n(n)]++
	}
	// Chi-square with 9 dof; 99.9% critical value is 27.88.
	expected := float64(trials) / n
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.88 {
		t.Fatalf("chi-square = %.2f exceeds 27.88; counts %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	src := New(5)
	var sum float64
	const trials = 100000
	for i := 0; i < trials; i++ {
		f := src.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %.4f, want ~0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	src := New(1)
	for i := 0; i < 10; i++ {
		if src.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !src.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if src.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !src.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	src := New(17)
	const trials = 200000
	hits := 0
	for i := 0; i < trials; i++ {
		if src.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / trials
	if math.Abs(p-0.3) > 0.005 {
		t.Fatalf("Bernoulli(0.3) empirical rate = %.4f", p)
	}
}

func TestGeometricMean(t *testing.T) {
	src := New(23)
	for _, p := range []float64{0.9, 0.5, 0.1, 0.01} {
		const trials = 50000
		var sum float64
		for i := 0; i < trials; i++ {
			g := src.Geometric(p)
			if g < 1 {
				t.Fatalf("Geometric(%v) = %d < 1", p, g)
			}
			sum += float64(g)
		}
		mean := sum / trials
		want := 1 / p
		// Std of the mean is sqrt((1-p)/p^2/trials); allow 5 sigma.
		tol := 5 * math.Sqrt((1-p)/(p*p)/trials)
		if math.Abs(mean-want) > tol {
			t.Fatalf("Geometric(%v) mean = %.3f, want %.3f +- %.3f", p, mean, want, tol)
		}
	}
}

func TestGeometricPOne(t *testing.T) {
	src := New(2)
	for i := 0; i < 10; i++ {
		if g := src.Geometric(1); g != 1 {
			t.Fatalf("Geometric(1) = %d, want 1", g)
		}
	}
}

func TestGeometricTinyPCapped(t *testing.T) {
	src := New(4)
	for i := 0; i < 100; i++ {
		if g := src.Geometric(1e-300); g > maxGeometric {
			t.Fatalf("Geometric(1e-300) = %d exceeds cap", g)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	src := New(31)
	const trials = 100000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += src.Exponential(2.0)
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Exponential(2) mean = %.4f, want 0.5", mean)
	}
}

func TestBinomialEdges(t *testing.T) {
	src := New(6)
	if got := src.Binomial(0, 0.5); got != 0 {
		t.Fatalf("Binomial(0, .5) = %d", got)
	}
	if got := src.Binomial(10, 0); got != 0 {
		t.Fatalf("Binomial(10, 0) = %d", got)
	}
	if got := src.Binomial(10, 1); got != 10 {
		t.Fatalf("Binomial(10, 1) = %d", got)
	}
}

func TestBinomialMoments(t *testing.T) {
	src := New(77)
	cases := []struct {
		n int64
		p float64
	}{
		{12, 0.5},   // direct-summation path
		{1000, 0.1}, // BTRS path
		{1000, 0.9}, // complement path
	}
	for _, tc := range cases {
		const trials = 20000
		var sum, sum2 float64
		for i := 0; i < trials; i++ {
			v := src.Binomial(tc.n, tc.p)
			if v < 0 || v > tc.n {
				t.Fatalf("Binomial(%d,%v) = %d out of range", tc.n, tc.p, v)
			}
			f := float64(v)
			sum += f
			sum2 += f * f
		}
		mean := sum / trials
		variance := sum2/trials - mean*mean
		wantMean := float64(tc.n) * tc.p
		wantVar := float64(tc.n) * tc.p * (1 - tc.p)
		if math.Abs(mean-wantMean) > 6*math.Sqrt(wantVar/trials) {
			t.Errorf("Binomial(%d,%v) mean = %.3f, want %.3f", tc.n, tc.p, mean, wantMean)
		}
		if math.Abs(variance-wantVar)/wantVar > 0.1 {
			t.Errorf("Binomial(%d,%v) variance = %.3f, want %.3f", tc.n, tc.p, variance, wantVar)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	src := New(41)
	const trials = 200000
	var sum, sum2 float64
	for i := 0; i < trials; i++ {
		v := src.Normal()
		sum += v
		sum2 += v * v
	}
	mean := sum / trials
	variance := sum2/trials - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("Normal mean = %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Normal variance = %.4f, want ~1", variance)
	}
}

// binomialPMF returns the Binomial(n, p) probabilities for k = 0..n via the
// standard ratio recurrence.
func binomialPMF(n int64, p float64) []float64 {
	pmf := make([]float64, n+1)
	// Start from the log of P[0] to stay in range for moderate n.
	logP := float64(n) * math.Log1p(-p)
	pmf[0] = math.Exp(logP)
	for k := int64(1); k <= n; k++ {
		pmf[k] = pmf[k-1] * float64(n-k+1) / float64(k) * p / (1 - p)
	}
	return pmf
}

// chiSquareGoF pools cells with small expectation and returns the
// chi-square statistic and degrees of freedom.
func chiSquareGoF(counts []int64, probs []float64, total int64) (float64, int) {
	var stat float64
	dof := -1
	var poolObs, poolExp float64
	for i, c := range counts {
		exp := probs[i] * float64(total)
		poolObs += float64(c)
		poolExp += exp
		if poolExp >= 5 {
			d := poolObs - poolExp
			stat += d * d / poolExp
			dof++
			poolObs, poolExp = 0, 0
		}
	}
	if poolExp > 0 {
		d := poolObs - poolExp
		stat += d * d / poolExp
		dof++
	}
	return stat, dof
}

func TestBinomialBTRSGoodnessOfFit(t *testing.T) {
	// n·p >= 10 exercises the BTRS transformed-rejection path; the
	// empirical distribution must match the exact pmf, including at the
	// small n the path now admits (n just above the direct-summation limit).
	src := New(91)
	cases := []struct {
		n int64
		p float64
	}{
		{100, 0.25},
		{500, 0.5},
		{10000, 0.002}, // n·p = 20, BTRS with a skewed pmf
		{20, 0.5},      // smallest-n corner of the BTRS regime
		{64, 0.25},     // formerly the direct-summation regime
	}
	for _, tc := range cases {
		const trials = 100000
		counts := make([]int64, tc.n+1)
		for i := 0; i < trials; i++ {
			v := src.Binomial(tc.n, tc.p)
			if v < 0 || v > tc.n {
				t.Fatalf("Binomial(%d,%v) = %d out of range", tc.n, tc.p, v)
			}
			counts[v]++
		}
		stat, dof := chiSquareGoF(counts, binomialPMF(tc.n, tc.p), trials)
		// Accept below mean + 5 std of the chi-square distribution
		// (dof + 5·√(2·dof)), a ~1e-6 false-failure rate per case.
		limit := float64(dof) + 5*math.Sqrt(2*float64(dof))
		if stat > limit {
			t.Errorf("Binomial(%d,%v) chi-square = %.1f exceeds %.1f (dof %d)",
				tc.n, tc.p, stat, limit, dof)
		}
	}
}

func TestNegativeBinomialMoments(t *testing.T) {
	src := New(53)
	cases := []struct {
		m int64
		p float64
	}{
		{10, 0.3},   // CDF-inversion path (mean failures 23 <= nbInvLimit)
		{200, 0.05}, // summed-geometric path (mean failures 3800 > nbInvLimit)
		{1000, 0.2}, // normal-approximation path
	}
	for _, tc := range cases {
		const trials = 20000
		var sum, sum2 float64
		for i := 0; i < trials; i++ {
			v := src.NegativeBinomial(tc.m, tc.p)
			if v < tc.m {
				t.Fatalf("NegativeBinomial(%d,%v) = %d < m", tc.m, tc.p, v)
			}
			f := float64(v)
			sum += f
			sum2 += f * f
		}
		mean := sum / trials
		variance := sum2/trials - mean*mean
		wantMean := float64(tc.m) / tc.p
		wantVar := float64(tc.m) * (1 - tc.p) / (tc.p * tc.p)
		if math.Abs(mean-wantMean) > 6*math.Sqrt(wantVar/trials) {
			t.Errorf("NegativeBinomial(%d,%v) mean = %.1f, want %.1f", tc.m, tc.p, mean, wantMean)
		}
		if math.Abs(variance-wantVar)/wantVar > 0.1 {
			t.Errorf("NegativeBinomial(%d,%v) variance = %.1f, want %.1f", tc.m, tc.p, variance, wantVar)
		}
	}
}

func TestNegativeBinomialEdges(t *testing.T) {
	src := New(8)
	if got := src.NegativeBinomial(0, 0.5); got != 0 {
		t.Fatalf("NegativeBinomial(0, .5) = %d, want 0", got)
	}
	for i := 0; i < 10; i++ {
		if got := src.NegativeBinomial(7, 1); got != 7 {
			t.Fatalf("NegativeBinomial(7, 1) = %d, want 7", got)
		}
	}
}

func TestNegativeBinomialClampNeverNegative(t *testing.T) {
	// Tiny p with large m drives the normal-approximation mean past both
	// 2^56·m and MaxInt64; the clamp must saturate, never wrap negative.
	src := New(12)
	for _, tc := range []struct {
		m int64
		p float64
	}{
		{1000, 1e-16}, // mean 1e19 > MaxInt64; 2^56·m overflows int64
		{300, 1e-300}, // astronomically past every bound
		{500, 1e-14},  // mean 5e16 within range, cap overflows
	} {
		for i := 0; i < 50; i++ {
			got := src.NegativeBinomial(tc.m, tc.p)
			if got < tc.m {
				t.Fatalf("NegativeBinomial(%d, %g) = %d < m (overflowed clamp?)",
					tc.m, tc.p, got)
			}
		}
	}
}

func TestNegativeBinomialExactPathSaturates(t *testing.T) {
	// The exact path (m <= 256) sums Geometric draws that individually cap
	// at 2^56; with p small enough that most draws hit the cap, the running
	// sum crosses MaxInt64 and must saturate there instead of wrapping.
	src := New(3)
	for i := 0; i < 20; i++ {
		got := src.NegativeBinomial(256, 1e-18)
		if got < 256 {
			t.Fatalf("NegativeBinomial(256, 1e-18) = %d, wrapped negative or below m", got)
		}
	}
	// With p this extreme every draw caps, so the sum deterministically
	// saturates regardless of the stream.
	if got := src.NegativeBinomial(256, 1e-300); got != math.MaxInt64 {
		t.Fatalf("NegativeBinomial(256, 1e-300) = %d, want MaxInt64 saturation", got)
	}
}

func TestReseedMatchesNew(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 1 << 63} {
		fresh := New(seed)
		reused := New(seed ^ 0xdeadbeef)
		reused.Uint64() // desynchronize before reseeding
		reused.Reseed(seed)
		for i := 0; i < 100; i++ {
			if a, b := fresh.Uint64(), reused.Uint64(); a != b {
				t.Fatalf("seed %d output %d: Reseed diverged from New (%d vs %d)", seed, i, a, b)
			}
		}
	}
}

func TestMultinomialGoodnessOfFit(t *testing.T) {
	// Pooled totals over many draws are Multinomial(trials·m, p), so a
	// chi-square of the totals against the weight proportions checks the
	// chained-binomial marginals.
	src := New(67)
	weights := []float64{5, 0, 1, 3, 0.5}
	const m, trials = 40, 20000
	totals := make([]int64, len(weights))
	var buf []int64
	for i := 0; i < trials; i++ {
		buf = src.Multinomial(m, weights, buf)
		var rowSum int64
		for j, c := range buf {
			if c < 0 {
				t.Fatalf("negative count %d in category %d", c, j)
			}
			if weights[j] == 0 && c != 0 {
				t.Fatalf("zero-weight category %d received %d trials", j, c)
			}
			totals[j] += c
			rowSum += c
		}
		if rowSum != m {
			t.Fatalf("counts sum to %d, want %d", rowSum, m)
		}
	}
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	var stat float64
	dof := 0
	for j, w := range weights {
		if w == 0 {
			continue
		}
		exp := float64(trials) * m * w / wsum
		d := float64(totals[j]) - exp
		stat += d * d / exp
		dof++
	}
	dof--
	limit := float64(dof) + 5*math.Sqrt(2*float64(dof))
	if stat > limit {
		t.Errorf("Multinomial totals chi-square = %.1f exceeds %.1f (dof %d)", stat, limit, dof)
	}
}

func TestMultinomialMarginalVariance(t *testing.T) {
	// Each marginal count is Binomial(m, w_i/Σw); check mean and variance
	// of a middle category (the one most affected by chaining drift).
	src := New(29)
	weights := []float64{2, 3, 5}
	const m, trials = 100, 30000
	p := weights[1] / 10.0
	var sum, sum2 float64
	var buf []int64
	for i := 0; i < trials; i++ {
		buf = src.Multinomial(m, weights, buf)
		f := float64(buf[1])
		sum += f
		sum2 += f * f
	}
	mean := sum / trials
	variance := sum2/trials - mean*mean
	wantMean := float64(m) * p
	wantVar := float64(m) * p * (1 - p)
	if math.Abs(mean-wantMean) > 6*math.Sqrt(wantVar/trials) {
		t.Errorf("marginal mean = %.3f, want %.3f", mean, wantMean)
	}
	if math.Abs(variance-wantVar)/wantVar > 0.1 {
		t.Errorf("marginal variance = %.3f, want %.3f", variance, wantVar)
	}
}

func TestMultinomialEdges(t *testing.T) {
	src := New(3)
	// m = 0: all-zero counts, even with zero weights present.
	out := src.Multinomial(0, []float64{1, 0, 2}, nil)
	for i, c := range out {
		if c != 0 {
			t.Fatalf("m=0 category %d = %d, want 0", i, c)
		}
	}
	// k = 1: the single category takes every trial.
	if out := src.Multinomial(17, []float64{0.3}, nil); out[0] != 17 {
		t.Fatalf("k=1 count = %d, want 17", out[0])
	}
	// Empty weight vector with m = 0 is fine.
	if out := src.Multinomial(0, nil, nil); len(out) != 0 {
		t.Fatalf("empty weights returned %v", out)
	}
	// dst is reused when it has capacity.
	dst := make([]int64, 3)
	out = src.Multinomial(5, []float64{1, 1, 1}, dst)
	if &out[0] != &dst[0] {
		t.Fatal("Multinomial did not reuse dst")
	}
	// A single positive weight among zeros takes every trial.
	out = src.Multinomial(9, []float64{0, 4, 0}, out)
	if out[0] != 0 || out[1] != 9 || out[2] != 0 {
		t.Fatalf("counts %v, want [0 9 0]", out)
	}
}

func TestMultinomialPanics(t *testing.T) {
	src := New(1)
	cases := []struct {
		name string
		fn   func()
	}{
		{"negative m", func() { src.Multinomial(-1, []float64{1}, nil) }},
		{"negative weight", func() { src.Multinomial(1, []float64{1, -2}, nil) }},
		{"NaN weight", func() { src.Multinomial(1, []float64{math.NaN()}, nil) }},
		{"all-zero weights", func() { src.Multinomial(1, []float64{0, 0}, nil) }},
		{"NegativeBinomial m<0", func() { src.NegativeBinomial(-1, 0.5) }},
		{"NegativeBinomial p=0", func() { src.NegativeBinomial(1, 0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

func TestPermIsPermutation(t *testing.T) {
	src := New(13)
	check := func(n uint8) bool {
		m := int(n%50) + 1
		p := src.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleUniformity(t *testing.T) {
	// All 6 permutations of 3 elements should be roughly equally likely.
	src := New(19)
	counts := map[[3]int]int{}
	const trials = 60000
	for i := 0; i < trials; i++ {
		a := [3]int{0, 1, 2}
		src.Shuffle(3, func(x, y int) { a[x], a[y] = a[y], a[x] })
		counts[a]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d distinct permutations, want 6", len(counts))
	}
	for p, c := range counts {
		if math.Abs(float64(c)-trials/6.0) > 500 {
			t.Fatalf("permutation %v count %d deviates from %d", p, c, trials/6)
		}
	}
}

func TestPanics(t *testing.T) {
	src := New(0)
	cases := []struct {
		name string
		fn   func()
	}{
		{"Uint64n(0)", func() { src.Uint64n(0) }},
		{"Int63n(0)", func() { src.Int63n(0) }},
		{"Int63n(-1)", func() { src.Int63n(-1) }},
		{"Intn(0)", func() { src.Intn(0) }},
		{"Geometric(0)", func() { src.Geometric(0) }},
		{"Exponential(0)", func() { src.Exponential(0) }},
		{"Binomial(-1)", func() { src.Binomial(-1, 0.5) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

func BenchmarkUint64(b *testing.B) {
	src := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += src.Uint64()
	}
	_ = sink
}

func BenchmarkUint64n(b *testing.B) {
	src := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += src.Uint64n(1000003)
	}
	_ = sink
}

func BenchmarkGeometric(b *testing.B) {
	src := New(1)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += src.Geometric(0.3)
	}
	_ = sink
}
