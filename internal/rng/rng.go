// Package rng provides deterministic, seedable pseudo-random number
// generation and the sampling distributions used by the simulators.
//
// The generator is xoshiro256** (Blackman & Vigna) seeded through SplitMix64,
// which is the standard recipe for filling xoshiro state from a single 64-bit
// seed. All randomness in this repository flows through explicit *Source
// values so that every simulation, test, and experiment is reproducible from
// its seed. There are no global generators (per the style guides: no mutable
// globals, no init()).
package rng

import (
	"math"
	"math/bits"
)

// golden is the SplitMix64 increment (2^64 / phi, rounded to odd).
const golden = 0x9E3779B97F4A7C15

// SplitMix64 advances the SplitMix64 state in place and returns the next
// output. It is exposed because seed-derivation schemes elsewhere in the
// repository (for example per-trial stream seeds) reuse it.
func SplitMix64(state *uint64) uint64 {
	*state += golden
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Derive deterministically maps (seed, index) to a stream seed. Distinct
// indices yield statistically independent streams, so parallel trials can be
// seeded in any order while remaining reproducible.
func Derive(seed, index uint64) uint64 {
	s := seed ^ (golden * (index + 1))
	return SplitMix64(&s)
}

// bufLen is the block size of the buffered generator: the number of outputs
// refill produces per pass. One refill keeps the whole xoshiro state in
// registers for bufLen iterations and leaves Uint64's per-draw fast path
// small enough to inline at every call site, which is what removes the
// per-draw call overhead from simulation hot loops. Reseeding discards any
// unconsumed block, so the block size also bounds the work wasted per trial
// reseed; 128 keeps that waste negligible against even the shortest trials.
const bufLen = 128

// Source is a xoshiro256** generator with a buffered output block: raw
// 64-bit outputs are produced bufLen at a time and served from an in-struct
// buffer, so the common Uint64 path is a bounds-checked load. Buffering is
// invisible in the output stream — the value sequence is exactly the
// unbuffered generator's. A Source is not safe for concurrent use; create
// one per goroutine (see Derive).
type Source struct {
	pos int
	buf [bufLen]uint64
	s   [4]uint64
}

// New returns a Source seeded from the given 64-bit seed via SplitMix64.
// Every seed, including zero, yields a valid non-degenerate state.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed resets the source in place to the exact state New(seed) would
// produce, without allocating. Trial engines that reuse one Source per
// worker reseed it with a per-trial derived seed, so results are identical
// to fresh per-trial New calls. Any buffered outputs of the previous seed
// are discarded.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	r.pos = bufLen
}

// NewFromState returns a Source with exactly the given xoshiro256** state.
// At least one word must be nonzero; an all-zero state is replaced by the
// state derived from seed 0 to keep the generator non-degenerate.
func NewFromState(state [4]uint64) *Source {
	if state[0] == 0 && state[1] == 0 && state[2] == 0 && state[3] == 0 {
		return New(0)
	}
	return &Source{s: state, pos: bufLen}
}

// Split returns a new Source whose stream is statistically independent of
// the receiver's continuation. It consumes two outputs from the receiver.
func (r *Source) Split() *Source {
	seed := r.Uint64() ^ bits.RotateLeft64(r.Uint64(), 32)
	return New(seed)
}

// Uint64 returns the next 64 uniformly distributed bits. The fast path is a
// buffered load small enough to inline; refill regenerates the block from
// the xoshiro state roughly once per bufLen draws.
func (r *Source) Uint64() uint64 {
	if r.pos < bufLen {
		v := r.buf[r.pos]
		r.pos++
		return v
	}
	return r.refill()
}

// refill regenerates the output block from the generator state — bufLen
// xoshiro256** steps with the state held in registers — and returns the
// block's first value.
func (r *Source) refill() uint64 {
	s0, s1, s2, s3 := r.s[0], r.s[1], r.s[2], r.s[3]
	for i := range r.buf {
		r.buf[i] = bits.RotateLeft64(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
	r.pos = 1
	return r.buf[0]
}

// Uint64n returns a uniform value in [0, n). It uses Lemire's multiply-shift
// rejection method, which is unbiased. n must be positive.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		threshold := -n % n
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Int63n returns a uniform value in [0, n). n must be positive.
func (r *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n called with n <= 0")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// maxGeometric caps geometric samples so that downstream interaction-clock
// arithmetic cannot overflow int64 even after repeated jumps.
const maxGeometric = int64(1) << 56

// Geometric returns the number of independent Bernoulli(p) trials up to and
// including the first success; the support is {1, 2, ...}. It requires
// p in (0, 1]; values are capped at 2^56 to keep clock arithmetic safe.
func (r *Source) Geometric(p float64) int64 {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		panic("rng: Geometric called with p <= 0")
	}
	return r.geometricInv(1 / math.Log1p(-p))
}

// geometricInv is Geometric by inversion with the reciprocal log already
// computed: G = floor(log(1-U) · invLogQ) + 1 with invLogQ = 1/log(1-p).
// Batch samplers that draw many geometrics at a fixed p hoist the reciprocal
// out of the loop, halving the transcendental count per draw.
func (r *Source) geometricInv(invLogQ float64) int64 {
	u := r.Float64()
	g := math.Floor(math.Log1p(-u)*invLogQ) + 1
	if g >= float64(maxGeometric) || math.IsNaN(g) {
		return maxGeometric
	}
	if g < 1 {
		return 1
	}
	return int64(g)
}

// Exponential returns an Exp(rate) variate. rate must be positive.
func (r *Source) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential called with rate <= 0")
	}
	return -math.Log1p(-r.Float64()) / rate
}

// Normal returns a standard normal variate via the Marsaglia polar method.
func (r *Source) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// btrsThreshold is the smallest n·min(p,1−p) for which Binomial uses the
// transformed-rejection sampler; below it sequential CDF inversion is both
// correct and faster.
const btrsThreshold = 10

// binvDirectLimit is the largest n for which Binomial sums Bernoulli draws
// directly: below it the loop of buffered uniform draws undercuts even the
// single transcendental that the inversion setup pays.
const binvDirectLimit = 16

// Binomial returns a Binomial(n, p) variate by exact methods: direct
// Bernoulli summation for tiny n, Hörmann's BTRS transformed-rejection
// sampler for n·min(p,1−p) >= 10, and sequential CDF inversion (the classic
// BINV recurrence) for everything below the BTRS threshold. All paths sample
// the exact distribution; the expected cost is O(n) draws for the direct
// path, O(1) for BTRS, and O(n·min(p,1−p)+1) multiplies for inversion, so
// the cost is bounded in every regime.
func (r *Source) Binomial(n int64, p float64) int64 {
	switch {
	case n < 0:
		panic("rng: Binomial called with n < 0")
	case n == 0 || p <= 0:
		return 0
	case p >= 1:
		return n
	case p > 0.5:
		return n - r.Binomial(n, 1-p)
	case n <= binvDirectLimit:
		var successes int64
		for i := int64(0); i < n; i++ {
			if r.Float64() < p {
				successes++
			}
		}
		return successes
	case float64(n)*p >= btrsThreshold:
		return r.binomialBTRS(n, p)
	default:
		return r.binomialBINV(n, p)
	}
}

// binomialBINV samples Binomial(n, p) exactly for 0 < p <= 0.5 and
// n·p < btrsThreshold by sequential CDF inversion (the BINV algorithm of
// Kachitvichyanukul & Schmeiser): one uniform is walked down the pmf via the
// ratio recurrence P(k+1) = P(k)·(n−k)·s/(k+1) with s = p/q. The expected
// iteration count is n·p + 1 < 11 in this regime, and with p <= 0.5 and
// n·p < 10 the starting mass q^n >= e^−15, so the recurrence cannot
// underflow near the mode. The far tail can still leak to zero mass in
// floating point; a walk that runs past it restarts with a fresh uniform,
// conditioning away a < 1e−12 tail — far below the sampler's rounding noise.
func (r *Source) binomialBINV(n int64, p float64) int64 {
	q := 1 - p
	s := p / q
	a := float64(n+1) * s
	f0 := math.Exp(float64(n) * math.Log1p(-p)) // q^n = P(X = 0)
	f := f0
	u := r.Float64()
	var k int64
	for {
		if u <= f {
			return k
		}
		u -= f
		f *= a/float64(k+1) - s
		k++
		if k > n || f <= 0 {
			k = 0
			f = f0
			u = r.Float64()
		}
	}
}

// stirlingTailValues[k] = log(k!) − Stirling's approximation of log(k!), for
// the small arguments where the asymptotic series is least accurate.
var stirlingTailValues = [...]float64{
	0.0810614667953272, 0.0413406959554092, 0.0276779256849983,
	0.02079067210376509, 0.0166446911898211, 0.0138761288230707,
	0.0118967099458917, 0.0104112652619720, 0.00925546218271273,
	0.00833056343336287,
}

// stirlingTail returns log(k!) − [log(√(2π)) + (k+½)log(k+1) − (k+1)], the
// correction term of the Stirling series used in the BTRS acceptance test.
func stirlingTail(k float64) float64 {
	if k <= 9 {
		return stirlingTailValues[int(k)]
	}
	kp1 := k + 1
	kp1sq := kp1 * kp1
	return (1.0/12 - (1.0/360-1.0/1260/kp1sq)/kp1sq) / kp1
}

// binomialBTRS samples Binomial(n, p) exactly for 0 < p <= 0.5 and
// n·p >= btrsThreshold using the BTRS transformed-rejection algorithm of
// Hörmann ("The generation of binomial random variates", JSCS 1993): a
// candidate is produced by an affine transformation of a uniform pair that
// closely matches the binomial shape, a cheap squeeze accepts ~86% of
// candidates immediately, and the rest are resolved by an exact
// Stirling-corrected log-density ratio. The expected number of uniform
// pairs per variate is O(1), independent of n and p.
func (r *Source) binomialBTRS(n int64, p float64) int64 {
	nf := float64(n)
	q := 1 - p
	spq := math.Sqrt(nf * p * q)
	b := 1.15 + 2.53*spq
	a := -0.0873 + 0.0248*b + 0.01*p
	c := nf*p + 0.5
	vr := 0.92 - 4.2/b
	alpha := (2.83 + 5.1/b) * spq
	lratio := p / q
	m := math.Floor((nf + 1) * p)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + c)
		if us >= 0.07 && v <= vr {
			return int64(k)
		}
		if k < 0 || k > nf {
			continue
		}
		// Exact acceptance test in log space against the binomial pmf,
		// with log(k!) terms expanded via the Stirling correction.
		v = math.Log(v * alpha / (a/(us*us) + b))
		bound := (m+0.5)*math.Log((m+1)/(lratio*(nf-m+1))) +
			(nf+1)*math.Log((nf-m+1)/(nf-k+1)) +
			(k+0.5)*math.Log(lratio*(nf-k+1)/(k+1)) +
			stirlingTail(m) + stirlingTail(nf-m) -
			stirlingTail(k) - stirlingTail(nf-k)
		if v <= bound {
			return int64(k)
		}
	}
}

// nbExactLimit is the largest success count for which NegativeBinomial sums
// geometric variates exactly.
const nbExactLimit = 256

// nbInvLimit is the largest expected failure count μ = m(1−p)/p for which
// NegativeBinomial uses sequential CDF inversion over the failure count.
// The walk costs O(μ) multiplies (no transcendentals beyond its setup), so
// it beats the summed-geometric path's m logarithms through the whole
// admitted range; the limit exists because the starting mass
// p^m = e^{−m·ln(1/p)} >= e^{−μ} (since ln(1/p) <= (1−p)/p) approaches the
// subnormal floor beyond μ ~ 700. 512 leaves a two-decade margin.
const nbInvLimit = 512

// NegativeBinomial returns the number of independent Bernoulli(p) trials up
// to and including the m-th success (the sum of m Geometric(p) variates),
// for m >= 0 and p in (0, 1]. For m <= nbExactLimit the sample is exact:
// sequential CDF inversion over the failure count when its mean m(1−p)/p is
// at most nbInvLimit (one uniform and one transcendental instead of m of
// each — the hot case for tau-leaping spans, where p is the per-interaction
// productive probability and is close to 1 exactly when windows are large),
// and a sum of m geometric variates otherwise. Above nbExactLimit the
// sample is drawn from the normal approximation with the exact mean m/p and
// variance m(1−p)/p², whose relative error is O(1/√m). Results are clamped
// to [m, MaxInt64] so interaction-clock arithmetic cannot overflow.
func (r *Source) NegativeBinomial(m int64, p float64) int64 {
	switch {
	case m < 0:
		panic("rng: NegativeBinomial called with m < 0")
	case m == 0:
		return 0
	case p <= 0:
		panic("rng: NegativeBinomial called with p <= 0")
	case p >= 1:
		return m
	case m <= nbExactLimit:
		if float64(m)*(1-p)/p <= nbInvLimit {
			return r.negativeBinomialInv(m, p)
		}
		// Each Geometric is capped at 2^56, but nbExactLimit of them can
		// still sum past MaxInt64 for extreme p, so accumulate saturating —
		// the documented clamp — instead of wrapping negative. The
		// reciprocal log of the shared inversion formula is hoisted out of
		// the loop.
		invLogQ := 1 / math.Log1p(-p)
		var total int64
		for i := int64(0); i < m; i++ {
			total = satAddInt64(total, r.geometricInv(invLogQ))
		}
		return total
	default:
		mf := float64(m)
		mean := mf / p
		std := math.Sqrt(mf*(1-p)) / p
		t := math.Round(mean + std*r.Normal())
		if t < mf {
			return m
		}
		// This path only runs for m > nbExactLimit, where 2^56·m already
		// exceeds MaxInt64 — so the effective clamp is MaxInt64 itself,
		// saturating rather than wrapping negative.
		if t >= float64(math.MaxInt64) || math.IsNaN(t) {
			return math.MaxInt64
		}
		return int64(t)
	}
}

// negativeBinomialInv samples NegativeBinomial(m, p) exactly for
// m(1−p)/p <= nbInvLimit by sequential CDF inversion over the failure count
// F (the trial count is m + F): one uniform is walked down the pmf
// P(F=f) = C(m+f−1, f)·p^m·q^f via the ratio recurrence
// P(f+1) = P(f)·q·(m+f)/(f+1). The expected iteration count is the mean
// failure count plus one, and p^m >= e^{−nbInvLimit} holds throughout the
// admitted regime, so the starting mass cannot underflow. There is no
// artificial iteration cap — heavy geometric-like tails would turn one into
// a visible truncation — only an exactness-preserving guard: when the pmf
// walk underflows to zero mass (the uniform landed in the < 1e−15 rounding
// gap past the representable tail), the walk restarts with a fresh uniform.
func (r *Source) negativeBinomialInv(m int64, p float64) int64 {
	q := 1 - p
	mf := float64(m)
	f0 := math.Exp(mf * math.Log(p)) // p^m = P(F = 0)
	f := f0
	u := r.Float64()
	var fail int64
	for {
		if u <= f {
			return satAddInt64(m, fail)
		}
		u -= f
		f *= q * (mf + float64(fail)) / float64(fail+1)
		fail++
		if f <= 0 {
			fail = 0
			f = f0
			u = r.Float64()
		}
	}
}

// satAddInt64 returns a+b clamped to MaxInt64 for non-negative a and b.
func satAddInt64(a, b int64) int64 {
	if s := a + b; s >= a {
		return s
	}
	return math.MaxInt64
}

// Multinomial samples category counts (c₀, …, c_{k−1}) distributed
// Multinomial(m; w/Σw) by conditional binomial chaining: cᵢ is
// Binomial(m − Σ_{j<i} cⱼ, wᵢ/Σ_{j>=i} wⱼ), which is the exact conditional
// law of category i given the earlier categories. With the O(1) BTRS path
// in Binomial the expected cost is O(k), independent of m.
//
// Weights must be non-negative and finite; zero-weight categories receive a
// zero count. If m > 0 the weights must not all be zero. The counts are
// written into dst when it has capacity for len(weights) values (allocating
// otherwise) and the filled slice is returned; m = 0 or an empty weight
// vector yields all-zero counts.
func (r *Source) Multinomial(m int64, weights []float64, dst []int64) []int64 {
	if m < 0 {
		panic("rng: Multinomial called with m < 0")
	}
	k := len(weights)
	if cap(dst) < k {
		dst = make([]int64, k)
	}
	dst = dst[:k]
	for i := range dst {
		dst[i] = 0
	}
	if m == 0 || k == 0 {
		return dst
	}
	var wsum float64
	last := -1
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			panic("rng: Multinomial called with negative or non-finite weight")
		}
		if w > 0 {
			last = i
		}
		wsum += w
	}
	if last < 0 {
		panic("rng: Multinomial called with all-zero weights and m > 0")
	}
	wrem := wsum
	rem := m
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if i == last {
			// The final positive-weight category takes every remaining
			// trial, so floating-point drift in wrem cannot leak counts
			// into zero-weight categories.
			dst[i] = rem
			break
		}
		c := r.Binomial(rem, w/wrem)
		dst[i] = c
		rem -= c
		if rem == 0 {
			break
		}
		wrem -= w
	}
	return dst
}

// Shuffle pseudo-randomizes the order of n elements using swap, via the
// Fisher-Yates algorithm.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
