// Package rng provides deterministic, seedable pseudo-random number
// generation and the sampling distributions used by the simulators.
//
// The generator is xoshiro256** (Blackman & Vigna) seeded through SplitMix64,
// which is the standard recipe for filling xoshiro state from a single 64-bit
// seed. All randomness in this repository flows through explicit *Source
// values so that every simulation, test, and experiment is reproducible from
// its seed. There are no global generators (per the style guides: no mutable
// globals, no init()).
package rng

import (
	"math"
	"math/bits"
)

// golden is the SplitMix64 increment (2^64 / phi, rounded to odd).
const golden = 0x9E3779B97F4A7C15

// SplitMix64 advances the SplitMix64 state in place and returns the next
// output. It is exposed because seed-derivation schemes elsewhere in the
// repository (for example per-trial stream seeds) reuse it.
func SplitMix64(state *uint64) uint64 {
	*state += golden
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Derive deterministically maps (seed, index) to a stream seed. Distinct
// indices yield statistically independent streams, so parallel trials can be
// seeded in any order while remaining reproducible.
func Derive(seed, index uint64) uint64 {
	s := seed ^ (golden * (index + 1))
	return SplitMix64(&s)
}

// Source is a xoshiro256** generator. It is not safe for concurrent use;
// create one Source per goroutine (see Derive).
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given 64-bit seed via SplitMix64.
// Every seed, including zero, yields a valid non-degenerate state.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = SplitMix64(&sm)
	}
	return &src
}

// NewFromState returns a Source with exactly the given xoshiro256** state.
// At least one word must be nonzero; an all-zero state is replaced by the
// state derived from seed 0 to keep the generator non-degenerate.
func NewFromState(state [4]uint64) *Source {
	if state[0] == 0 && state[1] == 0 && state[2] == 0 && state[3] == 0 {
		return New(0)
	}
	return &Source{s: state}
}

// Split returns a new Source whose stream is statistically independent of
// the receiver's continuation. It consumes two outputs from the receiver.
func (r *Source) Split() *Source {
	seed := r.Uint64() ^ bits.RotateLeft64(r.Uint64(), 32)
	return New(seed)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It uses Lemire's multiply-shift
// rejection method, which is unbiased. n must be positive.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		threshold := -n % n
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Int63n returns a uniform value in [0, n). n must be positive.
func (r *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n called with n <= 0")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// maxGeometric caps geometric samples so that downstream interaction-clock
// arithmetic cannot overflow int64 even after repeated jumps.
const maxGeometric = int64(1) << 56

// Geometric returns the number of independent Bernoulli(p) trials up to and
// including the first success; the support is {1, 2, ...}. It requires
// p in (0, 1]; values are capped at 2^56 to keep clock arithmetic safe.
func (r *Source) Geometric(p float64) int64 {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		panic("rng: Geometric called with p <= 0")
	}
	// Inversion: G = floor(log(1-U) / log(1-p)) + 1 with U in [0, 1).
	u := r.Float64()
	g := math.Floor(math.Log1p(-u)/math.Log1p(-p)) + 1
	if g >= float64(maxGeometric) || math.IsNaN(g) {
		return maxGeometric
	}
	if g < 1 {
		return 1
	}
	return int64(g)
}

// Exponential returns an Exp(rate) variate. rate must be positive.
func (r *Source) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential called with rate <= 0")
	}
	return -math.Log1p(-r.Float64()) / rate
}

// Binomial returns a Binomial(n, p) variate by exact methods: direct
// Bernoulli summation for small n and the geometric waiting-time method
// otherwise. The expected cost is O(min(n, n*min(p,1-p)+1)), which is cheap
// for the moderate n*p values used in this repository.
func (r *Source) Binomial(n int64, p float64) int64 {
	switch {
	case n < 0:
		panic("rng: Binomial called with n < 0")
	case n == 0 || p <= 0:
		return 0
	case p >= 1:
		return n
	case p > 0.5:
		return n - r.Binomial(n, 1-p)
	case n <= 64:
		var successes int64
		for i := int64(0); i < n; i++ {
			if r.Float64() < p {
				successes++
			}
		}
		return successes
	default:
		// Waiting-time method: positions of successes are separated by
		// geometric gaps; count how many fit inside n trials.
		var successes, pos int64
		for {
			pos += r.Geometric(p)
			if pos > n {
				return successes
			}
			successes++
		}
	}
}

// Shuffle pseudo-randomizes the order of n elements using swap, via the
// Fisher-Yates algorithm.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
