package rng

import (
	"testing"
)

// TestSamplerAllocFree pins the allocation profile of every sampler on the
// simulation hot path: zero heap allocations per draw in steady state. The
// buffered generator, the binomial paths on both sides of the BTRS
// switchover, the negative-binomial paths, and multinomial chaining into a
// caller-owned slice must all stay alloc-free, or fleet throughput silently
// decays with GC pressure.
func TestSamplerAllocFree(t *testing.T) {
	src := New(5)
	dst := make([]int64, 8)
	weights := []float64{5, 3, 2, 1, 1, 1, 1, 2}
	cases := []struct {
		name string
		fn   func()
	}{
		{"Uint64", func() { src.Uint64() }},
		{"Uint64n", func() { src.Uint64n(12345) }},
		{"Float64", func() { src.Float64() }},
		{"Geometric", func() { src.Geometric(0.3) }},
		{"Binomial-direct", func() { src.Binomial(12, 0.4) }},
		{"Binomial-binv", func() { src.Binomial(1000, 0.005) }},
		{"Binomial-btrs", func() { src.Binomial(1000, 0.3) }},
		{"NegativeBinomial-inv", func() { src.NegativeBinomial(100, 0.9) }},
		{"NegativeBinomial-sum", func() { src.NegativeBinomial(100, 0.05) }},
		{"NegativeBinomial-normal", func() { src.NegativeBinomial(1000, 0.3) }},
		{"Multinomial", func() { dst = src.Multinomial(500, weights, dst) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if avg := testing.AllocsPerRun(200, tc.fn); avg != 0 {
				t.Errorf("%s allocates %.1f objects per draw, want 0", tc.name, avg)
			}
		})
	}
}

// Benchmarks across the sampler switchovers (direct / BINV inversion / BTRS
// for Binomial, inversion / summed-geometric / normal for NegativeBinomial),
// so the per-regime costs the kernel cost model assumes stay visible in the
// perf trajectory.

func BenchmarkBinomial(b *testing.B) {
	cases := []struct {
		name string
		n    int64
		p    float64
	}{
		{"direct/n=12,p=0.4", 12, 0.4},
		{"binv/n=64,p=0.1", 64, 0.1},
		{"binv/n=5000,p=0.001", 5000, 0.001},
		{"btrs/n=100,p=0.25", 100, 0.25},
		{"btrs/n=1e6,p=0.3", 1_000_000, 0.3},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			src := New(1)
			var sink int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink += src.Binomial(tc.n, tc.p)
			}
			_ = sink
		})
	}
}

func BenchmarkNegativeBinomial(b *testing.B) {
	cases := []struct {
		name string
		m    int64
		p    float64
	}{
		{"inv/m=200,p=0.9", 200, 0.9},
		{"sum/m=100,p=0.05", 100, 0.05},
		{"normal/m=1000,p=0.3", 1000, 0.3},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			src := New(1)
			var sink int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink += src.NegativeBinomial(tc.m, tc.p)
			}
			_ = sink
		})
	}
}

func BenchmarkMultinomial(b *testing.B) {
	cases := []struct {
		name string
		m    int64
		k    int
	}{
		{"small-window/m=100,k=32", 100, 32},
		{"btrs-regime/m=100000,k=32", 100_000, 32},
		{"wide/m=1000,k=512", 1000, 512},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			src := New(1)
			weights := make([]float64, tc.k)
			for i := range weights {
				weights[i] = float64(1 + i%7)
			}
			dst := make([]int64, tc.k)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dst = src.Multinomial(tc.m, weights, dst)
			}
			_ = dst
		})
	}
}

func BenchmarkFloat64(b *testing.B) {
	src := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += src.Float64()
	}
	_ = sink
}
