package rng

import (
	"math"
	"testing"

	"repro/internal/u128"
)

// TestUint128nSmallMatchesUint64n pins the stream-compatibility contract:
// for n that fits 64 bits, Uint128n consumes and produces exactly what
// Uint64n would, so pre-u128 trajectories replay bit-identically.
func TestUint128nSmallMatchesUint64n(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		n := a.Uint64n(1e18) + 1
		_ = b.Uint64n(1e18)
		got := a.Uint128n(u128.FromU64(n))
		want := u128.FromU64(b.Uint64n(n))
		if got != want {
			t.Fatalf("draw %d: Uint128n(%d) = %v, want %v", i, n, got, want)
		}
	}
}

// TestUint128nWideBounds checks the rejection path: draws land in [0, n),
// reach both 64-bit halves, and have roughly the uniform mean.
func TestUint128nWideBounds(t *testing.T) {
	src := New(7)
	n := u128.U128{Hi: 542, Lo: 1864712049423024128} // 10²² = MaxN²
	const draws = 20000
	var sum u128.U128
	var sawHighHalf bool
	for i := 0; i < draws; i++ {
		v := src.Uint128n(n)
		if !v.Less(n) {
			t.Fatalf("draw %d: %v >= n = %v", i, v, n)
		}
		if v.Hi >= n.Hi/2 {
			sawHighHalf = true
		}
		sum = sum.Add(v)
	}
	if !sawHighHalf {
		t.Fatal("no draw reached the top half of [0, n)")
	}
	mean := sum.Div64(draws).Float64()
	want := n.Float64() / 2
	if math.Abs(mean-want) > 0.02*want {
		t.Fatalf("mean %g, want ~%g", mean, want)
	}
}

func TestUint128nZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint128n(0) did not panic")
		}
	}()
	New(1).Uint128n(u128.U128{})
}

// TestGeometricU128MatchesInt64 pins stream interchangeability below the old
// cap: both samplers consume one uniform and agree exactly while the int64
// sample is uncapped.
func TestGeometricU128MatchesInt64(t *testing.T) {
	a, b := New(11), New(11)
	for _, p := range []float64{0.9, 0.5, 1e-3, 1e-9} {
		for i := 0; i < 200; i++ {
			got := a.GeometricU128(p)
			want := b.Geometric(p)
			if want < maxGeometric && got != u128.From64(want) {
				t.Fatalf("p=%g draw %d: GeometricU128 = %v, Geometric = %d", p, i, got, want)
			}
		}
	}
	if got := New(1).GeometricU128(1); got != (u128.U128{Lo: 1}) {
		t.Fatalf("GeometricU128(1) = %v, want 1", got)
	}
}

// TestGeometricU128BeyondOldCap exercises the regime the migration exists
// for: at p = 10⁻²² (one productive pair among MaxN² = 10²²) samples
// routinely exceed the old 2⁵⁶ cap, and their empirical mean tracks 1/p.
func TestGeometricU128BeyondOldCap(t *testing.T) {
	src := New(3)
	const p = 1e-22
	oldCap := u128.From64(maxGeometric)
	var sum u128.U128
	var beyond int
	const draws = 2000
	for i := 0; i < draws; i++ {
		g := src.GeometricU128(p)
		if g.IsZero() || g.IsMax() {
			t.Fatalf("draw %d: degenerate sample %v", i, g)
		}
		if oldCap.Less(g) {
			beyond++
		}
		sum = sum.Add(g)
	}
	// P(G <= 2⁵⁶) ≈ 2⁵⁶·10⁻²² ≈ 7·10⁻⁶ per draw, so effectively every
	// draw lands beyond the old cap.
	if beyond < draws-1 {
		t.Fatalf("only %d/%d draws exceeded the old 2⁵⁶ cap", beyond, draws)
	}
	mean := sum.Div64(draws).Float64()
	if mean < 0.9e22 || mean > 1.1e22 {
		t.Fatalf("empirical mean %g, want ~1e22", mean)
	}
}

// TestNegativeBinomialU128MatchesInt64 pins stream interchangeability on
// all three method branches while the int64 result is unclamped.
func TestNegativeBinomialU128MatchesInt64(t *testing.T) {
	cases := []struct {
		m int64
		p float64
	}{
		{1, 0.5},
		{100, 0.9},  // inversion: mean failures ≈ 11
		{100, 0.01}, // summed geometrics: mean failures ≈ 9900
		{5000, 0.7}, // normal approximation
		{5000, 1.0}, // p >= 1 fast path
	}
	for _, tc := range cases {
		a, b := New(99), New(99)
		for i := 0; i < 100; i++ {
			got := a.NegativeBinomialU128(tc.m, tc.p)
			want := b.NegativeBinomial(tc.m, tc.p)
			if want < math.MaxInt64 && got != u128.From64(want) {
				t.Fatalf("m=%d p=%g draw %d: U128 = %v, int64 = %d", tc.m, tc.p, i, got, want)
			}
		}
	}
}

// TestNegativeBinomialU128LargeSpan checks the window-span regime at the new
// scale: m successes at p ≈ m/10²² must land near 10²² without saturating.
func TestNegativeBinomialU128LargeSpan(t *testing.T) {
	src := New(5)
	const m = 64
	p := float64(m) / 1e22
	var sum u128.U128
	const draws = 500
	for i := 0; i < draws; i++ {
		v := src.NegativeBinomialU128(m, p)
		if v.IsMax() {
			t.Fatalf("draw %d saturated", i)
		}
		if v.Less(u128.From64(m)) {
			t.Fatalf("draw %d: %v < m", i, v)
		}
		sum = sum.Add(v)
	}
	mean := sum.Div64(draws).Float64()
	want := float64(m) / p
	if math.Abs(mean-want) > 0.1*want {
		t.Fatalf("empirical mean %g, want ~%g", mean, want)
	}
}

func TestNegativeBinomialU128Degenerate(t *testing.T) {
	if got := New(1).NegativeBinomialU128(0, 0.5); !got.IsZero() {
		t.Fatalf("m=0: got %v, want 0", got)
	}
	for _, fn := range []func(){
		func() { New(1).NegativeBinomialU128(-1, 0.5) },
		func() { New(1).NegativeBinomialU128(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
