package rng

import (
	"math"

	"repro/internal/u128"
)

// This file holds the 128-bit counterparts of the clock-scale samplers.
// With conf.MaxN = 10¹¹ the pair-interaction quantities (n², the productive
// weight W, thresholds uniform in [0, W), geometric jumps and
// negative-binomial spans at success probability w/n²) reach ~10²² ≈ 2⁷⁴,
// so their draws are u128.U128 values. The int64 samplers remain for
// quantities bounded by the population (agent indices, counts, trial
// budgets in trials).

// Uint128n returns a uniform value in [0, n). n must be nonzero.
//
// When n fits in 64 bits the draw delegates to Uint64n, consuming exactly
// the uniforms the pre-u128 simulator consumed — this is what keeps
// trajectories for populations below the old cap on the same raw stream.
// Wider n uses mask rejection: a candidate of exactly Len(n) bits is
// assembled from two raw outputs (high word first) and rejected until it
// falls below n. The candidate space is [0, 2^Len(n)) with n > 2^(Len(n)−1),
// so each round accepts with probability > 1/2 and the expected cost is
// fewer than two rounds.
func (r *Source) Uint128n(n u128.U128) u128.U128 {
	if n.Hi == 0 {
		if n.Lo == 0 {
			panic("rng: Uint128n called with n == 0")
		}
		return u128.FromU64(r.Uint64n(n.Lo))
	}
	shift := uint(128 - n.Len()) // 0..63: bits to discard from the high word
	for {
		v := u128.U128{Hi: r.Uint64() >> shift, Lo: r.Uint64()}
		if v.Less(n) {
			return v
		}
	}
}

// GeometricU128 returns the number of independent Bernoulli(p) trials up to
// and including the first success; the support is {1, 2, ...}. It requires
// p in (0, 1]. Unlike Geometric there is no 2⁵⁶ cap: the sample saturates
// at u128.Max, which is unreachable for any p >= 2⁻¹²⁸ — at the simulator's
// smallest probability, p = 1/MaxN² = 10⁻²², the distribution's essential
// support ends near 10²⁴ ≈ 2⁸⁰. One uniform is consumed, the same draw
// Geometric makes, so the two samplers are stream-interchangeable.
func (r *Source) GeometricU128(p float64) u128.U128 {
	if p >= 1 {
		return u128.U128{Lo: 1}
	}
	if p <= 0 {
		panic("rng: GeometricU128 called with p <= 0")
	}
	return r.geometricInvU128(1 / math.Log1p(-p))
}

// geometricInvU128 is GeometricU128 by inversion with the reciprocal log
// already computed, the u128 analogue of geometricInv: G = floor(log(1−U) ·
// invLogQ) + 1. The float64 result is exact until G exceeds 2⁵³ and within
// one ulp of the true inversion beyond it — indistinguishable from exact
// sampling, since adjacent support points up there differ by probability
// < 2⁻⁵³·p. FromFloat64 maps a NaN product (invLogQ = −Inf when p
// underflows) to saturation.
func (r *Source) geometricInvU128(invLogQ float64) u128.U128 {
	u := r.Float64()
	g := math.Floor(math.Log1p(-u)*invLogQ) + 1
	if g < 1 {
		return u128.U128{Lo: 1}
	}
	return u128.FromFloat64(g)
}

// NegativeBinomialU128 returns the number of independent Bernoulli(p) trials
// up to and including the m-th success, for m >= 0 and p in (0, 1]: the
// u128 analogue of NegativeBinomial, with the int64 clamp replaced by
// saturation at u128.Max. The method selection and the raw draws consumed
// are identical to NegativeBinomial's in every regime — exact CDF inversion
// over failures, a sum of m uncapped geometrics, or the normal
// approximation — so the two samplers are stream-interchangeable.
func (r *Source) NegativeBinomialU128(m int64, p float64) u128.U128 {
	switch {
	case m < 0:
		panic("rng: NegativeBinomialU128 called with m < 0")
	case m == 0:
		return u128.U128{}
	case p <= 0:
		panic("rng: NegativeBinomialU128 called with p <= 0")
	case p >= 1:
		return u128.From64(m)
	case m <= nbExactLimit:
		if float64(m)*(1-p)/p <= nbInvLimit {
			// The inversion walk's trial count m + F stays far below 2⁶³
			// in its admitted regime (m <= 256, E[F] <= 512 with an
			// exponentially bounded tail), so the int64 walk is reused
			// verbatim.
			return u128.From64(r.negativeBinomialInv(m, p))
		}
		var total u128.U128
		invLogQ := 1 / math.Log1p(-p)
		for i := int64(0); i < m; i++ {
			total = total.Add(r.geometricInvU128(invLogQ))
		}
		return total
	default:
		mf := float64(m)
		mean := mf / p
		std := math.Sqrt(mf*(1-p)) / p
		t := math.Round(mean + std*r.Normal())
		if t < mf {
			return u128.From64(m)
		}
		return u128.FromFloat64(t) // NaN and overflow saturate at Max
	}
}
