package experiment

import (
	"fmt"
	"io"
	"math"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/potential"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
)

// f1Undecided regenerates the undecided-count picture of Lemmas 1, 3, 4 and
// Observation 7: a trajectory of u(t) climbing to the band around the
// unstable equilibrium u* = n(k−1)/(2k−1), and band-violation counts across
// independent runs.
func f1Undecided() Experiment {
	return Experiment{
		ID:       "F1-undecided",
		Title:    "Undecided-count trajectory and concentration band",
		Artifact: "Lemmas 1, 3, 4; Observation 7 (equilibrium u*)",
		Run: func(p Params, w io.Writer) error {
			n := pick(p, int64(1<<13), int64(1<<14))
			k := 8
			cfg, err := conf.Uniform(n, k, 0)
			if err != nil {
				return err
			}

			// One traced trajectory.
			src := rng.New(p.Seed + 1)
			s, err := core.New(cfg, src, core.WithKernel(p.Kernel))
			if err != nil {
				return err
			}
			recU := trace.NewRecorder("u(t)", n/2)
			recMax := trace.NewRecorder("xmax(t)", n/2)
			res := s.RunObserved(core.NoBudget, func(sim *core.Simulator, ev core.Event) {
				_, xmax := sim.Max()
				recU.Observe(ev.Interactions, float64(sim.Undecided()))
				recMax.Observe(ev.Interactions, float64(xmax))
			})
			recU.Final(res.Interactions, float64(s.Undecided()))
			uStar := potential.EquilibriumUndecided(n, k)
			ref := &trace.Series{Name: fmt.Sprintf("u* = n(k-1)/(2k-1) = %.0f", uStar)}
			for _, x := range recU.Series.X {
				ref.Add(x, uStar)
			}
			plot, err := trace.RenderASCII(72, 18,
				trace.Downsample(recU.Series, 72),
				trace.Downsample(ref, 72),
				trace.Downsample(recMax.Series, 72))
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "Single run, n=%d k=%d (x axis: interactions):\n\n%s\n", n, k, plot); err != nil {
				return err
			}

			// Band-violation counts across trials. The Lemma 3 constant c
			// comes from the assumption k <= c·√n/log²n.
			cBand := float64(k) * math.Sqrt(math.Log(float64(n))*math.Log(float64(n))*math.Log(float64(n))*math.Log(float64(n))) / math.Sqrt(float64(n))
			if cBand < 1 {
				cBand = 1
			}
			upper := potential.UndecidedUpperBound(n, cBand)
			trials := p.trials(20)
			type bandObs struct {
				samples, upViol, loViol int64
			}
			outs := Collect(trials, p.Parallelism, p.Seed+2, func(i int, src *rng.Source) bandObs {
				var o bandObs
				s, err := core.New(cfg, src, core.WithKernel(p.Kernel))
				if err != nil {
					return o
				}
				inPhase2 := false
				s.RunObserved(core.NoBudget, func(sim *core.Simulator, _ core.Event) {
					_, xmax := sim.Max()
					u := sim.Undecided()
					if !inPhase2 && 2*u >= sim.N()-xmax {
						inPhase2 = true
					}
					o.samples++
					if float64(u) > upper {
						o.upViol++
					}
					if inPhase2 && float64(u) < potential.UndecidedLowerBound(sim.N(), xmax) {
						o.loViol++
					}
				})
				return o
			})
			var samples, up, lo int64
			for _, o := range outs {
				samples += o.samples
				up += o.upViol
				lo += o.loViol
			}
			tbl := NewTable(
				fmt.Sprintf("Band violations over %d runs (%d observed configurations):", trials, samples),
				"bound", "value at xmax=n/k", "violations")
			tbl.AddRowf("Lemma 3 upper: u ≤ n/2 − √(n ln n)/(5c)", upper, up)
			tbl.AddRowf("Lemma 4 lower: u ≥ (n−xmax)/2 − 8√(n ln n)",
				potential.UndecidedLowerBound(n, n/int64(k)), lo)
			if err := tbl.Fprint(w); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "\nReading: u(t) rises in Phase 1 toward the u* band and stays inside\n"+
				"it (0 violations expected) until the endgame drains it to 0.\n")
			return err
		},
	}
}

// f2GapGrowth regenerates Lemma 7: from a perfect tie, the support gap of
// the two leading opinions reaches 4√n quickly (anti-concentration), then
// grows multiplicatively to the significance threshold.
func f2GapGrowth() Experiment {
	return Experiment{
		ID:       "F2-gap-growth",
		Title:    "Bias creation from a tie and multiplicative gap growth",
		Artifact: "Lemma 7 (anti-concentration + gambler's ruin)",
		Run: func(p Params, w io.Writer) error {
			n := pick(p, int64(1<<13), int64(1<<14))
			trials := p.trials(30)
			cfg, err := conf.Uniform(n, 2, 0) // perfect tie between 2 opinions
			if err != nil {
				return err
			}
			sqrtN := math.Sqrt(float64(n))
			target1 := 4 * sqrtN
			target2 := 4 * math.Sqrt(float64(n)*math.Log(float64(n)))

			type gapObs struct {
				t1, t2 float64 // interactions to reach the two targets
				ok     bool
			}
			gap := func(s *core.Simulator) float64 {
				return math.Abs(float64(s.Support(0) - s.Support(1)))
			}
			outs := Collect(trials, p.Parallelism, p.Seed+3, func(i int, src *rng.Source) gapObs {
				s, err := core.New(cfg, src, core.WithKernel(p.Kernel))
				if err != nil {
					return gapObs{}
				}
				r1 := s.RunUntil(core.NoBudget, func(sim *core.Simulator) bool { return gap(sim) >= target1 })
				t1 := r1.Interactions.Float64()
				r2 := s.RunUntil(core.NoBudget, func(sim *core.Simulator) bool { return gap(sim) >= target2 })
				return gapObs{t1: t1, t2: r2.Interactions.Float64(), ok: true}
			})
			var t1s, t2s []float64
			for _, o := range outs {
				if o.ok {
					t1s = append(t1s, o.t1/float64(n))
					t2s = append(t2s, (o.t2-o.t1)/float64(n))
				}
			}
			s1, err := stats.Summarize(t1s)
			if err != nil {
				return err
			}
			s2, err := stats.Summarize(t2s)
			if err != nil {
				return err
			}
			tbl := NewTable(
				fmt.Sprintf("Gap growth from a tie, n=%d k=2, %d trials (times in units of n interactions):", n, trials),
				"milestone", "mean", "median", "p90", "Lemma 7 window")
			tbl.AddRowf("|x1-x2| reaches 4√n", s1.Mean, s1.Median, s1.P90,
				"O(n²/xmax)/n = O(n/xmax) ≈ 2 per attempt")
			tbl.AddRowf("then reaches 4√(n ln n)", s2.Mean, s2.Median, s2.P90,
				"O(log log n) successful doublings")
			if err := tbl.Fprint(w); err != nil {
				return err
			}

			// One gap trajectory for the figure.
			src := rng.New(p.Seed + 4)
			s, err := core.New(cfg, src, core.WithKernel(p.Kernel))
			if err != nil {
				return err
			}
			rec := trace.NewRecorder("|x1-x2|", n/4)
			s.RunUntil(core.NoBudget, func(sim *core.Simulator) bool {
				rec.Observe(sim.Interactions(), gap(sim))
				return gap(sim) >= target2
			})
			refSeries := &trace.Series{Name: fmt.Sprintf("4√n = %.0f", target1)}
			for _, x := range rec.Series.X {
				refSeries.Add(x, target1)
			}
			plot, err := trace.RenderASCII(72, 14,
				trace.Downsample(rec.Series, 72), trace.Downsample(refSeries, 72))
			if err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "\nOne trajectory of the top-two gap (x axis: interactions):\n\n%s\n", plot)
			return err
		},
	}
}
