package experiment

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/pop"
	"repro/internal/rng"
	"repro/internal/stats"
)

// a1Skip is the geometric-skipping ablation: both kernels must produce the
// same consensus-time distribution, and skipping must be faster in wall
// clock (increasingly so as the endgame dominates).
func a1Skip() Experiment {
	return Experiment{
		ID:       "A1-skip",
		Title:    "Geometric skipping vs per-interaction kernel",
		Artifact: "DESIGN.md ablation (simulator design)",
		Run: func(p Params, w io.Writer) error {
			n := pick(p, int64(1<<12), int64(1<<13))
			trials := p.trials(20)
			// Two workloads: a no-bias full run, where a constant fraction
			// of interactions is productive and skipping can only break
			// even; and an endgame-dominated run from a 2n/3 majority,
			// where the productive fraction vanishes and skipping wins.
			noBias, err := conf.Uniform(n, 8, 0)
			if err != nil {
				return err
			}
			// The endgame workload is Θ(n log n) interactions but only
			// Θ(n) productive events, so the skip advantage grows with n;
			// use a larger population to make it visible above fixed
			// per-run overheads.
			nEnd := 8 * n
			endgame, err := conf.FromSupport([]int64{2 * (nEnd / 3), nEnd - 2*(nEnd/3)}, 0)
			if err != nil {
				return err
			}
			measure := func(cfg *conf.Config, skip bool, seed uint64) (stats.Summary, time.Duration, error) {
				start := time.Now()
				times := Collect(trials, 1 /* serialize for fair timing */, seed,
					func(i int, src *rng.Source) float64 {
						s, err := core.New(cfg, src, core.WithSkipping(skip))
						if err != nil {
							return math.NaN()
						}
						res := s.Run(core.NoBudget)
						return res.Interactions.Float64()
					})
				elapsed := time.Since(start)
				s, err := stats.Summarize(times)
				return s, elapsed, err
			}
			tbl := NewTable(
				fmt.Sprintf("n=%d, %d trials per cell:", n, trials),
				"workload", "kernel", "mean T", "std", "wall clock", "agreement", "speedup")
			for _, wl := range []struct {
				name string
				cfg  *conf.Config
				off  uint64
			}{
				{fmt.Sprintf("no-bias k=8 n=%d", n), noBias, 81},
				{fmt.Sprintf("endgame x1=2n/3 k=2 n=%d", nEnd), endgame, 91},
			} {
				sSkip, dSkip, err := measure(wl.cfg, true, p.Seed+wl.off)
				if err != nil {
					return err
				}
				sExact, dExact, err := measure(wl.cfg, false, p.Seed+wl.off+1)
				if err != nil {
					return err
				}
				se := math.Sqrt(sSkip.Std*sSkip.Std/float64(trials) + sExact.Std*sExact.Std/float64(trials))
				z := math.Abs(sSkip.Mean-sExact.Mean) / se
				tbl.AddRowf(wl.name, "skipping", sSkip.Mean, sSkip.Std,
					dSkip.Round(time.Millisecond).String(),
					fmt.Sprintf("Δ=%.2f se", z),
					fmt.Sprintf("%.1fx", float64(dExact)/float64(dSkip)))
				tbl.AddRowf("", "per-interaction", sExact.Mean, sExact.Std,
					dExact.Round(time.Millisecond).String(), "", "")
			}
			if err := tbl.Fprint(w); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "\nReading: both kernels sample the same law (mean differences within\n"+
				"a few standard errors). Skipping pays off exactly where unproductive\n"+
				"interactions dominate — the Phase 5 endgame — and breaks even on\n"+
				"workloads whose productive fraction is Θ(1).\n")
			return err
		},
	}
}

// a2Engine cross-validates the aggregate configuration-level simulator
// against the agent-level ground-truth engine.
func a2Engine() Experiment {
	return Experiment{
		ID:       "A2-agent-vs-aggregate",
		Title:    "Aggregate kernel vs agent-level engine",
		Artifact: "DESIGN.md ablation (simulator correctness)",
		Run: func(p Params, w io.Writer) error {
			n := pick(p, int64(1<<10), int64(1<<11))
			k := 4
			trials := p.trials(30)
			cfg, err := conf.WithMultiplicativeBias(n, k, 1.5, 0)
			if err != nil {
				return err
			}
			agg := CollectArena(trials, p.Parallelism, p.Seed+83, func(i int, src *rng.Source, a *Arena) float64 {
				t, _, err := consensusTime(a, cfg, src, core.NoBudget, p.Kernel)
				if err != nil {
					return math.NaN()
				}
				return t.Float64()
			})
			agent := Collect(trials, p.Parallelism, p.Seed+84, func(i int, src *rng.Source) float64 {
				e, err := pop.NewEngine(cfg, pop.USD{Opinions: k}, pop.UniformScheduler{Src: src})
				if err != nil {
					return math.NaN()
				}
				res, err := e.Run(0)
				if err != nil || !res.Consensus {
					return math.NaN()
				}
				return float64(res.Interactions)
			})
			sAgg, err := stats.Summarize(agg)
			if err != nil {
				return err
			}
			sAgent, err := stats.Summarize(agent)
			if err != nil {
				return err
			}
			tbl := NewTable(
				fmt.Sprintf("Multiplicative bias 1.5, n=%d k=%d, %d trials per engine:", n, k, trials),
				"engine", "mean T", "std", "median")
			tbl.AddRowf("aggregate (internal/core)", sAgg.Mean, sAgg.Std, sAgg.Median)
			tbl.AddRowf("agent-level (internal/pop)", sAgent.Mean, sAgent.Std, sAgent.Median)
			if err := tbl.Fprint(w); err != nil {
				return err
			}
			se := math.Sqrt(sAgg.Std*sAgg.Std/float64(trials) + sAgent.Std*sAgent.Std/float64(trials))
			_, err = fmt.Fprintf(w, "\nMean difference: %.1f (%.2f standard errors — same process expected)\n",
				sAgg.Mean-sAgent.Mean, math.Abs(sAgg.Mean-sAgent.Mean)/se)
			return err
		},
	}
}

// a3SelfInteraction quantifies the effect of the scheduling convention: the
// paper allows self-interactions; forbidding them perturbs each transition
// probability by O(1/n) and must not change the asymptotics.
func a3SelfInteraction() Experiment {
	return Experiment{
		ID:       "A3-self-interaction",
		Title:    "Scheduler with vs without self-interactions",
		Artifact: "DESIGN.md ablation (model convention)",
		Run: func(p Params, w io.Writer) error {
			n := pick(p, int64(1<<10), int64(1<<11))
			k := 4
			trials := p.trials(30)
			cfg, err := conf.WithMultiplicativeBias(n, k, 1.5, 0)
			if err != nil {
				return err
			}
			run := func(noSelf bool, seed uint64) []float64 {
				return Collect(trials, p.Parallelism, seed, func(i int, src *rng.Source) float64 {
					var sched pop.Scheduler
					if noSelf {
						sched = pop.NoSelfScheduler{Src: src}
					} else {
						sched = pop.UniformScheduler{Src: src}
					}
					e, err := pop.NewEngine(cfg, pop.USD{Opinions: k}, sched)
					if err != nil {
						return math.NaN()
					}
					res, err := e.Run(0)
					if err != nil || !res.Consensus {
						return math.NaN()
					}
					return float64(res.Interactions)
				})
			}
			sWith, err := stats.Summarize(run(false, p.Seed+85))
			if err != nil {
				return err
			}
			sWithout, err := stats.Summarize(run(true, p.Seed+86))
			if err != nil {
				return err
			}
			tbl := NewTable(
				fmt.Sprintf("Multiplicative bias 1.5, n=%d k=%d, %d trials per scheduler:", n, k, trials),
				"scheduler", "mean T", "std", "median")
			tbl.AddRowf("with self-interactions (paper)", sWith.Mean, sWith.Std, sWith.Median)
			tbl.AddRowf("without self-interactions", sWithout.Mean, sWithout.Std, sWithout.Median)
			if err := tbl.Fprint(w); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "\nRelative mean difference: %.2f%% (an O(1/n) scheduling perturbation)\n",
				100*(sWithout.Mean-sWith.Mean)/sWith.Mean)
			return err
		},
	}
}
