package experiment

import (
	"fmt"
	"io"
	"math"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/u128"
)

// timeStats runs `trials` USD simulations from cfg and returns the summary
// of consensus interactions and the fraction won by opinion 0.
func timeStats(p Params, seed uint64, cfg *conf.Config, trials int, budget u128.U128) (stats.Summary, float64, int, error) {
	type outcome struct {
		t   float64
		won bool
		ok  bool
	}
	outs := CollectArena(trials, p.Parallelism, seed, func(i int, src *rng.Source, a *Arena) outcome {
		t, winner, err := consensusTime(a, cfg, src, budget, p.Kernel)
		if err != nil {
			return outcome{}
		}
		return outcome{t: t.Float64(), won: winner == 0, ok: true}
	})
	var times []float64
	wins, completed := 0, 0
	for _, o := range outs {
		if !o.ok {
			continue
		}
		completed++
		times = append(times, o.t)
		if o.won {
			wins++
		}
	}
	if completed == 0 {
		return stats.Summary{}, 0, 0, fmt.Errorf("experiment: no trial reached consensus")
	}
	s, err := stats.Summarize(times)
	if err != nil {
		return stats.Summary{}, 0, 0, err
	}
	return s, float64(wins) / float64(completed), completed, nil
}

// t2Multiplicative regenerates Theorem 2(1): with an initial multiplicative
// bias of 2, consensus on the plurality within O(n log n + n²/x₁(0))
// interactions.
func t2Multiplicative() Experiment {
	return Experiment{
		ID:       "T2-multiplicative",
		Title:    "Convergence under multiplicative bias",
		Artifact: "Theorem 2(1): O(n log n + n²/x1(0)) interactions",
		Run: func(p Params, w io.Writer) error {
			trials := p.trials(12)
			ratio := 2.0
			bound := func(n, x1 int64) float64 {
				return float64(n)*math.Log(float64(n)) + float64(n)*float64(n)/float64(x1)
			}
			tbl := NewTable(
				fmt.Sprintf("Multiplicative bias %.1f, %d trials per cell:", ratio, trials),
				"n", "k", "x1(0)", "mean T", "T/(n ln n + n²/x1)", "plurality wins")
			add := func(n int64, k int) error {
				cfg, err := conf.WithMultiplicativeBias(n, k, ratio, 0)
				if err != nil {
					return err
				}
				s, winRate, done, err := timeStats(p, p.Seed+uint64(n)*31+uint64(k), cfg, trials, core.NoBudget)
				if err != nil {
					return err
				}
				tbl.AddRowf(n, k, cfg.Support[0], s.Mean, s.Mean/bound(n, cfg.Support[0]),
					fmt.Sprintf("%.0f%% (%d runs)", 100*winRate, done))
				return nil
			}
			for _, n := range pick(p, []int64{1 << 12, 1 << 13}, []int64{1 << 12, 1 << 14, 1 << 16}) {
				if err := add(n, 8); err != nil {
					return err
				}
			}
			for _, k := range pick(p, []int{2, 16}, []int{2, 4, 16, 32}) {
				if err := add(pick(p, int64(1<<13), int64(1<<14)), k); err != nil {
					return err
				}
			}
			if err := tbl.Fprint(w); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w, "\nReading: the normalized column should stay bounded across n and k,\n"+
				"and the plurality should win every run.\n")
			return err
		},
	}
}

// t3Additive regenerates Theorem 2(2): with an initial additive bias of
// Ω(√(n log n)), plurality consensus within O(n² log n/x₁(0)) interactions.
func t3Additive() Experiment {
	return Experiment{
		ID:       "T3-additive",
		Title:    "Convergence under additive bias",
		Artifact: "Theorem 2(2): O(n² log n/x1(0)) = O(k n log n) interactions",
		Run: func(p Params, w io.Writer) error {
			trials := p.trials(12)
			biasMult := 4.0
			tbl := NewTable(
				fmt.Sprintf("Additive bias %.0f·√(n ln n), %d trials per cell:", biasMult, trials),
				"n", "k", "bias", "mean T", "T·x1(0)/(n² ln n)", "plurality wins")
			add := func(n int64, k int) error {
				bias := int64(biasMult * math.Sqrt(float64(n)*math.Log(float64(n))))
				cfg, err := conf.WithAdditiveBias(n, k, bias, 0)
				if err != nil {
					return err
				}
				s, winRate, done, err := timeStats(p, p.Seed+uint64(n)*37+uint64(k), cfg, trials, core.NoBudget)
				if err != nil {
					return err
				}
				bound := float64(n) * float64(n) * math.Log(float64(n)) / float64(cfg.Support[0])
				tbl.AddRowf(n, k, bias, s.Mean, s.Mean/bound,
					fmt.Sprintf("%.0f%% (%d runs)", 100*winRate, done))
				return nil
			}
			for _, n := range pick(p, []int64{1 << 12, 1 << 13}, []int64{1 << 12, 1 << 14, 1 << 16}) {
				if err := add(n, 8); err != nil {
					return err
				}
			}
			for _, k := range pick(p, []int{2, 16}, []int{2, 4, 16, 32}) {
				if err := add(pick(p, int64(1<<13), int64(1<<14)), k); err != nil {
					return err
				}
			}
			if err := tbl.Fprint(w); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w, "\nReading: with a Θ(√(n log n)) additive bias the plurality should win\n"+
				"(approximate majority), in time whose normalized column stays bounded.\n")
			return err
		},
	}
}

// t4NoBias regenerates Theorem 2's no-bias statement: from an exactly
// uniform configuration the process still reaches consensus within
// O(k n log n) interactions, on some significant opinion.
func t4NoBias() Experiment {
	return Experiment{
		ID:       "T4-nobias",
		Title:    "Convergence without initial bias",
		Artifact: "Theorem 2 (no-bias case): consensus within O(k n log n)",
		Run: func(p Params, w io.Writer) error {
			trials := p.trials(24)
			k := 8
			tbl := NewTable(
				fmt.Sprintf("Exactly uniform start, k=%d, %d trials per cell:", k, trials),
				"n", "consensus", "mean T", "T/(k n ln n)", "winner χ² (df=7)", "winner=leaderAtT2")
			for _, n := range pick(p, []int64{1 << 12, 1 << 13}, []int64{1 << 12, 1 << 14, 1 << 16}) {
				cfg, err := conf.Uniform(n, k, 0) // k | n for all grid points
				if err != nil {
					return err
				}
				runs := CollectArena(trials, p.Parallelism, p.Seed+uint64(n)*41, func(i int, src *rng.Source, a *Arena) USDRun {
					r, err := RunTracked(a, cfg, src, core.NoBudget, 0, p.Kernel)
					if err != nil {
						return USDRun{}
					}
					return r
				})
				winnerCounts := make([]int64, k)
				var times []float64
				agree := 0
				completed := 0
				for _, r := range runs {
					if r.Result.Winner < 0 {
						continue
					}
					completed++
					winnerCounts[r.Result.Winner]++
					times = append(times, r.Result.Interactions.Float64())
					if r.Phases.LeaderAtT2 == r.Result.Winner {
						agree++
					}
				}
				if completed == 0 {
					return fmt.Errorf("no consensus for n=%d", n)
				}
				s, err := stats.Summarize(times)
				if err != nil {
					return err
				}
				chi2, _, err := stats.ChiSquareUniform(winnerCounts)
				if err != nil {
					return err
				}
				bound := float64(k) * float64(n) * math.Log(float64(n))
				tbl.AddRowf(n,
					fmt.Sprintf("%d/%d", completed, trials),
					s.Mean, s.Mean/bound, chi2,
					fmt.Sprintf("%d/%d", agree, completed))
			}
			if err := tbl.Fprint(w); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w, "\nReading: every run must converge; winners spread over opinions\n"+
				"(χ² not extreme vs 99.9%% critical value 24.3 for df=7); the unique\n"+
				"significant opinion at T2 should already be the eventual winner.\n")
			return err
		},
	}
}

// f5KScaling regenerates the headline O(k·n log n): at fixed n, the no-bias
// consensus time normalized by n·ln n should grow linearly in k.
func f5KScaling() Experiment {
	return Experiment{
		ID:       "F5-k-scaling",
		Title:    "Linear-in-k scaling of no-bias consensus time",
		Artifact: "Theorem 2: O(k·n log n) interactions",
		Run: func(p Params, w io.Writer) error {
			n := pick(p, int64(1<<13), int64(1<<15))
			trials := p.trials(12)
			ks := pick(p, []int{2, 4, 8, 16}, []int{2, 4, 8, 16, 32, 64})
			tbl := NewTable(
				fmt.Sprintf("No-bias consensus time at n=%d, %d trials per k:", n, trials),
				"k", "mean T", "T/(n ln n)", "T/(k n ln n)")
			var xs, ys []float64
			lnN := math.Log(float64(n))
			for _, k := range ks {
				cfg, err := conf.Uniform(n, k, 0)
				if err != nil {
					return err
				}
				s, _, _, err := timeStats(p, p.Seed+uint64(k)*43, cfg, trials, core.NoBudget)
				if err != nil {
					return err
				}
				normalized := s.Mean / (float64(n) * lnN)
				tbl.AddRowf(k, s.Mean, normalized, normalized/float64(k))
				xs = append(xs, float64(k))
				ys = append(ys, normalized)
			}
			if err := tbl.Fprint(w); err != nil {
				return err
			}
			slope, intercept, r2, err := stats.LinearFit(xs, ys)
			if err != nil {
				return err
			}
			a, b, pr2, err := stats.PowerFit(xs, ys)
			if err != nil {
				return err
			}
			_, err = fmt.Fprintf(w,
				"\nLinear fit: T/(n ln n) = %.3f·k + %.3f (R²=%.4f)\n"+
					"Power fit:  T/(n ln n) = %.3f·k^%.3f (R²=%.4f)\n"+
					"Reading: time grows with k and the exponent stays ≤ 1, consistent\n"+
					"with the O(k·n log n) upper bound. A measured exponent below 1 means\n"+
					"the bound is conservative in k at these scales — note the theorem's\n"+
					"own range k ≤ c·√n/log²n is tiny for laptop n, so large-k cells sit\n"+
					"outside it (see also the X2-large-k extension experiment).\n",
				slope, intercept, r2, a, b, pr2)
			return err
		},
	}
}
