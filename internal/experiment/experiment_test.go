package experiment

import (
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/u128"
)

func TestTableFormatting(t *testing.T) {
	tbl := NewTable("Title:", "a", "bbbb", "c")
	tbl.AddRow("1", "2", "3")
	tbl.AddRowf(10, 2.5, "x")
	out := tbl.String()
	if !strings.Contains(out, "Title:") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "bbbb") {
		t.Fatalf("missing header:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestTableRaggedRows(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow("1")
	tbl.AddRow("1", "2", "3")
	out := tbl.String()
	if !strings.Contains(out, "3") {
		t.Fatalf("extra cell dropped:\n%s", out)
	}
}

func TestCollectOrderAndDeterminism(t *testing.T) {
	fn := func(i int, src *rng.Source) uint64 {
		return uint64(i)*1e9 + src.Uint64()%1e9
	}
	a := Collect(50, 8, 7, fn)
	b := Collect(50, 2, 7, fn) // different parallelism, same seed
	for i := range a {
		if a[i]/1e9 != uint64(i) {
			t.Fatalf("output %d out of order", i)
		}
		if a[i] != b[i] {
			t.Fatalf("parallelism changed trial %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := Collect(50, 8, 8, fn)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds produced %d/50 identical trials", same)
	}
}

func TestCollectEdgeCases(t *testing.T) {
	if out := Collect(0, 4, 1, func(int, *rng.Source) int { return 1 }); out != nil {
		t.Fatal("zero trials must return nil")
	}
	var calls atomic.Int64
	out := Collect(3, 100, 1, func(i int, _ *rng.Source) int {
		calls.Add(1)
		return i
	})
	if calls.Load() != 3 || len(out) != 3 {
		t.Fatalf("calls=%d len=%d", calls.Load(), len(out))
	}
}

func TestRunTracked(t *testing.T) {
	cfg, err := conf.Uniform(1000, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := runTracked(cfg, rng.New(5), core.NoBudget, 0, core.KernelExact)
	if err != nil {
		t.Fatal(err)
	}
	if r.Result.Outcome != core.OutcomeConsensus {
		t.Fatalf("outcome %v", r.Result.Outcome)
	}
	for p := 1; p <= 5; p++ {
		if !r.Phases.Reached(p) {
			t.Fatalf("phase %d missing: %+v", p, r.Phases)
		}
	}
	if r.Phases.End[4] != r.Result.Interactions {
		t.Fatalf("T5 = %v, consensus at %v", r.Phases.End[4], r.Result.Interactions)
	}
	if r.InitialLeader != 0 {
		t.Fatalf("initial leader = %d", r.InitialLeader)
	}
}

func TestConsensusTimeBudgetError(t *testing.T) {
	cfg, err := conf.Uniform(10000, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := consensusTime(nil, cfg, rng.New(1), u128.From64(10), core.KernelExact); err == nil {
		t.Fatal("budget exhaustion not reported")
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 26 {
		t.Fatalf("registry has %d experiments, want 26", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Artifact == "" || e.Run == nil {
			t.Fatalf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	wantIDs := []string{
		"T1-phases", "T2-multiplicative", "T3-additive", "T4-nobias",
		"T5-baselines", "T6-phase1-preservation",
		"F1-undecided", "F2-gap-growth", "F3-majority-threshold",
		"F4-model-compare", "F5-k-scaling", "F6-endgame-coupling", "F7-fluid-limit",
		"A1-skip", "A2-agent-vs-aggregate", "A3-self-interaction",
		"X1-synchronized", "X2-large-k", "X3-exact-validation",
		"X4-scheduler-robustness", "X5-undecided-start",
		"K1-kernel-agreement", "K2-n-scaling", "K3-many-opinions",
		"K4-lower-bound", "K5-variants",
	}
	for _, id := range wantIDs {
		if _, ok := Find(id); !ok {
			t.Fatalf("experiment %s not found", id)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("bogus id found")
	}
}

// tinyParams makes every experiment run at its smallest size.
func tinyParams() Params {
	return Params{Quick: true, Seed: 1, Trials: 2}
}

func TestExperimentsSmokeFast(t *testing.T) {
	// The cheapest experiments run even in -short mode.
	for _, id := range []string{"A2-agent-vs-aggregate", "A3-self-interaction", "F6-endgame-coupling"} {
		e, ok := Find(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		var sb strings.Builder
		if err := e.Run(tinyParams(), &sb); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(sb.String(), "-----") {
			t.Fatalf("%s produced no table:\n%s", id, sb.String())
		}
	}
}

func TestExperimentsSmokeAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment smoke test skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			var sb strings.Builder
			if err := e.Run(tinyParams(), &sb); err != nil {
				t.Fatalf("%s: %v\noutput so far:\n%s", e.ID, err, sb.String())
			}
			if len(sb.String()) < 50 {
				t.Fatalf("%s produced almost no output: %q", e.ID, sb.String())
			}
		})
	}
}

func TestParamsAdaptiveHelpers(t *testing.T) {
	if got := (Params{}).relWidth(); got != DefaultRelWidth {
		t.Fatalf("default relWidth = %v", got)
	}
	if got := (Params{RelWidth: 0.02}).relWidth(); got != 0.02 {
		t.Fatalf("override relWidth = %v", got)
	}
	if got := (Params{}).maxTrials(24); got != 24 {
		t.Fatalf("default maxTrials = %d", got)
	}
	if got := (Params{Quick: true}).maxTrials(24); got != 12 {
		t.Fatalf("quick maxTrials = %d", got)
	}
	if got := (Params{MaxTrials: 7}).maxTrials(24); got != 7 {
		t.Fatalf("MaxTrials override = %d", got)
	}
	if got := (Params{Trials: 2, MaxTrials: 7}).maxTrials(24); got != 2 {
		t.Fatalf("Trials override = %d", got)
	}
	// The consensus rule respects the minimum-trial guard, clamped to the cap.
	var o stats.Online
	o.Add(100)
	o.Add(100)
	if (Params{}).consensusRule(24).Stop(&o) {
		t.Fatal("rule fired below MinAdaptiveTrials")
	}
	if !(Params{}).consensusRule(2).Stop(&o) {
		t.Fatal("rule must clamp the minimum to a tiny cap")
	}
}

func TestParamsTrials(t *testing.T) {
	if got := (Params{}).trials(20); got != 20 {
		t.Fatalf("default trials = %d", got)
	}
	if got := (Params{Quick: true}).trials(20); got != 10 {
		t.Fatalf("quick trials = %d", got)
	}
	if got := (Params{Quick: true}).trials(8); got != 8 {
		t.Fatalf("quick small trials = %d", got)
	}
	if got := (Params{Trials: 3}).trials(20); got != 3 {
		t.Fatalf("override trials = %d", got)
	}
}
