package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/phase"
	"repro/internal/rng"
)

// Collect runs fn for every trial index in [0, trials) across a bounded
// worker pool and returns the outputs in trial order. Each trial receives
// an independent random stream derived deterministically from (seed, i), so
// results do not depend on scheduling.
func Collect[T any](trials, parallelism int, seed uint64, fn func(i int, src *rng.Source) T) []T {
	if trials <= 0 {
		return nil
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > trials {
		parallelism = trials
	}
	out := make([]T, trials)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = fn(i, rng.New(rng.Derive(seed, uint64(i))))
			}
		}()
	}
	for i := 0; i < trials; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// USDRun is the outcome of one tracked USD run.
type USDRun struct {
	// Result is the simulation result.
	Result core.Result
	// Phases records the five phase end times.
	Phases phase.Times
	// InitialLeader is the opinion with the largest initial support.
	InitialLeader int
}

// runTracked simulates the USD from c to consensus (or budget) with phase
// tracking under the given stepping kernel. checkEvery controls how often
// the O(k) phase conditions are evaluated; 0 picks a resolution-preserving
// default — per-interval for the exact kernel, per-window for a batched
// kernel (whose observations already cover many events each).
func runTracked(c *conf.Config, src *rng.Source, budget int64, checkEvery int, kern core.Kernel) (USDRun, error) {
	if checkEvery <= 0 {
		checkEvery = phase.CheckIntervalFor(c.N(), kern)
	}
	leader, _ := c.Max()
	s, err := core.New(c, src, core.WithKernel(kern))
	if err != nil {
		return USDRun{}, err
	}
	tr := phase.NewTracker(phase.WithCheckInterval(checkEvery))
	tr.ObserveNow(s)
	res := s.RunWatched(budget, tr)
	// Force a final check so interval skipping cannot miss phase ends that
	// occurred in the last few events.
	tr.ObserveNow(s)
	return USDRun{Result: res, Phases: tr.Times(), InitialLeader: leader}, nil
}

// consensusTime runs the USD from c to consensus under the given kernel and
// returns the interaction count. It fails if the budget is exhausted first.
func consensusTime(c *conf.Config, src *rng.Source, budget int64, kern core.Kernel) (int64, int, error) {
	s, err := core.New(c, src, core.WithKernel(kern))
	if err != nil {
		return 0, -1, err
	}
	res := s.Run(budget)
	if res.Outcome != core.OutcomeConsensus {
		return res.Interactions, -1, fmt.Errorf("experiment: no consensus within %d interactions (outcome %v)", budget, res.Outcome)
	}
	return res.Interactions, res.Winner, nil
}
