package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/phase"
	"repro/internal/rng"
	"repro/internal/u128"
)

// The trial engine runs Monte-Carlo trials across a bounded worker pool.
// Each worker owns an Arena — a simulator, a phase tracker, and a
// randomness source that are re-seeded in place between trials — so
// fleet-scale sweeps pay the allocation cost of core.New once per worker
// instead of once per trial. Every trial draws its randomness from an
// independent stream derived deterministically from (seed, index), and
// core.Simulator.Reset re-initializes state exhaustively, so the outputs
// are byte-identical at every parallelism level (see the determinism test).

// Arena is the per-worker reusable state of the trial engine. Trial
// callbacks may use its Simulator and Tracker helpers instead of core.New
// and phase.NewTracker to run allocation-free after the first trial; the
// zero value is ready to use. An Arena must not be shared between
// goroutines.
type Arena struct {
	src     rng.Source
	sim     *core.Simulator
	tracker *phase.Tracker
}

// source re-seeds the arena's randomness source in place for trial i of the
// stream family seed; the state is exactly rng.New(rng.Derive(seed, i)).
func (a *Arena) source(seed uint64, i int) *rng.Source {
	a.src.Reseed(rng.Derive(seed, uint64(i)))
	return &a.src
}

// Simulator returns the arena's simulator re-initialized to configuration c
// and source src with the given options applied. The first call constructs
// it; later calls reuse its Fenwick tree and batch scratch via core.Reset,
// re-applying the options, so trials may vary configuration and options
// freely within one engine invocation.
func (a *Arena) Simulator(c *conf.Config, src *rng.Source, opts ...core.Option) (*core.Simulator, error) {
	if a.sim == nil {
		sim, err := core.New(c, src, opts...)
		if err != nil {
			return nil, err
		}
		a.sim = sim
		return sim, nil
	}
	if err := a.sim.Reset(c, src, opts...); err != nil {
		return nil, err
	}
	return a.sim, nil
}

// Tracker returns the arena's phase tracker reset for a new run with the
// given options applied, keeping only its allocated scratch across trials.
func (a *Arena) Tracker(opts ...phase.Option) *phase.Tracker {
	if a.tracker == nil {
		a.tracker = phase.NewTracker(opts...)
		return a.tracker
	}
	a.tracker.Reset(opts...)
	return a.tracker
}

// clampParallelism resolves the worker count.
func clampParallelism(trials, parallelism int) int {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > trials {
		parallelism = trials
	}
	return parallelism
}

// Collect runs fn for every trial index in [0, trials) across the worker
// pool and returns the outputs in trial order. Each trial receives an
// independent random stream derived deterministically from (seed, i), so
// results do not depend on scheduling or parallelism. The source is owned
// by the engine and must not be retained past the callback.
func Collect[T any](trials, parallelism int, seed uint64, fn func(i int, src *rng.Source) T) []T {
	return CollectArena(trials, parallelism, seed, func(i int, src *rng.Source, _ *Arena) T {
		return fn(i, src)
	})
}

// CollectArena is Collect with access to the worker's Arena, so trial
// bodies can reuse the worker's simulator and tracker across trials. The
// arena (and everything obtained from it) must not be retained past the
// callback.
func CollectArena[T any](trials, parallelism int, seed uint64, fn func(i int, src *rng.Source, a *Arena) T) []T {
	if trials <= 0 {
		return nil
	}
	parallelism = clampParallelism(trials, parallelism)
	out := make([]T, trials)
	if parallelism == 1 {
		var a Arena
		for i := 0; i < trials; i++ {
			out[i] = fn(i, a.source(seed, i), &a)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var a Arena
			for i := range next {
				out[i] = fn(i, a.source(seed, i), &a)
			}
		}()
	}
	for i := 0; i < trials; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// Stream runs fn for every trial index in [0, trials) across the worker
// pool and delivers each output to sink exactly once, in trial-index order,
// on the calling goroutine. Unlike Collect it never materializes the full
// result slice: at most O(parallelism) outputs are in flight (a trial is
// dispatched only after trial i−window has been consumed), so million-trial
// sweeps can fold into online aggregators (stats.Online, stats.P2) in
// constant memory. In-order delivery makes order-sensitive floating-point
// aggregation byte-identical at every parallelism level.
func Stream[T any](trials, parallelism int, seed uint64, fn func(i int, src *rng.Source, a *Arena) T, sink func(i int, v T)) {
	streamIndexed(trials, parallelism, seed, func(pos int) int { return pos }, fn, sink)
}

// StreamIndices is Stream over an explicit list of global trial indices:
// the trial at position j runs index indices[j] and draws its randomness
// from rng.Derive(seed, indices[j]) — exactly the stream it would receive
// in a full [0, trials) run — and results are delivered to sink in slice
// order, tagged with the global index. It is the shard entry point of the
// distributed engine (internal/dist): a shard owning every S-th index
// reproduces, trial for trial, the work a single-process run would do for
// those indices, which is what makes coordinator folds byte-identical to
// in-process runs at every shard count.
func StreamIndices[T any](indices []int, parallelism int, seed uint64, fn func(i int, src *rng.Source, a *Arena) T, sink func(i int, v T)) {
	streamIndexed(len(indices), parallelism, seed, func(pos int) int { return indices[pos] }, fn, sink)
}

// streamIndexed is the shared worker-pool core of Stream and StreamIndices:
// count trials whose global index is index(pos), dispatched across the pool
// and delivered in position order.
func streamIndexed[T any](count, parallelism int, seed uint64, index func(pos int) int, fn func(i int, src *rng.Source, a *Arena) T, sink func(i int, v T)) {
	if count <= 0 {
		return
	}
	parallelism = clampParallelism(count, parallelism)
	if parallelism == 1 {
		var a Arena
		for pos := 0; pos < count; pos++ {
			i := index(pos)
			sink(i, fn(i, a.source(seed, i), &a))
		}
		return
	}

	type slot struct {
		pos int
		v   T
	}
	// The dispatch window caps how far ahead of the sink trials may run,
	// bounding both the reorder buffer and the number of buffered results.
	window := parallelism * 4
	tickets := make(chan struct{}, window)
	next := make(chan int)
	results := make(chan slot, window)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var a Arena
			for pos := range next {
				i := index(pos)
				results <- slot{pos, fn(i, a.source(seed, i), &a)}
			}
		}()
	}
	go func() {
		for pos := 0; pos < count; pos++ {
			tickets <- struct{}{}
			next <- pos
		}
		close(next)
		wg.Wait()
		close(results)
	}()

	pending := make(map[int]T, window)
	done := 0
	for s := range results {
		pending[s.pos] = s.v
		for {
			v, ok := pending[done]
			if !ok {
				break
			}
			delete(pending, done)
			sink(index(done), v)
			done++
			<-tickets
		}
	}
}

// USDRun is the outcome of one tracked USD run.
type USDRun struct {
	// Result is the simulation result.
	Result core.Result
	// Phases records the five phase end times.
	Phases phase.Times
	// InitialLeader is the opinion with the largest initial support.
	InitialLeader int
}

// RunTracked simulates the USD from c to consensus (or budget) with phase
// tracking under the given stepping kernel, reusing the arena's simulator
// and tracker when a is non-nil (pass the *Arena handed to a CollectArena
// or Stream callback; nil allocates fresh state). checkEvery controls how
// often the O(k) phase conditions are evaluated; 0 picks a
// resolution-preserving default — per-interval for the exact kernel,
// per-window for a batched kernel (whose observations already cover many
// events each). Extra simulator options (typically core.WithDynamics for a
// non-classic variant) are applied on top; hoist the option value out of
// per-trial loops to keep them allocation-free.
func RunTracked(a *Arena, c *conf.Config, src *rng.Source, budget u128.U128, checkEvery int, kern core.Kernel, opts ...core.Option) (USDRun, error) {
	if checkEvery <= 0 {
		checkEvery = phase.CheckIntervalFor(c.N(), kern)
	}
	leader, _ := c.Max()
	var s *core.Simulator
	var tr *phase.Tracker
	var err error
	if a != nil {
		// Option-free reset plus SetKernel keeps the default per-trial path
		// free of the closure allocation a WithKernel option would cost
		// (pinned by TestStreamFoldAllocFree).
		s, err = a.Simulator(c, src, opts...)
		if err == nil {
			s.SetKernel(kern)
		}
		tr = a.Tracker(phase.WithCheckInterval(checkEvery))
	} else {
		s, err = core.New(c, src, append(append([]core.Option(nil), opts...), core.WithKernel(kern))...)
		tr = phase.NewTracker(phase.WithCheckInterval(checkEvery))
	}
	if err != nil {
		return USDRun{}, err
	}
	tr.ObserveNow(s)
	res := s.RunWatched(budget, tr)
	// Force a final check so interval skipping cannot miss phase ends that
	// occurred in the last few events.
	tr.ObserveNow(s)
	return USDRun{Result: res, Phases: tr.Times(), InitialLeader: leader}, nil
}

// runTracked is RunTracked without an arena, kept for call sites outside
// the trial engine.
func runTracked(c *conf.Config, src *rng.Source, budget u128.U128, checkEvery int, kern core.Kernel) (USDRun, error) {
	return RunTracked(nil, c, src, budget, checkEvery, kern)
}

// consensusTime runs the USD from c to consensus under the given kernel,
// reusing the arena's simulator when a is non-nil, and returns the
// interaction count and winner. It fails if the budget is exhausted first.
func consensusTime(a *Arena, c *conf.Config, src *rng.Source, budget u128.U128, kern core.Kernel, opts ...core.Option) (u128.U128, int, error) {
	var s *core.Simulator
	var err error
	if a != nil {
		s, err = a.Simulator(c, src, opts...)
		if err == nil {
			s.SetKernel(kern)
		}
	} else {
		s, err = core.New(c, src, append(append([]core.Option(nil), opts...), core.WithKernel(kern))...)
	}
	if err != nil {
		return u128.U128{}, -1, err
	}
	res := s.Run(budget)
	if res.Outcome != core.OutcomeConsensus {
		return res.Interactions, -1, fmt.Errorf("experiment: no consensus within %v interactions (outcome %v)", budget, res.Outcome)
	}
	return res.Interactions, res.Winner, nil
}
