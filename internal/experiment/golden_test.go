package experiment

import "testing"

// TestGoldenClassicByteIdentity replays every pre-refactor golden run
// through the current engine and requires byte-identical outcomes, winners,
// interaction clocks, and phase end times: the classic dynamics routed
// through the Dynamics interface must be indistinguishable from the
// hard-wired pre-refactor engine at every kernel.
func TestGoldenClassicByteIdentity(t *testing.T) {
	runs, err := GoldenClassicRuns()
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range runs {
		mismatch, err := ReplayGoldenRun(g)
		if err != nil {
			t.Fatalf("%s/%s/seed%d tracked=%v: %v", g.Config, g.Kernel, g.Seed, g.Tracked, err)
		}
		if mismatch != "" {
			t.Errorf("%s/%s/seed%d tracked=%v: %s", g.Config, g.Kernel, g.Seed, g.Tracked, mismatch)
		}
	}
}
