package experiment

import (
	"fmt"
	"io"
	"math"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/stats"
)

// k1KernelAgreement validates the windowed kernels' accuracy contracts
// against the exact kernel: over paired trials from the same initial
// configuration, the winner frequencies, the consensus-time distribution
// (two-sample KS test), and the per-phase median end times must agree
// within the stated tolerances, for both KernelBatched and KernelAuto
// (which shares the window law but switches sampling strategies per
// window). This is the empirical license for using the windowed kernels in
// every large-n experiment and fleet workload.
func k1KernelAgreement() Experiment {
	return Experiment{
		ID:       "K1-kernel-agreement",
		Title:    "Exact vs batched/auto kernel distributional agreement",
		Artifact: "windowed-kernel accuracy contract (tau-leaping tolerance)",
		Run: func(p Params, w io.Writer) error {
			// Byte-identity preface: replay the embedded pre-refactor golden
			// corpus through the pluggable-dynamics engine. The classic
			// variant must reproduce every recorded outcome, winner, 128-bit
			// clock, and phase end time exactly — this is a stronger (and
			// cheaper) statement than the distributional gates below, and it
			// runs first so an engine regression fails loudly.
			golden, err := GoldenClassicRuns()
			if err != nil {
				return err
			}
			for _, g := range golden {
				mismatch, err := ReplayGoldenRun(g)
				if err != nil {
					return err
				}
				if mismatch != "" {
					return fmt.Errorf("golden classic run (config=%s kernel=%s seed=%d tracked=%v) diverged: %s",
						g.Config, g.Kernel, g.Seed, g.Tracked, mismatch)
				}
			}
			if _, err := fmt.Fprintf(w, "golden corpus: %d pre-refactor classic runs replayed byte-identically\n\n", len(golden)); err != nil {
				return err
			}

			n := pick(p, int64(1<<13), int64(1<<14))
			k := 8
			trials := p.trials(200) // quick mode halves this; still >= 100 paired
			thr := math.Sqrt(float64(n) * math.Log(float64(n)))
			configs := []struct {
				name string
				mk   func() (*conf.Config, error)
			}{
				{"uniform", func() (*conf.Config, error) { return conf.Uniform(n, k, 0) }},
				{"additive-2thr", func() (*conf.Config, error) { return conf.WithAdditiveBias(n, k, 2*int64(thr), 0) }},
			}

			type trial struct {
				run USDRun
				ok  bool
			}
			collect := func(cfg *conf.Config, kern core.Kernel, seedOff uint64) []trial {
				return CollectArena(trials, p.Parallelism, p.Seed+seedOff, func(i int, src *rng.Source, a *Arena) trial {
					r, err := RunTracked(a, cfg, src, core.NoBudget, 0, kern)
					if err != nil || r.Result.Outcome != core.OutcomeConsensus {
						return trial{}
					}
					return trial{run: r, ok: true}
				})
			}

			const (
				ksAlpha     = 0.01 // two-sample KS significance for consensus times
				winTol      = 0.12 // max |leader-win-rate| gap (≈4σ at 200 trials)
				medianTol   = 0.25 // max relative gap of per-phase median end times
				minPerPhase = 20   // phases reached less often are not compared
			)

			kernels := []core.Kernel{core.KernelBatched(0), core.KernelAuto(0)}
			tbl := NewTable(
				fmt.Sprintf("Kernel agreement, n=%d k=%d, %d paired trials per config (tol %g):",
					n, k, trials, core.DefaultTolerance),
				"config", "kernel", "metric", "exact", "windowed", "gap", "tolerance", "verdict")
			allPass := true
			verdict := func(pass bool) string {
				if pass {
					return "agree"
				}
				allPass = false
				return "DISAGREE"
			}

			type gathered struct {
				times  []float64
				wins   int
				oks    int
				phases [][]float64
			}
			gather := func(ts []trial) gathered {
				g := gathered{phases: make([][]float64, 5)}
				for _, t := range ts {
					if !t.ok {
						continue
					}
					g.oks++
					g.times = append(g.times, t.run.Result.Interactions.Float64())
					if t.run.Result.Winner == t.run.InitialLeader {
						g.wins++
					}
					for ph := 1; ph <= 5; ph++ {
						if t.run.Phases.Reached(ph) {
							g.phases[ph-1] = append(g.phases[ph-1], t.run.Phases.End[ph-1].Float64())
						}
					}
				}
				return g
			}

			for ci, c := range configs {
				cfg, err := c.mk()
				if err != nil {
					return err
				}
				// All arms share the same derived seed per trial index
				// (common random numbers), so the comparisons are genuinely
				// paired; the kernels then consume the stream differently.
				ge := gather(collect(cfg, core.KernelExact, uint64(ci)*1000+1))
				if ge.oks == 0 {
					return fmt.Errorf("no successful exact runs for config %s", c.name)
				}
				for _, kern := range kernels {
					gw := gather(collect(cfg, kern, uint64(ci)*1000+1))
					if gw.oks == 0 {
						return fmt.Errorf("no successful %v runs for config %s", kern, c.name)
					}
					kname := kern.Name()

					// Leader win frequency.
					we := float64(ge.wins) / float64(ge.oks)
					wb := float64(gw.wins) / float64(gw.oks)
					tbl.AddRowf(c.name, kname, "leader win rate", we, wb, math.Abs(we-wb), winTol,
						verdict(math.Abs(we-wb) <= winTol))

					// Consensus-time distribution: two-sample KS.
					d, err := stats.KSTwoSample(ge.times, gw.times)
					if err != nil {
						return err
					}
					crit := stats.KSCriticalValue(len(ge.times), len(gw.times), ksAlpha)
					tbl.AddRowf(c.name, kname, "consensus time KS", "-", "-", d, crit, verdict(d <= crit))

					// Per-phase median end times.
					for ph := 1; ph <= 5; ph++ {
						if len(ge.phases[ph-1]) < minPerPhase || len(gw.phases[ph-1]) < minPerPhase {
							continue
						}
						me, err := stats.Quantile(ge.phases[ph-1], 0.5)
						if err != nil {
							return err
						}
						mb, err := stats.Quantile(gw.phases[ph-1], 0.5)
						if err != nil {
							return err
						}
						gap := 0.0
						if me > 0 {
							gap = math.Abs(mb-me) / me
						}
						tbl.AddRowf(c.name, kname, fmt.Sprintf("phase %d median end", ph), me, mb, gap, medianTol,
							verdict(gap <= medianTol))
					}
				}
			}
			if err := tbl.Fprint(w); err != nil {
				return err
			}
			summary := "PASS: every windowed kernel matches the exact kernel within tolerance on every metric."
			if !allPass {
				summary = "FAIL: at least one metric disagrees; inspect the table."
			}
			_, err = fmt.Fprintf(w, "\n%s\n", summary)
			return err
		},
	}
}

// k2NScaling exercises the batched kernel in the regime the exact kernel
// cannot reach in reasonable wall-clock time: uniform no-bias starts with
// k = 32 at n up to 10⁹ agents. It reports consensus interactions against
// the Theorem 2 shape n²·ln n/x₁ (= k·n·ln n for the uniform start, which
// dominates the n·ln n + n²/x₁ multiplicative-regime bound once a leader
// emerges) and fits interactions ~ a·n^b, whose exponent should be ~1
// (quasi-linear scaling, the paper's headline result).
func k2NScaling() Experiment {
	return Experiment{
		ID:       "K2-n-scaling",
		Title:    "Batched-kernel consensus scaling up to n = 1e9",
		Artifact: "Theorem 2 shape at population scales beyond the exact kernel",
		Run: func(p Params, w io.Writer) error {
			ns := pick(p,
				[]int64{100_000, 1_000_000, 10_000_000},
				[]int64{1_000_000, 10_000_000, 100_000_000, 1_000_000_000})
			k := 32
			trials := p.trials(5)
			// The 10¹⁰ smoke point exercises the 128-bit interaction clock
			// past the old ⌊√MaxInt64⌋ ceiling (n² ≈ 10²⁰ > MaxInt64) under
			// the auto kernel; a single trial at smaller k keeps the
			// full-mode wall-clock in check while still crossing the
			// boundary every 64-bit clock would overflow at.
			type cell struct {
				n      int64
				k      int
				trials int
				kern   core.Kernel
				fit    bool
			}
			cells := make([]cell, 0, len(ns)+1)
			for _, n := range ns {
				cells = append(cells, cell{n: n, k: k, trials: trials, kern: core.KernelBatched(0), fit: true})
			}
			if !p.Quick {
				cells = append(cells, cell{n: 10_000_000_000, k: 2, trials: 1, kern: core.KernelAuto(0)})
			}
			tbl := NewTable(
				fmt.Sprintf("Batched kernel (tol %g), uniform start, k=%d, %d trials per n:",
					core.DefaultTolerance, k, trials),
				"n", "k", "kernel", "mean T", "std", "par. time", "T/(k n ln n)", "leader wins")
			var xs, ys []float64
			for _, c := range cells {
				n := c.n
				cfg, err := conf.Uniform(n, c.k, 0)
				if err != nil {
					return err
				}
				type out struct {
					t   float64
					won bool
					ok  bool
				}
				outs := CollectArena(c.trials, p.Parallelism, p.Seed+uint64(n), func(i int, src *rng.Source, a *Arena) out {
					t, winner, err := consensusTime(a, cfg, src, core.NoBudget, c.kern)
					if err != nil {
						return out{}
					}
					return out{t: t.Float64(), won: winner == 0, ok: true}
				})
				var times []float64
				wins := 0
				for _, o := range outs {
					if !o.ok {
						continue
					}
					times = append(times, o.t)
					if o.won {
						wins++
					}
				}
				s, err := stats.Summarize(times)
				if err != nil {
					return fmt.Errorf("n=%d: %w", n, err)
				}
				norm := s.Mean / (float64(c.k) * float64(n) * math.Log(float64(n)))
				tbl.AddRowf(n, c.k, c.kern.Name(), s.Mean, s.Std, s.Mean/float64(n), norm,
					fmt.Sprintf("%d/%d", wins, len(times)))
				if c.fit {
					xs = append(xs, float64(n))
					ys = append(ys, s.Mean)
				}
			}
			if err := tbl.Fprint(w); err != nil {
				return err
			}
			a, b, r2, err := stats.PowerFit(xs, ys)
			if err != nil {
				return err
			}
			_, err = fmt.Fprintf(w,
				"\nPower fit: T ~ %.3g * n^%.3f (R² %.4f); exponent ~1 confirms the\n"+
					"quasi-linear k·n·ln n scaling at populations the exact kernel cannot reach.\n",
				a, b, r2)
			return err
		},
	}
}
