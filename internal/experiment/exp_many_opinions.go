package experiment

import (
	"fmt"
	"io"
	"math"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
)

// KForEps returns the opinion count of the many-opinions regime k = Θ(n^ε):
// round(n^ε) clamped to at least 2. cmd/sweep shares it for its k = n^ε
// grids.
func KForEps(n int64, eps float64) int {
	k := int(math.Round(math.Pow(float64(n), eps)))
	if k < 2 {
		k = 2
	}
	return k
}

// k3ManyOpinions explores the many-opinions regime k = Θ(n^ε) that the
// follow-up line of work (Cooper et al.; "Undecided State Dynamics with
// Many Opinions", arXiv:2603.02636) studies: the number of opinions grows
// polynomially with the population instead of staying constant. From a
// uniform start x₁ = n/k, so Theorem 2's no-bias bound n²·ln n/x₁ becomes
// k·n·ln n = n^(1+ε)·ln n — the consensus-time exponent itself should grow
// with ε. Each (ε, n) cell runs the batched kernel to consensus and streams
// trials through online aggregators (mean/variance via Welford, median via
// a P² sketch), so the cell's memory cost is independent of the trial
// count; a per-window trajectory of the largest cell is recorded through
// the bounded sampler, the observer path that makes n >= 10⁸ trajectory
// runs affordable.
func k3ManyOpinions() Experiment {
	return Experiment{
		ID:       "K3-many-opinions",
		Title:    "Consensus scaling in the many-opinions regime k = Θ(n^ε)",
		Artifact: "many-opinions USD shape (Cooper et al., arXiv:2603.02636): T ~ n^(1+ε) ln n",
		Run: func(p Params, w io.Writer) error {
			// The amortized batched cost per cell grows like k²·ln n (windows
			// are capped by tol·u ~ tol·n/2 events but each costs O(k)), so
			// the ε = 0.5 column uses smaller n than the flatter exponents.
			type grid struct {
				eps float64
				ns  []int64
			}
			grids := pick(p,
				[]grid{
					{0.1, []int64{1 << 12, 1 << 14}},
					{0.25, []int64{1 << 12, 1 << 14}},
					{0.5, []int64{1 << 12, 1 << 14}},
				},
				[]grid{
					{0.1, []int64{1_000_000, 10_000_000, 100_000_000, 1_000_000_000}},
					{0.25, []int64{1_000_000, 10_000_000, 100_000_000, 1_000_000_000}},
					{0.5, []int64{10_000, 100_000, 1_000_000}},
				})
			trials := p.trials(5)
			// Adaptive mode (Params.Adaptive) replaces the fixed per-cell
			// count with sequential stopping: a higher cap, spent only where
			// the consensus-time CI stays wide — the cheap way to tighten
			// the per-ε exponent fits below.
			adaptiveCap := p.maxTrials(20)
			trialDesc := fmt.Sprintf("%d trials per cell", trials)
			if p.Adaptive {
				trialDesc = fmt.Sprintf("adaptive trials (±%.0f%% CI, cap %d) per cell",
					100*p.relWidth(), adaptiveCap)
			}
			tbl := NewTable(
				fmt.Sprintf("Many-opinions regime, uniform start, batched kernel (tol %g), %s:",
					core.DefaultTolerance, trialDesc),
				"eps", "n", "k", "trials", "mean T", "std", "median", "par. time", "T/(k n ln n)")

			type fitData struct {
				eps    float64
				xs, ys []float64
			}
			var fits []fitData
			for _, g := range grids {
				fd := fitData{eps: g.eps}
				for _, n := range g.ns {
					k := KForEps(n, g.eps)
					cfg, err := conf.Uniform(n, k, 0)
					if err != nil {
						return err
					}
					// Stream the cell: only the online aggregates are held,
					// never the per-trial results.
					var agg stats.Online
					med := stats.NewP2(0.5)
					failed := 0
					seed := p.Seed + uint64(n)*13 + uint64(g.eps*1000)
					trial := func(i int, src *rng.Source, a *Arena) float64 {
						t, _, err := consensusTime(a, cfg, src, core.NoBudget, core.KernelBatched(0))
						if err != nil {
							return math.NaN()
						}
						return t.Float64()
					}
					trialCell := fmt.Sprintf("%d", trials)
					if p.Adaptive {
						metric := NewAdaptiveMetric("consensus T", p.consensusRule(adaptiveCap))
						res := StreamAdaptive(
							AdaptiveOptions{MaxTrials: adaptiveCap, Parallelism: p.Parallelism, Seed: seed},
							trial,
							func(_ int, t float64) {
								if math.IsNaN(t) {
									failed++
									return
								}
								metric.Add(t)
							},
							StopWhenAll(metric))
						agg, med = metric.Online, metric.Median
						trialCell = fmt.Sprintf("%d/%d", res.Trials, adaptiveCap)
					} else {
						Stream(trials, p.Parallelism, seed, trial,
							func(_ int, t float64) {
								if math.IsNaN(t) {
									failed++
									return
								}
								agg.Add(t)
								med.Add(t)
							})
					}
					if agg.N() == 0 {
						return fmt.Errorf("eps=%g n=%d: all trials failed", g.eps, n)
					}
					if failed > 0 {
						fmt.Fprintf(w, "note: eps=%g n=%d: %d trials did not reach consensus\n",
							g.eps, n, failed)
					}
					norm := agg.Mean() / (float64(k) * float64(n) * math.Log(float64(n)))
					tbl.AddRowf(g.eps, n, k, trialCell, agg.Mean(), agg.Std(), med.Value(),
						agg.Mean()/float64(n), norm)
					fd.xs = append(fd.xs, float64(n))
					fd.ys = append(fd.ys, agg.Mean())
				}
				fits = append(fits, fd)
			}
			if err := tbl.Fprint(w); err != nil {
				return err
			}

			// Per-ε power fits: T ~ a·n^b with b ≈ 1+ε (up to the ln n
			// factor, which biases b slightly upward).
			if _, err := fmt.Fprintf(w, "\nPower fits T ~ a·n^b per ε (expected exponent ≈ 1+ε from T = Θ(n^(1+ε) ln n)):\n"); err != nil {
				return err
			}
			for _, fd := range fits {
				a, b, r2, err := stats.PowerFit(fd.xs, fd.ys)
				if err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "  eps=%.2f: T ~ %.3g·n^%.3f (R² %.4f, 1+ε = %.2f)\n",
					fd.eps, a, b, r2, 1+fd.eps); err != nil {
					return err
				}
			}

			// One per-window trajectory of the largest population in the
			// grid (ties to the larger ε), recorded via the bounded
			// sampler: the observation count scales with windows rather
			// than interactions and the recorders cap memory, so even the
			// billion-agent cell records a full trajectory for free.
			big := grids[0]
			n := big.ns[len(big.ns)-1]
			for _, g := range grids[1:] {
				if last := g.ns[len(g.ns)-1]; last >= n {
					big, n = g, last
				}
			}
			k := KForEps(n, big.eps)
			cfg, err := conf.Uniform(n, k, 0)
			if err != nil {
				return err
			}
			s, err := core.New(cfg, rng.New(p.Seed+1), core.WithKernel(core.KernelBatched(0)))
			if err != nil {
				return err
			}
			sampler := trace.NewSampler().
				Track("u/n", 96, func(s *core.Simulator) float64 {
					return float64(s.Undecided()) / float64(s.N())
				}).
				Track("xmax/n", 96, func(s *core.Simulator) float64 {
					_, x := s.Max()
					return float64(x) / float64(s.N())
				})
			res := s.RunWatched(core.NoBudget, sampler)
			sampler.Final(s)
			plot, err := trace.RenderASCII(64, 12, sampler.Series()...)
			if err != nil {
				return err
			}
			_, err = fmt.Fprintf(w,
				"\nSample trajectory, eps=%.2f n=%d k=%d (window-granularity observer, %v):\n\n%s\n"+
					"Reading: the normalized column T/(k n ln n) should stay roughly\n"+
					"constant within each ε while n spans decades, and the fitted\n"+
					"exponents should track 1+ε — consensus stays quasi-linear per\n"+
					"opinion even when k grows polynomially with n.\n",
				big.eps, n, k, res.Outcome, plot)
			return err
		},
	}
}
