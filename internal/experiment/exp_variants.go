package experiment

import (
	"fmt"
	"io"
	"math"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/u128"
)

// k5Variants validates the two non-classic dynamics variants against the
// predictions of their source papers.
//
// Stubborn arm (arXiv:2406.07335): from a dead-heat two-opinion start, a
// small stubborn minority behind one opinion steers the metastable process
// toward it — the win rate of the stubborn-backed opinion must rise with
// the stubborn count, clearing 50% decisively once the count is a few
// percent of n, while the zero-stubborn control stays near the symmetric
// 50%. Every trial must terminate through the variant's dominance terminal
// (full consensus is unreachable with stubborn dissenters).
//
// Unconstrained arm (arXiv:2103.10366): with undecided agents still
// communicating a latent opinion (and the initially-undecided blank),
// every run must reach full consensus — the variant removes the
// all-undecided failure mode — in O(n log n) interactions for every k.
//
// Params.Variant focuses the run on one arm and, for stubborn, overrides
// the per-opinion counts; the zero Variant runs both arms.
func k5Variants() Experiment {
	return Experiment{
		ID:       "K5-variants",
		Title:    "Stubborn-agent and unconstrained USD variant validation",
		Artifact: "variant dynamics predictions (arXiv:2406.07335, arXiv:2103.10366)",
		Run: func(p Params, w io.Writer) error {
			focus := p.Variant
			focusDyn, err := focus.Dynamics()
			if err != nil {
				return err
			}
			runStubborn := focus.Classic() || focusDyn == core.StubbornAgents
			runUnconstrained := focus.Classic() || focusDyn == core.Unconstrained
			allPass := true
			verdict := func(pass bool) string {
				if pass {
					return "pass"
				}
				allPass = false
				return "FAIL"
			}

			if runStubborn {
				if err := k5Stubborn(p, w, focus, verdict); err != nil {
					return err
				}
			}
			if runUnconstrained {
				if err := k5Unconstrained(p, w, verdict); err != nil {
					return err
				}
			}
			summary := "PASS: both variants match their papers' predictions within tolerance."
			if !allPass {
				summary = "FAIL: at least one variant prediction missed; inspect the tables."
			}
			_, err = fmt.Fprintf(w, "\n%s\n", summary)
			return err
		},
	}
}

// k5Stubborn runs the stubborn-steering arm: a dead-heat k=2 start with b
// stubborn agents behind opinion 0 and none behind opinion 1.
func k5Stubborn(p Params, w io.Writer, focus core.Variant, verdict func(bool) string) error {
	n := pick(p, int64(1000), int64(4000))
	trials := p.trials(40)
	// Dominance at these sizes lands around 10n–20n interactions; n² is a
	// comfortable safety budget, and exhausting it fails the decided gate.
	budget := u128.Mul64(uint64(n), uint64(n))
	// Stubborn counts per row: the control, ~1% of n, and ~5% of n, all
	// behind opinion 0 — or the counts forced by a -variant stubborn:...
	// focus spec.
	rows := [][]int64{
		{0, 0},
		{n / 100, 0},
		{n / 20, 0},
	}
	if len(focus.Stubborn) > 0 {
		rows = [][]int64{focus.Stubborn}
	}
	const (
		controlTol = 0.30 // max |win rate − 0.5| of the zero-stubborn control
		wilsonZ    = 1.96 // 95% Wilson interval for the steering gate
	)
	tbl := NewTable(
		fmt.Sprintf("Stubborn steering, n=%d k=2 dead-heat start, %d trials per row (%s kernel):",
			n, trials, p.Kernel.Name()),
		"stubborn", "decided", "win rate b-side", "wilson 95% lo", "mean par. time", "gate", "verdict")
	for ri, bs := range rows {
		v := core.Variant{Name: "stubborn", Stubborn: bs}
		if err := v.Validate(); err != nil {
			return err
		}
		if err := v.ValidateKernel(p.Kernel); err != nil {
			return err
		}
		dyn, err := v.Dynamics()
		if err != nil {
			return err
		}
		cfg, err := conf.Uniform(n, len(bs), 0)
		if err != nil {
			return err
		}
		v.Configure(cfg)
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("stubborn row %v: %w", bs, err)
		}
		opts := []core.Option{core.WithDynamics(dyn)}
		type out struct {
			t       float64
			winner  int
			decided bool
		}
		outs := CollectArena(trials, p.Parallelism, p.Seed+uint64(ri)*1000, func(i int, src *rng.Source, a *Arena) out {
			r, err := RunTracked(a, cfg, src, budget, 0, p.Kernel, opts...)
			if err != nil {
				return out{}
			}
			oc := r.Result.Outcome
			return out{
				t:       r.Result.Interactions.Float64(),
				winner:  r.Result.Winner,
				decided: oc == core.OutcomeDominance || oc == core.OutcomeConsensus,
			}
		})
		decided, wins := 0, 0
		var par float64
		for _, o := range outs {
			if !o.decided {
				continue
			}
			decided++
			par += o.t / float64(n)
			if o.winner == 0 {
				wins++
			}
		}
		if decided > 0 {
			par /= float64(decided)
		}
		rate := float64(wins) / math.Max(float64(decided), 1)
		lo, _, err := stats.WilsonInterval(wins, decided, wilsonZ)
		if err != nil {
			return err
		}
		// The control must stay near the symmetric 50%; a stubborn count of
		// ~5% of n must steer decisively (Wilson lower bound past 50% —
		// measured: 1% of n only wins ~55% of dead heats, 5% wins nearly
		// all). Rows in between only gate on termination.
		b := bs[0]
		for _, x := range bs[1:] {
			if x > b {
				b = x
			}
		}
		gate, pass := "decided", decided == trials
		switch {
		case b == 0:
			gate = fmt.Sprintf("|rate-0.5|<=%g", controlTol)
			pass = pass && math.Abs(rate-0.5) <= controlTol
		case b >= n/20:
			gate = "wilson lo>0.5"
			pass = pass && lo > 0.5
		}
		tbl.AddRowf(fmt.Sprintf("%v", bs), fmt.Sprintf("%d/%d", decided, trials),
			rate, lo, par, gate, verdict(pass))
	}
	return tbl.Fprint(w)
}

// k5Unconstrained runs the unconstrained-consensus arm: uniform k-opinion
// starts with half the population initially blank.
func k5Unconstrained(p Params, w io.Writer, verdict func(bool) string) error {
	n := pick(p, int64(1000), int64(4000))
	trials := p.trials(40)
	ks := []int{2, 8}
	// The variant is exact-only; the arm ignores Params.Kernel.
	const timeTol = 30 // max mean T/(n ln n), generous vs the O(n log n) bound
	opts := []core.Option{core.WithDynamics(core.Unconstrained)}
	tbl := NewTable(
		fmt.Sprintf("Unconstrained USD, n=%d, u0=n/2 blank, %d trials per k (exact kernel):", n, trials),
		"k", "consensus", "mean T/(n ln n)", "mean par. time", "gate", "verdict")
	for ki, k := range ks {
		cfg, err := conf.Uniform(n, k, n/2)
		if err != nil {
			return err
		}
		type out struct {
			t  float64
			ok bool
		}
		outs := CollectArena(trials, p.Parallelism, p.Seed+uint64(ki)*7777, func(i int, src *rng.Source, a *Arena) out {
			t, _, err := consensusTime(a, cfg, src, core.NoBudget, core.KernelExact, opts...)
			if err != nil {
				return out{}
			}
			return out{t: t.Float64(), ok: true}
		})
		oks := 0
		var sum float64
		for _, o := range outs {
			if !o.ok {
				continue
			}
			oks++
			sum += o.t
		}
		mean := sum / math.Max(float64(oks), 1)
		norm := mean / (float64(n) * math.Log(float64(n)))
		pass := oks == trials && norm <= timeTol
		tbl.AddRowf(k, fmt.Sprintf("%d/%d", oks, trials), norm, mean/float64(n),
			fmt.Sprintf("all consensus, norm<=%d", timeTol), verdict(pass))
	}
	return tbl.Fprint(w)
}
