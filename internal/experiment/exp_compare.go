package experiment

import (
	"fmt"
	"io"
	"math"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/potential"
	"repro/internal/rng"
	"repro/internal/stats"
)

// gossipRounds runs `trials` gossip simulations of dyn from cfg and returns
// the summary of rounds to consensus and the opinion-0 win rate.
func gossipRounds(p Params, seed uint64, cfg *conf.Config, dyn gossip.Dynamic, trials int, maxRounds int64) (stats.Summary, float64, int, error) {
	type outcome struct {
		rounds float64
		won    bool
		ok     bool
	}
	outs := Collect(trials, p.Parallelism, seed, func(i int, src *rng.Source) outcome {
		e, err := gossip.NewEngine(cfg, dyn, src)
		if err != nil {
			return outcome{}
		}
		res := e.Run(maxRounds)
		if !res.Consensus {
			return outcome{}
		}
		return outcome{rounds: float64(res.Rounds), won: res.Winner == 0, ok: true}
	})
	var rounds []float64
	wins, completed := 0, 0
	for _, o := range outs {
		if !o.ok {
			continue
		}
		completed++
		rounds = append(rounds, o.rounds)
		if o.won {
			wins++
		}
	}
	if completed == 0 {
		return stats.Summary{}, 0, 0, fmt.Errorf("experiment: no gossip trial reached consensus")
	}
	s, err := stats.Summarize(rounds)
	if err != nil {
		return stats.Summary{}, 0, 0, err
	}
	return s, float64(wins) / float64(completed), completed, nil
}

// f4ModelCompare regenerates the Appendix D comparison: population-model
// USD parallel time (interactions/n) vs gossip-model USD rounds, in the two
// regimes the appendix distinguishes by the initial plurality size.
func f4ModelCompare() Experiment {
	return Experiment{
		ID:       "F4-model-compare",
		Title:    "Population-protocol USD vs gossip USD (parallel time)",
		Artifact: "Appendix D: crossover at x1(0) ≈ (n/k)·log n",
		Run: func(p Params, w io.Writer) error {
			n := pick(p, int64(1<<12), int64(1<<14))
			trials := p.trials(10)
			lnN := math.Log(float64(n))
			tbl := NewTable(
				fmt.Sprintf("n=%d, %d trials per cell:", n, trials),
				"k", "regime", "x1(0)", "md(x)", "pop par.time", "gossip rounds",
				"gossip/pop", "md·ln n")
			for _, k := range pick(p, []int{16}, []int{16, 32}) {
				type regime struct {
					name string
					cfg  *conf.Config
				}
				var regimes []regime
				// Regime A: x1 close to the average opinion size n/k
				// (population model predicted faster by ~log n).
				small, err := conf.WithMultiplicativeBias(n, k, 1.5, 0)
				if err != nil {
					return err
				}
				regimes = append(regimes, regime{"x1 ≈ 1.5·n/k", small})
				// Regime B: x1 well above (n/k)·log n (gossip bound wins).
				share := 1.5 * lnN / float64(k)
				if share < 0.95 {
					big, err := conf.TwoBlock(n, k, share, 0)
					if err != nil {
						return err
					}
					regimes = append(regimes, regime{"x1 ≈ 1.5·(n/k)·ln n", big})
				}
				for _, rg := range regimes {
					md := potential.MonochromaticDistance(rg.cfg.Support)
					popStats, _, _, err := timeStats(p, p.Seed+uint64(k)*61, rg.cfg, trials, core.NoBudget)
					if err != nil {
						return err
					}
					popPar := popStats.Mean / float64(n)
					gosStats, _, _, err := gossipRounds(p, p.Seed+uint64(k)*67, rg.cfg,
						gossip.USD{Opinions: k}, trials, 4*int64(float64(k)*lnN)+1000)
					if err != nil {
						return err
					}
					tbl.AddRowf(k, rg.name, rg.cfg.Support[0], md, popPar, gosStats.Mean,
						gosStats.Mean/popPar, md*lnN)
				}
			}
			if err := tbl.Fprint(w); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w, "\nReading (Appendix D): the bounds compare as O(log n + n/x1) vs\n"+
				"O(md(x)·log n), so the population model gains relative to gossip as\n"+
				"x1(0) shrinks toward n/k — the gossip/pop ratio must be larger in\n"+
				"regime A than in regime B. (At laptop-scale n the constants still\n"+
				"favor gossip in absolute terms; the asymptotic crossover is in the\n"+
				"log n factor.)\n")
			return err
		},
	}
}

// t5Baselines compares the gossip-model consensus dynamics from the related
// work on a common biased workload.
func t5Baselines() Experiment {
	return Experiment{
		ID:       "T5-baselines",
		Title:    "Gossip-model baselines: rounds to plurality consensus",
		Artifact: "§1.2 related work (Voter, TwoChoices, 3-Majority, MedianRule)",
		Run: func(p Params, w io.Writer) error {
			n := pick(p, int64(1<<12), int64(1<<13))
			trials := p.trials(6)
			tbl := NewTable(
				fmt.Sprintf("Multiplicative bias 2, n=%d, %d trials per cell:", n, trials),
				"k", "dynamic", "mean rounds", "median", "plurality wins", "budget hit")
			for _, k := range pick(p, []int{4}, []int{4, 16}) {
				cfg, err := conf.WithMultiplicativeBias(n, k, 2.0, 0)
				if err != nil {
					return err
				}
				dynamics := []struct {
					name string
					dyn  gossip.Dynamic
					cap  int64
				}{
					{"USD", gossip.USD{Opinions: k}, 200 * int64(k)},
					{"Voter", gossip.Voter{Opinions: k}, 40 * n},
					{"TwoChoices", gossip.TwoChoices{Opinions: k}, 200 * int64(k)},
					{"3-Majority", gossip.ThreeMajority{Opinions: k}, 200 * int64(k)},
					{"MedianRule", gossip.MedianRule{Opinions: k}, 200 * int64(k)},
				}
				for _, d := range dynamics {
					s, winRate, done, err := gossipRounds(p,
						p.Seed+uint64(k)*71+uint64(len(d.name)), cfg, d.dyn, trials, d.cap)
					if err != nil {
						// Report budget exhaustion instead of failing: for
						// Voter the Θ(n) coalescence may exceed the cap.
						tbl.AddRowf(k, d.name, "-", "-", "-", fmt.Sprintf("all %d trials", trials))
						continue
					}
					tbl.AddRowf(k, d.name, s.Mean, s.Median,
						fmt.Sprintf("%.0f%%", 100*winRate),
						fmt.Sprintf("%d/%d", trials-done, trials))
				}
			}
			if err := tbl.Fprint(w); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w, "\nReading: USD, TwoChoices, 3-Majority, MedianRule finish in\n"+
				"O(polylog·k) rounds; Voter needs Θ(n) rounds and picks a random\n"+
				"opinion weighted by support, so it often misses the plurality.\n"+
				"MedianRule converges fast but to the *median* opinion of the order,\n"+
				"not the plurality (its 0%% column is expected — the paper remarks it\n"+
				"requires ordered opinions and solves a different problem).\n")
			return err
		},
	}
}
