package experiment

import (
	"fmt"
	"io"
	"math"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/fluid"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/u128"
)

// f7Fluid compares stochastic USD trajectories against the mean-field ODE:
// by the density-dependence law of large numbers the undecided density
// tracks the fluid path within O(1/√n), and the fluid fixed point is the
// paper's u* equilibrium.
func f7Fluid() Experiment {
	return Experiment{
		ID:       "F7-fluid-limit",
		Title:    "Stochastic trajectories vs the mean-field ODE (extension)",
		Artifact: "u* equilibrium as the fluid fixed point; O(1/√n) concentration",
		Run: func(p Params, w io.Writer) error {
			k := 4
			horizon := 12.0
			// Fluid path for the common initial densities.
			nRef := pick(p, int64(1<<12), int64(1<<14))
			cfgRef, err := conf.WithMultiplicativeBias(nRef, k, 1.3, 0)
			if err != nil {
				return err
			}
			s0, err := fluid.FromConfig(cfgRef)
			if err != nil {
				return err
			}
			in, err := fluid.NewIntegrator(1e-3)
			if err != nil {
				return err
			}
			grid := map[int]float64{}
			fluidSeries := &trace.Series{Name: "fluid υ(τ)"}
			if _, err := in.Solve(s0, horizon, func(tau float64, s fluid.State) {
				key := int(tau*1000 + 0.5)
				grid[key] = s.U
				if key%100 == 0 {
					fluidSeries.Add(tau, s.U)
				}
			}); err != nil {
				return err
			}

			ns := pick(p, []int64{1 << 10, 1 << 13}, []int64{1 << 10, 1 << 12, 1 << 14, 1 << 16})
			trials := p.trials(6)
			tbl := NewTable(
				fmt.Sprintf("Sup-norm deviation of u(τ)/n from the fluid path, k=%d, horizon %.0f, mean of %d paths:",
					k, horizon, trials),
				"n", "mean sup|u/n − υ|", "×√n", "u* (fluid fixed point)")
			var simSeries *trace.Series
			for _, n := range ns {
				cfg, err := conf.WithMultiplicativeBias(n, k, 1.3, 0)
				if err != nil {
					return err
				}
				var meanWorst float64
				for trial := 0; trial < trials; trial++ {
					sim, err := core.New(cfg, rng.New(rng.Derive(p.Seed+uint64(n), uint64(trial))), core.WithKernel(p.Kernel))
					if err != nil {
						return err
					}
					rec := trace.NewRecorder(fmt.Sprintf("simulated u/n, n=%d", n), n/8)
					var worst float64
					sim.RunObserved(u128.FromFloat64(horizon*float64(n)), func(s *core.Simulator, ev core.Event) {
						tau := ev.Interactions.Float64() / float64(n)
						simU := float64(s.Undecided()) / float64(n)
						rec.Observe(ev.Interactions, simU)
						if fluidU, ok := grid[int(tau*1000+0.5)]; ok {
							if d := math.Abs(simU - fluidU); d > worst {
								worst = d
							}
						}
					})
					meanWorst += worst / float64(trials)
					if n == ns[len(ns)-1] && trial == 0 {
						// Rescale the x axis to parallel time for the overlay.
						simSeries = &trace.Series{Name: rec.Series.Name}
						for i := range rec.Series.X {
							simSeries.Add(rec.Series.X[i]/float64(n), rec.Series.Y[i])
						}
					}
				}
				tbl.AddRowf(n, meanWorst, meanWorst*math.Sqrt(float64(n)), fluid.Equilibrium(k))
			}
			if err := tbl.Fprint(w); err != nil {
				return err
			}
			plot, err := trace.RenderASCII(72, 16,
				trace.Downsample(simSeries, 72), trace.Downsample(fluidSeries, 72))
			if err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "\nOverlay (x axis: parallel time τ):\n\n%s\n"+
				"Reading: the deviation column shrinks like 1/√n (the ×√n column is\n"+
				"flat) — Kurtz's theorem for this density-dependent chain — and both\n"+
				"curves ride the u* plateau before the endgame drains it.\n", plot)
			return err
		},
	}
}
