package experiment

import (
	"fmt"
	"io"
	"math"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/rng"
	"repro/internal/stats"
)

// x3Exact validates the simulator against the exactly-solved USD Markov
// chain on small instances: expected consensus time and per-opinion win
// probabilities from the absorbing-chain linear systems vs simulated
// estimates with confidence intervals.
func x3Exact() Experiment {
	return Experiment{
		ID:       "X3-exact-validation",
		Title:    "Simulator vs exactly solved Markov chain (extension)",
		Artifact: "ground-truth validation of the Observation 6 chain",
		Run: func(p Params, w io.Writer) error {
			trials := p.trials(20000)
			instances := []struct {
				support []int64
				u       int64
			}{
				{[]int64{8, 8}, 4},
				{[]int64{12, 6}, 2},
				{[]int64{10, 6, 4}, 4},
				{[]int64{7, 7, 7}, 3},
			}
			tbl := NewTable(
				fmt.Sprintf("Exact chain vs %d simulated trials per instance:", trials),
				"instance", "exact E[T]", "sim E[T] (±95%)", "exact P[win 0]", "sim P[win 0] (±95%)")
			for idx, inst := range instances {
				cfg, err := conf.FromSupport(inst.support, inst.u)
				if err != nil {
					return err
				}
				chain, err := exact.New(cfg.N(), cfg.K())
				if err != nil {
					return err
				}
				wantT, err := chain.ExpectedTimeFrom(cfg)
				if err != nil {
					return err
				}
				wantW, err := chain.WinProbabilityFrom(cfg, 0)
				if err != nil {
					return err
				}
				type obs struct {
					t   float64
					won bool
				}
				outs := CollectArena(trials, p.Parallelism, p.Seed+uint64(idx)*107,
					func(i int, src *rng.Source, a *Arena) obs {
						t, winner, err := consensusTime(a, cfg, src, core.NoBudget, p.Kernel)
						if err != nil {
							return obs{t: math.NaN()}
						}
						return obs{t: t.Float64(), won: winner == 0}
					})
				var times []float64
				wins := 0
				for _, o := range outs {
					if math.IsNaN(o.t) {
						continue
					}
					times = append(times, o.t)
					if o.won {
						wins++
					}
				}
				mean, half, err := stats.MeanCI(times, 1.96)
				if err != nil {
					return err
				}
				lo, hi, err := stats.WilsonInterval(wins, len(times), 1.96)
				if err != nil {
					return err
				}
				tbl.AddRowf(cfg.String(), wantT,
					fmt.Sprintf("%.2f ± %.2f", mean, half),
					fmt.Sprintf("%.4f", wantW),
					fmt.Sprintf("[%.4f, %.4f]", lo, hi))
			}
			if err := tbl.Fprint(w); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w, "\nReading: every exact value must fall inside (or within a hair of)\n"+
				"the simulated confidence interval — the simulator implements exactly\n"+
				"the Observation 6 chain that the solver enumerates.\n")
			return err
		},
	}
}
