package experiment

import (
	"fmt"
	"io"
	"math"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/rng"
	"repro/internal/stats"
)

// x1Synchronized reproduces the related-work claim that the synchronized
// two-phase USD variant converges polylogarithmically regardless of the
// initial bias, and contrasts it with the plain gossip USD on no-bias
// starts where no bound for k > 2 is known.
func x1Synchronized() Experiment {
	return Experiment{
		ID:       "X1-synchronized",
		Title:    "Synchronized two-phase USD vs plain gossip USD (extension)",
		Artifact: "§1.2 synchronized variant (Bankhamer et al.): polylog rounds without bias",
		Run: func(p Params, w io.Writer) error {
			n := pick(p, int64(1<<12), int64(1<<13))
			trials := p.trials(10)
			logN := math.Log(float64(n))
			tbl := NewTable(
				fmt.Sprintf("No-bias start, n=%d, %d trials per cell:", n, trials),
				"k", "engine", "mean rounds", "median", "rounds/ln²n")
			for _, k := range pick(p, []int{4, 16}, []int{4, 16, 64}) {
				cfg, err := conf.Uniform(n, k, 0)
				if err != nil {
					return err
				}
				syncRounds := Collect(trials, p.Parallelism, p.Seed+uint64(k)*97,
					func(i int, src *rng.Source) float64 {
						e, err := gossip.NewSyncEngine(cfg, src)
						if err != nil {
							return math.NaN()
						}
						res := e.Run(0)
						if !res.Consensus {
							return math.NaN()
						}
						return float64(res.Rounds)
					})
				sSync, err := stats.Summarize(syncRounds)
				if err != nil {
					return err
				}
				tbl.AddRowf(k, "synchronized", sSync.Mean, sSync.Median, sSync.Mean/(logN*logN))
				plain, _, _, err := gossipRounds(p, p.Seed+uint64(k)*101, cfg,
					gossip.USD{Opinions: k}, trials, 2000*int64(k))
				if err != nil {
					tbl.AddRowf(k, "plain gossip USD", "budget", "-", "-")
					continue
				}
				tbl.AddRowf(k, "plain gossip USD", plain.Mean, plain.Median, plain.Mean/(logN*logN))
			}
			if err := tbl.Fprint(w); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w, "\nReading: the synchronized variant's rounds/ln²n column stays O(1)\n"+
				"and does not grow with k — the polylog convergence that the phase-\n"+
				"clock machinery buys. Plain gossip USD pays a factor ≈ k.\n")
			return err
		},
	}
}

// x2LargeK probes the regime k = ω(√n/log²n) that the paper leaves open:
// measure no-bias consensus time as k grows far beyond the theorem's range.
func x2LargeK() Experiment {
	return Experiment{
		ID:       "X2-large-k",
		Title:    "Beyond the theorem: consensus time for very large k (extension)",
		Artifact: "§8 future work: k = ω(√n/log²n)",
		Run: func(p Params, w io.Writer) error {
			n := pick(p, int64(1<<12), int64(1<<13))
			trials := p.trials(8)
			kMax := pick(p, int64(1<<9), int64(1<<11))
			thmRange := math.Sqrt(float64(n)) / math.Pow(math.Log(float64(n)), 2)
			tbl := NewTable(
				fmt.Sprintf("No-bias start, n=%d, %d trials per k (theorem range: k ≤ c·%.1f):",
					n, trials, thmRange),
				"k", "in range", "mean T", "T/(n ln n)", "T/(k n ln n)")
			var xs, ys []float64
			lnN := math.Log(float64(n))
			for k := int64(2); k <= kMax; k *= 4 {
				cfg, err := conf.Uniform(n, int(k), 0)
				if err != nil {
					return err
				}
				s, _, _, err := timeStats(p, p.Seed+uint64(k)*103, cfg, trials, core.NoBudget)
				if err != nil {
					return err
				}
				inRange := "no"
				if float64(k) <= 4*thmRange { // generous constant c = 4
					inRange = "yes"
				}
				norm := s.Mean / (float64(n) * lnN)
				tbl.AddRowf(k, inRange, s.Mean, norm, norm/float64(k))
				xs = append(xs, float64(k))
				ys = append(ys, norm)
			}
			if err := tbl.Fprint(w); err != nil {
				return err
			}
			a, b, r2, err := stats.PowerFit(xs, ys)
			if err != nil {
				return err
			}
			_, err = fmt.Fprintf(w,
				"\nPower fit: T/(n ln n) = %.3f·k^%.3f (R²=%.4f)\n"+
					"Reading: the paper leaves k = ω(√n/log²n) open; empirically the\n"+
					"no-bias consensus time keeps growing only sublinearly in k far\n"+
					"beyond the proven range, suggesting the O(k n log n) bound remains\n"+
					"conservative there (a data point for the open problem, not a proof).\n",
				a, b, r2)
			return err
		},
	}
}
