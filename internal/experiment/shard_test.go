package experiment

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/u128"
)

// metricFingerprint serializes every order-sensitive bit of an adaptive
// metric, so two fold paths agreeing here agree byte-for-byte.
func metricFingerprint(m *AdaptiveMetric) string {
	o := &m.Online
	return fmt.Sprintf("n=%d mean=%x var=%x min=%x max=%x med=%x stopped=%d",
		o.N(), math.Float64bits(o.Mean()), math.Float64bits(o.Var()),
		math.Float64bits(o.Min()), math.Float64bits(o.Max()),
		math.Float64bits(m.Median.Value()), m.StoppedAt)
}

// TestShardSpecRoundTrip pins the spec wire format against its decoder.
func TestShardSpecRoundTrip(t *testing.T) {
	cfg, err := conf.WithAdditiveBias(5000, 6, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	spec := NewShardSpec(cfg, core.Variant{}, core.KernelBatched(0.02), u128.From64(1234), 7, true)
	data, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, gotCfg, gotKern, gotDyn, err := decodeShardSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, spec) {
		t.Fatalf("spec round trip: %+v vs %+v", got, spec)
	}
	if !reflect.DeepEqual(gotCfg, cfg) {
		t.Fatalf("config round trip: %v vs %v", gotCfg, cfg)
	}
	if gotKern.String() != core.KernelBatched(0.02).String() {
		t.Fatalf("kernel round trip: %v", gotKern)
	}
	if gotDyn != core.Classic {
		t.Fatalf("classic spec decoded to dynamics %q", gotDyn.Name())
	}
	if _, _, _, _, err := decodeShardSpec([]byte(`{"kind":"other/v9"}`)); err == nil {
		t.Fatal("foreign spec kind accepted")
	}
	bad := spec
	bad.Kind = "nope"
	if _, err := bad.Encode(); err == nil {
		t.Fatal("encoding a foreign kind accepted")
	}
}

// TestShardedFixedRunByteIdenticalToStream is the fixed-count acceptance
// property: coordinator runs at 1, 2, and 4 shards must fold exactly the
// per-trial results an in-process Stream produces, field for field.
func TestShardedFixedRunByteIdenticalToStream(t *testing.T) {
	cfg, err := conf.Uniform(2000, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 24
	const seed = 99
	spec := NewShardSpec(cfg, core.Variant{}, core.KernelBatched(0), core.NoBudget, 0, true)
	specBytes, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}

	var want []ShardResult
	Stream(trials, 1, seed, func(i int, src *rng.Source, a *Arena) ShardResult {
		r, err := runShardTrial(spec, cfg, core.KernelBatched(0), src, a)
		if err != nil {
			t.Errorf("trial %d: %v", i, err)
		}
		return r
	}, func(_ int, r ShardResult) { want = append(want, r) })

	for _, shards := range []int{1, 2, 4} {
		var got []ShardResult
		res, err := dist.Run(dist.Options{
			Shards:    shards,
			MaxTrials: trials,
			Seed:      seed,
			Spec:      specBytes,
			Launcher:  &dist.PipeLauncher{Build: ShardBuilder(2)},
		}, func(i int, data []byte) error {
			var r ShardResult
			if err := json.Unmarshal(data, &r); err != nil {
				return err
			}
			if i != len(got) {
				return fmt.Errorf("fold out of order: trial %d at position %d", i, len(got))
			}
			got = append(got, r)
			return nil
		}, nil, nil)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Trials != trials {
			t.Fatalf("shards=%d: folded %d trials", shards, res.Trials)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: folded results diverged from in-process Stream", shards)
		}
	}
}

// TestRunShardedConsensusByteIdenticalToStreamAdaptive is the adaptive
// acceptance property: the distributed cell stops at the same trial and
// lands on bit-identical aggregates as the in-process StreamAdaptive loop,
// at every shard count.
func TestRunShardedConsensusByteIdenticalToStreamAdaptive(t *testing.T) {
	cfg, err := conf.Uniform(2000, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	const cap = 40
	const seed = 1234
	rule := ConsensusRule(0.02, cap)

	ref := NewAdaptiveMetric("consensus T", rule)
	failedRef := 0
	refRes := StreamAdaptive(
		AdaptiveOptions{MaxTrials: cap, Parallelism: 4, Seed: seed},
		func(i int, src *rng.Source, a *Arena) float64 {
			tt, _, err := consensusTime(a, cfg, src, core.NoBudget, core.KernelBatched(0))
			if err != nil {
				return math.NaN()
			}
			return tt.Float64()
		},
		func(_ int, v float64) {
			if math.IsNaN(v) {
				failedRef++
				return
			}
			ref.Add(v)
		},
		StopWhenAll(ref))

	spec := NewShardSpec(cfg, core.Variant{}, core.KernelBatched(0), core.NoBudget, 0, false)
	for _, shards := range []int{1, 2, 4} {
		metric := NewAdaptiveMetric("consensus T", rule)
		res, failed, err := RunShardedConsensus(spec, metric, ShardRunOptions{
			Shards:    shards,
			MaxTrials: cap,
			Seed:      seed,
			Launcher:  &dist.PipeLauncher{Build: ShardBuilder(2)},
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Trials != refRes.Trials || res.Stopped != refRes.Stopped || failed != failedRef {
			t.Fatalf("shards=%d: trials=%d stopped=%v failed=%d, want %d/%v/%d",
				shards, res.Trials, res.Stopped, failed, refRes.Trials, refRes.Stopped, failedRef)
		}
		if got, want := metricFingerprint(metric), metricFingerprint(ref); got != want {
			t.Fatalf("shards=%d: aggregates diverged:\n%s\nwant\n%s", shards, got, want)
		}
	}
}

// TestShardedLargeNByteIdenticalAndResumable is the 128-bit-clock
// acceptance test: at n = 10¹⁰ (n² ≈ 10²⁰, past every int64 clock) under
// the auto kernel, sharded runs at 1, 2, and 4 shards fold exactly the
// in-process per-trial results, and a run killed mid-stream resumes from
// its checkpoint to bit-identical aggregates. The auto kernel's window
// leaping keeps a 10¹⁰-agent consensus trial in the milliseconds.
func TestShardedLargeNByteIdenticalAndResumable(t *testing.T) {
	cfg, err := conf.Uniform(10_000_000_000, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 8
	const seed = 424
	kern := core.KernelAuto(0)
	spec := NewShardSpec(cfg, core.Variant{}, kern, core.NoBudget, 0, false)
	specBytes, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}

	var want []ShardResult
	Stream(trials, 1, seed, func(i int, src *rng.Source, a *Arena) ShardResult {
		r, err := runShardTrial(spec, cfg, kern, src, a)
		if err != nil {
			t.Errorf("trial %d: %v", i, err)
		}
		return r
	}, func(_ int, r ShardResult) { want = append(want, r) })
	for i, r := range want {
		if r.Outcome != "consensus" {
			t.Fatalf("trial %d outcome %q at n=1e10", i, r.Outcome)
		}
		if got := r.Interactions(); got.IsZero() {
			t.Fatalf("trial %d: zero interaction clock", i)
		}
	}

	for _, shards := range []int{1, 2, 4} {
		var got []ShardResult
		res, err := dist.Run(dist.Options{
			Shards:    shards,
			MaxTrials: trials,
			Seed:      seed,
			Spec:      specBytes,
			Launcher:  &dist.PipeLauncher{Build: ShardBuilder(1)},
		}, func(i int, data []byte) error {
			var r ShardResult
			if err := json.Unmarshal(data, &r); err != nil {
				return err
			}
			got = append(got, r)
			return nil
		}, nil, nil)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Trials != trials || !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: folded %d trials, identical=%v", shards, res.Trials, reflect.DeepEqual(got, want))
		}
	}

	// Kill after one wave, then resume from the checkpoint: the folded
	// sequence must match the uninterrupted reference field for field.
	ckpt := filepath.Join(t.TempDir(), "largen.ckpt")
	killWaves := 1
	killedFc := &foldCount{}
	_, err = dist.Run(dist.Options{
		Shards: 2, MaxTrials: trials, Wave: 4, Seed: seed, Spec: specBytes,
		Launcher: &killAfterWaves{
			inner: &dist.PipeLauncher{Build: ShardBuilder(1)}, waves: killWaves},
		CheckpointPath: ckpt,
		MaxRelaunches:  dist.NoRelaunch,
		Log:            io.Discard,
	}, func(i int, data []byte) error { killedFc.N++; return nil }, nil, killedFc)
	if err == nil || !strings.Contains(err.Error(), "injected kill") {
		t.Fatalf("expected injected kill, got %v", err)
	}

	var got []ShardResult
	fc := &foldCount{}
	res, err := dist.Run(dist.Options{
		Shards: 2, MaxTrials: trials, Wave: 4, Seed: seed, Spec: specBytes,
		Launcher:       &dist.PipeLauncher{Build: ShardBuilder(1)},
		CheckpointPath: ckpt,
	}, func(i int, data []byte) error {
		var r ShardResult
		if err := json.Unmarshal(data, &r); err != nil {
			return err
		}
		if i != fc.N {
			return fmt.Errorf("fold out of order: trial %d at position %d", i, fc.N)
		}
		fc.N++
		got = append(got, r)
		return nil
	}, nil, fc)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if res.ResumedFrom == 0 {
		t.Fatal("resume started from trial 0; the kill left no progress to resume")
	}
	if !reflect.DeepEqual(got, want[res.ResumedFrom:]) {
		t.Fatalf("resumed tail diverged from uninterrupted reference (resumed from %d)", res.ResumedFrom)
	}
}

// foldCount is a minimal checkpointable state: the number of folded trials.
type foldCount struct {
	N int `json:"n"`
}

func (s *foldCount) Snapshot() ([]byte, error) { return json.Marshal(s) }
func (s *foldCount) Restore(b []byte) error    { return json.Unmarshal(b, s) }

// killAfterWaves fails shard 0's command stream once its wave budget is
// spent, simulating a coordinator killed mid-run (after wave w, before the
// next one completes).
type killAfterWaves struct {
	inner dist.Launcher
	waves int
}

func (l *killAfterWaves) Launch(shard, shards int) (*dist.Conn, error) {
	c, err := l.inner.Launch(shard, shards)
	if err != nil || shard != 0 {
		return c, err
	}
	c.W = &killingWriter{w: c.W, remaining: &l.waves}
	return c, nil
}

// killingWriter counts wave commands and injects a write failure when the
// budget runs out.
type killingWriter struct {
	w         io.WriteCloser
	remaining *int
}

func (k *killingWriter) Write(p []byte) (int, error) {
	if bytes.Contains(p, []byte(`"type":"wave"`)) {
		if *k.remaining <= 0 {
			return 0, errors.New("injected kill")
		}
		*k.remaining--
	}
	return k.w.Write(p)
}

func (k *killingWriter) Close() error { return k.w.Close() }

// TestShardedConsensusResumeMidWave is the ISSUE 4 resume regression test
// at the cell level: a sharded adaptive cell killed after wave w resumes
// from its checkpoint and finishes with aggregates bit-identical to an
// uninterrupted run.
func TestShardedConsensusResumeMidWave(t *testing.T) {
	cfg, err := conf.Uniform(2000, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	const cap = 30
	const seed = 77
	// A rule that cannot fire keeps the cell running to the cap, so the
	// kill lands mid-run for sure.
	rule := ConsensusRule(1e-9, cap)
	spec := NewShardSpec(cfg, core.Variant{}, core.KernelBatched(0), core.NoBudget, 0, false)

	full := NewAdaptiveMetric("consensus T", rule)
	fullRes, fullFailed, err := RunShardedConsensus(spec, full, ShardRunOptions{
		Shards: 2, MaxTrials: cap, Wave: 4, Seed: seed,
		Launcher: &dist.PipeLauncher{Build: ShardBuilder(2)},
	})
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "cell.ckpt")
	killed := NewAdaptiveMetric("consensus T", rule)
	_, _, err = RunShardedConsensus(spec, killed, ShardRunOptions{
		Shards: 2, MaxTrials: cap, Wave: 4, Seed: seed,
		Launcher:   &killAfterWaves{inner: &dist.PipeLauncher{Build: ShardBuilder(2)}, waves: 3},
		Checkpoint: ckpt,
		// Recovery off: this test is about the kill-then-resume loop, not
		// self-healing (which TestShardedConsensusSurvivesWorkerKill pins).
		MaxRelaunches: dist.NoRelaunch,
		Log:           io.Discard,
	})
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("injected kill")) {
		t.Fatalf("expected injected kill, got %v", err)
	}

	resumed := NewAdaptiveMetric("consensus T", rule)
	res, failed, err := RunShardedConsensus(spec, resumed, ShardRunOptions{
		Shards: 2, MaxTrials: cap, Wave: 4, Seed: seed,
		Launcher:   &dist.PipeLauncher{Build: ShardBuilder(2)},
		Checkpoint: ckpt,
	})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if res.ResumedFrom != 12 {
		t.Fatalf("resumed from trial %d, want 12 (3 waves of 4)", res.ResumedFrom)
	}
	if res.Trials != fullRes.Trials || res.Stopped != fullRes.Stopped || failed != fullFailed {
		t.Fatalf("resumed run outcome %+v/%d, want %+v/%d", res, failed, fullRes, fullFailed)
	}
	if got, want := metricFingerprint(resumed), metricFingerprint(full); got != want {
		t.Fatalf("resumed aggregates diverged:\n%s\nwant\n%s", got, want)
	}
}

// killOnceLauncher kills shard 0's first worker incarnation after its wave
// budget, then launches replacements untouched — one clean mid-run death.
type killOnceLauncher struct {
	inner  dist.Launcher
	budget int
	killed bool
}

func (l *killOnceLauncher) Launch(shard, shards int) (*dist.Conn, error) {
	c, err := l.inner.Launch(shard, shards)
	if err != nil || shard != 0 || l.killed {
		return c, err
	}
	l.killed = true
	budget := l.budget
	c.W = &killingWriter{w: c.W, remaining: &budget}
	return c, nil
}

// TestShardedConsensusSurvivesWorkerKill pins self-healing at the cell
// level: the same kind of mid-run worker death as the resume test, with
// recovery left at its default, heals in place — no manual resume — and
// the cell's aggregates stay bit-identical to an undisturbed run.
func TestShardedConsensusSurvivesWorkerKill(t *testing.T) {
	cfg, err := conf.Uniform(2000, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	const cap = 30
	const seed = 77
	rule := ConsensusRule(1e-9, cap)
	spec := NewShardSpec(cfg, core.Variant{}, core.KernelBatched(0), core.NoBudget, 0, false)

	full := NewAdaptiveMetric("consensus T", rule)
	fullRes, fullFailed, err := RunShardedConsensus(spec, full, ShardRunOptions{
		Shards: 2, MaxTrials: cap, Wave: 4, Seed: seed,
		Launcher: &dist.PipeLauncher{Build: ShardBuilder(2)},
	})
	if err != nil {
		t.Fatal(err)
	}

	healed := NewAdaptiveMetric("consensus T", rule)
	res, failed, err := RunShardedConsensus(spec, healed, ShardRunOptions{
		Shards: 2, MaxTrials: cap, Wave: 4, Seed: seed,
		Launcher: &killOnceLauncher{inner: &dist.PipeLauncher{Build: ShardBuilder(2)}, budget: 2},
		Log:      io.Discard,
	})
	if err != nil {
		t.Fatalf("self-heal run: %v", err)
	}
	if res.Relaunches == 0 {
		t.Fatalf("res = %+v, want at least one relaunch", res)
	}
	if res.Trials != fullRes.Trials || res.Stopped != fullRes.Stopped || failed != fullFailed {
		t.Fatalf("healed run outcome %+v/%d, want %+v/%d", res, failed, fullRes, fullFailed)
	}
	if got, want := metricFingerprint(healed), metricFingerprint(full); got != want {
		t.Fatalf("healed aggregates diverged:\n%s\nwant\n%s", got, want)
	}
}

// k4Output renders the K4 experiment with the given params.
func k4Output(t *testing.T, p Params) string {
	t.Helper()
	e, ok := Find("K4-lower-bound")
	if !ok {
		t.Fatal("K4-lower-bound not registered")
	}
	var buf bytes.Buffer
	if err := e.Run(p, &buf); err != nil {
		t.Fatalf("K4 run: %v\noutput so far:\n%s", err, buf.String())
	}
	return buf.String()
}

// TestK4ShardedKilledResumedTablesByteIdentical is the acceptance check at
// the experiment level, in one pass over a single in-process reference
// render: (1) a 2-shard coordinator run of K4 produces a byte-identical
// table; (2) a checkpointed sharded run killed partway through, then rerun
// against the same checkpoint directory, also reproduces the table byte
// for byte — the full kill-resume-compare loop of the ISSUE 4 acceptance
// criteria.
func TestK4ShardedKilledResumedTablesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("renders the K4 experiment three times")
	}
	// Trials caps the adaptive budget at exactly MinAdaptiveTrials per
	// cell, keeping the three renders affordable while still exercising
	// every cell of the quick grid.
	base := Params{Quick: true, Seed: 5, Trials: MinAdaptiveTrials}
	want := k4Output(t, base)

	sharded := base
	sharded.Shards = 2
	sharded.ShardLauncher = &dist.PipeLauncher{Build: ShardBuilder(2)}
	if got := k4Output(t, sharded); got != want {
		t.Fatalf("K4 table with 2 shards diverged from in-process run:\n%s\nwant:\n%s", got, want)
	}

	dir := t.TempDir()
	killedParams := sharded
	killedParams.CheckpointDir = dir
	killedParams.ShardLauncher = &killAfterWaves{inner: &dist.PipeLauncher{Build: ShardBuilder(2)}, waves: 2}
	killedParams.MaxRelaunches = dist.NoRelaunch
	e, _ := Find("K4-lower-bound")
	var buf bytes.Buffer
	if err := e.Run(killedParams, &buf); err == nil {
		t.Fatal("expected the killed run to fail")
	}

	resumed := sharded
	resumed.CheckpointDir = dir
	if got := k4Output(t, resumed); got != want {
		t.Fatalf("resumed K4 table diverged from uninterrupted run:\n%s\nwant:\n%s", got, want)
	}
}

// TestStreamIndicesMatchesStream pins the shard entry point against the
// plain engine: running the full index range through StreamIndices equals
// Stream, and a strided subset reproduces exactly the corresponding trials.
func TestStreamIndicesMatchesStream(t *testing.T) {
	cfg, err := conf.Uniform(1000, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 12
	trial := func(i int, src *rng.Source, a *Arena) int64 {
		tt, _, err := consensusTime(a, cfg, src, core.NoBudget, core.KernelExact)
		if err != nil {
			t.Errorf("trial %d: %v", i, err)
		}
		return int64(tt.Lo)
	}
	byIndex := map[int]int64{}
	Stream(trials, 1, 42, trial, func(i int, v int64) { byIndex[i] = v })

	all := make([]int, trials)
	for i := range all {
		all[i] = i
	}
	for _, par := range []int{1, 3} {
		got := map[int]int64{}
		StreamIndices(all, par, 42, trial, func(i int, v int64) { got[i] = v })
		if !reflect.DeepEqual(got, byIndex) {
			t.Fatalf("parallelism %d: full-range StreamIndices diverged", par)
		}
	}

	strided := []int{1, 4, 7, 10}
	var order []int
	StreamIndices(strided, 2, 42, trial, func(i int, v int64) {
		order = append(order, i)
		if v != byIndex[i] {
			t.Errorf("index %d: got %d, want %d", i, v, byIndex[i])
		}
	})
	if !reflect.DeepEqual(order, strided) {
		t.Fatalf("delivery order %v, want %v", order, strided)
	}
}

// TestAdaptiveMetricJSONPreservesRule checks the checkpoint round trip of a
// metric: aggregates and latch restore bit-exactly, and the rule keeps
// working after restore.
func TestAdaptiveMetricJSONPreservesRule(t *testing.T) {
	rule := ConsensusRule(0.5, 100)
	m := NewAdaptiveMetric("x", rule)
	for _, v := range []float64{10, 11, 10.5, 9.8} {
		m.Add(v)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	back := NewAdaptiveMetric("x", rule)
	if err := json.Unmarshal(data, back); err != nil {
		t.Fatal(err)
	}
	if metricFingerprint(back) != metricFingerprint(m) {
		t.Fatalf("metric round trip diverged")
	}
	if back.Rule == nil {
		t.Fatal("rule lost in restore")
	}
	// One more sample on both must keep them in lockstep, including the
	// latch transition.
	m.Add(10.2)
	back.Add(10.2)
	if metricFingerprint(back) != metricFingerprint(m) {
		t.Fatalf("post-restore folds diverged")
	}
}

// TestElasticFleetByteIdenticalToStreamAdaptive is the elastic-membership
// acceptance test at the experiment layer: an adaptive consensus cell run
// on a fleet where two workers join late (one of which then leaves for
// good) and an original member is partitioned mid-wave must stop at the
// same trial and land on bit-identical aggregates as the in-process
// StreamAdaptive loop.
func TestElasticFleetByteIdenticalToStreamAdaptive(t *testing.T) {
	cfg, err := conf.Uniform(2000, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	const cap = 40
	const seed = 1234
	rule := ConsensusRule(0.02, cap)

	ref := NewAdaptiveMetric("consensus T", rule)
	failedRef := 0
	refRes := StreamAdaptive(
		AdaptiveOptions{MaxTrials: cap, Parallelism: 4, Seed: seed},
		func(i int, src *rng.Source, a *Arena) float64 {
			tt, _, err := consensusTime(a, cfg, src, core.NoBudget, core.KernelBatched(0))
			if err != nil {
				return math.NaN()
			}
			return tt.Float64()
		},
		func(_ int, v float64) {
			if math.IsNaN(v) {
				failedRef++
				return
			}
			ref.Add(v)
		},
		StopWhenAll(ref))

	// The leaving joiner (admitted second, so member id 3): one mid-wave
	// crash, then every relaunch dies on connect until its budget is gone
	// and the coordinator writes the member off.
	leaveSched := []dist.Fault{{Shard: 3, Kind: dist.FaultCrashMidWave, After: 1}}
	for l := 1; l <= dist.DefaultMaxRelaunches+1; l++ {
		leaveSched = append(leaveSched, dist.Fault{Shard: 3, Launch: l, Kind: dist.FaultCrashOnConnect})
	}
	join := make(chan dist.Launcher, 2)
	join <- &dist.PipeLauncher{Build: ShardBuilder(2)} // joins late, stays
	join <- &dist.FaultLauncher{                       // joins late, leaves mid-run
		Inner:    &dist.PipeLauncher{Build: ShardBuilder(2)},
		Schedule: leaveSched,
	}

	spec := NewShardSpec(cfg, core.Variant{}, core.KernelBatched(0), core.NoBudget, 0, false)
	metric := NewAdaptiveMetric("consensus T", rule)
	res, failed, err := RunShardedConsensus(spec, metric, ShardRunOptions{
		Shards:    2,
		MaxTrials: cap,
		Wave:      4,
		Seed:      seed,
		Launcher: &dist.FaultLauncher{
			Inner:    &dist.PipeLauncher{Build: ShardBuilder(2)},
			Schedule: []dist.Fault{{Shard: 1, Kind: dist.FaultPartition, After: 3}},
		},
		Join:          join,
		WorkerTimeout: 500 * time.Millisecond,
		Log:           io.Discard,
	})
	if err != nil {
		t.Fatalf("elastic fleet run: %v", err)
	}
	if res.Joined != 2 {
		t.Fatalf("res = %+v, want both joiners admitted", res)
	}
	if res.Relaunches == 0 {
		t.Fatalf("res = %+v, want the partition recovered", res)
	}
	if res.Trials != refRes.Trials || res.Stopped != refRes.Stopped || failed != failedRef {
		t.Fatalf("trials=%d stopped=%v failed=%d, want %d/%v/%d",
			res.Trials, res.Stopped, failed, refRes.Trials, refRes.Stopped, failedRef)
	}
	if got, want := metricFingerprint(metric), metricFingerprint(ref); got != want {
		t.Fatalf("elastic fleet aggregates diverged:\n%s\nwant\n%s", got, want)
	}
}
