package experiment

import (
	"fmt"
	"io"
	"math"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/stats"
)

// f3Threshold regenerates the approximate-majority threshold curve: the
// probability that the initial plurality wins as a function of the additive
// bias, which transitions from chance to certainty around Θ(√(n log n)).
func f3Threshold() Experiment {
	return Experiment{
		ID:       "F3-majority-threshold",
		Title:    "Plurality success probability vs additive bias",
		Artifact: "Theorem 2(2) + Lemma 2 (Ω(√(n log n)) threshold)",
		Run: func(p Params, w io.Writer) error {
			trials := p.trials(60)
			ns := pick(p, []int64{1 << 12}, []int64{1 << 12, 1 << 14})
			ks := pick(p, []int{2}, []int{2, 8})
			type point struct {
				label string
				beta  func(n int64) float64
			}
			points := []point{
				{"0", func(n int64) float64 { return 0 }},
				{"√n/2", func(n int64) float64 { return math.Sqrt(float64(n)) / 2 }},
				{"√n", func(n int64) float64 { return math.Sqrt(float64(n)) }},
				{"2√n", func(n int64) float64 { return 2 * math.Sqrt(float64(n)) }},
				{"√(n ln n)", func(n int64) float64 { return math.Sqrt(float64(n) * math.Log(float64(n))) }},
				{"2√(n ln n)", func(n int64) float64 { return 2 * math.Sqrt(float64(n)*math.Log(float64(n))) }},
				{"4√(n ln n)", func(n int64) float64 { return 4 * math.Sqrt(float64(n)*math.Log(float64(n))) }},
			}
			tbl := NewTable(
				fmt.Sprintf("Initial-plurality win rate, %d trials per cell (Wilson 95%% CI):", trials),
				"n", "k", "bias", "β", "win rate", "95% CI")
			for _, n := range ns {
				for _, k := range ks {
					for _, pt := range points {
						beta := int64(pt.beta(n))
						cfg, err := conf.WithAdditiveBias(n, k, beta, 0)
						if err != nil {
							return err
						}
						_, winRate, done, err := timeStats(p,
							p.Seed+uint64(n)*53+uint64(k)*59+uint64(beta), cfg, trials, core.NoBudget)
						if err != nil {
							return err
						}
						wins := int(winRate*float64(done) + 0.5)
						lo, hi, err := stats.WilsonInterval(wins, done, 1.96)
						if err != nil {
							return err
						}
						tbl.AddRowf(n, k, pt.label, beta,
							fmt.Sprintf("%.2f", winRate),
							fmt.Sprintf("[%.2f, %.2f]", lo, hi))
					}
				}
			}
			if err := tbl.Fprint(w); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w, "\nReading: near-chance (≈1/k for k opinions, 1/2 for k=2) at β=0,\n"+
				"rising through the Θ(√(n log n)) regime to ≈1 at 4√(n ln n) —\n"+
				"the approximate-majority threshold of Theorem 2(2).\n")
			return err
		},
	}
}
