package experiment

import (
	"bytes"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/u128"
)

// renderRuns serializes tracked-run outputs byte-for-byte, so the
// determinism tests below compare complete trial outcomes, not summaries.
func renderRuns(runs []USDRun) []byte {
	var b bytes.Buffer
	for i, r := range runs {
		fmt.Fprintf(&b, "%d %+v %+v %d\n", i, r.Result, r.Phases, r.InitialLeader)
	}
	return b.Bytes()
}

// TestCollectByteIdenticalAcrossParallelism is the arena-safety contract:
// with a fixed seed, Collect output must be byte-identical at parallelism
// 1, 4, and GOMAXPROCS, for both kernels. Any state leaking between trials
// through a reused simulator, tracker, or source would break this.
func TestCollectByteIdenticalAcrossParallelism(t *testing.T) {
	cfg, err := conf.Uniform(2000, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	levels := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, kern := range []core.Kernel{core.KernelExact, core.KernelBatched(0)} {
		var want []byte
		for _, par := range levels {
			runs := CollectArena(60, par, 99, func(i int, src *rng.Source, a *Arena) USDRun {
				r, err := RunTracked(a, cfg, src, core.NoBudget, 0, kern)
				if err != nil {
					t.Errorf("trial %d: %v", i, err)
				}
				return r
			})
			got := renderRuns(runs)
			if want == nil {
				want = got
			} else if !bytes.Equal(got, want) {
				t.Fatalf("kernel %v: parallelism %d diverged from parallelism %d\n%s\nvs\n%s",
					kern, par, levels[0], got[:200], want[:200])
			}
		}
	}
}

// TestArenaReuseMatchesFreshAllocation pins Collect's arena path to the
// no-arena path: reusing a worker's simulator and tracker must be
// observationally identical to allocating per trial.
func TestArenaReuseMatchesFreshAllocation(t *testing.T) {
	cfg, err := conf.WithAdditiveBias(3000, 6, 200, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, kern := range []core.Kernel{core.KernelExact, core.KernelBatched(0)} {
		reused := CollectArena(40, 1, 7, func(i int, src *rng.Source, a *Arena) USDRun {
			r, err := RunTracked(a, cfg, src, core.NoBudget, 0, kern)
			if err != nil {
				t.Errorf("trial %d: %v", i, err)
			}
			return r
		})
		fresh := Collect(40, 1, 7, func(i int, src *rng.Source) USDRun {
			r, err := RunTracked(nil, cfg, src, core.NoBudget, 0, kern)
			if err != nil {
				t.Errorf("trial %d: %v", i, err)
			}
			return r
		})
		if !bytes.Equal(renderRuns(reused), renderRuns(fresh)) {
			t.Fatalf("kernel %v: arena reuse changed trial outcomes", kern)
		}
	}
}

func TestStreamDeliversInOrder(t *testing.T) {
	for _, par := range []int{1, 3, 16} {
		var got []int
		Stream(200, par, 1, func(i int, src *rng.Source, _ *Arena) int {
			return i
		}, func(i int, v int) {
			if i != v {
				t.Fatalf("sink got (%d, %d)", i, v)
			}
			got = append(got, v)
		})
		if len(got) != 200 {
			t.Fatalf("parallelism %d: %d deliveries, want 200", par, len(got))
		}
		for i, v := range got {
			if i != v {
				t.Fatalf("parallelism %d: out-of-order delivery at %d: %d", par, i, v)
			}
		}
	}
}

// TestStreamAggregationByteIdentical checks that order-sensitive streamed
// aggregation (Welford mean/variance and a P² sketch) is bit-identical
// across parallelism levels — the property that lets streamed sweeps
// replace slice-collecting ones without changing any reported number.
func TestStreamAggregationByteIdentical(t *testing.T) {
	run := func(par int) string {
		var o stats.Online
		med := stats.NewP2(0.5)
		Stream(500, par, 3, func(i int, src *rng.Source, _ *Arena) float64 {
			return src.Normal()*10 + float64(i%7)
		}, func(_ int, v float64) {
			o.Add(v)
			med.Add(v)
		})
		return fmt.Sprintf("%v %v %v %v %v", o.N(), o.Mean(), o.Var(), o.Min(), med.Value())
	}
	want := run(1)
	for _, par := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		if got := run(par); got != want {
			t.Fatalf("parallelism %d: %s != %s", par, got, want)
		}
	}
}

func TestStreamBoundedInFlight(t *testing.T) {
	const par = 4
	var inFlight, maxSeen atomic.Int64
	Stream(300, par, 1, func(i int, src *rng.Source, _ *Arena) int {
		n := inFlight.Add(1)
		for {
			m := maxSeen.Load()
			if n <= m || maxSeen.CompareAndSwap(m, n) {
				break
			}
		}
		return i
	}, func(i int, v int) {
		inFlight.Add(-1)
	})
	// The dispatch window is parallelism*4; anything wildly beyond it means
	// the engine materialized unconsumed results.
	if maxSeen.Load() > par*4+par {
		t.Fatalf("max in-flight %d exceeds dispatch window", maxSeen.Load())
	}
}

func TestStreamEdgeCases(t *testing.T) {
	calls := 0
	Stream(0, 4, 1, func(i int, src *rng.Source, _ *Arena) int { return i },
		func(int, int) { calls++ })
	if calls != 0 {
		t.Fatal("zero trials must not call sink")
	}
	Stream(3, 100, 1, func(i int, src *rng.Source, _ *Arena) int { return i },
		func(int, int) { calls++ })
	if calls != 3 {
		t.Fatalf("delivered %d, want 3", calls)
	}
}

func TestArenaSimulatorAcrossConfigs(t *testing.T) {
	// One arena must survive trials over configurations with different
	// opinion counts (the tree is rebuilt) and still match fresh state.
	small, _ := conf.Uniform(500, 2, 0)
	large, _ := conf.Uniform(500, 10, 0)
	var a Arena
	for trial, cfg := range []*conf.Config{small, large, small} {
		seed := uint64(trial)
		s, err := a.Simulator(cfg, rng.New(seed), core.WithKernel(core.KernelExact))
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := core.New(cfg, rng.New(seed), core.WithKernel(core.KernelExact))
		if err != nil {
			t.Fatal(err)
		}
		if got, want := s.Run(core.NoBudget), fresh.Run(core.NoBudget); got != want {
			t.Fatalf("trial %d: arena %+v != fresh %+v", trial, got, want)
		}
	}
}

// TestStreamFoldAllocFree pins the steady-state allocation profile of the
// serial Stream fold path at zero per trial: the arena body (simulator
// reset, window loop) and the sink fold must not allocate once warm. The
// pin compares total allocations of a short and a long stream — any
// per-trial allocation shows up as growth in the difference, while the
// engine's fixed per-invocation setup cancels out.
func TestStreamFoldAllocFree(t *testing.T) {
	cfg, err := conf.Uniform(5000, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	var online stats.Online
	run := func(trials int) func() {
		return func() {
			Stream(trials, 1, 3,
				func(i int, src *rng.Source, a *Arena) float64 {
					s, err := a.Simulator(cfg, src)
					if err != nil {
						panic(err)
					}
					s.SetKernel(core.KernelAuto(0))
					return s.Run(u128.From64(20_000)).Interactions.Float64()
				},
				func(_ int, v float64) { online.Add(v) })
		}
	}
	run(4)() // warm any lazy engine state
	short := testing.AllocsPerRun(5, run(4))
	long := testing.AllocsPerRun(5, run(104))
	if perTrial := (long - short) / 100; perTrial > 0 {
		t.Errorf("Stream fold allocates %.2f objects per trial in steady state, want 0 (short=%v long=%v)",
			perTrial, short, long)
	}
}
