package experiment

import (
	"fmt"
	"io"
	"math"
	"path/filepath"

	"repro/internal/bounds"
	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/stats"
)

// k4CheckpointPath returns the per-cell checkpoint path of a sharded K4
// cell, or "" when checkpointing is off.
func k4CheckpointPath(dir string, n int64, k int) string {
	if dir == "" {
		return ""
	}
	return filepath.Join(dir, fmt.Sprintf("K4-lower-bound.n%d.k%d.ckpt", n, k))
}

// k4LowerBound exploits the regime the raised conf.MaxN unlocked: population
// sizes n ∈ (2·10⁹, 3·10⁹], where the almost-tight lower bound of El-Hayek,
// Elsässer et al. (arXiv:2505.02765) pinches against the source paper's
// Theorem 2 upper bound. Each (n, k) cell runs uniform unbiased starts on
// the batched kernel and brackets the measured mean consensus time between
// the two evaluated curves (internal/bounds), localizing the empirical
// constant inside the (UpperConst/LowerConst)·ln ln n envelope.
//
// Trials at these sizes cost seconds to tens of seconds each, so the cell
// budget is adaptive by construction: trials stream through StreamAdaptive
// and halt as soon as the consensus-time CI closes below the relative
// half-width target (Params.RelWidth, default ±5% at 95%), with
// Params.MaxTrials as the hard cap — the self-budgeting machinery this
// experiment exists to exercise.
func k4LowerBound() Experiment {
	return Experiment{
		ID:       "K4-lower-bound",
		Title:    "Consensus time bracketed in the lower-bound regime n ∈ (2e9, 3e9]",
		Artifact: "almost-tight lower bound comparison (arXiv:2505.02765) with adaptive trial budgets",
		Run: func(p Params, w io.Writer) error {
			// Quick mode keeps the full k grid but shrinks n to smoke-test
			// sizes; the envelope constants were calibrated down to n = 10⁴,
			// so the bracketing check is meaningful at both scales.
			ns := pick(p,
				[]int64{10_000, 30_000},
				[]int64{2_200_000_000, 2_600_000_000, 3_000_000_000})
			ks := []int{2, 32, 512}
			maxTrials := p.maxTrials(24)
			rel := p.relWidth()

			tbl := NewTable(
				fmt.Sprintf("Uniform start, batched kernel (tol %g), adaptive stopping at ±%.0f%% CI (%.0f%%, cap %d):",
					core.DefaultTolerance, 100*rel, 100*DefaultCILevel, maxTrials),
				"n", "k", "trials", "mean T", "ci95 ±", "median", "lower", "upper", "T/upper", "verdict")

			type cell struct {
				n       int64
				k       int
				mean    float64
				lo, hi  float64
				trials  int
				stopped bool
			}
			var cells []cell
			allBracketed := true
			for _, n := range ns {
				for _, k := range ks {
					cfg, err := conf.Uniform(n, k, 0)
					if err != nil {
						return err
					}
					metric := NewAdaptiveMetric("consensus T", p.consensusRule(maxTrials))
					failed := 0
					cellSeed := p.Seed + uint64(n)*31 + uint64(k)*1_000_003
					var res AdaptiveResult
					if p.Shards >= 1 {
						// Distributed cell: the coordinator folds shard
						// results in global trial order and evaluates the
						// same stopping rule after every fold, so the table
						// below is byte-identical to the in-process branch.
						dres, dfailed, err := RunShardedConsensus(
							NewShardSpec(cfg, core.Variant{}, core.KernelBatched(0), core.NoBudget, 0, false),
							metric,
							ShardRunOptions{
								Shards:        p.Shards,
								MaxTrials:     maxTrials,
								Seed:          cellSeed,
								Launcher:      p.ShardLauncher,
								Checkpoint:    k4CheckpointPath(p.CheckpointDir, n, k),
								Policy:        ConsensusPolicy(rel),
								WorkerTimeout: p.WorkerTimeout,
								MaxRelaunches: p.MaxRelaunches,
								Interrupt:     p.Interrupt,
							})
						if err != nil {
							return fmt.Errorf("n=%d k=%d sharded cell: %w", n, k, err)
						}
						if dres.Interrupted {
							// Stop at the cell boundary instead of printing a
							// table built on a partial fold; the cell's
							// checkpoint carries the progress.
							return fmt.Errorf("n=%d k=%d: %w", n, k, ErrInterrupted)
						}
						res = AdaptiveResult{Trials: dres.Trials, Stopped: dres.Stopped}
						failed = dfailed
					} else {
						res = StreamAdaptive(
							AdaptiveOptions{
								MaxTrials:   maxTrials,
								Parallelism: p.Parallelism,
								Seed:        cellSeed,
							},
							func(i int, src *rng.Source, a *Arena) float64 {
								t, _, err := consensusTime(a, cfg, src, core.NoBudget, core.KernelBatched(0))
								if err != nil {
									return math.NaN()
								}
								return t.Float64()
							},
							func(_ int, t float64) {
								if math.IsNaN(t) {
									failed++
									return
								}
								metric.Add(t)
							},
							StopWhenAll(metric))
					}
					if metric.Online.N() == 0 {
						return fmt.Errorf("n=%d k=%d: all %d trials failed", n, k, res.Trials)
					}
					if failed > 0 {
						fmt.Fprintf(w, "note: n=%d k=%d: %d/%d trials did not reach consensus\n",
							n, k, failed, res.Trials)
					}
					ci := stats.StudentTCI(&metric.Online, DefaultCILevel)
					lo, hi, ok := bounds.Bracket(n, k, ci.Mean)
					verdict := "bracketed"
					if !ok {
						verdict = "OUTSIDE"
						allBracketed = false
					}
					trialsCell := fmt.Sprintf("%d/%d", res.Trials, maxTrials)
					if res.Stopped {
						trialsCell += " (ci)"
					} else {
						trialsCell += " (cap)"
					}
					tbl.AddRowf(n, k, trialsCell, ci.Mean, ci.Half, metric.Median.Value(),
						lo, hi, ci.Mean/hi, verdict)
					cells = append(cells, cell{n, k, ci.Mean, lo, hi, res.Trials, res.Stopped})
				}
			}
			if err := tbl.Fprint(w); err != nil {
				return err
			}

			// Per-k localization of the empirical constant inside the
			// envelope: where T/upper sits, and how much of the ln ln n gap
			// the measurements actually use.
			if _, err := fmt.Fprintf(w, "\nEnvelope localization (gap = upper/lower = %.3g·ln ln n):\n",
				bounds.UpperConst/bounds.LowerConst); err != nil {
				return err
			}
			for _, k := range ks {
				var ratios []float64
				var trialsUsed, trialsCap int
				for _, c := range cells {
					if c.k != k {
						continue
					}
					ratios = append(ratios, c.mean/c.hi)
					trialsUsed += c.trials
					trialsCap += maxTrials
				}
				s, err := stats.Summarize(ratios)
				if err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w,
					"  k=%-4d T/upper ∈ [%.3f, %.3f] across n; adaptive spent %d/%d budgeted trials\n",
					k, s.Min, s.Max, trialsUsed, trialsCap); err != nil {
					return err
				}
			}

			summary := "PASS: every measured mean lies between the lower- and upper-bound curves."
			if !allBracketed {
				summary = "FAIL: at least one mean escaped the envelope; inspect the table."
			}
			if _, err := fmt.Fprintf(w,
				"\n%s\nReading: the curves are the Theorem 2 upper bound %.3g·n²·ln n/x₁ and the\n"+
					"almost-tight lower bound %.3g·n²·ln n/(x₁·ln ln n) (arXiv:2505.02765), both with\n"+
					"calibrated constants (see internal/bounds). Adaptive stopping spends trials only\n"+
					"until the ±%.0f%% CI closes, so expensive billion-agent cells self-budget.\n",
				summary, bounds.UpperConst, bounds.LowerConst, 100*rel); err != nil {
				return err
			}
			if !allBracketed {
				return fmt.Errorf("K4-lower-bound: a measured mean escaped the bounds envelope")
			}
			return nil
		},
	}
}
