package experiment

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	// Title is printed above the table.
	Title string
	cols  []string
	rows  [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, cols: cols}
}

// AddRow appends a row; missing cells render empty, extra cells are kept
// and widen the table.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted cells, one per format/value pair
// produced by applying fmt.Sprintf("%v") to each value.
func (t *Table) AddRowf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		case float32:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, cells)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) error {
	ncols := len(t.cols)
	for _, r := range t.rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	for i, c := range t.cols {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := 0; i < ncols; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.cols)
	total := ncols*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, r := range t.rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Fprint(&b)
	return b.String()
}
