// Package experiment defines the named, reproducible experiments that
// regenerate every table and figure of the paper's evaluation, as indexed
// in DESIGN.md. Each experiment prints one or more formatted tables (and
// ASCII figures for trajectory artifacts) to a writer; cmd/experiments and
// the root-level benchmarks are thin wrappers around this package.
package experiment

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/stats"
)

// Params controls an experiment run.
type Params struct {
	// Quick shrinks the parameter grids and trial counts so the whole
	// suite finishes in roughly a minute.
	Quick bool
	// Seed is the base seed; all trial streams derive from it.
	Seed uint64
	// Trials overrides the per-cell trial count when positive.
	Trials int
	// Parallelism bounds concurrent trials; 0 means GOMAXPROCS.
	Parallelism int
	// Kernel selects the stepping kernel for the configuration-level USD
	// simulations the experiments perform. The zero value is
	// core.KernelExact. Experiments whose subject is a specific stepping
	// variant ignore it: K1 compares both kernels, K2 always runs batched,
	// and A1-skip ablates geometric skipping within the exact kernel.
	// Engine-comparison baselines (agent-level, gossip, exact chain) are
	// not configuration-level USD runs and are unaffected.
	Kernel core.Kernel
	// Variant focuses the K5-variants experiment on one dynamics variant
	// arm, optionally overriding its stubborn counts (e.g. a -variant
	// stubborn:50,0 flag). The zero Variant (classic) runs every arm. The
	// paper-reproduction experiments simulate the classic dynamics by
	// definition and ignore it.
	Variant core.Variant
	// Adaptive switches per-cell trial counts to sequential stopping where
	// an experiment supports it (K3, and cmd/sweep points): trials run in
	// waves until the consensus-time CI closes below RelWidth or MaxTrials
	// is reached. K4-lower-bound is adaptive by construction and only reads
	// RelWidth/MaxTrials from here.
	Adaptive bool
	// RelWidth is the adaptive stopping target: the relative half-width of
	// the 95% Student-t CI below which a metric halts. 0 means
	// DefaultRelWidth.
	RelWidth float64
	// MaxTrials caps adaptive trials per cell; 0 means an experiment-chosen
	// default. A positive Trials overrides both (fixed and adaptive runs
	// then use the same count ceiling, which keeps -quick smoke runs cheap).
	MaxTrials int
	// Shards distributes supporting experiments' per-cell trials across
	// this many worker processes through the internal/dist coordinator
	// (currently K4-lower-bound, the billion-agent workload sharding was
	// built for). 0 keeps cells in-process; 1 runs the distributed engine
	// with a single worker (still useful for checkpointing). Sharded and
	// in-process runs of the same cell are byte-identical at every shard
	// count.
	Shards int
	// ShardLauncher starts shard workers; required when Shards >= 1.
	// cmd/experiments wires a dist.ExecLauncher that re-executes the
	// binary with the hidden -shard-worker flag.
	ShardLauncher dist.Launcher
	// CheckpointDir, when non-empty, makes sharded cells write per-cell
	// checkpoints under this directory and resume from them, so
	// interrupted multi-hour runs continue instead of restarting.
	CheckpointDir string
	// WorkerTimeout is the sharded coordinator's per-shard liveness
	// deadline (see dist.Options.WorkerTimeout); 0 disables hang detection.
	WorkerTimeout time.Duration
	// MaxRelaunches caps per-shard worker relaunches in sharded cells
	// (see dist.Options.MaxRelaunches); 0 means the dist default,
	// dist.NoRelaunch disables self-healing.
	MaxRelaunches int
	// Interrupt, when closed, gracefully stops sharded cells after their
	// in-flight wave with a final checkpoint (see dist.Options.Interrupt).
	// cmd/sweep and cmd/experiments close it on SIGINT/SIGTERM.
	Interrupt <-chan struct{}
}

// Adaptive stopping defaults shared by experiments and the CLIs.
const (
	// DefaultRelWidth is the target relative CI half-width: ±5%.
	DefaultRelWidth = 0.05
	// DefaultCILevel is the two-sided confidence level of the stopping CIs.
	DefaultCILevel = 0.95
	// MinAdaptiveTrials guards width rules against lucky early agreement:
	// no metric halts before this many trials (or the cap, if smaller).
	MinAdaptiveTrials = 5
)

// relWidth returns the effective adaptive stopping target.
func (p Params) relWidth() float64 {
	if p.RelWidth > 0 {
		return p.RelWidth
	}
	return DefaultRelWidth
}

// maxTrials returns the effective adaptive trial cap given a default,
// honoring the Trials override ahead of MaxTrials.
func (p Params) maxTrials(def int) int {
	if p.Trials > 0 {
		return p.Trials
	}
	if p.MaxTrials > 0 {
		return p.MaxTrials
	}
	if p.Quick && def > 10 {
		return def / 2
	}
	return def
}

// ConsensusRule is the standard adaptive stopping rule for a consensus-time
// metric under the given trial cap: at least MinAdaptiveTrials trials
// (clamped to the cap), then stop once the DefaultCILevel Student-t CI has
// relative half-width at most rel. The experiments and the CLIs
// (cmd/sweep -adaptive, cmd/bench's adaptive arm) all build their rules
// here, so retuning the shared defaults cannot diverge them.
func ConsensusRule(rel float64, cap int) stats.StoppingRule {
	minTrials := int64(MinAdaptiveTrials)
	if int64(cap) < minTrials {
		minTrials = int64(cap)
	}
	return stats.All(stats.AfterN(minTrials), stats.RelWidth(rel, DefaultCILevel))
}

// consensusRule is ConsensusRule at the Params' effective width target.
func (p Params) consensusRule(cap int) stats.StoppingRule {
	return ConsensusRule(p.relWidth(), cap)
}

// ConsensusPolicy is the checkpoint identity string of ConsensusRule(rel,
// cap): stopping rules are code, so distributed checkpoints record this
// declaration and reject resumes under a different policy (the cap itself
// is bound separately, via the coordinator's MaxTrials check).
func ConsensusPolicy(rel float64) string {
	return fmt.Sprintf("consensus-rule rel=%g level=%g min=%d", rel, DefaultCILevel, MinAdaptiveTrials)
}

// trials returns the effective trial count given a default.
func (p Params) trials(def int) int {
	if p.Trials > 0 {
		return p.Trials
	}
	if p.Quick && def > 10 {
		return def / 2
	}
	return def
}

// pick returns quick when Quick is set, otherwise full.
func pick[T any](p Params, quick, full T) T {
	if p.Quick {
		return quick
	}
	return full
}

// Experiment is one named reproduction artifact.
type Experiment struct {
	// ID is the DESIGN.md identifier, e.g. "T1-phases".
	ID string
	// Title is a one-line description.
	Title string
	// Artifact names the paper artifact being regenerated.
	Artifact string
	// Run executes the experiment, writing tables to w.
	Run func(p Params, w io.Writer) error
}

// All returns every registered experiment, ordered by ID group (tables,
// figures, ablations).
func All() []Experiment {
	exps := []Experiment{
		t1Phases(),
		t2Multiplicative(),
		t3Additive(),
		t4NoBias(),
		t5Baselines(),
		t6Phase1(),
		f1Undecided(),
		f2GapGrowth(),
		f3Threshold(),
		f4ModelCompare(),
		f5KScaling(),
		f6Endgame(),
		f7Fluid(),
		a1Skip(),
		a2Engine(),
		a3SelfInteraction(),
		x1Synchronized(),
		x2LargeK(),
		x3Exact(),
		x4Scheduler(),
		x5UndecidedStart(),
		k1KernelAgreement(),
		k2NScaling(),
		k3ManyOpinions(),
		k4LowerBound(),
		k5Variants(),
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
	return exps
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment in sequence, separated by headers.
func RunAll(p Params, w io.Writer) error {
	for _, e := range All() {
		if _, err := fmt.Fprintf(w, "\n=== %s — %s (%s) ===\n\n", e.ID, e.Title, e.Artifact); err != nil {
			return err
		}
		if err := e.Run(p, w); err != nil {
			return fmt.Errorf("experiment %s: %w", e.ID, err)
		}
	}
	return nil
}
