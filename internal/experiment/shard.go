package experiment

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/phase"
	"repro/internal/rng"
	"repro/internal/u128"
)

// ErrInterrupted reports that a sharded run stopped early at the user's
// request (Params.Interrupt closed): the wave in flight was folded and the
// checkpoint written, so rerunning the same command resumes where it
// stopped. The cmds test for it with errors.Is and map it to exit status
// 130.
var ErrInterrupted = errors.New("interrupted: checkpoint written, rerun the same command to resume")

// This file is the experiment side of the distributed trial engine
// (internal/dist): the versioned job specification a coordinator broadcasts
// to shard workers, the exact integer wire form of a trial result, the
// worker entry point the cmds' hidden -shard-worker mode routes into, and
// the coordinator-side helper that runs a sharded adaptive consensus cell
// byte-identically to the in-process StreamAdaptive path.

// ShardSpecKind is the job-spec discriminator of the USD trial family.
// v3 added the dynamics variant selection (Variant, Stubborn) introduced by
// the pluggable dynamics engine; v2 moved the interaction budget and every
// clock-valued result field to a 128-bit hi/lo integer encoding (the clock
// exceeds int64 once n > ~3·10⁹). Older kinds are rejected by name with a
// descriptive error rather than silently misread.
const ShardSpecKind = "usd-trial/v3"

// shardSpecKindV2 is the pre-variant-engine spec kind, recognized only to
// reject it by name.
const shardSpecKindV2 = "usd-trial/v2"

// ShardSpec is the distributed job specification of a USD trial family: a
// full opinion configuration plus the kernel and run options that the
// in-process trial functions take. Its JSON encoding is the wire and
// checkpoint identity of a run — equal configurations serialize to equal
// bytes, so the coordinator's spec hash detects any drift between a
// checkpoint and the command trying to resume it.
type ShardSpec struct {
	// Kind discriminates and versions the spec; always ShardSpecKind.
	Kind string `json:"kind"`
	// Support is the per-opinion agent count, indexed 0..k-1.
	Support []int64 `json:"support"`
	// Undecided is the initially undecided agent count.
	Undecided int64 `json:"undecided"`
	// Kernel is the stepping kernel name ("exact", "batched", or "auto").
	Kernel string `json:"kernel"`
	// Tol is the batched/auto kernel's drift tolerance (0 = default).
	Tol float64 `json:"tol"`
	// BudgetHi is the high word of the 128-bit interaction budget
	// (both words 0 = run to absorption). The clock exceeds int64 at the
	// raised population ceiling, so the wire form carries both words
	// losslessly.
	BudgetHi uint64 `json:"budget_hi"`
	// BudgetLo is the low word of the 128-bit interaction budget.
	BudgetLo uint64 `json:"budget_lo"`
	// CheckEvery is the phase-condition check interval (0 = kernel default);
	// only meaningful when Tracked.
	CheckEvery int `json:"check_every"`
	// Tracked selects the phase-tracked run (RunTracked) over the plain
	// consensus run. The two consume randomness differently under the
	// batched kernel, so the flag is part of the trial identity.
	Tracked bool `json:"tracked"`
	// Variant is the dynamics variant name (empty = classic). It is part
	// of the trial identity: equal seeds under different variants draw
	// different trajectories.
	Variant string `json:"variant,omitempty"`
	// Stubborn is the stubborn variant's per-opinion stubborn counts,
	// indexed like Support; empty for every other variant.
	Stubborn []int64 `json:"stubborn,omitempty"`
}

// NewShardSpec captures a configuration, dynamics variant, and run options
// as a distributable job spec. The spec's stubborn counts are taken from
// the variant when it carries them and from the configuration otherwise, so
// both "stubborn:b0,b1,..." specs and configurations built with
// conf.Config.Stubborn serialize identically.
func NewShardSpec(cfg *conf.Config, v core.Variant, kern core.Kernel, budget u128.U128, checkEvery int, tracked bool) ShardSpec {
	s := ShardSpec{
		Kind:       ShardSpecKind,
		Support:    append([]int64(nil), cfg.Support...),
		Undecided:  cfg.Undecided,
		Kernel:     kern.Name(),
		Tol:        kern.Tolerance(),
		BudgetHi:   budget.Hi,
		BudgetLo:   budget.Lo,
		CheckEvery: checkEvery,
		Tracked:    tracked,
	}
	if !v.Classic() {
		s.Variant = v.Name
		s.Stubborn = append([]int64(nil), v.Stubborn...)
		if s.Stubborn == nil && cfg.Stubborn != nil {
			s.Stubborn = append([]int64(nil), cfg.Stubborn...)
		}
	}
	return s
}

// Budget returns the spec's interaction budget as a 128-bit clock value.
func (s ShardSpec) Budget() u128.U128 {
	return u128.U128{Hi: s.BudgetHi, Lo: s.BudgetLo}
}

// Encode returns the spec's canonical wire bytes.
func (s ShardSpec) Encode() ([]byte, error) {
	if s.Kind != ShardSpecKind {
		return nil, fmt.Errorf("experiment: encode shard spec of kind %q, want %q", s.Kind, ShardSpecKind)
	}
	return json.Marshal(s)
}

// decodeShardSpec parses and validates wire bytes back into a spec, its
// configuration (with stubborn counts installed), its kernel, and its
// dynamics.
func decodeShardSpec(data []byte) (ShardSpec, *conf.Config, core.Kernel, core.Dynamics, error) {
	var s ShardSpec
	if err := json.Unmarshal(data, &s); err != nil {
		return s, nil, core.Kernel{}, nil, fmt.Errorf("experiment: parse shard spec: %w", err)
	}
	if s.Kind != ShardSpecKind {
		if s.Kind == shardSpecKindV2 {
			return s, nil, core.Kernel{}, nil, fmt.Errorf("experiment: shard spec kind %q, want %q: it was produced by a pre-variant-engine build; coordinator and workers must run matching binaries", s.Kind, ShardSpecKind)
		}
		return s, nil, core.Kernel{}, nil, fmt.Errorf("experiment: shard spec kind %q, want %q", s.Kind, ShardSpecKind)
	}
	cfg, err := conf.FromSupport(s.Support, s.Undecided)
	if err != nil {
		return s, nil, core.Kernel{}, nil, err
	}
	kern, err := core.ParseKernel(s.Kernel, s.Tol)
	if err != nil {
		return s, nil, core.Kernel{}, nil, err
	}
	v := core.Variant{Name: s.Variant, Stubborn: s.Stubborn}
	if err := v.Validate(); err != nil {
		return s, nil, core.Kernel{}, nil, err
	}
	if err := v.ValidateKernel(kern); err != nil {
		return s, nil, core.Kernel{}, nil, err
	}
	v.Configure(cfg)
	if err := cfg.Validate(); err != nil {
		return s, nil, core.Kernel{}, nil, err
	}
	dyn, err := v.Dynamics()
	if err != nil {
		return s, nil, core.Kernel{}, nil, err
	}
	return s, cfg, kern, dyn, nil
}

// ShardResult is the wire form of one trial outcome. Every field is integer
// or string valued, so encoding is lossless and a coordinator folding these
// payloads computes bit-identical aggregates to an in-process run.
type ShardResult struct {
	// InteractionsHi is the high word of the 128-bit interaction clock
	// at termination.
	InteractionsHi uint64 `json:"interactions_hi"`
	// InteractionsLo is the low word of the 128-bit interaction clock.
	InteractionsLo uint64 `json:"interactions_lo"`
	// Winner is the consensus opinion, or -1 without consensus.
	Winner int `json:"winner"`
	// InitialLeader is the opinion with the largest initial support.
	InitialLeader int `json:"initial_leader"`
	// Outcome is the terminal core.Outcome string.
	Outcome string `json:"outcome"`
	// PhaseEndsHi holds the high words of the 128-bit phase end clocks
	// of a tracked run (phase.Times.End), indexed by 0-based phase.
	PhaseEndsHi []uint64 `json:"phase_ends_hi,omitempty"`
	// PhaseEndsLo holds the matching low words of the phase end clocks.
	PhaseEndsLo []uint64 `json:"phase_ends_lo,omitempty"`
	// PhaseEnded holds the per-phase reached flags (phase.Times.Ended),
	// indexed by 0-based phase.
	PhaseEnded []bool `json:"phase_ended,omitempty"`
	// LeaderAtT2 is the unique significant opinion when phase 2 ended, or
	// -1 (tracked runs only).
	LeaderAtT2 int `json:"leader_at_t2,omitempty"`
}

// Consensus reports whether the trial reached consensus.
func (r ShardResult) Consensus() bool {
	return r.Outcome == core.OutcomeConsensus.String()
}

// Decided reports whether the trial terminated with a winning opinion:
// consensus, or the stubborn variant's dominance terminal (where full
// consensus is unreachable and a dominant plurality is the decision).
func (r ShardResult) Decided() bool {
	return r.Winner >= 0 &&
		(r.Outcome == core.OutcomeConsensus.String() || r.Outcome == core.OutcomeDominance.String())
}

// Interactions returns the trial's terminal interaction clock.
func (r ShardResult) Interactions() u128.U128 {
	return u128.U128{Hi: r.InteractionsHi, Lo: r.InteractionsLo}
}

// PhaseTimes reassembles the tracked run's phase end times from the wire
// fields; the zero Times is returned for untracked results.
func (r ShardResult) PhaseTimes() phase.Times {
	t := phase.NewTimes()
	t.LeaderAtT2 = r.LeaderAtT2
	for i := 0; i < phase.Count && i < len(r.PhaseEnded); i++ {
		if !r.PhaseEnded[i] {
			continue
		}
		t.Ended[i] = true
		if i < len(r.PhaseEndsHi) && i < len(r.PhaseEndsLo) {
			t.End[i] = u128.U128{Hi: r.PhaseEndsHi[i], Lo: r.PhaseEndsLo[i]}
		}
	}
	return t
}

// ShardBuilder returns the dist.BuildRunner that turns a USD job spec into
// executable trials on the shared-arena engine, running a shard's assigned
// global indices at the given worker-local parallelism. Per-trial results
// depend only on (spec, seed, index), so worker parallelism affects
// wall-clock only.
func ShardBuilder(parallelism int) dist.BuildRunner {
	return func(spec []byte, seed uint64) (dist.TrialRunner, error) {
		s, cfg, kern, dyn, err := decodeShardSpec(spec)
		if err != nil {
			return nil, err
		}
		// One option slice per runner, nil for classic: the classic fleet
		// path stays exactly the option-free arena reset it was before the
		// variant engine (and allocation-free per trial).
		var opts []core.Option
		if dyn != core.Classic {
			opts = []core.Option{core.WithDynamics(dyn)}
		}
		return func(indices []int, emit func(trial int, data []byte)) error {
			// The trial closure runs on the worker pool's goroutines, so
			// the first-error latch needs a lock (unlike emitErr below,
			// which only the single in-order fold goroutine touches).
			var mu sync.Mutex
			var firstErr error
			trial := func(i int, src *rng.Source, a *Arena) ShardResult {
				r, err := runShardTrial(s, cfg, kern, src, a, opts...)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("trial %d: %w", i, err)
					}
					mu.Unlock()
				}
				return r
			}
			var emitErr error
			StreamIndices(indices, parallelism, seed, trial, func(i int, r ShardResult) {
				if emitErr != nil {
					return
				}
				data, err := json.Marshal(r)
				if err != nil {
					emitErr = err
					return
				}
				emit(i, data)
			})
			if firstErr != nil {
				return firstErr
			}
			return emitErr
		}, nil
	}
}

// runShardTrial executes one trial of the spec on the worker's arena.
// Errors are configuration-level (simulator construction); ordinary
// non-consensus terminations ride in the result's Outcome.
func runShardTrial(s ShardSpec, cfg *conf.Config, kern core.Kernel, src *rng.Source, a *Arena, opts ...core.Option) (ShardResult, error) {
	if s.Tracked {
		run, err := RunTracked(a, cfg, src, s.Budget(), s.CheckEvery, kern, opts...)
		if err != nil {
			return ShardResult{}, err
		}
		endsHi := make([]uint64, phase.Count)
		endsLo := make([]uint64, phase.Count)
		for i, e := range run.Phases.End {
			endsHi[i], endsLo[i] = e.Hi, e.Lo
		}
		return ShardResult{
			InteractionsHi: run.Result.Interactions.Hi,
			InteractionsLo: run.Result.Interactions.Lo,
			Winner:         run.Result.Winner,
			InitialLeader:  run.InitialLeader,
			Outcome:        run.Result.Outcome.String(),
			PhaseEndsHi:    endsHi,
			PhaseEndsLo:    endsLo,
			PhaseEnded:     append([]bool(nil), run.Phases.Ended[:]...),
			LeaderAtT2:     run.Phases.LeaderAtT2,
		}, nil
	}
	sim, err := a.Simulator(cfg, src, opts...)
	if err != nil {
		return ShardResult{}, err
	}
	sim.SetKernel(kern)
	leader, _ := cfg.Max()
	res := sim.Run(s.Budget())
	return ShardResult{
		InteractionsHi: res.Interactions.Hi,
		InteractionsLo: res.Interactions.Lo,
		Winner:         res.Winner,
		InitialLeader:  leader,
		Outcome:        res.Outcome.String(),
	}, nil
}

// ServeShard runs the worker side of the distributed protocol on r/w
// (stdin/stdout of a process started with the hidden -shard-worker i/of
// flag): handshake, then waves of USD trials until halt. parallelism bounds
// the worker-local pool (0 = GOMAXPROCS).
func ServeShard(r io.Reader, w io.Writer, shard, shards, parallelism int) error {
	return dist.Serve(r, w, shard, shards, ShardBuilder(parallelism))
}

// ConsensusCellState is the checkpointable fold state of a sharded
// consensus cell: the adaptive metric (aggregates plus stopping latch) and
// the count of trials that failed to reach consensus. Checkpointed through
// dist.JSONState; restoring it and folding the remaining trials is
// bit-identical to never having been interrupted.
type ConsensusCellState struct {
	// Metric is the cell's consensus-time metric.
	Metric *AdaptiveMetric `json:"metric"`
	// Failed counts folded trials that did not reach consensus.
	Failed int `json:"failed"`
}

// ShardRunOptions configure one sharded cell run.
type ShardRunOptions struct {
	// Shards is the worker-process count.
	Shards int
	// MaxTrials is the adaptive trial cap.
	MaxTrials int
	// Wave is the dispatch wave size (0 = dist.DefaultWave): the stop-check
	// barrier and checkpoint granularity.
	Wave int
	// Seed is the cell's trial-stream family seed.
	Seed uint64
	// Launcher starts the workers (see Params.ShardLauncher).
	Launcher dist.Launcher
	// Checkpoint, when non-empty, is the cell's checkpoint path.
	Checkpoint string
	// Policy is the stopping-policy identity recorded in checkpoints
	// (see dist.Options.Policy); typically ConsensusPolicy(rel).
	Policy string
	// WorkerTimeout is the per-shard liveness deadline
	// (see dist.Options.WorkerTimeout); 0 disables hang detection.
	WorkerTimeout time.Duration
	// MaxRelaunches caps per-shard worker relaunches
	// (see dist.Options.MaxRelaunches); 0 means the dist default,
	// dist.NoRelaunch disables recovery entirely.
	MaxRelaunches int
	// Elastic switches the cell to elastic membership: every wave is dealt
	// explicitly across the current member set (see dist.Options.Elastic),
	// so workers may join and leave between waves.
	Elastic bool
	// Join, when non-nil, admits late-joining workers mid-run and implies
	// Elastic (see dist.Options.Join).
	Join <-chan dist.Launcher
	// Interrupt, when closed, asks the coordinator to stop after the wave
	// in flight (see dist.Options.Interrupt): the cell checkpoints and
	// returns with Interrupted set, resumable by rerunning.
	Interrupt <-chan struct{}
	// Log is the coordinator's diagnostic sink (see dist.Options.Log);
	// nil means os.Stderr.
	Log io.Writer
}

// RunShardedConsensus distributes an adaptive consensus-time cell across
// worker processes: trials of spec fold into metric in global trial-index
// order until the metric's stopping rule fires or opts.MaxTrials is
// reached. It is the distributed equivalent of the StreamAdaptive loop the
// experiments run in process, and produces byte-identical aggregates and
// trial counts at every shard count. It returns the run result and the
// number of folded trials that did not reach consensus.
func RunShardedConsensus(spec ShardSpec, metric *AdaptiveMetric, opts ShardRunOptions) (dist.Result, int, error) {
	specBytes, err := spec.Encode()
	if err != nil {
		return dist.Result{}, 0, err
	}
	state := &ConsensusCellState{Metric: metric}
	sink := func(_ int, data []byte) error {
		var r ShardResult
		if err := json.Unmarshal(data, &r); err != nil {
			return err
		}
		if !r.Consensus() {
			state.Failed++
			return nil
		}
		state.Metric.Add(r.Interactions().Float64())
		return nil
	}
	res, err := dist.Run(dist.Options{
		Shards:         opts.Shards,
		MaxTrials:      opts.MaxTrials,
		Wave:           opts.Wave,
		Seed:           opts.Seed,
		Spec:           specBytes,
		Launcher:       opts.Launcher,
		CheckpointPath: opts.Checkpoint,
		Policy:         opts.Policy,
		WorkerTimeout:  opts.WorkerTimeout,
		MaxRelaunches:  opts.MaxRelaunches,
		Elastic:        opts.Elastic,
		Join:           opts.Join,
		Interrupt:      opts.Interrupt,
		Log:            opts.Log,
	}, sink, StopWhenAll(state.Metric), dist.JSONState{V: state})
	return res, state.Failed, err
}
