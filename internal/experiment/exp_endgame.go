package experiment

import (
	"fmt"
	"io"
	"math"

	"repro/internal/conf"
	"repro/internal/core"
)

// f6Endgame regenerates the Phase 5 coupling claim (Lemmas 16-17): from a
// configuration with an absolute majority x₁ = 2n/3, consensus arrives
// within O(n log n) interactions, and the k-opinion endgame is no slower
// than the coupled 2-opinion projection.
func f6Endgame() Experiment {
	return Experiment{
		ID:       "F6-endgame-coupling",
		Title:    "Endgame from absolute majority: k-opinion vs 2-opinion",
		Artifact: "Lemmas 16-17 (coupling/majorization)",
		Run: func(p Params, w io.Writer) error {
			n := pick(p, int64(3<<11), int64(3<<13)) // multiple of 3
			trials := p.trials(30)
			lnN := math.Log(float64(n))
			tbl := NewTable(
				fmt.Sprintf("Start x1 = 2n/3, rest uniform, n=%d, %d trials:", n, trials),
				"k", "mean T", "median", "p90", "T/(n ln n)", "winner=plurality")
			var mean2 float64
			for _, k := range []int{2, 8, 32} {
				support := make([]int64, k)
				support[0] = 2 * n / 3
				rest := n - support[0]
				for i := 1; i < k; i++ {
					support[i] = rest / int64(k-1)
				}
				support[k-1] += rest - (rest/int64(k-1))*int64(k-1)
				if k == 1 {
					support[0] = n
				}
				cfg, err := conf.FromSupport(support, 0)
				if err != nil {
					return err
				}
				s, winRate, done, err := timeStats(p, p.Seed+uint64(k)*73, cfg, trials, core.NoBudget)
				if err != nil {
					return err
				}
				tbl.AddRowf(k, s.Mean, s.Median, s.P90, s.Mean/(float64(n)*lnN),
					fmt.Sprintf("%.0f%% (%d runs)", 100*winRate, done))
				if k == 2 {
					mean2 = s.Mean
				} else if s.Mean > mean2*1.15 {
					// The coupling argument (Lemma 17) majorizes the
					// k-opinion endgame by the 2-opinion one; allow 15%
					// statistical slack before flagging.
					tbl.AddRow("", fmt.Sprintf("WARNING: k=%d mean exceeds 2-opinion mean by >15%%", k))
				}
			}
			if err := tbl.Fprint(w); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w, "\nReading: all rows finish in Θ(n log n) with the majority always\n"+
				"winning, and larger k is not slower than the coupled 2-opinion\n"+
				"process (Lemma 17's majorization).\n")
			return err
		},
	}
}
