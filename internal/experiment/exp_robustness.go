package experiment

import (
	"fmt"
	"io"
	"math"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/pop"
	"repro/internal/rng"
	"repro/internal/stats"
)

// x4Scheduler probes the uniform-scheduler assumption: the paper's analysis
// (like all population-protocol analyses) assumes uniformly random pairs.
// This experiment runs the USD under increasingly skewed per-agent
// activation rates and reports convergence time and plurality survival.
func x4Scheduler() Experiment {
	return Experiment{
		ID:       "X4-scheduler-robustness",
		Title:    "USD under heterogeneous activation rates (extension)",
		Artifact: "model assumption probe: uniform scheduler",
		Run: func(p Params, w io.Writer) error {
			n := pick(p, int64(1<<10), int64(1<<11))
			k := 4
			trials := p.trials(20)
			cfg, err := conf.WithMultiplicativeBias(n, k, 2.0, 0)
			if err != nil {
				return err
			}
			tbl := NewTable(
				fmt.Sprintf("Multiplicative bias 2, n=%d k=%d, %d trials per skew:", n, k, trials),
				"activation skew", "consensus", "mean T", "T/uniform", "plurality wins")
			var uniformMean float64
			for _, skew := range []float64{0, 0.5, 1.0, 1.5} {
				weights, err := pop.ZipfWeights(int(n), skew)
				if err != nil {
					return err
				}
				type outcome struct {
					t    float64
					won  bool
					done bool
				}
				outs := Collect(trials, p.Parallelism, p.Seed+uint64(skew*1000), func(i int, src *rng.Source) outcome {
					sched, err := pop.NewWeightedScheduler(weights, src)
					if err != nil {
						return outcome{}
					}
					e, err := pop.NewEngine(cfg, pop.USD{Opinions: k}, sched)
					if err != nil {
						return outcome{}
					}
					// The agent-level engine keeps an int64 clock; clamp the
					// generous 1000·n² cutoff so it cannot wrap for large n.
					budget := int64(math.MaxInt64)
					if b := 1000 * float64(n) * float64(n); b < float64(math.MaxInt64) {
						budget = 1000 * n * n
					}
					res, err := e.Run(budget)
					if err != nil || !res.Consensus {
						return outcome{}
					}
					return outcome{t: float64(res.Interactions), won: res.Winner == 0, done: true}
				})
				var times []float64
				wins, completed := 0, 0
				for _, o := range outs {
					if !o.done {
						continue
					}
					completed++
					times = append(times, o.t)
					if o.won {
						wins++
					}
				}
				if completed == 0 {
					tbl.AddRowf(fmt.Sprintf("zipf %.1f", skew), "0/"+itoa(trials), "-", "-", "-")
					continue
				}
				s, err := stats.Summarize(times)
				if err != nil {
					return err
				}
				if skew == 0 {
					uniformMean = s.Mean
				}
				rel := "-"
				if uniformMean > 0 {
					rel = fmt.Sprintf("%.2f", s.Mean/uniformMean)
				}
				tbl.AddRowf(fmt.Sprintf("zipf %.1f", skew),
					fmt.Sprintf("%d/%d", completed, trials),
					s.Mean, rel,
					fmt.Sprintf("%.0f%%", 100*float64(wins)/float64(completed)))
			}
			if err := tbl.Fprint(w); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "\nReading: consensus survives well beyond the uniform-scheduler model;\n"+
				"skewed activation slows convergence but does not flip the plurality —\n"+
				"evidence the paper's result is not an artifact of perfect uniformity.\n")
			return err
		},
	}
}

// x5UndecidedStart probes the theorem's u(0) ≤ (n − x₁(0))/2 assumption:
// start with ever more of the population undecided and watch convergence
// time and plurality survival.
func x5UndecidedStart() Experiment {
	return Experiment{
		ID:       "X5-undecided-start",
		Title:    "Beyond u(0) ≤ (n−x1)/2: undecided-heavy starts (extension)",
		Artifact: "Theorem 2 assumption probe",
		Run: func(p Params, w io.Writer) error {
			n := pick(p, int64(1<<12), int64(1<<14))
			k := 8
			trials := p.trials(20)
			bias := 4 * math.Sqrt(float64(n)*math.Log(float64(n)))
			tbl := NewTable(
				fmt.Sprintf("Additive bias 4√(n ln n) among decided, n=%d k=%d, %d trials:", n, k, trials),
				"u(0)/n", "within assumption", "mean T", "T/(k n ln n)", "plurality wins")
			for _, frac := range []float64{0, 0.25, 0.45, 0.7, 0.9} {
				u0 := int64(frac * float64(n))
				cfg, err := conf.WithAdditiveBias(n, k, int64(bias), u0)
				if err != nil {
					// Bias infeasible with too few decided agents.
					tbl.AddRowf(fmt.Sprintf("%.2f", frac), "-", "infeasible", "-", "-")
					continue
				}
				within := "no"
				if cfg.Undecided <= (n-cfg.Support[0])/2 {
					within = "yes"
				}
				s, winRate, done, err := timeStats(p, p.Seed+uint64(frac*100)+7, cfg, trials, core.NoBudget)
				if err != nil {
					return err
				}
				tbl.AddRowf(fmt.Sprintf("%.2f", frac), within, s.Mean,
					s.Mean/(float64(k)*float64(n)*math.Log(float64(n))),
					fmt.Sprintf("%.0f%% (%d runs)", 100*winRate, done))
			}
			if err := tbl.Fprint(w); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w, "\nReading: the u(0) ≤ (n−x1)/2 assumption is a proof convenience, not\n"+
				"a sharp threshold — undecided-heavy starts converge (if anything,\n"+
				"faster: the process starts nearer the u* band and skips part of\n"+
				"Phase 1) and the plurality's additive lead among the decided agents\n"+
				"still decides the outcome.\n")
			return err
		},
	}
}

func itoa(v int) string {
	return fmt.Sprintf("%d", v)
}
