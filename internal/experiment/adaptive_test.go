package experiment

import (
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/stats"
)

// adaptiveAggregates runs StreamAdaptive over real tracked USD trials with a
// predicate that stops after exactly stopAt folds, and serializes every
// order-sensitive aggregate byte-for-byte.
func adaptiveAggregates(t *testing.T, cfg *conf.Config, par, maxTrials, stopAt int) (string, AdaptiveResult) {
	t.Helper()
	var o stats.Online
	med := stats.NewP2(0.5)
	folded := 0
	res := StreamAdaptive(AdaptiveOptions{MaxTrials: maxTrials, Parallelism: par, Seed: 99},
		func(i int, src *rng.Source, a *Arena) USDRun {
			r, err := RunTracked(a, cfg, src, core.NoBudget, 0, core.KernelBatched(0))
			if err != nil {
				t.Errorf("trial %d: %v", i, err)
			}
			return r
		},
		func(i int, r USDRun) {
			folded++
			o.Add(r.Result.Interactions.Float64())
			med.Add(r.Result.Interactions.Float64())
		},
		func() bool { return folded >= stopAt })
	return fmt.Sprintf("%v %v %v %v %v %v", o.N(), o.Mean(), o.Var(), o.Min(), o.Max(), med.Value()), res
}

// TestStreamAdaptiveByteIdenticalToStream is the adaptive engine's
// determinism contract (the ISSUE 3 regression test): StreamAdaptive with a
// rule that stops at exactly T trials must produce byte-identical aggregates
// to a fixed Stream of T trials, at parallelism 1, 4, and 16.
func TestStreamAdaptiveByteIdenticalToStream(t *testing.T) {
	cfg, err := conf.Uniform(2000, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	const stopAt = 37
	// The fixed-count reference, parallelism 1.
	var o stats.Online
	med := stats.NewP2(0.5)
	Stream(stopAt, 1, 99, func(i int, src *rng.Source, a *Arena) USDRun {
		r, err := RunTracked(a, cfg, src, core.NoBudget, 0, core.KernelBatched(0))
		if err != nil {
			t.Errorf("trial %d: %v", i, err)
		}
		return r
	}, func(i int, r USDRun) {
		o.Add(r.Result.Interactions.Float64())
		med.Add(r.Result.Interactions.Float64())
	})
	want := fmt.Sprintf("%v %v %v %v %v %v", o.N(), o.Mean(), o.Var(), o.Min(), o.Max(), med.Value())

	for _, par := range []int{1, 4, 16} {
		got, res := adaptiveAggregates(t, cfg, par, 200, stopAt)
		if got != want {
			t.Fatalf("parallelism %d: adaptive aggregates diverged from fixed Stream:\n%s\nvs\n%s", par, got, want)
		}
		if res.Trials != stopAt || !res.Stopped {
			t.Fatalf("parallelism %d: result %+v, want {Trials: %d, Stopped: true}", par, res, stopAt)
		}
	}
}

// TestStreamAdaptiveWaveIndependence pins the stop point across wave sizes:
// the wave is a dispatch detail, so only wasted work may change with it.
func TestStreamAdaptiveWaveIndependence(t *testing.T) {
	for _, wave := range []int{1, 3, 16, 64} {
		var sum float64
		folded := 0
		res := StreamAdaptive(AdaptiveOptions{MaxTrials: 100, Parallelism: 4, Wave: wave, Seed: 5},
			func(i int, src *rng.Source, _ *Arena) float64 { return src.Float64() },
			func(i int, v float64) { folded++; sum += v },
			func() bool { return folded >= 23 })
		if res.Trials != 23 || !res.Stopped {
			t.Fatalf("wave %d: result %+v", wave, res)
		}
	}
}

// TestStreamAdaptiveBoundedWaste checks the wave contract: when the
// predicate fires after trial T, no trial beyond the end of T's wave is ever
// computed.
func TestStreamAdaptiveBoundedWaste(t *testing.T) {
	const (
		wave   = 8
		stopAt = 20 // fires mid-wave: trials 0..23 may compute, 24+ must not
	)
	var maxIndex atomic.Int64
	maxIndex.Store(-1)
	folded := 0
	StreamAdaptive(AdaptiveOptions{MaxTrials: 1000, Parallelism: 4, Wave: wave, Seed: 1},
		func(i int, src *rng.Source, _ *Arena) int {
			for {
				cur := maxIndex.Load()
				if int64(i) <= cur || maxIndex.CompareAndSwap(cur, int64(i)) {
					break
				}
			}
			return i
		},
		func(i int, v int) { folded++ },
		func() bool { return folded >= stopAt })
	waveEnd := int64(((stopAt-1)/wave + 1) * wave)
	if got := maxIndex.Load(); got >= waveEnd {
		t.Fatalf("trial %d computed; waves should have stopped dispatch before %d", got, waveEnd)
	}
}

func TestStreamAdaptiveMaxTrialsCap(t *testing.T) {
	for _, par := range []int{1, 4} {
		calls := 0
		res := StreamAdaptive(AdaptiveOptions{MaxTrials: 50, Parallelism: par, Seed: 2},
			func(i int, src *rng.Source, _ *Arena) int { return i },
			func(i int, v int) {
				if i != v {
					t.Fatalf("out-of-order fold (%d, %d)", i, v)
				}
				calls++
			},
			func() bool { return false })
		if calls != 50 || res.Trials != 50 || res.Stopped {
			t.Fatalf("parallelism %d: calls=%d result=%+v", par, calls, res)
		}
	}
}

func TestStreamAdaptiveEdgeCases(t *testing.T) {
	res := StreamAdaptive(AdaptiveOptions{MaxTrials: 0},
		func(i int, src *rng.Source, _ *Arena) int { return i },
		func(int, int) { t.Fatal("sink called with no trials") },
		func() bool { return true })
	if res != (AdaptiveResult{}) {
		t.Fatalf("zero-cap result %+v", res)
	}
	// Wave larger than the cap, predicate immediately satisfied after the
	// first fold.
	folded := 0
	res = StreamAdaptive(AdaptiveOptions{MaxTrials: 3, Wave: 100, Parallelism: 8, Seed: 1},
		func(i int, src *rng.Source, _ *Arena) int { return i },
		func(int, int) { folded++ },
		func() bool { return true })
	if folded != 1 || res.Trials != 1 || !res.Stopped {
		t.Fatalf("immediate-stop result %+v after %d folds", res, folded)
	}
}

// TestStreamAdaptiveCIStopsEarly runs the engine the way experiments do — a
// relative-CI stopping rule over a low-variance metric — and checks it stops
// well before the cap while a high-variance metric spends more trials.
func TestStreamAdaptiveCIStopsEarly(t *testing.T) {
	run := func(noise float64) int {
		m := NewAdaptiveMetric("t", stats.All(stats.AfterN(5), stats.RelWidth(0.02, 0.95)))
		res := StreamAdaptive(AdaptiveOptions{MaxTrials: 2000, Parallelism: 4, Seed: 17},
			func(i int, src *rng.Source, _ *Arena) float64 { return 100 + noise*src.Normal() },
			func(i int, v float64) { m.Add(v) },
			StopWhenAll(m))
		if !res.Stopped {
			t.Fatalf("noise %v: cap hit, rel width %v", noise, stats.StudentTCI(&m.Online, 0.95).Rel())
		}
		if got := int(m.StoppedAt); got != res.Trials {
			t.Fatalf("noise %v: metric stopped at %d but engine at %d", noise, got, res.Trials)
		}
		return res.Trials
	}
	low, high := run(1), run(20)
	if low >= high {
		t.Fatalf("low-variance run used %d trials, high-variance %d; want fewer", low, high)
	}
	if low > 20 {
		t.Fatalf("low-variance run used %d trials; expected a handful", low)
	}
}

func TestAdaptiveMetricLatch(t *testing.T) {
	m := NewAdaptiveMetric("x", stats.All(stats.AfterN(3), stats.RelWidth(0.5, 0.95)))
	if m.Done() {
		t.Fatal("fresh metric already done")
	}
	for _, v := range []float64{10, 10.1, 9.9} {
		m.Add(v)
	}
	if !m.Done() || m.StoppedAt != 3 {
		t.Fatalf("metric not latched: %+v", m)
	}
	// A wild outlier widens the interval, but the latch must hold.
	m.Add(1e6)
	if !m.Done() || m.StoppedAt != 3 {
		t.Fatalf("latch broken: StoppedAt = %d", m.StoppedAt)
	}
	if m.Online.N() != 4 {
		t.Fatalf("halted metric stopped aggregating: n = %d", m.Online.N())
	}
	if math.IsNaN(m.Median.Value()) {
		t.Fatal("median sketch unfed")
	}
}

func TestStopWhenAll(t *testing.T) {
	a := NewAdaptiveMetric("a", stats.AfterN(2))
	b := NewAdaptiveMetric("b", stats.AfterN(4))
	pred := StopWhenAll(a, b)
	for i := 0; i < 3; i++ {
		a.Add(1)
		b.Add(1)
	}
	if pred() {
		t.Fatal("predicate fired with metric b open")
	}
	b.Add(1)
	if !pred() {
		t.Fatal("predicate must fire once every metric halted")
	}
	// A nil-rule metric never halts by itself.
	c := NewAdaptiveMetric("c", nil)
	c.Add(1)
	if c.Done() || StopWhenAll(c)() {
		t.Fatal("nil-rule metric halted")
	}
}

// TestStreamAdaptiveParallelismInvariance repeats the engine's core
// guarantee on the GOMAXPROCS level used by the -race CI job.
func TestStreamAdaptiveParallelismInvariance(t *testing.T) {
	cfg, err := conf.Uniform(1500, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, wantRes := adaptiveAggregates(t, cfg, 1, 80, 29)
	for _, par := range []int{2, runtime.GOMAXPROCS(0)} {
		got, res := adaptiveAggregates(t, cfg, par, 80, 29)
		if got != want || res != wantRes {
			t.Fatalf("parallelism %d diverged: %s %+v vs %s %+v", par, got, res, want, wantRes)
		}
	}
}
