package experiment

import (
	"fmt"
	"io"
	"math"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/stats"
)

// t1Phases regenerates the paper's §2.1 phase table: for every (n, k) cell
// it measures the empirical duration of each of the five phases on no-bias
// runs and normalizes it by the paper's bound, so a flat column across the
// sweep confirms the bound's shape.
func t1Phases() Experiment {
	return Experiment{
		ID:       "T1-phases",
		Title:    "Empirical phase durations vs paper bounds",
		Artifact: "§2.1 phase table (Lemmas 1, 8, 11, 15, 16)",
		Run: func(p Params, w io.Writer) error {
			ns := pick(p, []int64{1 << 12, 1 << 13}, []int64{1 << 12, 1 << 14, 1 << 16})
			ks := pick(p, []int{3, 8}, []int{3, 8, 16})
			trials := p.trials(8)
			tbl := NewTable(
				"Mean normalized phase durations (duration / bound term, no-bias start):",
				"n", "k",
				"ph1/(n ln n)", "ph2/(kn ln n)", "ph3/(kn ln n)", "ph4/(kn+n ln n)", "ph5/(n ln n)",
				"total par.time/(k ln n)")
			for _, n := range ns {
				for _, k := range ks {
					cfg, err := conf.Uniform(n, k, 0)
					if err != nil {
						return err
					}
					runs := CollectArena(trials, p.Parallelism, p.Seed+uint64(n)+uint64(k), func(i int, src *rng.Source, a *Arena) USDRun {
						r, err := RunTracked(a, cfg, src, core.NoBudget, 0, p.Kernel)
						if err != nil {
							return USDRun{}
						}
						return r
					})
					lnN := math.Log(float64(n))
					norm := make([][]float64, 5)
					var totals []float64
					for _, r := range runs {
						if r.Result.Outcome != core.OutcomeConsensus {
							continue
						}
						bounds := []float64{
							float64(n) * lnN,
							float64(k) * float64(n) * lnN,
							float64(k) * float64(n) * lnN,
							float64(k)*float64(n) + float64(n)*lnN,
							float64(n) * lnN,
						}
						for ph := 1; ph <= 5; ph++ {
							if d, ok := r.Phases.Duration(ph); ok {
								norm[ph-1] = append(norm[ph-1], d.Float64()/bounds[ph-1])
							}
						}
						totals = append(totals, r.Result.ParallelTime/(float64(k)*lnN))
					}
					if len(totals) == 0 {
						return fmt.Errorf("no successful runs for n=%d k=%d", n, k)
					}
					row := []any{n, k}
					for ph := 0; ph < 5; ph++ {
						s, err := stats.Summarize(norm[ph])
						if err != nil {
							row = append(row, "-")
							continue
						}
						row = append(row, s.Mean)
					}
					st, err := stats.Summarize(totals)
					if err != nil {
						return err
					}
					row = append(row, st.Mean)
					tbl.AddRowf(row...)
				}
			}
			if err := tbl.Fprint(w); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w,
				"\nReading: each column should stay bounded (no upward drift in n)\n"+
					"if the corresponding phase bound from the paper has the right shape.\n")
			return err
		},
	}
}

// t6Phase1 verifies the three statements of Lemma 2: across Phase 1, an
// additive bias keeps at least 1/3 of its magnitude, a multiplicative bias
// (1+ε) degrades to no worse than 1+ε/(6+5ε), and the plurality keeps at
// least 1/3 of its support.
func t6Phase1() Experiment {
	return Experiment{
		ID:       "T6-phase1-preservation",
		Title:    "Bias preservation through Phase 1",
		Artifact: "Lemma 2 (statements 1-3)",
		Run: func(p Params, w io.Writer) error {
			n := pick(p, int64(1<<13), int64(1<<14))
			k := 8
			trials := p.trials(40)
			eps := 0.5
			thr := math.Sqrt(float64(n) * math.Log(float64(n)))
			addBias := int64(2 * thr)

			type obs struct {
				addRatio  float64 // (X1(T1)-X2(T1)) / initial bias
				multRatio float64 // X1(T1)/X2(T1)
				keepRatio float64 // X1(T1)/x1(0)
				ok        bool
			}
			endPhase1 := func(s *core.Simulator) bool {
				_, xmax := s.Max()
				return 2*s.Undecided() >= s.N()-xmax
			}

			addCfg, err := conf.WithAdditiveBias(n, k, addBias, 0)
			if err != nil {
				return err
			}
			multCfg, err := conf.WithMultiplicativeBias(n, k, 1+eps, 0)
			if err != nil {
				return err
			}

			measure := func(cfg *conf.Config, seedOff uint64) []obs {
				x10 := cfg.Support[0]
				bias0 := cfg.AdditiveBias()
				return CollectArena(trials, p.Parallelism, p.Seed+seedOff, func(i int, src *rng.Source, a *Arena) obs {
					s, err := a.Simulator(cfg, src, core.WithKernel(p.Kernel))
					if err != nil {
						return obs{}
					}
					res := s.RunUntil(core.NoBudget, endPhase1)
					if res.Outcome == core.OutcomeAllUndecided {
						return obs{}
					}
					x1 := s.Support(0)
					var x2 int64
					for j := 1; j < k; j++ {
						if x := s.Support(j); x > x2 {
							x2 = x
						}
					}
					o := obs{keepRatio: float64(x1) / float64(x10), ok: true}
					if bias0 > 0 {
						o.addRatio = float64(x1-x2) / float64(bias0)
					}
					if x2 > 0 {
						o.multRatio = float64(x1) / float64(x2)
					}
					return o
				})
			}

			addObs := measure(addCfg, 1)
			multObs := measure(multCfg, 2)

			tbl := NewTable(
				fmt.Sprintf("Phase-1 preservation, n=%d k=%d, %d trials:", n, k, trials),
				"quantity", "config", "mean", "p10", "min", "Lemma 2 bound", "violations")
			report := func(name, config string, vals []float64, bound float64) error {
				s, err := stats.Summarize(vals)
				if err != nil {
					return err
				}
				viol := 0
				for _, v := range vals {
					if v < bound {
						viol++
					}
				}
				tbl.AddRowf(name, config, s.Mean, s.P10, s.Min, bound,
					fmt.Sprintf("%d/%d", viol, len(vals)))
				return nil
			}
			var addRatios, multRatios, keepA, keepM []float64
			for _, o := range addObs {
				if o.ok {
					addRatios = append(addRatios, o.addRatio)
					keepA = append(keepA, o.keepRatio)
				}
			}
			for _, o := range multObs {
				if o.ok {
					multRatios = append(multRatios, o.multRatio)
					keepM = append(keepM, o.keepRatio)
				}
			}
			if err := report("(X1-X2)(T1)/bias(0)", "additive 2√(n ln n)", addRatios, 1.0/3); err != nil {
				return err
			}
			if err := report("X1(T1)/X2(T1)", fmt.Sprintf("multiplicative %.1f", 1+eps), multRatios, 1+eps/(6+5*eps)); err != nil {
				return err
			}
			if err := report("X1(T1)/x1(0)", "additive 2√(n ln n)", keepA, 1.0/3); err != nil {
				return err
			}
			if err := report("X1(T1)/x1(0)", fmt.Sprintf("multiplicative %.1f", 1+eps), keepM, 1.0/3); err != nil {
				return err
			}
			return tbl.Fprint(w)
		},
	}
}
