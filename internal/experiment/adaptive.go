package experiment

import (
	"encoding/json"
	"sync"

	"repro/internal/rng"
	"repro/internal/stats"
)

// StreamAdaptive is the sequential-stopping layer over the worker-pool trial
// engine: instead of a fixed trial count, the caller supplies a hard cap and
// a stopping predicate over the streamed aggregates, and the engine runs
// only as many trials as the predicate demands. Trials are dispatched in
// waves; results are folded into the sink strictly in trial-index order and
// the predicate is consulted after every fold, so the number of folded
// trials is a pure function of (seed, predicate) — never of parallelism or
// scheduling. Billion-agent sweeps, where a trial costs seconds, become
// self-budgeting: cells with low variance stop after a handful of trials,
// cells near a phase boundary keep sampling until their confidence interval
// closes.

// DefaultWave is the dispatch wave size when AdaptiveOptions.Wave is zero:
// large enough to keep a typical worker pool busy between stop checks, small
// enough that at most a handful of in-flight trials are discarded when the
// predicate fires mid-wave.
const DefaultWave = 16

// AdaptiveOptions configure StreamAdaptive.
type AdaptiveOptions struct {
	// MaxTrials is the hard trial cap; the engine never folds more. It must
	// be positive.
	MaxTrials int
	// Parallelism bounds concurrent trials; 0 means GOMAXPROCS. It affects
	// wall-clock only, never the folded results.
	Parallelism int
	// Wave is the dispatch wave size; 0 means DefaultWave, and waves below
	// the worker count are raised to it so no worker idles at the wave
	// barrier. The wave bounds the work wasted when the predicate fires
	// mid-wave; it never influences the stop point.
	Wave int
	// Seed is the stream-family seed; trial i draws from rng.Derive(Seed, i)
	// exactly as in Collect and Stream, so an adaptive run that folds T
	// trials is byte-identical to Stream with trials = T.
	Seed uint64
}

// AdaptiveResult reports how an adaptive stream ended.
type AdaptiveResult struct {
	// Trials is the number of trials folded into the sink.
	Trials int
	// Stopped reports whether the stopping predicate fired; false means the
	// MaxTrials cap was exhausted with the predicate still unsatisfied.
	Stopped bool
}

// StreamAdaptive runs fn for trial indices 0, 1, 2, … until stop() reports
// the streamed aggregates have converged or opts.MaxTrials trials have been
// folded. Results are delivered to sink exactly once each, in trial-index
// order, on the calling goroutine, and stop() is evaluated after every
// sink call — both exactly as a fixed-count Stream would behave, so the
// folded prefix is byte-identical to Stream(result.Trials, …) at every
// parallelism level (the determinism regression test pins this).
//
// Dispatch happens in waves of opts.Wave trials (DefaultWave when zero,
// raised to the worker count so no worker idles at the wave barrier).
// Trials of the final wave that were computed but not folded when the
// predicate fired are discarded, so at most one wave of work is wasted per
// adaptive run.
func StreamAdaptive[T any](opts AdaptiveOptions, fn func(i int, src *rng.Source, a *Arena) T, sink func(i int, v T), stop func() bool) AdaptiveResult {
	max := opts.MaxTrials
	if max <= 0 {
		return AdaptiveResult{}
	}
	wave := opts.Wave
	if wave <= 0 {
		wave = DefaultWave
	}
	parallelism := clampParallelism(max, opts.Parallelism)
	// A wave below the worker count would leave workers idle at every
	// barrier, so waves grow to the parallelism. This never moves the stop
	// point — that depends only on the in-order fold sequence — it only
	// widens the bounded waste, which is inherently >= parallelism−1
	// in-flight trials anyway.
	if wave < parallelism {
		wave = parallelism
	}
	if wave > max {
		wave = max
	}
	if parallelism == 1 {
		var a Arena
		for i := 0; i < max; i++ {
			sink(i, fn(i, a.source(opts.Seed, i), &a))
			if stop() {
				return AdaptiveResult{Trials: i + 1, Stopped: true}
			}
		}
		return AdaptiveResult{Trials: max, Stopped: false}
	}

	type slot struct {
		i int
		v T
	}
	next := make(chan int)
	// The buffer holds a full wave, so workers never block on the results
	// channel mid-wave and the dispatch loop cannot deadlock against them.
	results := make(chan slot, wave)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var a Arena
			for i := range next {
				results <- slot{i, fn(i, a.source(opts.Seed, i), &a)}
			}
		}()
	}
	// On every return path: stop feeding workers, then drain whatever the
	// final wave still has in flight so no goroutine leaks.
	defer func() {
		close(next)
		go func() {
			wg.Wait()
			close(results)
		}()
		for range results {
		}
	}()

	pending := make(map[int]T, wave)
	for lo := 0; lo < max; lo += wave {
		hi := lo + wave
		if hi > max {
			hi = max
		}
		for i := lo; i < hi; i++ {
			next <- i
		}
		for done := lo; done < hi; {
			s := <-results
			pending[s.i] = s.v
			for {
				v, ok := pending[done]
				if !ok {
					break
				}
				delete(pending, done)
				sink(done, v)
				done++
				if stop() {
					return AdaptiveResult{Trials: done, Stopped: true}
				}
			}
		}
	}
	return AdaptiveResult{Trials: max, Stopped: false}
}

// AdaptiveMetric is one named measurement of an adaptive stream: a Welford
// aggregator and a P² median sketch fed by every folded trial, plus the
// stopping rule that decides when this metric has been resolved tightly
// enough. A metric latches: once its rule first holds it is recorded as
// halted at that trial count (StoppedAt) and no longer gates the run, even
// if later folds widen its interval again — the standard group-sequential
// convention, and the reason a finished run can report per-metric stopping
// trials individually.
type AdaptiveMetric struct {
	// Name labels the metric in reports.
	Name string
	// Rule decides when the metric needs no more samples.
	Rule stats.StoppingRule
	// Online accumulates mean/variance/extrema of the folded values.
	Online stats.Online
	// Median is the P² sketch of the 0.5 quantile.
	Median *stats.P2
	// StoppedAt is the trial count after which Rule first held; 0 while the
	// metric is still open.
	StoppedAt int64
}

// NewAdaptiveMetric returns a metric with the given stopping rule.
func NewAdaptiveMetric(name string, rule stats.StoppingRule) *AdaptiveMetric {
	return &AdaptiveMetric{Name: name, Rule: rule, Median: stats.NewP2(0.5)}
}

// Add folds one value into the metric's aggregators and updates the latch.
func (m *AdaptiveMetric) Add(x float64) {
	m.Online.Add(x)
	m.Median.Add(x)
	if m.StoppedAt == 0 && m.Rule != nil && m.Rule.Stop(&m.Online) {
		m.StoppedAt = m.Online.N()
	}
}

// Done reports whether the metric has halted.
func (m *AdaptiveMetric) Done() bool { return m.StoppedAt > 0 }

// adaptiveMetricJSON is the serialized form of an AdaptiveMetric: the
// aggregates and the stopping latch, but not the Rule (rules are code; the
// restoring side reconstructs the metric with NewAdaptiveMetric and
// unmarshals into it, which preserves its rule).
type adaptiveMetricJSON struct {
	Name      string       `json:"name"`
	Online    stats.Online `json:"online"`
	Median    *stats.P2    `json:"median,omitempty"`
	StoppedAt int64        `json:"stopped_at"`
}

// MarshalJSON serializes the metric's aggregates and latch (bit-exactly,
// via the stats snapshot encodings) so sharded-cell checkpoints can carry
// half-finished metrics across interruptions.
func (m *AdaptiveMetric) MarshalJSON() ([]byte, error) {
	return json.Marshal(adaptiveMetricJSON{
		Name:      m.Name,
		Online:    m.Online,
		Median:    m.Median,
		StoppedAt: m.StoppedAt,
	})
}

// UnmarshalJSON restores the metric's aggregates and latch in place,
// keeping its Rule: a resumed metric continues evaluating exactly the rule
// the caller constructed it with.
func (m *AdaptiveMetric) UnmarshalJSON(data []byte) error {
	var s adaptiveMetricJSON
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	m.Name = s.Name
	m.Online = s.Online
	if s.Median == nil {
		m.Median = nil
	} else {
		if m.Median == nil {
			m.Median = new(stats.P2)
		}
		*m.Median = *s.Median
	}
	m.StoppedAt = s.StoppedAt
	return nil
}

// StopWhenAll returns a StreamAdaptive predicate that fires once every
// metric has halted. Metrics with a nil rule never halt on their own, so
// including one turns the run into a fixed-MaxTrials run.
func StopWhenAll(metrics ...*AdaptiveMetric) func() bool {
	return func() bool {
		for _, m := range metrics {
			if !m.Done() {
				return false
			}
		}
		return true
	}
}
