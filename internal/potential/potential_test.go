package potential

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/conf"
)

func mustConfig(t *testing.T, support []int64, u int64) *conf.Config {
	t.Helper()
	c, err := conf.FromSupport(support, u)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestZ(t *testing.T) {
	cases := []struct {
		n, u, xmax, want int64
	}{
		{100, 0, 50, 50},
		{100, 25, 50, 0},
		{100, 40, 30, -10},
	}
	for _, tc := range cases {
		if got := Z(tc.n, tc.u, tc.xmax); got != tc.want {
			t.Fatalf("Z(%d,%d,%d) = %d, want %d", tc.n, tc.u, tc.xmax, got, tc.want)
		}
	}
}

func TestZAlphaMatchesZ(t *testing.T) {
	if got := ZAlpha(100, 25, 50, 1.0); got != 0 {
		t.Fatalf("ZAlpha(α=1) = %v, want 0", got)
	}
	// Lemma 14 potential: n − 2u − 7/8·x1.
	if got := ZAlpha(800, 100, 640, 7.0/8.0); got != 800-200-560 {
		t.Fatalf("ZAlpha(7/8) = %v", got)
	}
}

func TestEquilibriumUndecided(t *testing.T) {
	// k=2: u* = n/3; k→∞: u* → n/2.
	if got := EquilibriumUndecided(300, 2); math.Abs(got-100) > 1e-9 {
		t.Fatalf("u*(k=2) = %v, want 100", got)
	}
	if got := EquilibriumUndecided(1000, 1000); got <= 499 || got >= 500 {
		t.Fatalf("u*(large k) = %v, want just below n/2", got)
	}
	if got := EquilibriumUndecided(100, 0); got != 0 {
		t.Fatalf("u*(k=0) = %v", got)
	}
	// Monotone in k.
	prev := -1.0
	for k := 1; k < 50; k++ {
		cur := EquilibriumUndecided(10000, k)
		if cur < prev {
			t.Fatalf("u* not monotone at k=%d", k)
		}
		prev = cur
	}
}

func TestSignificanceThreshold(t *testing.T) {
	n := int64(10000)
	want := math.Sqrt(float64(n) * math.Log(float64(n)))
	if got := SignificanceThreshold(n, 1); math.Abs(got-want) > 1e-9 {
		t.Fatalf("threshold = %v, want %v", got, want)
	}
	if got := SignificanceThreshold(n, 2); math.Abs(got-2*want) > 1e-9 {
		t.Fatalf("threshold scaling in alpha broken")
	}
	if got := SignificanceThreshold(1, 1); got != 0 {
		t.Fatalf("threshold(n=1) = %v, want 0", got)
	}
}

func TestSignificant(t *testing.T) {
	n := int64(10000)
	thr := SignificanceThreshold(n, 1) // ~303.5
	xmax := int64(5000)
	if !Significant(xmax, xmax, n, 1) {
		t.Fatal("the maximum itself must be significant")
	}
	if !Significant(xmax-int64(thr)+1, xmax, n, 1) {
		t.Fatal("opinion just inside the margin must be significant")
	}
	if Significant(xmax-int64(thr)-1, xmax, n, 1) {
		t.Fatal("opinion beyond the margin must be insignificant")
	}
}

func TestSignificantCount(t *testing.T) {
	c := mustConfig(t, []int64{5000, 4990, 1000}, 0)
	if got := SignificantCount(c, 1); got != 2 {
		t.Fatalf("SignificantCount = %d, want 2", got)
	}
}

func TestBounds(t *testing.T) {
	n := int64(1 << 16)
	xmax := int64(1 << 14)
	lo := UndecidedLowerBound(n, xmax)
	hi := UndecidedUpperBound(n, 1)
	if lo >= hi {
		t.Fatalf("bounds inverted: lo=%v hi=%v", lo, hi)
	}
	wantLo := float64(n)/2 - float64(xmax)/2 - 8*math.Sqrt(float64(n)*math.Log(float64(n)))
	if math.Abs(lo-wantLo) > 1e-9 {
		t.Fatalf("lower bound = %v, want %v", lo, wantLo)
	}
	if hiBad := UndecidedUpperBound(n, 0); hiBad >= float64(n)/2 {
		t.Fatalf("upper bound with c<=0 fallback = %v", hiBad)
	}
}

func TestMonochromaticDistance(t *testing.T) {
	// Consensus-like: md = 1.
	if got := MonochromaticDistance([]int64{100, 0, 0}); got != 1 {
		t.Fatalf("md(consensus) = %v", got)
	}
	// Perfectly uniform over k opinions: md = k.
	if got := MonochromaticDistance([]int64{10, 10, 10, 10}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("md(uniform 4) = %v, want 4", got)
	}
	// All undecided.
	if got := MonochromaticDistance([]int64{0, 0}); got != 0 {
		t.Fatalf("md(all-undecided) = %v, want 0", got)
	}
}

func TestMonochromaticDistanceRange(t *testing.T) {
	check := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 32 {
			return true
		}
		xs := make([]int64, len(raw))
		any := false
		for i, v := range raw {
			xs[i] = int64(v % 1000)
			if xs[i] > 0 {
				any = true
			}
		}
		if !any {
			return true
		}
		md := MonochromaticDistance(xs)
		return md >= 1-1e-12 && md <= float64(len(xs))+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// bruteProbs enumerates all n² ordered (responder, initiator) pairs of a
// configuration and counts those that change the undecided count.
func bruteProbs(c *conf.Config) Probs {
	n := c.N()
	// Enumerate by state class rather than individual agents.
	var down, up int64
	for _, xi := range c.Support {
		down += c.Undecided * xi // undecided responder meets opinion-i initiator
		up += xi * (c.Decided() - xi)
	}
	return Probs{
		Down: float64(down) / float64(n*n),
		Up:   float64(up) / float64(n*n),
	}
}

func TestUndecidedProbsMatchBruteForce(t *testing.T) {
	cases := []*conf.Config{
		mustConfig(t, []int64{3, 2, 1}, 4),
		mustConfig(t, []int64{10, 0, 0}, 0),
		mustConfig(t, []int64{1, 1, 1, 1}, 0),
		mustConfig(t, []int64{5, 5}, 90),
	}
	for _, c := range cases {
		got := UndecidedProbs(c)
		want := bruteProbs(c)
		if math.Abs(got.Down-want.Down) > 1e-12 || math.Abs(got.Up-want.Up) > 1e-12 {
			t.Fatalf("config %v: probs %+v, brute force %+v", c, got, want)
		}
	}
}

func TestUndecidedProbsProperty(t *testing.T) {
	check := func(raw []uint8, uRaw uint8) bool {
		if len(raw) == 0 || len(raw) > 10 {
			return true
		}
		xs := make([]int64, len(raw))
		var total int64
		for i, v := range raw {
			xs[i] = int64(v % 20)
			total += xs[i]
		}
		u := int64(uRaw % 20)
		if total+u == 0 {
			return true
		}
		c, err := conf.FromSupport(xs, u)
		if err != nil {
			return true
		}
		got := UndecidedProbs(c)
		want := bruteProbs(c)
		return math.Abs(got.Down-want.Down) < 1e-12 &&
			math.Abs(got.Up-want.Up) < 1e-12 &&
			got.Productive() <= 1+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOpinionProbs(t *testing.T) {
	c := mustConfig(t, []int64{6, 3}, 1) // n = 10
	up, down := OpinionProbs(c, 0)
	if math.Abs(up-6.0/100) > 1e-12 {
		t.Fatalf("up = %v, want 0.06", up)
	}
	// x0 meets differently-decided (3 agents): 6*3/100.
	if math.Abs(down-18.0/100) > 1e-12 {
		t.Fatalf("down = %v, want 0.18", down)
	}
}

func TestGapProbs(t *testing.T) {
	c := mustConfig(t, []int64{6, 3}, 1)
	up, down := GapProbs(c, 0, 1)
	// up = u*x0/n² + x1*(n-u-x1)/n² = 6/100 + 18/100
	if math.Abs(up-24.0/100) > 1e-12 {
		t.Fatalf("gap up = %v", up)
	}
	// down = x0*(n-u-x0)/n² + u*x1/n² = 18/100 + 3/100
	if math.Abs(down-21.0/100) > 1e-12 {
		t.Fatalf("gap down = %v", down)
	}
}

func TestConditionalUpObservation7(t *testing.T) {
	// Observation 7: if u >= u* + ε·n then conditional up-probability is at
	// most 1/2 − ε/2.
	n := int64(10000)
	k := 4
	eps := 0.05
	uStar := EquilibriumUndecided(n, k)
	u := int64(uStar + eps*float64(n) + 1)
	c, err := conf.Uniform(n, k, u)
	if err != nil {
		t.Fatal(err)
	}
	got := ConditionalUp(c)
	if got > 0.5-eps/2+1e-9 {
		t.Fatalf("ConditionalUp = %v exceeds Observation 7 bound %v", got, 0.5-eps/2)
	}
}

func TestConditionalUpAbsorbing(t *testing.T) {
	// Consensus: no productive interactions.
	c := mustConfig(t, []int64{10}, 0)
	if got := ConditionalUp(c); got != 0 {
		t.Fatalf("ConditionalUp(consensus) = %v", got)
	}
}

// bruteDriftZ computes E[Z(t) − Z(t+1)] by full enumeration of all n²
// ordered pairs on a small configuration.
func bruteDriftZ(c *conf.Config) float64 {
	n := c.N()
	_, xmax := c.Max()
	z0 := Z(n, c.Undecided, xmax)
	var sum float64
	// Build the agent-level state vector.
	var states []int
	for i, x := range c.Support {
		for j := int64(0); j < x; j++ {
			states = append(states, i+1)
		}
	}
	for j := int64(0); j < c.Undecided; j++ {
		states = append(states, 0)
	}
	for _, resp := range states {
		for _, init := range states {
			d := c.Clone()
			switch {
			case resp != 0 && init != 0 && resp != init:
				d.Support[resp-1]--
				d.Undecided++
			case resp == 0 && init != 0:
				d.Undecided--
				d.Support[init-1]++
			}
			_, xm := d.Max()
			z1 := Z(n, d.Undecided, xm)
			sum += float64(z0 - z1)
		}
	}
	return sum / float64(n*n)
}

func TestDriftZMatchesBruteForce(t *testing.T) {
	cases := []*conf.Config{
		mustConfig(t, []int64{3, 2, 1}, 2),
		mustConfig(t, []int64{4, 4}, 2), // tied maximum
		mustConfig(t, []int64{5, 1, 1}, 0),
		mustConfig(t, []int64{2, 2, 2}, 3), // all tied
	}
	for _, c := range cases {
		got := DriftZ(c)
		want := bruteDriftZ(c)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("config %v: DriftZ = %v, brute force %v", c, got, want)
		}
	}
}

func TestDriftZLowerBoundLemma1(t *testing.T) {
	// Lemma 1: for Z(t) >= 0 and u < n/2 the drift is at least Z(t)/(2n).
	configs := []*conf.Config{
		mustConfig(t, []int64{40, 30, 20}, 10),
		mustConfig(t, []int64{50, 50}, 0),
		mustConfig(t, []int64{30, 30, 30}, 9),
	}
	for _, c := range configs {
		n := c.N()
		_, xmax := c.Max()
		z := Z(n, c.Undecided, xmax)
		if z < 0 || c.Undecided >= n/2 {
			t.Fatalf("test case out of Lemma 1 preconditions: %v", c)
		}
		if got := DriftZ(c); got < float64(z)/(2*float64(n))-1e-12 {
			t.Fatalf("config %v: drift %v below Lemma 1 bound %v", c, got, float64(z)/(2*float64(n)))
		}
	}
}
