// Package potential implements the analytic quantities the paper's proof
// tracks: the phase-1 potential Z_α(t) = n − 2u − α·xmax, the unstable
// undecided equilibrium u* = n(k−1)/(2k−1), the significance threshold
// α√(n log n), the undecided-count band of Lemmas 3-4, the exact one-step
// transition probabilities of Observations 6, 8 and 9, and the
// monochromatic distance of Becchetti et al. used in the Appendix D
// comparison.
//
// All logarithms follow the paper's convention: bounds stated with "log"
// use the natural logarithm ln, matching the constants in Lemmas 3-4
// (e.g. 8√(n ln n)).
package potential

import (
	"math"

	"repro/internal/conf"
)

// DefaultAlpha is the significance constant α used when callers do not
// specify one. The paper leaves α as "some fixed constant"; 1 keeps the
// threshold at √(n ln n), the scale at which all the phase-2 machinery
// operates.
const DefaultAlpha = 1.0

// Z returns the phase-1 potential Z(t) = n − 2u − xmax (α = 1). Phase 1
// ends as soon as Z(t) ≤ 0 (Lemma 1).
func Z(n, u, xmax int64) int64 {
	return n - 2*u - xmax
}

// ZAlpha returns the generalized potential Z_α(t) = n − 2u − α·xmax used in
// Phase 4 with α = 7/8 (Lemma 14).
func ZAlpha(n, u, xmax int64, alpha float64) float64 {
	return float64(n) - 2*float64(u) - alpha*float64(xmax)
}

// EquilibriumUndecided returns u* = n(k−1)/(2k−1), the unstable equilibrium
// for the number of undecided agents (paper, discussion before Lemma 3).
func EquilibriumUndecided(n int64, k int) float64 {
	if k <= 0 {
		return 0
	}
	return float64(n) * float64(k-1) / float64(2*k-1)
}

// SignificanceThreshold returns α·√(n ln n), the additive margin below the
// maximum at which an opinion stops being significant.
func SignificanceThreshold(n int64, alpha float64) float64 {
	if n <= 1 {
		return 0
	}
	return alpha * math.Sqrt(float64(n)*math.Log(float64(n)))
}

// Significant reports whether an opinion with support x is significant in a
// configuration whose largest support is xmax: x > xmax − α√(n ln n).
func Significant(x, xmax, n int64, alpha float64) bool {
	return float64(x) > float64(xmax)-SignificanceThreshold(n, alpha)
}

// SignificantCount returns the number of significant opinions in c.
func SignificantCount(c *conf.Config, alpha float64) int {
	_, xmax := c.Max()
	n := c.N()
	count := 0
	for _, x := range c.Support {
		if Significant(x, xmax, n, alpha) {
			count++
		}
	}
	return count
}

// UndecidedLowerBound returns the Lemma 4 floor that holds w.h.p. for all
// t ∈ [T₁, n³]: u(t) ≥ n/2 − xmax(t)/2 − 8√(n ln n).
func UndecidedLowerBound(n, xmax int64) float64 {
	return float64(n)/2 - float64(xmax)/2 - 8*math.Sqrt(float64(n)*math.Log(float64(n)))
}

// UndecidedUpperBound returns the Lemma 3 ceiling that holds w.h.p. for all
// t ∈ [0, n³]: u(t) ≤ n/2 − √(n ln n)/(5c), where c is the constant in the
// assumption k ≤ c·√n/log²n.
func UndecidedUpperBound(n int64, c float64) float64 {
	if c <= 0 {
		c = 1
	}
	return float64(n)/2 - math.Sqrt(float64(n)*math.Log(float64(n)))/(5*c)
}

// MonochromaticDistance returns md(x) = Σᵢ (xᵢ/xmax)², the measure of
// configuration uniformity from Becchetti et al. used in Appendix D.
// It lies in [1, k] for any configuration with at least one decided agent,
// and is 0 for an all-undecided configuration.
func MonochromaticDistance(support []int64) float64 {
	var xmax int64
	for _, x := range support {
		if x > xmax {
			xmax = x
		}
	}
	if xmax == 0 {
		return 0
	}
	var md float64
	for _, x := range support {
		r := float64(x) / float64(xmax)
		md += r * r
	}
	return md
}

// Probs bundles the exact one-interaction transition probabilities for the
// number of undecided agents (Observation 6).
type Probs struct {
	// Down is p₋ = u(n−u)/n², the probability that an undecided responder
	// adopts an opinion (u decreases by one).
	Down float64
	// Up is p₊ = ((n−u)² − r₂)/n², the probability that a decided responder
	// meets a differently-decided initiator and becomes undecided.
	Up float64
}

// Productive returns p₋ + p₊, the probability that an interaction changes
// the configuration at all.
func (p Probs) Productive() float64 { return p.Down + p.Up }

// UndecidedProbs returns the Observation 6 probabilities for configuration c.
func UndecidedProbs(c *conf.Config) Probs {
	n := float64(c.N())
	u := float64(c.Undecided)
	d := n - u
	r2 := c.SumSquares().Float64()
	return Probs{
		Down: u * d / (n * n),
		Up:   (d*d - r2) / (n * n),
	}
}

// OpinionProbs returns the Observation 8 probabilities for opinion i in c:
// up = u·xᵢ/n² (an undecided responder adopts i) and down =
// xᵢ(n−u−xᵢ)/n² (an i-responder meets a differently-decided initiator).
func OpinionProbs(c *conf.Config, i int) (up, down float64) {
	n := float64(c.N())
	u := float64(c.Undecided)
	xi := float64(c.Support[i])
	return u * xi / (n * n), xi * (n - u - xi) / (n * n)
}

// GapProbs returns the Observation 9 probabilities for the signed gap
// Δ = xᵢ − xⱼ: the probability the gap increases by one and the probability
// it decreases by one in a single interaction.
func GapProbs(c *conf.Config, i, j int) (up, down float64) {
	iUp, iDown := OpinionProbs(c, i)
	jUp, jDown := OpinionProbs(c, j)
	return iUp + jDown, iDown + jUp
}

// ConditionalUp returns ˜p₊ = p₊/(p₊+p₋), the probability that a productive
// interaction increases the undecided count (Observation 7's subject).
// It returns 0 when no interaction is productive.
func ConditionalUp(c *conf.Config) float64 {
	p := UndecidedProbs(c)
	if p.Productive() == 0 {
		return 0
	}
	return p.Up / p.Productive()
}

// DriftZ returns the exact expected one-step decrease E[Z(t) − Z(t+1)] of
// the phase-1 potential, conditioning on which opinion gains or loses an
// agent (the displayed computation in the proof of Lemma 1). Unlike the
// paper's display, ties in the maximum are handled exactly: losing an agent
// from a tied maximum does not change xmax, so the exact drift is at least
// the paper's lower bound Z(t)/(2n).
func DriftZ(c *conf.Config) float64 {
	n := float64(c.N())
	u := float64(c.Undecided)
	_, xmaxInt := c.Max()
	maxCount := 0
	for _, xi := range c.Support {
		if xi == xmaxInt {
			maxCount++
		}
	}
	var drift float64
	for _, xi := range c.Support {
		x := float64(xi)
		// u decreases by one (an undecided responder adopts opinion i):
		// Z increases by 2, minus 1 more if xmax also grows.
		gain := 2.0
		if xi == xmaxInt {
			gain = 1.0
		}
		drift -= gain * x * u / (n * n)
		// u increases by one (an i-responder becomes undecided):
		// Z decreases by 2, unless xmax shrinks too, which requires i to
		// be the unique maximum.
		loss := 2.0
		if xi == xmaxInt && maxCount == 1 {
			loss = 1.0
		}
		drift += loss * x * (n - u - x) / (n * n)
	}
	return drift
}
