package u128

import (
	"math"
	"math/big"
	"testing"
)

// FuzzU128 cross-checks every arithmetic operation against math/big on
// arbitrary word pairs: saturating add/sub/mul, exact Mul64 and DivMod64,
// ordering, shifts, decimal formatting, and the two float64 conversions
// (correct rounding out, exact truncation in). It is the coverage-guided
// arm of the corner-case tables in u128_test.go and runs in the CI
// fuzz-smoke job.
func FuzzU128(f *testing.F) {
	seeds := []struct{ ahi, alo, bhi, blo uint64 }{
		{0, 0, 0, 0},
		{0, 1, 0, math.MaxUint64},
		{0, math.MaxUint64, 0, 1},                   // lo-word carry
		{math.MaxUint64, math.MaxUint64, 0, 1},      // hi-word saturation
		{542, 1864712049423024128, 0, 1e19},         // 10²² = MaxN²
		{math.MaxUint64 >> 1, 0, math.MaxUint64, 0}, // hi-word compare
		{1, 0, 0, math.MaxUint64},
	}
	for _, s := range seeds {
		f.Add(s.ahi, s.alo, s.bhi, s.blo)
	}
	maxB := toBigF(Max)
	f.Fuzz(func(t *testing.T, ahi, alo, bhi, blo uint64) {
		a := U128{Hi: ahi, Lo: alo}
		b := U128{Hi: bhi, Lo: blo}
		ab, bb := toBigF(a), toBigF(b)

		wantAdd := new(big.Int).Add(ab, bb)
		if wantAdd.Cmp(maxB) > 0 {
			wantAdd.Set(maxB)
		}
		if got := toBigF(a.Add(b)); got.Cmp(wantAdd) != 0 {
			t.Fatalf("%v.Add(%v) = %v, want %v", a, b, got, wantAdd)
		}
		wantSub := new(big.Int).Sub(ab, bb)
		if wantSub.Sign() < 0 {
			wantSub.SetInt64(0)
		}
		if got := toBigF(a.Sub(b)); got.Cmp(wantSub) != 0 {
			t.Fatalf("%v.Sub(%v) = %v, want %v", a, b, got, wantSub)
		}
		wantMul := new(big.Int).Mul(ab, bb)
		if wantMul.Cmp(maxB) > 0 {
			wantMul.Set(maxB)
		}
		if got := toBigF(a.Mul(b)); got.Cmp(wantMul) != 0 {
			t.Fatalf("%v.Mul(%v) = %v, want %v", a, b, got, wantMul)
		}
		if got := toBigF(Mul64(alo, blo)); got.Cmp(new(big.Int).Mul(new(big.Int).SetUint64(alo), new(big.Int).SetUint64(blo))) != 0 {
			t.Fatalf("Mul64(%d, %d) = %v", alo, blo, got)
		}
		if got, want := a.Cmp(b), ab.Cmp(bb); got != want {
			t.Fatalf("%v.Cmp(%v) = %d, want %d", a, b, got, want)
		}
		if blo != 0 {
			q, r := a.DivMod64(blo)
			bq, br := new(big.Int).QuoRem(ab, new(big.Int).SetUint64(blo), new(big.Int))
			if toBigF(q).Cmp(bq) != 0 || r != br.Uint64() {
				t.Fatalf("%v.DivMod64(%d) = (%v, %d), want (%v, %v)", a, blo, q, r, bq, br)
			}
		}
		k := uint(bhi % 128)
		wantL := new(big.Int).Lsh(ab, k)
		wantL.And(wantL, maxB)
		if got := toBigF(a.Lsh(k)); got.Cmp(wantL) != 0 {
			t.Fatalf("%v.Lsh(%d) = %v, want %v", a, k, got, wantL)
		}
		if got, want := toBigF(a.Rsh(k)), new(big.Int).Rsh(ab, k); got.Cmp(want) != 0 {
			t.Fatalf("%v.Rsh(%d) = %v, want %v", a, k, got, want)
		}
		if got, want := a.Len(), ab.BitLen(); got != want {
			t.Fatalf("%v.Len() = %d, want %d", a, got, want)
		}
		if got, want := a.String(), ab.String(); got != want {
			t.Fatalf("String() = %q, want %q", got, want)
		}
		gotF := a.Float64()
		wantF, _ := new(big.Float).SetInt(ab).Float64()
		if gotF != wantF {
			t.Fatalf("%v.Float64() = %g, want %g (correct rounding)", a, gotF, wantF)
		}
		// FromFloat64 must truncate exactly for every in-range float.
		if !math.IsInf(gotF, 1) {
			want, _ := new(big.Float).SetFloat64(gotF).Int(nil)
			if want.Cmp(maxB) > 0 {
				want.Set(maxB)
			}
			if got := toBigF(FromFloat64(gotF)); got.Cmp(want) != 0 {
				t.Fatalf("FromFloat64(%g) = %v, want %v", gotF, got, want)
			}
		}
	})
}

// toBigF is toBig without the testing.T plumbing, shared with the fuzz
// target.
func toBigF(x U128) *big.Int {
	b := new(big.Int).SetUint64(x.Hi)
	b.Lsh(b, 64)
	return b.Or(b, new(big.Int).SetUint64(x.Lo))
}
