// Package u128 provides an unsigned 128-bit integer with saturating
// arithmetic, sized for the simulator's interaction-clock and pair-count
// quantities.
//
// The k-opinion USD draws ordered agent pairs, so a population of n agents
// has n² pair states and consensus takes Θ(n²·log n/x₁) interactions. With
// conf.MaxN = 10¹¹ both quantities reach ~10²² ≈ 2⁷⁴ — far past int64 —
// while 2¹²⁸ ≈ 3.4·10³⁸ leaves over fifty bits of headroom above the
// longest representable run. Every quantity measured in interactions or in
// ordered pairs (the clock, budgets, geometric jumps, negative-binomial
// window spans, the productive weight W, r₂ = Σxᵢ², and the Fenwick Σx²
// prefix sums) is a U128.
//
// Arithmetic saturates instead of wrapping: Add clamps at Max, Sub clamps
// at zero, exactly as the int64 clock's satAdd did before the migration —
// except that with 128 bits the clamp is unreachable for any simulation the
// population bound admits, so saturation is a defense-in-depth invariant
// rather than a behavior runs actually exercise. Float64 and FromFloat64
// are the audited precision boundary between the integer clock and the
// float64 probability layer: Float64 is correctly rounded (round-to-odd
// reduction to 64 bits, then the hardware's correctly rounded conversion),
// and FromFloat64 is exact for every non-negative float64 below 2¹²⁸.
package u128

import (
	"math"
	"math/bits"
	"strconv"
)

// U128 is an unsigned 128-bit integer: Hi·2⁶⁴ + Lo. The zero value is 0.
// Hi and Lo are exported so wire formats (dist checkpoints, shard results)
// can serialize the exact value as two uint64 fields.
type U128 struct {
	// Hi is the high 64 bits.
	Hi uint64
	// Lo is the low 64 bits.
	Lo uint64
}

// Max is the largest representable value, 2¹²⁸ − 1: the saturation point of
// Add and Mul.
var Max = U128{Hi: math.MaxUint64, Lo: math.MaxUint64}

// From64 converts a non-negative int64. Negative values clamp to zero,
// matching the "budget <= 0 means unlimited" convention of the run APIs
// (zero is the unlimited budget).
func From64(v int64) U128 {
	if v <= 0 {
		return U128{}
	}
	return U128{Lo: uint64(v)}
}

// FromU64 converts a uint64.
func FromU64(v uint64) U128 {
	return U128{Lo: v}
}

// Mul64 returns the full 128-bit product a·b of two uint64 values. It is
// exact — a 64×64-bit product always fits in 128 bits.
func Mul64(a, b uint64) U128 {
	hi, lo := bits.Mul64(a, b)
	return U128{Hi: hi, Lo: lo}
}

// Add returns x+y, saturating at Max.
func (x U128) Add(y U128) U128 {
	lo, c := bits.Add64(x.Lo, y.Lo, 0)
	hi, c := bits.Add64(x.Hi, y.Hi, c)
	if c != 0 {
		return Max
	}
	return U128{Hi: hi, Lo: lo}
}

// Add64 returns x+v, saturating at Max.
func (x U128) Add64(v uint64) U128 {
	return x.Add(U128{Lo: v})
}

// Sub returns x−y, saturating at zero.
func (x U128) Sub(y U128) U128 {
	lo, b := bits.Sub64(x.Lo, y.Lo, 0)
	hi, b := bits.Sub64(x.Hi, y.Hi, b)
	if b != 0 {
		return U128{}
	}
	return U128{Hi: hi, Lo: lo}
}

// Sub64 returns x−v, saturating at zero.
func (x U128) Sub64(v uint64) U128 {
	return x.Sub(U128{Lo: v})
}

// Mul returns x·y, saturating at Max.
func (x U128) Mul(y U128) U128 {
	if x.Hi != 0 && y.Hi != 0 {
		return Max
	}
	hi, lo := bits.Mul64(x.Lo, y.Lo)
	c1hi, c1 := bits.Mul64(x.Hi, y.Lo)
	c2hi, c2 := bits.Mul64(x.Lo, y.Hi)
	if c1hi != 0 || c2hi != 0 {
		return Max
	}
	hi, carry := bits.Add64(hi, c1, 0)
	if carry != 0 {
		return Max
	}
	hi, carry = bits.Add64(hi, c2, 0)
	if carry != 0 {
		return Max
	}
	return U128{Hi: hi, Lo: lo}
}

// Cmp returns -1, 0, or +1 as x is less than, equal to, or greater than y.
func (x U128) Cmp(y U128) int {
	switch {
	case x.Hi != y.Hi:
		if x.Hi < y.Hi {
			return -1
		}
		return 1
	case x.Lo != y.Lo:
		if x.Lo < y.Lo {
			return -1
		}
		return 1
	default:
		return 0
	}
}

// Less reports x < y.
func (x U128) Less(y U128) bool {
	return x.Hi < y.Hi || (x.Hi == y.Hi && x.Lo < y.Lo)
}

// Leq reports x <= y.
func (x U128) Leq(y U128) bool {
	return !y.Less(x)
}

// Eq reports x == y.
func (x U128) Eq(y U128) bool { return x == y }

// IsZero reports x == 0.
func (x U128) IsZero() bool { return x.Hi == 0 && x.Lo == 0 }

// IsMax reports x == Max, the saturated state.
func (x U128) IsMax() bool { return x == Max }

// Lsh returns x << k for 0 <= k < 128. Bits shifted past the top are lost.
func (x U128) Lsh(k uint) U128 {
	switch {
	case k == 0:
		return x
	case k < 64:
		return U128{Hi: x.Hi<<k | x.Lo>>(64-k), Lo: x.Lo << k}
	case k < 128:
		return U128{Hi: x.Lo << (k - 64)}
	default:
		return U128{}
	}
}

// Rsh returns x >> k for 0 <= k < 128.
func (x U128) Rsh(k uint) U128 {
	switch {
	case k == 0:
		return x
	case k < 64:
		return U128{Hi: x.Hi >> k, Lo: x.Lo>>k | x.Hi<<(64-k)}
	case k < 128:
		return U128{Lo: x.Hi >> (k - 64)}
	default:
		return U128{}
	}
}

// Len returns the minimum number of bits required to represent x; Len of
// zero is 0.
func (x U128) Len() int {
	if x.Hi != 0 {
		return 64 + bits.Len64(x.Hi)
	}
	return bits.Len64(x.Lo)
}

// Div64 returns the quotient x/v. v must be nonzero.
func (x U128) Div64(v uint64) U128 {
	q, _ := x.DivMod64(v)
	return q
}

// DivMod64 returns the quotient and remainder of x/v. v must be nonzero.
func (x U128) DivMod64(v uint64) (U128, uint64) {
	if v == 0 {
		panic("u128: division by zero")
	}
	qhi := x.Hi / v
	rem := x.Hi % v
	qlo, r := bits.Div64(rem, x.Lo, v)
	return U128{Hi: qhi, Lo: qlo}, r
}

// Float64 returns the correctly rounded (round-to-nearest-even) float64
// value of x. Values with at most 64 bits use the hardware's correctly
// rounded uint64 conversion directly; wider values are first reduced to a
// 64-bit integer by a round-to-odd shift (the dropped bits' OR is jammed
// into the lowest kept bit) and then converted. Because the reduction keeps
// 64 >= 53+2 significant bits, the round-to-odd intermediate makes the
// final conversion exact — no double-rounding error. This is the audited
// precision path the simulator's probability layer (W/n², geometric and
// negative-binomial parameters) relies on: every probability it computes
// from U128 counts is within one rounding of the true real value.
func (x U128) Float64() float64 {
	if x.Hi == 0 {
		return float64(x.Lo)
	}
	k := uint(bits.Len64(x.Hi)) // 1..64 low bits are dropped
	z := x.Hi<<(64-k) | x.Lo>>k
	if x.Lo<<(64-k) != 0 {
		z |= 1 // sticky: round the dropped bits to odd
	}
	return math.Ldexp(float64(z), int(k))
}

// FromFloat64 converts a float64 to a U128, saturating: NaN and values
// >= 2¹²⁸ map to Max, values <= 0 map to zero, and everything in between is
// truncated toward zero. The conversion is exact for every float64 in
// [0, 2¹²⁸): a float64's 53-bit significand splits losslessly across the
// two words. Clock spans sampled in float64 (geometric jumps, large
// negative-binomial spans) enter the integer clock through this function.
func FromFloat64(f float64) U128 {
	if math.IsNaN(f) || f >= 0x1p128 {
		return Max
	}
	if f <= 0 {
		return U128{}
	}
	if f < 0x1p64 {
		return U128{Lo: uint64(f)}
	}
	// f in [2⁶⁴, 2¹²⁸): both the scaled division and the remainder are
	// exact — f/2⁶⁴ is a power-of-two rescale, its truncation has at most
	// 53 significant bits, and the remainder is a multiple of f's ulp
	// below 2⁶⁴.
	hi := uint64(f / 0x1p64)
	lo := uint64(f - float64(hi)*0x1p64)
	return U128{Hi: hi, Lo: lo}
}

// String returns the decimal representation of x.
func (x U128) String() string {
	if x.Hi == 0 {
		return strconv.FormatUint(x.Lo, 10)
	}
	// Peel 19 decimal digits at a time (10¹⁹ is the largest power of ten
	// in a uint64); at most three chunks cover 2¹²⁸.
	const chunk = uint64(1e19)
	q, r := x.DivMod64(chunk)
	if q.Hi == 0 {
		return strconv.FormatUint(q.Lo, 10) + pad19(r)
	}
	q2, r2 := q.DivMod64(chunk)
	return strconv.FormatUint(q2.Lo, 10) + pad19(r2) + pad19(r)
}

// pad19 formats v as exactly 19 digits with leading zeros.
func pad19(v uint64) string {
	s := strconv.FormatUint(v, 10)
	const zeros = "0000000000000000000"
	return zeros[:19-len(s)] + s
}
