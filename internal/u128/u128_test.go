package u128

import (
	"math"
	"math/big"
	"testing"
)

// toBig returns x as a math/big integer.
func toBig(x U128) *big.Int {
	b := new(big.Int).SetUint64(x.Hi)
	b.Lsh(b, 64)
	return b.Or(b, new(big.Int).SetUint64(x.Lo))
}

// fromBig converts a big integer in [0, 2¹²⁸) to a U128.
func fromBig(t *testing.T, b *big.Int) U128 {
	t.Helper()
	if b.Sign() < 0 || b.BitLen() > 128 {
		t.Fatalf("fromBig: %v out of range", b)
	}
	lo := new(big.Int).And(b, new(big.Int).SetUint64(math.MaxUint64))
	hi := new(big.Int).Rsh(b, 64)
	return U128{Hi: hi.Uint64(), Lo: lo.Uint64()}
}

var maxBig = toBig(Max)

// interesting 128-bit boundary values: zero, small, the int64 and uint64
// edges, lo-word carry neighborhoods, hi-word saturation neighborhoods, and
// the new MaxN² scale.
var corner = []U128{
	{},
	{Lo: 1},
	{Lo: 2},
	{Lo: math.MaxInt64},
	{Lo: math.MaxInt64 + 1},
	{Lo: math.MaxUint64 - 1},
	{Lo: math.MaxUint64},
	{Hi: 1},
	{Hi: 1, Lo: 1},
	{Hi: 1, Lo: math.MaxUint64},
	{Hi: 542, Lo: 1864712049423024128}, // 10²² = MaxN² at MaxN = 10¹¹
	{Hi: math.MaxUint64 >> 1},
	{Hi: math.MaxUint64, Lo: 0},
	{Hi: math.MaxUint64, Lo: math.MaxUint64 - 1},
	Max,
}

func TestAddSubMulAgainstBig(t *testing.T) {
	for _, a := range corner {
		for _, b := range corner {
			wantAdd := new(big.Int).Add(toBig(a), toBig(b))
			if wantAdd.Cmp(maxBig) > 0 {
				wantAdd.Set(maxBig)
			}
			if got := toBig(a.Add(b)); got.Cmp(wantAdd) != 0 {
				t.Fatalf("%v.Add(%v) = %v, want %v", a, b, got, wantAdd)
			}
			wantSub := new(big.Int).Sub(toBig(a), toBig(b))
			if wantSub.Sign() < 0 {
				wantSub.SetInt64(0)
			}
			if got := toBig(a.Sub(b)); got.Cmp(wantSub) != 0 {
				t.Fatalf("%v.Sub(%v) = %v, want %v", a, b, got, wantSub)
			}
			wantMul := new(big.Int).Mul(toBig(a), toBig(b))
			if wantMul.Cmp(maxBig) > 0 {
				wantMul.Set(maxBig)
			}
			if got := toBig(a.Mul(b)); got.Cmp(wantMul) != 0 {
				t.Fatalf("%v.Mul(%v) = %v, want %v", a, b, got, wantMul)
			}
			if got, want := a.Cmp(b), toBig(a).Cmp(toBig(b)); got != want {
				t.Fatalf("%v.Cmp(%v) = %d, want %d", a, b, got, want)
			}
			if got, want := a.Less(b), toBig(a).Cmp(toBig(b)) < 0; got != want {
				t.Fatalf("%v.Less(%v) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestMul64(t *testing.T) {
	vals := []uint64{0, 1, 3, math.MaxInt64, math.MaxUint64, 100_000_000_000}
	for _, a := range vals {
		for _, b := range vals {
			want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
			if got := toBig(Mul64(a, b)); got.Cmp(want) != 0 {
				t.Fatalf("Mul64(%d, %d) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestDivMod64(t *testing.T) {
	divisors := []uint64{1, 2, 3, 1e19, math.MaxUint64, 100_000_000_000}
	for _, x := range corner {
		for _, v := range divisors {
			q, r := x.DivMod64(v)
			bq, br := new(big.Int).QuoRem(toBig(x), new(big.Int).SetUint64(v), new(big.Int))
			if toBig(q).Cmp(bq) != 0 || r != br.Uint64() {
				t.Fatalf("%v.DivMod64(%d) = (%v, %d), want (%v, %v)", x, v, q, r, bq, br)
			}
		}
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div64 by zero did not panic")
		}
	}()
	U128{Lo: 1}.Div64(0)
}

func TestFloat64CorrectlyRounded(t *testing.T) {
	for _, x := range corner {
		got := x.Float64()
		want, _ := new(big.Float).SetInt(toBig(x)).Float64()
		if got != want {
			t.Fatalf("%v.Float64() = %g, want %g", x, got, want)
		}
	}
	// Round-to-odd corner: a value exactly halfway between two float64s,
	// plus a sticky bit far below, must round up — a naive truncating
	// reduction would round to even instead.
	x := U128{Hi: 1, Lo: 1<<11 | 1} // 2⁶⁴ + 2¹¹ + 1: halfway + sticky
	got := x.Float64()
	want, _ := new(big.Float).SetInt(toBig(x)).Float64()
	if got != want {
		t.Fatalf("sticky rounding: got %g, want %g", got, want)
	}
}

func TestFromFloat64(t *testing.T) {
	cases := []struct {
		f    float64
		want U128
	}{
		{0, U128{}},
		{-1, U128{}},
		{math.Inf(-1), U128{}},
		{0.99, U128{}},
		{1, U128{Lo: 1}},
		{1e19, U128{Lo: 1e19}},
		{0x1p64, U128{Hi: 1}},
		{0x1.8p64, U128{Hi: 1, Lo: 1 << 63}},
		{1e22, U128{Hi: 542, Lo: 1864712049423024128}},
		{0x1p128, Max},
		{math.Inf(1), Max},
		{math.NaN(), Max},
		{math.MaxFloat64, Max},
	}
	for _, tc := range cases {
		if got := FromFloat64(tc.f); got != tc.want {
			t.Fatalf("FromFloat64(%g) = %v, want %v", tc.f, got, tc.want)
		}
	}
	// Exactness: every representable float64 in [0, 2¹²⁸) converts to its
	// exact truncation.
	for _, f := range []float64{3.7, 1e15 + 0.5, 0x1.fffffffffffffp63, 0x1.123456789abcdp100} {
		want, _ := new(big.Float).SetFloat64(f).Int(nil)
		if got := FromFloat64(f); toBig(got).Cmp(want) != 0 {
			t.Fatalf("FromFloat64(%g) = %v, want %v", f, got, want)
		}
	}
}

func TestRoundTripFloat(t *testing.T) {
	// FromFloat64 ∘ Float64 is the identity on values with <= 53
	// significant bits, including across the 64-bit word boundary.
	for _, x := range []U128{{Lo: 12345}, {Hi: 3}, {Hi: 1 << 40}, {Hi: 542, Lo: 1864712049423024128}} {
		if got := FromFloat64(x.Float64()); got != x {
			t.Fatalf("round trip %v -> %g -> %v", x, x.Float64(), got)
		}
	}
}

func TestShifts(t *testing.T) {
	for _, x := range corner {
		for _, k := range []uint{0, 1, 11, 63, 64, 65, 127} {
			wantL := new(big.Int).Lsh(toBig(x), k)
			wantL.And(wantL, maxBig)
			if got := toBig(x.Lsh(k)); got.Cmp(wantL) != 0 {
				t.Fatalf("%v.Lsh(%d) = %v, want %v", x, k, got, wantL)
			}
			wantR := new(big.Int).Rsh(toBig(x), k)
			if got := toBig(x.Rsh(k)); got.Cmp(wantR) != 0 {
				t.Fatalf("%v.Rsh(%d) = %v, want %v", x, k, got, wantR)
			}
		}
	}
}

func TestLen(t *testing.T) {
	for _, x := range corner {
		if got, want := x.Len(), toBig(x).BitLen(); got != want {
			t.Fatalf("%v.Len() = %d, want %d", x, got, want)
		}
	}
}

func TestString(t *testing.T) {
	for _, x := range corner {
		if got, want := x.String(), toBig(x).String(); got != want {
			t.Fatalf("%v.String() = %q, want %q", toBig(x), got, want)
		}
	}
}

func TestFrom64(t *testing.T) {
	if got := From64(-7); !got.IsZero() {
		t.Fatalf("From64(-7) = %v, want 0", got)
	}
	if got := From64(math.MaxInt64); got != (U128{Lo: math.MaxInt64}) {
		t.Fatalf("From64(MaxInt64) = %v", got)
	}
	if got := FromU64(math.MaxUint64); got != (U128{Lo: math.MaxUint64}) {
		t.Fatalf("FromU64(MaxUint64) = %v", got)
	}
}
