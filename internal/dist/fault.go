package dist

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// This file is the fault-injection harness: a Launcher wrapper that makes
// workers fail on a deterministic schedule, so the chaos tests (and the
// cmd/bench fault_recovery section) can exercise every branch of the
// coordinator's recovery machinery — crash detection on both stream
// directions, hang detection via the liveness deadline, garbage frames,
// relaunch, and redistribution — without ever touching the workers' trial
// code. Faults sit between the coordinator and the real connection, which
// keeps the worker honest: a "crashed" worker really is killed, so its
// half-finished wave genuinely needs requeuing.

// FaultKind selects the failure mode a Fault injects.
type FaultKind int

const (
	// FaultCrashBeforeWave kills the worker the moment the coordinator
	// writes it the After-th wave command (counting from 0): the dispatch
	// write fails and the process dies before any of that wave's trials
	// run — the cleanest crash, caught on the command stream.
	FaultCrashBeforeWave FaultKind = iota
	// FaultCrashMidWave kills the worker once it has emitted After result
	// lines: the result stream dies with a wave half-computed, so the
	// coordinator must requeue exactly the unreceived remainder.
	FaultCrashMidWave
	// FaultHang silences the worker after it has emitted After protocol
	// lines without exiting or closing anything: results stop flowing and
	// nothing errors, so only Options.WorkerTimeout can catch it. After = 0
	// hangs before the hello — a worker that connects but never completes
	// the handshake.
	FaultHang
	// FaultGarbage injects one non-JSON line into the result stream after
	// After forwarded lines — a corrupted frame, caught by the protocol
	// decoder.
	FaultGarbage
	// FaultPartition severs the link after After forwarded protocol lines,
	// silently and in both directions: the worker's further output is
	// blackholed and coordinator commands are swallowed without error,
	// while the worker itself stays alive and healthy. Nothing errors, so
	// only Options.WorkerTimeout can diagnose it — the network-shaped
	// analogue of FaultHang.
	FaultPartition
	// FaultDropFrames silently discards the worker's After-th result frame
	// in transit while everything else (including the wavedone barrier)
	// flows normally — a lossy link, caught by the coordinator's
	// frame-integrity check on the barrier's echoed indices.
	FaultDropFrames
	// FaultSlowLink delays every forwarded result-stream line by Delay once
	// After lines have passed — a degraded link. It is the one fault a
	// correct coordinator must NOT react to: as long as Delay stays under
	// the liveness deadline the run completes without any relaunch.
	FaultSlowLink
	// FaultCrashOnConnect kills the worker the instant it is launched,
	// before a single byte flows — the building block of reconnect storms
	// (see ReconnectStorm). After is ignored.
	FaultCrashOnConnect
)

// String names the fault kind for logs and benchmark reports.
func (k FaultKind) String() string {
	switch k {
	case FaultCrashBeforeWave:
		return "crash-before-wave"
	case FaultCrashMidWave:
		return "crash-mid-wave"
	case FaultHang:
		return "hang"
	case FaultGarbage:
		return "garbage-frame"
	case FaultPartition:
		return "partition"
	case FaultDropFrames:
		return "drop-frames"
	case FaultSlowLink:
		return "slow-link"
	case FaultCrashOnConnect:
		return "crash-on-connect"
	default:
		return fmt.Sprintf("fault-kind-%d", int(k))
	}
}

// Fault schedules one failure: the Launch-th worker incarnation of a shard
// misbehaves per Kind when its After trigger count is reached.
type Fault struct {
	// Shard is the faulted shard.
	Shard int
	// Launch is the incarnation the fault applies to: 0 faults the first
	// worker launched for the shard, 1 its first relaunch, and so on.
	Launch int
	// Kind is the failure mode.
	Kind FaultKind
	// After is the kind-specific trigger count: wave commands written
	// (FaultCrashBeforeWave), result lines emitted (FaultCrashMidWave,
	// FaultDropFrames), or protocol lines emitted (FaultHang, FaultGarbage,
	// FaultPartition, FaultSlowLink). FaultCrashOnConnect ignores it.
	After int
	// Delay is FaultSlowLink's per-line forwarding delay.
	Delay time.Duration
}

// errFaultCrash is what a fault-killed connection's streams report.
var errFaultCrash = errors.New("fault: injected worker crash")

// FaultLauncher wraps an inner Launcher with a deterministic fault
// schedule. Incarnations not named in the schedule pass through untouched,
// so a faulted shard's relaunch (the next incarnation) behaves normally
// unless the schedule faults it again.
type FaultLauncher struct {
	// Inner launches the real workers.
	Inner Launcher
	// Schedule lists the faults to inject.
	Schedule []Fault

	mu       sync.Mutex
	launches map[int]int
}

// Launch starts the shard's next worker incarnation, wrapped with its
// scheduled fault if one matches.
func (l *FaultLauncher) Launch(shard, shards int) (*Conn, error) {
	l.mu.Lock()
	if l.launches == nil {
		l.launches = make(map[int]int)
	}
	inc := l.launches[shard]
	l.launches[shard]++
	var f *Fault
	for i := range l.Schedule {
		if l.Schedule[i].Shard == shard && l.Schedule[i].Launch == inc {
			f = &l.Schedule[i]
			break
		}
	}
	l.mu.Unlock()
	c, err := l.Inner.Launch(shard, shards)
	if err != nil || f == nil {
		return c, err
	}
	return injectFault(c, *f), nil
}

// faultConn mediates one faulted connection. The result stream is forwarded
// line by line through a pipe so the fault can cut, corrupt, or freeze it
// at an exact protocol position; the command stream is intercepted in
// Write. Killing the faulted connection kills the real worker underneath,
// so no fault leaks a live process.
type faultConn struct {
	inner *Conn
	f     Fault
	pw    *io.PipeWriter

	mu          sync.Mutex
	waves       int  // wave commands seen on the command stream
	partitioned bool // FaultPartition tripped: swallow both directions

	killed   chan struct{}
	killOnce sync.Once
}

// injectFault wraps a real connection with one scheduled fault.
func injectFault(inner *Conn, f Fault) *Conn {
	pr, pw := io.Pipe()
	fc := &faultConn{inner: inner, f: f, pw: pw, killed: make(chan struct{})}
	go fc.forward()
	return &Conn{
		W:    fc,
		R:    pr,
		Wait: inner.Wait,
		Kill: fc.kill,
	}
}

// kill terminates the faulted connection and the real worker under it,
// unblocking a hung forwarder.
func (c *faultConn) kill() {
	c.killOnce.Do(func() { close(c.killed) })
	c.inner.kill()
}

// Write intercepts the coordinator's command stream. FaultCrashBeforeWave
// lives here: at its trigger the real worker is killed and the write fails,
// exactly like a process that died between waves. FaultCrashOnConnect fails
// the very first write (nothing ever reaches the worker), and a tripped
// FaultPartition swallows commands "successfully" — the write reports
// success but the worker never hears it, like a blackholed packet.
func (c *faultConn) Write(p []byte) (int, error) {
	if c.f.Kind == FaultCrashOnConnect {
		c.kill()
		c.pw.CloseWithError(errFaultCrash)
		return 0, errFaultCrash
	}
	if c.f.Kind == FaultPartition {
		c.mu.Lock()
		cut := c.partitioned
		c.mu.Unlock()
		if cut {
			return len(p), nil
		}
	}
	if c.f.Kind == FaultCrashBeforeWave && bytes.Contains(p, []byte(`"type":"`+TypeWave+`"`)) {
		c.mu.Lock()
		n := c.waves
		c.waves++
		c.mu.Unlock()
		if n == c.f.After {
			c.kill()
			c.pw.CloseWithError(errFaultCrash)
			return 0, errFaultCrash
		}
	}
	return c.inner.W.Write(p)
}

// Close closes the command stream of the real connection.
func (c *faultConn) Close() error { return c.inner.W.Close() }

// forward pumps the worker's result stream to the coordinator, applying
// the read-side faults at their trigger positions.
func (c *faultConn) forward() {
	if c.f.Kind == FaultCrashOnConnect {
		// Dead before the first byte: the cleanest connection failure.
		c.kill()
		c.pw.CloseWithError(errFaultCrash)
		return
	}
	br := bufio.NewReaderSize(c.inner.R, 1<<16)
	lines := 0
	results := 0
	injected := false
	for {
		line, err := br.ReadBytes('\n')
		if len(line) > 0 {
			drop := false
			switch c.f.Kind {
			case FaultCrashMidWave:
				if bytes.Contains(line, []byte(`"type":"`+TypeResult+`"`)) {
					if results == c.f.After {
						c.kill()
						c.pw.CloseWithError(errFaultCrash)
						return
					}
					results++
				}
			case FaultHang:
				if lines == c.f.After {
					// Fall silent without closing anything: the worker
					// stays alive, the coordinator hears nothing, and only
					// the liveness deadline (or a kill) ends it.
					<-c.killed
					c.pw.CloseWithError(errFaultCrash)
					return
				}
				lines++
			case FaultGarbage:
				if lines == c.f.After && !injected {
					injected = true
					if _, werr := c.pw.Write([]byte("%% corrupted frame %%\n")); werr != nil {
						c.inner.kill()
						return
					}
				}
				lines++
			case FaultPartition:
				if lines == c.f.After {
					// Trip the partition: swallow writes from here on (see
					// Write) and blackhole the rest of the worker's output
					// without closing anything. Only the liveness deadline
					// (or a kill) ends it.
					c.mu.Lock()
					c.partitioned = true
					c.mu.Unlock()
					<-c.killed
					c.pw.CloseWithError(errFaultCrash)
					return
				}
				lines++
			case FaultDropFrames:
				if bytes.Contains(line, []byte(`"type":"`+TypeResult+`"`)) {
					if results == c.f.After {
						drop = true // the frame vanishes; the stream lives on
					}
					results++
				}
			case FaultSlowLink:
				if lines >= c.f.After && c.f.Delay > 0 {
					select {
					case <-time.After(c.f.Delay):
					case <-c.killed:
						c.pw.CloseWithError(errFaultCrash)
						return
					}
				}
				lines++
			}
			if !drop {
				if _, werr := c.pw.Write(line); werr != nil {
					// The coordinator closed its end (teardown); stop the
					// worker so nothing leaks.
					c.inner.kill()
					return
				}
			}
		}
		if err != nil {
			if err == io.EOF {
				c.pw.Close()
			} else {
				c.pw.CloseWithError(err)
			}
			return
		}
	}
}

// ChaosSchedule builds a deterministic, seed-dependent fault schedule that
// kills each shard's first worker incarnation exactly once, cycling the
// fault kinds across shards with a seeded rotation and small trigger
// counts. Schedules are pure functions of (seed, shards), so a failing
// chaos run reproduces exactly.
func ChaosSchedule(seed uint64, shards int) []Fault {
	x := seed*2862933555777941757 + 3037000493
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	kinds := []FaultKind{FaultCrashBeforeWave, FaultCrashMidWave, FaultHang, FaultGarbage}
	rot := int(next() >> 33)
	out := make([]Fault, shards)
	for i := range out {
		out[i] = Fault{
			Shard: i,
			Kind:  kinds[(rot+i)%len(kinds)],
			After: 1 + int(next()>>33)%3,
		}
	}
	return out
}

// NetworkChaosSchedule is ChaosSchedule's network-shaped sibling: a
// deterministic, seed-dependent plan that gives each shard's first worker
// incarnation one network fault — partition, dropped frame, slow link, or
// crash-on-connect — cycling the kinds across shards with a seeded
// rotation. Like ChaosSchedule it is a pure function of (seed, shards), so
// a failing run reproduces exactly. Slow links get a small Delay, well
// under any sane liveness deadline, since a slow link is the fault the
// coordinator must tolerate rather than react to.
func NetworkChaosSchedule(seed uint64, shards int) []Fault {
	x := seed*2862933555777941757 + 3037000493
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	kinds := []FaultKind{FaultPartition, FaultDropFrames, FaultSlowLink, FaultCrashOnConnect}
	rot := int(next() >> 33)
	out := make([]Fault, shards)
	for i := range out {
		f := Fault{
			Shard: i,
			Kind:  kinds[(rot+i)%len(kinds)],
			After: 1 + int(next()>>33)%3,
		}
		if f.Kind == FaultSlowLink {
			f.Delay = time.Duration(1+int(next()>>33)%3) * time.Millisecond
		}
		out[i] = f
	}
	return out
}

// ReconnectStorm schedules a shard's first count incarnations to die the
// instant they connect — the reconnect-storm scenario: every relaunch
// immediately fails again, exercising the backoff ladder. Incarnation count
// (the count+1-th) connects cleanly, so a run self-heals as long as count
// is within the relaunch budget.
func ReconnectStorm(shard, count int) []Fault {
	out := make([]Fault, count)
	for i := range out {
		out[i] = Fault{Shard: shard, Launch: i, Kind: FaultCrashOnConnect}
	}
	return out
}
