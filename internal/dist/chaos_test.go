package dist

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// The chaos suite: every test injects worker failures through FaultLauncher
// and requires the run to finish with a fold byte-identical to a fault-free
// single-shard run — the ISSUE 6 acceptance bar. The CI fault-injection job
// runs this file under -race.

// chaosOpts are the base options every chaos run shares: fast relaunch
// backoff, a liveness deadline generous enough for race-instrumented
// builds, and silenced recovery diagnostics.
func chaosOpts(shards int, launcher Launcher) Options {
	return Options{
		Shards:          shards,
		MaxTrials:       48,
		Wave:            4,
		Seed:            23,
		Spec:            []byte(`{"job":"chaos"}`),
		Launcher:        launcher,
		WorkerTimeout:   500 * time.Millisecond,
		RelaunchBackoff: time.Millisecond,
		Log:             io.Discard,
	}
}

// chaosReference folds the same job fault-free on a single shard.
func chaosReference(t *testing.T, opts Options) *foldState {
	t.Helper()
	ref := opts
	ref.Shards = 1
	ref.Launcher = &PipeLauncher{Build: echoBuild}
	ref.WorkerTimeout = 0
	ref.CheckpointPath = ""
	st, _ := runEcho(t, ref, nil)
	return st
}

// TestChaosEachFaultKindSelfHeals runs S=4 with one shard faulted per
// fault kind and requires the run to complete without manual intervention,
// with the folded stream byte-identical to the fault-free single-shard run.
func TestChaosEachFaultKindSelfHeals(t *testing.T) {
	kinds := []struct {
		name  string
		fault Fault
	}{
		{"crash-before-wave", Fault{Shard: 2, Kind: FaultCrashBeforeWave, After: 1}},
		{"crash-mid-wave", Fault{Shard: 2, Kind: FaultCrashMidWave, After: 2}},
		{"hang", Fault{Shard: 2, Kind: FaultHang, After: 1}},
		{"garbage", Fault{Shard: 2, Kind: FaultGarbage, After: 1}},
	}
	for _, tc := range kinds {
		t.Run(tc.name, func(t *testing.T) {
			opts := chaosOpts(4, &FaultLauncher{
				Inner:    &PipeLauncher{Build: echoBuild},
				Schedule: []Fault{tc.fault},
			})
			ref := chaosReference(t, opts)
			st := &foldState{}
			res, err := Run(opts, st.sink, nil, st)
			if err != nil {
				t.Fatalf("faulted run: %v", err)
			}
			if res.Trials != opts.MaxTrials {
				t.Fatalf("folded %d trials, want %d", res.Trials, opts.MaxTrials)
			}
			if res.Relaunches == 0 {
				t.Fatalf("res = %+v, want at least one relaunch", res)
			}
			if !reflect.DeepEqual(st.Seq, ref.Seq) {
				t.Fatalf("%s: fold diverged from fault-free run", tc.name)
			}
		})
	}
}

// TestChaosScheduleKillsEachShardOnce is the acceptance scenario: S=4 and a
// deterministic ChaosSchedule that kills each shard's first worker exactly
// once (all four fault kinds appear across the shards), with the run
// completing and the fold byte-identical to the fault-free single-shard
// run.
func TestChaosScheduleKillsEachShardOnce(t *testing.T) {
	schedule := ChaosSchedule(9, 4)
	if len(schedule) != 4 {
		t.Fatalf("schedule has %d faults, want 4", len(schedule))
	}
	seenShard := map[int]bool{}
	seenKind := map[FaultKind]bool{}
	for _, f := range schedule {
		seenShard[f.Shard] = true
		seenKind[f.Kind] = true
		if f.Launch != 0 {
			t.Fatalf("fault %+v targets a relaunch, want first incarnations only", f)
		}
	}
	if len(seenShard) != 4 || len(seenKind) != 4 {
		t.Fatalf("schedule %+v does not kill each shard once with all kinds", schedule)
	}
	if !reflect.DeepEqual(schedule, ChaosSchedule(9, 4)) {
		t.Fatal("ChaosSchedule is not deterministic")
	}

	opts := chaosOpts(4, &FaultLauncher{
		Inner:    &PipeLauncher{Build: echoBuild},
		Schedule: schedule,
	})
	ref := chaosReference(t, opts)
	st := &foldState{}
	res, err := Run(opts, st.sink, nil, st)
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if res.Trials != opts.MaxTrials || res.Relaunches < 4 {
		t.Fatalf("res = %+v, want %d trials and >= 4 relaunches", res, opts.MaxTrials)
	}
	if !reflect.DeepEqual(st.Seq, ref.Seq) {
		t.Fatal("chaos fold diverged from fault-free run")
	}
}

// TestChaosExhaustedBudgetRedistributes kills every incarnation of shard 0,
// exhausting its relaunch budget; the coordinator must redistribute its
// index stream to the surviving shard and still produce the byte-identical
// fold.
func TestChaosExhaustedBudgetRedistributes(t *testing.T) {
	opts := chaosOpts(2, &FaultLauncher{
		Inner: &PipeLauncher{Build: echoBuild},
		Schedule: []Fault{
			{Shard: 0, Launch: 0, Kind: FaultCrashBeforeWave, After: 1},
			{Shard: 0, Launch: 1, Kind: FaultCrashMidWave, After: 1},
			{Shard: 0, Launch: 2, Kind: FaultGarbage},
		},
	})
	opts.MaxRelaunches = 2
	ref := chaosReference(t, opts)
	st := &foldState{}
	res, err := Run(opts, st.sink, nil, st)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Relaunches != 2 || res.Requeued == 0 {
		t.Fatalf("res = %+v, want exactly 2 relaunches and requeued trials", res)
	}
	if res.Trials != opts.MaxTrials || !reflect.DeepEqual(st.Seq, ref.Seq) {
		t.Fatal("redistributed fold diverged from fault-free run")
	}
}

// TestChaosAllShardsLostLeavesUsableCheckpoint crashes every incarnation of
// every shard: the run must fail with a permanent-failure error — not hang
// — and leave a checkpoint from which a clean rerun completes
// byte-identically.
func TestChaosAllShardsLostLeavesUsableCheckpoint(t *testing.T) {
	opts := chaosOpts(2, &FaultLauncher{
		Inner: &PipeLauncher{Build: echoBuild},
		// The first incarnations crash only at their 4th wave command, so a
		// couple of waves fold (and checkpoint) before the relaunches crash
		// fast and both shards are written off.
		Schedule: []Fault{
			{Shard: 0, Launch: 0, Kind: FaultCrashBeforeWave, After: 3},
			{Shard: 0, Launch: 1, Kind: FaultCrashBeforeWave, After: 1},
			{Shard: 1, Launch: 0, Kind: FaultCrashBeforeWave, After: 3},
			{Shard: 1, Launch: 1, Kind: FaultCrashBeforeWave, After: 1},
		},
	})
	opts.MaxRelaunches = 1
	opts.CheckpointPath = filepath.Join(t.TempDir(), "chaos.ckpt")
	ref := chaosReference(t, opts)

	st := &foldState{}
	res, err := Run(opts, st.sink, nil, st)
	if err == nil || !strings.Contains(err.Error(), "failed permanently") {
		t.Fatalf("expected permanent failure, got %v", err)
	}
	if res.Trials == 0 {
		t.Fatal("nothing folded before the abort; the completable waves should have been saved")
	}

	resume := opts
	resume.Launcher = &PipeLauncher{Build: echoBuild}
	st2 := &foldState{}
	res2, err := Run(resume, st2.sink, nil, st2)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if res2.ResumedFrom == 0 || res2.Trials != opts.MaxTrials {
		t.Fatalf("resume res = %+v, want a resume completing %d trials", res2, opts.MaxTrials)
	}
	if !reflect.DeepEqual(st2.Seq, ref.Seq) {
		t.Fatal("resumed fold diverged from fault-free run")
	}
}

// TestChaosHandshakeTimeout pins the handshake liveness deadline: a worker
// that connects but never completes the handshake is detected within
// WorkerTimeout. With recovery enabled the shard relaunches and the run
// self-heals; with NoRelaunch the run aborts with the hang diagnosis
// instead of blocking forever.
func TestChaosHandshakeTimeout(t *testing.T) {
	mkLauncher := func() Launcher {
		return &FaultLauncher{
			Inner:    &PipeLauncher{Build: echoBuild},
			Schedule: []Fault{{Shard: 1, Kind: FaultHang, After: 0}},
		}
	}

	opts := chaosOpts(2, mkLauncher())
	opts.WorkerTimeout = 200 * time.Millisecond
	ref := chaosReference(t, opts)
	st := &foldState{}
	res, err := Run(opts, st.sink, nil, st)
	if err != nil {
		t.Fatalf("self-heal run: %v", err)
	}
	if res.Relaunches == 0 || !reflect.DeepEqual(st.Seq, ref.Seq) {
		t.Fatalf("res = %+v, want a relaunch and a byte-identical fold", res)
	}

	noHeal := chaosOpts(2, mkLauncher())
	noHeal.WorkerTimeout = 200 * time.Millisecond
	noHeal.MaxRelaunches = NoRelaunch
	begin := time.Now()
	_, err = Run(noHeal, (&foldState{}).sink, nil, &foldState{})
	if err == nil || !strings.Contains(err.Error(), "worker hung") {
		t.Fatalf("expected hang diagnosis, got %v", err)
	}
	if elapsed := time.Since(begin); elapsed > 10*time.Second {
		t.Fatalf("hang detection took %v, want within the liveness deadline", elapsed)
	}
}

// TestChaosExecLauncher repeats the kill-and-relaunch scenario over real
// worker processes (the test binary re-executed in worker mode): the
// injected crash kills an actual child process, and the relaunched process
// picks the wave back up.
func TestChaosExecLauncher(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	opts := chaosOpts(2, &FaultLauncher{
		Inner: &ExecLauncher{
			Path: os.Args[0],
			Args: func(shard, shards int) []string {
				return []string{distWorkerFlag + ShardArg(shard, shards)}
			},
			Stderr: io.Discard,
		},
		Schedule: []Fault{{Shard: 1, Kind: FaultCrashMidWave, After: 2}},
	})
	ref := chaosReference(t, opts)
	st := &foldState{}
	res, err := Run(opts, st.sink, nil, st)
	if err != nil {
		t.Fatalf("exec chaos run: %v", err)
	}
	if res.Relaunches == 0 || !reflect.DeepEqual(st.Seq, ref.Seq) {
		t.Fatalf("res = %+v, want a process relaunch and a byte-identical fold", res)
	}
}

// TestPrefixWriter pins the stderr line prefixing: one prefix per line,
// partial lines remembered across writes, and each Write forwarded as a
// single underlying write.
func TestPrefixWriter(t *testing.T) {
	var buf bytes.Buffer
	w := &prefixWriter{w: &buf, prefix: []byte("[shard 1/4] ")}
	for _, chunk := range []string{"boom\n", "spl", "it\ntwo\n", "tail"} {
		n, err := w.Write([]byte(chunk))
		if err != nil || n != len(chunk) {
			t.Fatalf("Write(%q) = %d, %v", chunk, n, err)
		}
	}
	want := "[shard 1/4] boom\n[shard 1/4] split\n[shard 1/4] two\n[shard 1/4] tail"
	if got := buf.String(); got != want {
		t.Fatalf("prefixed output %q, want %q", got, want)
	}
}

// TestExecLauncherStderrPrefix is the process-level regression test for the
// [shard i/S] prefix: a worker's stderr lines arrive attributed.
func TestExecLauncherStderrPrefix(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	var buf syncBuffer
	l := &ExecLauncher{
		Path:   "/bin/sh",
		Args:   func(int, int) []string { return []string{"-c", "echo boom >&2; printf split >&2; echo ter >&2"} },
		Stderr: &buf,
	}
	c, err := l.Launch(1, 4)
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	c.W.Close()
	_, _ = io.Copy(io.Discard, c.R)
	if err := c.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	want := "[shard 1/4] boom\n[shard 1/4] splitter\n"
	if got := buf.String(); got != want {
		t.Fatalf("worker stderr %q, want %q", got, want)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: exec.Cmd writes stderr from
// its own goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

// Write implements io.Writer.
func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

// String returns the accumulated bytes.
func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
