package dist

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// validCheckpointBytes marshals a well-formed checkpoint for seeding tests.
func validCheckpointBytes(t testing.TB) []byte {
	t.Helper()
	data, err := json.Marshal(Checkpoint{
		V:         checkpointVersion,
		Hash:      HashSpec([]byte(`{"job":"echo"}`)),
		Seed:      7,
		Policy:    "adaptive rel=0.05",
		NextTrial: 12,
		MaxTrials: 40,
		Waves:     3,
		State:     json.RawMessage(`{"count":12,"seq":[]}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestLoadCheckpointRejectsCorruptFiles pins the hardening contract: a
// truncated or corrupt checkpoint file produces a clean, descriptive error
// pointing at the file — never a panic, and never a silent fresh start
// that would overwrite the evidence.
func TestLoadCheckpointRejectsCorruptFiles(t *testing.T) {
	good := validCheckpointBytes(t)
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"whitespace", []byte("  \n\t")},
		{"truncated", good[:len(good)/2]},
		{"not-json", []byte("%% not a checkpoint %%")},
		{"wrong-shape", []byte(`[1,2,3]`)},
		{"wrong-version", []byte(`{"v":99,"hash":"x","max_trials":10,"state":{}}`)},
		{"old-version-v1", []byte(`{"v":1,"hash":"x","seed":7,"next_trial":12,"max_trials":40,"waves":3,"state":{"count":12}}`)},
		{"old-version-v2", []byte(`{"v":2,"hash":"x","seed":7,"next_trial":12,"max_trials":40,"waves":3,"state":{"count":12}}`)},
		{"negative-resume", []byte(`{"v":3,"hash":"x","next_trial":-3,"max_trials":10,"state":{}}`)},
		{"resume-past-cap", []byte(`{"v":3,"hash":"x","next_trial":11,"max_trials":10,"state":{}}`)},
		{"zero-cap", []byte(`{"v":3,"hash":"x","max_trials":0,"state":{}}`)},
		{"negative-waves", []byte(`{"v":3,"hash":"x","max_trials":10,"waves":-1,"state":{}}`)},
		{"trials-no-waves", []byte(`{"v":3,"hash":"x","next_trial":4,"max_trials":10,"state":{}}`)},
		{"missing-state", []byte(`{"v":3,"hash":"x","max_trials":10}`)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "ckpt")
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			_, ok, err := loadCheckpoint(path, "x", 0, 10, "")
			if err == nil {
				t.Fatalf("corrupt checkpoint accepted (ok=%v)", ok)
			}
			if !strings.Contains(err.Error(), path) {
				t.Fatalf("error %q does not name the file", err)
			}
			if tc.name == "old-version-v1" && !strings.Contains(err.Error(), "pre-128-bit-clock") {
				t.Fatalf("old-version error %q does not explain the version gap", err)
			}
			if tc.name == "old-version-v2" && !strings.Contains(err.Error(), "pre-variant-engine") {
				t.Fatalf("old-version error %q does not explain the version gap", err)
			}
		})
	}
}

// TestRunRefusesCorruptCheckpoint checks the behavior end to end: a run
// pointed at a truncated checkpoint fails up front instead of silently
// restarting from trial zero.
func TestRunRefusesCorruptCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	good := validCheckpointBytes(t)
	if err := os.WriteFile(path, good[:len(good)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	st := &foldState{}
	_, err := Run(Options{
		Shards: 1, MaxTrials: 40, Wave: 4, Seed: 7, Spec: []byte(`{"job":"echo"}`),
		Launcher:       &PipeLauncher{Build: echoBuild},
		CheckpointPath: path,
		Policy:         "adaptive rel=0.05",
	}, st.sink, nil, st)
	if err == nil || !strings.Contains(err.Error(), "delete it to start over") {
		t.Fatalf("expected a corrupt-checkpoint error, got %v", err)
	}
	if st.Count != 0 {
		t.Fatalf("folded %d trials against a corrupt checkpoint", st.Count)
	}
}

// FuzzFrame drives the JSONL wire decoder with arbitrary bytes — the exact
// surface a remote transport exposes to line noise, truncation, and
// garbage. It must never panic, every accepted frame must carry the current
// protocol version and a known message type, and a version mismatch must
// keep the rebuild guidance the cmds' error paths point users at.
func FuzzFrame(f *testing.F) {
	marshal := func(m Msg) []byte {
		data, err := json.Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		return append(data, '\n')
	}
	f.Add(marshal(Msg{V: ProtocolVersion, Type: TypeJob, Shard: 0, Shards: 2, Seed: 7, Hash: "h", Spec: []byte(`{}`)}))
	f.Add(marshal(Msg{V: ProtocolVersion, Type: TypeWave, Lo: 0, Hi: 4, Indices: []int{0, 2}}))
	f.Add(marshal(Msg{V: ProtocolVersion, Type: TypeResult, Trial: 3, Data: []byte(`{"x":1}`)}))
	f.Add(marshal(Msg{V: ProtocolVersion, Type: TypeWaveDone, Lo: 0, Hi: 4, Indices: []int{0, 2}}))
	f.Add(marshal(Msg{V: 1, Type: TypeResult, Trial: 3}))
	f.Add(marshal(Msg{V: 2, Type: TypeWaveDone, Lo: 0, Hi: 4}))
	f.Add([]byte("{\"v\":3}\n{\"v\":3}\n"))
	f.Add([]byte("not json\n"))
	f.Add([]byte("{\"v\":1e999}\n"))
	f.Add([]byte("{}"))
	f.Add([]byte("\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := newMsgReader(bytes.NewReader(data))
		for {
			m, err := dec.next()
			if err != nil {
				if errors.Is(err, errProtocolVersion) && !strings.Contains(err.Error(), "rebuild") {
					t.Fatalf("version mismatch error %q lost the rebuild guidance", err)
				}
				return // any error ends the stream, matching the reader pump
			}
			if m.V != ProtocolVersion {
				t.Fatalf("decoder accepted frame with version %d", m.V)
			}
			switch m.Type {
			case TypeJob, TypeWave, TypeHalt, TypeHello, TypeResult, TypeWaveDone, TypeError:
			default:
				t.Fatalf("decoder accepted frame with unknown type %q", m.Type)
			}
		}
	})
}

// FuzzCheckpoint drives checkpoint parsing with arbitrary bytes: it must
// never panic, and anything it accepts must satisfy the structural
// invariants the coordinator relies on — and round-trip through
// loadCheckpoint identically.
func FuzzCheckpoint(f *testing.F) {
	good := validCheckpointBytes(f)
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte(`{"v":2,"hash":"x","max_trials":10,"state":{}}`))
	f.Add([]byte(`{"v":1,"hash":"x","seed":7,"next_trial":12,"max_trials":40,"waves":3,"state":{"count":12}}`))
	f.Add([]byte(`{"v":2,"next_trial":-1}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Add([]byte(`{"v":1e999}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := parseCheckpoint(data)
		if err != nil {
			return
		}
		if cp.V != checkpointVersion || cp.MaxTrials < 1 ||
			cp.NextTrial < 0 || cp.NextTrial > cp.MaxTrials ||
			cp.Waves < 0 || len(cp.State) == 0 {
			t.Fatalf("parseCheckpoint accepted inconsistent checkpoint %+v", cp)
		}
		path := filepath.Join(t.TempDir(), "ckpt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, ok, err := loadCheckpoint(path, cp.Hash, cp.Seed, cp.MaxTrials, cp.Policy)
		if err != nil || !ok {
			t.Fatalf("loadCheckpoint rejected bytes parseCheckpoint accepted: ok=%v err=%v", ok, err)
		}
		if got.NextTrial != cp.NextTrial || got.Done != cp.Done {
			t.Fatalf("loadCheckpoint round trip diverged: %+v vs %+v", got, cp)
		}
	})
}
