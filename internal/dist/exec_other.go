//go:build !linux

package dist

import "os/exec"

// setWorkerSysProcAttr is a no-op where the process-group and parent-death
// plumbing of exec_linux.go is unavailable; orphan-proofing there relies on
// workers exiting at the stdin EOF a dead coordinator produces.
func setWorkerSysProcAttr(cmd *exec.Cmd) {}

// killWorker forcibly terminates a worker process (just the process: group
// kills need the Setpgid support of exec_linux.go).
func killWorker(cmd *exec.Cmd) {
	if cmd.Process != nil {
		_ = cmd.Process.Kill()
	}
}
