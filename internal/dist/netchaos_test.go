package dist

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// The network-chaos suite: the FaultLauncher's network-shaped faults —
// partitions, frames lost in transit, slow links, reconnect storms —
// against the real coordinator event loop, each required to end in a fold
// byte-identical to a fault-free run (or, for the slow link, to end without
// any recovery at all). The CI network-chaos job runs this file under
// -race.

// TestNetChaosPartitionSelfHeals partitions one shard mid-wave: both
// directions go silent without an error, so only the liveness deadline can
// diagnose it. The coordinator must declare the worker hung, relaunch it,
// and still fold byte-identically.
func TestNetChaosPartitionSelfHeals(t *testing.T) {
	opts := chaosOpts(3, &FaultLauncher{
		Inner:    &PipeLauncher{Build: echoBuild},
		Schedule: []Fault{{Shard: 1, Kind: FaultPartition, After: 3}},
	})
	ref := chaosReference(t, opts)
	st := &foldState{}
	res, err := Run(opts, st.sink, nil, st)
	if err != nil {
		t.Fatalf("partitioned run: %v", err)
	}
	if res.Relaunches == 0 {
		t.Fatalf("res = %+v, want the partition diagnosed and the worker relaunched", res)
	}
	if res.Trials != opts.MaxTrials || !reflect.DeepEqual(st.Seq, ref.Seq) {
		t.Fatal("partitioned fold diverged from fault-free run")
	}
}

// TestNetChaosDroppedFrameCaughtByBarrier drops one result frame in transit
// while the rest of the stream — including the wavedone barrier — flows
// normally. Without the barrier's echoed-index integrity check the run
// would hang until the liveness deadline at best; with it the coordinator
// detects the loss at the barrier, recovers the worker, and folds
// byte-identically.
func TestNetChaosDroppedFrameCaughtByBarrier(t *testing.T) {
	opts := chaosOpts(2, &FaultLauncher{
		Inner:    &PipeLauncher{Build: echoBuild},
		Schedule: []Fault{{Shard: 0, Kind: FaultDropFrames, After: 2}},
	})
	// A generous deadline proves the barrier check, not the liveness
	// timeout, is what catches the loss.
	opts.WorkerTimeout = time.Minute
	ref := chaosReference(t, opts)
	st := &foldState{}
	res, err := Run(opts, st.sink, nil, st)
	if err != nil {
		t.Fatalf("lossy run: %v", err)
	}
	if res.Relaunches == 0 || res.Requeued == 0 {
		t.Fatalf("res = %+v, want the dropped frame detected and requeued", res)
	}
	if res.Trials != opts.MaxTrials || !reflect.DeepEqual(st.Seq, ref.Seq) {
		t.Fatal("lossy fold diverged from fault-free run")
	}
}

// TestNetChaosDroppedFrameNoRelaunchAborts is the barrier check's fail-fast
// companion: with recovery disabled the lost frame aborts the run with a
// diagnosis naming the trial, instead of waiting forever on a result that
// can never arrive.
func TestNetChaosDroppedFrameNoRelaunchAborts(t *testing.T) {
	opts := chaosOpts(2, &FaultLauncher{
		Inner:    &PipeLauncher{Build: echoBuild},
		Schedule: []Fault{{Shard: 0, Kind: FaultDropFrames, After: 1}},
	})
	opts.WorkerTimeout = time.Minute
	opts.MaxRelaunches = NoRelaunch
	begin := time.Now()
	_, err := Run(opts, (&foldState{}).sink, nil, &foldState{})
	if err == nil || !strings.Contains(err.Error(), "lost in transit") {
		t.Fatalf("expected a lost-frame diagnosis, got %v", err)
	}
	if elapsed := time.Since(begin); elapsed > 10*time.Second {
		t.Fatalf("loss detection took %v, want prompt detection at the wave barrier", elapsed)
	}
}

// TestNetChaosSlowLinkTolerated degrades one shard's link with a per-line
// delay below the liveness deadline. A correct coordinator must NOT react:
// the run completes with zero relaunches and zero requeues, byte-identical
// to a fast-link run — slow is not dead.
func TestNetChaosSlowLinkTolerated(t *testing.T) {
	opts := chaosOpts(2, &FaultLauncher{
		Inner:    &PipeLauncher{Build: echoBuild},
		Schedule: []Fault{{Shard: 1, Kind: FaultSlowLink, After: 0, Delay: 2 * time.Millisecond}},
	})
	opts.MaxTrials = 24
	ref := chaosReference(t, opts)
	st := &foldState{}
	res, err := Run(opts, st.sink, nil, st)
	if err != nil {
		t.Fatalf("slow-link run: %v", err)
	}
	if res.Relaunches != 0 || res.Requeued != 0 {
		t.Fatalf("res = %+v: the coordinator treated a slow link as a failure", res)
	}
	if res.Trials != opts.MaxTrials || !reflect.DeepEqual(st.Seq, ref.Seq) {
		t.Fatal("slow-link fold diverged from fault-free run")
	}
}

// TestNetChaosReconnectStorm kills a shard's first three incarnations the
// instant they connect; the fourth connects cleanly. The run must climb the
// backoff ladder and self-heal within the default relaunch budget.
func TestNetChaosReconnectStorm(t *testing.T) {
	opts := chaosOpts(2, &FaultLauncher{
		Inner:    &PipeLauncher{Build: echoBuild},
		Schedule: ReconnectStorm(0, 3),
	})
	ref := chaosReference(t, opts)
	st := &foldState{}
	res, err := Run(opts, st.sink, nil, st)
	if err != nil {
		t.Fatalf("storm run: %v", err)
	}
	if res.Relaunches != 3 {
		t.Fatalf("res = %+v, want exactly 3 relaunches (one per storm death)", res)
	}
	if res.Trials != opts.MaxTrials || !reflect.DeepEqual(st.Seq, ref.Seq) {
		t.Fatal("storm fold diverged from fault-free run")
	}
}

// TestNetChaosScheduleDeterministicAndComplete pins both chaos-plan
// generators' seed determinism (the satellite contract: same seed → same
// fault plan) and the network schedule's shape: every shard faulted once,
// all four network kinds present, slow links carrying a positive Delay.
func TestNetChaosScheduleDeterministicAndComplete(t *testing.T) {
	for seed := uint64(1); seed < 16; seed++ {
		if !reflect.DeepEqual(ChaosSchedule(seed, 4), ChaosSchedule(seed, 4)) {
			t.Fatalf("seed %d: ChaosSchedule is not deterministic", seed)
		}
		if !reflect.DeepEqual(NetworkChaosSchedule(seed, 4), NetworkChaosSchedule(seed, 4)) {
			t.Fatalf("seed %d: NetworkChaosSchedule is not deterministic", seed)
		}
	}
	if reflect.DeepEqual(NetworkChaosSchedule(1, 4), NetworkChaosSchedule(2, 4)) {
		t.Fatal("different seeds produced the same network fault plan")
	}
	plan := NetworkChaosSchedule(5, 4)
	if len(plan) != 4 {
		t.Fatalf("plan has %d faults, want 4", len(plan))
	}
	seenShard := map[int]bool{}
	seenKind := map[FaultKind]bool{}
	for _, f := range plan {
		seenShard[f.Shard] = true
		seenKind[f.Kind] = true
		if f.Launch != 0 {
			t.Fatalf("fault %+v targets a relaunch, want first incarnations only", f)
		}
		if f.Kind == FaultSlowLink && f.Delay <= 0 {
			t.Fatalf("slow-link fault %+v has no delay", f)
		}
	}
	if len(seenShard) != 4 || len(seenKind) != 4 {
		t.Fatalf("plan %+v does not fault each shard once with all network kinds", plan)
	}
}

// TestNetChaosScheduleSelfHeals runs the full network chaos plan — one
// network fault per shard — and requires self-healing with a byte-identical
// fold. Slow-link shards must heal by tolerance, the rest by recovery.
func TestNetChaosScheduleSelfHeals(t *testing.T) {
	opts := chaosOpts(4, &FaultLauncher{
		Inner:    &PipeLauncher{Build: echoBuild},
		Schedule: NetworkChaosSchedule(5, 4),
	})
	ref := chaosReference(t, opts)
	st := &foldState{}
	res, err := Run(opts, st.sink, nil, st)
	if err != nil {
		t.Fatalf("network chaos run: %v", err)
	}
	if res.Relaunches == 0 {
		t.Fatalf("res = %+v, want recoveries from the non-tolerable faults", res)
	}
	if res.Trials != opts.MaxTrials || !reflect.DeepEqual(st.Seq, ref.Seq) {
		t.Fatal("network chaos fold diverged from fault-free run")
	}
}

// TestFaultKindStrings keeps the chaos diagnostics readable: every kind
// names itself.
func TestFaultKindStrings(t *testing.T) {
	want := map[FaultKind]string{
		FaultCrashBeforeWave: "crash-before-wave",
		FaultCrashMidWave:    "crash-mid-wave",
		FaultHang:            "hang",
		FaultGarbage:         "garbage-frame",
		FaultPartition:       "partition",
		FaultDropFrames:      "drop-frames",
		FaultSlowLink:        "slow-link",
		FaultCrashOnConnect:  "crash-on-connect",
	}
	for k, name := range want {
		if k.String() != name {
			t.Fatalf("FaultKind(%d).String() = %q, want %q", int(k), k.String(), name)
		}
	}
	if FaultKind(99).String() != "fault-kind-99" {
		t.Fatalf("unknown kind string = %q", FaultKind(99).String())
	}
}
