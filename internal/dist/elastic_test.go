package dist

import (
	"errors"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// The elastic-membership suite: workers joining late, leaving mid-run, and
// getting partitioned, with the fold required to stay byte-identical to the
// undisturbed fixed-membership run — the ISSUE 10 acceptance bar. The CI
// network-chaos job runs this file under -race.

// leavingLauncher models a member that leaves the fleet for good: its first
// Launch yields a worker that crashes mid-wave, and every relaunch attempt
// fails outright, so the coordinator burns the member's relaunch budget and
// redistributes its outstanding work — exactly the lost-shard path.
type leavingLauncher struct {
	inner Launcher

	mu       sync.Mutex
	launched bool
}

// Launch implements Launcher.
func (l *leavingLauncher) Launch(shard, shards int) (*Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.launched {
		return nil, errors.New("member left the fleet")
	}
	l.launched = true
	c, err := l.inner.Launch(shard, shards)
	if err != nil {
		return c, err
	}
	return injectFault(c, Fault{Kind: FaultCrashMidWave, After: 2}), nil
}

// TestElasticDispatchByteIdentical pins the base property: explicit-index
// elastic dispatch folds byte-identically to the modular fixed-membership
// run at every member count, with nothing counted as a requeue.
func TestElasticDispatchByteIdentical(t *testing.T) {
	opts := chaosOpts(1, &PipeLauncher{Build: echoBuild})
	ref := chaosReference(t, opts)
	for _, members := range []int{1, 2, 4} {
		e := chaosOpts(members, &PipeLauncher{Build: echoBuild})
		e.Elastic = true
		st := &foldState{}
		res, err := Run(e, st.sink, nil, st)
		if err != nil {
			t.Fatalf("members=%d: %v", members, err)
		}
		if res.Requeued != 0 || res.Relaunches != 0 || res.Joined != 0 {
			t.Fatalf("members=%d: res = %+v, want a clean elastic run", members, res)
		}
		if res.Trials != e.MaxTrials || !reflect.DeepEqual(st.Seq, ref.Seq) {
			t.Fatalf("members=%d: elastic fold diverged from fixed run", members)
		}
	}
}

// TestElasticJoinLeavePartitionByteIdentical is the acceptance scenario at
// the dist layer: a fleet of two members gains two late joiners (admitted
// mid-run through Options.Join), one joiner leaves for good mid-run, and
// one of the original members is partitioned mid-wave. The run must
// self-heal and fold byte-identically to the undisturbed single-member run.
func TestElasticJoinLeavePartitionByteIdentical(t *testing.T) {
	join := make(chan Launcher, 2)
	join <- &PipeLauncher{Build: echoBuild}                          // joins late, stays
	join <- &leavingLauncher{inner: &PipeLauncher{Build: echoBuild}} // joins late, leaves mid-run
	opts := chaosOpts(2, &FaultLauncher{
		Inner:    &PipeLauncher{Build: echoBuild},
		Schedule: []Fault{{Shard: 1, Kind: FaultPartition, After: 3}}, // original member, partitioned mid-wave
	})
	opts.MaxTrials = 64
	ref := chaosReference(t, opts) // before Join is attached, so the reference cannot drain it
	opts.Join = join

	st := &foldState{}
	res, err := Run(opts, st.sink, nil, st)
	if err != nil {
		t.Fatalf("elastic fleet run: %v", err)
	}
	if res.Joined != 2 {
		t.Fatalf("res = %+v, want both joiners admitted", res)
	}
	if res.Relaunches == 0 || res.Requeued == 0 {
		t.Fatalf("res = %+v, want the partition and the departure recovered", res)
	}
	if res.Trials != opts.MaxTrials {
		t.Fatalf("folded %d trials, want %d", res.Trials, opts.MaxTrials)
	}
	if !reflect.DeepEqual(st.Seq, ref.Seq) {
		t.Fatal("elastic fleet fold diverged from the undisturbed run")
	}
}

// TestElasticKillResumeByteIdentical is the kill/resume variant: an elastic
// run with a late joiner and a mid-run departure is cut off after a few
// waves (MaxWaves + checkpoint — the graceful form of a kill), then resumed
// under a completely different membership. The resumed fold must be
// byte-identical to an undisturbed uninterrupted run.
func TestElasticKillResumeByteIdentical(t *testing.T) {
	opts := chaosOpts(2, &PipeLauncher{Build: echoBuild})
	opts.MaxTrials = 64
	ref := chaosReference(t, opts)
	cp := filepath.Join(t.TempDir(), "elastic.ckpt")

	join := make(chan Launcher, 1)
	join <- &leavingLauncher{inner: &PipeLauncher{Build: echoBuild}}
	first := opts
	first.Join = join
	first.CheckpointPath = cp
	first.MaxWaves = 6
	st := &foldState{}
	res, err := Run(first, st.sink, nil, st)
	if err != nil {
		t.Fatalf("first invocation: %v", err)
	}
	if !res.Interrupted || res.Joined != 1 {
		t.Fatalf("first invocation res = %+v, want an interrupted run that admitted the joiner", res)
	}

	resume := opts
	resume.Shards = 3
	resume.Elastic = true
	resume.CheckpointPath = cp
	st2 := &foldState{}
	res2, err := Run(resume, st2.sink, nil, st2)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if res2.ResumedFrom == 0 || res2.Trials != opts.MaxTrials {
		t.Fatalf("resume res = %+v, want a resume completing %d trials", res2, opts.MaxTrials)
	}
	if !reflect.DeepEqual(st2.Seq, ref.Seq) {
		t.Fatal("resumed elastic fold diverged from the undisturbed run")
	}
}

// TestElasticJoinAfterStart admits a joiner only once the run is already in
// flight — the launcher is offered (from the fold sink, a point where the
// run is provably mid-flight) only after the eighth trial has folded — so
// the coordinator must pick it up from the Join case of its event loop, not
// just at startup.
func TestElasticJoinAfterStart(t *testing.T) {
	join := make(chan Launcher, 1)
	opts := chaosOpts(1, &PipeLauncher{Build: echoBuild})
	opts.MaxTrials = 64
	ref := chaosReference(t, opts) // before Join is attached, so the reference cannot drain it
	opts.Join = join
	st := &foldState{}
	sent := false
	sink := func(i int, data []byte) error {
		if i == 8 && !sent {
			sent = true
			join <- &PipeLauncher{Build: echoBuild}
		}
		return st.sink(i, data)
	}
	res, err := Run(opts, sink, nil, st)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Joined != 1 {
		t.Fatalf("res = %+v, want the mid-run joiner admitted", res)
	}
	if res.Trials != opts.MaxTrials || !reflect.DeepEqual(st.Seq, ref.Seq) {
		t.Fatal("join-after-start fold diverged")
	}
}
