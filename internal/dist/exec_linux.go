//go:build linux

package dist

import (
	"os/exec"
	"syscall"
)

// setWorkerSysProcAttr hardens a worker process against coordinator death:
// the worker gets its own process group, so one signal can take down the
// worker and everything it spawned, and the kernel delivers SIGKILL to the
// worker the moment the thread that spawned it dies (Pdeathsig) — so even a
// SIGKILL'd coordinator, which never gets to run cleanup, leaves no orphan
// burning a billion-agent trial. Workers that block on stdin still exit on
// the EOF a dead coordinator's closed pipes produce; this is the backstop
// for workers wedged somewhere that never reads.
func setWorkerSysProcAttr(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true, Pdeathsig: syscall.SIGKILL}
}

// killWorker forcibly terminates a worker and its whole process group (the
// group Setpgid created), falling back to the process alone if the group is
// already gone.
func killWorker(cmd *exec.Cmd) {
	if cmd.Process == nil {
		return
	}
	if err := syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL); err != nil {
		_ = cmd.Process.Kill()
	}
}
