package dist

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// This file is the multi-host transport: RemoteLauncher starts workers
// through an arbitrary command template (ssh, a container runtime, a plain
// shell for loopback testing) and wraps the resulting byte streams with the
// defenses a real network needs that same-host pipes do not: a handshake
// deadline (a worker that never says anything), a frame deadline (a stream
// that stalls mid-line), a frame size cap (a corrupted stream that never
// produces a newline), and a write deadline (a command write that blocks
// forever on a wedged link). Every violation kills the transport process,
// which surfaces to the coordinator as an ordinary worker death — recovered
// by the same relaunch/requeue machinery as a local crash, with the same
// byte-identical fold.

// Default deadlines and caps for RemoteLauncher fields left zero.
const (
	// DefaultHandshakeTimeout bounds launch-to-first-byte: a worker (or the
	// transport under it) that produces nothing for this long is declared
	// unreachable.
	DefaultHandshakeTimeout = 45 * time.Second
	// DefaultFrameTimeout bounds a started protocol frame: once a line's
	// first byte has arrived, the rest must follow within this window. Idle
	// gaps between frames are not limited (that is WorkerTimeout's job —
	// only the coordinator knows whether a silent worker owes anything).
	DefaultFrameTimeout = 2 * time.Minute
	// DefaultWriteTimeout bounds one command write to the transport.
	DefaultWriteTimeout = time.Minute
	// DefaultMaxFrame caps one protocol frame's size in bytes: a corrupted
	// stream that never yields a newline is cut off instead of buffering
	// without bound.
	DefaultMaxFrame = 64 << 20
)

// RemoteLauncher starts shard workers through a pluggable command template —
// ssh first, but any exec wrapper (container runtime, scheduler submit
// command, /bin/sh for loopback tests) works the same way — and guards each
// connection with handshake, frame, and write deadlines plus a frame size
// cap. Deadline violations kill the transport process and recover through
// the coordinator's ordinary worker-death path.
//
// Template placeholders are expanded in every Command element:
//
//	{host}    the worker's host (Hosts[shard mod len(Hosts)])
//	{shard}   the shard index
//	{shards}  the member count
//	{cores}   CoreShare(CoreBudget, shard, shards)
//
// A worker launched remotely must be the same build as the coordinator: the
// protocol version gate rejects cross-version fleets and the spec-hash
// handshake rejects mis-addressed ones.
type RemoteLauncher struct {
	// Hosts are the remote endpoints; member i runs on Hosts[i mod
	// len(Hosts)], so a fleet larger than the host list wraps around.
	// Empty means "localhost" (loopback templates that ignore {host}).
	Hosts []string
	// Command is the transport command template; see the placeholder table
	// above. SSHCommand and LoopbackCommand build common shapes.
	Command []string
	// CoreBudget, when positive, is the total core budget the {cores}
	// placeholder partitions across members (see CoreShare).
	CoreBudget int
	// HandshakeTimeout bounds launch-to-first-byte. Zero means
	// DefaultHandshakeTimeout; negative disables the deadline.
	HandshakeTimeout time.Duration
	// FrameTimeout bounds a started (partially received) protocol frame.
	// Zero means DefaultFrameTimeout; negative disables the deadline.
	FrameTimeout time.Duration
	// WriteTimeout bounds each command write. Zero means
	// DefaultWriteTimeout; negative disables the deadline.
	WriteTimeout time.Duration
	// MaxFrame caps one received frame's bytes. Zero means DefaultMaxFrame;
	// negative disables the cap.
	MaxFrame int
	// Stderr receives the workers' stderr, each line prefixed with the
	// worker's "[shard i/S host] " identity; nil means this process's
	// stderr.
	Stderr io.Writer
}

// host returns the endpoint a member runs on.
func (l *RemoteLauncher) host(shard int) string {
	if len(l.Hosts) == 0 {
		return "localhost"
	}
	return l.Hosts[shard%len(l.Hosts)]
}

// expand instantiates the command template for one member.
func (l *RemoteLauncher) expand(shard, shards int) []string {
	repl := strings.NewReplacer(
		"{host}", l.host(shard),
		"{shard}", strconv.Itoa(shard),
		"{shards}", strconv.Itoa(shards),
		"{cores}", strconv.Itoa(CoreShare(l.CoreBudget, shard, shards)),
	)
	out := make([]string, len(l.Command))
	for i, a := range l.Command {
		out[i] = repl.Replace(a)
	}
	return out
}

// effective applies a field's zero-means-default, negative-means-disabled
// convention.
func effective(d, def time.Duration) time.Duration {
	if d == 0 {
		return def
	}
	if d < 0 {
		return 0
	}
	return d
}

// Launch implements Launcher by starting one transport process from the
// expanded template and arming the connection guards.
func (l *RemoteLauncher) Launch(shard, shards int) (*Conn, error) {
	if len(l.Command) == 0 {
		return nil, fmt.Errorf("dist: RemoteLauncher needs a Command template")
	}
	argv := l.expand(shard, shards)
	cmd := exec.Command(argv[0], argv[1:]...)
	setWorkerSysProcAttr(cmd)
	stderr := l.Stderr
	if stderr == nil {
		stderr = os.Stderr
	}
	cmd.Stderr = &prefixWriter{w: stderr, prefix: []byte(fmt.Sprintf("[shard %s %s] ", ShardArg(shard, shards), l.host(shard)))}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: start shard %d transport %q: %w", shard, argv[0], err)
	}
	kill := func() { killWorker(cmd) }
	maxFrame := l.MaxFrame
	if maxFrame == 0 {
		maxFrame = DefaultMaxFrame
	}
	g := &frameGuard{
		src:       stdout,
		kill:      kill,
		handshake: effective(l.HandshakeTimeout, DefaultHandshakeTimeout),
		frame:     effective(l.FrameTimeout, DefaultFrameTimeout),
		maxFrame:  maxFrame,
	}
	pr, pw := io.Pipe()
	g.pw = pw
	go g.run()
	return &Conn{
		W:    &deadlineWriter{w: stdin, d: effective(l.WriteTimeout, DefaultWriteTimeout), kill: kill},
		R:    pr,
		Wait: cmd.Wait,
		Kill: kill,
	}, nil
}

// deadlineWriter bounds each Write's duration. Pipe writes to a process
// cannot be aborted directly, so on expiry the transport process is killed,
// which fails the write — the coordinator's sender then reports an ordinary
// command-side death.
type deadlineWriter struct {
	w    io.WriteCloser
	d    time.Duration
	kill func()

	expired atomic.Bool
}

// Write implements io.Writer with the deadline armed around the underlying
// write.
func (dw *deadlineWriter) Write(p []byte) (int, error) {
	if dw.d <= 0 {
		return dw.w.Write(p)
	}
	t := time.AfterFunc(dw.d, func() {
		dw.expired.Store(true)
		dw.kill()
	})
	n, err := dw.w.Write(p)
	t.Stop()
	if dw.expired.Load() && err == nil {
		err = fmt.Errorf("dist: command write stalled beyond %v; transport killed", dw.d)
	}
	return n, err
}

// Close implements io.Closer.
func (dw *deadlineWriter) Close() error { return dw.w.Close() }

// frameGuard relays the worker's result stream while enforcing the
// handshake deadline, the mid-frame deadline, and the frame size cap. It
// kills the transport process on a violation: the blocked read then fails
// (the pipe collapses with the process) and the coordinator sees a worker
// death with a descriptive cause.
type frameGuard struct {
	src       io.ReadCloser
	pw        *io.PipeWriter
	kill      func()
	handshake time.Duration
	frame     time.Duration
	maxFrame  int

	reason atomic.Value // string: why the guard killed the transport
}

// expire records the violation and kills the transport, once.
func (g *frameGuard) expire(reason string) {
	if g.reason.CompareAndSwap(nil, reason) {
		g.kill()
	}
}

// run relays bytes until EOF or a violation. Frame accounting is by bytes
// since the last newline: zero between frames (no deadline — idleness is
// the coordinator's liveness domain), positive mid-frame (deadline armed).
func (g *frameGuard) run() {
	var timer *time.Timer
	stop := func() {
		if timer != nil {
			timer.Stop()
			timer = nil
		}
	}
	arm := func(d time.Duration, reason string) {
		stop()
		if d > 0 {
			timer = time.AfterFunc(d, func() { g.expire(reason) })
		}
	}
	arm(g.handshake, fmt.Sprintf("no handshake byte within %v", g.handshake))
	buf := make([]byte, 32*1024)
	inFrame := 0
	for {
		n, err := g.src.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			if i := bytes.LastIndexByte(chunk, '\n'); i >= 0 {
				inFrame = n - i - 1
			} else {
				inFrame += n
			}
			if g.maxFrame > 0 && inFrame > g.maxFrame {
				g.expire(fmt.Sprintf("frame exceeds %d bytes without a newline", g.maxFrame))
			}
			if inFrame > 0 {
				arm(g.frame, fmt.Sprintf("frame stalled %v mid-line", g.frame))
			} else {
				stop()
			}
			if _, werr := g.pw.Write(chunk); werr != nil {
				// The coordinator closed its end (teardown); stop the
				// transport so nothing leaks.
				stop()
				g.kill()
				return
			}
		}
		if err != nil {
			stop()
			if reason, ok := g.reason.Load().(string); ok {
				err = fmt.Errorf("dist: transport guard: %s", reason)
			} else if err == io.EOF {
				g.pw.Close()
				return
			}
			g.pw.CloseWithError(err)
			return
		}
	}
}

// SSHCommand returns a RemoteLauncher command template that runs workerCmd
// on {host} over ssh in batch mode (no interactive prompts — a fleet launch
// must fail, not hang, on missing credentials). workerCmd is a shell
// command line evaluated on the remote host and may use the template
// placeholders, e.g.
//
//	SSHCommand("/opt/usd/sweep -shard-worker {shard}/{shards}")
//
// Extra ssh options (ports, identities, jump hosts) go in sshArgs.
func SSHCommand(workerCmd string, sshArgs ...string) []string {
	args := append([]string{"ssh", "-o", "BatchMode=yes"}, sshArgs...)
	return append(args, "{host}", workerCmd)
}

// LoopbackCommand returns a RemoteLauncher command template that runs
// workerCmd through /bin/sh on this machine: the whole remote transport
// path — template expansion, process transport, deadlines, frame guard —
// without needing an sshd. Tests and the cmd/bench remote_fleet section use
// it as the SSH stand-in.
func LoopbackCommand(workerCmd string) []string {
	return []string{"/bin/sh", "-c", workerCmd}
}

// SplitHostList parses the comma-separated host-list form the cmds' -hosts
// flag carries, trimming whitespace and dropping empty elements.
func SplitHostList(s string) []string {
	var hosts []string
	for _, h := range strings.Split(s, ",") {
		if h = strings.TrimSpace(h); h != "" {
			hosts = append(hosts, h)
		}
	}
	return hosts
}

// SSHFleetLauncher returns a RemoteLauncher that starts workers on hosts
// over ssh running workerCmd, the fleet analogue of SelfExecLauncher: an
// empty workerCmd means this binary's path in hidden -shard-worker mode
// with extraArgs appended — which requires the binary to exist at the same
// path on every host (a shared filesystem, or an identical deploy).
func SSHFleetLauncher(hosts []string, workerCmd string, extraArgs ...string) (*RemoteLauncher, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("dist: SSHFleetLauncher needs at least one host")
	}
	if workerCmd == "" {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("dist: resolve worker executable: %w", err)
		}
		workerCmd = exe + " -shard-worker {shard}/{shards}"
		for _, a := range extraArgs {
			workerCmd += " " + a
		}
	}
	return &RemoteLauncher{Hosts: hosts, Command: SSHCommand(workerCmd)}, nil
}
