package dist

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
)

// InterruptOnSignal installs a graceful-shutdown handler for a coordinator
// process and returns a channel suitable for Options.Interrupt: it closes on
// the first SIGINT or SIGTERM, after which the coordinator finishes the wave
// in flight, folds it, writes the checkpoint, and returns with
// Result.Interrupted set — rerunning the same command resumes from there. A
// second signal skips the grace period and exits immediately with the
// conventional interrupted status (128+SIGINT), for runs the user decides
// not to wait out. log receives a one-line notice per signal (nil means
// os.Stderr).
func InterruptOnSignal(log io.Writer) <-chan struct{} {
	if log == nil {
		log = os.Stderr
	}
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		s := <-sigs
		fmt.Fprintf(log, "caught %v: finishing the wave in flight and writing the checkpoint (repeat to exit now)\n", s)
		close(done)
		<-sigs
		fmt.Fprintln(log, "second signal: exiting without waiting for the wave")
		os.Exit(130)
	}()
	return done
}
