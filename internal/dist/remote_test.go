package dist

import (
	"io"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"
)

// The remote-transport suite: template expansion, the loopback end-to-end
// run (the full RemoteLauncher path without an sshd), and each connection
// guard — handshake deadline, mid-frame deadline, frame size cap, write
// deadline — in isolation.

// TestRemoteLauncherTemplateExpansion pins the placeholder contract: every
// Command element is expanded, hosts wrap modulo the host list, and an
// empty host list means localhost.
func TestRemoteLauncherTemplateExpansion(t *testing.T) {
	l := &RemoteLauncher{
		Hosts:      []string{"a", "b"},
		Command:    []string{"ssh", "{host}", "run -shard {shard}/{shards} -cores {cores}"},
		CoreBudget: 8,
	}
	got := l.expand(2, 4)
	want := []string{"ssh", "a", "run -shard 2/4 -cores 2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("expand(2,4) = %q, want %q", got, want)
	}
	if h := l.host(3); h != "b" {
		t.Fatalf("host(3) = %q, want wraparound to %q", h, "b")
	}
	if h := (&RemoteLauncher{}).host(0); h != "localhost" {
		t.Fatalf("empty Hosts host(0) = %q, want localhost", h)
	}
}

// TestRemoteLauncherNeedsCommand checks the launcher fails fast without a
// template.
func TestRemoteLauncherNeedsCommand(t *testing.T) {
	if _, err := (&RemoteLauncher{}).Launch(0, 1); err == nil || !strings.Contains(err.Error(), "Command") {
		t.Fatalf("expected a missing-template error, got %v", err)
	}
}

// TestRemoteLoopbackEndToEnd runs a coordinator against a loopback fleet —
// workers started through the full RemoteLauncher transport path (template
// expansion, /bin/sh transport process, frame guard, write deadline) — and
// requires the fold byte-identical to the in-process run. This is the
// ssh-shaped e2e test CI runs; an sshd-backed fleet differs only in the
// command template.
func TestRemoteLoopbackEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	spec := []byte(`{"job":"echo-loopback"}`)
	opts := Options{Shards: 3, MaxTrials: 21, Wave: 4, Seed: 11, Spec: spec}
	ref, refRes := runEcho(t, opts, nil)

	remote := opts
	remote.Launcher = &RemoteLauncher{
		Command: LoopbackCommand(os.Args[0] + " " + distWorkerFlag + "{shard}/{shards}"),
	}
	st := &foldState{}
	res, err := Run(remote, st.sink, nil, st)
	if err != nil {
		t.Fatalf("loopback fleet run: %v", err)
	}
	if res != refRes {
		t.Fatalf("loopback result %+v, in-process result %+v", res, refRes)
	}
	if !reflect.DeepEqual(st.Seq, ref.Seq) {
		t.Fatal("loopback fleet fold diverged from in-process fold")
	}
}

// TestRemoteHandshakeTimeout points the transport at a command that never
// says anything: the handshake guard must kill it and the run must fail
// promptly with the guard's diagnosis instead of hanging.
func TestRemoteHandshakeTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	opts := Options{
		Shards: 1, MaxTrials: 4, Seed: 1, Spec: []byte(`{}`),
		MaxRelaunches: NoRelaunch,
		Log:           io.Discard,
		Launcher: &RemoteLauncher{
			Command:          []string{"/bin/sh", "-c", "sleep 300"},
			HandshakeTimeout: 50 * time.Millisecond,
		},
	}
	begin := time.Now()
	_, err := Run(opts, (&foldState{}).sink, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "no handshake byte") {
		t.Fatalf("expected a handshake-timeout diagnosis, got %v", err)
	}
	if elapsed := time.Since(begin); elapsed > 10*time.Second {
		t.Fatalf("handshake timeout took %v to surface", elapsed)
	}
}

// guardHarness builds a frameGuard over an in-test source pipe, with kill
// wired the way RemoteLauncher wires it: killing the transport collapses
// the source stream.
func guardHarness(handshake, frame time.Duration, maxFrame int) (src *io.PipeWriter, out *io.PipeReader) {
	srcR, srcW := io.Pipe()
	outR, outW := io.Pipe()
	g := &frameGuard{
		src:       srcR,
		pw:        outW,
		handshake: handshake,
		frame:     frame,
		maxFrame:  maxFrame,
	}
	g.kill = func() { srcR.CloseWithError(io.ErrUnexpectedEOF) }
	go g.run()
	return srcW, outR
}

// TestFrameGuardMidFrameStall starts a frame and then stalls: the guard
// must cut the stream with a mid-line diagnosis. A completed frame followed
// by idleness must NOT trip it — idle gaps belong to the coordinator's
// liveness deadline.
func TestFrameGuardMidFrameStall(t *testing.T) {
	srcW, out := guardHarness(-1, 30*time.Millisecond, 0)
	go srcW.Write([]byte(`{"partial":`)) // a frame starts, never finishes
	buf := make([]byte, 64)
	n, _ := out.Read(buf)
	if n == 0 {
		t.Fatal("guard did not relay the partial frame bytes")
	}
	if _, err := out.Read(buf); err == nil || !strings.Contains(err.Error(), "mid-line") {
		t.Fatalf("expected a mid-frame stall diagnosis, got %v", err)
	}
}

// TestFrameGuardIdleBetweenFramesOK checks the complement: whole frames
// followed by silence pass through untouched, because idleness between
// frames is not a transport fault.
func TestFrameGuardIdleBetweenFramesOK(t *testing.T) {
	srcW, out := guardHarness(-1, 30*time.Millisecond, 0)
	go srcW.Write([]byte("{\"whole\":1}\n"))
	buf := make([]byte, 64)
	n, err := out.Read(buf)
	if err != nil || n == 0 {
		t.Fatalf("relay failed: %d bytes, %v", n, err)
	}
	time.Sleep(90 * time.Millisecond) // three frame deadlines of idleness
	go srcW.Write([]byte("{\"whole\":2}\n"))
	if n, err = out.Read(buf); err != nil || n == 0 {
		t.Fatalf("guard tripped on idle gap between frames: %d bytes, %v", n, err)
	}
}

// TestFrameGuardMaxFrame feeds an unbounded line: the guard must cut the
// stream at the cap instead of buffering a corrupted frame forever.
func TestFrameGuardMaxFrame(t *testing.T) {
	srcW, out := guardHarness(-1, -1, 64)
	go func() {
		junk := make([]byte, 256) // newline-free
		for i := range junk {
			junk[i] = 'x'
		}
		srcW.Write(junk)
	}()
	var err error
	buf := make([]byte, 1024)
	for err == nil {
		_, err = out.Read(buf)
	}
	if !strings.Contains(err.Error(), "exceeds 64 bytes") {
		t.Fatalf("expected a frame-cap diagnosis, got %v", err)
	}
}

// TestFrameGuardHandshakeDeadline checks silence before the first byte is
// its own violation with its own diagnosis.
func TestFrameGuardHandshakeDeadline(t *testing.T) {
	_, out := guardHarness(30*time.Millisecond, -1, 0)
	buf := make([]byte, 64)
	if _, err := out.Read(buf); err == nil || !strings.Contains(err.Error(), "handshake") {
		t.Fatalf("expected a handshake diagnosis, got %v", err)
	}
}

// TestDeadlineWriterKillsStalledWrite blocks a write past its deadline and
// checks the writer fires its kill hook and fails the write.
func TestDeadlineWriterKillsStalledWrite(t *testing.T) {
	pr, pw := io.Pipe() // no reader: writes block until the kill hook fires
	dw := &deadlineWriter{w: pw, d: 20 * time.Millisecond, kill: func() { pr.CloseWithError(io.ErrClosedPipe) }}
	if _, err := dw.Write([]byte("stalls\n")); err == nil {
		t.Fatal("stalled write returned nil error")
	}
	if !dw.expired.Load() {
		t.Fatal("deadline did not fire")
	}
}

// TestSSHCommandShape pins the ssh template: batch mode (fail, not prompt,
// on missing credentials), extra args before the host, the worker command
// last.
func TestSSHCommandShape(t *testing.T) {
	got := SSHCommand("worker -shard {shard}/{shards}", "-p", "2222")
	want := []string{"ssh", "-o", "BatchMode=yes", "-p", "2222", "{host}", "worker -shard {shard}/{shards}"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SSHCommand = %q, want %q", got, want)
	}
}

// TestSSHFleetLauncher checks host-list validation and the self-exec
// default worker command.
func TestSSHFleetLauncher(t *testing.T) {
	if _, err := SSHFleetLauncher(nil, ""); err == nil {
		t.Fatal("expected an error for an empty host list")
	}
	l, err := SSHFleetLauncher([]string{"h1", "h2"}, "", "-extra=1")
	if err != nil {
		t.Fatal(err)
	}
	cmdline := l.Command[len(l.Command)-1]
	if !strings.Contains(cmdline, "-shard-worker {shard}/{shards}") || !strings.Contains(cmdline, "-extra=1") {
		t.Fatalf("default worker command %q lacks the self-exec shape", cmdline)
	}
	if !reflect.DeepEqual(l.Hosts, []string{"h1", "h2"}) {
		t.Fatalf("hosts = %q", l.Hosts)
	}
}
