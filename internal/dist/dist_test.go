package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// echoPayload is the deterministic payload the test runner emits for a
// global trial index: a pure function of (spec, seed, index), like real
// trials.
func echoPayload(spec []byte, seed uint64, trial int) []byte {
	return []byte(fmt.Sprintf(`{"trial":%d,"seed":%d,"spec":%d}`, trial, seed, len(spec)))
}

// echoBuild is a BuildRunner whose trials just echo their identity.
func echoBuild(spec []byte, seed uint64) (TrialRunner, error) {
	return func(indices []int, emit func(trial int, data []byte)) error {
		for _, i := range indices {
			emit(i, echoPayload(spec, seed, i))
		}
		return nil
	}, nil
}

// foldState is a checkpointable sink state: an order-sensitive running hash
// of everything folded, so any reordering, omission, or duplication shows.
type foldState struct {
	Count int      `json:"count"`
	Seq   []string `json:"seq"`
}

func (s *foldState) Snapshot() ([]byte, error) { return json.Marshal(s) }
func (s *foldState) Restore(b []byte) error    { return json.Unmarshal(b, s) }

func (s *foldState) sink(trial int, data []byte) error {
	s.Count++
	s.Seq = append(s.Seq, fmt.Sprintf("%d:%s", trial, data))
	return nil
}

// runEcho runs a coordinator over the echo runner and returns the folded
// state.
func runEcho(t *testing.T, opts Options, stop func() bool) (*foldState, Result) {
	t.Helper()
	if opts.Launcher == nil {
		opts.Launcher = &PipeLauncher{Build: echoBuild}
	}
	st := &foldState{}
	res, err := Run(opts, st.sink, stop, st)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return st, res
}

// TestShardIndicesPartition checks that the per-shard index sets partition
// every wave range exactly, for ranges that do and do not align with the
// shard count.
func TestShardIndicesPartition(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 7} {
		for _, r := range [][2]int{{0, 16}, {5, 6}, {3, 20}, {10, 10}, {0, 1}} {
			lo, hi := r[0], r[1]
			seen := map[int]int{}
			for shard := 0; shard < shards; shard++ {
				for _, i := range ShardIndices(lo, hi, shard, shards) {
					if i < lo || i >= hi {
						t.Fatalf("shards=%d [%d,%d): shard %d got out-of-range index %d", shards, lo, hi, shard, i)
					}
					if i%shards != shard {
						t.Fatalf("shards=%d: index %d assigned to shard %d", shards, i, shard)
					}
					seen[i]++
				}
			}
			for i := lo; i < hi; i++ {
				if seen[i] != 1 {
					t.Fatalf("shards=%d [%d,%d): index %d covered %d times", shards, lo, hi, i, seen[i])
				}
			}
			if len(seen) != hi-lo {
				t.Fatalf("shards=%d [%d,%d): covered %d indices", shards, lo, hi, len(seen))
			}
		}
	}
	if got := ShardIndices(0, 10, 3, 2); got != nil {
		t.Fatalf("invalid shard: got %v", got)
	}
}

// TestParseShardArg pins the round trip and the rejections.
func TestParseShardArg(t *testing.T) {
	shard, shards, err := ParseShardArg(ShardArg(3, 8))
	if err != nil || shard != 3 || shards != 8 {
		t.Fatalf("round trip: %d/%d, %v", shard, shards, err)
	}
	for _, bad := range []string{"", "3", "8/3", "-1/4", "a/b", "4/4"} {
		if _, _, err := ParseShardArg(bad); err == nil {
			t.Fatalf("ParseShardArg(%q) accepted", bad)
		}
	}
}

// TestRunFixedFoldsInOrderAcrossShards is the core determinism property at
// the dist level: the folded sequence is identical at every shard count and
// equals the declared global order.
func TestRunFixedFoldsInOrderAcrossShards(t *testing.T) {
	spec := []byte(`{"job":"echo"}`)
	const trials = 53
	var want []string
	for i := 0; i < trials; i++ {
		want = append(want, fmt.Sprintf("%d:%s", i, echoPayload(spec, 7, i)))
	}
	for _, shards := range []int{1, 2, 4} {
		for _, wave := range []int{0, 1, 5, 64} {
			st, res := runEcho(t, Options{Shards: shards, MaxTrials: trials, Wave: wave, Seed: 7, Spec: spec}, nil)
			if res.Trials != trials || res.Stopped {
				t.Fatalf("shards=%d wave=%d: result %+v", shards, wave, res)
			}
			if !reflect.DeepEqual(st.Seq, want) {
				t.Fatalf("shards=%d wave=%d: folded sequence diverged:\n%v\nwant\n%v", shards, wave, st.Seq, want)
			}
		}
	}
}

// TestRunAdaptiveStopPointIndependentOfShards checks that a stopping
// predicate fires at the same folded prefix at every shard count and wave
// size, including mid-wave.
func TestRunAdaptiveStopPointIndependentOfShards(t *testing.T) {
	spec := []byte(`{"job":"echo"}`)
	const stopAt = 23
	for _, shards := range []int{1, 2, 4} {
		for _, wave := range []int{3, 16, 100} {
			st := &foldState{}
			res, err := Run(Options{
				Shards: shards, MaxTrials: 100, Wave: wave, Seed: 7, Spec: spec,
				Launcher: &PipeLauncher{Build: echoBuild},
			}, st.sink, func() bool { return st.Count >= stopAt }, nil)
			if err != nil {
				t.Fatalf("shards=%d wave=%d: %v", shards, wave, err)
			}
			if !res.Stopped || res.Trials != stopAt || st.Count != stopAt {
				t.Fatalf("shards=%d wave=%d: stopped=%v trials=%d folded=%d, want stop at %d",
					shards, wave, res.Stopped, res.Trials, st.Count, stopAt)
			}
		}
	}
}

// TestRunCheckpointResume interrupts a checkpointed run with MaxWaves,
// resumes it, and requires the folded state to be byte-identical to an
// uninterrupted run — including a final no-op resume of the done
// checkpoint.
func TestRunCheckpointResume(t *testing.T) {
	spec := []byte(`{"job":"echo"}`)
	const trials = 40
	full, fullRes := runEcho(t, Options{Shards: 2, MaxTrials: trials, Wave: 6, Seed: 9, Spec: spec}, nil)

	cp := filepath.Join(t.TempDir(), "run.ckpt")
	st, res := runEcho(t, Options{Shards: 2, MaxTrials: trials, Wave: 6, Seed: 9, Spec: spec,
		CheckpointPath: cp, MaxWaves: 3}, nil)
	if !res.Interrupted || res.Trials != 18 || len(st.Seq) != 18 {
		t.Fatalf("interrupted run: %+v (folded %d)", res, len(st.Seq))
	}
	st2 := &foldState{}
	res2, err := Run(Options{Shards: 2, MaxTrials: trials, Wave: 6, Seed: 9, Spec: spec,
		CheckpointPath: cp, Launcher: &PipeLauncher{Build: echoBuild}}, st2.sink, nil, st2)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if res2.ResumedFrom != 18 || res2.Trials != trials || res2.Interrupted {
		t.Fatalf("resume result: %+v", res2)
	}
	// The resumed state was restored from the checkpoint snapshot before
	// folding the remainder, so it must equal the uninterrupted run's.
	if !reflect.DeepEqual(st2.Seq, full.Seq) {
		t.Fatalf("resumed state diverged from uninterrupted run:\n%v\nwant\n%v", st2.Seq, full.Seq)
	}
	if res2.Waves != fullRes.Waves {
		t.Fatalf("cumulative waves: %d vs %d", res2.Waves, fullRes.Waves)
	}

	// Resuming a done checkpoint restores the final state without
	// launching anything.
	st3 := &foldState{}
	res3, err := Run(Options{Shards: 2, MaxTrials: trials, Wave: 6, Seed: 9, Spec: spec,
		CheckpointPath: cp, Launcher: failingLauncher{}}, st3.sink, nil, st3)
	if err != nil {
		t.Fatalf("done resume: %v", err)
	}
	if res3.Trials != trials || !reflect.DeepEqual(st3.Seq, full.Seq) {
		t.Fatalf("done resume diverged: %+v", res3)
	}
}

// failingLauncher fails every Launch; used to prove a done checkpoint never
// launches workers.
type failingLauncher struct{}

func (failingLauncher) Launch(int, int) (*Conn, error) {
	return nil, fmt.Errorf("launcher must not be called")
}

// TestRunWorkerCrashLeavesUsableCheckpoint kills the run mid-wave via a
// runner that fails on a specific trial, then resumes with a healthy
// launcher and requires the final state to match an uninterrupted run —
// the dist-level version of the kill-and-resume contract.
func TestRunWorkerCrashLeavesUsableCheckpoint(t *testing.T) {
	spec := []byte(`{"job":"echo"}`)
	const trials = 30
	full, _ := runEcho(t, Options{Shards: 2, MaxTrials: trials, Wave: 5, Seed: 4, Spec: spec}, nil)

	crashing := func(spec []byte, seed uint64) (TrialRunner, error) {
		return func(indices []int, emit func(trial int, data []byte)) error {
			for _, i := range indices {
				if i == 17 { // wave [15,20): crash mid-run
					return fmt.Errorf("injected crash at trial %d", i)
				}
				emit(i, echoPayload(spec, seed, i))
			}
			return nil
		}, nil
	}
	cp := filepath.Join(t.TempDir(), "crash.ckpt")
	st := &foldState{}
	_, err := Run(Options{Shards: 2, MaxTrials: trials, Wave: 5, Seed: 4, Spec: spec,
		CheckpointPath: cp, Launcher: &PipeLauncher{Build: crashing}}, st.sink, nil, st)
	if err == nil || !strings.Contains(err.Error(), "injected crash") {
		t.Fatalf("expected injected crash, got %v", err)
	}

	st2 := &foldState{}
	res, err := Run(Options{Shards: 2, MaxTrials: trials, Wave: 5, Seed: 4, Spec: spec,
		CheckpointPath: cp, Launcher: &PipeLauncher{Build: echoBuild}}, st2.sink, nil, st2)
	if err != nil {
		t.Fatalf("resume after crash: %v", err)
	}
	if res.ResumedFrom != 15 || res.Trials != trials {
		t.Fatalf("resume result: %+v", res)
	}
	if !reflect.DeepEqual(st2.Seq, full.Seq) {
		t.Fatalf("post-crash resume diverged from uninterrupted run")
	}
}

// TestRunChecksSpecHashOnResume pins that a checkpoint from a different
// configuration is rejected instead of silently folded into.
func TestRunChecksSpecHashOnResume(t *testing.T) {
	cp := filepath.Join(t.TempDir(), "run.ckpt")
	_, res := runEcho(t, Options{Shards: 1, MaxTrials: 8, Seed: 1, Spec: []byte(`{"a":1}`),
		CheckpointPath: cp}, nil)
	if res.Trials != 8 {
		t.Fatalf("seed run: %+v", res)
	}
	st := &foldState{}
	_, err := Run(Options{Shards: 1, MaxTrials: 8, Seed: 1, Spec: []byte(`{"a":2}`),
		CheckpointPath: cp, Launcher: &PipeLauncher{Build: echoBuild}}, st.sink, nil, st)
	if err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("expected configuration mismatch, got %v", err)
	}
	// A changed seed would fold two different trial streams into one
	// aggregate; a changed cap would move the stop point. Both are
	// rejected, not resumed.
	_, err = Run(Options{Shards: 1, MaxTrials: 8, Seed: 2, Spec: []byte(`{"a":1}`),
		CheckpointPath: cp, Launcher: &PipeLauncher{Build: echoBuild}}, st.sink, nil, st)
	if err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("expected seed mismatch, got %v", err)
	}
	_, err = Run(Options{Shards: 1, MaxTrials: 16, Seed: 1, Spec: []byte(`{"a":1}`),
		CheckpointPath: cp, Launcher: &PipeLauncher{Build: echoBuild}}, st.sink, nil, st)
	if err == nil || !strings.Contains(err.Error(), "trial cap") {
		t.Fatalf("expected trial-cap mismatch, got %v", err)
	}
	// A changed stopping policy would produce a stop point matching
	// neither run.
	_, err = Run(Options{Shards: 1, MaxTrials: 8, Seed: 1, Spec: []byte(`{"a":1}`),
		Policy: "adaptive rel=0.03", CheckpointPath: cp, Launcher: &PipeLauncher{Build: echoBuild}},
		st.sink, nil, st)
	if err == nil || !strings.Contains(err.Error(), "policy") {
		t.Fatalf("expected policy mismatch, got %v", err)
	}
}

// TestRunOptionValidation covers the fail-fast paths: every nonsensical
// option is rejected up front with an error that names the field and the
// accepted range, before any worker is launched.
func TestRunOptionValidation(t *testing.T) {
	sink := func(int, []byte) error { return nil }
	cases := []struct {
		name string
		opts Options
		want string // substring the error must carry
	}{
		{"zero-shards", Options{Shards: 0, MaxTrials: 1, Launcher: failingLauncher{}}, "Shards"},
		{"zero-trials", Options{Shards: 1, MaxTrials: 0, Launcher: failingLauncher{}}, "MaxTrials"},
		{"nil-launcher", Options{Shards: 1, MaxTrials: 1}, "Launcher"},
		{"checkpoint-without-state", Options{Shards: 1, MaxTrials: 1, Launcher: failingLauncher{}, CheckpointPath: "x"}, "State"},
		// MaxWaves without a checkpoint would interrupt unresumably.
		{"maxwaves-without-checkpoint", Options{Shards: 1, MaxTrials: 1, Launcher: failingLauncher{}, MaxWaves: 1}, "MaxWaves"},
		// A negative liveness deadline would silently disable hang detection
		// while reading as "very strict" at the call site.
		{"negative-worker-timeout", Options{Shards: 1, MaxTrials: 1, Launcher: failingLauncher{},
			WorkerTimeout: -time.Second}, "WorkerTimeout"},
		// A negative backoff would schedule relaunches in the past and spin.
		{"negative-backoff", Options{Shards: 1, MaxTrials: 1, Launcher: failingLauncher{},
			RelaunchBackoff: -time.Millisecond}, "RelaunchBackoff"},
		// Below NoRelaunch there is no defined recovery semantics.
		{"nonsense-max-relaunches", Options{Shards: 1, MaxTrials: 1, Launcher: failingLauncher{},
			MaxRelaunches: NoRelaunch - 1}, "MaxRelaunches"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(tc.opts, sink, nil, nil)
			if err == nil {
				t.Fatal("expected validation error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}
	if _, err := Run(Options{Shards: 1, MaxTrials: 1, Launcher: failingLauncher{}}, nil, nil, nil); err == nil {
		t.Fatal("nil sink accepted")
	}
}

// TestWriteFileAtomic checks atomic replacement and that no temp files are
// left behind.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("two"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "two" {
		t.Fatalf("content %q, err %v", got, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1 (temp file leaked?)", len(entries))
	}
}

// TestProtocolVersionRejected pins the version gate on both directions.
func TestProtocolVersionRejected(t *testing.T) {
	r := newMsgReader(strings.NewReader(`{"v":99,"type":"job","trial":0}` + "\n"))
	if _, err := r.next(); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("expected version error, got %v", err)
	}
}

// v1Launcher fakes a worker built against protocol version 1: it consumes
// the job header and answers with a v1 hello line.
type v1Launcher struct{}

func (v1Launcher) Launch(shard, shards int) (*Conn, error) {
	workerIn, coordOut := io.Pipe()
	coordIn, workerOut := io.Pipe()
	go func() {
		r := newMsgReader(workerIn)
		r.next() // the job header (a version-2 line; the old build would also reject it)
		fmt.Fprintf(workerOut, `{"v":1,"type":"hello","shard":%d,"shards":%d}`+"\n", shard, shards)
		workerOut.Close()
		workerIn.Close()
	}()
	return &Conn{W: coordOut, R: coordIn}, nil
}

// TestRunRejectsOldProtocolWorker pins the cross-version handshake
// contract: a worker speaking protocol version 1 (the pre-128-bit-clock
// wire format) fails the run with a descriptive error naming the shard —
// no panic, no silent restart, and no relaunch loop reproducing the same
// build mismatch.
func TestRunRejectsOldProtocolWorker(t *testing.T) {
	st := &foldState{}
	res, err := Run(Options{
		Shards: 1, MaxTrials: 8, Wave: 4, Seed: 3, Spec: []byte(`{"job":"x"}`),
		Launcher: v1Launcher{},
		Log:      io.Discard,
	}, st.sink, nil, st)
	if err == nil {
		t.Fatalf("old-protocol worker accepted: %+v", res)
	}
	for _, want := range []string{"shard 0", "version 1", "128-bit"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
	if st.Count != 0 {
		t.Fatalf("folded %d trials from a cross-version worker", st.Count)
	}
}

// TestCoreShare pins the core-budget partition: shares sum to the budget
// when it covers every shard, differ by at most one, and floor at one when
// the budget is short.
func TestCoreShare(t *testing.T) {
	for _, tc := range []struct{ budget, shards int }{
		{4, 4}, {4, 2}, {5, 3}, {1, 4}, {16, 5}, {3, 8},
	} {
		min, max, sum := 1<<30, 0, 0
		for shard := 0; shard < tc.shards; shard++ {
			w := CoreShare(tc.budget, shard, tc.shards)
			if w < 1 {
				t.Fatalf("CoreShare(%d, %d, %d) = %d < 1", tc.budget, shard, tc.shards, w)
			}
			if w < min {
				min = w
			}
			if w > max {
				max = w
			}
			sum += w
		}
		if max-min > 1 {
			t.Fatalf("budget %d over %d shards: shares spread %d..%d", tc.budget, tc.shards, min, max)
		}
		if tc.budget >= tc.shards && sum != tc.budget {
			t.Fatalf("budget %d over %d shards: shares sum to %d", tc.budget, tc.shards, sum)
		}
		if tc.budget < tc.shards && sum != tc.shards {
			t.Fatalf("short budget %d over %d shards: shares sum to %d, want one each", tc.budget, tc.shards, sum)
		}
	}
	if got := CoreShare(0, 0, 4); got != 1 {
		t.Fatalf("CoreShare without budget = %d, want 1", got)
	}
}

// TestExecLauncherCoreBudgetEnv launches a real child under a core budget
// and reads the GOMAXPROCS the child observes in its environment.
func TestExecLauncherCoreBudgetEnv(t *testing.T) {
	if _, err := os.Stat("/bin/sh"); err != nil {
		t.Skip("/bin/sh unavailable")
	}
	l := &ExecLauncher{
		Path:       "/bin/sh",
		Args:       func(shard, shards int) []string { return []string{"-c", `echo "$GOMAXPROCS"`} },
		CoreBudget: 5,
	}
	c, err := l.Launch(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Wait()
	defer c.W.Close()
	var out [16]byte
	n, _ := c.R.Read(out[:])
	got := strings.TrimSpace(string(out[:n]))
	if want := fmt.Sprintf("%d", CoreShare(5, 1, 3)); got != want {
		t.Fatalf("worker saw GOMAXPROCS=%q, want %q", got, want)
	}
}

// failingDispatchWriter fails every write after its wave budget is spent.
type failingDispatchWriter struct {
	w         io.WriteCloser
	remaining int
}

func (f *failingDispatchWriter) Write(p []byte) (int, error) {
	if strings.Contains(string(p), `"type":"wave"`) {
		if f.remaining <= 0 {
			return 0, errors.New("injected dispatch failure")
		}
		f.remaining--
	}
	return f.w.Write(p)
}

func (f *failingDispatchWriter) Close() error { return f.w.Close() }

// failAfterWaves wraps a launcher so shard 0's command stream dies after a
// fixed number of wave dispatches.
type failAfterWaves struct {
	inner Launcher
	waves int
}

func (l *failAfterWaves) Launch(shard, shards int) (*Conn, error) {
	c, err := l.inner.Launch(shard, shards)
	if err != nil || shard != 0 {
		return c, err
	}
	c.W = &failingDispatchWriter{w: c.W, remaining: l.waves}
	return c, nil
}

// TestRunDispatchFailureFoldsDispatchedWaves pins the pipelined
// coordinator's loss bound with recovery disabled (NoRelaunch): when
// dispatching wave w fails, every earlier wave — already delivered to all
// shards — still folds (and checkpoints), so a killed coordinator loses
// only the undispatched tail.
func TestRunDispatchFailureFoldsDispatchedWaves(t *testing.T) {
	spec := []byte(`{"job":"echo"}`)
	const wave = 4
	for _, okWaves := range []int{1, 3} {
		st := &foldState{}
		res, err := Run(Options{
			Shards:        2,
			MaxTrials:     40,
			Wave:          wave,
			Seed:          7,
			Spec:          spec,
			Launcher:      &failAfterWaves{inner: &PipeLauncher{Build: echoBuild}, waves: okWaves},
			MaxRelaunches: NoRelaunch,
			Log:           io.Discard,
		}, st.sink, nil, st)
		if err == nil || !strings.Contains(err.Error(), "injected dispatch failure") {
			t.Fatalf("okWaves=%d: expected injected failure, got %v", okWaves, err)
		}
		if want := okWaves * wave; res.Trials != want || st.Count != want {
			t.Fatalf("okWaves=%d: folded %d/%d trials, want exactly %d (the dispatched waves)",
				okWaves, res.Trials, st.Count, want)
		}
		for i := 0; i < st.Count; i++ {
			if want := fmt.Sprintf("%d:%s", i, echoPayload(spec, 7, i)); st.Seq[i] != want {
				t.Fatalf("okWaves=%d: fold %d = %q, want %q", okWaves, i, st.Seq[i], want)
			}
		}
	}
}

// TestRunDispatchFailureSelfHeals is the recovery-enabled companion of
// TestRunDispatchFailureFoldsDispatchedWaves: the same injected dispatch
// failure (shard 0's command stream dies after one wave, on every
// incarnation) no longer aborts the run. The coordinator burns shard 0's
// relaunch budget, redistributes its index stream to shard 1, and the full
// fold is byte-identical to a fault-free run.
func TestRunDispatchFailureSelfHeals(t *testing.T) {
	spec := []byte(`{"job":"echo"}`)
	st := &foldState{}
	res, err := Run(Options{
		Shards:          2,
		MaxTrials:       40,
		Wave:            4,
		Seed:            7,
		Spec:            spec,
		Launcher:        &failAfterWaves{inner: &PipeLauncher{Build: echoBuild}, waves: 1},
		MaxRelaunches:   2,
		RelaunchBackoff: time.Millisecond,
		Log:             io.Discard,
	}, st.sink, nil, st)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Trials != 40 || st.Count != 40 {
		t.Fatalf("folded %d/%d trials, want 40", res.Trials, st.Count)
	}
	if res.Relaunches == 0 || res.Requeued == 0 {
		t.Fatalf("res = %+v, want relaunches and requeued trials", res)
	}
	for i := 0; i < st.Count; i++ {
		if want := fmt.Sprintf("%d:%s", i, echoPayload(spec, 7, i)); st.Seq[i] != want {
			t.Fatalf("fold %d = %q, want %q", i, st.Seq[i], want)
		}
	}
}
