package dist

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// This file is the fault-tolerant coordinator. The design separates three
// concerns so that recovery cannot disturb determinism:
//
//   - What to fold: the in-order fold over global trial indices, the stop
//     checks, and the checkpoint cadence are exactly the pre-fault-tolerance
//     ones — a wave folds when every index in it has a result, no matter
//     which worker (or incarnation) computed it.
//   - Who computes what: a single-threaded event loop tracks, per
//     dispatched index, the shard currently responsible for it. When a
//     worker dies the outstanding indices are requeued — to the relaunched
//     worker, or across the survivors once the relaunch budget is spent.
//   - Failure detection: per-connection reader and sender goroutines turn
//     EOFs, decode errors, and write failures into events; a liveness
//     deadline (Options.WorkerTimeout) catches workers that hang without
//     closing anything.
//
// Trial payloads are pure functions of (spec, seed, index), so recomputing
// an index on a different worker — even folding a duplicate delivery —
// yields identical bytes; scheduling is the only thing failures can change.

// pipelineDepth is how many waves may be dispatched beyond the fold point:
// workers begin wave w+1 the moment they finish wave w while the
// coordinator is still folding, checkpointing, and stop-checking wave w.
// Folding order, the stop point, and checkpoint granularity are untouched —
// pipelining only removes the worker idle time at each fold. Depth 2 is
// exactly "one wave ahead of the fold": more would only grow the discard
// pile when a stopping predicate fires.
const pipelineDepth = 2

// sendQueueCap bounds a shard's command queue. The event loop never blocks
// on a worker: commands are enqueued and a per-connection sender goroutine
// performs the (possibly blocking) writes. Dispatch-ahead is bounded by
// pipelineDepth and requeues by the outstanding-wave count, so the queue
// can only overflow if the coordinator itself is broken.
const sendQueueCap = 64

// waveRange is one dispatch wave's global trial-index range.
type waveRange struct{ lo, hi int }

// shardMsg is one worker event tagged with its shard and connection
// generation, as pumped to the event loop. The generation guards against a
// dead incarnation's trailing messages being attributed to its replacement.
type shardMsg struct {
	shard int
	gen   int
	m     Msg
	err   error
	// sendErr marks err as a command-side failure: the worker can no longer
	// be told anything, but results it already received commands for may
	// still flow back.
	sendErr bool
	// undelivered marks m as a command that never reached the worker (the
	// failed write, or one drained from the queue behind it). The fold loop
	// uses it to know which indices can never arrive when recovery is
	// disabled.
	undelivered bool
}

// shardHealth is the lifecycle state of one shard slot.
type shardHealth int

const (
	// healthLaunching: job sent, hello not yet verified.
	healthLaunching shardHealth = iota
	// healthReady: handshake complete, accepting waves.
	healthReady
	// healthBackoff: worker dead, relaunch scheduled.
	healthBackoff
	// healthLost: relaunch budget exhausted (or recovery disabled); the
	// shard's work is redistributed and it is never contacted again.
	healthLost
)

// shardSlot is the coordinator's view of one shard: its current connection
// (generation-tagged, since workers are relaunched), its health, and its
// relaunch bookkeeping. The indices a slot is responsible for live in the
// coordinator's owner map, keyed by global index.
type shardSlot struct {
	id         int
	gen        int
	health     shardHealth
	conn       *Conn
	sendq      chan Msg
	launcher   Launcher  // starts (and restarts) this member's worker
	owed       int       // dispatched, not-yet-received indices owned
	relaunches int       // relaunch budget consumed
	relaunchAt time.Time // healthBackoff: earliest relaunch time
	lastHeard  time.Time // last protocol line; the liveness clock
	lastErr    error     // most recent failure cause
}

// coordinator is the single-threaded event loop state of one Run.
type coordinator struct {
	opts          Options
	wave          int
	hash          string
	start         int
	maxRelaunches int
	backoff       time.Duration
	intr          <-chan struct{}
	elastic       bool
	join          <-chan Launcher

	slots []*shardSlot
	msgs  chan shardMsg

	pumps   sync.WaitGroup // reader + sender goroutines, all generations
	reapers sync.WaitGroup // kill-and-reap goroutines for dead connections

	pending map[int][]byte // received, unfolded results by global index
	owner   map[int]int    // dispatched, unreceived index -> owning slot id
	deadIdx map[int]bool   // dispatched index that can never arrive (NoRelaunch)
	done    int            // fold position

	interrupted bool
	fatal       error // unrecoverable failure; fold completable waves first

	log   io.Writer
	logMu sync.Mutex

	res *Result
}

// Run executes a distributed trial run: it launches Options.Shards workers,
// partitions each wave's global trial indices across them (index i belongs
// to shard i mod Shards; elastic runs instead deal every wave explicitly
// across the current member set), folds the returned payloads into sink
// strictly in global trial-index order, and evaluates stop after every
// fold, exactly as experiment.StreamAdaptive does in process — so the
// folded prefix, and every order-sensitive aggregate built from it, is
// byte-identical to the single-process run of the same spec and seed at
// every shard count and under any membership history.
//
// Run survives worker failure: crashed, hung (see Options.WorkerTimeout),
// and garbage-emitting workers are detected, their outstanding trial
// indices requeued, and the worker relaunched with capped exponential
// backoff (Options.MaxRelaunches); a shard whose relaunch budget is spent
// has its index stream redistributed across the surviving shards. Because
// trial payloads depend only on (spec, seed, index), recovery changes
// scheduling but never results: the folded stream stays byte-identical to
// a fault-free run. Worker-side errors (spec rejection, trial errors) are
// deterministic and abort the run instead of being retried.
//
// stop may be nil for a fixed MaxTrials run. A non-nil sink error aborts
// the run. state carries the caller's aggregates for checkpointing; it is
// required when Options.CheckpointPath is set and may be nil otherwise.
func Run(opts Options, sink func(trial int, data []byte) error, stop func() bool, state State) (Result, error) {
	if opts.Shards < 1 {
		return Result{}, fmt.Errorf("dist: Shards = %d, want >= 1", opts.Shards)
	}
	if opts.MaxTrials < 1 {
		return Result{}, fmt.Errorf("dist: MaxTrials = %d, want >= 1", opts.MaxTrials)
	}
	if opts.Launcher == nil {
		return Result{}, fmt.Errorf("dist: Options.Launcher is required")
	}
	if sink == nil {
		return Result{}, fmt.Errorf("dist: sink is required")
	}
	if opts.CheckpointPath != "" && state == nil {
		return Result{}, fmt.Errorf("dist: CheckpointPath is set but no State was provided")
	}
	if opts.MaxWaves > 0 && opts.CheckpointPath == "" {
		return Result{}, fmt.Errorf("dist: MaxWaves without CheckpointPath would interrupt unresumably")
	}
	if opts.WorkerTimeout < 0 {
		return Result{}, fmt.Errorf("dist: WorkerTimeout = %v, want >= 0 (zero disables the liveness deadline)", opts.WorkerTimeout)
	}
	if opts.RelaunchBackoff < 0 {
		return Result{}, fmt.Errorf("dist: RelaunchBackoff = %v, want >= 0 (zero means the default %v)", opts.RelaunchBackoff, DefaultRelaunchBackoff)
	}
	if opts.MaxRelaunches < NoRelaunch {
		return Result{}, fmt.Errorf("dist: MaxRelaunches = %d, want >= %d (NoRelaunch %d fails fast, zero means the default %d)",
			opts.MaxRelaunches, NoRelaunch, NoRelaunch, DefaultMaxRelaunches)
	}
	wave := opts.Wave
	if wave <= 0 {
		wave = DefaultWave
	}
	hash := HashSpec(opts.Spec)

	res := Result{}
	start := 0
	if opts.CheckpointPath != "" {
		cp, ok, err := loadCheckpoint(opts.CheckpointPath, hash, opts.Seed, opts.MaxTrials, opts.Policy)
		if err != nil {
			return Result{}, err
		}
		if ok {
			if err := state.Restore(cp.State); err != nil {
				return Result{}, fmt.Errorf("dist: restore state from checkpoint: %w", err)
			}
			start = cp.NextTrial
			res.ResumedFrom = cp.NextTrial
			res.Waves = cp.Waves
			if cp.Done {
				// The run already finished; the restored state is the final
				// aggregate, so report its recorded outcome without
				// launching anything.
				res.Trials = cp.NextTrial
				res.Stopped = cp.Stopped
				return res, nil
			}
		}
	}

	co := &coordinator{
		opts:          opts,
		wave:          wave,
		hash:          hash,
		start:         start,
		maxRelaunches: opts.MaxRelaunches,
		backoff:       opts.RelaunchBackoff,
		intr:          opts.Interrupt,
		msgs:          make(chan shardMsg, opts.Shards),
		pending:       make(map[int][]byte, pipelineDepth*wave),
		owner:         make(map[int]int, pipelineDepth*wave),
		deadIdx:       make(map[int]bool),
		done:          start,
		log:           opts.Log,
		res:           &res,
		elastic:       opts.Elastic || opts.Join != nil,
		join:          opts.Join,
	}
	if co.maxRelaunches == 0 {
		co.maxRelaunches = DefaultMaxRelaunches
	}
	if co.backoff <= 0 {
		co.backoff = DefaultRelaunchBackoff
	}
	if co.log == nil {
		co.log = os.Stderr
	}
	for i := 0; i < opts.Shards; i++ {
		co.slots = append(co.slots, &shardSlot{id: i, launcher: opts.Launcher})
	}
	defer co.cleanup()
	for _, s := range co.slots {
		if err := co.launchSlot(s); err != nil {
			co.slotDown(s, err, false)
		}
	}

	// The wave schedule of this invocation, fixed up front: consecutive
	// [lo, hi) ranges from the resume point to the trial cap, truncated to
	// MaxWaves when time-slicing.
	var waves []waveRange
	for lo := start; lo < opts.MaxTrials; lo += wave {
		hi := lo + wave
		if hi > opts.MaxTrials {
			hi = opts.MaxTrials
		}
		waves = append(waves, waveRange{lo, hi})
	}
	truncated := false
	if opts.MaxWaves > 0 && opts.MaxWaves < len(waves) {
		waves = waves[:opts.MaxWaves]
		truncated = true
	}

	for j := 0; j < pipelineDepth && j < len(waves); j++ {
		co.dispatch(waves[j])
	}

	for wi, wv := range waves {
		// The wave barrier: every index of [lo, hi) has a result. Coverage
		// (not per-shard wavedone counting) is the barrier, so it holds
		// regardless of which incarnation or survivor computed an index.
		for !co.covered(wv) {
			if co.fatal != nil && !co.completable(wv) {
				res.Trials = co.done
				return res, co.fatal
			}
			co.awaitEvent()
		}
		// Fold the wave strictly in global index order, consulting the
		// stopping predicate after every fold — the same contract as the
		// in-process engines, so the stop point cannot depend on shard
		// count, scheduling, or recovery. Results past a mid-wave stop are
		// discarded, bounding the waste at the pipeline depth.
		stopped := false
		for i := wv.lo; i < wv.hi && !stopped; i++ {
			data := co.pending[i]
			delete(co.pending, i)
			if err := sink(i, data); err != nil {
				res.Trials = co.done
				return res, fmt.Errorf("dist: fold trial %d: %w", i, err)
			}
			co.done++
			if stop != nil && stop() {
				stopped = true
			}
		}
		res.Waves++
		res.Trials = co.done
		res.Stopped = stopped
		if opts.CheckpointPath != "" {
			cp := Checkpoint{
				Hash:      hash,
				Seed:      opts.Seed,
				Policy:    opts.Policy,
				NextTrial: co.done,
				MaxTrials: opts.MaxTrials,
				Waves:     res.Waves,
				Done:      stopped || co.done >= opts.MaxTrials,
				Stopped:   stopped,
			}
			if err := saveCheckpoint(opts.CheckpointPath, cp, state); err != nil {
				return res, err
			}
		}
		if stopped {
			return res, nil
		}
		if co.interrupted {
			res.Interrupted = true
			return res, nil
		}
		if next := wi + pipelineDepth; next < len(waves) {
			co.dispatch(waves[next])
		}
	}
	res.Interrupted = truncated
	return res, nil
}

// launchSlot starts (or restarts) a shard's worker: connection, sender and
// reader goroutines, and the job header. The caller routes errors through
// slotDown so launch failures consume relaunch budget like any death.
func (co *coordinator) launchSlot(s *shardSlot) error {
	c, err := s.launcher.Launch(s.id, len(co.slots))
	if err != nil {
		return err
	}
	s.conn = c
	s.sendq = make(chan Msg, sendQueueCap)
	s.health = healthLaunching
	s.lastHeard = time.Now()
	gen := s.gen
	co.pumps.Add(2)
	go co.sender(s.id, gen, c, s.sendq)
	go co.reader(s.id, gen, c.R)
	s.sendq <- Msg{
		Type:   TypeJob,
		Shard:  s.id,
		Shards: len(co.slots),
		Seed:   co.opts.Seed,
		Hash:   co.hash,
		Spec:   co.opts.Spec,
	}
	return nil
}

// sender performs a connection's writes off the event loop, so a slow or
// hung worker can never block dispatching. A write failure is reported as a
// death event; the queue is then drained until the event loop closes it.
func (co *coordinator) sender(shard, gen int, c *Conn, sendq chan Msg) {
	defer co.pumps.Done()
	for m := range sendq {
		if err := c.send(m); err != nil {
			co.msgs <- shardMsg{shard: shard, gen: gen, err: fmt.Errorf("send %s: %w", m.Type, err), sendErr: true}
			// The failed command, and everything queued behind it, never
			// reached the worker; report each so the fold loop knows which
			// indices can no longer arrive.
			co.msgs <- shardMsg{shard: shard, gen: gen, m: m, undelivered: true}
			for m := range sendq {
				co.msgs <- shardMsg{shard: shard, gen: gen, m: m, undelivered: true}
			}
			return
		}
	}
}

// reader pumps a connection's protocol lines to the event loop. EOF mid-run
// means the worker died (a worker that exits cleanly does so only after a
// halt, when nobody is waiting on its messages); decode errors mean it is
// emitting garbage. Both become death events.
func (co *coordinator) reader(shard, gen int, r io.ReadCloser) {
	defer co.pumps.Done()
	dec := newMsgReader(r)
	for {
		m, err := dec.next()
		if err != nil {
			if err == io.EOF {
				err = errors.New("worker exited")
			}
			co.msgs <- shardMsg{shard: shard, gen: gen, err: err}
			return
		}
		co.msgs <- shardMsg{shard: shard, gen: gen, m: m}
	}
}

// awaitEvent blocks until one event is processed: a worker message or
// death, a liveness/relaunch deadline, a member joining the fleet, or the
// caller's interrupt.
func (co *coordinator) awaitEvent() {
	var timerC <-chan time.Time
	if dl, ok := co.nextDeadline(); ok {
		t := time.NewTimer(time.Until(dl))
		defer t.Stop()
		timerC = t.C
	}
	select {
	case sm := <-co.msgs:
		co.handle(sm)
	case l, ok := <-co.join:
		// A closed Join channel just stops admitting; a nil one (non-elastic
		// run, or closed and nilled) never fires.
		if !ok {
			co.join = nil
			return
		}
		co.admit(l)
	case <-timerC:
		co.checkDeadlines(time.Now())
	case <-co.intr:
		// Finish the wave in flight, checkpoint, and return; the fold loop
		// checks the flag after its next checkpoint. A nil channel (no
		// interrupt configured, or one already taken) never fires.
		co.interrupted = true
		co.intr = nil
	}
}

// admit adds one late joiner as a new member slot and launches its worker;
// the joiner handshakes against the same spec hash as everyone else and is
// dealt its balanced share starting with the next dispatched wave — waves
// already dispatched keep their assignments, so joining can never reassign
// in-flight work. Launch failures burn the joiner's relaunch budget exactly
// like a launch-time failure of an initial member.
func (co *coordinator) admit(l Launcher) {
	s := &shardSlot{id: len(co.slots), launcher: l}
	co.slots = append(co.slots, s)
	co.res.Joined++
	co.logf("dist: member %d joined the fleet (%d members)\n", s.id, len(co.slots))
	if err := co.launchSlot(s); err != nil {
		co.slotDown(s, err, false)
	}
}

// nextDeadline returns the earliest pending relaunch or liveness deadline.
func (co *coordinator) nextDeadline() (time.Time, bool) {
	var dl time.Time
	ok := false
	add := func(t time.Time) {
		if !ok || t.Before(dl) {
			dl, ok = t, true
		}
	}
	for _, s := range co.slots {
		switch s.health {
		case healthBackoff:
			add(s.relaunchAt)
		case healthLaunching, healthReady:
			if co.opts.WorkerTimeout > 0 && co.busy(s) {
				add(s.lastHeard.Add(co.opts.WorkerTimeout))
			}
		}
	}
	return dl, ok
}

// checkDeadlines fires due relaunches and declares silent busy workers
// dead. Only busy shards (mid-handshake or owing dispatched trials) have a
// liveness deadline: an idle worker has nothing to say.
func (co *coordinator) checkDeadlines(now time.Time) {
	for _, s := range co.slots {
		switch s.health {
		case healthBackoff:
			if !now.Before(s.relaunchAt) {
				co.relaunch(s)
			}
		case healthLaunching, healthReady:
			if co.opts.WorkerTimeout > 0 && co.busy(s) && now.Sub(s.lastHeard) >= co.opts.WorkerTimeout {
				co.slotDown(s, fmt.Errorf("no protocol traffic in %v (worker hung)", co.opts.WorkerTimeout), false)
			}
		}
	}
}

// busy reports whether a shard owes the coordinator anything — a hello or
// dispatched trial results — and is therefore subject to the liveness
// deadline.
func (co *coordinator) busy(s *shardSlot) bool {
	return s.health == healthLaunching || s.owed > 0
}

// handle processes one worker event on the event loop.
func (co *coordinator) handle(sm shardMsg) {
	s := co.slots[sm.shard]
	if sm.gen != s.gen {
		return // a dead incarnation's trailing message
	}
	if sm.err != nil {
		if s.health == healthLost {
			// A NoRelaunch straggler kept alive for its in-flight results:
			// when its result stream also ends, sever it so the fold loop
			// stops waiting on anything it still owes.
			if !sm.sendErr && s.conn != nil {
				co.teardown(s)
			}
			return
		}
		if errors.Is(sm.err, errProtocolVersion) {
			// A cross-version worker is a build mismatch: every relaunch
			// would reproduce it, so fail the run naming the shard.
			co.setFatal(fmt.Errorf("dist: shard %d/%d: %v", s.id, len(co.slots), sm.err))
			co.markLost(s)
			return
		}
		co.slotDown(s, sm.err, sm.sendErr)
		return
	}
	if sm.undelivered {
		co.markUndelivered(s, sm.m)
		return
	}
	s.lastHeard = time.Now()
	m := sm.m
	switch m.Type {
	case TypeHello:
		if s.health != healthLaunching || m.Shard != s.id || m.Hash != co.hash {
			// A mis-addressed or wrong-build worker is a configuration
			// error; relaunching would reproduce it.
			co.setFatal(fmt.Errorf("dist: shard %d sent bad hello (type %s, shard %d, hash %.12s)",
				s.id, m.Type, m.Shard, m.Hash))
			co.markLost(s)
			return
		}
		s.health = healthReady
	case TypeResult:
		if m.Trial < co.done {
			return // duplicate of an already-folded trial
		}
		co.pending[m.Trial] = m.Data
		if o, ok := co.owner[m.Trial]; ok {
			delete(co.owner, m.Trial)
			co.slots[o].owed--
		}
	case TypeWaveDone:
		// Wave completion itself is tracked by index coverage, which
		// survives requeues and redistribution. The barrier's echoed index
		// list is the frame-integrity check: the connection delivered every
		// result line before this wavedone, so an echoed index this shard
		// still owns with no result pending means the result frame was lost
		// in transit (a lossy or corrupting transport). The worker is
		// recovered like any failed one — recomputation is free of
		// determinism risk. Indices requeued to another member in the
		// meantime (owner moved on) and already-folded duplicates are
		// skipped, so a healthy barrier can never be misread as loss.
		for _, i := range m.Indices {
			if i < co.done {
				continue
			}
			if o, ok := co.owner[i]; ok && o == s.id {
				if _, have := co.pending[i]; !have {
					co.slotDown(s, fmt.Errorf("wave [%d,%d) barrier: result frame for trial %d lost in transit", m.Lo, m.Hi, i), false)
					return
				}
			}
		}
	case TypeError:
		// Worker-side errors are deterministic job or trial failures —
		// a relaunch would fail identically — so they abort the run once
		// the still-completable waves have folded and checkpointed.
		if s.health == healthLaunching {
			co.setFatal(fmt.Errorf("dist: shard %d rejected job: %s", s.id, m.Err))
		} else {
			co.setFatal(fmt.Errorf("dist: shard %d failed: %s", s.id, m.Err))
		}
		co.markLost(s)
	default:
		co.slotDown(s, fmt.Errorf("unexpected %s message", m.Type), false)
	}
}

// markUndelivered records that a command never reached its worker. For a
// wave command the affected unreceived indices become dead: nothing will
// ever compute them on this connection. Recovery requeues them anyway
// (relaunch resends everything still owed), so the record only decides
// when a NoRelaunch abort stops waiting.
func (co *coordinator) markUndelivered(s *shardSlot, m Msg) {
	if m.Type != TypeWave {
		return
	}
	idx := m.Indices
	if len(idx) == 0 {
		idx = ShardIndices(m.Lo, m.Hi, s.id, len(co.slots))
	}
	for _, i := range idx {
		if o, ok := co.owner[i]; ok && o == s.id {
			if _, have := co.pending[i]; !have {
				co.deadIdx[i] = true
			}
		}
	}
}

// slotDown declares a shard's current worker dead for a recoverable cause
// (crash, hang, garbage, write failure) and schedules its recovery:
// relaunch with capped exponential backoff while budget remains, otherwise
// redistribution of its index stream across the survivors. With recovery
// disabled (NoRelaunch) the death is instead fatal, preserving the
// pre-recovery loss bound: results the worker already received commands
// for still fold (resultsMayFlow keeps its result stream open), so an
// abort loses at most the undelivered tail.
func (co *coordinator) slotDown(s *shardSlot, cause error, resultsMayFlow bool) {
	if s.health == healthBackoff || s.health == healthLost {
		return
	}
	s.lastErr = cause
	if co.maxRelaunches < 0 {
		if !resultsMayFlow {
			co.teardown(s)
		}
		s.health = healthLost
		co.setFatal(fmt.Errorf("dist: shard %d: %w", s.id, cause))
		return
	}
	co.teardown(s)
	if s.relaunches >= co.maxRelaunches {
		s.health = healthLost
		co.logf("dist: shard %d/%d worker failed (%v); relaunch budget %d exhausted, redistributing %d outstanding trials\n",
			s.id, len(co.slots), cause, co.maxRelaunches, s.owed)
		co.redistribute(s)
		if co.allLost() {
			co.setFatal(fmt.Errorf("dist: all %d shards failed permanently; shard %d last failure: %w",
				len(co.slots), s.id, cause))
		}
		return
	}
	s.relaunches++
	d := co.backoff << (s.relaunches - 1)
	if maxB := co.backoff << 3; d > maxB {
		d = maxB
	}
	s.health = healthBackoff
	s.relaunchAt = time.Now().Add(d)
	co.logf("dist: shard %d/%d worker died (%v); relaunch %d/%d in %v\n",
		s.id, len(co.slots), cause, s.relaunches, co.maxRelaunches, d)
}

// teardown severs a shard's current connection: bumps the generation (so
// trailing messages are ignored), stops the sender, and kills and reaps the
// worker off the event loop.
func (co *coordinator) teardown(s *shardSlot) {
	s.gen++
	if s.sendq != nil {
		close(s.sendq)
		s.sendq = nil
	}
	if c := s.conn; c != nil {
		s.conn = nil
		co.reapers.Add(1)
		go func() {
			defer co.reapers.Done()
			c.kill()
			if c.Wait != nil {
				if err := c.Wait(); err != nil {
					co.logf("dist: shard %d/%d worker exit status: %v\n", s.id, len(co.slots), err)
				}
			}
		}()
	}
}

// markLost retires a shard after a deterministic failure, without
// redistribution: the run is aborting (setFatal precedes every call), so
// requeuing its work would only recompute results that can never fold.
func (co *coordinator) markLost(s *shardSlot) {
	if s.health == healthLost {
		return
	}
	co.teardown(s)
	s.health = healthLost
}

// relaunch restarts a dead shard's worker and requeues everything it still
// owes as explicit-index waves.
func (co *coordinator) relaunch(s *shardSlot) {
	co.logf("dist: relaunching shard %d/%d worker (attempt %d/%d)\n",
		s.id, len(co.slots), s.relaunches, co.maxRelaunches)
	// Leave backoff before attempting the launch: slotDown ignores shards
	// already in healthBackoff, so a failed Launch would otherwise loop on
	// its expired deadline forever without consuming relaunch budget.
	s.health = healthLaunching
	if err := co.launchSlot(s); err != nil {
		co.slotDown(s, fmt.Errorf("relaunch: %w", err), false)
		return
	}
	co.res.Relaunches++
	co.sendOwed(s)
}

// redistribute hands a lost shard's outstanding indices to the surviving
// shards. Future waves route around the lost shard in dispatch.
func (co *coordinator) redistribute(from *shardSlot) {
	var idx []int
	for i, o := range co.owner {
		if o == from.id {
			idx = append(idx, i)
		}
	}
	from.owed = 0
	co.assign(idx, true)
}

// assign deals indices round-robin across the non-lost shards and
// dispatches them as explicit-index waves (immediately to live shards; a
// shard in backoff receives its share when it relaunches). It serves both
// the orphan-requeue path (requeue accounting on) and elastic dispatch,
// where every wave is dealt this way across the current member set. With no
// targets left the indices stay owned by a lost shard, which the fold loop
// reads as "wave not completable" once the all-lost fatal error is set.
func (co *coordinator) assign(idx []int, requeue bool) {
	if len(idx) == 0 {
		return
	}
	var targets []*shardSlot
	for _, t := range co.slots {
		if t.health != healthLost {
			targets = append(targets, t)
		}
	}
	if len(targets) == 0 {
		return
	}
	sort.Ints(idx)
	per := make(map[int][]int, len(targets))
	for j, i := range idx {
		t := targets[j%len(targets)]
		co.owner[i] = t.id
		t.owed++
		per[t.id] = append(per[t.id], i)
	}
	for _, t := range targets {
		if list := per[t.id]; len(list) > 0 {
			co.sendIndices(t, list, requeue)
		}
	}
}

// sendOwed requeues every index a shard owes as explicit-index waves — the
// relaunch path, where some of a wave's indices may already have results.
func (co *coordinator) sendOwed(s *shardSlot) {
	var idx []int
	for i, o := range co.owner {
		if o == s.id {
			idx = append(idx, i)
		}
	}
	if len(idx) > 0 {
		co.sendIndices(s, idx, true)
	}
}

// sendIndices enqueues explicit-index waves for idx (sorted in place),
// grouped by the wave each index belongs to so worker-side wave accounting
// stays well-formed. requeue marks the dispatch as failure recovery for
// Result accounting; elastic first-time dispatch uses the same wire shape
// but is not a requeue.
func (co *coordinator) sendIndices(s *shardSlot, idx []int, requeue bool) {
	if s.sendq == nil {
		return
	}
	sort.Ints(idx)
	if requeue {
		co.res.Requeued += len(idx)
	}
	for start := 0; start < len(idx); {
		lo := co.waveLoOf(idx[start])
		hi := lo + co.wave
		if hi > co.opts.MaxTrials {
			hi = co.opts.MaxTrials
		}
		end := start
		for end < len(idx) && idx[end] < hi {
			end++
		}
		if !co.enqueue(s, Msg{Type: TypeWave, Lo: lo, Hi: hi, Indices: append([]int(nil), idx[start:end]...)}) {
			return
		}
		start = end
	}
}

// waveLoOf returns the start of the wave containing global index i under
// this invocation's schedule.
func (co *coordinator) waveLoOf(i int) int {
	return co.start + (i-co.start)/co.wave*co.wave
}

// dispatch assigns one wave. In elastic mode the whole range is dealt as
// explicit-index waves balanced across the current member set — ownership
// is decided per wave at dispatch time, so a member set that grew or shrank
// since the last wave simply changes who computes what, never what any
// trial computes. Otherwise each non-lost shard gets its modular share (a
// plain wave message; shards in backoff receive theirs on relaunch), and
// lost shards' shares are dealt to the survivors as explicit-index waves.
func (co *coordinator) dispatch(wv waveRange) {
	if co.fatal != nil {
		return
	}
	if co.elastic {
		idx := make([]int, 0, wv.hi-wv.lo)
		for i := wv.lo; i < wv.hi; i++ {
			idx = append(idx, i)
		}
		co.assign(idx, false)
		return
	}
	var orphans []int
	for _, s := range co.slots {
		own := ShardIndices(wv.lo, wv.hi, s.id, len(co.slots))
		if len(own) == 0 {
			continue
		}
		if s.health == healthLost {
			orphans = append(orphans, own...)
			continue
		}
		for _, i := range own {
			co.owner[i] = s.id
		}
		s.owed += len(own)
		if s.sendq != nil {
			co.enqueue(s, Msg{Type: TypeWave, Lo: wv.lo, Hi: wv.hi})
		}
	}
	co.assign(orphans, true)
}

// enqueue hands a command to the shard's sender without ever blocking the
// event loop. Overflow means the shard has stopped consuming commands far
// beyond any legitimate backlog, so it is treated as a death.
func (co *coordinator) enqueue(s *shardSlot, m Msg) bool {
	if s.sendq == nil {
		return false
	}
	select {
	case s.sendq <- m:
		return true
	default:
		co.slotDown(s, fmt.Errorf("command queue overflow"), true)
		co.markUndelivered(s, m)
		return false
	}
}

// covered reports whether every index of the wave has a result pending.
func (co *coordinator) covered(wv waveRange) bool {
	for i := wv.lo; i < wv.hi; i++ {
		if _, ok := co.pending[i]; !ok {
			return false
		}
	}
	return true
}

// completable reports whether the wave can still be covered: every missing
// index is owned by a shard that is alive or will be relaunched. It is
// consulted only once a fatal error is latched, to fold what remains
// foldable before surfacing the error — so an abort loses at most the
// undispatched tail, exactly as an abort without pipelining would.
func (co *coordinator) completable(wv waveRange) bool {
	for i := wv.lo; i < wv.hi; i++ {
		if _, ok := co.pending[i]; ok {
			continue
		}
		o, ok := co.owner[i]
		if !ok {
			return false
		}
		// A lost shard can still deliver in NoRelaunch mode while its
		// result stream is open and the index's command was delivered.
		if s := co.slots[o]; s.health == healthLost && (s.conn == nil || co.deadIdx[i]) {
			return false
		}
	}
	return true
}

// allLost reports whether every shard has been written off.
func (co *coordinator) allLost() bool {
	for _, s := range co.slots {
		if s.health != healthLost {
			return false
		}
	}
	return true
}

// setFatal latches the first unrecoverable error.
func (co *coordinator) setFatal(err error) {
	if co.fatal == nil {
		co.fatal = err
	}
}

// logf writes one diagnostic line; reapers log concurrently with the event
// loop, hence the lock.
func (co *coordinator) logf(format string, args ...any) {
	co.logMu.Lock()
	defer co.logMu.Unlock()
	fmt.Fprintf(co.log, format, args...)
}

// cleanup halts the live workers (best effort), drains their streams, and
// reaps them; it runs on every exit path, including mid-wave aborts with
// results still in flight. Workers that refuse to wind down within a grace
// period — hung mid-protocol, holding their streams open — are
// force-killed, so cleanup cannot deadlock.
func (co *coordinator) cleanup() {
	var live []*Conn
	for _, s := range co.slots {
		if s.conn == nil {
			continue
		}
		live = append(live, s.conn)
		close(s.sendq)
		s.sendq = nil
	}
	var wind sync.WaitGroup
	for _, c := range live {
		wind.Add(1)
		go func(c *Conn) {
			defer wind.Done()
			// Halting is best-effort: a worker that already exited (or
			// died) just yields a write error. The locked send serializes
			// against a sender goroutine still mid-write on the same
			// connection.
			_ = c.send(Msg{Type: TypeHalt})
			c.W.Close()
		}(c)
	}
	// Drain concurrently with halting: a worker still mid-wave keeps
	// emitting results until it reaches the barrier, and those writes must
	// keep flowing (reader goroutine -> msgs -> this drain) or the worker
	// would never get around to reading the halt. Synchronous in-process
	// pipes (PipeLauncher) would deadlock otherwise.
	settled := make(chan struct{})
	go func() {
		wind.Wait()
		co.pumps.Wait()
		close(co.msgs)
	}()
	go func() {
		for range co.msgs {
		}
		close(settled)
	}()
	grace := 5 * time.Second
	if co.opts.WorkerTimeout > 0 && co.opts.WorkerTimeout < grace {
		grace = co.opts.WorkerTimeout
	}
	select {
	case <-settled:
	case <-time.After(grace):
		for _, c := range live {
			c.kill()
		}
		<-settled
	}
	co.reapers.Wait()
	for _, c := range live {
		if c.Wait != nil {
			_ = c.Wait()
		}
	}
}
