package dist

import (
	"errors"
	"fmt"
	"io"
	"testing"
	"time"
)

// failAfterFirstLauncher launches a real worker once per shard, then fails
// every subsequent Launch call.
type failAfterFirstLauncher struct {
	inner    Launcher
	launched map[int]int
}

func (l *failAfterFirstLauncher) Launch(shard, shards int) (*Conn, error) {
	if l.launched == nil {
		l.launched = map[int]int{}
	}
	n := l.launched[shard]
	l.launched[shard]++
	if n > 0 {
		return nil, errors.New("simulated persistent launch failure")
	}
	return l.inner.Launch(shard, shards)
}

func TestRelaunchLaunchFailureTerminates(t *testing.T) {
	opts := Options{
		Shards:    2,
		MaxTrials: 32,
		Wave:      4,
		Seed:      7,
		Spec:      []byte(`{"job":"x"}`),
		Launcher: &failAfterFirstLauncher{
			inner: &FaultLauncher{
				Inner:    &PipeLauncher{Build: echoBuild},
				Schedule: []Fault{{Shard: 0, Kind: FaultCrashMidWave, After: 1}},
			},
		},
		WorkerTimeout:   500 * time.Millisecond,
		RelaunchBackoff: time.Millisecond,
		Log:             io.Discard,
	}
	st := &foldState{}
	done := make(chan struct{})
	var res Result
	var err error
	go func() {
		res, err = Run(opts, st.sink, nil, st)
		close(done)
	}()
	select {
	case <-done:
		fmt.Printf("run finished: res=%+v err=%v\n", res, err)
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not terminate within 10s after persistent relaunch failure")
	}
}
