// Package dist distributes a Monte-Carlo trial budget across worker
// processes and folds the shards' results back into a single in-order
// stream, byte-identical to what the in-process trial engine
// (experiment.Stream / experiment.StreamAdaptive) would have produced.
//
// The design leans entirely on the engine's determinism contract: trial i
// draws its randomness from a stream derived from (seed, i) alone, so any
// process can compute any trial. A shard therefore needs to know only which
// global indices it owns — index i belongs to shard i mod S — and the
// coordinator needs only to fold the returned payloads in global
// trial-index order. Order-sensitive floating-point aggregation then lands
// on exactly the same bits at every shard count, which is the property the
// shard-determinism CI job pins.
//
// The wire protocol is versioned JSONL over the worker's stdin/stdout: the
// coordinator sends a job header (spec, seed, shard identity, spec hash),
// the worker answers with a hello echoing the verified hash, and then waves
// of trial indices flow down and per-trial result payloads flow back, each
// wave closed by a wavedone barrier message. The wave barrier is the
// cross-process analogue of StreamAdaptive's dispatch wave: after folding a
// wave the coordinator evaluates the stopping predicate, writes a
// checkpoint (caller aggregate state + next trial index + spec hash), and
// either dispatches the next wave or halts every worker. Interrupted runs
// resume from the checkpoint instead of restarting, and a resumed run's
// final aggregates are bit-identical to an uninterrupted one's.
package dist

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// ProtocolVersion is the version tag every protocol line carries. Workers
// and coordinators reject lines from any other version, so mixed-binary
// fleets — much easier to assemble by accident now that RemoteLauncher
// starts workers from per-host binaries — fail loudly instead of folding
// garbage. Version 3 made the wavedone barrier echo the indices the worker
// computed, which the coordinator's frame-integrity check relies on to
// detect result frames lost in transit; version 2 switched the trial
// payloads and job specs to the 128-bit interaction clock's hi/lo word
// pairs (budget_hi/budget_lo, interactions_hi/interactions_lo); version 1
// carried single int64 clock fields, which overflow past n = ⌊√MaxInt64⌋.
const ProtocolVersion = 3

// errProtocolVersion marks a cross-version protocol line: the failure is a
// build mismatch, deterministic across relaunches, so the coordinator
// aborts instead of spending relaunch budget reproducing it.
var errProtocolVersion = errors.New("protocol version mismatch")

// Message types sent by the coordinator.
const (
	// TypeJob opens the session: spec, seed, shard identity, spec hash.
	TypeJob = "job"
	// TypeWave dispatches the global trial-index range [Lo, Hi); the worker
	// runs the indices it owns (congruent to its shard modulo the shard
	// count).
	TypeWave = "wave"
	// TypeHalt asks the worker to exit cleanly.
	TypeHalt = "halt"
)

// Message types sent by the worker.
const (
	// TypeHello acknowledges the job header after verifying the spec hash.
	TypeHello = "hello"
	// TypeResult carries one trial's result payload.
	TypeResult = "result"
	// TypeWaveDone marks the wave barrier: every owned index of [Lo, Hi)
	// has been emitted.
	TypeWaveDone = "wavedone"
	// TypeError aborts the session with a worker-side error.
	TypeError = "error"
)

// Msg is one JSONL protocol line. Fields are populated according to Type;
// unused fields are omitted from the wire form.
type Msg struct {
	// V is the protocol version, always ProtocolVersion.
	V int `json:"v"`
	// Type is one of the Type* constants.
	Type string `json:"type"`
	// Shard and Shards identify the worker in job and hello messages.
	Shard int `json:"shard,omitempty"`
	// Shards is the total shard count.
	Shards int `json:"shards,omitempty"`
	// Seed is the trial-stream family seed (job messages).
	Seed uint64 `json:"seed,omitempty"`
	// Hash is the spec hash (job and hello messages).
	Hash string `json:"hash,omitempty"`
	// Spec is the opaque job specification (job messages).
	Spec json.RawMessage `json:"spec,omitempty"`
	// Lo and Hi bound a wave's global index range (wave and wavedone).
	Lo int `json:"lo,omitempty"`
	// Hi is the wave range's exclusive upper bound.
	Hi int `json:"hi,omitempty"`
	// Indices, when non-empty on a wave message, overrides the modular
	// ownership rule: the worker runs exactly these global indices instead
	// of its share of [Lo, Hi). The coordinator uses it to requeue a dead
	// shard's outstanding indices — to its relaunched incarnation or to a
	// surviving shard — without changing which randomness stream any trial
	// draws (streams depend on the global index alone), and elastic runs
	// dispatch every wave this way so membership changes cannot move work
	// implicitly. On a wavedone message Indices echoes the indices the
	// worker actually computed and emitted, the coordinator's
	// frame-integrity evidence: an echoed index the coordinator never
	// received a result for was lost in transit.
	Indices []int `json:"indices,omitempty"`
	// Trial is the global trial index of a result.
	Trial int `json:"trial"`
	// Data is the trial's result payload (result messages).
	Data json.RawMessage `json:"data,omitempty"`
	// Err describes a worker-side failure (error messages).
	Err string `json:"err,omitempty"`
}

// writeMsg emits one protocol line. The marshaled message and its newline
// go out in a single Write call, so concurrent pipes never interleave
// partial lines.
func writeMsg(w io.Writer, m Msg) error {
	m.V = ProtocolVersion
	b, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("dist: marshal %s message: %w", m.Type, err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("dist: write %s message: %w", m.Type, err)
	}
	return nil
}

// msgReader decodes protocol lines from a stream, with no fixed line-length
// limit (result payloads can be large).
type msgReader struct {
	r *bufio.Reader
}

// newMsgReader wraps a stream in a protocol decoder.
func newMsgReader(r io.Reader) *msgReader {
	return &msgReader{r: bufio.NewReaderSize(r, 1<<16)}
}

// next reads and validates one protocol line. It returns io.EOF untouched
// at a clean end of stream.
func (d *msgReader) next() (Msg, error) {
	line, err := d.r.ReadBytes('\n')
	if err != nil {
		if err == io.EOF && len(line) == 0 {
			return Msg{}, io.EOF
		}
		return Msg{}, fmt.Errorf("dist: read protocol line: %w", err)
	}
	var m Msg
	if err := json.Unmarshal(line, &m); err != nil {
		return Msg{}, fmt.Errorf("dist: bad protocol line %.80q: %w", line, err)
	}
	if m.V != ProtocolVersion {
		return Msg{}, fmt.Errorf("dist: protocol version %d, want %d (%w; version 1 predates the 128-bit interaction clock, version 2 the wavedone integrity echo — rebuild so coordinator and every worker host match)",
			m.V, ProtocolVersion, errProtocolVersion)
	}
	switch m.Type {
	case TypeJob, TypeWave, TypeHalt, TypeHello, TypeResult, TypeWaveDone, TypeError:
	default:
		// Reject unknown frames at the decoder: over a real transport a
		// right-version-wrong-type frame means stream corruption, not a
		// feature gap, and both endpoints' message loops would reject it
		// anyway.
		return Msg{}, fmt.Errorf("dist: unknown protocol message type %q", m.Type)
	}
	return m, nil
}

// HashSpec returns the hex SHA-256 of a job spec's wire bytes. Workers
// verify it against the job header before running anything, and checkpoints
// store it so a resume against a different configuration is rejected
// instead of silently folding incompatible trials.
func HashSpec(spec []byte) string {
	sum := sha256.Sum256(spec)
	return hex.EncodeToString(sum[:])
}

// ShardArg formats a shard identity as the "i/of" form the cmds' hidden
// -shard-worker flag carries.
func ShardArg(shard, shards int) string {
	return fmt.Sprintf("%d/%d", shard, shards)
}

// ParseShardArg parses the "i/of" form produced by ShardArg, validating
// 0 <= i < of.
func ParseShardArg(s string) (shard, shards int, err error) {
	if _, err := fmt.Sscanf(s, "%d/%d", &shard, &shards); err != nil {
		return 0, 0, fmt.Errorf("dist: bad shard argument %q (want i/of): %w", s, err)
	}
	if shards < 1 || shard < 0 || shard >= shards {
		return 0, 0, fmt.Errorf("dist: bad shard argument %q: want 0 <= i < of", s)
	}
	return shard, shards, nil
}
