package dist

import (
	"fmt"
	"io"
)

// TrialRunner computes the results of the given global trial indices,
// calling emit exactly once per index with the trial's encoded payload.
// Implementations must be index-deterministic — the payload for index i may
// depend only on the job spec, the seed, and i — and may emit in any order;
// the coordinator reorders by global index before folding. A returned error
// aborts the whole distributed run.
type TrialRunner func(indices []int, emit func(trial int, data []byte)) error

// BuildRunner constructs a TrialRunner from a job spec and the trial-stream
// family seed. It is how a worker binary turns the opaque spec it received
// over the wire into executable trials; experiment.ShardBuilder provides
// the USD instance.
type BuildRunner func(spec []byte, seed uint64) (TrialRunner, error)

// ShardIndices returns the global trial indices in [lo, hi) owned by the
// shard: those congruent to shard modulo shards. The assignment is a pure
// function of the global index, so wave boundaries never change which shard
// computes a trial.
func ShardIndices(lo, hi, shard, shards int) []int {
	if shards < 1 || shard < 0 || shard >= shards || hi <= lo {
		return nil
	}
	first := lo + ((shard-lo%shards)+shards)%shards
	if first >= hi {
		return nil
	}
	out := make([]int, 0, (hi-first+shards-1)/shards)
	for i := first; i < hi; i += shards {
		out = append(out, i)
	}
	return out
}

// Serve runs the worker side of the protocol on a command stream r and a
// result stream w (a worker process's stdin and stdout): it reads the job
// header, verifies the spec hash and the shard identity against the
// expected one, builds the trial runner, and then serves wave commands
// until a halt or EOF. EOF before halt means the coordinator died (or
// aborted); Serve treats it as a clean shutdown so killed coordinators do
// not leave workers complaining.
func Serve(r io.Reader, w io.Writer, shard, shards int, build BuildRunner) error {
	if build == nil {
		return fmt.Errorf("dist: Serve needs a BuildRunner")
	}
	dec := newMsgReader(r)
	job, err := dec.next()
	if err != nil {
		if err == io.EOF {
			return nil
		}
		return err
	}
	if job.Type != TypeJob {
		return fmt.Errorf("dist: worker expected %s message first, got %s", TypeJob, job.Type)
	}
	if job.Shard != shard || job.Shards != shards {
		return failWorker(w, fmt.Errorf("dist: job addressed to shard %d/%d, serving %d/%d",
			job.Shard, job.Shards, shard, shards))
	}
	if got := HashSpec(job.Spec); got != job.Hash {
		return failWorker(w, fmt.Errorf("dist: spec hash mismatch: coordinator sent %.12s, received bytes hash to %.12s",
			job.Hash, got))
	}
	runner, err := build(job.Spec, job.Seed)
	if err != nil {
		return failWorker(w, fmt.Errorf("dist: build trial runner: %w", err))
	}
	if err := writeMsg(w, Msg{Type: TypeHello, Shard: shard, Shards: shards, Hash: job.Hash}); err != nil {
		return err
	}

	for {
		m, err := dec.next()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		switch m.Type {
		case TypeWave:
			// An explicit index list (a requeued wave) overrides the modular
			// ownership rule; either way every index draws the stream derived
			// from its global position, so who computes it cannot matter.
			indices := m.Indices
			if len(indices) == 0 {
				indices = ShardIndices(m.Lo, m.Hi, shard, shards)
			}
			var emitErr error
			emitted := make([]int, 0, len(indices))
			err := runner(indices, func(trial int, data []byte) {
				if emitErr == nil {
					emitErr = writeMsg(w, Msg{Type: TypeResult, Trial: trial, Data: data})
				}
				emitted = append(emitted, trial)
			})
			if err == nil {
				err = emitErr
			}
			if err != nil {
				return failWorker(w, fmt.Errorf("dist: shard %d wave [%d,%d): %w", shard, m.Lo, m.Hi, err))
			}
			// The barrier echoes the indices actually emitted — the
			// coordinator's frame-integrity evidence: stream ordering puts
			// every result line before this wavedone, so an echoed index the
			// coordinator still lacks a result for was lost in transit.
			if err := writeMsg(w, Msg{Type: TypeWaveDone, Lo: m.Lo, Hi: m.Hi, Indices: emitted}); err != nil {
				return err
			}
		case TypeHalt:
			return nil
		default:
			return failWorker(w, fmt.Errorf("dist: worker got unexpected %s message", m.Type))
		}
	}
}

// failWorker reports a worker-side error to the coordinator (best effort)
// and returns it.
func failWorker(w io.Writer, err error) error {
	_ = writeMsg(w, Msg{Type: TypeError, Err: err.Error()})
	return err
}
