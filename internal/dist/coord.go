package dist

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"
)

// DefaultWave is the coordinator's dispatch wave size when Options.Wave is
// zero. A wave is both the cross-process stop-check barrier and the
// checkpoint granularity: at most one wave of work is lost to an
// interruption or to a stopping predicate firing mid-wave.
const DefaultWave = 16

// DefaultMaxRelaunches is how many times a failed shard worker is
// relaunched before the shard is written off and its index stream is
// redistributed across the survivors (Options.MaxRelaunches = 0).
const DefaultMaxRelaunches = 3

// NoRelaunch, assigned to Options.MaxRelaunches, disables worker recovery
// entirely: the first worker failure aborts the run (the behavior before
// fault tolerance), leaving the checkpoint for a manual resume.
const NoRelaunch = -1

// DefaultRelaunchBackoff is the delay before a shard's first relaunch when
// Options.RelaunchBackoff is zero; each further relaunch of the same shard
// doubles the delay, capped at eight times the base.
const DefaultRelaunchBackoff = 250 * time.Millisecond

// errWorkerKilled is the cause carried by connection ends the coordinator
// force-closed; it shows up in worker-death diagnostics, not in run errors.
var errWorkerKilled = errors.New("worker killed by coordinator")

// Conn is one live worker connection: a writer carrying coordinator
// commands (the worker's stdin) and a reader yielding the worker's protocol
// lines (its stdout).
type Conn struct {
	// W receives coordinator-to-worker protocol lines. The coordinator
	// closes it to signal end of session.
	W io.WriteCloser
	// R yields worker-to-coordinator protocol lines.
	R io.ReadCloser
	// Wait, if non-nil, blocks until the worker has exited and returns its
	// terminal status; the coordinator calls it after closing W and
	// draining R (or after Kill).
	Wait func() error
	// Kill, if non-nil, forcibly terminates the worker so that pending and
	// future reads of R and writes to W fail promptly and Wait returns.
	// The coordinator invokes it when it declares the worker dead (hung or
	// misbehaving); a merely crashed worker needs no help.
	Kill func()

	// mu serializes coordinator writes to W: the shard's sender goroutine
	// and the shutdown path can address the same worker concurrently.
	mu sync.Mutex
}

// send writes one coordinator-to-worker message under the connection's
// write lock.
func (c *Conn) send(m Msg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return writeMsg(c.W, m)
}

// kill forcibly tears a connection down: the launcher-specific Kill first
// (terminating the worker), then both stream ends, unblocking any reader or
// writer goroutine parked on them.
func (c *Conn) kill() {
	if c.Kill != nil {
		c.Kill()
	}
	c.W.Close()
	c.R.Close()
}

// Launcher starts shard workers. ExecLauncher spawns real processes;
// PipeLauncher runs workers as in-process goroutines over synchronous
// pipes, exercising the identical protocol path without processes (used by
// tests and available where re-exec is impossible); FaultLauncher wraps
// either with an injected-fault schedule for chaos testing. Launch may be
// called more than once per shard: the coordinator relaunches failed
// workers (see Options.MaxRelaunches).
type Launcher interface {
	// Launch starts the worker for the given shard and returns its
	// connection.
	Launch(shard, shards int) (*Conn, error)
}

// ExecLauncher launches shard workers as child processes of this process.
// The conventional worker entry point is the launching binary itself with a
// hidden -shard-worker i/of flag that routes main into the protocol loop
// (experiment.ServeShard), so coordinator and workers are always the same
// build.
type ExecLauncher struct {
	// Path is the worker executable; empty means this executable
	// (os.Executable).
	Path string
	// Args returns the worker argv (after the program name) for a shard,
	// typically ["-shard-worker", ShardArg(shard, shards), ...].
	Args func(shard, shards int) []string
	// Env is the worker environment; nil inherits this process's.
	Env []string
	// CoreBudget, when positive, partitions a total CPU-core budget across
	// the worker processes by appending GOMAXPROCS to each worker's
	// environment: worker i receives CoreBudget/shards cores, the first
	// CoreBudget mod shards workers one extra, and every worker at least
	// one. Without it each worker inherits the machine-wide default, so S
	// shards oversubscribe the cores S-fold and multi-shard throughput
	// reads as a regression on a saturated host (the shard_throughput
	// methodology fix).
	CoreBudget int
	// Stderr receives the workers' stderr; nil means this process's stderr,
	// so worker diagnostics stay visible. Every line is prefixed with the
	// worker's "[shard i/S] " identity so interleaved multi-worker output
	// stays attributable.
	Stderr io.Writer
}

// CoreShare returns the GOMAXPROCS value a core budget grants one shard:
// budget/shards, plus one for the first budget mod shards shards, floored
// at one. It is exported so benchmarks can report the partition they
// measured under.
func CoreShare(budget, shard, shards int) int {
	if budget <= 0 || shards <= 0 {
		return 1
	}
	w := budget / shards
	if shard < budget%shards {
		w++
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Launch implements Launcher by spawning one worker process.
func (l *ExecLauncher) Launch(shard, shards int) (*Conn, error) {
	path := l.Path
	if path == "" {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("dist: resolve worker executable: %w", err)
		}
		path = exe
	}
	if l.Args == nil {
		return nil, fmt.Errorf("dist: ExecLauncher needs an Args function")
	}
	cmd := exec.Command(path, l.Args(shard, shards)...)
	// Workers run in their own process group with (on Linux) a
	// parent-death SIGKILL, so a coordinator that dies without running any
	// cleanup — SIGKILL, OOM — cannot leak worker trees; see exec_linux.go.
	setWorkerSysProcAttr(cmd)
	cmd.Env = l.Env
	if l.CoreBudget > 0 {
		env := l.Env
		if env == nil {
			env = os.Environ()
		}
		cmd.Env = append(append([]string(nil), env...),
			fmt.Sprintf("GOMAXPROCS=%d", CoreShare(l.CoreBudget, shard, shards)))
	}
	stderr := l.Stderr
	if stderr == nil {
		stderr = os.Stderr
	}
	cmd.Stderr = &prefixWriter{w: stderr, prefix: []byte(fmt.Sprintf("[shard %s] ", ShardArg(shard, shards)))}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: start shard %d worker: %w", shard, err)
	}
	return &Conn{
		W:    stdin,
		R:    stdout,
		Wait: cmd.Wait,
		// Kill the whole process group, not just the worker: a worker that
		// spawned helpers (or a shell wrapper that spawned the worker) must
		// not leave grandchildren running after the coordinator declares the
		// shard dead.
		Kill: func() { killWorker(cmd) },
	}, nil
}

// prefixWriter stamps a per-worker prefix onto every line written through
// it, buffering nothing: partial lines are remembered across Write calls so
// the prefix lands exactly once per line. Each worker gets its own
// prefixWriter (its own mid-line state) over the shared destination, and
// each Write forwards as a single underlying Write so concurrent workers'
// lines do not interleave mid-line.
type prefixWriter struct {
	w       io.Writer
	prefix  []byte
	midline bool
}

// Write implements io.Writer.
func (p *prefixWriter) Write(b []byte) (int, error) {
	var buf bytes.Buffer
	rest := b
	for len(rest) > 0 {
		if !p.midline {
			buf.Write(p.prefix)
			p.midline = true
		}
		i := bytes.IndexByte(rest, '\n')
		if i < 0 {
			buf.Write(rest)
			rest = nil
		} else {
			buf.Write(rest[:i+1])
			rest = rest[i+1:]
			p.midline = false
		}
	}
	if _, err := p.w.Write(buf.Bytes()); err != nil {
		return 0, err
	}
	return len(b), nil
}

// SelfExecLauncher returns an ExecLauncher that re-executes this binary as
// its own shard workers, passing the hidden -shard-worker i/of flag
// followed by extraArgs. It is the one place the worker-mode argv is
// spelled, shared by every CLI that exposes -shards, so coordinator and
// worker cannot drift apart.
func SelfExecLauncher(extraArgs ...string) *ExecLauncher {
	return &ExecLauncher{Args: func(shard, shards int) []string {
		return append([]string{"-shard-worker", ShardArg(shard, shards)}, extraArgs...)
	}}
}

// PipeLauncher runs shard workers as goroutines inside this process,
// connected through synchronous in-memory pipes. The coordinator speaks
// exactly the same protocol as with ExecLauncher — every line is marshaled,
// written, read, and parsed — so tests of the distributed path cover the
// full codec without spawning processes.
type PipeLauncher struct {
	// Build constructs each worker's trial runner from the job spec.
	Build BuildRunner
}

// Launch implements Launcher by serving the worker protocol on a goroutine.
func (l *PipeLauncher) Launch(shard, shards int) (*Conn, error) {
	if l.Build == nil {
		return nil, fmt.Errorf("dist: PipeLauncher needs a Build function")
	}
	workerIn, coordOut := io.Pipe() // coordinator writes -> worker reads
	coordIn, workerOut := io.Pipe() // worker writes -> coordinator reads
	errc := make(chan error, 1)
	go func() {
		err := Serve(workerIn, workerOut, shard, shards, l.Build)
		// Closing the worker's ends unblocks both sides: the coordinator's
		// reader sees EOF (or the serve error), and any still-pending
		// coordinator write fails instead of blocking forever.
		workerOut.CloseWithError(err)
		workerIn.CloseWithError(err)
		errc <- err
	}()
	return &Conn{
		W:    coordOut,
		R:    coordIn,
		Wait: func() error { return <-errc },
		Kill: func() {
			// There is no process to signal; severing the coordinator-side
			// pipe ends makes the worker goroutine's reads and writes fail,
			// which is as killed as an in-process worker gets.
			coordOut.CloseWithError(errWorkerKilled)
			coordIn.CloseWithError(errWorkerKilled)
		},
	}, nil
}

// Options configure a distributed run.
type Options struct {
	// Shards is the number of worker processes; at least 1.
	Shards int
	// MaxTrials is the trial budget: the fixed count when Stop is nil, the
	// hard cap when it is not. Must be positive.
	MaxTrials int
	// Wave is the dispatch wave size (DefaultWave when zero): the stop-check
	// barrier and checkpoint granularity.
	Wave int
	// Seed is the trial-stream family seed, forwarded to every worker;
	// trial i draws from rng.Derive(Seed, i) exactly as in-process runs do.
	Seed uint64
	// Spec is the opaque job specification broadcast to workers. Its bytes
	// are hashed to guard checkpoints and worker handshakes, so equal
	// configurations must serialize to equal bytes.
	Spec []byte
	// Launcher starts the workers — and restarts them: after a worker
	// failure the coordinator calls Launch again for the same shard.
	// Required.
	Launcher Launcher
	// CheckpointPath, when non-empty, makes the run write a checkpoint
	// after every folded wave and resume from an existing one. Requires a
	// non-nil State in Run.
	CheckpointPath string
	// Policy is an opaque identity of the caller's stopping policy (for
	// example "adaptive rel=0.05" or "fixed"). It is recorded in the
	// checkpoint and compared on resume, so a run resumed under a
	// different policy is rejected instead of producing a stop point that
	// matches neither configuration. The stop predicate itself is code
	// and cannot be verified; Policy is the caller's declaration of it.
	Policy string
	// MaxWaves, when positive, bounds how many waves this invocation folds
	// before halting with Result.Interrupted set — time-sliced operation:
	// a later invocation with the same CheckpointPath continues where this
	// one stopped. Requires CheckpointPath (an interrupted run without a
	// checkpoint would be unresumable, its folded progress unrecoverable).
	MaxWaves int
	// WorkerTimeout, when positive, is the per-shard liveness deadline: a
	// worker that is busy (mid-handshake, or owing dispatched trials) and
	// has produced no protocol line for this long is declared dead and
	// recovered exactly like a crashed one. Zero disables the deadline,
	// and a hung worker then blocks the run forever. Set it comfortably
	// above the cost of the slowest single trial: workers emit results as
	// trials finish, so any healthy busy worker speaks at least that often.
	WorkerTimeout time.Duration
	// MaxRelaunches caps how many times one shard's failed worker is
	// relaunched (with backoff) before the shard is written off and its
	// outstanding and future trial indices are redistributed across the
	// surviving shards. Zero means DefaultMaxRelaunches; NoRelaunch
	// disables recovery entirely, making the first worker failure fatal.
	MaxRelaunches int
	// RelaunchBackoff is the delay before a failed shard's first relaunch
	// (DefaultRelaunchBackoff when zero); each further relaunch of the
	// same shard doubles it, capped at eight times the base.
	RelaunchBackoff time.Duration
	// Elastic switches the coordinator to elastic membership: every wave is
	// dispatched as explicit-index assignments balanced across the current
	// member set instead of by the modular ownership rule, so members may
	// join (see Join) and leave mid-run without changing which randomness
	// stream any trial draws — the fold stays byte-identical to the fixed
	// single-process run. A departing member is handled exactly like a lost
	// shard: its outstanding indices are requeued and its own launcher is
	// asked to relaunch it (budget and backoff as usual) before its stream
	// is redistributed across the remaining members.
	Elastic bool
	// Join, when non-nil, admits new members mid-run (it implies Elastic):
	// each Launcher received is launched as an additional member slot,
	// handshakes against the same spec hash, and is dealt its balanced
	// share of every subsequently dispatched wave. Joiners keep their own
	// Launcher for relaunches. Close or abandon the channel freely; the
	// coordinator never blocks on it.
	Join <-chan Launcher
	// Interrupt, when non-nil, requests a graceful early exit once it is
	// closed: the coordinator finishes folding the wave in flight, writes
	// its checkpoint, halts the workers, and returns with
	// Result.Interrupted set. The cmds wire SIGINT/SIGTERM to it.
	Interrupt <-chan struct{}
	// Log receives fault-tolerance diagnostics (worker deaths, relaunches,
	// redistributions). Nil means os.Stderr; use io.Discard to silence.
	Log io.Writer
}

// Result reports how a distributed run ended.
type Result struct {
	// Trials is the number of trials folded into the sink across the whole
	// run, including any folded before a resume.
	Trials int
	// Stopped reports that the stopping predicate fired; false means the
	// MaxTrials cap was reached (or the run was interrupted).
	Stopped bool
	// Waves is the cumulative number of folded waves, including waves
	// folded before a resume.
	Waves int
	// ResumedFrom is the trial index this invocation resumed from; 0 means
	// a fresh start.
	ResumedFrom int
	// Interrupted reports that Options.MaxWaves or Options.Interrupt
	// halted the run before completion; the checkpoint holds the resume
	// point.
	Interrupted bool
	// Relaunches counts the worker relaunches this invocation performed
	// after worker failures.
	Relaunches int
	// Requeued counts the trial-index dispatches that re-sent work after a
	// worker failure — to a relaunched worker or to a surviving shard. It
	// can exceed the number of distinct requeued indices when a requeued
	// trial's new owner fails too.
	Requeued int
	// Joined counts the members admitted mid-run through Options.Join.
	Joined int
}
