package dist

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
)

// DefaultWave is the coordinator's dispatch wave size when Options.Wave is
// zero. A wave is both the cross-process stop-check barrier and the
// checkpoint granularity: at most one wave of work is lost to an
// interruption or to a stopping predicate firing mid-wave.
const DefaultWave = 16

// Conn is one live worker connection: a writer carrying coordinator
// commands (the worker's stdin) and a reader yielding the worker's protocol
// lines (its stdout).
type Conn struct {
	// W receives coordinator-to-worker protocol lines. The coordinator
	// closes it to signal end of session.
	W io.WriteCloser
	// R yields worker-to-coordinator protocol lines.
	R io.ReadCloser
	// Wait, if non-nil, blocks until the worker has exited and returns its
	// terminal status; the coordinator calls it after closing W and
	// draining R.
	Wait func() error

	// mu serializes coordinator writes to W: with wave pipelining the
	// dispatch goroutine and the shutdown path can address the same worker
	// concurrently.
	mu sync.Mutex
}

// send writes one coordinator-to-worker message under the connection's
// write lock.
func (c *Conn) send(m Msg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return writeMsg(c.W, m)
}

// Launcher starts shard workers. ExecLauncher spawns real processes;
// PipeLauncher runs workers as in-process goroutines over synchronous
// pipes, exercising the identical protocol path without processes (used by
// tests and available where re-exec is impossible).
type Launcher interface {
	// Launch starts the worker for the given shard and returns its
	// connection.
	Launch(shard, shards int) (*Conn, error)
}

// ExecLauncher launches shard workers as child processes of this process.
// The conventional worker entry point is the launching binary itself with a
// hidden -shard-worker i/of flag that routes main into the protocol loop
// (experiment.ServeShard), so coordinator and workers are always the same
// build.
type ExecLauncher struct {
	// Path is the worker executable; empty means this executable
	// (os.Executable).
	Path string
	// Args returns the worker argv (after the program name) for a shard,
	// typically ["-shard-worker", ShardArg(shard, shards), ...].
	Args func(shard, shards int) []string
	// Env is the worker environment; nil inherits this process's.
	Env []string
	// CoreBudget, when positive, partitions a total CPU-core budget across
	// the worker processes by appending GOMAXPROCS to each worker's
	// environment: worker i receives CoreBudget/shards cores, the first
	// CoreBudget mod shards workers one extra, and every worker at least
	// one. Without it each worker inherits the machine-wide default, so S
	// shards oversubscribe the cores S-fold and multi-shard throughput
	// reads as a regression on a saturated host (the shard_throughput
	// methodology fix).
	CoreBudget int
	// Stderr receives the workers' stderr; nil means this process's stderr,
	// so worker diagnostics stay visible.
	Stderr io.Writer
}

// CoreShare returns the GOMAXPROCS value a core budget grants one shard:
// budget/shards, plus one for the first budget mod shards shards, floored
// at one. It is exported so benchmarks can report the partition they
// measured under.
func CoreShare(budget, shard, shards int) int {
	if budget <= 0 || shards <= 0 {
		return 1
	}
	w := budget / shards
	if shard < budget%shards {
		w++
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Launch implements Launcher by spawning one worker process.
func (l *ExecLauncher) Launch(shard, shards int) (*Conn, error) {
	path := l.Path
	if path == "" {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("dist: resolve worker executable: %w", err)
		}
		path = exe
	}
	if l.Args == nil {
		return nil, fmt.Errorf("dist: ExecLauncher needs an Args function")
	}
	cmd := exec.Command(path, l.Args(shard, shards)...)
	cmd.Env = l.Env
	if l.CoreBudget > 0 {
		env := l.Env
		if env == nil {
			env = os.Environ()
		}
		cmd.Env = append(append([]string(nil), env...),
			fmt.Sprintf("GOMAXPROCS=%d", CoreShare(l.CoreBudget, shard, shards)))
	}
	if l.Stderr != nil {
		cmd.Stderr = l.Stderr
	} else {
		cmd.Stderr = os.Stderr
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: start shard %d worker: %w", shard, err)
	}
	return &Conn{W: stdin, R: stdout, Wait: cmd.Wait}, nil
}

// SelfExecLauncher returns an ExecLauncher that re-executes this binary as
// its own shard workers, passing the hidden -shard-worker i/of flag
// followed by extraArgs. It is the one place the worker-mode argv is
// spelled, shared by every CLI that exposes -shards, so coordinator and
// worker cannot drift apart.
func SelfExecLauncher(extraArgs ...string) *ExecLauncher {
	return &ExecLauncher{Args: func(shard, shards int) []string {
		return append([]string{"-shard-worker", ShardArg(shard, shards)}, extraArgs...)
	}}
}

// PipeLauncher runs shard workers as goroutines inside this process,
// connected through synchronous in-memory pipes. The coordinator speaks
// exactly the same protocol as with ExecLauncher — every line is marshaled,
// written, read, and parsed — so tests of the distributed path cover the
// full codec without spawning processes.
type PipeLauncher struct {
	// Build constructs each worker's trial runner from the job spec.
	Build BuildRunner
}

// Launch implements Launcher by serving the worker protocol on a goroutine.
func (l *PipeLauncher) Launch(shard, shards int) (*Conn, error) {
	if l.Build == nil {
		return nil, fmt.Errorf("dist: PipeLauncher needs a Build function")
	}
	workerIn, coordOut := io.Pipe() // coordinator writes -> worker reads
	coordIn, workerOut := io.Pipe() // worker writes -> coordinator reads
	errc := make(chan error, 1)
	go func() {
		err := Serve(workerIn, workerOut, shard, shards, l.Build)
		// Closing the worker's ends unblocks both sides: the coordinator's
		// reader sees EOF (or the serve error), and any still-pending
		// coordinator write fails instead of blocking forever.
		workerOut.CloseWithError(err)
		workerIn.CloseWithError(err)
		errc <- err
	}()
	return &Conn{W: coordOut, R: coordIn, Wait: func() error { return <-errc }}, nil
}

// Options configure a distributed run.
type Options struct {
	// Shards is the number of worker processes; at least 1.
	Shards int
	// MaxTrials is the trial budget: the fixed count when Stop is nil, the
	// hard cap when it is not. Must be positive.
	MaxTrials int
	// Wave is the dispatch wave size (DefaultWave when zero): the stop-check
	// barrier and checkpoint granularity.
	Wave int
	// Seed is the trial-stream family seed, forwarded to every worker;
	// trial i draws from rng.Derive(Seed, i) exactly as in-process runs do.
	Seed uint64
	// Spec is the opaque job specification broadcast to workers. Its bytes
	// are hashed to guard checkpoints and worker handshakes, so equal
	// configurations must serialize to equal bytes.
	Spec []byte
	// Launcher starts the workers. Required.
	Launcher Launcher
	// CheckpointPath, when non-empty, makes the run write a checkpoint
	// after every folded wave and resume from an existing one. Requires a
	// non-nil State in Run.
	CheckpointPath string
	// Policy is an opaque identity of the caller's stopping policy (for
	// example "adaptive rel=0.05" or "fixed"). It is recorded in the
	// checkpoint and compared on resume, so a run resumed under a
	// different policy is rejected instead of producing a stop point that
	// matches neither configuration. The stop predicate itself is code
	// and cannot be verified; Policy is the caller's declaration of it.
	Policy string
	// MaxWaves, when positive, bounds how many waves this invocation folds
	// before halting with Result.Interrupted set — time-sliced operation:
	// a later invocation with the same CheckpointPath continues where this
	// one stopped. Requires CheckpointPath (an interrupted run without a
	// checkpoint would be unresumable, its folded progress unrecoverable).
	MaxWaves int
}

// Result reports how a distributed run ended.
type Result struct {
	// Trials is the number of trials folded into the sink across the whole
	// run, including any folded before a resume.
	Trials int
	// Stopped reports that the stopping predicate fired; false means the
	// MaxTrials cap was reached (or the run was interrupted).
	Stopped bool
	// Waves is the cumulative number of folded waves, including waves
	// folded before a resume.
	Waves int
	// ResumedFrom is the trial index this invocation resumed from; 0 means
	// a fresh start.
	ResumedFrom int
	// Interrupted reports that Options.MaxWaves halted the run before
	// completion; the checkpoint holds the resume point.
	Interrupted bool
}

// shardMsg is one worker line tagged with its shard, as pumped to the fold
// loop.
type shardMsg struct {
	shard int
	m     Msg
	err   error
}

// Run executes a distributed trial run: it launches Options.Shards workers,
// partitions each wave's global trial indices across them (index i belongs
// to shard i mod Shards), folds the returned payloads into sink strictly in
// global trial-index order, and evaluates stop after every fold, exactly as
// experiment.StreamAdaptive does in process — so the folded prefix, and
// every order-sensitive aggregate built from it, is byte-identical to the
// single-process run of the same spec and seed at every shard count.
//
// stop may be nil for a fixed MaxTrials run. A non-nil sink error aborts
// the run. state carries the caller's aggregates for checkpointing; it is
// required when Options.CheckpointPath is set and may be nil otherwise.
func Run(opts Options, sink func(trial int, data []byte) error, stop func() bool, state State) (Result, error) {
	if opts.Shards < 1 {
		return Result{}, fmt.Errorf("dist: Shards = %d, want >= 1", opts.Shards)
	}
	if opts.MaxTrials < 1 {
		return Result{}, fmt.Errorf("dist: MaxTrials = %d, want >= 1", opts.MaxTrials)
	}
	if opts.Launcher == nil {
		return Result{}, fmt.Errorf("dist: Options.Launcher is required")
	}
	if sink == nil {
		return Result{}, fmt.Errorf("dist: sink is required")
	}
	if opts.CheckpointPath != "" && state == nil {
		return Result{}, fmt.Errorf("dist: CheckpointPath is set but no State was provided")
	}
	if opts.MaxWaves > 0 && opts.CheckpointPath == "" {
		return Result{}, fmt.Errorf("dist: MaxWaves without CheckpointPath would interrupt unresumably")
	}
	wave := opts.Wave
	if wave <= 0 {
		wave = DefaultWave
	}
	hash := HashSpec(opts.Spec)

	res := Result{}
	start := 0
	if opts.CheckpointPath != "" {
		cp, ok, err := loadCheckpoint(opts.CheckpointPath, hash, opts.Seed, opts.MaxTrials, opts.Policy)
		if err != nil {
			return Result{}, err
		}
		if ok {
			if err := state.Restore(cp.State); err != nil {
				return Result{}, fmt.Errorf("dist: restore state from checkpoint: %w", err)
			}
			start = cp.NextTrial
			res.ResumedFrom = cp.NextTrial
			res.Waves = cp.Waves
			if cp.Done {
				// The run already finished; the restored state is the final
				// aggregate, so report its recorded outcome without
				// launching anything.
				res.Trials = cp.NextTrial
				res.Stopped = cp.Stopped
				return res, nil
			}
		}
	}

	conns, msgs, cleanup, err := launchWorkers(opts, hash)
	if err != nil {
		return res, err
	}
	defer cleanup()

	// The wave schedule of this invocation, fixed up front: consecutive
	// [lo, hi) ranges from the resume point to the trial cap, truncated to
	// MaxWaves when time-slicing.
	type waveRange struct{ lo, hi int }
	var waves []waveRange
	for lo := start; lo < opts.MaxTrials; lo += wave {
		hi := lo + wave
		if hi > opts.MaxTrials {
			hi = opts.MaxTrials
		}
		waves = append(waves, waveRange{lo, hi})
	}
	interrupted := false
	if opts.MaxWaves > 0 && opts.MaxWaves < len(waves) {
		waves = waves[:opts.MaxWaves]
		interrupted = true
	}

	// Wave pipelining: a dispatch goroutine keeps up to pipelineDepth waves
	// outstanding, so workers begin wave w+1 the moment they finish wave w
	// while the coordinator is still folding, checkpointing, and stop-
	// checking wave w. Folding order, the stop point, and checkpoint
	// granularity are untouched — pipelining only removes the worker idle
	// time at each fold. Depth 2 is exactly "one wave ahead of the fold":
	// more would only grow the discard pile when a stopping predicate fires.
	const pipelineDepth = 2
	sem := make(chan struct{}, pipelineDepth)
	quit := make(chan struct{})
	stopSender := sync.OnceFunc(func() { close(quit) })
	defer stopSender()
	sendErr := make(chan error, 1)
	// dispatched counts waves delivered to every shard. A dispatch failure
	// on wave w must not discard waves before w, whose results are complete
	// or arriving: the fold loop keeps folding (and checkpointing) up to the
	// last fully dispatched wave and surfaces the error only when the
	// schedule reaches the failed one — so a killed coordinator loses at
	// most the undispatched tail, exactly as without pipelining.
	var dispatched atomic.Int64
	go func() {
		for _, wv := range waves {
			select {
			case <-quit:
				return
			case sem <- struct{}{}:
			}
			for _, c := range conns {
				if err := c.send(Msg{Type: TypeWave, Lo: wv.lo, Hi: wv.hi}); err != nil {
					select {
					case sendErr <- fmt.Errorf("dist: dispatch wave [%d,%d): %w", wv.lo, wv.hi, err):
					default:
					}
					return
				}
			}
			dispatched.Add(1)
		}
	}()

	// pending accumulates results by global trial index; with pipelining it
	// can hold (parts of) the next wave while the current one folds, so it
	// is only cleared wholesale when a stop discards in-flight work.
	// waveDones counts wavedone barriers per wave start, because a fast
	// shard can finish wave w+1 before a slow one finishes wave w.
	pending := make(map[int][]byte, pipelineDepth*wave)
	waveDones := make(map[int]int, pipelineDepth)
	done := start
	var dispatchErr error
	for wi, wv := range waves {
		// The wave barrier: every shard reports wavedone for [lo, hi).
		for waveDones[wv.lo] < len(conns) {
			// A recorded dispatch failure aborts only once this wave is the
			// failed (never fully dispatched) one; earlier waves' barriers
			// are still satisfiable and their folds still checkpoint.
			if dispatchErr != nil && int64(wi) >= dispatched.Load() {
				res.Trials = done
				return res, dispatchErr
			}
			select {
			case err := <-sendErr:
				dispatchErr = err
				continue
			case sm := <-msgs:
				switch {
				case sm.err != nil:
					res.Trials = done
					return res, fmt.Errorf("dist: shard %d: %w", sm.shard, sm.err)
				case sm.m.Type == TypeResult:
					pending[sm.m.Trial] = sm.m.Data
				case sm.m.Type == TypeWaveDone:
					waveDones[sm.m.Lo]++
				case sm.m.Type == TypeError:
					res.Trials = done
					return res, fmt.Errorf("dist: shard %d failed: %s", sm.shard, sm.m.Err)
				default:
					res.Trials = done
					return res, fmt.Errorf("dist: shard %d sent unexpected %s message", sm.shard, sm.m.Type)
				}
			}
		}
		delete(waveDones, wv.lo)
		// Fold the wave strictly in global index order, consulting the
		// stopping predicate after every fold — the same contract as the
		// in-process engines, so the stop point cannot depend on shard
		// count or scheduling. Results past a mid-wave stop are discarded,
		// bounding the waste at the pipeline depth.
		stopped := false
		for i := wv.lo; i < wv.hi && !stopped; i++ {
			data, ok := pending[i]
			if !ok {
				res.Trials = done
				return res, fmt.Errorf("dist: wave [%d,%d) is missing trial %d", wv.lo, wv.hi, i)
			}
			delete(pending, i)
			if err := sink(i, data); err != nil {
				res.Trials = done
				return res, fmt.Errorf("dist: fold trial %d: %w", i, err)
			}
			done++
			if stop != nil && stop() {
				stopped = true
			}
		}
		<-sem
		res.Waves++
		res.Trials = done
		res.Stopped = stopped
		if opts.CheckpointPath != "" {
			cp := Checkpoint{
				Hash:      hash,
				Seed:      opts.Seed,
				Policy:    opts.Policy,
				NextTrial: done,
				MaxTrials: opts.MaxTrials,
				Waves:     res.Waves,
				Done:      stopped || done >= opts.MaxTrials,
				Stopped:   stopped,
			}
			if err := saveCheckpoint(opts.CheckpointPath, cp, state); err != nil {
				return res, err
			}
		}
		if stopped {
			return res, nil
		}
	}
	res.Interrupted = interrupted
	return res, nil
}

// launchWorkers starts every shard, performs the job/hello handshake, and
// returns the connections plus a channel merging all worker messages. The
// returned cleanup halts the workers (best effort), drains their streams,
// and reaps them; it is safe to call on every exit path, including mid-wave
// aborts with results still in flight.
func launchWorkers(opts Options, hash string) ([]*Conn, chan shardMsg, func(), error) {
	conns := make([]*Conn, 0, opts.Shards)
	var readers sync.WaitGroup
	readersStarted := 0
	msgs := make(chan shardMsg, opts.Shards)
	cleanup := func() {
		// Drain concurrently with halting: a worker still mid-wave keeps
		// emitting results until it reaches the barrier, and those writes
		// must keep flowing (reader goroutine -> msgs -> this drain) or the
		// worker would never get around to reading the halt. Synchronous
		// in-process pipes (PipeLauncher) would deadlock otherwise.
		drained := make(chan struct{})
		go func() {
			readers.Wait()
			close(msgs)
		}()
		go func() {
			for range msgs {
			}
			close(drained)
		}()
		var halts sync.WaitGroup
		for i, c := range conns {
			halts.Add(1)
			go func(i int, c *Conn) {
				defer halts.Done()
				if i >= readersStarted {
					// No reader owns this stream yet (handshake-phase
					// failure); close it so a worker blocked writing its
					// hello unblocks and can observe the hangup.
					c.R.Close()
				}
				// Halting is best-effort: a worker that already exited (or
				// died) just yields a write error here. The locked send
				// serializes against a dispatch goroutine still mid-write on
				// the same connection.
				_ = c.send(Msg{Type: TypeHalt})
				c.W.Close()
			}(i, c)
		}
		halts.Wait()
		<-drained
		for _, c := range conns {
			if c.Wait != nil {
				_ = c.Wait()
			}
		}
	}
	fail := func(err error) ([]*Conn, chan shardMsg, func(), error) {
		cleanup()
		return nil, nil, nil, err
	}

	for shard := 0; shard < opts.Shards; shard++ {
		c, err := opts.Launcher.Launch(shard, opts.Shards)
		if err != nil {
			return fail(fmt.Errorf("dist: launch shard %d: %w", shard, err))
		}
		conns = append(conns, c)
		if err := c.send(Msg{
			Type:   TypeJob,
			Shard:  shard,
			Shards: opts.Shards,
			Seed:   opts.Seed,
			Hash:   hash,
			Spec:   opts.Spec,
		}); err != nil {
			return fail(fmt.Errorf("dist: send job to shard %d: %w", shard, err))
		}
	}
	// Handshake sequentially: every worker must verify the spec hash and
	// greet before any wave is dispatched.
	for shard, c := range conns {
		dec := newMsgReader(c.R)
		m, err := dec.next()
		if err != nil {
			return fail(fmt.Errorf("dist: shard %d handshake: %w", shard, err))
		}
		if m.Type == TypeError {
			return fail(fmt.Errorf("dist: shard %d rejected job: %s", shard, m.Err))
		}
		if m.Type != TypeHello || m.Shard != shard || m.Hash != hash {
			return fail(fmt.Errorf("dist: shard %d sent bad hello (type %s, shard %d, hash %.12s)",
				shard, m.Type, m.Shard, m.Hash))
		}
		readers.Add(1)
		readersStarted++
		go func(shard int, dec *msgReader) {
			defer readers.Done()
			for {
				m, err := dec.next()
				if err != nil {
					// EOF mid-wave means the worker died; surfacing it keeps
					// the barrier from waiting forever. On the normal halt
					// path the message is drained unseen by cleanup.
					if err == io.EOF {
						err = fmt.Errorf("worker exited")
					}
					msgs <- shardMsg{shard: shard, err: err}
					return
				}
				msgs <- shardMsg{shard: shard, m: m}
			}
		}(shard, dec)
	}
	return conns, msgs, cleanup, nil
}
