package dist

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"
)

// distWorkerFlag routes the test binary into worker mode when TestMain sees
// it in argv — the same self-re-exec pattern the cmds use with their hidden
// -shard-worker flag, so ExecLauncher is exercised against real processes.
const distWorkerFlag = "-dist-test-worker="

// distSignalFlag routes the test binary into a mock coordinator that
// installs InterruptOnSignal, so the signal contract — graceful first
// signal, hard exit 130 on the second — is testable against a real process.
const distSignalFlag = "-dist-test-signal"

// distOrphanFlag routes the test binary into a mock coordinator that
// launches one long-lived worker through ExecLauncher, reports the worker's
// pid on stdout, and then hangs. The orphan regression test SIGKILLs this
// process and requires the worker to die with it.
const distOrphanFlag = "-dist-test-orphan"

// TestMain intercepts the re-exec modes of the test binary before the
// testing framework parses flags.
func TestMain(m *testing.M) {
	for _, arg := range os.Args[1:] {
		switch {
		case strings.HasPrefix(arg, distWorkerFlag):
			shard, shards, err := ParseShardArg(strings.TrimPrefix(arg, distWorkerFlag))
			if err == nil {
				err = Serve(os.Stdin, os.Stdout, shard, shards, echoBuild)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "dist test worker:", err)
				os.Exit(1)
			}
			os.Exit(0)
		case arg == distSignalFlag:
			done := InterruptOnSignal(os.Stderr)
			fmt.Println("ready")
			<-done
			fmt.Println("graceful")
			select {} // park: only a second signal's os.Exit(130) ends this process
		case arg == distOrphanFlag:
			l := &ExecLauncher{
				Path: "/bin/sh",
				Args: func(shard, shards int) []string { return []string{"-c", "echo $$; sleep 300"} },
			}
			c, err := l.Launch(0, 1)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dist test orphan:", err)
				os.Exit(1)
			}
			var pid int
			if _, err := fmt.Fscan(c.R, &pid); err != nil {
				fmt.Fprintln(os.Stderr, "dist test orphan: read worker pid:", err)
				os.Exit(1)
			}
			fmt.Println("workerpid", pid)
			select {} // park: the test SIGKILLs us; the worker must die too
		}
	}
	os.Exit(m.Run())
}

// TestExecLauncherEndToEnd runs a coordinator against real worker
// processes (this test binary re-executed in worker mode) and checks the
// folded sequence matches the in-process PipeLauncher run exactly.
func TestExecLauncherEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	spec := []byte(`{"job":"echo-exec"}`)
	const trials = 21
	opts := Options{Shards: 3, MaxTrials: trials, Wave: 4, Seed: 11, Spec: spec}

	ref, refRes := runEcho(t, opts, nil)

	execOpts := opts
	execOpts.Launcher = &ExecLauncher{
		Path: os.Args[0],
		Args: func(shard, shards int) []string {
			return []string{distWorkerFlag + ShardArg(shard, shards)}
		},
	}
	st := &foldState{}
	res, err := Run(execOpts, st.sink, nil, st)
	if err != nil {
		t.Fatalf("exec run: %v", err)
	}
	if res != refRes {
		t.Fatalf("exec result %+v, pipe result %+v", res, refRes)
	}
	if !reflect.DeepEqual(st.Seq, ref.Seq) {
		t.Fatalf("exec-launcher fold diverged from in-process fold")
	}
}

// TestExecLauncherWorkerRejectsBadJob checks the process-level handshake
// failure path: a worker addressed as the wrong shard reports an error and
// the coordinator aborts.
func TestExecLauncherWorkerRejectsBadJob(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	st := &foldState{}
	_, err := Run(Options{
		Shards: 1, MaxTrials: 4, Seed: 1, Spec: []byte(`{}`),
		Launcher: &ExecLauncher{
			Path: os.Args[0],
			Args: func(shard, shards int) []string {
				// Deliberately mis-addressed: the worker serves 1/2 but the
				// job header says 0/1.
				return []string{distWorkerFlag + ShardArg(1, 2)}
			},
			Stderr: devNull{},
		},
	}, st.sink, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "shard 0") {
		t.Fatalf("expected handshake rejection, got %v", err)
	}
}

// devNull swallows worker stderr so the expected failure does not pollute
// test output.
type devNull struct{}

func (devNull) Write(p []byte) (int, error) { return len(p), nil }

// waitGone polls a pid until the process is gone, failing the test if it is
// still alive after the deadline.
func waitGone(t *testing.T, pid int, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if err := syscall.Kill(pid, 0); err != nil {
			return // ESRCH: gone
		}
		time.Sleep(10 * time.Millisecond)
	}
	syscall.Kill(pid, syscall.SIGKILL) // do not leak it past the test
	t.Fatalf("%s (pid %d) is still alive", what, pid)
}

// TestInterruptOnSignalSecondSignalHardExit drives the two-signal contract
// against a real process: the first SIGINT closes the interrupt channel (the
// mock coordinator prints "graceful"), the second exits immediately with
// status 130.
func TestInterruptOnSignalSecondSignalHardExit(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	cmd := exec.Command(os.Args[0], distSignalFlag)
	cmd.Stderr = devNull{}
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	br := bufio.NewReader(out)
	expect := func(want string) {
		t.Helper()
		line, err := br.ReadString('\n')
		if err != nil || strings.TrimSpace(line) != want {
			t.Fatalf("expected %q from the mock coordinator, got %q (%v)", want, line, err)
		}
	}
	expect("ready")
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	expect("graceful")
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 130 {
		t.Fatalf("second signal exit: %v, want exit status 130", err)
	}
}

// TestExecLauncherNoOrphanOnCoordinatorKill is the orphan regression test:
// SIGKILL a coordinator mid-run — no deferred cleanup runs — and its worker
// must still die (parent-death signaling), never lingering as an orphan.
func TestExecLauncherNoOrphanOnCoordinatorKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	if runtime.GOOS != "linux" {
		t.Skip("parent-death signaling is linux-only")
	}
	cmd := exec.Command(os.Args[0], distOrphanFlag)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	var tag string
	var workerPid int
	if _, err := fmt.Fscan(bufio.NewReader(out), &tag, &workerPid); err != nil || tag != "workerpid" {
		t.Fatalf("read worker pid: %q %d (%v)", tag, workerPid, err)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no chance to clean up
		t.Fatal(err)
	}
	cmd.Wait()
	waitGone(t, workerPid, "orphaned worker")
}

// TestExecLauncherKillKillsProcessGroup checks Conn.Kill takes out the
// worker's whole process group: a worker that forked a grandchild (as a
// shell wrapper would) leaves nothing behind.
func TestExecLauncherKillKillsProcessGroup(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	if runtime.GOOS != "linux" {
		t.Skip("process-group kill is linux-only")
	}
	l := &ExecLauncher{
		Path: "/bin/sh",
		Args: func(shard, shards int) []string {
			return []string{"-c", "sleep 300 & echo $$ $!; wait"}
		},
	}
	c, err := l.Launch(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	var shPid, grandchildPid int
	if _, err := fmt.Fscan(c.R, &shPid, &grandchildPid); err != nil {
		t.Fatalf("read pids: %v", err)
	}
	c.Kill()
	c.Wait()
	waitGone(t, shPid, "worker shell")
	waitGone(t, grandchildPid, "worker grandchild")
}
