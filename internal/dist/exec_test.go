package dist

import (
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"
)

// distWorkerFlag routes the test binary into worker mode when TestMain sees
// it in argv — the same self-re-exec pattern the cmds use with their hidden
// -shard-worker flag, so ExecLauncher is exercised against real processes.
const distWorkerFlag = "-dist-test-worker="

// TestMain intercepts worker-mode invocations of the test binary before the
// testing framework parses flags.
func TestMain(m *testing.M) {
	for _, arg := range os.Args[1:] {
		if !strings.HasPrefix(arg, distWorkerFlag) {
			continue
		}
		shard, shards, err := ParseShardArg(strings.TrimPrefix(arg, distWorkerFlag))
		if err == nil {
			err = Serve(os.Stdin, os.Stdout, shard, shards, echoBuild)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "dist test worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestExecLauncherEndToEnd runs a coordinator against real worker
// processes (this test binary re-executed in worker mode) and checks the
// folded sequence matches the in-process PipeLauncher run exactly.
func TestExecLauncherEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	spec := []byte(`{"job":"echo-exec"}`)
	const trials = 21
	opts := Options{Shards: 3, MaxTrials: trials, Wave: 4, Seed: 11, Spec: spec}

	ref, refRes := runEcho(t, opts, nil)

	execOpts := opts
	execOpts.Launcher = &ExecLauncher{
		Path: os.Args[0],
		Args: func(shard, shards int) []string {
			return []string{distWorkerFlag + ShardArg(shard, shards)}
		},
	}
	st := &foldState{}
	res, err := Run(execOpts, st.sink, nil, st)
	if err != nil {
		t.Fatalf("exec run: %v", err)
	}
	if res != refRes {
		t.Fatalf("exec result %+v, pipe result %+v", res, refRes)
	}
	if !reflect.DeepEqual(st.Seq, ref.Seq) {
		t.Fatalf("exec-launcher fold diverged from in-process fold")
	}
}

// TestExecLauncherWorkerRejectsBadJob checks the process-level handshake
// failure path: a worker addressed as the wrong shard reports an error and
// the coordinator aborts.
func TestExecLauncherWorkerRejectsBadJob(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	st := &foldState{}
	_, err := Run(Options{
		Shards: 1, MaxTrials: 4, Seed: 1, Spec: []byte(`{}`),
		Launcher: &ExecLauncher{
			Path: os.Args[0],
			Args: func(shard, shards int) []string {
				// Deliberately mis-addressed: the worker serves 1/2 but the
				// job header says 0/1.
				return []string{distWorkerFlag + ShardArg(1, 2)}
			},
			Stderr: devNull{},
		},
	}, st.sink, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "shard 0") {
		t.Fatalf("expected handshake rejection, got %v", err)
	}
}

// devNull swallows worker stderr so the expected failure does not pollute
// test output.
type devNull struct{}

func (devNull) Write(p []byte) (int, error) { return len(p), nil }
