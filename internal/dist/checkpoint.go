package dist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Checkpoint is the on-disk resume state of a distributed run, written
// atomically after every folded wave. It captures everything the
// coordinator needs to continue: how far the in-order fold has advanced,
// whether the run already finished (and how), the spec hash guarding
// against resuming a different configuration, and the caller's serialized
// aggregate state.
type Checkpoint struct {
	// V is the checkpoint schema version.
	V int `json:"v"`
	// Hash is the spec hash of the run that wrote the checkpoint.
	Hash string `json:"hash"`
	// Seed is the trial-stream family seed of the run; resuming under a
	// different seed is rejected (the restored aggregate would mix two
	// random streams).
	Seed uint64 `json:"seed"`
	// Policy is the caller's opaque stopping-policy identity
	// (Options.Policy); resuming under a different policy is rejected
	// (the stop point would match neither run).
	Policy string `json:"policy,omitempty"`
	// NextTrial is the number of trials folded so far; the resume point.
	NextTrial int `json:"next_trial"`
	// MaxTrials is the run's trial cap; resuming under a different cap is
	// rejected (the stop point would correspond to neither run).
	MaxTrials int `json:"max_trials"`
	// Waves is the cumulative number of folded waves.
	Waves int `json:"waves"`
	// Done reports that the run completed (predicate fired or cap reached);
	// resuming a done checkpoint restores the state and returns without
	// launching workers.
	Done bool `json:"done"`
	// Stopped reports that the stopping predicate fired (as opposed to the
	// cap being exhausted); only meaningful when Done is set.
	Stopped bool `json:"stopped"`
	// State is the caller's aggregate state, produced by State.Snapshot.
	State json.RawMessage `json:"state"`
}

// checkpointVersion is the current Checkpoint schema version. Version 3
// accompanies the pluggable dynamics engine: resumed folds must replay
// under the exact dynamics variant that produced the checkpoint, which
// pre-variant builds neither record nor understand. Version 2 switched the
// sharded trial payloads held in State to the 128-bit interaction clock's
// hi/lo word pairs; version 1 states carry int64 clocks that overflow past
// n = ⌊√MaxInt64⌋ and cannot be resumed.
const checkpointVersion = 3

// State is the caller-owned fold state a checkpoint captures: the
// aggregates the sink updates, serialized well enough that Restore followed
// by the remaining folds is bit-identical to never having been
// interrupted (stats.Online and stats.P2 provide such snapshots).
type State interface {
	// Snapshot serializes the current aggregate state.
	Snapshot() ([]byte, error)
	// Restore replaces the aggregate state with a previous Snapshot.
	Restore(data []byte) error
}

// JSONState adapts a JSON-(un)marshalable value to the State interface. V
// must be a pointer for Restore to take effect. Note that encoding/json
// round-trips finite float64s exactly but rejects NaN and the infinities;
// aggregate states containing those must use stats.F64Bits (or the
// stats.Online / stats.P2 snapshots, which already do).
type JSONState struct {
	// V is the pointed-to aggregate state.
	V any
}

// Snapshot implements State by marshaling V.
func (s JSONState) Snapshot() ([]byte, error) { return json.Marshal(s.V) }

// Restore implements State by unmarshaling into V.
func (s JSONState) Restore(data []byte) error { return json.Unmarshal(data, s.V) }

// WriteFileAtomic writes data to path via a temporary file in the same
// directory and an atomic rename, so readers never observe a partial file
// and an interrupted write cannot clobber the previous version. cmd/bench
// shares it for BENCH_core.json.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	// Sync before the rename: on a power loss the rename may be durable
	// while unsynced data blocks are not, which would leave a truncated
	// file at the final path — the one loss checkpointing must prevent.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// saveCheckpoint snapshots the caller state and writes the checkpoint
// atomically.
func saveCheckpoint(path string, cp Checkpoint, state State) error {
	snap, err := state.Snapshot()
	if err != nil {
		return fmt.Errorf("dist: snapshot state for checkpoint: %w", err)
	}
	cp.V = checkpointVersion
	cp.State = snap
	data, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("dist: marshal checkpoint: %w", err)
	}
	data = append(data, '\n')
	if err := WriteFileAtomic(path, data, 0o644); err != nil {
		return fmt.Errorf("dist: write checkpoint %s: %w", path, err)
	}
	return nil
}

// parseCheckpoint decodes and structurally validates checkpoint bytes: a
// well-formed checkpoint is one JSON object of the current schema version
// whose counters are internally consistent and whose aggregate state is
// present. Truncated, corrupt, or inconsistent input yields a descriptive
// error — never a panic, and never a silently accepted state a resume
// would then fold garbage onto. FuzzCheckpoint drives it with arbitrary
// bytes.
func parseCheckpoint(data []byte) (Checkpoint, error) {
	if len(bytes.TrimSpace(data)) == 0 {
		return Checkpoint{}, errors.New("file is empty (truncated write?)")
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return Checkpoint{}, fmt.Errorf("not a valid checkpoint (truncated or corrupt): %w", err)
	}
	if cp.V != checkpointVersion {
		switch cp.V {
		case 1:
			return Checkpoint{}, fmt.Errorf(
				"schema version 1, want %d: it was written by a pre-128-bit-clock build and its aggregates cannot be resumed losslessly",
				checkpointVersion)
		case 2:
			return Checkpoint{}, fmt.Errorf(
				"schema version 2, want %d: it was written by a pre-variant-engine build, which does not record the dynamics variant a resume must replay under",
				checkpointVersion)
		}
		return Checkpoint{}, fmt.Errorf("schema version %d, want %d", cp.V, checkpointVersion)
	}
	if cp.MaxTrials < 1 {
		return Checkpoint{}, fmt.Errorf("corrupt: trial cap %d, want >= 1", cp.MaxTrials)
	}
	if cp.NextTrial < 0 || cp.NextTrial > cp.MaxTrials {
		return Checkpoint{}, fmt.Errorf("corrupt: resume point %d outside [0, %d]", cp.NextTrial, cp.MaxTrials)
	}
	if cp.Waves < 0 {
		return Checkpoint{}, fmt.Errorf("corrupt: negative folded-wave count %d", cp.Waves)
	}
	if cp.NextTrial > 0 && cp.Waves == 0 {
		return Checkpoint{}, fmt.Errorf("corrupt: %d folded trials but no folded waves", cp.NextTrial)
	}
	if len(bytes.TrimSpace(cp.State)) == 0 {
		return Checkpoint{}, errors.New("corrupt: aggregate state is missing")
	}
	return cp, nil
}

// loadCheckpoint reads a checkpoint if one exists and verifies it belongs
// to this run: same spec hash, same seed, same trial cap, same stopping
// policy. A missing file is not an error: it returns ok = false, meaning a
// fresh run.
func loadCheckpoint(path, wantHash string, wantSeed uint64, wantMax int, wantPolicy string) (Checkpoint, bool, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return Checkpoint{}, false, nil
	}
	if err != nil {
		return Checkpoint{}, false, fmt.Errorf("dist: read checkpoint %s: %w", path, err)
	}
	cp, err := parseCheckpoint(data)
	if err != nil {
		return Checkpoint{}, false, fmt.Errorf("dist: checkpoint %s: %v — delete it to start over", path, err)
	}
	if cp.Hash != wantHash {
		return Checkpoint{}, false, fmt.Errorf(
			"dist: checkpoint %s was written by a different configuration (spec hash %.12s, this run %.12s); delete it to start over",
			path, cp.Hash, wantHash)
	}
	if cp.Seed != wantSeed {
		return Checkpoint{}, false, fmt.Errorf(
			"dist: checkpoint %s was written with seed %d, this run uses %d; resuming would mix two trial streams — delete it to start over",
			path, cp.Seed, wantSeed)
	}
	if cp.MaxTrials != wantMax {
		return Checkpoint{}, false, fmt.Errorf(
			"dist: checkpoint %s was written with a trial cap of %d, this run uses %d; delete it to start over",
			path, cp.MaxTrials, wantMax)
	}
	if cp.Policy != wantPolicy {
		return Checkpoint{}, false, fmt.Errorf(
			"dist: checkpoint %s was written under stopping policy %q, this run uses %q; the stop point would match neither — delete it to start over",
			path, cp.Policy, wantPolicy)
	}
	return cp, true, nil
}
