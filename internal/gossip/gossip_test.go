package gossip

import (
	"math"
	"testing"

	"repro/internal/conf"
	"repro/internal/rng"
)

func mustConfig(t *testing.T, support []int64, u int64) *conf.Config {
	t.Helper()
	c, err := conf.FromSupport(support, u)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func constSampler(s State) func() State {
	return func() State { return s }
}

func TestUSDUpdateTable(t *testing.T) {
	d := USD{Opinions: 3}
	src := rng.New(1)
	cases := []struct {
		name   string
		own    State
		sample State
		want   State
	}{
		{"undecided adopts", Undecided, 2, 2},
		{"different becomes undecided", 1, 3, Undecided},
		{"same stays", 2, 2, 2},
		{"decided ignores undecided", 1, Undecided, 1},
		{"undecided ignores undecided", Undecided, Undecided, Undecided},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := d.Update(tc.own, constSampler(tc.sample), src); got != tc.want {
				t.Fatalf("Update(%d, %d) = %d, want %d", tc.own, tc.sample, got, tc.want)
			}
		})
	}
	if !d.SupportsUndecided() {
		t.Fatal("gossip USD must support undecided agents")
	}
}

func TestVoterUpdate(t *testing.T) {
	d := Voter{Opinions: 2}
	src := rng.New(1)
	if got := d.Update(1, constSampler(2), src); got != 2 {
		t.Fatal("voter must adopt the sample")
	}
	if d.SupportsUndecided() {
		t.Fatal("voter must not claim undecided support")
	}
}

func TestTwoChoicesUpdate(t *testing.T) {
	d := TwoChoices{Opinions: 3}
	src := rng.New(1)
	if got := d.Update(1, constSampler(2), src); got != 2 {
		t.Fatal("two equal samples must be adopted")
	}
	// Alternating sampler: two different samples keep own opinion.
	calls := 0
	alt := func() State {
		calls++
		if calls%2 == 1 {
			return 2
		}
		return 3
	}
	if got := d.Update(1, alt, src); got != 1 {
		t.Fatal("disagreeing samples must keep own opinion")
	}
}

func TestThreeMajorityUpdate(t *testing.T) {
	d := ThreeMajority{Opinions: 3}
	src := rng.New(1)
	if got := d.Update(1, constSampler(3), src); got != 3 {
		t.Fatal("unanimous samples must be adopted")
	}
	// Samples 2,2,3: majority 2.
	calls := 0
	maj := func() State {
		calls++
		if calls <= 2 {
			return 2
		}
		return 3
	}
	if got := d.Update(1, maj, src); got != 2 {
		t.Fatal("two-of-three majority must win")
	}
	// All distinct: result must be one of the samples.
	for i := 0; i < 50; i++ {
		calls = 0
		distinct := func() State {
			calls++
			return State(calls) // 1, 2, 3
		}
		got := d.Update(1, distinct, src)
		if got < 1 || got > 3 {
			t.Fatalf("three-way tie produced %d", got)
		}
	}
}

func TestThreeMajorityTieIsUniform(t *testing.T) {
	d := ThreeMajority{Opinions: 3}
	src := rng.New(42)
	counts := map[State]int{}
	const trials = 30000
	for i := 0; i < trials; i++ {
		calls := 0
		distinct := func() State {
			calls++
			return State(calls)
		}
		counts[d.Update(1, distinct, src)]++
	}
	for s := State(1); s <= 3; s++ {
		if math.Abs(float64(counts[s])-trials/3.0) > 6*math.Sqrt(trials/3.0) {
			t.Fatalf("tie-breaking not uniform: %v", counts)
		}
	}
}

func TestMedianRuleUpdate(t *testing.T) {
	d := MedianRule{Opinions: 5}
	src := rng.New(1)
	cases := []struct {
		own    State
		s1, s2 State
		want   State
	}{
		{1, 2, 3, 2},
		{3, 1, 2, 2},
		{5, 5, 1, 5},
		{2, 2, 2, 2},
		{4, 1, 5, 4},
	}
	for _, tc := range cases {
		calls := 0
		sampler := func() State {
			calls++
			if calls == 1 {
				return tc.s1
			}
			return tc.s2
		}
		if got := d.Update(tc.own, sampler, src); got != tc.want {
			t.Fatalf("median(%d,%d,%d) = %d, want %d", tc.own, tc.s1, tc.s2, got, tc.want)
		}
	}
}

func TestNewEngineValidation(t *testing.T) {
	c := mustConfig(t, []int64{5, 5}, 0)
	if _, err := NewEngine(c, nil, rng.New(1)); err == nil {
		t.Fatal("nil dynamic accepted")
	}
	if _, err := NewEngine(c, USD{Opinions: 2}, nil); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := NewEngine(c, USD{Opinions: 3}, rng.New(1)); err == nil {
		t.Fatal("k mismatch accepted")
	}
	withU := mustConfig(t, []int64{5, 5}, 2)
	if _, err := NewEngine(withU, Voter{Opinions: 2}, rng.New(1)); err == nil {
		t.Fatal("undecided agents accepted by voter")
	}
	if _, err := NewEngine(withU, USD{Opinions: 2}, rng.New(1)); err != nil {
		t.Fatalf("USD must accept undecided agents: %v", err)
	}
}

func TestRoundConservesPopulation(t *testing.T) {
	c, err := conf.Uniform(300, 4, 60)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(c, USD{Opinions: 4}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 50; r++ {
		e.Round()
		var total int64 = e.Undecided()
		for i := 0; i < e.K(); i++ {
			if e.Support(i) < 0 {
				t.Fatalf("negative support at round %d", r)
			}
			total += e.Support(i)
		}
		if total != e.N() {
			t.Fatalf("population not conserved at round %d: %d != %d", r, total, e.N())
		}
	}
	if e.Rounds() != 50 {
		t.Fatalf("Rounds = %d, want 50", e.Rounds())
	}
}

func TestUSDGossipReachesConsensus(t *testing.T) {
	c := mustConfig(t, []int64{700, 300}, 0)
	e, err := NewEngine(c, USD{Opinions: 2}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(0)
	if !res.Consensus {
		t.Fatalf("no consensus: %+v", res)
	}
	if res.Winner != 0 {
		t.Fatalf("strong majority lost: winner %d", res.Winner)
	}
	if res.Rounds <= 0 {
		t.Fatal("no rounds recorded")
	}
	if !e.IsConsensus() {
		t.Fatal("IsConsensus false after consensus")
	}
}

func TestAllDynamicsReachConsensus(t *testing.T) {
	dynamics := []Dynamic{
		USD{Opinions: 3},
		Voter{Opinions: 3},
		TwoChoices{Opinions: 3},
		ThreeMajority{Opinions: 3},
		MedianRule{Opinions: 3},
	}
	for _, d := range dynamics {
		c := mustConfig(t, []int64{200, 100, 100}, 0)
		e, err := NewEngine(c, d, rng.New(11))
		if err != nil {
			t.Fatalf("%T: %v", d, err)
		}
		res := e.Run(100000)
		if !res.Consensus {
			t.Fatalf("%T did not converge: %+v", d, res)
		}
	}
}

func TestRunBudget(t *testing.T) {
	c, err := conf.Uniform(1000, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(c, USD{Opinions: 8}, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(2)
	if res.Consensus {
		t.Fatal("consensus from uniform 8 opinions in 2 rounds is impossible")
	}
	if res.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", res.Rounds)
	}
}

func TestAllUndecidedAbsorbing(t *testing.T) {
	c := mustConfig(t, []int64{0, 0}, 20)
	e, err := NewEngine(c, USD{Opinions: 2}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(0)
	if res.Consensus || res.Winner != -1 {
		t.Fatalf("all-undecided run: %+v", res)
	}
}

func TestConfigSnapshotIndependent(t *testing.T) {
	c := mustConfig(t, []int64{10, 10}, 0)
	e, err := NewEngine(c, USD{Opinions: 2}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	snap := e.Config()
	snap.Support[0] = 0
	if e.Support(0) != 10 {
		t.Fatal("Config snapshot aliases engine state")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() Result {
		c, err := conf.Uniform(500, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(c, USD{Opinions: 4}, rng.New(99))
		if err != nil {
			t.Fatal(err)
		}
		return e.Run(0)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
}

func TestGossipUSDOneRoundDrift(t *testing.T) {
	// One gossip round from an all-decided 2-opinion configuration: the
	// expected number of agents that become undecided is
	// 2·x₁·x₂/n (each decided agent turns undecided w.p. x_other/n).
	x1, x2 := int64(600), int64(400)
	n := x1 + x2
	want := float64(2*x1*x2) / float64(n)
	const trials = 300
	var sum float64
	for i := 0; i < trials; i++ {
		c := mustConfig(t, []int64{x1, x2}, 0)
		e, err := NewEngine(c, USD{Opinions: 2}, rng.New(rng.Derive(3, uint64(i))))
		if err != nil {
			t.Fatal(err)
		}
		e.Round()
		sum += float64(e.Undecided())
	}
	got := sum / trials
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("mean new undecided = %.1f, want %.1f", got, want)
	}
}

func BenchmarkRoundUSD(b *testing.B) {
	c, err := conf.Uniform(1<<16, 8, 0)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(c, USD{Opinions: 8}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Round()
	}
}
