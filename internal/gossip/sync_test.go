package gossip

import (
	"math"
	"testing"

	"repro/internal/conf"
	"repro/internal/rng"
)

func TestNewSyncEngineValidation(t *testing.T) {
	c := mustConfig(t, []int64{5, 5}, 0)
	if _, err := NewSyncEngine(c, nil); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := NewSyncEngine(&conf.Config{}, rng.New(1)); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSyncRoundLeavesNoUndecided(t *testing.T) {
	c, err := conf.Uniform(600, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewSyncEngine(c, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 30; r++ {
		e.Round()
		if e.Undecided() != 0 {
			t.Fatalf("round %d left %d undecided agents", r, e.Undecided())
		}
		var total int64
		for i := 0; i < e.K(); i++ {
			if e.Support(i) < 0 {
				t.Fatalf("negative support at round %d", r)
			}
			total += e.Support(i)
		}
		if total != e.N() {
			t.Fatalf("population not conserved: %d != %d", total, e.N())
		}
	}
}

func TestSyncReachesConsensusNoBias(t *testing.T) {
	// The synchronized variant converges polylogarithmically even from a
	// tie — the headline of the related work it reproduces.
	c, err := conf.Uniform(4096, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewSyncEngine(c, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(10000)
	if !res.Consensus {
		t.Fatalf("no consensus: %+v", res)
	}
	// Polylog bound with generous constant: c·log²n ≈ 69 for n=4096 with
	// c=1; allow 10x.
	logN := math.Log(float64(4096))
	if float64(res.Rounds) > 10*logN*logN {
		t.Fatalf("synchronized USD took %d rounds, want O(log² n) ≈ %.0f", res.Rounds, logN*logN)
	}
	if !e.IsConsensus() {
		t.Fatal("IsConsensus false after consensus")
	}
}

func TestSyncPreservesStrongMajority(t *testing.T) {
	const trials = 20
	wins := 0
	for i := 0; i < trials; i++ {
		c := mustConfig(t, []int64{1400, 300, 300}, 0)
		e, err := NewSyncEngine(c, rng.New(rng.Derive(11, uint64(i))))
		if err != nil {
			t.Fatal(err)
		}
		res := e.Run(0)
		if !res.Consensus {
			t.Fatalf("trial %d: %+v", i, res)
		}
		if res.Winner == 0 {
			wins++
		}
	}
	if wins < trials-1 {
		t.Fatalf("strong majority won only %d/%d trials", wins, trials)
	}
}

func TestSyncAllUndecidedAbsorbing(t *testing.T) {
	c := mustConfig(t, []int64{0, 0}, 10)
	e, err := NewSyncEngine(c, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(0)
	if res.Consensus || res.Winner != -1 {
		t.Fatalf("all-undecided: %+v", res)
	}
}

func TestSyncDeterministic(t *testing.T) {
	run := func() Result {
		c, err := conf.Uniform(1000, 5, 0)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewSyncEngine(c, rng.New(21))
		if err != nil {
			t.Fatal(err)
		}
		return e.Run(0)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestSyncFasterThanPlainGossipNoBias(t *testing.T) {
	// From a no-bias start with many opinions, the synchronized variant
	// must beat the plain gossip USD by a wide margin.
	if testing.Short() {
		t.Skip("comparison skipped in -short mode")
	}
	n := int64(4096)
	k := 16
	const trials = 5
	var syncSum, plainSum float64
	for i := 0; i < trials; i++ {
		c, err := conf.Uniform(n, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		se, err := NewSyncEngine(c, rng.New(rng.Derive(31, uint64(i))))
		if err != nil {
			t.Fatal(err)
		}
		sres := se.Run(100000)
		if !sres.Consensus {
			t.Fatalf("sync trial %d: %+v", i, sres)
		}
		syncSum += float64(sres.Rounds)

		pe, err := NewEngine(c, USD{Opinions: k}, rng.New(rng.Derive(32, uint64(i))))
		if err != nil {
			t.Fatal(err)
		}
		pres := pe.Run(100000)
		if !pres.Consensus {
			t.Fatalf("plain trial %d: %+v", i, pres)
		}
		plainSum += float64(pres.Rounds)
	}
	if syncSum >= plainSum {
		t.Fatalf("synchronized (%.0f total rounds) not faster than plain (%.0f)", syncSum, plainSum)
	}
}
