// Package gossip implements the synchronous parallel gossip model and the
// consensus dynamics the paper discusses in it: the undecided state
// dynamics as analyzed by Becchetti et al. (the Appendix D comparator), and
// the related-work baselines Voter, TwoChoices, 3-Majority, and MedianRule.
//
// In the gossip model, time proceeds in synchronous rounds. In every round,
// each agent draws one or more interaction partners uniformly at random
// (with replacement, from the full population) and updates its own state as
// a function of its current state and the partners' states *from the
// beginning of the round*. Unlike the population protocol model, a constant
// fraction of agents can change state in a single round, which is the root
// of the analytical differences the paper describes.
package gossip

import (
	"errors"
	"fmt"

	"repro/internal/conf"
	"repro/internal/rng"
)

// State is an agent state: Undecided (0) or an opinion in 1..k.
type State int32

// Undecided is the distinguished undecided state ⊥.
const Undecided State = 0

// Dynamic is a gossip-model update rule. Update computes an agent's next
// state from its current state and fresh uniform samples of the previous
// round's states.
type Dynamic interface {
	// K returns the number of opinions.
	K() int
	// SupportsUndecided reports whether the rule is defined on
	// configurations containing undecided agents.
	SupportsUndecided() bool
	// Update returns the agent's next state. sample() draws the state of
	// a uniformly random agent from the previous round; src supplies any
	// extra randomness (for example tie-breaking).
	Update(own State, sample func() State, src *rng.Source) State
}

// USD is the gossip-model undecided state dynamics (Becchetti et al.):
// each agent pulls one sample; an undecided agent adopts a decided sample,
// a decided agent seeing a different decided opinion becomes undecided.
type USD struct {
	// Opinions is the number of opinions k.
	Opinions int
}

// K returns the number of opinions.
func (d USD) K() int { return d.Opinions }

// SupportsUndecided reports true: the undecided state is part of the rule.
func (d USD) SupportsUndecided() bool { return true }

// Update applies the USD pull rule.
func (d USD) Update(own State, sample func() State, _ *rng.Source) State {
	s := sample()
	switch {
	case own == Undecided && s != Undecided:
		return s
	case own != Undecided && s != Undecided && s != own:
		return Undecided
	default:
		return own
	}
}

// Voter is the single-sample voter dynamics: adopt the sampled opinion.
type Voter struct {
	// Opinions is the number of opinions k.
	Opinions int
}

// K returns the number of opinions.
func (d Voter) K() int { return d.Opinions }

// SupportsUndecided reports false: voter states are always decided.
func (d Voter) SupportsUndecided() bool { return false }

// Update adopts the sample.
func (d Voter) Update(_ State, sample func() State, _ *rng.Source) State {
	return sample()
}

// TwoChoices is the lazy two-sample dynamics: adopt the sampled opinion
// only if both samples agree, otherwise keep the current opinion.
type TwoChoices struct {
	// Opinions is the number of opinions k.
	Opinions int
}

// K returns the number of opinions.
func (d TwoChoices) K() int { return d.Opinions }

// SupportsUndecided reports false.
func (d TwoChoices) SupportsUndecided() bool { return false }

// Update applies the lazy two-choices rule.
func (d TwoChoices) Update(own State, sample func() State, _ *rng.Source) State {
	s1, s2 := sample(), sample()
	if s1 == s2 {
		return s1
	}
	return own
}

// ThreeMajority is the 3-sample majority dynamics: adopt the majority
// among three samples, breaking three-way ties by picking one of the three
// samples uniformly at random.
type ThreeMajority struct {
	// Opinions is the number of opinions k.
	Opinions int
}

// K returns the number of opinions.
func (d ThreeMajority) K() int { return d.Opinions }

// SupportsUndecided reports false.
func (d ThreeMajority) SupportsUndecided() bool { return false }

// Update applies the 3-majority rule.
func (d ThreeMajority) Update(_ State, sample func() State, src *rng.Source) State {
	s1, s2, s3 := sample(), sample(), sample()
	switch {
	case s1 == s2 || s1 == s3:
		return s1
	case s2 == s3:
		return s2
	default:
		switch src.Intn(3) {
		case 0:
			return s1
		case 1:
			return s2
		default:
			return s3
		}
	}
}

// MedianRule is the ordered-opinion median dynamics of Doerr et al.: adopt
// the median of the agent's own opinion and two samples. It requires a
// total order on opinions, which state indices provide.
type MedianRule struct {
	// Opinions is the number of opinions k.
	Opinions int
}

// K returns the number of opinions.
func (d MedianRule) K() int { return d.Opinions }

// SupportsUndecided reports false.
func (d MedianRule) SupportsUndecided() bool { return false }

// Update returns the median of {own, sample, sample}.
func (d MedianRule) Update(own State, sample func() State, _ *rng.Source) State {
	a, b, c := own, sample(), sample()
	// Median of three by explicit comparison.
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// Result summarizes a gossip run.
type Result struct {
	// Consensus reports whether all agents agreed on one opinion.
	Consensus bool
	// Winner is the 0-based consensus opinion, or -1.
	Winner int
	// Rounds is the number of synchronous rounds simulated.
	Rounds int64
}

// Engine simulates a gossip dynamics over an explicit agent vector. It is
// not safe for concurrent use. Construct with NewEngine.
type Engine struct {
	cur, nxt []State
	counts   []int64
	u        int64
	dyn      Dynamic
	src      *rng.Source
	rounds   int64
}

// NewEngine builds a gossip engine from an initial aggregate configuration.
func NewEngine(c *conf.Config, dyn Dynamic, src *rng.Source) (*Engine, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("gossip: invalid configuration: %w", err)
	}
	if dyn == nil || src == nil {
		return nil, errors.New("gossip: nil dynamic or source")
	}
	if dyn.K() != c.K() {
		return nil, fmt.Errorf("gossip: dynamic has k=%d but configuration has k=%d", dyn.K(), c.K())
	}
	if c.Undecided > 0 && !dyn.SupportsUndecided() {
		return nil, fmt.Errorf("gossip: dynamic %T does not support undecided agents", dyn)
	}
	n := c.N()
	e := &Engine{
		cur:    make([]State, 0, n),
		nxt:    make([]State, n),
		counts: append([]int64(nil), c.Support...),
		u:      c.Undecided,
		dyn:    dyn,
		src:    src,
	}
	for op, x := range c.Support {
		for i := int64(0); i < x; i++ {
			e.cur = append(e.cur, State(op+1))
		}
	}
	for i := int64(0); i < c.Undecided; i++ {
		e.cur = append(e.cur, Undecided)
	}
	return e, nil
}

// N returns the population size.
func (e *Engine) N() int64 { return int64(len(e.cur)) }

// K returns the number of opinions.
func (e *Engine) K() int { return len(e.counts) }

// Undecided returns the current undecided count.
func (e *Engine) Undecided() int64 { return e.u }

// Support returns the current support of opinion i (0-based).
func (e *Engine) Support(i int) int64 { return e.counts[i] }

// Rounds returns the number of rounds simulated so far.
func (e *Engine) Rounds() int64 { return e.rounds }

// Config returns a snapshot of the aggregate configuration.
func (e *Engine) Config() *conf.Config {
	return &conf.Config{
		Support:   append([]int64(nil), e.counts...),
		Undecided: e.u,
	}
}

// IsConsensus reports whether all agents hold the same opinion.
func (e *Engine) IsConsensus() bool {
	if e.u != 0 {
		return false
	}
	n := e.N()
	for _, c := range e.counts {
		if c == n {
			return true
		}
	}
	return false
}

// Round simulates one synchronous round: every agent updates based on
// samples of the previous round's state vector.
func (e *Engine) Round() {
	n := len(e.cur)
	sample := func() State { return e.cur[e.src.Intn(n)] }
	for i := range e.counts {
		e.counts[i] = 0
	}
	e.u = 0
	for i := 0; i < n; i++ {
		s := e.dyn.Update(e.cur[i], sample, e.src)
		e.nxt[i] = s
		if s == Undecided {
			e.u++
		} else {
			e.counts[s-1]++
		}
	}
	e.cur, e.nxt = e.nxt, e.cur
	e.rounds++
}

// Run simulates rounds until consensus or until maxRounds is exhausted
// (maxRounds <= 0 means until consensus). An all-undecided configuration is
// absorbing for the USD rule and is reported as a non-consensus result.
func (e *Engine) Run(maxRounds int64) Result {
	for !e.IsConsensus() {
		if maxRounds > 0 && e.rounds >= maxRounds {
			return Result{Winner: -1, Rounds: e.rounds}
		}
		if e.u == e.N() {
			return Result{Winner: -1, Rounds: e.rounds}
		}
		e.Round()
	}
	winner := -1
	for i, c := range e.counts {
		if c == e.N() {
			winner = i
			break
		}
	}
	return Result{Consensus: true, Winner: winner, Rounds: e.rounds}
}
