package gossip

import (
	"errors"
	"fmt"

	"repro/internal/conf"
	"repro/internal/rng"
)

// SyncEngine simulates the synchronized two-phase USD variant discussed in
// the paper's related work (Bankhamer et al.): each synchronized round
// consists of (1) one parallel USD step — every agent pulls a uniform
// sample and applies the USD rule — followed by (2) a re-adoption step in
// which every undecided agent adopts the opinion of a uniformly random
// *decided* agent. Synchronization buys a polylogarithmic convergence time
// regardless of the initial bias, at the cost of the phase-clock machinery
// the paper calls "less natural"; this engine models the idealized
// synchronized schedule directly.
type SyncEngine struct {
	cur, nxt []State
	counts   []int64
	u        int64
	src      *rng.Source
	rounds   int64
}

// NewSyncEngine builds a synchronized-USD engine from an initial
// configuration.
func NewSyncEngine(c *conf.Config, src *rng.Source) (*SyncEngine, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("gossip: invalid configuration: %w", err)
	}
	if src == nil {
		return nil, errors.New("gossip: nil source")
	}
	n := c.N()
	e := &SyncEngine{
		cur:    make([]State, 0, n),
		nxt:    make([]State, n),
		counts: append([]int64(nil), c.Support...),
		u:      c.Undecided,
		src:    src,
	}
	for op, x := range c.Support {
		for i := int64(0); i < x; i++ {
			e.cur = append(e.cur, State(op+1))
		}
	}
	for i := int64(0); i < c.Undecided; i++ {
		e.cur = append(e.cur, Undecided)
	}
	return e, nil
}

// N returns the population size.
func (e *SyncEngine) N() int64 { return int64(len(e.cur)) }

// K returns the number of opinions.
func (e *SyncEngine) K() int { return len(e.counts) }

// Undecided returns the current undecided count (0 after any full round
// that had at least one decided agent).
func (e *SyncEngine) Undecided() int64 { return e.u }

// Support returns the current support of opinion i.
func (e *SyncEngine) Support(i int) int64 { return e.counts[i] }

// Rounds returns the number of synchronized rounds simulated.
func (e *SyncEngine) Rounds() int64 { return e.rounds }

// IsConsensus reports whether all agents hold the same opinion.
func (e *SyncEngine) IsConsensus() bool {
	if e.u != 0 {
		return false
	}
	n := e.N()
	for _, c := range e.counts {
		if c == n {
			return true
		}
	}
	return false
}

// Round simulates one synchronized round (USD step + re-adoption step).
func (e *SyncEngine) Round() {
	n := len(e.cur)
	usd := USD{Opinions: e.K()}
	sample := func() State { return e.cur[e.src.Intn(n)] }
	for i := range e.counts {
		e.counts[i] = 0
	}
	e.u = 0
	for i := 0; i < n; i++ {
		s := usd.Update(e.cur[i], sample, e.src)
		e.nxt[i] = s
		if s == Undecided {
			e.u++
		} else {
			e.counts[s-1]++
		}
	}
	e.cur, e.nxt = e.nxt, e.cur
	// Re-adoption: every undecided agent adopts the opinion of a uniform
	// decided agent. All agents sample from the same post-step snapshot,
	// mirroring the synchronized schedule.
	decided := e.N() - e.u
	if e.u > 0 && decided > 0 {
		snapshot := append([]int64(nil), e.counts...)
		for i := 0; i < n; i++ {
			if e.cur[i] != Undecided {
				continue
			}
			r := e.src.Int63n(decided)
			for op, c := range snapshot {
				if r < c {
					e.cur[i] = State(op + 1)
					e.counts[op]++
					break
				}
				r -= c
			}
		}
		e.u = 0
	}
	e.rounds++
}

// Run simulates rounds until consensus or until maxRounds is exhausted
// (maxRounds <= 0: until consensus). An all-undecided configuration cannot
// re-adopt and is reported as a non-consensus result.
func (e *SyncEngine) Run(maxRounds int64) Result {
	for !e.IsConsensus() {
		if maxRounds > 0 && e.rounds >= maxRounds {
			return Result{Winner: -1, Rounds: e.rounds}
		}
		if e.u == e.N() {
			return Result{Winner: -1, Rounds: e.rounds}
		}
		e.Round()
	}
	winner := -1
	for i, c := range e.counts {
		if c == e.N() {
			winner = i
			break
		}
	}
	return Result{Consensus: true, Winner: winner, Rounds: e.rounds}
}
