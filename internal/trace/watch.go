package trace

import (
	"repro/internal/core"
	"repro/internal/u128"
)

// BoundedRecorder records a trajectory in bounded memory: it keeps at most
// MaxPoints points and, when full, halves the stored points and doubles its
// clock stride. Unlike Recorder it needs no a-priori knowledge of the run
// length — exactly the situation of a consensus run, whose final clock is
// random — while guaranteeing both the memory bound and a final resolution
// within 2× of the best achievable for that bound.
type BoundedRecorder struct {
	// Series receives the recorded points.
	Series *Series
	max    int
	every  u128.U128 // current minimum clock distance between points
	last   u128.U128
	primed bool
}

// minBoundedPoints keeps compaction meaningful; tighter caps are clamped.
const minBoundedPoints = 8

// NewBoundedRecorder returns a recorder writing to a fresh series with the
// given name, keeping at most maxPoints points (clamped to at least 8).
func NewBoundedRecorder(name string, maxPoints int) *BoundedRecorder {
	if maxPoints < minBoundedPoints {
		maxPoints = minBoundedPoints
	}
	return &BoundedRecorder{Series: &Series{Name: name}, max: maxPoints, every: u128.U128{Lo: 1}}
}

// Observe offers a point at interaction clock t. It is recorded if it is
// the first point or at least the current stride after the previous one;
// when the buffer is full, every other stored point is dropped and the
// stride doubles.
func (r *BoundedRecorder) Observe(t u128.U128, y float64) {
	if r.primed && t.Sub(r.last).Less(r.every) {
		return
	}
	if r.Series.Len() >= r.max {
		r.compact()
		// The survivor spacing is now >= the doubled stride, but the last
		// stored point may still be too close to t; re-check.
		if t.Sub(r.last).Less(r.every) {
			return
		}
	}
	r.Series.Add(t.Float64(), y)
	r.last = t
	r.primed = true
}

// Final forces the last point of a run to be recorded (it may exceed the
// cap by one point).
func (r *BoundedRecorder) Final(t u128.U128, y float64) {
	if r.primed && r.last == t {
		return
	}
	r.Series.Add(t.Float64(), y)
	r.last = t
	r.primed = true
}

// Reset clears the recorded points and rewinds the stride, keeping the
// allocated capacity, so trial engines can reuse one recorder per worker.
func (r *BoundedRecorder) Reset() {
	r.Series.X = r.Series.X[:0]
	r.Series.Y = r.Series.Y[:0]
	r.every = u128.U128{Lo: 1}
	r.last = u128.U128{}
	r.primed = false
}

// compact drops every other stored point and doubles the stride. Stored
// points are at least `every` apart, so survivors are at least 2·every
// apart — consistent with the doubled stride.
func (r *BoundedRecorder) compact() {
	s := r.Series
	keep := 0
	for i := 0; i < len(s.X); i += 2 {
		s.X[keep] = s.X[i]
		s.Y[keep] = s.Y[i]
		keep++
	}
	s.X = s.X[:keep]
	s.Y = s.Y[:keep]
	r.every = r.every.Add(r.every)
	if keep > 0 {
		// X stores the float64-rounded clock; the stride check only needs
		// spacing, so the rounded value is a faithful enough last-clock.
		r.last = u128.FromFloat64(s.X[keep-1])
	}
}

// Probe extracts one plotted quantity from the live simulator.
type Probe func(s *core.Simulator) float64

// Sampler records downsampled trajectories of simulator quantities during a
// run. It implements core.Watcher, so it plugs directly into
// Simulator.RunWatched (alone or fanned out via core.Watchers): each
// applied event — a single interaction under the exact kernel, a whole
// window of them under a batched kernel — offers one observation per probe.
// Under the batched kernel this is the window-granularity recording path
// that makes n >= 10⁸ trajectory runs affordable: the number of
// observations scales with windows, not interactions, and the bounded
// recorders cap memory regardless of run length.
type Sampler struct {
	probes []Probe
	recs   []*BoundedRecorder
}

// NewSampler returns an empty sampler; add quantities with Track.
func NewSampler() *Sampler { return &Sampler{} }

// Track adds a recorded quantity with the given series name and point
// budget, returning the sampler for chaining.
func (sa *Sampler) Track(name string, maxPoints int, probe Probe) *Sampler {
	sa.probes = append(sa.probes, probe)
	sa.recs = append(sa.recs, NewBoundedRecorder(name, maxPoints))
	return sa
}

// Watch implements core.Watcher; the event is ignored — probes inspect the
// simulator state after the event was applied.
func (sa *Sampler) Watch(s *core.Simulator, _ core.Event) {
	t := s.Interactions()
	for i, probe := range sa.probes {
		sa.recs[i].Observe(t, probe(s))
	}
}

// Final records the terminal state of a run, which stride skipping could
// otherwise miss.
func (sa *Sampler) Final(s *core.Simulator) {
	t := s.Interactions()
	for i, probe := range sa.probes {
		sa.recs[i].Final(t, probe(s))
	}
}

// Reset clears all recorded trajectories, keeping the probes and allocated
// capacity, for reuse across trials.
func (sa *Sampler) Reset() {
	for _, r := range sa.recs {
		r.Reset()
	}
}

// Series returns the recorded trajectories, one per tracked quantity.
func (sa *Sampler) Series() []*Series {
	out := make([]*Series, len(sa.recs))
	for i, r := range sa.recs {
		out[i] = r.Series
	}
	return out
}
