// Package trace records trajectories of simulation quantities and renders
// them as CSV or as ASCII plots — the repository's "figure" output format.
package trace

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/u128"
)

// Series is a named sequence of (x, y) points.
type Series struct {
	// Name labels the series in plots and CSV headers.
	Name string
	// X and Y are the coordinates; they must have equal length.
	X, Y []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// Recorder samples a trajectory at a fixed interaction-clock interval: the
// caller invokes Observe after every event, and the recorder keeps one
// point per Every interactions (plus the first and the ability to flush the
// last).
type Recorder struct {
	// Every is the minimum clock distance between recorded points.
	Every u128.U128
	// Series receives the recorded points.
	Series *Series
	last   u128.U128
	primed bool
}

// NewRecorder returns a recorder writing to a fresh series with the given
// name, keeping one point per every interactions (every < 1 records all).
func NewRecorder(name string, every int64) *Recorder {
	if every < 1 {
		every = 1
	}
	return &Recorder{Every: u128.From64(every), Series: &Series{Name: name}}
}

// Observe offers a point at interaction clock t; it is recorded if it is
// the first point or at least Every interactions after the previous one.
// The clock is monotone, so t − last never saturates below zero.
func (r *Recorder) Observe(t u128.U128, y float64) {
	if r.primed && t.Sub(r.last).Less(r.Every) {
		return
	}
	r.Series.Add(t.Float64(), y)
	r.last = t
	r.primed = true
}

// Final forces the last point of a run to be recorded.
func (r *Recorder) Final(t u128.U128, y float64) {
	if r.primed && r.last == t {
		return
	}
	r.Series.Add(t.Float64(), y)
	r.last = t
	r.primed = true
}

// WriteCSV writes the series in long format: series,x,y per row.
func WriteCSV(w io.Writer, series ...*Series) error {
	if _, err := io.WriteString(w, "series,x,y\n"); err != nil {
		return err
	}
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("trace: series %q has mismatched lengths", s.Name)
		}
		for i := range s.X {
			row := s.Name + "," +
				strconv.FormatFloat(s.X[i], 'g', -1, 64) + "," +
				strconv.FormatFloat(s.Y[i], 'g', -1, 64) + "\n"
			if _, err := io.WriteString(w, row); err != nil {
				return err
			}
		}
	}
	return nil
}

// plot symbols assigned to series in order.
var plotSymbols = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// RenderASCII renders the series as a width×height ASCII scatter plot with
// a shared coordinate frame, axis labels, and a legend.
func RenderASCII(width, height int, series ...*Series) (string, error) {
	if width < 16 || height < 4 {
		return "", errors.New("trace: plot must be at least 16x4")
	}
	if len(series) == 0 {
		return "", errors.New("trace: no series")
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("trace: series %q has mismatched lengths", s.Name)
		}
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
			points++
		}
	}
	if points == 0 {
		return "", errors.New("trace: no points")
	}
	if minX == maxX {
		maxX = minX + 1
	}
	if minY == maxY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		sym := plotSymbols[si%len(plotSymbols)]
		for i := range s.X {
			col := int(float64(width-1) * (s.X[i] - minX) / (maxX - minX))
			row := height - 1 - int(float64(height-1)*(s.Y[i]-minY)/(maxY-minY))
			grid[row][col] = sym
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%12.4g ┤", maxY)
	b.Write(grid[0])
	b.WriteByte('\n')
	for i := 1; i < height-1; i++ {
		b.WriteString(strings.Repeat(" ", 13))
		b.WriteByte('|')
		b.Write(grid[i])
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%12.4g ┤", minY)
	b.Write(grid[height-1])
	b.WriteByte('\n')
	b.WriteString(strings.Repeat(" ", 14))
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%14s%-12.4g%s%12.4g\n", "", minX,
		strings.Repeat(" ", maxInt(0, width-24)), maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "%14s%c = %s\n", "", plotSymbols[si%len(plotSymbols)], s.Name)
	}
	return b.String(), nil
}

// Downsample returns a copy of the series with at most maxPoints points,
// keeping every ceil(len/maxPoints)-th point plus the final one.
func Downsample(s *Series, maxPoints int) *Series {
	if maxPoints <= 0 || s.Len() <= maxPoints {
		return &Series{Name: s.Name, X: append([]float64(nil), s.X...), Y: append([]float64(nil), s.Y...)}
	}
	stride := (s.Len() + maxPoints - 1) / maxPoints
	out := &Series{Name: s.Name}
	for i := 0; i < s.Len(); i += stride {
		out.Add(s.X[i], s.Y[i])
	}
	if last := s.Len() - 1; last%stride != 0 {
		out.Add(s.X[last], s.Y[last])
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
