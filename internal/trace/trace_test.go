package trace

import (
	"strings"
	"testing"

	"repro/internal/u128"
)

func TestSeriesAdd(t *testing.T) {
	var s Series
	s.Add(1, 2)
	s.Add(3, 4)
	if s.Len() != 2 || s.X[1] != 3 || s.Y[1] != 4 {
		t.Fatalf("series = %+v", s)
	}
}

func TestRecorderInterval(t *testing.T) {
	r := NewRecorder("u", 10)
	r.Observe(u128.From64(0), 1)  // first: recorded
	r.Observe(u128.From64(5), 2)  // too close: dropped
	r.Observe(u128.From64(10), 3) // recorded
	r.Observe(u128.From64(19), 4) // dropped
	r.Observe(u128.From64(25), 5) // recorded
	if r.Series.Len() != 3 {
		t.Fatalf("recorded %d points, want 3: %+v", r.Series.Len(), r.Series)
	}
	if r.Series.X[2] != 25 || r.Series.Y[2] != 5 {
		t.Fatalf("last point = (%v, %v)", r.Series.X[2], r.Series.Y[2])
	}
}

func TestRecorderFinal(t *testing.T) {
	r := NewRecorder("u", 100)
	r.Observe(u128.From64(0), 1)
	r.Observe(u128.From64(50), 2) // dropped
	r.Final(u128.From64(50), 2)   // forced
	if r.Series.Len() != 2 {
		t.Fatalf("recorded %d points, want 2", r.Series.Len())
	}
	// Final at the already-recorded clock must not duplicate.
	r.Final(u128.From64(50), 2)
	if r.Series.Len() != 2 {
		t.Fatal("Final duplicated a point")
	}
}

func TestRecorderEveryClamped(t *testing.T) {
	r := NewRecorder("u", -5)
	if r.Every != u128.From64(1) {
		t.Fatalf("Every = %v, want 1", r.Every)
	}
	r.Observe(u128.From64(1), 1)
	r.Observe(u128.From64(2), 2)
	if r.Series.Len() != 2 {
		t.Fatal("every=1 must record all points")
	}
}

func TestWriteCSV(t *testing.T) {
	a := &Series{Name: "a", X: []float64{1, 2}, Y: []float64{3, 4.5}}
	b := &Series{Name: "b", X: []float64{0}, Y: []float64{9}}
	var sb strings.Builder
	if err := WriteCSV(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	want := "series,x,y\na,1,3\na,2,4.5\nb,0,9\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestWriteCSVMismatched(t *testing.T) {
	bad := &Series{Name: "bad", X: []float64{1}, Y: nil}
	var sb strings.Builder
	if err := WriteCSV(&sb, bad); err == nil {
		t.Fatal("mismatched series accepted")
	}
}

func TestRenderASCII(t *testing.T) {
	s := &Series{Name: "line"}
	for i := 0; i < 20; i++ {
		s.Add(float64(i), float64(i*i))
	}
	out, err := RenderASCII(40, 10, s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("plot has no points:\n%s", out)
	}
	if !strings.Contains(out, "line") {
		t.Fatalf("plot missing legend:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 12 {
		t.Fatalf("plot has %d lines, want >= 12", len(lines))
	}
}

func TestRenderASCIIMultipleSeries(t *testing.T) {
	a := &Series{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}}
	b := &Series{Name: "b", X: []float64{0, 1}, Y: []float64{1, 0}}
	out, err := RenderASCII(30, 8, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("expected two symbols:\n%s", out)
	}
}

func TestRenderASCIIErrors(t *testing.T) {
	s := &Series{Name: "s", X: []float64{1}, Y: []float64{1}}
	if _, err := RenderASCII(4, 2, s); err == nil {
		t.Fatal("tiny plot accepted")
	}
	if _, err := RenderASCII(30, 8); err == nil {
		t.Fatal("no series accepted")
	}
	empty := &Series{Name: "e"}
	if _, err := RenderASCII(30, 8, empty); err == nil {
		t.Fatal("empty series accepted")
	}
	bad := &Series{Name: "bad", X: []float64{1}, Y: nil}
	if _, err := RenderASCII(30, 8, bad); err == nil {
		t.Fatal("mismatched series accepted")
	}
}

func TestRenderASCIIConstantSeries(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	s := &Series{Name: "const", X: []float64{5, 5}, Y: []float64{3, 3}}
	if _, err := RenderASCII(20, 5, s); err != nil {
		t.Fatal(err)
	}
}

func TestDownsample(t *testing.T) {
	s := &Series{Name: "big"}
	for i := 0; i < 1000; i++ {
		s.Add(float64(i), float64(2*i))
	}
	d := Downsample(s, 100)
	if d.Len() > 101 {
		t.Fatalf("downsampled to %d points, want <= 101", d.Len())
	}
	if d.X[0] != 0 {
		t.Fatal("first point lost")
	}
	if d.X[d.Len()-1] != 999 {
		t.Fatal("last point lost")
	}
	// Small series passes through as a copy.
	small := &Series{Name: "s", X: []float64{1}, Y: []float64{2}}
	cp := Downsample(small, 10)
	cp.X[0] = 99
	if small.X[0] != 1 {
		t.Fatal("Downsample aliases input")
	}
}
