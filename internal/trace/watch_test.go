package trace

import (
	"testing"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/u128"
)

func TestBoundedRecorderStaysBounded(t *testing.T) {
	r := NewBoundedRecorder("u", 16)
	for i := int64(0); i < 100000; i++ {
		r.Observe(u128.From64(i), float64(i))
	}
	if got := r.Series.Len(); got > 16 {
		t.Fatalf("recorded %d points, cap 16", got)
	}
	if got := r.Series.Len(); got < 8 {
		t.Fatalf("recorded only %d points; compaction too aggressive", got)
	}
	// Points must stay in increasing clock order and start at the origin.
	if r.Series.X[0] != 0 {
		t.Fatalf("first point at %v, want 0", r.Series.X[0])
	}
	for i := 1; i < r.Series.Len(); i++ {
		if r.Series.X[i] <= r.Series.X[i-1] {
			t.Fatalf("clock order violated at %d: %v after %v", i, r.Series.X[i], r.Series.X[i-1])
		}
	}
}

func TestBoundedRecorderIrregularClock(t *testing.T) {
	// Batched-kernel observations arrive at irregular, growing clock spans;
	// the bound must hold regardless.
	r := NewBoundedRecorder("x", 32)
	clock := int64(0)
	for i := int64(1); i < 4000; i++ {
		clock += i * i % 977
		r.Observe(u128.From64(clock), 1)
	}
	if got := r.Series.Len(); got > 32 {
		t.Fatalf("recorded %d points, cap 32", got)
	}
}

func TestBoundedRecorderFinal(t *testing.T) {
	r := NewBoundedRecorder("u", 8)
	for i := int64(0); i < 1000; i += 3 {
		r.Observe(u128.From64(i), float64(i))
	}
	r.Final(u128.From64(1234), 42)
	last := r.Series.Len() - 1
	if r.Series.X[last] != 1234 || r.Series.Y[last] != 42 {
		t.Fatalf("final point (%v, %v)", r.Series.X[last], r.Series.Y[last])
	}
	r.Final(u128.From64(1234), 42) // idempotent at the same clock
	if r.Series.Len() != last+1 {
		t.Fatal("duplicate final point recorded")
	}
}

func TestBoundedRecorderReset(t *testing.T) {
	r := NewBoundedRecorder("u", 8)
	for i := int64(0); i < 500; i++ {
		r.Observe(u128.From64(i), 1)
	}
	r.Reset()
	if r.Series.Len() != 0 {
		t.Fatalf("Reset left %d points", r.Series.Len())
	}
	r.Observe(u128.U128{}, 5)
	if r.Series.Len() != 1 || r.Series.X[0] != 0 {
		t.Fatal("recorder unusable after Reset")
	}
}

func TestSamplerRecordsPerAppliedEvent(t *testing.T) {
	cfg, err := conf.Uniform(5000, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, kern := range []core.Kernel{core.KernelExact, core.KernelBatched(0)} {
		s, err := core.New(cfg, rng.New(3), core.WithKernel(kern))
		if err != nil {
			t.Fatal(err)
		}
		sa := NewSampler().
			Track("u/n", 64, func(s *core.Simulator) float64 {
				return float64(s.Undecided()) / float64(s.N())
			}).
			Track("xmax/n", 64, func(s *core.Simulator) float64 {
				_, x := s.Max()
				return float64(x) / float64(s.N())
			})
		res := s.RunWatched(core.NoBudget, sa)
		sa.Final(s)
		series := sa.Series()
		if len(series) != 2 {
			t.Fatalf("kernel %v: %d series", kern, len(series))
		}
		for _, sr := range series {
			if sr.Len() < 2 || sr.Len() > 65 {
				t.Fatalf("kernel %v: series %q has %d points", kern, sr.Name, sr.Len())
			}
			if got := sr.X[sr.Len()-1]; got != res.Interactions.Float64() {
				t.Fatalf("kernel %v: series %q ends at %v, run at %v", kern, sr.Name, got, res.Interactions)
			}
		}
		// The final xmax/n of a consensus run is exactly 1.
		if last := series[1].Y[series[1].Len()-1]; last != 1 {
			t.Fatalf("kernel %v: final xmax/n = %v", kern, last)
		}
	}
}

func TestSamplerWithWatchersFanOut(t *testing.T) {
	cfg, err := conf.Uniform(2000, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.New(cfg, rng.New(9), core.WithKernel(core.KernelBatched(0)))
	if err != nil {
		t.Fatal(err)
	}
	sa := NewSampler().Track("u", 32, func(s *core.Simulator) float64 {
		return float64(s.Undecided())
	})
	events := 0
	s.RunWatched(core.NoBudget, core.Watchers(sa, core.Observer(func(*core.Simulator, core.Event) { events++ })))
	if events == 0 || sa.Series()[0].Len() == 0 {
		t.Fatalf("fan-out lost observations: events=%d points=%d", events, sa.Series()[0].Len())
	}
	sa.Reset()
	if sa.Series()[0].Len() != 0 {
		t.Fatal("Sampler.Reset left points")
	}
}
