package usd

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/phase"
	"repro/internal/potential"
	"repro/internal/rng"
)

// TestWinnerFixedAfterPhase2 checks the paper's structural claim that the
// identity of the eventual winner does not change after the end of Phase 2
// (discussion after the phase table in §2.1): the unique significant
// opinion at T2 is the consensus opinion.
func TestWinnerFixedAfterPhase2(t *testing.T) {
	const trials = 25
	for i := 0; i < trials; i++ {
		cfg, err := Uniform(4096, 8, 0)
		if err != nil {
			t.Fatal(err)
		}
		report, err := Run(cfg, uint64(i)+100)
		if err != nil {
			t.Fatal(err)
		}
		if report.Result.Outcome != OutcomeConsensus {
			t.Fatalf("trial %d: %v", i, report.Result.Outcome)
		}
		if report.Phases.LeaderAtT2 != report.Result.Winner {
			t.Fatalf("trial %d: leader at T2 = %d but winner = %d",
				i, report.Phases.LeaderAtT2, report.Result.Winner)
		}
	}
}

// TestPhaseBoundsWithConstants checks each phase duration against the
// paper's bound with explicit generous constants, across several trials —
// a failure here means the *shape* of some phase bound is violated.
func TestPhaseBoundsWithConstants(t *testing.T) {
	if testing.Short() {
		t.Skip("phase-bound sweep skipped in -short mode")
	}
	n := int64(1 << 13)
	k := 8
	lnN := math.Log(float64(n))
	// Generous constants on each §2.1 bound term.
	budgets := []float64{
		7 * float64(n) * lnN,                           // phase 1: Lemma 1's 7n ln n
		40 * 2 * float64(k) * float64(n) * lnN,         // phase 2 (xmax >= n/2k)
		420 * 2 * float64(k) * float64(n) * lnN,        // phase 3
		7*float64(n)*lnN + 444*2*float64(k)*float64(n), // phase 4
		10 * float64(n) * lnN,                          // phase 5
	}
	const trials = 10
	for i := 0; i < trials; i++ {
		cfg, err := Uniform(n, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		report, err := Run(cfg, uint64(i)+500)
		if err != nil {
			t.Fatal(err)
		}
		for p := 1; p <= 5; p++ {
			d, ok := report.Phases.Duration(p)
			if !ok {
				t.Fatalf("trial %d: phase %d missing", i, p)
			}
			if d.Float64() > budgets[p-1] {
				t.Fatalf("trial %d: phase %d took %v > budget %.0f",
					i, p, d, budgets[p-1])
			}
		}
	}
}

// TestUndecidedBandDuringRun checks Lemma 3 and Lemma 4 jointly on live
// trajectories: after Phase 1, the undecided count stays within
// [(n−xmax)/2 − 8√(n ln n), n/2].
func TestUndecidedBandDuringRun(t *testing.T) {
	n := int64(1 << 13)
	k := 4
	cfg, err := Uniform(n, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		s, err := core.New(cfg, rng.New(rng.Derive(900, uint64(trial))))
		if err != nil {
			t.Fatal(err)
		}
		inPhase2 := false
		var violations int
		s.RunObserved(core.NoBudget, func(sim *core.Simulator, _ core.Event) {
			_, xmax := sim.Max()
			u := sim.Undecided()
			if !inPhase2 && 2*u >= sim.N()-xmax {
				inPhase2 = true
			}
			if !inPhase2 {
				return
			}
			if float64(u) > float64(n)/2 {
				violations++
			}
			if float64(u) < potential.UndecidedLowerBound(n, xmax) {
				violations++
			}
		})
		if violations > 0 {
			t.Fatalf("trial %d: %d band violations", trial, violations)
		}
	}
}

// TestInsignificantOpinionsNeverWin checks the Lemma 6(2) consequence: an
// opinion that starts far below the maximum (insignificant by a wide
// margin) never wins, even though the overall start has no unique leader.
func TestInsignificantOpinionsNeverWin(t *testing.T) {
	n := int64(8192)
	// Opinions 0-3 tied at the top; opinions 4-7 far below.
	thr := int64(potential.SignificanceThreshold(n, 1))
	high := n/4 - 100
	low := int64(50)
	support := []int64{high, high, high, high - thr, low, low, low, low}
	rest := n
	for _, x := range support {
		rest -= x
	}
	cfg, err := FromSupport(support, rest)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 20
	for i := 0; i < trials; i++ {
		report, err := Run(cfg, uint64(i)+700)
		if err != nil {
			t.Fatal(err)
		}
		if report.Result.Outcome != OutcomeConsensus {
			t.Fatalf("trial %d: %v", i, report.Result.Outcome)
		}
		if report.Result.Winner >= 4 {
			t.Fatalf("trial %d: insignificant opinion %d won", i, report.Result.Winner)
		}
	}
}

// TestPhaseTimesMatchTrackerOnFacade cross-checks the facade's phase
// reporting against a manually driven tracker on the same seed.
func TestPhaseTimesMatchTrackerOnFacade(t *testing.T) {
	cfg, err := Uniform(2048, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	report, err := Run(cfg, 31)
	if err != nil {
		t.Fatal(err)
	}
	// Manual run with identical kernel, seed, and check interval.
	s, err := core.New(cfg, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	checkEvery := int(cfg.N()/64) + 1
	tr := phase.NewTracker(phase.WithCheckInterval(checkEvery))
	tr.ObserveNow(s)
	res := s.RunObserved(core.NoBudget, func(sim *core.Simulator, _ core.Event) { tr.Observe(sim) })
	tr.ObserveNow(s)
	if res != report.Result {
		t.Fatalf("results diverge: %+v vs %+v", res, report.Result)
	}
	if tr.Times() != report.Phases {
		t.Fatalf("phase times diverge: %+v vs %+v", tr.Times(), report.Phases)
	}
}

// TestMultiplicativeFasterThanAdditive checks the Theorem 2 regime
// ordering on equal populations: a constant multiplicative bias converges
// faster than a Θ(√(n log n)) additive bias, which in turn is not slower
// than no bias at all (all with the same n, k).
func TestMultiplicativeFasterThanAdditive(t *testing.T) {
	if testing.Short() {
		t.Skip("regime ordering skipped in -short mode")
	}
	n := int64(1 << 13)
	k := 8
	const trials = 15
	meanTime := func(mk func() (*Config, error), seedOff uint64) float64 {
		cfg, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for i := 0; i < trials; i++ {
			report, err := Run(cfg, rng.Derive(seedOff, uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			if report.Result.Outcome != OutcomeConsensus {
				t.Fatalf("%v", report.Result.Outcome)
			}
			sum += report.Result.Interactions.Float64()
		}
		return sum / trials
	}
	mult := meanTime(func() (*Config, error) { return WithMultiplicativeBias(n, k, 2.0, 0) }, 1)
	add := meanTime(func() (*Config, error) {
		return WithAdditiveBias(n, k, 2*int64(SignificanceThreshold(n, 1)), 0)
	}, 2)
	none := meanTime(func() (*Config, error) { return Uniform(n, k, 0) }, 3)
	if mult >= add {
		t.Fatalf("multiplicative bias (%.0f) not faster than additive (%.0f)", mult, add)
	}
	if add > none*1.1 {
		t.Fatalf("additive bias (%.0f) slower than no bias (%.0f)", add, none)
	}
}
