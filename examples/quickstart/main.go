// Quickstart: simulate the k-opinion undecided state dynamics once and
// inspect the result — the smallest useful program against the public API.
package main

import (
	"fmt"
	"log"

	usd "repro"
)

func main() {
	// 100k agents, 10 opinions. Opinion 0 starts with a 2000-agent
	// additive lead — Ω(√(n log n)), so by Theorem 2(2) it should win.
	cfg, err := usd.WithAdditiveBias(100_000, 10, 2_000, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("initial:", cfg)

	report, err := usd.Run(cfg, 42)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("outcome:      ", report.Result.Outcome)
	fmt.Println("winner:       ", report.Result.Winner)
	fmt.Printf("interactions:  %v (%.1f per agent)\n",
		report.Result.Interactions, report.Result.ParallelTime)

	// The paper's five-phase decomposition, measured on this very run.
	for p := 1; p <= 5; p++ {
		if report.Phases.Reached(p) {
			fmt.Printf("phase %d ended at interaction %v\n", p, report.Phases.End[p-1])
		}
	}
}
