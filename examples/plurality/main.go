// Plurality consensus under the three bias regimes of Theorem 2.
//
// The example runs the USD from a multiplicative-bias, an additive-bias,
// and a no-bias configuration (the paper's three cases), compares measured
// interaction counts against the theorem's bound for each regime, and
// verifies the winner: under bias the initial plurality must win; without
// bias any (significant) opinion may.
package main

import (
	"fmt"
	"log"
	"math"

	usd "repro"
)

func main() {
	const (
		n      = int64(50_000)
		k      = 8
		trials = 5
	)
	regimes := []struct {
		name string
		mk   func() (*usd.Config, error)
	}{
		{"multiplicative bias 2", func() (*usd.Config, error) {
			return usd.WithMultiplicativeBias(n, k, 2.0, 0)
		}},
		{"additive bias 4√(n ln n)", func() (*usd.Config, error) {
			bias := int64(4 * usd.SignificanceThreshold(n, 1))
			return usd.WithAdditiveBias(n, k, bias, 0)
		}},
		{"no bias (uniform)", func() (*usd.Config, error) {
			return usd.Uniform(n, k, 0)
		}},
	}

	fmt.Printf("n=%d, k=%d, %d trials per regime\n\n", n, k, trials)
	for _, reg := range regimes {
		cfg, err := reg.mk()
		if err != nil {
			log.Fatal(err)
		}
		bound, err := usd.TheoremBound(cfg)
		if err != nil {
			log.Fatal(err)
		}
		var sum float64
		pluralityWins := 0
		for i := 0; i < trials; i++ {
			report, err := usd.Run(cfg, uint64(1000+i))
			if err != nil {
				log.Fatal(err)
			}
			if report.Result.Outcome != usd.OutcomeConsensus {
				log.Fatalf("%s: trial %d ended with %v", reg.name, i, report.Result.Outcome)
			}
			sum += report.Result.Interactions.Float64()
			if report.Result.Winner == report.InitialLeader {
				pluralityWins++
			}
		}
		mean := sum / trials
		winNote := fmt.Sprintf("plurality won %d/%d", pluralityWins, trials)
		if cfg.AdditiveBias() == 0 {
			winNote = "tied start: any winner valid"
		}
		fmt.Printf("%-26s mean T = %10.0f  T/bound = %.2f  %s\n",
			reg.name, mean, mean/bound, winNote)
	}

	fmt.Printf("\nTheorem 2 reference: multiplicative O(n log n + nk) = %.2g;\n"+
		"additive/no-bias O(k n log n) = %.2g interactions.\n",
		float64(n)*math.Log(float64(n))+float64(n)*float64(k),
		float64(k)*float64(n)*math.Log(float64(n)))
}
