// Population protocol vs gossip model (the paper's Appendix D).
//
// The same USD update rule behaves differently under the two scheduling
// models: sequential random pairs (population protocol) vs synchronous
// rounds of parallel pulls (gossip). Appendix D shows the population
// model's parallel time O(log n + n/x1(0)) beats the gossip-model bound
// O(md(x)·log n) of Becchetti et al. whenever the initial plurality is
// small (x1(0) ≲ (n/k)·log n). This example measures both models on the
// two regimes and prints the comparison.
package main

import (
	"fmt"
	"log"
	"math"

	usd "repro"
)

func main() {
	const (
		n      = int64(16_384)
		k      = 16
		trials = 5
	)
	lnN := math.Log(float64(n))

	regimes := []struct {
		name string
		mk   func() (*usd.Config, error)
	}{
		{"small plurality: x1 ≈ 1.5·n/k", func() (*usd.Config, error) {
			return usd.WithMultiplicativeBias(n, k, 1.5, 0)
		}},
		{"large plurality: x1 ≈ 0.9·n", func() (*usd.Config, error) {
			return usd.Zipf(n, k, 6.0, 0) // heavy head: x1 close to n
		}},
	}

	fmt.Printf("USD in two models, n=%d k=%d, %d trials per cell\n\n", n, k, trials)
	fmt.Printf("%-32s %-8s %-8s %-14s %-14s %s\n",
		"regime", "x1(0)", "md(x)", "pop par.time", "gossip rounds", "gossip/pop")
	for _, reg := range regimes {
		cfg, err := reg.mk()
		if err != nil {
			log.Fatal(err)
		}
		md := usd.MonochromaticDistance(cfg.Support)

		var popPar, gosRounds float64
		for i := 0; i < trials; i++ {
			report, err := usd.Run(cfg, uint64(100+i))
			if err != nil {
				log.Fatal(err)
			}
			if report.Result.Outcome != usd.OutcomeConsensus {
				log.Fatalf("population run %d: %v", i, report.Result.Outcome)
			}
			popPar += report.Result.ParallelTime / trials

			gres, err := usd.RunGossip(cfg, uint64(200+i), 0)
			if err != nil {
				log.Fatal(err)
			}
			if !gres.Consensus {
				log.Fatalf("gossip run %d did not converge", i)
			}
			gosRounds += float64(gres.Rounds) / trials
		}
		fmt.Printf("%-32s %-8d %-8.2f %-14.1f %-14.1f %.2f\n",
			reg.name, cfg.Support[0], md, popPar, gosRounds, gosRounds/popPar)
	}

	fmt.Printf("\nAppendix D compares the bounds O(log n + n/x1) (population, parallel\n"+
		"time) vs O(md(x)·log n) (gossip): the population model gains relative\n"+
		"to gossip as x1(0) shrinks toward n/k — so the gossip/pop ratio above\n"+
		"must be larger in the small-plurality regime. Crossover scale:\n"+
		"(n/k)·ln n = %.0f; gossip bound ≈ md·ln n (up to %.0f rounds here).\n",
		float64(n)/float64(k)*lnN, float64(k)*lnN)
}
