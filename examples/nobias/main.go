// Symmetry breaking from a perfectly unbiased start.
//
// With every opinion at exactly n/k support there is no signal to amplify —
// yet Theorem 2 shows the USD still converges in O(k n log n) interactions,
// with Phase 2 manufacturing an additive bias out of pure noise (Lemma 7's
// anti-concentration). This example visualizes that: it runs many tied
// starts, reports which opinion won (≈ uniform), and shows the gap between
// the top two opinions taking off on one sample run.
package main

import (
	"fmt"
	"log"
	"math"

	usd "repro"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/trace"
)

func main() {
	const (
		n      = int64(20_000)
		k      = 4
		trials = 40
	)
	cfg, err := usd.Uniform(n, k, 0)
	if err != nil {
		log.Fatal(err)
	}

	winners := make([]int, k)
	var meanT float64
	for i := 0; i < trials; i++ {
		report, err := usd.Run(cfg, uint64(i)+1)
		if err != nil {
			log.Fatal(err)
		}
		if report.Result.Outcome != usd.OutcomeConsensus {
			log.Fatalf("trial %d: %v", i, report.Result.Outcome)
		}
		winners[report.Result.Winner]++
		meanT += report.Result.Interactions.Float64() / trials
	}
	fmt.Printf("perfectly tied start, n=%d k=%d, %d trials\n", n, k, trials)
	fmt.Printf("winner counts per opinion: %v (uniform-ish expected)\n", winners)
	fmt.Printf("mean consensus time: %.0f interactions = %.2f × k·n·ln n\n\n",
		meanT, meanT/(float64(k)*float64(n)*math.Log(float64(n))))

	// One sample run: record the top-two gap as it grows from 0.
	s, err := core.New(cfg, rng.New(7))
	if err != nil {
		log.Fatal(err)
	}
	rec := trace.NewRecorder("top-two gap", n/4)
	target := 4 * usd.SignificanceThreshold(n, 1)
	s.RunUntil(core.NoBudget, func(sim *core.Simulator) bool {
		var first, second int64
		for i := 0; i < sim.K(); i++ {
			x := sim.Support(i)
			if x > first {
				first, second = x, first
			} else if x > second {
				second = x
			}
		}
		gap := float64(first - second)
		rec.Observe(sim.Interactions(), gap)
		return gap >= target
	})
	plot, err := trace.RenderASCII(76, 16, trace.Downsample(rec.Series, 76))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gap between top two opinions until it reaches 4√(n ln n) = %.0f:\n\n%s\n", target, plot)
}
