// Package examples holds compile-and-run smoke tests for the example
// programs. Each example is a standalone main package, so a breaking API
// change would otherwise ship silently: `go test ./...` only type-checks
// packages with tests, and nothing executed the examples.
package examples

import (
	"context"
	"os"
	"os/exec"
	"testing"
	"time"
)

// contextWithTimeout bounds a single example run so a hung example fails
// the test instead of wedging the suite.
func contextWithTimeout(t *testing.T, d time.Duration) (context.Context, context.CancelFunc) {
	t.Helper()
	if dl, ok := t.Deadline(); ok {
		if until := time.Until(dl) - 10*time.Second; until > 0 && until < d {
			d = until
		}
	}
	return context.WithTimeout(context.Background(), d)
}

// exampleDirs lists every example program; keep in sync with the
// subdirectories of examples/.
var exampleDirs = []string{
	"exactsmall",
	"modelcompare",
	"nobias",
	"plurality",
	"quickstart",
	"stubborn",
}

func TestExampleListComplete(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, d := range exampleDirs {
		want[d] = true
	}
	for _, e := range entries {
		if e.IsDir() && !want[e.Name()] {
			t.Errorf("examples/%s is not covered by the smoke test; add it to exampleDirs", e.Name())
		}
	}
}

func TestExamplesCompileAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples invoke the go toolchain; skipped in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}
	for _, dir := range exampleDirs {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := contextWithTimeout(t, 3*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", "./examples/"+dir)
			cmd.Dir = ".." // module root
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s failed: %v\n%s", dir, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("examples/%s produced no output", dir)
			}
		})
	}
}
