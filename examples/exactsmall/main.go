// Exact analysis of small populations.
//
// For small n the USD's configuration space is enumerable, so expected
// consensus times and winning probabilities can be solved exactly from the
// absorbing Markov chain instead of estimated by simulation. This example
// prints the exact winning probability of the leading opinion as its
// initial margin grows — the exact finite-n version of the approximate-
// majority threshold that experiment F3 measures at scale — and
// cross-checks one cell against a simulated estimate.
package main

import (
	"fmt"
	"log"

	usd "repro"
	"repro/internal/exact"
)

func main() {
	const n = int64(60)
	chain, err := exact.New(n, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact USD chain: n=%d, k=2, %d states\n\n", n, chain.States())

	// Solve both linear systems once; individual starts are lookups.
	w, err := chain.WinProbabilities(0)
	if err != nil {
		log.Fatal(err)
	}
	h, err := chain.ExpectedConsensusTimes()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("margin  x0  x1  P[opinion 0 wins]  E[interactions]")
	for margin := int64(0); margin <= 20; margin += 4 {
		x0 := (n + margin) / 2
		x1 := n - x0
		cfg, err := usd.FromSupport([]int64{x0, x1}, 0)
		if err != nil {
			log.Fatal(err)
		}
		id, err := chain.StateID(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7d %-3d %-3d %-18.4f %.1f\n", margin, x0, x1, w[id], h[id])
	}

	// Cross-check one cell by simulation.
	cfg, err := usd.FromSupport([]int64{34, 26}, 0)
	if err != nil {
		log.Fatal(err)
	}
	pw, err := chain.WinProbabilityFrom(cfg, 0)
	if err != nil {
		log.Fatal(err)
	}
	const trials = 20000
	wins := 0
	for i := 0; i < trials; i++ {
		report, err := usd.Run(cfg, uint64(i)+1)
		if err != nil {
			log.Fatal(err)
		}
		if report.Result.Winner == 0 {
			wins++
		}
	}
	fmt.Printf("\ncross-check at margin 8: exact P = %.4f, simulated P = %.4f (%d trials)\n",
		pw, float64(wins)/trials, trials)
}
