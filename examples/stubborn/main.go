// Stubborn-agent steering of a dead-heat election.
//
// The example runs the stubborn-agent USD variant (arXiv:2406.07335) from
// an exact k=2 tie and plants a growing stubborn minority on one side:
// agents that never change opinion but still convert others. With no
// stubborn agents either side wins a fair coin flip; a small stubborn
// minority tilts the odds; a few percent of the population decides the
// election essentially always. Runs end in dominance — the stubborn
// residue makes full consensus unreachable — so the reported times are
// dominance times, not consensus times.
package main

import (
	"fmt"
	"log"

	usd "repro"
)

func main() {
	const (
		n      = int64(20_000)
		trials = 20
		seed   = uint64(2024)
	)
	fmt.Printf("stubborn steering, n=%d, k=2 dead heat, %d trials per row\n\n", n, trials)
	fmt.Printf("%-22s %-12s %-14s %s\n", "variant", "steered wins", "mean T/n", "outcomes")
	for _, b := range []int64{0, n / 100, n / 20} {
		v := usd.Variant{Name: "stubborn", Stubborn: []int64{b, 0}}
		cfg, err := usd.Uniform(n, 2, 0)
		if err != nil {
			log.Fatal(err)
		}
		wins := 0
		var sum float64
		for i := 0; i < trials; i++ {
			report, err := usd.RunVariant(cfg, v, seed+uint64(i), usd.NoBudget, usd.KernelExact)
			if err != nil {
				log.Fatal(err)
			}
			if report.Result.Outcome != usd.OutcomeDominance {
				log.Fatalf("b=%d trial %d ended with %v, want dominance", b, i, report.Result.Outcome)
			}
			if report.Result.Winner == 0 {
				wins++
			}
			sum += report.Result.Interactions.Float64()
		}
		fmt.Printf("%-22s %-12s %-14.1f all dominance\n",
			v.Spec(), fmt.Sprintf("%d/%d", wins, trials), sum/trials/float64(n))
	}
	fmt.Printf("\nA stubborn minority of %d agents (5%% of n) steers a perfect tie\n"+
		"essentially every time; see the K5-variants experiment for the\n"+
		"Wilson-bounded version of this claim.\n", n/20)
}
