package usd

import (
	"math"
	"testing"
)

func TestRunAdditiveBias(t *testing.T) {
	cfg, err := WithAdditiveBias(5000, 5, 800, 0)
	if err != nil {
		t.Fatal(err)
	}
	report, err := Run(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	if report.Result.Outcome != OutcomeConsensus {
		t.Fatalf("outcome %v", report.Result.Outcome)
	}
	if report.Result.Winner != 0 {
		t.Fatalf("large additive bias lost: winner %d", report.Result.Winner)
	}
	if report.InitialLeader != 0 {
		t.Fatalf("initial leader %d", report.InitialLeader)
	}
	for p := 1; p <= 5; p++ {
		if !report.Phases.Reached(p) {
			t.Fatalf("phase %d not recorded: %+v", p, report.Phases)
		}
	}
	if report.Phases.End[4] != report.Result.Interactions {
		t.Fatalf("phase 5 end %d != consensus time %d",
			report.Phases.End[4], report.Result.Interactions)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg, err := Uniform(2000, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result != b.Result || a.Phases != b.Phases {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c, err := Run(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.Interactions == c.Result.Interactions {
		t.Log("note: different seeds gave equal consensus times (possible but unlikely)")
	}
}

func TestRunWithBudget(t *testing.T) {
	cfg, err := Uniform(100000, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	report, err := RunWithBudget(cfg, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if report.Result.Outcome != OutcomeBudget {
		t.Fatalf("outcome %v, want budget", report.Result.Outcome)
	}
	if report.Result.Interactions != ClockOf(1000) {
		t.Fatalf("interactions %v, want 1000", report.Result.Interactions)
	}
}

func TestRunInvalidConfig(t *testing.T) {
	if _, err := Run(&Config{}, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := NewSimulator(&Config{}, 1); err == nil {
		t.Fatal("invalid config accepted by NewSimulator")
	}
}

func TestNewSimulatorOptions(t *testing.T) {
	cfg, err := Uniform(500, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSimulator(cfg, 3, WithSkipping(false))
	if err != nil {
		t.Fatal(err)
	}
	ev := s.Step()
	if ev.Interactions != ClockOf(1) {
		t.Fatalf("clock %v after one non-skipping step", ev.Interactions)
	}
}

func TestRunGossip(t *testing.T) {
	cfg, err := WithMultiplicativeBias(2000, 4, 2.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunGossip(cfg, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consensus {
		t.Fatalf("gossip did not converge: %+v", res)
	}
	if res.Winner != 0 {
		t.Fatalf("gossip winner %d", res.Winner)
	}
	if _, err := RunGossip(&Config{}, 1, 0); err == nil {
		t.Fatal("invalid config accepted by RunGossip")
	}
}

func TestGeneratorsExported(t *testing.T) {
	if _, err := FromSupport([]int64{3, 2}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Zipf(1000, 5, 1.0, 0); err != nil {
		t.Fatal(err)
	}
	cfg, err := WithMultiplicativeBias(1000, 4, 2.0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MultiplicativeBias() < 2 {
		t.Fatalf("ratio %v", cfg.MultiplicativeBias())
	}
}

func TestTheoryHelpers(t *testing.T) {
	if got := EquilibriumUndecided(300, 2); math.Abs(got-100) > 1e-9 {
		t.Fatalf("u* = %v", got)
	}
	if got := SignificanceThreshold(10000, 1); got <= 0 {
		t.Fatalf("threshold = %v", got)
	}
	if got := MonochromaticDistance([]int64{10, 10}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("md = %v", got)
	}
}

func TestTheoremBound(t *testing.T) {
	mult, err := WithMultiplicativeBias(10000, 4, 2.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := TheoremBound(mult)
	if err != nil {
		t.Fatal(err)
	}
	n := 10000.0
	_, x1 := mult.Max()
	want := n*math.Log(n) + n*n/float64(x1)
	if math.Abs(bm-want) > 1e-6 {
		t.Fatalf("multiplicative bound = %v, want %v", bm, want)
	}

	flat, err := Uniform(10000, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := TheoremBound(flat)
	if err != nil {
		t.Fatal(err)
	}
	_, x1f := flat.Max()
	wantFlat := n * n * math.Log(n) / float64(x1f)
	if math.Abs(bf-wantFlat) > 1e-6 {
		t.Fatalf("no-bias bound = %v, want %v", bf, wantFlat)
	}

	if _, err := TheoremBound(&Config{}); err == nil {
		t.Fatal("invalid config accepted")
	}
	allU, err := FromSupport([]int64{0, 0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TheoremBound(allU); err == nil {
		t.Fatal("all-undecided config accepted")
	}
}

func TestRunTimeWithinTheoremBound(t *testing.T) {
	// Smoke-level shape check: measured consensus time should be within a
	// small constant of the Theorem 2 bound.
	cfg, err := WithAdditiveBias(4096, 8, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := TheoremBound(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := Run(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := report.Result.Interactions.Float64() / bound; ratio > 10 {
		t.Fatalf("consensus time %v is %.1fx the theorem bound %v",
			report.Result.Interactions, ratio, bound)
	}
}
