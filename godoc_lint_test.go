package usd

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// godocAuditPackages are the packages whose exported API must be fully
// documented (the ISSUE 4 godoc audit, extended to the hot-path substrate
// in ISSUE 5): the trial engine, the statistical substrate, the
// distributed coordinator, the random-number layer, and the Fenwick trees.
// CI runs this test as its missing-doc lint step, so the audit stays true
// as the packages grow.
var godocAuditPackages = []string{
	"internal/experiment",
	"internal/stats",
	"internal/dist",
	"internal/rng",
	"internal/fenwick",
}

// TestGodocCoverage fails for every exported identifier in the audited
// packages that lacks a doc comment: package clauses, top-level types,
// functions, methods on exported types, consts, vars, exported struct
// fields, and interface methods.
func TestGodocCoverage(t *testing.T) {
	for _, dir := range godocAuditPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			packageDocumented := false
			for _, f := range pkg.Files {
				if f.Doc != nil {
					packageDocumented = true
				}
			}
			if !packageDocumented {
				t.Errorf("%s: package %s has no package doc comment", dir, pkg.Name)
			}
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					lintDecl(t, fset, decl)
				}
			}
		}
	}
}

// lintDecl reports undocumented exported identifiers of one top-level
// declaration.
func lintDecl(t *testing.T, fset *token.FileSet, decl ast.Decl) {
	report := func(pos token.Pos, what string) {
		t.Errorf("%s: %s is exported but has no doc comment", fset.Position(pos), what)
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !receiverExported(d) {
			return
		}
		if d.Doc == nil {
			report(d.Pos(), "func/method "+d.Name.Name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				if d.Doc == nil && s.Doc == nil {
					report(s.Pos(), "type "+s.Name.Name)
				}
				lintTypeBody(t, fset, s)
			case *ast.ValueSpec:
				for _, name := range s.Names {
					if !name.IsExported() {
						continue
					}
					// A doc on the const/var block covers the group; a doc
					// or trailing comment on the spec covers the name.
					if d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(name.Pos(), fmt.Sprintf("const/var %s", name.Name))
					}
				}
			}
		}
	}
}

// lintTypeBody reports undocumented exported struct fields and interface
// methods of an exported type.
func lintTypeBody(t *testing.T, fset *token.FileSet, s *ast.TypeSpec) {
	report := func(pos token.Pos, what string) {
		t.Errorf("%s: %s of %s is exported but has no doc comment", fset.Position(pos), what, s.Name.Name)
	}
	switch tt := s.Type.(type) {
	case *ast.StructType:
		for _, field := range tt.Fields.List {
			if field.Doc != nil || field.Comment != nil {
				continue
			}
			for _, name := range field.Names {
				if name.IsExported() {
					report(name.Pos(), "field "+name.Name)
				}
			}
		}
	case *ast.InterfaceType:
		for _, m := range tt.Methods.List {
			if m.Doc != nil || m.Comment != nil {
				continue
			}
			for _, name := range m.Names {
				if name.IsExported() {
					report(name.Pos(), "method "+name.Name)
				}
			}
		}
	}
}

// receiverExported reports whether a function is either free-standing or a
// method on an exported type (methods on unexported types are not part of
// the exported API surface).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			typ = tt.X
		case *ast.IndexListExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}
