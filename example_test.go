package usd_test

import (
	"fmt"

	usd "repro"
)

// ExampleRun simulates the USD from a configuration with a strong additive
// bias: the initial plurality (Opinion 0) wins.
func ExampleRun() {
	cfg, err := usd.WithAdditiveBias(10_000, 5, 2_000, 0)
	if err != nil {
		fmt.Println("config:", err)
		return
	}
	report, err := usd.Run(cfg, 42)
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Println("outcome:", report.Result.Outcome)
	fmt.Println("winner:", report.Result.Winner)
	fmt.Println("winner was initial plurality:", report.Result.Winner == report.InitialLeader)
	// Output:
	// outcome: consensus
	// winner: 0
	// winner was initial plurality: true
}

// ExampleNewSimulator drives the simulator step by step with a custom
// stopping rule: stop as soon as one opinion holds a 2/3 majority.
func ExampleNewSimulator() {
	cfg, err := usd.Uniform(3_000, 3, 0)
	if err != nil {
		fmt.Println("config:", err)
		return
	}
	s, err := usd.NewSimulator(cfg, 7)
	if err != nil {
		fmt.Println("simulator:", err)
		return
	}
	res := s.RunUntil(usd.NoBudget, func(sim *usd.Simulator) bool {
		_, xmax := sim.Max()
		return 3*xmax >= 2*sim.N()
	})
	_, xmax := s.Max()
	fmt.Println("reached 2/3 majority:", 3*xmax >= 2*s.N())
	fmt.Println("still before consensus:", res.Outcome != usd.OutcomeConsensus || xmax == s.N())
	// Output:
	// reached 2/3 majority: true
	// still before consensus: true
}

// ExampleEquilibriumUndecided shows the unstable equilibrium for the number
// of undecided agents: u* = n(k−1)/(2k−1), approaching n/2 for large k.
func ExampleEquilibriumUndecided() {
	fmt.Printf("k=2:  %.0f\n", usd.EquilibriumUndecided(30_000, 2))
	fmt.Printf("k=10: %.0f\n", usd.EquilibriumUndecided(30_000, 10))
	// Output:
	// k=2:  10000
	// k=10: 14211
}
