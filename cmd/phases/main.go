// Command phases measures the empirical duration of the paper's five
// analysis phases for one (n, k) cell across repeated no-bias runs, and
// compares each against its §2.1 bound.
//
// Usage:
//
//	phases -n 65536 -k 16 -trials 20
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/phase"
	"repro/internal/rng"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "phases:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("phases", flag.ContinueOnError)
	var (
		n      = fs.Int64("n", 1<<14, "population size")
		k      = fs.Int("k", 8, "number of opinions")
		u0     = fs.Int64("u0", 0, "initially undecided agents")
		trials = fs.Int("trials", 10, "number of independent runs")
		seed   = fs.Uint64("seed", 1, "base random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := conf.Uniform(*n, *k, *u0)
	if err != nil {
		return err
	}

	durations := make([][]float64, phase.Count)
	winners := make([]int64, *k)
	for i := 0; i < *trials; i++ {
		src := rng.New(rng.Derive(*seed, uint64(i)))
		s, err := core.New(cfg, src)
		if err != nil {
			return err
		}
		tr := phase.NewTracker(phase.WithCheckInterval(phase.DefaultCheckInterval(*n)))
		tr.ObserveNow(s)
		res := s.RunWatched(core.NoBudget, tr)
		tr.ObserveNow(s)
		if res.Outcome != core.OutcomeConsensus {
			return fmt.Errorf("trial %d did not reach consensus: %v", i, res.Outcome)
		}
		winners[res.Winner]++
		for p := 1; p <= phase.Count; p++ {
			if d, ok := tr.Times().Duration(p); ok {
				durations[p-1] = append(durations[p-1], d.Float64())
			}
		}
	}

	lnN := math.Log(float64(*n))
	bounds := []struct {
		name  string
		value float64
	}{
		{"n ln n", float64(*n) * lnN},
		{"k n ln n", float64(*k) * float64(*n) * lnN},
		{"k n ln n", float64(*k) * float64(*n) * lnN},
		{"k n + n ln n", float64(*k)*float64(*n) + float64(*n)*lnN},
		{"n ln n", float64(*n) * lnN},
	}
	fmt.Printf("phase durations over %d no-bias runs, n=%d k=%d:\n\n", *trials, *n, *k)
	fmt.Printf("%-7s %-12s %-12s %-12s %-14s %s\n",
		"phase", "mean", "median", "p90", "bound term", "mean/bound")
	for p := 1; p <= phase.Count; p++ {
		s, err := stats.Summarize(durations[p-1])
		if err != nil {
			fmt.Printf("%-7d (never completed)\n", p)
			continue
		}
		fmt.Printf("%-7d %-12.4g %-12.4g %-12.4g %-14s %.4f\n",
			p, s.Mean, s.Median, s.P90, bounds[p-1].name, s.Mean/bounds[p-1].value)
	}
	fmt.Printf("\nwinner distribution over opinions: %v\n", winners)
	return nil
}
