package main

import (
	"os"
	"testing"
)

func silence(t *testing.T, fn func() error) error {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		_ = devnull.Close()
	}()
	return fn()
}

func TestPhasesSmallRun(t *testing.T) {
	err := silence(t, func() error {
		return run([]string{"-n", "2048", "-k", "4", "-trials", "3", "-seed", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPhasesWithUndecided(t *testing.T) {
	err := silence(t, func() error {
		return run([]string{"-n", "1024", "-k", "3", "-trials", "2", "-u0", "128"})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPhasesInvalidConfig(t *testing.T) {
	err := silence(t, func() error {
		return run([]string{"-n", "8", "-k", "100"})
	})
	if err == nil {
		t.Fatal("k > n accepted")
	}
}

func TestPhasesBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
