package main

import (
	"os"
	"strings"
	"testing"
)

// silence redirects stdout to /dev/null for the duration of fn, keeping
// test output readable.
func silence(t *testing.T, fn func() error) error {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		_ = devnull.Close()
	}()
	return fn()
}

func TestRunSmallSimulation(t *testing.T) {
	err := silence(t, func() error {
		return run([]string{"-n", "2048", "-k", "4", "-bias", "200", "-seed", "3"})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithPlot(t *testing.T) {
	err := silence(t, func() error {
		return run([]string{"-n", "1024", "-k", "3", "-seed", "5", "-plot"})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithBudget(t *testing.T) {
	err := silence(t, func() error {
		return run([]string{"-n", "4096", "-k", "8", "-budget", "100"})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunMultiplicativeAndZipf(t *testing.T) {
	for _, args := range [][]string{
		{"-n", "2048", "-k", "4", "-mult", "2.0"},
		{"-n", "2048", "-k", "4", "-zipf", "1.0"},
		{"-n", "2048", "-k", "4", "-u0", "256"},
	} {
		if err := silence(t, func() error { return run(args) }); err != nil {
			t.Fatalf("args %v: %v", args, err)
		}
	}
}

func TestConflictingBiasFlagsRejected(t *testing.T) {
	err := silence(t, func() error {
		return run([]string{"-bias", "10", "-mult", "2.0"})
	})
	if err == nil || !strings.Contains(err.Error(), "at most one") {
		t.Fatalf("conflicting flags: err = %v", err)
	}
}

func TestBadFlagRejected(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	err := silence(t, func() error {
		return run([]string{"-n", "10", "-k", "100"})
	})
	if err == nil {
		t.Fatal("k > n accepted")
	}
}

func TestBuildConfigDirect(t *testing.T) {
	cfg, err := buildConfig(100, 4, 10, 5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.N() != 100 || cfg.Undecided != 10 {
		t.Fatalf("config %v", cfg)
	}
	if _, err := buildConfig(100, 4, 0, 5, 2.0, 1.0); err == nil {
		t.Fatal("three bias flags accepted")
	}
}
