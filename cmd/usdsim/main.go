// Command usdsim runs a single simulation of the k-opinion undecided state
// dynamics and reports the outcome, the empirical phase structure, and
// (optionally) an ASCII trajectory of the undecided count and the leading
// opinion.
//
// Usage:
//
//	usdsim -n 100000 -k 10 -bias 2000 -seed 42 -plot
//	usdsim -n 1000000000 -k 32 -kernel batched
//	usdsim -n 100000 -k 2 -variant stubborn:1000,0
//	usdsim -n 100000 -k 3 -u0 40000 -variant unconstrained
//
// Exactly one of -bias (additive), -mult (multiplicative ratio), or -zipf
// (power-law exponent) may be given; the default is the unbiased uniform
// configuration. -kernel batched selects the bulk stepping kernel, which
// makes billion-agent runs tractable within its drift-tolerance accuracy
// contract (-tol, default 0.05). -variant selects the dynamics variant:
// classic k-USD (default), stubborn:b0,b1,... (per-opinion stubborn
// agents; runs end in dominance rather than consensus), or unconstrained
// (latent-opinion USD; exact kernel only).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	usd "repro"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "usdsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("usdsim", flag.ContinueOnError)
	var (
		n      = fs.Int64("n", 1<<14, "population size")
		k      = fs.Int("k", 8, "number of opinions")
		u0     = fs.Int64("u0", 0, "initially undecided agents")
		bias   = fs.Int64("bias", 0, "additive bias of Opinion 0 over the rest")
		mult   = fs.Float64("mult", 0, "multiplicative bias of Opinion 0 (ratio > 1)")
		zipf   = fs.Float64("zipf", 0, "Zipf exponent for power-law supports")
		seed   = fs.Uint64("seed", 1, "random seed")
		budget = fs.Float64("budget", 0, "interaction budget, accepts 1e20-style values (0 = run to consensus)")
		plot   = fs.Bool("plot", false, "render an ASCII trajectory")
		kernel  = fs.String("kernel", "exact", "stepping kernel: exact, batched, or auto")
		tol     = fs.Float64("tol", 0, "batched/auto-kernel drift tolerance (0 = default)")
		varSpec = fs.String("variant", "", "dynamics variant spec: classic, stubborn:b0,b1,..., or unconstrained (empty = classic)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	kern, err := core.ParseKernel(*kernel, *tol)
	if err != nil {
		return err
	}
	variant, err := usd.ParseVariantSpec(*varSpec)
	if err != nil {
		return err
	}
	if err := variant.ValidateKernel(kern); err != nil {
		return err
	}

	cfg, err := buildConfig(*n, *k, *u0, *bias, *mult, *zipf)
	if err != nil {
		return err
	}
	variant.Configure(cfg)
	if err := cfg.Validate(); err != nil {
		return err
	}
	fmt.Printf("initial configuration: %v\n", cfg)
	if !variant.Classic() {
		fmt.Printf("dynamics variant: %v\n", variant)
	}
	bound, err := usd.TheoremBound(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("theorem 2 bound (up to constants): %.3g interactions\n\n", bound)

	b := usd.ClockOfFloat(*budget)
	if *plot {
		return runPlotted(cfg, variant, *seed, b, kern)
	}

	report, err := usd.RunVariant(cfg, variant, *seed, b, kern)
	if err != nil {
		return err
	}
	printReport(cfg, report, bound)
	return nil
}

func buildConfig(n int64, k int, u0, bias int64, mult, zipf float64) (*usd.Config, error) {
	set := 0
	if bias > 0 {
		set++
	}
	if mult > 0 {
		set++
	}
	if zipf > 0 {
		set++
	}
	if set > 1 {
		return nil, errors.New("at most one of -bias, -mult, -zipf may be given")
	}
	switch {
	case bias > 0:
		return usd.WithAdditiveBias(n, k, bias, u0)
	case mult > 0:
		return usd.WithMultiplicativeBias(n, k, mult, u0)
	case zipf > 0:
		return usd.Zipf(n, k, zipf, u0)
	default:
		return usd.Uniform(n, k, u0)
	}
}

func printReport(cfg *usd.Config, report usd.Report, bound float64) {
	res := report.Result
	fmt.Printf("outcome:       %v\n", res.Outcome)
	if res.Outcome == usd.OutcomeConsensus || res.Outcome == usd.OutcomeDominance {
		fmt.Printf("winner:        opinion %d (initial support %d, initial leader: %d)\n",
			res.Winner, cfg.Support[res.Winner], report.InitialLeader)
	}
	fmt.Printf("interactions:  %v (%.3g per agent)\n", res.Interactions, res.ParallelTime)
	fmt.Printf("vs bound:      %.2fx\n\n", res.Interactions.Float64()/bound)
	fmt.Println("phase structure (paper §2.1):")
	names := []string{
		"1: rise of the undecided      (u >= (n-xmax)/2)",
		"2: additive bias generated    (unique significant opinion)",
		"3: multiplicative bias        (xmax >= 2*second)",
		"4: absolute majority          (xmax >= 2n/3)",
		"5: consensus                  (xmax = n)",
	}
	for p := 1; p <= 5; p++ {
		if report.Phases.Reached(p) {
			d, _ := report.Phases.Duration(p)
			fmt.Printf("  phase %-55s end=%-12v duration=%v\n",
				names[p-1], report.Phases.End[p-1], d)
		} else {
			fmt.Printf("  phase %-55s not reached\n", names[p-1])
		}
	}
}

func runPlotted(cfg *usd.Config, variant usd.Variant, seed uint64, budget usd.Clock, kern core.Kernel) error {
	dyn, err := variant.Dynamics()
	if err != nil {
		return err
	}
	s, err := core.New(cfg, rng.New(seed), core.WithKernel(kern), core.WithDynamics(dyn))
	if err != nil {
		return err
	}
	every := cfg.N() / 2
	if every < 1 {
		every = 1
	}
	recU := trace.NewRecorder("u(t)", every)
	recMax := trace.NewRecorder("xmax(t)", every)
	recSecond := trace.NewRecorder("x2nd(t)", every)
	res := s.RunObserved(budget, func(sim *core.Simulator, ev core.Event) {
		var first, second int64
		for i := 0; i < sim.K(); i++ {
			x := sim.Support(i)
			if x > first {
				first, second = x, first
			} else if x > second {
				second = x
			}
		}
		recU.Observe(ev.Interactions, float64(sim.Undecided()))
		recMax.Observe(ev.Interactions, float64(first))
		recSecond.Observe(ev.Interactions, float64(second))
	})
	uStar := usd.EquilibriumUndecided(cfg.N(), cfg.K())
	ref := &trace.Series{Name: fmt.Sprintf("u* = %.0f", uStar)}
	for _, x := range recU.Series.X {
		ref.Add(x, uStar)
	}
	plot, err := trace.RenderASCII(96, 24,
		trace.Downsample(recU.Series, 96),
		trace.Downsample(recMax.Series, 96),
		trace.Downsample(recSecond.Series, 96),
		trace.Downsample(ref, 96))
	if err != nil {
		return err
	}
	fmt.Println(plot)
	fmt.Printf("outcome: %v after %v interactions (%.3g per agent)\n",
		res.Outcome, res.Interactions, res.ParallelTime)
	if res.Outcome == usd.OutcomeConsensus {
		fmt.Printf("winner: opinion %d\n", res.Winner)
	}
	return nil
}
