package main

import (
	"os"
	"strings"
	"testing"
)

func silence(t *testing.T, fn func() error) error {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		_ = devnull.Close()
	}()
	return fn()
}

func TestList(t *testing.T) {
	if err := silence(t, func() error { return run([]string{"-list"}) }); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	err := silence(t, func() error {
		return run([]string{"-run", "A3-self-interaction", "-quick", "-trials", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	err := silence(t, func() error {
		return run([]string{"-run", "A2-agent-vs-aggregate, A3-self-interaction", "-quick", "-trials", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	err := silence(t, func() error { return run([]string{"-run", "nope"}) })
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestAdaptiveFlagValidation(t *testing.T) {
	if err := silence(t, func() error {
		return run([]string{"-run", "K3-many-opinions", "-rel", "2"})
	}); err == nil || !strings.Contains(err.Error(), "-rel") {
		t.Fatalf("out-of-range -rel accepted: %v", err)
	}
	if err := silence(t, func() error {
		return run([]string{"-run", "K3-many-opinions", "-maxtrials", "-1"})
	}); err == nil || !strings.Contains(err.Error(), "-maxtrials") {
		t.Fatalf("negative -maxtrials accepted: %v", err)
	}
}

// TestRunK4Adaptive exercises the lower-bound experiment end to end through
// the CLI, with the adaptive knobs it reads.
func TestRunK4Adaptive(t *testing.T) {
	if testing.Short() {
		t.Skip("K4 quick cells are seconds-scale; skipped in -short mode")
	}
	err := silence(t, func() error {
		return run([]string{"-run", "K4-lower-bound", "-quick", "-maxtrials", "3", "-rel", "0.3"})
	})
	if err != nil {
		t.Fatal(err)
	}
}
