// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run T1-phases,F3-majority-threshold
//	experiments -all -quick
//	experiments -run K4-lower-bound -maxtrials 32 -rel 0.03
//	experiments -run K3-many-opinions -adaptive
//	experiments -run K4-lower-bound -shards 4 -checkpoint k4-ckpt
//
// Every experiment is deterministic given -seed; see DESIGN.md for the
// experiment index mapping IDs to paper artifacts. -adaptive switches
// experiments that support it (K3) to sequential stopping: each cell keeps
// sampling until the consensus-time confidence interval closes below -rel,
// up to -maxtrials. K4-lower-bound is adaptive by construction and reads
// -rel/-maxtrials directly.
//
// -shards N distributes supporting experiments' per-cell trials (currently
// K4-lower-bound, whose billion-agent cells cost tens of seconds per
// trial) across N worker processes: the binary re-executes itself in a
// hidden worker mode and the internal/dist coordinator folds shard results
// in global trial order, so the output tables are byte-identical to the
// in-process run. -checkpoint DIR additionally persists each cell's fold
// after every trial wave and resumes from it, so a killed multi-hour run
// continues where it stopped (delete the directory to start over).
//
// Sharded runs tolerate worker failure: a crashed, hung (-worker-timeout),
// or garbling worker is relaunched up to -max-relaunches times with its
// unfinished trials requeued, and the folded tables stay byte-identical to
// an undisturbed run. SIGINT/SIGTERM is graceful — the wave in flight is
// folded and checkpointed, the process exits with status 130, and rerunning
// the same command resumes; a second signal exits immediately.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiment"
)

func main() {
	os.Exit(runMain(os.Args[1:]))
}

// runMain maps a run's outcome to the process exit status: 0 on success,
// 130 (the conventional interrupted status) when a sharded run checkpointed
// and stopped on SIGINT/SIGTERM, 1 on any other error.
func runMain(args []string) int {
	err := run(args)
	if err == nil {
		return 0
	}
	if errors.Is(err, experiment.ErrInterrupted) {
		fmt.Fprintln(os.Stderr, "experiments: interrupted — the wave in flight was folded and the checkpoint written; resume with the same command")
		return 130
	}
	fmt.Fprintln(os.Stderr, "experiments:", err)
	return 1
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list available experiments and exit")
		runIDs   = fs.String("run", "", "comma-separated experiment IDs to run")
		all      = fs.Bool("all", false, "run every experiment")
		quick    = fs.Bool("quick", false, "smaller grids and trial counts")
		seed     = fs.Uint64("seed", 1, "base random seed")
		trials   = fs.Int("trials", 0, "override trials per cell (0 = experiment default)")
		workers  = fs.Int("parallelism", 0, "max concurrent trials (0 = GOMAXPROCS)")
		kernel   = fs.String("kernel", "exact", "stepping kernel for USD runs: exact, batched, or auto")
		varSpec  = fs.String("variant", "", "focus K5-variants on one dynamics variant arm: stubborn:b0,b1,... or unconstrained (empty = all arms)")
		tol      = fs.Float64("tol", 0, "batched/auto-kernel drift tolerance (0 = default)")
		adaptive = fs.Bool("adaptive", false, "adaptive trial counts where supported (K3): stop each cell once its CI closes")
		rel      = fs.Float64("rel", 0, "adaptive stopping target: relative CI half-width (0 = default 0.05)")
		maxTri   = fs.Int("maxtrials", 0, "adaptive per-cell trial cap (0 = experiment default)")
		shards   = fs.Int("shards", 0, "distribute supporting experiments' trials (K4) across N worker processes (0 = in-process; 1 = distributed engine with a single worker)")
		ckpt     = fs.String("checkpoint", "", "with -shards: directory for per-cell checkpoints, written after every wave and resumed from")
		timeout  = fs.Duration("worker-timeout", 5*time.Minute, "with -shards: per-shard liveness deadline; a worker silent this long is declared hung and relaunched (0 = never)")
		relaunch = fs.Int("max-relaunches", 0, "with -shards: per-shard worker relaunch budget (0 = default 3; -1 = fail fast on the first worker death)")
		hosts    = fs.String("hosts", "", "with -shards: comma-separated ssh hosts to start workers on (member i runs on host i mod len; empty = local worker processes)")
		remote   = fs.String("remote-cmd", "", "with -hosts: worker command template run on each host ({host}/{shard}/{shards}/{cores} expand; empty = this binary's path in -shard-worker mode, which must exist on every host)")
		worker   = fs.String("shard-worker", "", "internal: serve as shard worker \"i/of\" over stdin/stdout (spawned by -shards)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *worker != "" {
		shard, of, err := dist.ParseShardArg(*worker)
		if err != nil {
			return err
		}
		return experiment.ServeShard(os.Stdin, os.Stdout, shard, of, *workers)
	}
	kern, err := core.ParseKernel(*kernel, *tol)
	if err != nil {
		return err
	}
	variant, err := core.ParseVariantSpec(*varSpec)
	if err != nil {
		return err
	}
	if *shards < 0 {
		return fmt.Errorf("-shards %d must be non-negative", *shards)
	}
	if *ckpt != "" {
		if *shards < 2 {
			// Checkpointing rides on the sharded coordinator; a single
			// worker process still checkpoints.
			*shards = 1
		}
		if err := os.MkdirAll(*ckpt, 0o755); err != nil {
			return err
		}
	}
	if *rel < 0 || *rel >= 1 {
		return fmt.Errorf("-rel %v out of range [0, 1)", *rel)
	}
	if *maxTri < 0 {
		return fmt.Errorf("-maxtrials %d must be non-negative", *maxTri)
	}
	if *timeout < 0 {
		return fmt.Errorf("-worker-timeout %v must be non-negative", *timeout)
	}
	if *relaunch < dist.NoRelaunch {
		return fmt.Errorf("-max-relaunches %d out of range (want >= %d)", *relaunch, dist.NoRelaunch)
	}

	if *list {
		fmt.Println("available experiments:")
		for _, e := range experiment.All() {
			fmt.Printf("  %-24s %-55s [%s]\n", e.ID, e.Title, e.Artifact)
		}
		return nil
	}

	p := experiment.Params{
		Quick:         *quick,
		Seed:          *seed,
		Trials:        *trials,
		Parallelism:   *workers,
		Kernel:        kern,
		Variant:       variant,
		Adaptive:      *adaptive,
		RelWidth:      *rel,
		MaxTrials:     *maxTri,
		Shards:        *shards,
		CheckpointDir: *ckpt,
		WorkerTimeout: *timeout,
		MaxRelaunches: *relaunch,
	}
	if *remote != "" && *hosts == "" {
		return fmt.Errorf("-remote-cmd requires -hosts")
	}
	if *hosts != "" && *shards < 1 {
		return fmt.Errorf("-hosts requires -shards")
	}
	if p.Shards >= 1 {
		var extra []string
		if *workers != 0 {
			extra = []string{"-parallelism", strconv.Itoa(*workers)}
		}
		if *hosts != "" {
			fleet, err := dist.SSHFleetLauncher(dist.SplitHostList(*hosts), *remote, extra...)
			if err != nil {
				return err
			}
			p.ShardLauncher = fleet
		} else {
			p.ShardLauncher = dist.SelfExecLauncher(extra...)
		}
		// Graceful interrupt: on SIGINT/SIGTERM the coordinator finishes the
		// wave in flight and checkpoints, and the run exits resumable.
		p.Interrupt = dist.InterruptOnSignal(os.Stderr)
	}

	if *all || *runIDs == "" {
		return experiment.RunAll(p, os.Stdout)
	}

	for _, id := range strings.Split(*runIDs, ",") {
		id = strings.TrimSpace(id)
		e, ok := experiment.Find(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		fmt.Printf("\n=== %s — %s (%s) ===\n\n", e.ID, e.Title, e.Artifact)
		if err := e.Run(p, os.Stdout); err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
	}
	return nil
}
