// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run T1-phases,F3-majority-threshold
//	experiments -all -quick
//
// Every experiment is deterministic given -seed; see DESIGN.md for the
// experiment index mapping IDs to paper artifacts.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		list    = fs.Bool("list", false, "list available experiments and exit")
		runIDs  = fs.String("run", "", "comma-separated experiment IDs to run")
		all     = fs.Bool("all", false, "run every experiment")
		quick   = fs.Bool("quick", false, "smaller grids and trial counts")
		seed    = fs.Uint64("seed", 1, "base random seed")
		trials  = fs.Int("trials", 0, "override trials per cell (0 = experiment default)")
		workers = fs.Int("parallelism", 0, "max concurrent trials (0 = GOMAXPROCS)")
		kernel  = fs.String("kernel", "exact", "stepping kernel for USD runs: exact or batched")
		tol     = fs.Float64("tol", 0, "batched-kernel drift tolerance (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	kern, err := core.ParseKernel(*kernel, *tol)
	if err != nil {
		return err
	}

	if *list {
		fmt.Println("available experiments:")
		for _, e := range experiment.All() {
			fmt.Printf("  %-24s %-55s [%s]\n", e.ID, e.Title, e.Artifact)
		}
		return nil
	}

	p := experiment.Params{
		Quick:       *quick,
		Seed:        *seed,
		Trials:      *trials,
		Parallelism: *workers,
		Kernel:      kern,
	}

	if *all || *runIDs == "" {
		return experiment.RunAll(p, os.Stdout)
	}

	for _, id := range strings.Split(*runIDs, ",") {
		id = strings.TrimSpace(id)
		e, ok := experiment.Find(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		fmt.Printf("\n=== %s — %s (%s) ===\n\n", e.ID, e.Title, e.Artifact)
		if err := e.Run(p, os.Stdout); err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
	}
	return nil
}
