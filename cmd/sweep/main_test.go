package main

import (
	"os"
	"strings"
	"testing"
)

func silence(t *testing.T, fn func() error) error {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		_ = devnull.Close()
	}()
	return fn()
}

func TestSweepOverK(t *testing.T) {
	err := silence(t, func() error {
		return run([]string{"-param", "k", "-values", "2,4", "-n", "1024", "-trials", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSweepOverN(t *testing.T) {
	err := silence(t, func() error {
		return run([]string{"-param", "n", "-values", "512,1024", "-k", "3", "-trials", "2", "-u0", "64"})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSweepBiasCSV(t *testing.T) {
	err := silence(t, func() error {
		return run([]string{"-param", "bias", "-values", "0,100", "-n", "1024", "-k", "2", "-trials", "2", "-csv"})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSweepMult(t *testing.T) {
	err := silence(t, func() error {
		return run([]string{"-param", "mult", "-values", "2.0", "-n", "1024", "-k", "4", "-trials", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSweepMissingValues(t *testing.T) {
	err := silence(t, func() error { return run([]string{"-param", "k"}) })
	if err == nil || !strings.Contains(err.Error(), "-values") {
		t.Fatalf("err = %v", err)
	}
}

func TestSweepBadParam(t *testing.T) {
	err := silence(t, func() error {
		return run([]string{"-param", "zeta", "-values", "1"})
	})
	if err == nil || !strings.Contains(err.Error(), "unknown -param") {
		t.Fatalf("err = %v", err)
	}
}

func TestSweepBadValues(t *testing.T) {
	for _, args := range [][]string{
		{"-param", "n", "-values", "abc"},
		{"-param", "k", "-values", "x"},
		{"-param", "bias", "-values", "??"},
		{"-param", "mult", "-values", "zz"},
	} {
		err := silence(t, func() error { return run(args) })
		if err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestScaleU(t *testing.T) {
	if got := scaleU(0, 100, 200); got != 0 {
		t.Fatalf("scaleU(0) = %d", got)
	}
	if got := scaleU(50, 100, 200); got != 100 {
		t.Fatalf("scaleU = %d, want 100", got)
	}
	if got := scaleU(10, 0, 100); got != 10 {
		t.Fatalf("scaleU with nOld=0 = %d", got)
	}
}

func TestSweepEpsParam(t *testing.T) {
	err := silence(t, func() error {
		return run([]string{"-param", "eps", "-values", "0.1,0.5", "-n", "4096", "-trials", "2", "-kernel", "batched"})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSweepNWithKeps(t *testing.T) {
	err := silence(t, func() error {
		return run([]string{"-param", "n", "-values", "1024,4096", "-keps", "0.5", "-trials", "2", "-kernel", "batched"})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSweepKepsValidation(t *testing.T) {
	if err := silence(t, func() error {
		return run([]string{"-param", "k", "-values", "2", "-keps", "0.5"})
	}); err == nil || !strings.Contains(err.Error(), "-keps") {
		t.Fatalf("keps with param k accepted: %v", err)
	}
	if err := silence(t, func() error {
		return run([]string{"-param", "n", "-values", "1024", "-keps", "1.5"})
	}); err == nil || !strings.Contains(err.Error(), "-keps") {
		t.Fatalf("out-of-range keps accepted: %v", err)
	}
	if err := silence(t, func() error {
		return run([]string{"-param", "eps", "-values", "1.5", "-n", "1024"})
	}); err == nil {
		t.Fatal("out-of-range eps value accepted")
	}
}

func TestSweepAdaptive(t *testing.T) {
	err := silence(t, func() error {
		return run([]string{"-param", "k", "-values", "2,4", "-n", "1024",
			"-adaptive", "-rel", "0.2", "-maxtrials", "12", "-kernel", "batched"})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSweepAdaptiveCSV(t *testing.T) {
	err := silence(t, func() error {
		return run([]string{"-param", "n", "-values", "512,1024", "-k", "2",
			"-adaptive", "-rel", "0.25", "-trials", "3", "-csv"})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSweepAdaptiveValidation(t *testing.T) {
	if err := silence(t, func() error {
		return run([]string{"-param", "k", "-values", "2", "-adaptive", "-rel", "1.5"})
	}); err == nil || !strings.Contains(err.Error(), "-rel") {
		t.Fatalf("out-of-range -rel accepted: %v", err)
	}
	if err := silence(t, func() error {
		return run([]string{"-param", "k", "-values", "2", "-adaptive", "-maxtrials", "-3"})
	}); err == nil || !strings.Contains(err.Error(), "-maxtrials") {
		t.Fatalf("negative -maxtrials accepted: %v", err)
	}
}

func TestSweepParallelismFlag(t *testing.T) {
	err := silence(t, func() error {
		return run([]string{"-param", "k", "-values", "2,4", "-n", "1024", "-trials", "4", "-parallelism", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
}
