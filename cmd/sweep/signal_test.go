package main

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// sweepMainMarker makes the test binary behave as the sweep CLI (runMain)
// when passed as the first argument, so exec-level tests can drive the real
// process — signals, exit codes, worker re-execution — without a separate
// build step.
const sweepMainMarker = "-run-sweep-main-for-test"

func TestMain(m *testing.M) {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case sweepMainMarker:
			os.Exit(runMain(os.Args[2:]))
		case "-shard-worker":
			// Shard workers spawned by a marker-mode coordinator re-execute
			// this binary with -shard-worker as the leading flag.
			os.Exit(runMain(os.Args[1:]))
		}
	}
	os.Exit(m.Run())
}

// sweepProcess re-executes the test binary as the sweep CLI and returns its
// stdout, failing the test on a non-zero exit.
func sweepProcess(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command(os.Args[0], append([]string{sweepMainMarker}, args...)...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("sweep %v: %v\nstderr: %s", args, err, stderr.String())
	}
	return stdout.String()
}

// TestSweepShardedInterruptResume drives the graceful-interrupt contract at
// the process level: SIGINT to a sharded, checkpointed sweep folds the wave
// in flight, writes the checkpoint, prints resume guidance, and exits with
// status 130 — and rerunning the same command finishes the sweep with
// output byte-identical to a never-interrupted in-process run.
func TestSweepShardedInterruptResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns multi-second worker processes; skipped in -short mode")
	}
	prefix := filepath.Join(t.TempDir(), "ckpt")
	point := []string{"-param", "n", "-values", "30000", "-k", "2", "-trials", "192", "-seed", "7"}
	sharded := append(append([]string{}, point...), "-shards", "2", "-checkpoint", prefix)

	cmd := exec.Command(os.Args[0], append([]string{sweepMainMarker}, sharded...)...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Signal as soon as the first wave has been folded and checkpointed, so
	// the interrupt lands mid-run with plenty of trials outstanding.
	ckptPath := prefix + ".point0"
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(ckptPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("checkpoint %s never appeared\nstderr: %s", ckptPath, stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 130 {
		t.Fatalf("interrupted sweep exited %v, want status 130\nstdout: %s\nstderr: %s",
			err, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "resume with the same command") {
		t.Fatalf("interrupted sweep printed no resume guidance\nstderr: %s", stderr.String())
	}
	if _, err := os.Stat(ckptPath); err != nil {
		t.Fatalf("interrupted sweep left no checkpoint: %v", err)
	}

	resumed := sweepProcess(t, sharded...)
	clean := sweepProcess(t, point...)
	if resumed != clean {
		t.Fatalf("resumed sharded output diverged from the clean in-process run\nresumed:\n%s\nclean:\n%s", resumed, clean)
	}
}
