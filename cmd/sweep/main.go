// Command sweep measures USD consensus time across a one-dimensional
// parameter sweep and emits a table or CSV, for custom scaling studies
// beyond the canned experiments.
//
// Usage:
//
//	sweep -param n -values 4096,8192,16384,32768 -k 8 -trials 10
//	sweep -param k -values 2,4,8,16,32 -n 16384 -csv
//	sweep -param bias -values 0,64,128,256,512 -n 16384 -k 2
//	sweep -param n -values 1e7,1e8,1e9 -k 32 -kernel batched
//	sweep -param n -values 1e6,1e8,1e9 -keps 0.25 -kernel batched
//	sweep -param eps -values 0.1,0.25,0.5 -n 1e6 -kernel batched
//	sweep -param n -values 2.2e9,2.6e9,3e9 -k 512 -kernel batched -adaptive -rel 0.03
//
// -kernel batched selects the bulk stepping kernel for large-n sweeps; it
// trades a bounded per-rate drift (-tol, default 0.05) for orders of
// magnitude in throughput. The many-opinions regime k = Θ(n^ε) (Cooper et
// al.) is swept either by -param eps (ε varies at fixed n) or by -param n
// with -keps (n varies, k = n^ε follows). Trials run on the shared-arena
// trial engine; -parallelism bounds the workers and results are identical
// at every parallelism level. -adaptive replaces the fixed -trials count
// with sequential stopping: each point keeps sampling until the 95%
// consensus-time confidence interval has relative half-width below -rel,
// capped at -maxtrials — billion-agent points where trials cost seconds
// then spend exactly as many trials as their variance demands.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	usd "repro"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/rng"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		param    = fs.String("param", "n", "swept parameter: n, k, bias (additive), mult (ratio), or eps (k = n^eps)")
		values   = fs.String("values", "", "comma-separated values for the swept parameter")
		nFlag    = fs.String("n", "16384", "population size, integer or scientific like 1e9 (fixed unless swept)")
		k        = fs.Int("k", 8, "number of opinions (fixed unless swept or derived via -keps)")
		keps     = fs.Float64("keps", 0, "with -param n: derive k = n^keps per point (0 = use -k)")
		u0       = fs.Int64("u0", 0, "initially undecided agents")
		trials   = fs.Int("trials", 10, "trials per sweep point")
		seed     = fs.Uint64("seed", 1, "base random seed")
		workers  = fs.Int("parallelism", 0, "max concurrent trials (0 = GOMAXPROCS)")
		asCSV    = fs.Bool("csv", false, "emit CSV instead of a table")
		kernel   = fs.String("kernel", "exact", "stepping kernel: exact or batched")
		tol      = fs.Float64("tol", 0, "batched-kernel drift tolerance (0 = default)")
		adaptive = fs.Bool("adaptive", false, "adaptive trial counts: stop each point once the consensus-time CI closes")
		rel      = fs.Float64("rel", 0.05, "adaptive stopping target: relative CI half-width")
		maxTri   = fs.Int("maxtrials", 0, "adaptive per-point trial cap (0 = 4x -trials)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	kern, err := core.ParseKernel(*kernel, *tol)
	if err != nil {
		return err
	}
	if *rel <= 0 || *rel >= 1 {
		return fmt.Errorf("-rel %v out of range (0, 1)", *rel)
	}
	if *maxTri < 0 {
		return fmt.Errorf("-maxtrials %d must be non-negative", *maxTri)
	}
	adaptiveCap := *maxTri
	if adaptiveCap == 0 {
		adaptiveCap = 4 * *trials
	}
	n, err := parseCount(*nFlag)
	if err != nil {
		return fmt.Errorf("bad -n value %q: %w", *nFlag, err)
	}
	if *values == "" {
		return fmt.Errorf("-values is required")
	}
	if *keps != 0 && *param != "n" {
		return fmt.Errorf("-keps only applies to -param n (got -param %s)", *param)
	}
	if *keps < 0 || *keps >= 1 {
		return fmt.Errorf("-keps %v out of range [0, 1)", *keps)
	}
	raw := strings.Split(*values, ",")

	type row struct {
		value        string
		k            int
		trials       int
		mean, median float64
		std          float64
		parallel     float64
		winRate      float64
	}
	var rows []row
	for vi, vs := range raw {
		vs = strings.TrimSpace(vs)
		cfg, err := buildConfig(*param, vs, n, *k, *keps, *u0)
		if err != nil {
			return err
		}
		type out struct {
			t    float64
			won  bool
			fail string
		}
		trial := func(i int, src *rng.Source, a *experiment.Arena) out {
			report, err := experiment.RunTracked(a, cfg, src, 0, 0, kern)
			if err != nil {
				return out{fail: err.Error()}
			}
			if report.Result.Outcome != usd.OutcomeConsensus {
				return out{fail: report.Result.Outcome.String()}
			}
			return out{
				t:   float64(report.Result.Interactions),
				won: report.Result.Winner == report.InitialLeader,
			}
		}
		seed := *seed + uint64(vi)*1_000_003
		var times []float64
		wins := 0
		firstFail := ""
		fold := func(i int, o out) {
			if o.fail != "" {
				if firstFail == "" {
					firstFail = fmt.Sprintf("value %s trial %d: %s", vs, i, o.fail)
				}
				return
			}
			times = append(times, o.t)
			if o.won {
				wins++
			}
		}
		if *adaptive {
			// Sequential stopping: keep sampling this point until the
			// consensus-time CI closes below -rel or the cap is hit. The
			// win-rate estimate simply uses however many trials that took.
			metric := experiment.NewAdaptiveMetric("consensus T",
				experiment.ConsensusRule(*rel, adaptiveCap))
			experiment.StreamAdaptive(
				experiment.AdaptiveOptions{MaxTrials: adaptiveCap, Parallelism: *workers, Seed: seed},
				trial,
				func(i int, o out) {
					fold(i, o)
					if o.fail == "" {
						metric.Add(o.t)
					}
				},
				experiment.StopWhenAll(metric))
		} else {
			outs := experiment.CollectArena(*trials, *workers, seed, trial)
			for i, o := range outs {
				fold(i, o)
			}
		}
		if firstFail != "" {
			return fmt.Errorf("%s", firstFail)
		}
		s, err := stats.Summarize(times)
		if err != nil {
			return err
		}
		rows = append(rows, row{
			value:    vs,
			k:        cfg.K(),
			trials:   len(times),
			mean:     s.Mean,
			median:   s.Median,
			std:      s.Std,
			parallel: s.Mean / float64(cfg.N()),
			winRate:  float64(wins) / float64(len(times)),
		})
	}

	if *asCSV {
		fmt.Println("value,k,trials,mean_interactions,median,std,parallel_time,initial_leader_win_rate")
		for _, r := range rows {
			fmt.Printf("%s,%d,%d,%g,%g,%g,%g,%g\n", r.value, r.k, r.trials, r.mean, r.median, r.std, r.parallel, r.winRate)
		}
		return nil
	}
	if *adaptive {
		fmt.Printf("sweep over %s (adaptive trials, ±%.0f%% CI, cap %d per point):\n\n", *param, 100**rel, adaptiveCap)
	} else {
		fmt.Printf("sweep over %s (%d trials per point):\n\n", *param, *trials)
	}
	fmt.Printf("%-10s %-6s %-8s %-14s %-14s %-12s %-14s %s\n",
		*param, "k", "trials", "mean T", "median", "std", "parallel time", "leader wins")
	for _, r := range rows {
		fmt.Printf("%-10s %-6d %-8d %-14.6g %-14.6g %-12.4g %-14.4g %.0f%%\n",
			r.value, r.k, r.trials, r.mean, r.median, r.std, r.parallel, 100*r.winRate)
	}
	return nil
}

func buildConfig(param, value string, n int64, k int, keps float64, u0 int64) (*usd.Config, error) {
	switch param {
	case "n":
		v, err := parseCount(value)
		if err != nil {
			return nil, fmt.Errorf("bad n value %q: %w", value, err)
		}
		kk := k
		if keps > 0 {
			kk = experiment.KForEps(v, keps)
		}
		return usd.Uniform(v, kk, scaleU(u0, n, v))
	case "k":
		v, err := strconv.Atoi(value)
		if err != nil {
			return nil, fmt.Errorf("bad k value %q: %w", value, err)
		}
		return usd.Uniform(n, v, u0)
	case "eps":
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return nil, fmt.Errorf("bad eps value %q: %w", value, err)
		}
		if v < 0 || v >= 1 {
			return nil, fmt.Errorf("bad eps value %q: want a float in [0, 1)", value)
		}
		return usd.Uniform(n, experiment.KForEps(n, v), u0)
	case "bias":
		v, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad bias value %q: %w", value, err)
		}
		return usd.WithAdditiveBias(n, k, v, u0)
	case "mult":
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return nil, fmt.Errorf("bad mult value %q: %w", value, err)
		}
		return usd.WithMultiplicativeBias(n, k, v, u0)
	default:
		return nil, fmt.Errorf("unknown -param %q (want n, k, eps, bias, or mult)", param)
	}
}

// parseCount parses a population size, accepting both integer ("1000000")
// and scientific ("1e6") notation so billion-agent sweeps stay readable.
func parseCount(value string) (int64, error) {
	if v, err := strconv.ParseInt(value, 10, 64); err == nil {
		return v, nil
	}
	f, err := strconv.ParseFloat(value, 64)
	if err != nil {
		return 0, err
	}
	// float64(MaxInt64) rounds up to 2^63, so >= is required to keep the
	// int64 conversion in range.
	if f != math.Trunc(f) || f < 0 || f >= math.MaxInt64 {
		return 0, fmt.Errorf("not a non-negative integer: %v", f)
	}
	return int64(f), nil
}

// scaleU keeps the undecided fraction constant when n is the swept
// parameter.
func scaleU(u0, nOld, nNew int64) int64 {
	if u0 == 0 || nOld == 0 {
		return u0
	}
	return int64(math.Round(float64(u0) * float64(nNew) / float64(nOld)))
}
