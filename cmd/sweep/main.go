// Command sweep measures USD consensus time across a one-dimensional
// parameter sweep and emits a table or CSV, for custom scaling studies
// beyond the canned experiments.
//
// Usage:
//
//	sweep -param n -values 4096,8192,16384,32768 -k 8 -trials 10
//	sweep -param k -values 2,4,8,16,32 -n 16384 -csv
//	sweep -param bias -values 0,64,128,256,512 -n 16384 -k 2
//	sweep -param n -values 1e7,1e8,1e9 -k 32 -kernel batched
//	sweep -param n -values 1e6,1e8,1e9 -keps 0.25 -kernel batched
//	sweep -param eps -values 0.1,0.25,0.5 -n 1e6 -kernel batched
//	sweep -param n -values 2.2e9,2.6e9,3e9 -k 512 -kernel batched -adaptive -rel 0.03
//	sweep -param n -values 3e9 -k 512 -kernel batched -adaptive -shards 4 -checkpoint sweep.ckpt
//
// -kernel batched selects the bulk stepping kernel for large-n sweeps; it
// trades a bounded per-rate drift (-tol, default 0.05) for orders of
// magnitude in throughput. The many-opinions regime k = Θ(n^ε) (Cooper et
// al.) is swept either by -param eps (ε varies at fixed n) or by -param n
// with -keps (n varies, k = n^ε follows). Trials run on the shared-arena
// trial engine; -parallelism bounds the workers and results are identical
// at every parallelism level. -adaptive replaces the fixed -trials count
// with sequential stopping: each point keeps sampling until the 95%
// consensus-time confidence interval has relative half-width below -rel,
// capped at -maxtrials — billion-agent points where trials cost seconds
// then spend exactly as many trials as their variance demands.
//
// -variant sweeps a non-classic dynamics: stubborn:b0,b1,... (per-opinion
// stubborn agents; points fold dominance times instead of consensus
// times) or unconstrained (latent-opinion USD; exact kernel only). The
// variant rides the shard-spec wire format, so -shards and -checkpoint
// work unchanged.
//
// -shards N distributes each point's trials across N worker processes (the
// binary re-executes itself in a hidden worker mode) through the
// internal/dist coordinator; the folded output is byte-identical to the
// in-process run at every shard count — the shard-determinism CI job
// diffs 1-, 2-, and 4-shard runs of the same sweep. -checkpoint PREFIX
// additionally writes a per-point checkpoint after every folded wave and
// resumes from it, so interrupted billion-agent sweeps continue instead of
// restarting (delete the checkpoint files to start over).
//
// Sharded runs tolerate worker failure: a crashed, hung (-worker-timeout),
// or garbling worker is relaunched up to -max-relaunches times with its
// unfinished trials requeued, and the folded table stays byte-identical to
// an undisturbed run. SIGINT/SIGTERM is graceful — the wave in flight is
// folded and checkpointed, the process exits with status 130, and rerunning
// the same command resumes; a second signal exits immediately.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	usd "repro"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiment"
	"repro/internal/rng"
	"repro/internal/stats"
)

func main() {
	os.Exit(runMain(os.Args[1:]))
}

// runMain maps a run's outcome to the process exit status: 0 on success,
// 130 (the conventional interrupted status) when a sharded run checkpointed
// and stopped on SIGINT/SIGTERM, 1 on any other error.
func runMain(args []string) int {
	err := run(args)
	if err == nil {
		return 0
	}
	if errors.Is(err, experiment.ErrInterrupted) {
		fmt.Fprintln(os.Stderr, "sweep: interrupted — the wave in flight was folded and the checkpoint written; resume with the same command")
		return 130
	}
	fmt.Fprintln(os.Stderr, "sweep:", err)
	return 1
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		param    = fs.String("param", "n", "swept parameter: n, k, bias (additive), mult (ratio), or eps (k = n^eps)")
		values   = fs.String("values", "", "comma-separated values for the swept parameter")
		nFlag    = fs.String("n", "16384", "population size, integer or scientific like 1e9 (fixed unless swept)")
		k        = fs.Int("k", 8, "number of opinions (fixed unless swept or derived via -keps)")
		keps     = fs.Float64("keps", 0, "with -param n: derive k = n^keps per point (0 = use -k)")
		u0       = fs.Int64("u0", 0, "initially undecided agents")
		trials   = fs.Int("trials", 10, "trials per sweep point")
		seed     = fs.Uint64("seed", 1, "base random seed")
		workers  = fs.Int("parallelism", 0, "max concurrent trials (0 = GOMAXPROCS)")
		asCSV    = fs.Bool("csv", false, "emit CSV instead of a table")
		kernel   = fs.String("kernel", "exact", "stepping kernel: exact, batched, or auto")
		varSpec  = fs.String("variant", "", "dynamics variant spec: classic, stubborn:b0,b1,..., or unconstrained (empty = classic)")
		tol      = fs.Float64("tol", 0, "batched/auto-kernel drift tolerance (0 = default)")
		adaptive = fs.Bool("adaptive", false, "adaptive trial counts: stop each point once the consensus-time CI closes")
		rel      = fs.Float64("rel", 0.05, "adaptive stopping target: relative CI half-width")
		maxTri   = fs.Int("maxtrials", 0, "adaptive per-point trial cap (0 = 4x -trials)")
		shards   = fs.Int("shards", 0, "distribute each point's trials across N worker processes (0 = in-process; 1 = distributed engine with a single worker)")
		ckpt     = fs.String("checkpoint", "", "checkpoint file prefix: write/resume <prefix>.point<i> per sweep point (implies the sharded engine)")
		timeout  = fs.Duration("worker-timeout", 5*time.Minute, "with -shards: per-shard liveness deadline; a worker silent this long is declared hung and relaunched (0 = never)")
		relaunch = fs.Int("max-relaunches", 0, "with -shards: per-shard worker relaunch budget (0 = default 3; -1 = fail fast on the first worker death)")
		hosts    = fs.String("hosts", "", "with -shards: comma-separated ssh hosts to start workers on (member i runs on host i mod len; empty = local worker processes)")
		remote   = fs.String("remote-cmd", "", "with -hosts: worker command template run on each host ({host}/{shard}/{shards}/{cores} expand; empty = this binary's path in -shard-worker mode, which must exist on every host)")
		worker   = fs.String("shard-worker", "", "internal: serve as shard worker \"i/of\" over stdin/stdout (spawned by -shards)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *worker != "" {
		shard, of, err := dist.ParseShardArg(*worker)
		if err != nil {
			return err
		}
		return experiment.ServeShard(os.Stdin, os.Stdout, shard, of, *workers)
	}
	if *shards < 0 {
		return fmt.Errorf("-shards %d must be non-negative", *shards)
	}
	if *timeout < 0 {
		return fmt.Errorf("-worker-timeout %v must be non-negative", *timeout)
	}
	if *relaunch < dist.NoRelaunch {
		return fmt.Errorf("-max-relaunches %d out of range (want >= %d)", *relaunch, dist.NoRelaunch)
	}
	if *remote != "" && *hosts == "" {
		return fmt.Errorf("-remote-cmd requires -hosts")
	}
	if *hosts != "" && *shards < 1 {
		return fmt.Errorf("-hosts requires -shards")
	}
	if *ckpt != "" {
		// Create the prefix's directory up front: discovering it is
		// missing only at the first post-wave write would discard exactly
		// the work checkpointing exists to protect.
		if err := os.MkdirAll(filepath.Dir(*ckpt), 0o755); err != nil {
			return err
		}
	}
	kern, err := core.ParseKernel(*kernel, *tol)
	if err != nil {
		return err
	}
	variant, err := core.ParseVariantSpec(*varSpec)
	if err != nil {
		return err
	}
	if err := variant.ValidateKernel(kern); err != nil {
		return err
	}
	if *rel <= 0 || *rel >= 1 {
		return fmt.Errorf("-rel %v out of range (0, 1)", *rel)
	}
	if *maxTri < 0 {
		return fmt.Errorf("-maxtrials %d must be non-negative", *maxTri)
	}
	adaptiveCap := *maxTri
	if adaptiveCap == 0 {
		adaptiveCap = 4 * *trials
	}
	n, err := parseCount(*nFlag)
	if err != nil {
		return fmt.Errorf("bad -n value %q: %w", *nFlag, err)
	}
	if *values == "" {
		return fmt.Errorf("-values is required")
	}
	if *keps != 0 && *param != "n" {
		return fmt.Errorf("-keps only applies to -param n (got -param %s)", *param)
	}
	if *keps < 0 || *keps >= 1 {
		return fmt.Errorf("-keps %v out of range [0, 1)", *keps)
	}
	raw := strings.Split(*values, ",")

	sc := shardedPointConfig{
		shards:      *shards,
		workers:     *workers,
		trials:      *trials,
		adaptiveCap: adaptiveCap,
		rel:         *rel,
		ckpt:        *ckpt,
		timeout:     *timeout,
		relaunches:  *relaunch,
		hosts:       *hosts,
		remoteCmd:   *remote,
	}
	if *shards >= 1 || *ckpt != "" {
		// Graceful interrupt: on SIGINT/SIGTERM the coordinator finishes the
		// wave in flight and checkpoints, and the run exits resumable.
		sc.interrupt = dist.InterruptOnSignal(os.Stderr)
	}

	type row struct {
		value        string
		k            int
		trials       int
		mean, median float64
		std          float64
		parallel     float64
		winRate      float64
	}
	var rows []row
	for vi, vs := range raw {
		vs = strings.TrimSpace(vs)
		cfg, err := buildConfig(*param, vs, n, *k, *keps, *u0)
		if err != nil {
			return err
		}
		variant.Configure(cfg)
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("value %s with -variant %s: %w", vs, variant, err)
		}
		seed := *seed + uint64(vi)*1_000_003
		st := &pointState{value: vs}
		if *adaptive {
			// Sequential stopping: keep sampling this point until the
			// consensus-time CI closes below -rel or the cap is hit. The
			// win-rate estimate simply uses however many trials that took.
			st.Metric = experiment.NewAdaptiveMetric("consensus T",
				experiment.ConsensusRule(*rel, adaptiveCap))
		}
		// The sharded engine (worker processes, wave barrier, optional
		// checkpointing) and the in-process engine fold the same per-trial
		// results in the same order, so the table below is byte-identical
		// between them — the shard-determinism CI job relies on it.
		// -shards 1 runs the distributed engine with a single worker, same
		// as cmd/experiments; -checkpoint alone implies it.
		if *shards >= 1 || *ckpt != "" {
			if err := runPointSharded(st, cfg, variant, kern, seed, vi, sc); err != nil {
				return err
			}
		} else {
			runPointInProcess(st, cfg, variant, kern, seed, *workers, *trials, adaptiveCap)
		}
		if st.FirstFail != "" {
			return fmt.Errorf("%s", st.FirstFail)
		}
		s, err := stats.Summarize(st.Times)
		if err != nil {
			return err
		}
		rows = append(rows, row{
			value:    vs,
			k:        cfg.K(),
			trials:   len(st.Times),
			mean:     s.Mean,
			median:   s.Median,
			std:      s.Std,
			parallel: s.Mean / float64(cfg.N()),
			winRate:  float64(st.Wins) / float64(len(st.Times)),
		})
	}

	if *asCSV {
		fmt.Println("value,k,trials,mean_interactions,median,std,parallel_time,initial_leader_win_rate")
		for _, r := range rows {
			fmt.Printf("%s,%d,%d,%g,%g,%g,%g,%g\n", r.value, r.k, r.trials, r.mean, r.median, r.std, r.parallel, r.winRate)
		}
		return nil
	}
	if *adaptive {
		fmt.Printf("sweep over %s (adaptive trials, ±%.0f%% CI, cap %d per point):\n\n", *param, 100**rel, adaptiveCap)
	} else {
		fmt.Printf("sweep over %s (%d trials per point):\n\n", *param, *trials)
	}
	fmt.Printf("%-10s %-6s %-8s %-14s %-14s %-12s %-14s %s\n",
		*param, "k", "trials", "mean T", "median", "std", "parallel time", "leader wins")
	for _, r := range rows {
		fmt.Printf("%-10s %-6d %-8d %-14.6g %-14.6g %-12.4g %-14.4g %.0f%%\n",
			r.value, r.k, r.trials, r.mean, r.median, r.std, r.parallel, 100*r.winRate)
	}
	return nil
}

// pointState is the fold state of one sweep point, checkpointed by sharded
// runs through dist.JSONState: the JSON-tagged fields round-trip losslessly
// (times are integer-valued float64s), so a resumed point finishes
// byte-identical to an uninterrupted one.
type pointState struct {
	value string

	// Times holds the consensus times of successful trials, in fold order.
	Times []float64 `json:"times"`
	// Wins counts trials the initial leader won.
	Wins int `json:"wins"`
	// FirstFail records the first non-consensus trial, or "".
	FirstFail string `json:"first_fail"`
	// Metric is the adaptive stopping metric; nil for fixed-count runs.
	Metric *experiment.AdaptiveMetric `json:"metric,omitempty"`
}

// fold accumulates one trial outcome; the fold sequence is identical
// between the in-process and sharded paths.
func (st *pointState) fold(i int, t float64, won bool, fail string) {
	if fail != "" {
		if st.FirstFail == "" {
			st.FirstFail = fmt.Sprintf("value %s trial %d: %s", st.value, i, fail)
		}
		return
	}
	st.Times = append(st.Times, t)
	if won {
		st.Wins++
	}
	if st.Metric != nil {
		st.Metric.Add(t)
	}
}

// runPointInProcess folds one sweep point on the shared-arena engine.
func runPointInProcess(st *pointState, cfg *usd.Config, variant core.Variant, kern core.Kernel, seed uint64, workers, trials, adaptiveCap int) {
	// Hoisted so classic points keep the option-free (allocation-free)
	// per-trial path and non-classic points allocate the option once.
	var opts []core.Option
	if !variant.Classic() {
		dyn, err := variant.Dynamics()
		if err != nil {
			st.fold(0, 0, false, err.Error())
			return
		}
		opts = []core.Option{core.WithDynamics(dyn)}
	}
	trial := func(i int, src *rng.Source, a *experiment.Arena) experiment.ShardResult {
		report, err := experiment.RunTracked(a, cfg, src, core.NoBudget, 0, kern, opts...)
		if err != nil {
			return experiment.ShardResult{Outcome: err.Error()}
		}
		return experiment.ShardResult{
			InteractionsHi: report.Result.Interactions.Hi,
			InteractionsLo: report.Result.Interactions.Lo,
			Winner:         report.Result.Winner,
			InitialLeader:  report.InitialLeader,
			Outcome:        report.Result.Outcome.String(),
		}
	}
	sink := func(i int, r experiment.ShardResult) { foldShardResult(st, i, r) }
	if st.Metric != nil {
		experiment.StreamAdaptive(
			experiment.AdaptiveOptions{MaxTrials: adaptiveCap, Parallelism: workers, Seed: seed},
			trial, sink, experiment.StopWhenAll(st.Metric))
		return
	}
	experiment.Stream(trials, workers, seed, trial, sink)
}

// shardedPointConfig carries the distributed-engine knobs shared by every
// sweep point: the flag values plus the process-wide interrupt channel.
type shardedPointConfig struct {
	shards, workers     int
	trials, adaptiveCap int
	rel                 float64
	ckpt                string
	timeout             time.Duration
	relaunches          int
	hosts, remoteCmd    string
	interrupt           <-chan struct{}
}

// launcher builds the point's worker launcher: an ssh fleet when -hosts was
// given, this binary re-executed locally otherwise.
func (sc shardedPointConfig) launcher() (dist.Launcher, error) {
	if sc.hosts != "" {
		return dist.SSHFleetLauncher(dist.SplitHostList(sc.hosts), sc.remoteCmd, workerArgs(sc.workers)...)
	}
	return dist.SelfExecLauncher(workerArgs(sc.workers)...), nil
}

// runPointSharded folds one sweep point through the distributed
// coordinator: shard worker processes compute the trials, the coordinator
// folds them in global trial order and (with a checkpoint prefix) persists
// the fold after every wave. A run the user interrupted returns
// experiment.ErrInterrupted instead of printing a table built on a partial
// fold.
func runPointSharded(st *pointState, cfg *usd.Config, variant core.Variant, kern core.Kernel, seed uint64, point int, sc shardedPointConfig) error {
	shards := sc.shards
	if shards < 1 {
		shards = 1
	}
	spec, err := experiment.NewShardSpec(cfg, variant, kern, core.NoBudget, 0, true).Encode()
	if err != nil {
		return err
	}
	maxTrials := sc.trials
	policy := "fixed"
	var stop func() bool
	if st.Metric != nil {
		maxTrials = sc.adaptiveCap
		policy = experiment.ConsensusPolicy(sc.rel)
		stop = experiment.StopWhenAll(st.Metric)
	}
	path := ""
	if sc.ckpt != "" {
		path = fmt.Sprintf("%s.point%d", sc.ckpt, point)
	}
	launcher, err := sc.launcher()
	if err != nil {
		return err
	}
	res, err := dist.Run(dist.Options{
		Shards:         shards,
		MaxTrials:      maxTrials,
		Seed:           seed,
		Spec:           spec,
		Launcher:       launcher,
		CheckpointPath: path,
		Policy:         policy,
		WorkerTimeout:  sc.timeout,
		MaxRelaunches:  sc.relaunches,
		Interrupt:      sc.interrupt,
	}, func(i int, data []byte) error {
		var r experiment.ShardResult
		if err := json.Unmarshal(data, &r); err != nil {
			return err
		}
		foldShardResult(st, i, r)
		return nil
	}, stop, dist.JSONState{V: st})
	if err != nil {
		return err
	}
	if res.Interrupted {
		return fmt.Errorf("point %s: %w", st.value, experiment.ErrInterrupted)
	}
	return nil
}

// workerArgs returns the extra worker argv forwarding the in-worker
// parallelism bound.
func workerArgs(workers int) []string {
	if workers == 0 {
		return nil
	}
	return []string{"-parallelism", strconv.Itoa(workers)}
}

// foldShardResult maps a trial's wire result onto the point fold. Decided
// covers both consensus and the stubborn variant's dominance terminal, so
// stubborn sweeps report decision times rather than failing every trial.
func foldShardResult(st *pointState, i int, r experiment.ShardResult) {
	if !r.Decided() {
		st.fold(i, 0, false, r.Outcome)
		return
	}
	st.fold(i, r.Interactions().Float64(), r.Winner == r.InitialLeader, "")
}

func buildConfig(param, value string, n int64, k int, keps float64, u0 int64) (*usd.Config, error) {
	switch param {
	case "n":
		v, err := parseCount(value)
		if err != nil {
			return nil, fmt.Errorf("bad n value %q: %w", value, err)
		}
		kk := k
		if keps > 0 {
			kk = experiment.KForEps(v, keps)
		}
		return usd.Uniform(v, kk, scaleU(u0, n, v))
	case "k":
		v, err := strconv.Atoi(value)
		if err != nil {
			return nil, fmt.Errorf("bad k value %q: %w", value, err)
		}
		return usd.Uniform(n, v, u0)
	case "eps":
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return nil, fmt.Errorf("bad eps value %q: %w", value, err)
		}
		if v < 0 || v >= 1 {
			return nil, fmt.Errorf("bad eps value %q: want a float in [0, 1)", value)
		}
		return usd.Uniform(n, experiment.KForEps(n, v), u0)
	case "bias":
		v, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad bias value %q: %w", value, err)
		}
		return usd.WithAdditiveBias(n, k, v, u0)
	case "mult":
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return nil, fmt.Errorf("bad mult value %q: %w", value, err)
		}
		return usd.WithMultiplicativeBias(n, k, v, u0)
	default:
		return nil, fmt.Errorf("unknown -param %q (want n, k, eps, bias, or mult)", param)
	}
}

// parseCount parses a population size, accepting both integer ("1000000")
// and scientific ("1e6") notation so billion-agent sweeps stay readable.
func parseCount(value string) (int64, error) {
	if v, err := strconv.ParseInt(value, 10, 64); err == nil {
		return v, nil
	}
	f, err := strconv.ParseFloat(value, 64)
	if err != nil {
		return 0, err
	}
	// float64(MaxInt64) rounds up to 2^63, so >= is required to keep the
	// int64 conversion in range.
	if f != math.Trunc(f) || f < 0 || f >= math.MaxInt64 {
		return 0, fmt.Errorf("not a non-negative integer: %v", f)
	}
	return int64(f), nil
}

// scaleU keeps the undecided fraction constant when n is the swept
// parameter.
func scaleU(u0, nOld, nNew int64) int64 {
	if u0 == 0 || nOld == 0 {
		return u0
	}
	return int64(math.Round(float64(u0) * float64(nNew) / float64(nOld)))
}
