// Command bench measures the per-interaction cost of the two stepping
// kernels on the uniform-start k=32 workload at n ∈ {10⁴, 10⁶, 10⁸} and
// writes the results to BENCH_core.json, giving future changes a perf
// trajectory to compare against.
//
// Both kernels run the same protocol per population size: the unbiased
// uniform configuration, an identical fixed interaction budget, and the
// same derived seeds; ns/interaction is total wall time over total
// simulated interactions (including skipped unproductive ones). The budget
// window covers the early no-bias phase, which is the exact kernel's
// densest regime (almost every interaction is productive) and the batched
// kernel's weakest (windows ramp up from the all-decided start), so the
// reported speedup is conservative.
//
// Usage:
//
//	bench                 # full run, writes BENCH_core.json
//	bench -quick          # single repetition per cell
//	bench -out path.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	usd "repro"
	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/rng"
)

// Entry is one (n, kernel) measurement.
type Entry struct {
	N                 int64   `json:"n"`
	K                 int     `json:"k"`
	Kernel            string  `json:"kernel"`
	Tolerance         float64 `json:"tolerance,omitempty"`
	BudgetPerRun      int64   `json:"budget_interactions_per_run"`
	Runs              int     `json:"runs"`
	Interactions      int64   `json:"interactions_total"`
	WallNanos         int64   `json:"wall_ns_total"`
	NsPerInteraction  float64 `json:"ns_per_interaction"`
	NsPerProductive   float64 `json:"ns_per_productive_event"`
	ProductiveEvents  int64   `json:"productive_events_total"`
	ReachedConsensus  int     `json:"runs_reaching_consensus"`
	InteractionsPerNs float64 `json:"interactions_per_ns"`
}

// Report is the BENCH_core.json schema.
type Report struct {
	Workload  string             `json:"workload"`
	GoVersion string             `json:"go_version"`
	Entries   []Entry            `json:"entries"`
	Speedups  map[string]float64 `json:"batched_speedup_by_n"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		out   = fs.String("out", "BENCH_core.json", "output path for the JSON report")
		quick = fs.Bool("quick", false, "single repetition per cell")
		seed  = fs.Uint64("seed", 1, "base random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	runs := 3
	if *quick {
		runs = 1
	}

	const k = 32
	ns := []int64{10_000, 1_000_000, 100_000_000}
	kernels := []core.Kernel{core.KernelExact, core.KernelBatched(0)}

	rep := Report{
		Workload:  fmt.Sprintf("uniform start, k=%d, fixed interaction budget per n", k),
		GoVersion: runtime.Version(),
		Speedups:  map[string]float64{},
	}
	perNs := map[int64]map[string]float64{}
	for _, n := range ns {
		// ~40 parallel rounds of the no-bias early phase, capped so the
		// exact kernel's densest regime stays at sub-second cost per run.
		budget := 40 * n
		if budget > 4_000_000 {
			budget = 4_000_000
		}
		for _, kern := range kernels {
			e, err := measure(n, k, kern, budget, runs, *seed)
			if err != nil {
				return err
			}
			rep.Entries = append(rep.Entries, e)
			if perNs[n] == nil {
				perNs[n] = map[string]float64{}
			}
			perNs[n][e.Kernel] = e.NsPerInteraction
			fmt.Printf("n=%-12d kernel=%-14s %12.5f ns/interaction  (%d interactions in %v)\n",
				n, e.Kernel, e.NsPerInteraction, e.Interactions, time.Duration(e.WallNanos))
		}
		if exact, ok := perNs[n]["exact"]; ok {
			if batched, ok := perNs[n][core.KernelBatched(0).String()]; ok && batched > 0 {
				rep.Speedups[fmt.Sprintf("%d", n)] = exact / batched
			}
		}
	}
	for nKey, s := range rep.Speedups {
		fmt.Printf("n=%-12s batched speedup: %.1fx\n", nKey, s)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// measure times `runs` budgeted runs of the kernel and aggregates them.
func measure(n int64, k int, kern core.Kernel, budget int64, runs int, seed uint64) (Entry, error) {
	cfg, err := conf.Uniform(n, k, 0)
	if err != nil {
		return Entry{}, err
	}
	e := Entry{
		N:            n,
		K:            k,
		Kernel:       kern.String(),
		Tolerance:    kern.Tolerance(),
		BudgetPerRun: budget,
		Runs:         runs,
	}
	for i := 0; i < runs; i++ {
		s, err := core.New(cfg, rng.New(rng.Derive(seed, uint64(i))), core.WithKernel(kern))
		if err != nil {
			return Entry{}, err
		}
		var productive int64
		start := time.Now()
		res := s.RunObserved(budget, func(_ *core.Simulator, ev core.Event) {
			productive += ev.Count
		})
		e.WallNanos += time.Since(start).Nanoseconds()
		e.Interactions += res.Interactions
		e.ProductiveEvents += productive
		if res.Outcome == usd.OutcomeConsensus {
			e.ReachedConsensus++
		}
	}
	if e.Interactions > 0 {
		e.NsPerInteraction = float64(e.WallNanos) / float64(e.Interactions)
		e.InteractionsPerNs = float64(e.Interactions) / float64(e.WallNanos)
	}
	if e.ProductiveEvents > 0 {
		e.NsPerProductive = float64(e.WallNanos) / float64(e.ProductiveEvents)
	}
	return e, nil
}
