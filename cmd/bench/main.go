// Command bench measures the per-interaction cost of the two stepping
// kernels on the uniform-start k=32 workload at n ∈ {10⁴, 10⁶, 10⁸} and
// the Monte-Carlo trial throughput of the shared-arena trial engine, and
// writes the results to BENCH_core.json, giving future changes a perf
// trajectory to compare against.
//
// Both kernels run the same protocol per population size: the unbiased
// uniform configuration, an identical fixed interaction budget, and the
// same derived seeds; ns/interaction is total wall time over total
// simulated interactions (including skipped unproductive ones). The budget
// window covers the early no-bias phase, which is the exact kernel's
// densest regime (almost every interaction is productive) and the batched
// kernel's weakest (windows ramp up from the all-decided start), so the
// reported speedup is conservative.
//
// The trial-throughput section runs the same tracked-trial fleet twice —
// once allocating a fresh simulator and tracker per trial (the pre-engine
// cost model) and once reusing one arena across all trials — and reports
// trials/sec for each plus the arena speedup. The dispatch workload uses a
// one-interaction budget so the per-trial engine overhead dominates: its
// ratio is the ceiling arena reuse buys a fleet of short trials, while the
// consensus workload shows the (near-1×) effect on long simulation-bound
// trials. Both arms must produce byte-identical results; the benchmark
// fails otherwise.
//
// Usage:
//
//	bench                 # full run, writes BENCH_core.json
//	bench -quick          # single repetition per cell
//	bench -out path.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	usd "repro"
	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/rng"
)

// Entry is one (n, kernel) measurement.
type Entry struct {
	N                 int64   `json:"n"`
	K                 int     `json:"k"`
	Kernel            string  `json:"kernel"`
	Tolerance         float64 `json:"tolerance,omitempty"`
	BudgetPerRun      int64   `json:"budget_interactions_per_run"`
	Runs              int     `json:"runs"`
	Interactions      int64   `json:"interactions_total"`
	WallNanos         int64   `json:"wall_ns_total"`
	NsPerInteraction  float64 `json:"ns_per_interaction"`
	NsPerProductive   float64 `json:"ns_per_productive_event"`
	ProductiveEvents  int64   `json:"productive_events_total"`
	ReachedConsensus  int     `json:"runs_reaching_consensus"`
	InteractionsPerNs float64 `json:"interactions_per_ns"`
}

// TrialEntry is one trial-throughput measurement: the same Monte-Carlo
// fleet with and without arena reuse.
type TrialEntry struct {
	Workload        string  `json:"workload"`
	N               int64   `json:"n"`
	K               int     `json:"k"`
	Kernel          string  `json:"kernel"`
	Trials          int     `json:"trials"`
	BudgetPerTrial  int64   `json:"budget_interactions_per_trial"`
	FreshWallNanos  int64   `json:"fresh_wall_ns"`
	ArenaWallNanos  int64   `json:"arena_wall_ns"`
	FreshTrialsPerS float64 `json:"fresh_trials_per_sec"`
	ArenaTrialsPerS float64 `json:"arena_trials_per_sec"`
	ArenaSpeedup    float64 `json:"arena_speedup"`
	Identical       bool    `json:"results_identical"`
}

// Report is the BENCH_core.json schema.
type Report struct {
	Workload     string             `json:"workload"`
	GoVersion    string             `json:"go_version"`
	Entries      []Entry            `json:"entries"`
	Speedups     map[string]float64 `json:"batched_speedup_by_n"`
	TrialEntries []TrialEntry       `json:"trial_throughput"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		out   = fs.String("out", "BENCH_core.json", "output path for the JSON report")
		quick = fs.Bool("quick", false, "single repetition per cell")
		seed  = fs.Uint64("seed", 1, "base random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	runs := 3
	if *quick {
		runs = 1
	}

	const k = 32
	ns := []int64{10_000, 1_000_000, 100_000_000}
	kernels := []core.Kernel{core.KernelExact, core.KernelBatched(0)}

	rep := Report{
		Workload:  fmt.Sprintf("uniform start, k=%d, fixed interaction budget per n", k),
		GoVersion: runtime.Version(),
		Speedups:  map[string]float64{},
	}
	perNs := map[int64]map[string]float64{}
	for _, n := range ns {
		// ~40 parallel rounds of the no-bias early phase, capped so the
		// exact kernel's densest regime stays at sub-second cost per run.
		budget := 40 * n
		if budget > 4_000_000 {
			budget = 4_000_000
		}
		for _, kern := range kernels {
			e, err := measure(n, k, kern, budget, runs, *seed)
			if err != nil {
				return err
			}
			rep.Entries = append(rep.Entries, e)
			if perNs[n] == nil {
				perNs[n] = map[string]float64{}
			}
			perNs[n][e.Kernel] = e.NsPerInteraction
			fmt.Printf("n=%-12d kernel=%-14s %12.5f ns/interaction  (%d interactions in %v)\n",
				n, e.Kernel, e.NsPerInteraction, e.Interactions, time.Duration(e.WallNanos))
		}
		if exact, ok := perNs[n]["exact"]; ok {
			if batched, ok := perNs[n][core.KernelBatched(0).String()]; ok && batched > 0 {
				rep.Speedups[fmt.Sprintf("%d", n)] = exact / batched
			}
		}
	}
	for nKey, s := range rep.Speedups {
		fmt.Printf("n=%-12s batched speedup: %.1fx\n", nKey, s)
	}

	trialCells := []struct {
		workload string
		n        int64
		trials   int
		budget   int64
	}{
		// Dispatch-bound fleet: a one-interaction budget isolates the
		// per-trial engine overhead that arena reuse removes.
		{"trial-dispatch", 1_000_000, 1000, 1},
		// Simulation-bound fleet: full consensus runs at small n, where
		// per-trial setup is negligible next to the simulation itself.
		{"trial-consensus", 10_000, 200, 0},
	}
	if *quick {
		trialCells[1].trials = 20
	}
	for _, c := range trialCells {
		te, err := measureTrials(c.workload, c.n, k, core.KernelBatched(0), c.trials, c.budget, *seed)
		if err != nil {
			return err
		}
		rep.TrialEntries = append(rep.TrialEntries, te)
		fmt.Printf("%-16s n=%-9d trials=%-5d budget=%-8d fresh %10.0f trials/s, arena %10.0f trials/s, speedup %.1fx\n",
			te.Workload, te.N, te.Trials, te.BudgetPerTrial, te.FreshTrialsPerS, te.ArenaTrialsPerS, te.ArenaSpeedup)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// measureTrials times the same tracked Monte-Carlo fleet twice through the
// trial engine — allocating per trial versus reusing one arena — at
// parallelism 1 so the wall-clock difference is exactly the per-trial
// setup cost. Both arms must produce identical results; Identical records
// the check and the benchmark errors if it fails.
func measureTrials(workload string, n int64, k int, kern core.Kernel, trials int, budget int64, seed uint64) (TrialEntry, error) {
	cfg, err := conf.Uniform(n, k, 0)
	if err != nil {
		return TrialEntry{}, err
	}
	te := TrialEntry{
		Workload:       workload,
		N:              n,
		K:              k,
		Kernel:         kern.String(),
		Trials:         trials,
		BudgetPerTrial: budget,
	}

	runFleet := func(useArena bool) ([]experiment.USDRun, int64, error) {
		var firstErr error
		start := time.Now()
		runs := experiment.CollectArena(trials, 1, seed, func(i int, src *rng.Source, a *experiment.Arena) experiment.USDRun {
			if !useArena {
				// Pre-engine cost model: a fresh source, simulator, and
				// tracker per trial. rng.New(Derive(seed, i)) is the exact
				// state of the engine-reseeded src, so both arms simulate
				// identical trials.
				a = nil
				src = rng.New(rng.Derive(seed, uint64(i)))
			}
			r, err := experiment.RunTracked(a, cfg, src, budget, 0, kern)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			return r
		})
		return runs, time.Since(start).Nanoseconds(), firstErr
	}

	freshRuns, freshNs, err := runFleet(false)
	if err != nil {
		return TrialEntry{}, err
	}
	arenaRuns, arenaNs, err := runFleet(true)
	if err != nil {
		return TrialEntry{}, err
	}
	te.FreshWallNanos, te.ArenaWallNanos = freshNs, arenaNs
	te.FreshTrialsPerS = float64(trials) / (float64(freshNs) / 1e9)
	te.ArenaTrialsPerS = float64(trials) / (float64(arenaNs) / 1e9)
	if arenaNs > 0 {
		te.ArenaSpeedup = float64(freshNs) / float64(arenaNs)
	}
	te.Identical = true
	for i := range freshRuns {
		if freshRuns[i] != arenaRuns[i] {
			te.Identical = false
			return te, fmt.Errorf("bench: trial %d diverged between fresh and arena arms", i)
		}
	}
	return te, nil
}

// measure times `runs` budgeted runs of the kernel and aggregates them.
func measure(n int64, k int, kern core.Kernel, budget int64, runs int, seed uint64) (Entry, error) {
	cfg, err := conf.Uniform(n, k, 0)
	if err != nil {
		return Entry{}, err
	}
	e := Entry{
		N:            n,
		K:            k,
		Kernel:       kern.String(),
		Tolerance:    kern.Tolerance(),
		BudgetPerRun: budget,
		Runs:         runs,
	}
	for i := 0; i < runs; i++ {
		s, err := core.New(cfg, rng.New(rng.Derive(seed, uint64(i))), core.WithKernel(kern))
		if err != nil {
			return Entry{}, err
		}
		var productive int64
		start := time.Now()
		res := s.RunObserved(budget, func(_ *core.Simulator, ev core.Event) {
			productive += ev.Count
		})
		e.WallNanos += time.Since(start).Nanoseconds()
		e.Interactions += res.Interactions
		e.ProductiveEvents += productive
		if res.Outcome == usd.OutcomeConsensus {
			e.ReachedConsensus++
		}
	}
	if e.Interactions > 0 {
		e.NsPerInteraction = float64(e.WallNanos) / float64(e.Interactions)
		e.InteractionsPerNs = float64(e.Interactions) / float64(e.WallNanos)
	}
	if e.ProductiveEvents > 0 {
		e.NsPerProductive = float64(e.WallNanos) / float64(e.ProductiveEvents)
	}
	return e, nil
}
